// VDSR (Kim et al., CVPR 2016) — the large-CNN baseline of Tables 1 and 2
// (665K parameters, 612.6 GMACs at 720p; SESR-M11 matches its PSNR with
// 97x / 331x fewer MACs).
//
// Architecture: the input is bicubic-upscaled OUTSIDE the network; the network
// maps HR->HR with `depth` 3x3/`width`-channel conv+ReLU layers and a global
// residual (it predicts the bicubic residual). The full 20/64 configuration is
// priced by the hardware simulator (vdsr_ir); this trainable implementation is
// exercised at reduced sizes in tests and benches.
#pragma once

#include <memory>
#include <vector>

#include "nn/conv2d.hpp"
#include "train/model.hpp"

namespace sesr::baselines {

struct VdsrConfig {
  std::int64_t depth = 20;   // total conv layers (paper: 20)
  std::int64_t width = 64;   // channels (paper: 64)
  std::int64_t scale = 2;    // bicubic pre-upscale factor
};

class Vdsr final : public train::Model {
 public:
  Vdsr(const VdsrConfig& config, Rng& rng);

  // Input: LR (N, H, W, 1); the bicubic pre-upscale happens inside predict so
  // the model plugs into the shared evaluation harness. forward()/backward()
  // operate on the HR residual task directly.
  Tensor forward(const Tensor& hr_input, bool training) override;
  void backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override;

  // Convenience: LR -> HR including the bicubic pre-upscale.
  Tensor upscale(const Tensor& lr_input);

  const VdsrConfig& config() const { return config_; }
  std::int64_t parameter_count() const;

 private:
  VdsrConfig config_;
  std::vector<std::unique_ptr<nn::Layer>> layers_;  // conv/relu interleaved
  Tensor cached_input_;
};

}  // namespace sesr::baselines
