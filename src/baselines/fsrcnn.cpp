#include "baselines/fsrcnn.hpp"

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/conv_transpose.hpp"

namespace sesr::baselines {

namespace {
std::unique_ptr<nn::Layer> activation(const FsrcnnConfig& c, const std::string& name,
                                      std::int64_t channels) {
  if (c.prelu) return std::make_unique<nn::PRelu>(name, channels);
  return std::make_unique<nn::Relu>(name);
}
}  // namespace

std::unique_ptr<SequentialModel> make_fsrcnn(const FsrcnnConfig& c, Rng& rng) {
  auto model = std::make_unique<SequentialModel>("FSRCNN (d=" + std::to_string(c.d) + ", s=" +
                                                 std::to_string(c.s) + ", m=" + std::to_string(c.m) +
                                                 ", x" + std::to_string(c.scale) + ")");
  model->add(std::make_unique<nn::Conv2d>("feature", 5, 5, 1, c.d, nn::Padding::kSame,
                                          /*with_bias=*/false, rng));
  model->add(activation(c, "feature.act", c.d));
  model->add(std::make_unique<nn::Conv2d>("shrink", 1, 1, c.d, c.s, nn::Padding::kSame,
                                          /*with_bias=*/false, rng));
  model->add(activation(c, "shrink.act", c.s));
  for (std::int64_t i = 0; i < c.m; ++i) {
    const std::string name = "map" + std::to_string(i);
    model->add(std::make_unique<nn::Conv2d>(name, 3, 3, c.s, c.s, nn::Padding::kSame,
                                            /*with_bias=*/false, rng));
    model->add(activation(c, name + ".act", c.s));
  }
  model->add(std::make_unique<nn::Conv2d>("expand", 1, 1, c.s, c.d, nn::Padding::kSame,
                                          /*with_bias=*/false, rng));
  model->add(activation(c, "expand.act", c.d));
  model->add(std::make_unique<nn::ConvTranspose2d>("deconv", 9, 9, c.d, 1, c.scale, rng));
  return model;
}

std::int64_t fsrcnn_parameters(const FsrcnnConfig& c) {
  return 5 * 5 * 1 * c.d + c.d * c.s + c.m * 3 * 3 * c.s * c.s + c.s * c.d + 9 * 9 * c.d * 1;
}

}  // namespace sesr::baselines
