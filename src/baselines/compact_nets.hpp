// Trainable stand-ins for the paper's medium/large-regime comparison rows:
//
//   TpsrLike  — TPSR-NoGAN-flavoured (Lee et al., ECCV 2020): small residual
//               blocks + subpixel tail; default configuration sized to the
//               paper's ~60K parameters (Table 1 medium regime).
//   CarnMLike — CARN-M-flavoured (Ahn et al., ECCV 2018): residual blocks
//               built from GROUPED 3x3 convolutions + 1x1 pointwise fusion
//               with cascading 1x1 aggregation — the "variants of group
//               convolution" efficiency family the paper's related work cites
//               as orthogonal to SESR.
//
// Both are architecture-faithful at block granularity rather than line-by-line
// ports (the originals have many incidental details); parameters and MACs are
// in the right regime and both train with the shared harness.
#pragma once

#include <memory>
#include <vector>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/group_conv.hpp"
#include "train/model.hpp"

namespace sesr::baselines {

struct TpsrConfig {
  std::int64_t f = 28;      // feature width (~58K params at 4 blocks)
  std::int64_t blocks = 4;  // residual blocks
  std::int64_t scale = 2;
};

class TpsrLike final : public train::Model {
 public:
  TpsrLike(const TpsrConfig& config, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  void backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override;

  std::int64_t parameter_count() const;
  const TpsrConfig& config() const { return config_; }

 private:
  TpsrConfig config_;
  std::unique_ptr<nn::Conv2d> head_;
  std::vector<std::unique_ptr<nn::Conv2d>> block_convs_;  // 2 per residual block
  std::vector<std::unique_ptr<nn::Relu>> block_acts_;     // 1 per residual block
  std::unique_ptr<nn::Conv2d> tail_;
  Tensor cached_input_;
  std::vector<Tensor> cached_block_inputs_;
  Shape pre_shuffle_{0, 0, 0, 0};
};

struct CarnMConfig {
  std::int64_t f = 16;      // feature width
  std::int64_t blocks = 3;  // cascading blocks
  std::int64_t groups = 4;  // grouped-conv groups
  std::int64_t scale = 2;
};

class CarnMLike final : public train::Model {
 public:
  CarnMLike(const CarnMConfig& config, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  void backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override;

  std::int64_t parameter_count() const;

 private:
  CarnMConfig config_;
  std::unique_ptr<nn::Conv2d> head_;
  std::vector<std::unique_ptr<nn::GroupedConv2d>> group_convs_;  // 1 per block
  std::vector<std::unique_ptr<nn::Conv2d>> pointwise_;           // 1 per block
  std::vector<std::unique_ptr<nn::Conv2d>> cascade_;             // 1x1 after concat
  std::vector<std::unique_ptr<nn::Relu>> acts_;
  std::unique_ptr<nn::Conv2d> tail_;
  Tensor cached_input_;
  Shape pre_shuffle_{0, 0, 0, 0};
  // Caches for backward: inputs to each cascade 1x1 (concat of prev + block).
  std::vector<Tensor> cached_concat_;
};

}  // namespace sesr::baselines
