// FSRCNN (Dong et al., ECCV 2016) — the compact-SISR baseline the paper
// compares against throughout (Tables 1-3, Figs. 1 and 5).
//
// Standard configuration FSRCNN(d=56, s=12, m=4):
//   5x5 conv 1->56 (feature extraction), PReLU
//   1x1 conv 56->12 (shrink), PReLU
//   4 x [3x3 conv 12->12 (mapping), PReLU]
//   1x1 conv 12->56 (expand), PReLU
//   9x9 transposed conv 56->1, stride = scale (upsampling)
// 12.46K bias-free parameters; unlike SESR, the 9x9 deconvolution runs at HR
// resolution and its 56-channel LR feature maps dominate DRAM traffic — the
// root of the paper's Table 3 result.
#pragma once

#include <memory>

#include "baselines/sequential.hpp"
#include "tensor/rng.hpp"

namespace sesr::baselines {

struct FsrcnnConfig {
  std::int64_t d = 56;  // feature dimension
  std::int64_t s = 12;  // shrink dimension
  std::int64_t m = 4;   // mapping layers
  std::int64_t scale = 2;
  bool prelu = true;  // false = ReLU (hardware comparison, Section 5.6)
};

std::unique_ptr<SequentialModel> make_fsrcnn(const FsrcnnConfig& config, Rng& rng);

// Bias-free parameter count of the configuration (12464 for the default).
std::int64_t fsrcnn_parameters(const FsrcnnConfig& config);

}  // namespace sesr::baselines
