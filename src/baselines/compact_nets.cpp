#include "baselines/compact_nets.hpp"

#include <stdexcept>

#include "nn/depth_to_space.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::baselines {

// ----------------------------------------------------------------- TPSR -----

TpsrLike::TpsrLike(const TpsrConfig& config, Rng& rng) : config_(config) {
  if (config.scale != 2 && config.scale != 4) {
    throw std::invalid_argument("TpsrLike: scale must be 2 or 4");
  }
  head_ = std::make_unique<nn::Conv2d>("head", 3, 3, 1, config.f, nn::Padding::kSame, false, rng);
  for (std::int64_t i = 0; i < config.blocks; ++i) {
    const std::string base = "block" + std::to_string(i);
    block_convs_.push_back(std::make_unique<nn::Conv2d>(base + ".a", 3, 3, config.f, config.f,
                                                        nn::Padding::kSame, false, rng));
    block_convs_.push_back(std::make_unique<nn::Conv2d>(base + ".b", 3, 3, config.f, config.f,
                                                        nn::Padding::kSame, false, rng));
    block_acts_.push_back(std::make_unique<nn::Relu>(base + ".act"));
  }
  tail_ = std::make_unique<nn::Conv2d>("tail", 3, 3, config.f,
                                       config.scale * config.scale, nn::Padding::kSame, false, rng);
}

Tensor TpsrLike::forward(const Tensor& input, bool training) {
  if (input.shape().c() != 1) throw std::invalid_argument("TpsrLike: expects a Y-channel input");
  if (training) {
    cached_input_ = input;
    cached_block_inputs_.clear();
  }
  Tensor feat = head_->forward(input, training);
  for (std::int64_t i = 0; i < config_.blocks; ++i) {
    if (training) cached_block_inputs_.push_back(feat);
    Tensor h = block_acts_[static_cast<std::size_t>(i)]->forward(
        block_convs_[static_cast<std::size_t>(2 * i)]->forward(feat, training), training);
    Tensor out = block_convs_[static_cast<std::size_t>(2 * i + 1)]->forward(h, training);
    add_inplace(out, feat);  // residual block
    feat = std::move(out);
  }
  Tensor pre = tail_->forward(feat, training);
  pre_shuffle_ = pre.shape();
  Tensor y = nn::depth_to_space(pre, 2);
  if (config_.scale == 4) y = nn::depth_to_space(y, 2);
  return y;
}

void TpsrLike::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("TpsrLike::backward before forward");
  Tensor g = nn::space_to_depth(grad_output, 2);
  if (config_.scale == 4) g = nn::space_to_depth(g, 2);
  if (g.shape() != pre_shuffle_) throw std::logic_error("TpsrLike: grad shape mismatch");
  Tensor gf = tail_->backward(g);
  for (std::int64_t i = config_.blocks; i-- > 0;) {
    Tensor gh = block_convs_[static_cast<std::size_t>(2 * i + 1)]->backward(gf);
    gh = block_acts_[static_cast<std::size_t>(i)]->backward(gh);
    Tensor gin = block_convs_[static_cast<std::size_t>(2 * i)]->backward(gh);
    add_inplace(gin, gf);  // residual path
    gf = std::move(gin);
  }
  head_->backward(gf);
}

std::vector<nn::Parameter*> TpsrLike::parameters() {
  std::vector<nn::Parameter*> out;
  for (nn::Parameter* p : head_->parameters()) out.push_back(p);
  for (auto& c : block_convs_) {
    for (nn::Parameter* p : c->parameters()) out.push_back(p);
  }
  for (nn::Parameter* p : tail_->parameters()) out.push_back(p);
  return out;
}

std::string TpsrLike::name() const {
  return "TPSR-like (f=" + std::to_string(config_.f) + ", b=" + std::to_string(config_.blocks) +
         ", x" + std::to_string(config_.scale) + ")";
}

std::int64_t TpsrLike::parameter_count() const {
  const std::int64_t f = config_.f;
  return 9 * f + config_.blocks * 2 * 9 * f * f + 9 * f * config_.scale * config_.scale;
}

// --------------------------------------------------------------- CARN-M -----

CarnMLike::CarnMLike(const CarnMConfig& config, Rng& rng) : config_(config) {
  if (config.scale != 2 && config.scale != 4) {
    throw std::invalid_argument("CarnMLike: scale must be 2 or 4");
  }
  if (config.f % config.groups != 0) {
    throw std::invalid_argument("CarnMLike: f must be divisible by groups");
  }
  head_ = std::make_unique<nn::Conv2d>("head", 3, 3, 1, config.f, nn::Padding::kSame, false, rng);
  for (std::int64_t i = 0; i < config.blocks; ++i) {
    const std::string base = "block" + std::to_string(i);
    group_convs_.push_back(std::make_unique<nn::GroupedConv2d>(
        base + ".g", 3, 3, config.f, config.f, config.groups, nn::Padding::kSame, rng));
    pointwise_.push_back(std::make_unique<nn::Conv2d>(base + ".pw", 1, 1, config.f, config.f,
                                                      nn::Padding::kSame, false, rng));
    cascade_.push_back(std::make_unique<nn::Conv2d>(base + ".cascade", 1, 1, 2 * config.f,
                                                    config.f, nn::Padding::kSame, false, rng));
    acts_.push_back(std::make_unique<nn::Relu>(base + ".act"));
  }
  tail_ = std::make_unique<nn::Conv2d>("tail", 3, 3, config.f, config.scale * config.scale,
                                       nn::Padding::kSame, false, rng);
}

Tensor CarnMLike::forward(const Tensor& input, bool training) {
  if (input.shape().c() != 1) throw std::invalid_argument("CarnMLike: expects a Y-channel input");
  if (training) {
    cached_input_ = input;
    cached_concat_.clear();
  }
  Tensor feat = head_->forward(input, training);
  for (std::int64_t i = 0; i < config_.blocks; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    // Efficient residual body: grouped 3x3 -> ReLU -> 1x1 pointwise, + skip.
    Tensor body = pointwise_[idx]->forward(
        acts_[idx]->forward(group_convs_[idx]->forward(feat, training), training), training);
    add_inplace(body, feat);
    // Cascading aggregation: 1x1 over concat(previous features, block output).
    Tensor cat = concat_channels(feat, body);
    if (training) cached_concat_.push_back(cat);
    feat = cascade_[idx]->forward(cat, training);
  }
  Tensor pre = tail_->forward(feat, training);
  pre_shuffle_ = pre.shape();
  Tensor y = nn::depth_to_space(pre, 2);
  if (config_.scale == 4) y = nn::depth_to_space(y, 2);
  return y;
}

void CarnMLike::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("CarnMLike::backward before forward");
  Tensor g = nn::space_to_depth(grad_output, 2);
  if (config_.scale == 4) g = nn::space_to_depth(g, 2);
  if (g.shape() != pre_shuffle_) throw std::logic_error("CarnMLike: grad shape mismatch");
  Tensor gf = tail_->backward(g);
  for (std::int64_t i = config_.blocks; i-- > 0;) {
    const auto idx = static_cast<std::size_t>(i);
    Tensor gcat = cascade_[idx]->backward(gf);
    Tensor g_prev = slice_channels(gcat, 0, config_.f);
    Tensor g_body = slice_channels(gcat, config_.f, config_.f);
    // body = pw(relu(gconv(feat))) + feat.
    Tensor gb = pointwise_[idx]->backward(g_body);
    gb = acts_[idx]->backward(gb);
    Tensor g_feat = group_convs_[idx]->backward(gb);
    add_inplace(g_feat, g_body);  // skip inside the block
    add_inplace(g_feat, g_prev);  // direct path into the concat
    gf = std::move(g_feat);
  }
  head_->backward(gf);
}

std::vector<nn::Parameter*> CarnMLike::parameters() {
  std::vector<nn::Parameter*> out;
  for (nn::Parameter* p : head_->parameters()) out.push_back(p);
  for (std::size_t i = 0; i < group_convs_.size(); ++i) {
    for (nn::Parameter* p : group_convs_[i]->parameters()) out.push_back(p);
    for (nn::Parameter* p : pointwise_[i]->parameters()) out.push_back(p);
    for (nn::Parameter* p : cascade_[i]->parameters()) out.push_back(p);
  }
  for (nn::Parameter* p : tail_->parameters()) out.push_back(p);
  return out;
}

std::string CarnMLike::name() const {
  return "CARN-M-like (f=" + std::to_string(config_.f) + ", b=" + std::to_string(config_.blocks) +
         ", g=" + std::to_string(config_.groups) + ", x" + std::to_string(config_.scale) + ")";
}

std::int64_t CarnMLike::parameter_count() const {
  const std::int64_t f = config_.f;
  const std::int64_t per_block = 9 * (f / config_.groups) * f + f * f + 2 * f * f;
  return 9 * f + config_.blocks * per_block + 9 * f * config_.scale * config_.scale;
}

}  // namespace sesr::baselines
