// A plain sequential model: layers applied in order, gradients chained in
// reverse. FSRCNN and ad-hoc experiment networks are built on this.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "train/model.hpp"

namespace sesr::baselines {

class SequentialModel final : public train::Model {
 public:
  explicit SequentialModel(std::string name) : name_(std::move(name)) {}

  // Returns *this for fluent building.
  SequentialModel& add(std::unique_ptr<nn::Layer> layer);

  Tensor forward(const Tensor& input, bool training) override;
  void backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return name_; }

  std::size_t size() const { return layers_.size(); }
  nn::Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::string name_;
  std::vector<std::unique_ptr<nn::Layer>> layers_;
};

}  // namespace sesr::baselines
