#include "baselines/vdsr.hpp"

#include <stdexcept>

#include "data/resize.hpp"
#include "nn/activations.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::baselines {

Vdsr::Vdsr(const VdsrConfig& config, Rng& rng) : config_(config) {
  if (config.depth < 2) throw std::invalid_argument("Vdsr: depth must be >= 2");
  layers_.push_back(std::make_unique<nn::Conv2d>("in", 3, 3, 1, config.width,
                                                 nn::Padding::kSame, /*with_bias=*/false, rng));
  layers_.push_back(std::make_unique<nn::Relu>("in.act"));
  for (std::int64_t i = 1; i + 1 < config.depth; ++i) {
    const std::string name = "mid" + std::to_string(i);
    layers_.push_back(std::make_unique<nn::Conv2d>(name, 3, 3, config.width, config.width,
                                                   nn::Padding::kSame, false, rng));
    layers_.push_back(std::make_unique<nn::Relu>(name + ".act"));
  }
  layers_.push_back(std::make_unique<nn::Conv2d>("out", 3, 3, config.width, 1,
                                                 nn::Padding::kSame, false, rng));
}

Tensor Vdsr::forward(const Tensor& hr_input, bool training) {
  if (hr_input.shape().c() != 1) throw std::invalid_argument("Vdsr: expects a Y-channel input");
  if (training) cached_input_ = hr_input;
  Tensor x = hr_input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  add_inplace(x, hr_input);  // global residual: predicts the bicubic residual
  return x;
}

void Vdsr::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("Vdsr::backward before forward");
  Tensor g = grad_output;  // the residual path's gradient goes to the data
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
}

std::vector<nn::Parameter*> Vdsr::parameters() {
  std::vector<nn::Parameter*> out;
  for (auto& layer : layers_) {
    for (nn::Parameter* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::string Vdsr::name() const {
  return "VDSR (d=" + std::to_string(config_.depth) + ", w=" + std::to_string(config_.width) +
         ", x" + std::to_string(config_.scale) + ")";
}

Tensor Vdsr::upscale(const Tensor& lr_input) {
  return predict(data::upscale_bicubic(lr_input, config_.scale));
}

std::int64_t Vdsr::parameter_count() const {
  // 3x3 kernels only (bias-free, like the paper's 665K count for d=20, w=64).
  const std::int64_t w = config_.width;
  return 9 * 1 * w + (config_.depth - 2) * 9 * w * w + 9 * w * 1;
}

}  // namespace sesr::baselines
