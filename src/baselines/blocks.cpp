#include "baselines/blocks.hpp"

#include <stdexcept>

#include "core/collapse.hpp"
#include "nn/init.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::baselines {

SingleConvBlock::SingleConvBlock(std::string name, const core::BlockSpec& spec, Rng& rng)
    : name_(std::move(name)),
      short_residual_(spec.short_residual),
      weight_(name_ + ".weight",
              nn::glorot_uniform_kernel(spec.kh, spec.kw, spec.in_channels, spec.out_channels, rng)) {
  if (short_residual_ && spec.in_channels != spec.out_channels) {
    throw std::invalid_argument("SingleConvBlock: residual needs in == out channels");
  }
}

Tensor SingleConvBlock::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  Tensor out = nn::conv2d(input, weight_.value, nn::Padding::kSame);
  if (short_residual_) add_inplace(out, input);
  return out;
}

Tensor SingleConvBlock::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("SingleConvBlock::backward before forward");
  nn::conv2d_backward_weight(cached_input_, grad_output, weight_.grad, nn::Padding::kSame);
  Tensor grad_input = nn::conv2d_backward_input(grad_output, weight_.value, cached_input_.shape(),
                                                nn::Padding::kSame);
  if (short_residual_) add_inplace(grad_input, grad_output);
  return grad_input;
}

Tensor SingleConvBlock::collapsed_weight() const {
  Tensor w = weight_.value;
  if (short_residual_) core::add_residual_identity(w);
  return w;
}

RepVggBlock::RepVggBlock(std::string name, const core::BlockSpec& spec, Rng& rng)
    : name_(std::move(name)),
      identity_(spec.short_residual),
      kxk_(name_ + ".kxk.weight",
           nn::glorot_uniform_kernel(spec.kh, spec.kw, spec.in_channels, spec.out_channels, rng)),
      one_by_one_(name_ + ".1x1.weight",
                  nn::glorot_uniform_kernel(1, 1, spec.in_channels, spec.out_channels, rng)) {
  if (spec.kh % 2 == 0 || spec.kw % 2 == 0) {
    throw std::invalid_argument("RepVggBlock: needs odd kernels to embed the 1x1 branch");
  }
  if (identity_ && spec.in_channels != spec.out_channels) {
    throw std::invalid_argument("RepVggBlock: identity branch needs in == out channels");
  }
}

Tensor RepVggBlock::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  Tensor out = nn::conv2d(input, kxk_.value, nn::Padding::kSame);
  add_inplace(out, nn::conv2d(input, one_by_one_.value, nn::Padding::kSame));
  if (identity_) add_inplace(out, input);
  return out;
}

Tensor RepVggBlock::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("RepVggBlock::backward before forward");
  nn::conv2d_backward_weight(cached_input_, grad_output, kxk_.grad, nn::Padding::kSame);
  nn::conv2d_backward_weight(cached_input_, grad_output, one_by_one_.grad, nn::Padding::kSame);
  Tensor grad_input = nn::conv2d_backward_input(grad_output, kxk_.value, cached_input_.shape(),
                                                nn::Padding::kSame);
  add_inplace(grad_input, nn::conv2d_backward_input(grad_output, one_by_one_.value,
                                                    cached_input_.shape(), nn::Padding::kSame));
  if (identity_) add_inplace(grad_input, grad_output);
  return grad_input;
}

Tensor RepVggBlock::collapsed_weight() const {
  Tensor w = kxk_.value;
  // Embed the 1x1 branch at the spatial center.
  const Shape& s = w.shape();
  const std::int64_t cy = s.dim(0) / 2;
  const std::int64_t cx = s.dim(1) / 2;
  for (std::int64_t ic = 0; ic < s.dim(2); ++ic) {
    for (std::int64_t oc = 0; oc < s.dim(3); ++oc) {
      w(cy, cx, ic, oc) += one_by_one_.value(0, 0, ic, oc);
    }
  }
  if (identity_) core::add_residual_identity(w);
  return w;
}

AcNetBlock::AcNetBlock(std::string name, const core::BlockSpec& spec, Rng& rng)
    : name_(std::move(name)),
      identity_(spec.short_residual),
      kxk_(name_ + ".kxk.weight",
           nn::glorot_uniform_kernel(spec.kh, spec.kw, spec.in_channels, spec.out_channels, rng)),
      row_(name_ + ".1xk.weight",
           nn::glorot_uniform_kernel(1, spec.kw, spec.in_channels, spec.out_channels, rng)),
      col_(name_ + ".kx1.weight",
           nn::glorot_uniform_kernel(spec.kh, 1, spec.in_channels, spec.out_channels, rng)) {
  if (spec.kh % 2 == 0 || spec.kw % 2 == 0) {
    throw std::invalid_argument("AcNetBlock: needs odd kernels to embed the asymmetric branches");
  }
  if (identity_ && spec.in_channels != spec.out_channels) {
    throw std::invalid_argument("AcNetBlock: identity branch needs in == out channels");
  }
}

Tensor AcNetBlock::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  Tensor out = nn::conv2d(input, kxk_.value, nn::Padding::kSame);
  add_inplace(out, nn::conv2d(input, row_.value, nn::Padding::kSame));
  add_inplace(out, nn::conv2d(input, col_.value, nn::Padding::kSame));
  if (identity_) add_inplace(out, input);
  return out;
}

Tensor AcNetBlock::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("AcNetBlock::backward before forward");
  nn::conv2d_backward_weight(cached_input_, grad_output, kxk_.grad, nn::Padding::kSame);
  nn::conv2d_backward_weight(cached_input_, grad_output, row_.grad, nn::Padding::kSame);
  nn::conv2d_backward_weight(cached_input_, grad_output, col_.grad, nn::Padding::kSame);
  Tensor grad_input = nn::conv2d_backward_input(grad_output, kxk_.value, cached_input_.shape(),
                                                nn::Padding::kSame);
  add_inplace(grad_input, nn::conv2d_backward_input(grad_output, row_.value,
                                                    cached_input_.shape(), nn::Padding::kSame));
  add_inplace(grad_input, nn::conv2d_backward_input(grad_output, col_.value,
                                                    cached_input_.shape(), nn::Padding::kSame));
  if (identity_) add_inplace(grad_input, grad_output);
  return grad_input;
}

Tensor AcNetBlock::collapsed_weight() const {
  Tensor w = kxk_.value;
  const Shape& s = w.shape();
  const std::int64_t cy = s.dim(0) / 2;
  const std::int64_t cx = s.dim(1) / 2;
  // 1 x k branch lives on the center row; k x 1 on the center column.
  for (std::int64_t ic = 0; ic < s.dim(2); ++ic) {
    for (std::int64_t oc = 0; oc < s.dim(3); ++oc) {
      for (std::int64_t kx = 0; kx < s.dim(1); ++kx) {
        w(cy, kx, ic, oc) += row_.value(0, kx, ic, oc);
      }
      for (std::int64_t ky = 0; ky < s.dim(0); ++ky) {
        w(ky, cx, ic, oc) += col_.value(ky, 0, ic, oc);
      }
    }
  }
  if (identity_) core::add_residual_identity(w);
  return w;
}

core::BlockFactory single_conv_factory() {
  return [](const core::BlockSpec& spec, Rng& rng) {
    return std::make_unique<SingleConvBlock>(spec.name, spec, rng);
  };
}

core::BlockFactory repvgg_factory() {
  return [](const core::BlockSpec& spec, Rng& rng) {
    return std::make_unique<RepVggBlock>(spec.name, spec, rng);
  };
}

core::BlockFactory acnet_factory() {
  return [](const core::BlockSpec& spec, Rng& rng) {
    return std::make_unique<AcNetBlock>(spec.name, spec, rng);
  };
}

}  // namespace sesr::baselines
