// Baseline blocks for the Section 5.4 / 5.5 comparisons, all plugging into the
// SESR topology via core::BlockFactory:
//
//   SingleConvBlock — one k x k convolution, optional short residual. This is
//     the "VGG" (direct training of the collapsed Fig. 2(d) net) and the
//     Section 5.5 "residuals without linear blocks" ablation.
//   RepVggBlock — k x k convolution + parallel 1 x 1 branch + identity skip
//     (identity only when in == out, as in RepVGG). Collapses to
//     W = W_kxk + embed(W_1x1) + I. The paper's theory (Section 4.3) predicts
//     its gradient update equals plain VGG's — which bench_sec54 demonstrates.
#pragma once

#include <optional>
#include <string>

#include "core/block.hpp"
#include "nn/conv2d.hpp"

namespace sesr::baselines {

class SingleConvBlock final : public core::CollapsibleBlock {
 public:
  SingleConvBlock(std::string name, const core::BlockSpec& spec, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override { return {&weight_}; }
  std::string name() const override { return name_; }

  Tensor collapsed_weight() const override;
  std::optional<Tensor> collapsed_bias() const override { return std::nullopt; }
  std::int64_t collapsed_parameter_count() const override { return weight_.value.numel(); }

 private:
  std::string name_;
  bool short_residual_;
  nn::Parameter weight_;
  Tensor cached_input_;
};

class RepVggBlock final : public core::CollapsibleBlock {
 public:
  RepVggBlock(std::string name, const core::BlockSpec& spec, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override { return {&kxk_, &one_by_one_}; }
  std::string name() const override { return name_; }

  Tensor collapsed_weight() const override;
  std::optional<Tensor> collapsed_bias() const override { return std::nullopt; }
  std::int64_t collapsed_parameter_count() const override { return kxk_.value.numel(); }

 private:
  std::string name_;
  bool identity_;  // include the skip branch (needs in == out and odd kernel)
  nn::Parameter kxk_;
  nn::Parameter one_by_one_;
  Tensor cached_input_;
};

// ACNet-style asymmetric convolution block (Ding et al., ICCV 2019 — the
// paper's reference [9]): parallel k x k, 1 x k and k x 1 branches, optional
// identity skip; collapses to W = W_kxk + embed(W_1xk) + embed(W_kx1) (+ I).
class AcNetBlock final : public core::CollapsibleBlock {
 public:
  AcNetBlock(std::string name, const core::BlockSpec& spec, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override { return {&kxk_, &row_, &col_}; }
  std::string name() const override { return name_; }

  Tensor collapsed_weight() const override;
  std::optional<Tensor> collapsed_bias() const override { return std::nullopt; }
  std::int64_t collapsed_parameter_count() const override { return kxk_.value.numel(); }

 private:
  std::string name_;
  bool identity_;
  nn::Parameter kxk_;  // (k, k, in, out)
  nn::Parameter row_;  // (1, k, in, out) horizontal branch
  nn::Parameter col_;  // (k, 1, in, out) vertical branch
  Tensor cached_input_;
};

// Factories for SesrNetwork's variant constructor.
core::BlockFactory single_conv_factory();
core::BlockFactory repvgg_factory();
core::BlockFactory acnet_factory();

}  // namespace sesr::baselines
