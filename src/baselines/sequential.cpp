#include "baselines/sequential.hpp"

#include <stdexcept>

namespace sesr::baselines {

SequentialModel& SequentialModel::add(std::unique_ptr<nn::Layer> layer) {
  if (!layer) throw std::invalid_argument("SequentialModel::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor SequentialModel::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

void SequentialModel::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
}

std::vector<nn::Parameter*> SequentialModel::parameters() {
  std::vector<nn::Parameter*> out;
  for (auto& layer : layers_) {
    for (nn::Parameter* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace sesr::baselines
