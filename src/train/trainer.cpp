#include "train/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace sesr::train {

float TrainHistory::mean_tail_loss(std::int64_t window) const {
  if (loss.empty()) return 0.0F;
  const auto n = static_cast<std::int64_t>(loss.size());
  const std::int64_t start = std::max<std::int64_t>(0, n - window);
  double acc = 0.0;
  for (std::int64_t i = start; i < n; ++i) acc += loss[static_cast<std::size_t>(i)];
  return static_cast<float>(acc / static_cast<double>(n - start));
}

TrainHistory Trainer::run(const BatchProvider& batches, const TrainOptions& options) {
  if (options.steps < 1) throw std::invalid_argument("Trainer: steps must be >= 1");
  TrainHistory history;
  history.loss.reserve(static_cast<std::size_t>(options.steps));
  history.grad_norm.reserve(static_cast<std::size_t>(options.steps));
  std::vector<nn::Parameter*> params = model_.parameters();
  for (std::int64_t step = 0; step < options.steps; ++step) {
    auto [input, target] = batches(step);
    nn::zero_gradients(params);
    Tensor output = model_.forward(input, /*training=*/true);
    LossResult loss = loss_fn_(output, target);
    model_.backward(loss.grad);
    optimizer_.set_learning_rate(schedule_.at(step));
    optimizer_.step(params);
    history.loss.push_back(loss.value);
    history.grad_norm.push_back(nn::gradient_norm(params));
    if (options.log_every > 0 && (step % options.log_every == 0 || step + 1 == options.steps)) {
      std::printf("[%s] step %5lld  loss %.6f  |grad| %.4f\n", model_.name().c_str(),
                  static_cast<long long>(step), static_cast<double>(loss.value),
                  static_cast<double>(history.grad_norm.back()));
    }
  }
  return history;
}

}  // namespace sesr::train
