#include "train/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace sesr::train {

void Sgd::step(const std::vector<nn::Parameter*>& params) {
  for (nn::Parameter* p : params) {
    float* v = p->value.raw();
    const float* g = p->grad.raw();
    const std::int64_t n = p->value.numel();
    for (std::int64_t i = 0; i < n; ++i) v[i] -= lr_ * g[i];
  }
}

Adam::Adam(float lr, float beta1, float beta2, float epsilon)
    : lr_(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {}

void Adam::step(const std::vector<nn::Parameter*>& params) {
  ++t_;
  const float bias1 = 1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0F - std::pow(beta2_, static_cast<float>(t_));
  for (nn::Parameter* p : params) {
    // Locate (or lazily create) this parameter's moment state. Parameter sets
    // are tiny (tens of tensors), so a linear scan is fine and avoids imposing
    // stable addresses via a map-by-name.
    std::size_t idx = keys_.size();
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == p) {
        idx = i;
        break;
      }
    }
    if (idx == keys_.size()) {
      keys_.push_back(p);
      states_.push_back(State{p->value.zeros_like(), p->value.zeros_like()});
    }
    State& s = states_[idx];
    if (s.m.shape() != p->value.shape()) {
      throw std::logic_error("Adam: parameter shape changed between steps for " + p->name);
    }
    float* value = p->value.raw();
    const float* grad = p->grad.raw();
    float* m = s.m.raw();
    float* v = s.v.raw();
    const std::int64_t n = p->value.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      m[i] = beta1_ * m[i] + (1.0F - beta1_) * grad[i];
      v[i] = beta2_ * v[i] + (1.0F - beta2_) * grad[i] * grad[i];
      const float mhat = m[i] / bias1;
      const float vhat = v[i] / bias2;
      value[i] -= lr_ * mhat / (std::sqrt(vhat) + epsilon_);
    }
  }
}

}  // namespace sesr::train
