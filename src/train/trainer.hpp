// Generic training loop.
//
// The Trainer is deliberately small: it pulls (LR, HR) batches from a provider
// callback, runs forward/loss/backward/step, applies the LR schedule, and
// records telemetry (loss curve, global gradient norms) that the Section 5.4
// vanishing-gradient reproduction plots.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "train/loss.hpp"
#include "train/lr_schedule.hpp"
#include "train/model.hpp"
#include "train/optimizer.hpp"

namespace sesr::train {

// Supplies one training batch: first = network input (LR), second = target (HR).
using BatchProvider = std::function<std::pair<Tensor, Tensor>(std::int64_t step)>;
// Loss function signature (l1_loss / l2_loss or custom).
using LossFn = std::function<LossResult(const Tensor&, const Tensor&)>;

struct TrainOptions {
  std::int64_t steps = 100;
  std::int64_t log_every = 0;  // 0 = silent
};

struct TrainHistory {
  std::vector<float> loss;       // per step
  std::vector<float> grad_norm;  // global L2 gradient norm per step
  float final_loss() const { return loss.empty() ? 0.0F : loss.back(); }
  float mean_tail_loss(std::int64_t window) const;  // mean over the last `window` steps
};

class Trainer {
 public:
  Trainer(Model& model, Optimizer& optimizer, const LrSchedule& schedule, LossFn loss_fn)
      : model_(model), optimizer_(optimizer), schedule_(schedule), loss_fn_(std::move(loss_fn)) {}

  TrainHistory run(const BatchProvider& batches, const TrainOptions& options);

 private:
  Model& model_;
  Optimizer& optimizer_;
  const LrSchedule& schedule_;
  LossFn loss_fn_;
};

}  // namespace sesr::train
