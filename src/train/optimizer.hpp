// Optimizers: Adam (the paper trains SESR with Adam, constant lr 5e-4) and
// plain SGD (used by the Section 4 theory experiments, whose update rules are
// derived for vanilla gradient descent).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.hpp"

namespace sesr::train {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update using the gradients currently stored in the parameters,
  // then leaves gradients untouched (callers zero them per step).
  virtual void step(const std::vector<nn::Parameter*>& params) = 0;

  virtual void set_learning_rate(float lr) = 0;
  virtual float learning_rate() const = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr) : lr_(lr) {}

  void step(const std::vector<nn::Parameter*>& params) override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }

 private:
  float lr_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9F, float beta2 = 0.999F, float epsilon = 1e-8F);

  void step(const std::vector<nn::Parameter*>& params) override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }

 private:
  struct State {
    Tensor m;
    Tensor v;
  };

  float lr_;
  float beta1_;
  float beta2_;
  float epsilon_;
  std::int64_t t_ = 0;
  // First/second moment per parameter, keyed by insertion order of first sight.
  std::vector<State> states_;
  std::vector<const nn::Parameter*> keys_;
};

}  // namespace sesr::train
