#include "train/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace sesr::train {

namespace {
void check(const Tensor& p, const Tensor& t, const char* op) {
  if (p.shape() != t.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " + p.shape().to_string() +
                                " vs " + t.shape().to_string());
  }
  if (p.numel() == 0) throw std::invalid_argument(std::string(op) + ": empty tensors");
}
}  // namespace

LossResult l1_loss(const Tensor& prediction, const Tensor& target) {
  check(prediction, target, "l1_loss");
  LossResult r;
  r.grad = Tensor(prediction.shape());
  const float* pp = prediction.raw();
  const float* pt = target.raw();
  float* pg = r.grad.raw();
  const std::int64_t n = prediction.numel();
  const float inv_n = 1.0F / static_cast<float>(n);
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float d = pp[i] - pt[i];
    acc += std::fabs(d);
    pg[i] = d > 0.0F ? inv_n : (d < 0.0F ? -inv_n : 0.0F);
  }
  r.value = static_cast<float>(acc / static_cast<double>(n));
  return r;
}

LossResult l2_loss(const Tensor& prediction, const Tensor& target) {
  check(prediction, target, "l2_loss");
  LossResult r;
  r.grad = Tensor(prediction.shape());
  const float* pp = prediction.raw();
  const float* pt = target.raw();
  float* pg = r.grad.raw();
  const std::int64_t n = prediction.numel();
  const float inv_n = 1.0F / static_cast<float>(n);
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float d = pp[i] - pt[i];
    acc += 0.5 * static_cast<double>(d) * d;
    pg[i] = d * inv_n;
  }
  r.value = static_cast<float>(acc / static_cast<double>(n));
  return r;
}

}  // namespace sesr::train
