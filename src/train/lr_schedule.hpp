// Learning-rate schedules. The paper uses a constant 5e-4; step decay and
// linear warmup are provided for the ablation/NAS proxy-training runs.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace sesr::train {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  // Learning rate to apply at (0-based) step.
  virtual float at(std::int64_t step) const = 0;
};

class ConstantLr final : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float at(std::int64_t) const override { return lr_; }

 private:
  float lr_;
};

// lr * decay^(step / period), staircase.
class StepDecayLr final : public LrSchedule {
 public:
  StepDecayLr(float lr, float decay, std::int64_t period) : lr_(lr), decay_(decay), period_(period) {
    if (period < 1) throw std::invalid_argument("StepDecayLr: period must be >= 1");
  }
  float at(std::int64_t step) const override;

 private:
  float lr_;
  float decay_;
  std::int64_t period_;
};

// Linear ramp from 0 to lr over `warmup` steps, then constant.
class WarmupLr final : public LrSchedule {
 public:
  WarmupLr(float lr, std::int64_t warmup) : lr_(lr), warmup_(warmup) {
    if (warmup < 1) throw std::invalid_argument("WarmupLr: warmup must be >= 1");
  }
  float at(std::int64_t step) const override;

 private:
  float lr_;
  std::int64_t warmup_;
};

}  // namespace sesr::train
