// Reconstruction losses with analytic gradients.
//
// SESR trains with mean absolute error (L1) between the generated and ground-
// truth high-resolution images; L2 is provided for the Section 4 theory
// experiments (the paper's analysis is for an l2 linear-regression loss).
#pragma once

#include "tensor/tensor.hpp"

namespace sesr::train {

struct LossResult {
  float value = 0.0F;
  Tensor grad;  // d(loss)/d(prediction), same shape as prediction
};

// Mean absolute error: mean(|pred - target|). Subgradient 0 at exact ties.
LossResult l1_loss(const Tensor& prediction, const Tensor& target);

// Mean squared error: mean((pred - target)^2) / 2.
LossResult l2_loss(const Tensor& prediction, const Tensor& target);

}  // namespace sesr::train
