// Model abstraction consumed by the Trainer: a network with an explicit
// forward/backward pair and a flat parameter list. SESR (expanded and
// efficient-collapsed modes), FSRCNN and the overparameterization baselines
// all implement this interface.
#pragma once

#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace sesr::train {

class Model {
 public:
  virtual ~Model() = default;
  Model() = default;
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  virtual Tensor forward(const Tensor& input, bool training) = 0;
  // Propagates d(loss)/d(output); accumulates parameter gradients.
  virtual void backward(const Tensor& grad_output) = 0;
  virtual std::vector<nn::Parameter*> parameters() = 0;
  virtual std::string name() const = 0;

  // Convenience: inference-mode forward.
  Tensor predict(const Tensor& input) { return forward(input, /*training=*/false); }
};

}  // namespace sesr::train
