#include "train/lr_schedule.hpp"

#include <cmath>

namespace sesr::train {

float StepDecayLr::at(std::int64_t step) const {
  const auto k = static_cast<float>(step / period_);
  return lr_ * std::pow(decay_, k);
}

float WarmupLr::at(std::int64_t step) const {
  if (step >= warmup_) return lr_;
  return lr_ * static_cast<float>(step + 1) / static_cast<float>(warmup_);
}

}  // namespace sesr::train
