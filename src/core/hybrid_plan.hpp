// Per-layer fp16/int8 precision planning for the collapsed network.
//
// NAWQ-SR's observation (PAPERS.md) is that uniform int8 needlessly costs
// quality on SR nets while most layers tolerate it — so pick the precision
// per layer against an explicit quality budget. A collapsed SESR net has only
// m+2 convs, few enough to score every 2^(m+2) assignment exhaustively on the
// calibration set (m5: 128 plans); beyond kExhaustiveLayers the planner falls
// back to a sensitivity-ordered greedy sweep (quantize the most tolerant
// layers first, largest int8 count that still fits the budget).
#pragma once

#include <cstdint>
#include <vector>

#include "core/sesr_inference.hpp"
#include "tensor/tensor.hpp"

namespace sesr::core {

struct HybridPlanReport {
  std::vector<LayerPrecision> plan;  // chosen assignment, one entry per conv
  double fp32_psnr = 0.0;            // mean Y-PSNR of fp32 output vs HR
  double plan_psnr = 0.0;            // same for the chosen plan
  double drop_db = 0.0;              // fp32_psnr - plan_psnr
  std::int64_t int8_layers = 0;      // quantized layers in the chosen plan
  std::int64_t evaluated = 0;        // candidate plans scored
};

// Largest layer count swept exhaustively (2^12 = 4096 forwards on the tiny
// calibration frames); larger nets use the greedy order.
inline constexpr std::int64_t kExhaustiveLayers = 12;

// Scores per-layer fp16/int8 assignments of `network` on (lr, hr) calibration
// pairs and installs the winner via set_hybrid_plan: the plan with the most
// int8 layers whose mean Y-PSNR sits within `budget_db` of fp32 (ties broken
// by higher PSNR). The all-fp16 plan is always feasible in practice (fp16
// tracks fp32 to ~1e-3 dB); if even it misses the budget, the best-PSNR plan
// is installed and the report's drop_db exposes the miss. The network must be
// calibrated (calibrate_int8) first; its precision setting is left unchanged.
HybridPlanReport plan_hybrid_precision(SesrInference& network, const std::vector<Tensor>& lr,
                                       const std::vector<Tensor>& hr, double budget_db = 0.3);

}  // namespace sesr::core
