// Tile-delta planning for temporally redundant (video) traffic.
//
// Consecutive video frames share most of their content; a collapsed SESR
// upscale is position-deterministic — the HR pixels of a tile depend only on
// the LR pixels inside its haloed footprint (tiled_inference's TileTask) — so
// a tile whose footprint is bitwise unchanged from the previous frame has a
// bitwise unchanged HR region. plan_tile_delta byte-compares every tile's
// haloed footprint against the previous frame (the ResponseCache confirmation
// trick applied at tile granularity: a stale or corrupt prior frame makes
// tiles *dirty*, never wrong) and the caller re-upscales only the dirty tiles,
// splicing the clean regions from the previous HR output.
//
// The bit-exactness contract holds per execution path:
//   * full-frame / tiled: upscale_tile on the same grid + halo reproduces the
//     full output bitwise for any halo >= the one the full pass used (exact
//     halo for full-frame; the executed grid's own halo for tiled).
//   * streaming: upscale_tile_streaming (a StreamingUpscaler over the haloed
//     crop) reproduces the full streaming output bitwise at exact halo. The
//     row pipeline is position-deterministic for every precision — fp32
//     summation order within a row window does not depend on the crop origin.
// The zero-tolerance audit pair `video_delta_vs_full` sweeps all four serve
// modes x all four precisions against this promise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/streaming.hpp"
#include "core/tiled_inference.hpp"
#include "tensor/tensor.hpp"

namespace sesr::core {

// Which tiles of the grid must be recomputed for the new frame.
struct DeltaPlan {
  std::vector<TileTask> tasks;      // the full tile grid, row-major
  std::vector<std::uint8_t> dirty;  // per task: 1 = footprint changed
  std::size_t dirty_count = 0;
};

// Diff `next` against `prev` (same (1, H, W, 1) shape; throws otherwise) over
// the tile grid of `options` with the given resolved halo (>= 0). A tile is
// dirty iff any pixel in its haloed LR footprint differs bitwise.
DeltaPlan plan_tile_delta(const Tensor& prev, const Tensor& next,
                          const TilingOptions& options, std::int64_t halo);

// Copy the HR region of every clean tile from `prev_hr` into `output` (both
// (1, scale*H, scale*W, 1)). Dirty tiles are left untouched for the caller to
// recompute and paste.
void splice_clean_tiles(Tensor& output, const Tensor& prev_hr, const DeltaPlan& plan,
                        std::int64_t scale);

// Streaming-path tile recompute: run `streamer` over the task's haloed crop
// and return the HR region of interest, exactly as upscale_tile does through
// the full-frame path. Bit-identical to the corresponding region of a full
// streaming upscale when the halo is exact.
Tensor upscale_tile_streaming(StreamingUpscaler& streamer, const Tensor& input,
                              const TileTask& task);

// Sequential reference for the delta path: given the previous frame's (LR,
// HR) pair and the next LR frame, recompute dirty tiles (streaming == true
// routes them through a StreamingUpscaler) and splice the rest. Bit-identical
// to upscaling `next_lr` from scratch through the same path whenever
// `prev_hr` is the from-scratch output of `prev_lr`. `dirty_out`, when given,
// receives the number of recomputed tiles.
Tensor upscale_video_delta(const SesrInference& network, const Tensor& prev_lr,
                           const Tensor& prev_hr, const Tensor& next_lr,
                           const TilingOptions& options, std::int64_t halo, bool streaming,
                           std::size_t* dirty_out = nullptr);

}  // namespace sesr::core
