// Two-stage x4 upsampling head — the paper's stated future work.
//
// Section 5.2: "This gap [SESR-XL vs large CNNs at x4] can potentially be
// filled using more channels (f) or extra upsampling convolutions like in
// prior art. This is left as a future work."
//
// This network implements that variant: instead of SESR's single 5x5 -> 16ch
// conv + double depth-to-space, the head is two [linear block -> shuffle]
// stages (prior-art style, e.g. TPSR):
//   body (as SESR)  ->  5x5 LB f -> 4f, d2s(2), PReLU  ->  5x5 LB f -> 4, d2s(2)
// The second stage runs at 2x resolution, which is exactly the extra MAC cost
// the paper's one-shot head avoids — bench_ablation_x4head quantifies the
// quality/MACs trade. The input residual does not apply (no H x W x 16
// pre-shuffle tensor to add the input to).
#pragma once

#include <memory>
#include <vector>

#include "core/linear_block.hpp"
#include "nn/activations.hpp"
#include "train/model.hpp"

namespace sesr::core {

class SesrTwoStageX4 final : public train::Model {
 public:
  // f/m/expand as in SesrConfig; always scale 4.
  SesrTwoStageX4(std::int64_t f, std::int64_t m, std::int64_t expand, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  void backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override;

  // Parameters of the collapsed deployment form.
  std::int64_t collapsed_parameter_count() const;
  // MACs for one (lr_h x lr_w) frame: body at 1x, second head stage at 2x.
  std::int64_t collapsed_macs(std::int64_t lr_h, std::int64_t lr_w) const;

 private:
  std::int64_t f_;
  std::int64_t m_;
  std::unique_ptr<LinearBlock> first_;
  std::vector<std::unique_ptr<LinearBlock>> blocks_;
  std::unique_ptr<LinearBlock> head1_;  // f -> 4f (shuffles to f at 2x)
  std::unique_ptr<LinearBlock> head2_;  // f -> 4  (shuffles to 1 at 4x)
  std::vector<std::unique_ptr<nn::PRelu>> activations_;  // m+1 body + 1 head
  Tensor cached_input_;
  Shape head1_pre_shuffle_{0, 0, 0, 0};
  Shape head2_pre_shuffle_{0, 0, 0, 0};
};

}  // namespace sesr::core
