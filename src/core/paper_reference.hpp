// Published numbers from the paper, embedded so every bench prints
// "paper vs measured" side by side (EXPERIMENTS.md is generated from these).
// PSNR/SSIM entries are the paper's Tables 1 and 2; hardware rows are Table 3.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace sesr::core::paper {

struct QualityEntry {
  double psnr = 0.0;
  double ssim = 0.0;
  bool present() const { return psnr > 0.0; }
};

struct QualityRow {
  std::string_view regime;
  std::string_view model;
  double parameters_k;  // thousands; 0 = not applicable (bicubic)
  double macs_g;        // GMACs to reach 720p; 0 = not applicable
  // Set5, Set14, BSD100, Urban100, Manga109, DIV2K — 0/0 where the paper has "-".
  std::array<QualityEntry, 6> sets;
};

inline constexpr std::array<std::string_view, 6> kDatasetNames{
    "Set5", "Set14", "BSD100", "Urban100", "Manga109", "DIV2K"};

// Table 1: x2 SISR.
inline constexpr std::array<QualityRow, 15> kTable1X2{{
    {"Small", "Bicubic", 0, 0,
     {{{33.68, 0.9307}, {30.24, 0.8693}, {29.56, 0.8439}, {26.88, 0.8408}, {30.82, 0.9349}, {32.45, 0.9043}}}},
    {"Small", "FSRCNN (authors' setup)", 12.46, 6.00,
     {{{36.85, 0.9561}, {32.47, 0.9076}, {31.37, 0.8891}, {29.43, 0.8963}, {35.81, 0.9689}, {34.73, 0.9349}}}},
    {"Small", "FSRCNN", 12.46, 6.00,
     {{{36.98, 0.9556}, {32.62, 0.9087}, {31.50, 0.8904}, {29.85, 0.9009}, {36.62, 0.9710}, {34.74, 0.9340}}}},
    {"Small", "MOREMNAS-C", 25.0, 5.5,
     {{{37.06, 0.9561}, {32.75, 0.9094}, {31.50, 0.8904}, {29.92, 0.9023}, {0, 0}, {0, 0}}}},
    {"Small", "SESR-M3", 8.91, 2.05,
     {{{37.21, 0.9577}, {32.70, 0.9100}, {31.56, 0.8920}, {29.92, 0.9034}, {36.47, 0.9717}, {35.03, 0.9373}}}},
    {"Small", "SESR-M5", 13.52, 3.11,
     {{{37.39, 0.9585}, {32.84, 0.9115}, {31.70, 0.8938}, {30.33, 0.9087}, {37.07, 0.9734}, {35.24, 0.9389}}}},
    {"Small", "SESR-M7", 18.12, 4.17,
     {{{37.47, 0.9588}, {32.91, 0.9118}, {31.77, 0.8946}, {30.49, 0.9105}, {37.14, 0.9738}, {35.32, 0.9395}}}},
    {"Medium", "TPSR-NoGAN", 60.0, 14.0,
     {{{37.38, 0.9583}, {33.00, 0.9123}, {31.75, 0.8942}, {30.61, 0.9119}, {0, 0}, {0, 0}}}},
    {"Medium", "SESR-M11", 27.34, 6.30,
     {{{37.58, 0.9593}, {33.03, 0.9128}, {31.85, 0.8956}, {30.72, 0.9136}, {37.40, 0.9746}, {35.45, 0.9404}}}},
    {"Large", "VDSR", 665.0, 612.6,
     {{{37.53, 0.9587}, {33.05, 0.9127}, {31.90, 0.8960}, {30.77, 0.9141}, {37.16, 0.9740}, {35.43, 0.9410}}}},
    {"Large", "LapSRN", 813.0, 29.9,
     {{{37.52, 0.9590}, {33.08, 0.9130}, {31.80, 0.8950}, {30.41, 0.9100}, {37.53, 0.9740}, {35.31, 0.9400}}}},
    {"Large", "BTSRN", 410.0, 207.7,
     {{{37.75, 0}, {33.20, 0}, {32.05, 0}, {31.63, 0}, {0, 0}, {0, 0}}}},
    {"Large", "CARN-M", 412.0, 91.2,
     {{{37.53, 0.9583}, {33.26, 0.9141}, {31.92, 0.8960}, {31.23, 0.9193}, {0, 0}, {0, 0}}}},
    {"Large", "MOREMNAS-B", 1118.0, 256.9,
     {{{37.58, 0.9584}, {33.22, 0.9135}, {31.91, 0.8959}, {31.14, 0.9175}, {0, 0}, {0, 0}}}},
    {"Large", "SESR-XL", 105.37, 24.27,
     {{{37.77, 0.9601}, {33.24, 0.9145}, {31.99, 0.8976}, {31.16, 0.9184}, {38.01, 0.9759}, {35.67, 0.9420}}}},
}};

// Table 2: x4 SISR.
inline constexpr std::array<QualityRow, 12> kTable2X4{{
    {"Small", "Bicubic", 0, 0,
     {{{28.43, 0.8113}, {26.00, 0.7025}, {25.96, 0.6682}, {23.14, 0.6577}, {24.90, 0.7855}, {28.10, 0.7745}}}},
    {"Small", "FSRCNN (authors' setup)", 12.46, 4.63,
     {{{30.45, 0.8648}, {27.44, 0.7528}, {26.89, 0.7124}, {24.39, 0.7212}, {27.40, 0.8539}, {29.37, 0.8117}}}},
    {"Small", "FSRCNN", 12.46, 4.63,
     {{{30.70, 0.8657}, {27.59, 0.7535}, {26.96, 0.7128}, {24.60, 0.7258}, {27.89, 0.8590}, {29.36, 0.8110}}}},
    {"Small", "SESR-M3", 13.71, 0.79,
     {{{30.75, 0.8714}, {27.62, 0.7579}, {27.00, 0.7166}, {24.61, 0.7304}, {27.90, 0.8644}, {29.52, 0.8155}}}},
    {"Small", "SESR-M5", 18.32, 1.05,
     {{{30.99, 0.8764}, {27.81, 0.7624}, {27.11, 0.7199}, {24.80, 0.7389}, {28.29, 0.8734}, {29.65, 0.8189}}}},
    {"Small", "SESR-M7", 22.92, 1.32,
     {{{31.14, 0.8787}, {27.88, 0.7641}, {27.13, 0.7209}, {24.90, 0.7436}, {28.53, 0.8778}, {29.72, 0.8204}}}},
    {"Medium", "TPSR-NoGAN", 61.0, 3.6,
     {{{31.10, 0.8779}, {27.95, 0.7663}, {27.15, 0.7214}, {24.97, 0.7456}, {0, 0}, {0, 0}}}},
    {"Medium", "SESR-M11", 32.14, 1.85,
     {{{31.27, 0.8810}, {27.94, 0.7660}, {27.20, 0.7225}, {25.00, 0.7466}, {28.73, 0.8815}, {29.81, 0.8221}}}},
    {"Large", "VDSR", 665.0, 612.6,
     {{{31.35, 0.8838}, {28.02, 0.7678}, {27.29, 0.7252}, {25.18, 0.7525}, {28.82, 0.8860}, {29.82, 0.8240}}}},
    {"Large", "LapSRN", 813.0, 149.4,
     {{{31.54, 0.8850}, {28.19, 0.7720}, {27.32, 0.7280}, {25.21, 0.7560}, {29.09, 0.8900}, {29.88, 0.8250}}}},
    {"Large", "CARN-M", 412.0, 32.5,
     {{{31.92, 0.8903}, {28.42, 0.7762}, {27.44, 0.7304}, {25.62, 0.7694}, {0, 0}, {0, 0}}}},
    {"Large", "SESR-XL", 114.97, 6.62,
     {{{31.54, 0.8866}, {28.12, 0.7712}, {27.31, 0.7277}, {25.31, 0.7604}, {29.04, 0.8901}, {29.94, 0.8266}}}},
}};

// Table 3: Arm Ethos-N78 (4 TOP/s) hardware performance.
struct HardwareRow {
  std::string_view model;
  double macs_g;
  double dram_mb;
  double runtime_ms;
  double fps;
};

inline constexpr std::array<HardwareRow, 5> kTable3{{
    {"FSRCNN (x2) 1080p->4K", 54.0, 564.11, 167.38, 5.97},
    {"SESR-M5 (x2) 1080p->4K", 28.0, 282.03, 27.22, 36.73},
    {"SESR-M5 (tiled, x2) 400x300->800x600", 1.62, 6.46, 1.26, 792.38},
    {"SESR-M5 (x4) 1080p->8K", 38.0, 389.86, 45.09, 22.17},
    {"SESR-M5 (tiled, x4) 400x300->1600x1200", 2.19, 9.84, 2.12, 471.69},
}};

// Section 5.4 / 5.5 DIV2K validation PSNRs for the overparameterization and
// ablation studies (all on the SESR-M11 skeleton).
inline constexpr double kSec54SesrM11 = 35.45;
inline constexpr double kSec54ExpandNet = 33.65;   // no short residuals: stalls
inline constexpr double kSec54RepVgg = 35.35;
inline constexpr double kSec54DirectVgg = 35.34;   // collapsed net trained directly
inline constexpr double kSec55ResidualOnly = 35.25;  // residuals without linear blocks
inline constexpr double kSec55HardwareVariantDropDb = 0.1;

// Fig. 3 training-efficiency claim: SESR-M5, batch 32 of 64x64 crops.
inline constexpr double kFig3ExpandedGMacs = 41.77;
inline constexpr double kFig3CollapsedGMacs = 1.84;

// Section 5.6 NAS claim: ~15% latency reduction at matched PSNR vs SESR-M5.
inline constexpr double kNasLatencyReduction = 0.15;

}  // namespace sesr::core::paper
