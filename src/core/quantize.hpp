// Post-training int8 quantization of the collapsed SESR network.
//
// The paper's Table 3 / Fig. 1(b) hardware numbers assume an int8 NPU (the
// Ethos-N78 executes int8); this module supplies the functional counterpart:
// per-tensor symmetric int8 weights, per-layer activation scales calibrated
// on sample inputs, integer-accumulated convolution, and a quantized
// inference network whose PSNR loss vs float can be measured (bench and tests
// show the sub-0.5 dB degradation typical for SR at int8).
#pragma once

#include <cstdint>
#include <vector>

#include "core/sesr_inference.hpp"
#include "nn/gemm_s8.hpp"
#include "tensor/tensor.hpp"

namespace sesr::core {

struct QuantizedTensor {
  std::vector<std::int8_t> values;
  Shape shape{0, 0, 0, 0};
  float scale = 1.0F;  // real = scale * q
};

// Degenerate-range convention shared by every quantizer in the repo: a
// tensor (or calibration set) with no signal maps to scale 1/127, so the int8
// grid spans [-1, 1] and dequantization of the all-zero code is exact. The
// constant (and the rounding expression every quantizer funnels through,
// nn::quantize_value) lives next to the int8 GEMM so the serving path, this
// module, and the src/check references can never drift apart again; the
// audit's int8 sweeps cover zero/near-zero inputs to enforce that.
inline constexpr float kDegenerateQuantScale = nn::kDegenerateQuantScale;

// Symmetric per-tensor quantization: scale = max|x| / 127.
QuantizedTensor quantize_symmetric(const Tensor& t);
Tensor dequantize(const QuantizedTensor& q);

// int8 x int8 -> int32-accumulated convolution, dequantized to float with
// scale_x * scale_w. SAME padding, stride 1 (the collapsed-SESR case).
Tensor conv2d_int8(const QuantizedTensor& input, const QuantizedTensor& weight);

// A fully quantized collapsed SESR: weights quantized once; activations
// quantized per layer with scales calibrated from representative inputs.
class QuantizedSesr {
 public:
  // Calibrates activation scales by running the float network over the
  // calibration images (max-abs observer).
  QuantizedSesr(const SesrInference& network, const std::vector<Tensor>& calibration);

  // Quantized upscale; activations are re-quantized between layers.
  Tensor upscale(const Tensor& input) const;

  const SesrConfig& config() const { return config_; }
  // Total int8 weight bytes (what would ship to the device).
  std::int64_t weight_bytes() const;

  // Read-only view of the quantized state, exposed so the numerical audit
  // (src/check) can replay the exact pipeline with a wider accumulator.
  const std::vector<QuantizedTensor>& weights() const { return weights_; }
  const std::vector<float>& activation_scales() const { return activation_scale_; }
  const std::vector<Tensor>& prelu_alphas() const { return prelu_alpha_; }

 private:
  Tensor apply_activation(std::size_t index, const Tensor& x) const;

  SesrConfig config_;
  std::vector<QuantizedTensor> weights_;
  std::vector<float> activation_scale_;  // per layer input scale
  std::vector<Tensor> prelu_alpha_;      // kept float (per-channel, tiny)
};

}  // namespace sesr::core
