#include "core/sesr_inference.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/plan/execution_plan.hpp"
#include "core/plan/planned_executor.hpp"
#include "nn/conv2d.hpp"
#include "nn/depth_to_space.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::core {

namespace {
constexpr const char* kConfigKey = "__config";
// Calibration state rides the checkpoint as extra tensors (ignored by older
// readers): activation scales as-is, the hybrid plan as 0/1 floats. The s8
// weights themselves are NOT stored — quantize_conv_weights is deterministic,
// so restoring replays it on the fp32 kernels and every replica of a
// checkpoint holds bit-identical quantized state.
constexpr const char* kActScaleKey = "__int8.act_scale";
constexpr const char* kPlanKey = "__int8.plan";

Tensor encode_config(const SesrConfig& c) {
  Tensor t(1, 1, 1, 8);
  t.raw()[0] = static_cast<float>(c.f);
  t.raw()[1] = static_cast<float>(c.m);
  t.raw()[2] = static_cast<float>(c.scale);
  t.raw()[3] = static_cast<float>(c.expand);
  t.raw()[4] = c.prelu ? 1.0F : 0.0F;
  t.raw()[5] = c.input_residual ? 1.0F : 0.0F;
  t.raw()[6] = c.with_bias ? 1.0F : 0.0F;
  t.raw()[7] = 0.0F;  // reserved
  return t;
}

SesrConfig decode_config(const Tensor& t) {
  if (t.numel() < 7) throw std::runtime_error("SesrInference: malformed config tensor");
  SesrConfig c;
  c.f = static_cast<std::int64_t>(t.raw()[0]);
  c.m = static_cast<std::int64_t>(t.raw()[1]);
  c.scale = static_cast<std::int64_t>(t.raw()[2]);
  c.expand = static_cast<std::int64_t>(t.raw()[3]);
  c.prelu = t.raw()[4] != 0.0F;
  c.input_residual = t.raw()[5] != 0.0F;
  c.with_bias = t.raw()[6] != 0.0F;
  return c;
}

const Tensor* bias_ptr(const CollapsedConv& c) { return c.bias ? &*c.bias : nullptr; }
}  // namespace

void add_input_residual(float* out, const float* input, std::int64_t pixels,
                        std::int64_t out_c) {
  for (std::int64_t p = 0; p < pixels; ++p) {
    for (std::int64_t c = 0; c < out_c; ++c) out[p * out_c + c] += input[p];
  }
}

SesrInference::SesrInference(const SesrNetwork& network) : config_(network.config()) {
  convs_ = plan::collapse_pass(network);
  for (std::int64_t i = 0; i < config_.m + 1; ++i) {
    if (config_.prelu) {
      const auto& prelu =
          dynamic_cast<const nn::PRelu&>(network.activation(static_cast<std::size_t>(i)));
      prelu_alpha_.push_back(prelu.alpha().value);
    } else {
      prelu_alpha_.emplace_back();  // empty = ReLU
    }
  }
}

SesrInference::SesrInference(const TensorMap& map) {
  const auto cfg_it = map.find(kConfigKey);
  if (cfg_it == map.end()) throw std::runtime_error("SesrInference: checkpoint missing config");
  config_ = decode_config(cfg_it->second);
  const std::int64_t n_convs = config_.m + 2;
  for (std::int64_t i = 0; i < n_convs; ++i) {
    CollapsedConv conv;
    const auto w_it = map.find("conv" + std::to_string(i) + ".weight");
    if (w_it == map.end()) throw std::runtime_error("SesrInference: checkpoint missing conv weight");
    conv.weight = w_it->second;
    const auto b_it = map.find("conv" + std::to_string(i) + ".bias");
    if (b_it != map.end()) conv.bias = b_it->second;
    convs_.push_back(std::move(conv));
  }
  for (std::int64_t i = 0; i < config_.m + 1; ++i) {
    const auto a_it = map.find("act" + std::to_string(i) + ".alpha");
    if (config_.prelu) {
      if (a_it == map.end()) throw std::runtime_error("SesrInference: checkpoint missing alpha");
      prelu_alpha_.push_back(a_it->second);
    } else {
      prelu_alpha_.emplace_back();
    }
  }
  const auto scale_it = map.find(kActScaleKey);
  if (scale_it != map.end()) {
    if (scale_it->second.numel() != n_convs) {
      throw std::runtime_error("SesrInference: malformed int8 activation scales");
    }
    act_scales_.assign(scale_it->second.raw(), scale_it->second.raw() + n_convs);
    s8_weights_.reserve(convs_.size());
    for (const CollapsedConv& c : convs_) s8_weights_.push_back(nn::quantize_conv_weights(c.weight));
  }
  const auto plan_it = map.find(kPlanKey);
  if (plan_it != map.end()) {
    if (plan_it->second.numel() != n_convs) {
      throw std::runtime_error("SesrInference: malformed hybrid plan");
    }
    plan_.reserve(static_cast<std::size_t>(n_convs));
    for (std::int64_t i = 0; i < n_convs; ++i) {
      plan_.push_back(plan_it->second.raw()[i] != 0.0F ? LayerPrecision::kInt8
                                                       : LayerPrecision::kFp16);
    }
  }
}

SesrInference::SesrInference(const SesrInference& other)
    : config_(other.config_),
      convs_(other.convs_),
      prelu_alpha_(other.prelu_alpha_),
      precision_(other.precision_),
      fp16_weights_(other.fp16_weights_),
      act_scales_(other.act_scales_),
      s8_weights_(other.s8_weights_),
      plan_(other.plan_),
      use_plan_(other.use_plan_) {}

SesrInference& SesrInference::operator=(const SesrInference& other) {
  if (this == &other) return *this;
  config_ = other.config_;
  convs_ = other.convs_;
  prelu_alpha_ = other.prelu_alpha_;
  precision_ = other.precision_;
  fp16_weights_ = other.fp16_weights_;
  act_scales_ = other.act_scales_;
  s8_weights_ = other.s8_weights_;
  plan_ = other.plan_;
  use_plan_ = other.use_plan_;
  exec_.reset();  // the copy re-plans lazily
  return *this;
}

SesrInference::SesrInference(SesrInference&&) noexcept = default;
SesrInference& SesrInference::operator=(SesrInference&&) noexcept = default;
SesrInference::~SesrInference() = default;

// Fused-epilogue descriptor for the activation after conv `index`: ReLU when
// the stored alpha tensor is empty, per-channel PReLU otherwise. Applies the
// exact same expressions as activate(), just inside the GEMM write-back.
nn::Epilogue SesrInference::activation_epilogue(std::size_t index) const {
  const Tensor& alpha = prelu_alpha_.at(index);
  nn::Epilogue e;
  if (alpha.empty()) {
    e.act = nn::Epilogue::Act::kRelu;
    return e;
  }
  if (alpha.numel() != convs_.at(index).weight.shape().dim(3)) {
    throw std::runtime_error("SesrInference: alpha/channel mismatch");
  }
  e.act = nn::Epilogue::Act::kPRelu;
  e.prelu_alpha = alpha.raw();
  return e;
}

Tensor SesrInference::activate(std::size_t index, const Tensor& x) const {
  const Tensor& alpha = prelu_alpha_.at(index);
  Tensor out(x.shape());
  const float* pi = x.raw();
  float* po = out.raw();
  const std::int64_t n = x.numel();
  if (alpha.empty()) {
    for (std::int64_t i = 0; i < n; ++i) po[i] = pi[i] > 0.0F ? pi[i] : 0.0F;
    return out;
  }
  const std::int64_t c = x.shape().c();
  if (alpha.numel() != c) throw std::runtime_error("SesrInference: alpha/channel mismatch");
  const float* pa = alpha.raw();
  const std::int64_t pixels = n / c;
  for (std::int64_t i = 0; i < pixels; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float v = pi[i * c + ch];
      po[i * c + ch] = v > 0.0F ? v : pa[ch] * v;
    }
  }
  return out;
}

Tensor SesrInference::upscale(const Tensor& input) const {
  if (!use_plan_) return upscale_direct(input);
  const Shape& s = input.shape();
  Tensor out(s.n(), s.h() * config_.scale, s.w() * config_.scale, 1);
  upscale_into(input, out);
  return out;
}

void SesrInference::upscale_into(const Tensor& input, Tensor& output) const {
  if (input.shape().c() != 1) {
    throw std::invalid_argument("SesrInference::upscale expects a single (Y) channel");
  }
  if (!exec_) exec_ = std::make_unique<plan::PlannedExecutor>();
  exec_->run(*this, input, output);
}

void SesrInference::plan_reserve(std::int64_t lr_pixels) {
  if (!exec_) exec_ = std::make_unique<plan::PlannedExecutor>();
  exec_->reserve(*this, lr_pixels);
}

void SesrInference::plan_trim(std::int64_t lr_pixels) {
  if (exec_) exec_->trim(*this, lr_pixels);
}

std::int64_t SesrInference::plan_arena_bytes() const {
  return exec_ ? exec_->arena_bytes() : 0;
}

Tensor SesrInference::upscale_direct(const Tensor& input) const {
  if (input.shape().c() != 1) {
    throw std::invalid_argument("SesrInference::upscale expects a single (Y) channel");
  }
  if (precision_ == InferencePrecision::kFp16) return upscale_fp16(input);
  if (precision_ == InferencePrecision::kInt8 || precision_ == InferencePrecision::kHybrid) {
    return upscale_mixed(input);
  }
  // Every conv except the last fuses its activation into the GEMM store
  // (bit-identical to conv + a separate activate() pass, one less full
  // sweep over the feature maps).
  auto run_act_conv = [this](std::size_t i, const Tensor& x) {
    const CollapsedConv& c = convs_[i];
    return nn::conv2d_fused(x, c.weight, bias_ptr(c), activation_epilogue(i),
                            nn::Padding::kSame);
  };
  Tensor feat = run_act_conv(0, input);
  Tensor skip = feat;
  for (std::size_t i = 1; i + 1 < convs_.size(); ++i) {
    feat = run_act_conv(i, feat);
  }
  add_inplace(feat, skip);
  const CollapsedConv& last = convs_.back();
  Tensor out = last.bias ? nn::conv2d_bias(feat, last.weight, *last.bias, nn::Padding::kSame)
                         : nn::conv2d(feat, last.weight, nn::Padding::kSame);
  if (config_.input_residual) {
    const std::int64_t oc = config_.output_channels();
    add_input_residual(out.raw(), input.raw(), out.numel() / oc, oc);
  }
  Tensor y = nn::depth_to_space(out, 2);
  if (config_.scale == 4) y = nn::depth_to_space(y, 2);
  return y;
}

Tensor SesrInference::upscale_fp16(const Tensor& input) const {
  // Input is rounded to binary16 once; from there every layer reads fp16
  // activations, accumulates in fp32, applies bias + activation in fp32 and
  // stores back one binary16 rounding. The tail (input residual and
  // depth-to-space) runs on the last conv's fp32 accumulator directly.
  fp16::HalfTensor x = fp16::HalfTensor::from_float(input);
  auto run_act_conv = [this](std::size_t i, const fp16::HalfTensor& h) {
    return nn::conv2d_fp16(h, fp16_weights_[i], bias_ptr(convs_[i]), activation_epilogue(i),
                           nn::Padding::kSame);
  };
  fp16::HalfTensor feat = run_act_conv(0, x);
  fp16::HalfTensor skip = feat;
  for (std::size_t i = 1; i + 1 < convs_.size(); ++i) {
    feat = run_act_conv(i, feat);
  }
  fp16::add_inplace(feat, skip);
  Tensor out = nn::conv2d_fp16_to_float(feat, fp16_weights_.back(), bias_ptr(convs_.back()),
                                        nn::Epilogue{}, nn::Padding::kSame);
  if (config_.input_residual) {
    // The fp16 path saw the rounded input, so the residual adds the same
    // rounded values (in fp32 arithmetic, no extra rounding on the result).
    const Tensor rounded_in = x.to_float();
    const std::int64_t oc = config_.output_channels();
    add_input_residual(out.raw(), rounded_in.raw(), out.numel() / oc, oc);
  }
  Tensor y = nn::depth_to_space(out, 2);
  if (config_.scale == 4) y = nn::depth_to_space(y, 2);
  return y;
}

void SesrInference::ensure_fp16_weights() {
  if (!fp16_weights_.empty()) return;
  fp16_weights_.reserve(convs_.size());
  for (const CollapsedConv& c : convs_) {
    fp16_weights_.push_back(fp16::HalfTensor::from_float(c.weight));
  }
}

void SesrInference::set_precision(InferencePrecision precision) {
  if (precision == InferencePrecision::kFp16) ensure_fp16_weights();
  if (precision == InferencePrecision::kInt8 || precision == InferencePrecision::kHybrid) {
    if (!int8_calibrated()) {
      throw std::logic_error("SesrInference: int8/hybrid precision requires calibrate_int8()");
    }
  }
  if (precision == InferencePrecision::kHybrid) {
    if (plan_.size() != convs_.size()) {
      throw std::logic_error("SesrInference: hybrid precision requires set_hybrid_plan()");
    }
    ensure_fp16_weights();  // the plan's fp16 layers
  }
  precision_ = precision;
  if (exec_) exec_->invalidate();
}

void SesrInference::set_hybrid_plan(std::vector<LayerPrecision> plan) {
  if (plan.size() != convs_.size()) {
    throw std::invalid_argument("SesrInference: hybrid plan must hold one entry per conv");
  }
  plan_ = std::move(plan);
  if (exec_) exec_->invalidate();
}

Tensor SesrInference::replay_fp32(
    const Tensor& input, const std::function<void(std::size_t, const Tensor&)>& observe) const {
  // Mirrors upscale()'s fp32 dataflow (bias included) with an observer hook
  // before each conv; calibration sees exactly what the quantized layers will
  // consume at serve time, up to quantization error itself.
  auto run_act_conv = [this](std::size_t i, const Tensor& x) {
    return nn::conv2d_fused(x, convs_[i].weight, bias_ptr(convs_[i]), activation_epilogue(i),
                            nn::Padding::kSame);
  };
  observe(0, input);
  Tensor feat = run_act_conv(0, input);
  Tensor skip = feat;
  for (std::size_t i = 1; i + 1 < convs_.size(); ++i) {
    observe(i, feat);
    feat = run_act_conv(i, feat);
  }
  add_inplace(feat, skip);
  observe(convs_.size() - 1, feat);
  const CollapsedConv& last = convs_.back();
  Tensor out = last.bias ? nn::conv2d_bias(feat, last.weight, *last.bias, nn::Padding::kSame)
                         : nn::conv2d(feat, last.weight, nn::Padding::kSame);
  if (config_.input_residual) {
    const std::int64_t oc = config_.output_channels();
    add_input_residual(out.raw(), input.raw(), out.numel() / oc, oc);
  }
  Tensor y = nn::depth_to_space(out, 2);
  if (config_.scale == 4) y = nn::depth_to_space(y, 2);
  return y;
}

void SesrInference::calibrate_int8(const std::vector<Tensor>& frames) {
  if (frames.empty()) {
    throw std::invalid_argument("SesrInference::calibrate_int8: no calibration frames");
  }
  s8_weights_.clear();
  s8_weights_.reserve(convs_.size());
  for (const CollapsedConv& c : convs_) s8_weights_.push_back(nn::quantize_conv_weights(c.weight));
  std::vector<float> scales(convs_.size(), 0.0F);
  for (const Tensor& frame : frames) {
    if (frame.shape().c() != 1) {
      throw std::invalid_argument(
          "SesrInference::calibrate_int8: calibration frames must be Y-channel");
    }
    replay_fp32(frame, [&](std::size_t layer, const Tensor& x) {
      scales[layer] = std::max(scales[layer], max_abs(x) / 127.0F);
    });
  }
  for (float& s : scales) {
    if (s <= 0.0F) s = nn::kDegenerateQuantScale;
  }
  act_scales_ = std::move(scales);
}

Tensor SesrInference::upscale_mixed(const Tensor& input) const {
  // fp32 carrier between layers: int8 layers quantize their input inside the
  // GEMM's A-pack with the calibrated fixed scale; fp16 layers round the
  // carrier through binary16 on the way in and round their stored output once
  // (so an fp16 layer behaves exactly like one layer of the pure-fp16 path).
  // The residual adds and the tail stay fp32. With a fixed per-layer scale
  // every elementwise step commutes with cropping, so tiled and streaming
  // execution reproduce this path bit-exactly.
  const std::size_t n_convs = convs_.size();
  auto layer_is_int8 = [&](std::size_t i) {
    return precision_ == InferencePrecision::kInt8 || plan_[i] == LayerPrecision::kInt8;
  };
  auto run_conv = [&](std::size_t i, const Tensor& x, bool with_act) {
    const CollapsedConv& c = convs_[i];
    const nn::Epilogue epi = with_act ? activation_epilogue(i) : nn::Epilogue{};
    if (layer_is_int8(i)) {
      return nn::conv2d_s8(x, act_scales_[i], s8_weights_[i], bias_ptr(c), epi,
                           nn::Padding::kSame);
    }
    const fp16::HalfTensor h = fp16::HalfTensor::from_float(x);
    Tensor out = nn::conv2d_fp16_to_float(h, fp16_weights_[i], bias_ptr(c), epi,
                                          nn::Padding::kSame);
    if (i + 1 < n_convs) fp16::round_through_half(out.raw(), out.numel());
    return out;
  };
  Tensor feat = run_conv(0, input, /*with_act=*/true);
  Tensor skip = feat;
  for (std::size_t i = 1; i + 1 < n_convs; ++i) {
    feat = run_conv(i, feat, /*with_act=*/true);
  }
  add_inplace(feat, skip);
  Tensor out = run_conv(n_convs - 1, feat, /*with_act=*/false);
  if (config_.input_residual) {
    const std::int64_t oc = config_.output_channels();
    add_input_residual(out.raw(), input.raw(), out.numel() / oc, oc);
  }
  Tensor y = nn::depth_to_space(out, 2);
  if (config_.scale == 4) y = nn::depth_to_space(y, 2);
  return y;
}

std::int64_t SesrInference::parameter_count() const {
  std::int64_t p = 0;
  for (const CollapsedConv& c : convs_) {
    p += c.weight.numel();
    if (c.bias) p += c.bias->numel();
  }
  return p;
}

TensorMap SesrInference::to_tensor_map() const {
  TensorMap map;
  map.emplace(kConfigKey, encode_config(config_));
  for (std::size_t i = 0; i < convs_.size(); ++i) {
    map.emplace("conv" + std::to_string(i) + ".weight", convs_[i].weight);
    if (convs_[i].bias) map.emplace("conv" + std::to_string(i) + ".bias", *convs_[i].bias);
  }
  for (std::size_t i = 0; i < prelu_alpha_.size(); ++i) {
    if (!prelu_alpha_[i].empty()) map.emplace("act" + std::to_string(i) + ".alpha", prelu_alpha_[i]);
  }
  if (int8_calibrated()) {
    Tensor scales(1, 1, 1, static_cast<std::int64_t>(act_scales_.size()));
    for (std::size_t i = 0; i < act_scales_.size(); ++i) scales.raw()[i] = act_scales_[i];
    map.emplace(kActScaleKey, std::move(scales));
  }
  if (!plan_.empty()) {
    Tensor plan(1, 1, 1, static_cast<std::int64_t>(plan_.size()));
    for (std::size_t i = 0; i < plan_.size(); ++i) {
      plan.raw()[i] = plan_[i] == LayerPrecision::kInt8 ? 1.0F : 0.0F;
    }
    map.emplace(kPlanKey, std::move(plan));
  }
  return map;
}

}  // namespace sesr::core
