#include "core/macs.hpp"

#include <stdexcept>

namespace sesr::core {

std::int64_t sesr_parameter_count(const SesrConfig& config) {
  const std::int64_t f = config.f;
  return 5 * 5 * 1 * f + config.m * (3 * 3 * f * f) + 5 * 5 * f * config.output_channels();
}

MacReport sesr_macs(const SesrConfig& config, std::int64_t lr_h, std::int64_t lr_w) {
  MacReport r;
  r.model = config.describe();
  r.parameters = sesr_parameter_count(config);
  r.macs = lr_h * lr_w * r.parameters;
  return r;
}

namespace {
// FSRCNN(d=56, s=12, m=4): the standard compact configuration the paper
// compares against (12.46K parameters).
constexpr std::int64_t kD = 56;
constexpr std::int64_t kS = 12;
constexpr std::int64_t kMapLayers = 4;

std::int64_t fsrcnn_lr_params() {
  const std::int64_t feature = 5 * 5 * 1 * kD;    // 5x5 feature extraction
  const std::int64_t shrink = 1 * 1 * kD * kS;    // 1x1 shrink
  const std::int64_t mapping = kMapLayers * 3 * 3 * kS * kS;  // 4 x 3x3 map
  const std::int64_t expand = 1 * 1 * kS * kD;    // 1x1 expand
  return feature + shrink + mapping + expand;
}

constexpr std::int64_t kDeconvParams = 9 * 9 * kD * 1;  // 9x9 deconv to 1 channel
}  // namespace

std::int64_t fsrcnn_parameter_count() { return fsrcnn_lr_params() + kDeconvParams; }

MacReport fsrcnn_macs(std::int64_t lr_h, std::int64_t lr_w, std::int64_t scale) {
  if (scale < 1) throw std::invalid_argument("fsrcnn_macs: scale must be >= 1");
  MacReport r;
  r.model = "FSRCNN";
  r.parameters = fsrcnn_parameter_count();
  // Body runs per LR pixel; the transposed conv runs per HR pixel.
  r.macs = lr_h * lr_w * fsrcnn_lr_params() +
           (lr_h * scale) * (lr_w * scale) * kDeconvParams;
  return r;
}

std::int64_t lr_extent_for(std::int64_t hr_extent, std::int64_t scale) {
  if (scale < 1 || hr_extent % scale != 0) {
    throw std::invalid_argument("lr_extent_for: hr_extent must be divisible by scale");
  }
  return hr_extent / scale;
}

}  // namespace sesr::core
