// Parameter and MAC accounting (paper Section 3.2).
//
// For the collapsed SESR: P = (5*5*1*f) + m*(3*3*f*f) + (5*5*f*scale^2),
// and #MACs = H * W * P where (H, W) is the low-resolution input size — every
// collapsed conv runs at LR resolution with SAME padding. FSRCNN differs: its
// final 9x9 transposed conv runs per *output* pixel, which is exactly why SESR's
// single-conv + double depth-to-space x4 head scales so much better (Table 2).
#pragma once

#include <cstdint>
#include <string>

#include "core/sesr_network.hpp"

namespace sesr::core {

struct MacReport {
  std::string model;
  std::int64_t parameters = 0;
  std::int64_t macs = 0;  // multiply-accumulates for one frame at the given size

  double giga_macs() const { return static_cast<double>(macs) * 1e-9; }
  double kilo_parameters() const { return static_cast<double>(parameters) * 1e-3; }
};

// Collapsed-SESR parameter count from the closed-form formula.
std::int64_t sesr_parameter_count(const SesrConfig& config);

// MACs for upscaling an (lr_h x lr_w) input with a collapsed SESR.
MacReport sesr_macs(const SesrConfig& config, std::int64_t lr_h, std::int64_t lr_w);

// FSRCNN (d=56, s=12, m=4, 9x9 deconv) accounting at the given LR size/scale.
std::int64_t fsrcnn_parameter_count();
MacReport fsrcnn_macs(std::int64_t lr_h, std::int64_t lr_w, std::int64_t scale);

// LR input size whose upscale lands on a given HR output (Table 1/2 report MACs
// "needed to convert an image to 720p": hr / scale).
std::int64_t lr_extent_for(std::int64_t hr_extent, std::int64_t scale);

}  // namespace sesr::core
