#include "core/video_session.hpp"

#include <cstring>
#include <stdexcept>

#include "tensor/tensor_ops.hpp"

namespace sesr::core {

DeltaPlan plan_tile_delta(const Tensor& prev, const Tensor& next,
                          const TilingOptions& options, std::int64_t halo) {
  const Shape& s = next.shape();
  if (s.n() != 1 || s.c() != 1) {
    throw std::invalid_argument("plan_tile_delta: expects (1, H, W, 1) Y frames");
  }
  if (!(prev.shape() == s)) {
    throw std::invalid_argument("plan_tile_delta: frame shapes must match");
  }
  DeltaPlan plan;
  plan.tasks = tile_grid(s.h(), s.w(), options, halo);
  plan.dirty.assign(plan.tasks.size(), 0);
  const std::int64_t w = s.w();
  const float* a = prev.raw();
  const float* b = next.raw();
  for (std::size_t i = 0; i < plan.tasks.size(); ++i) {
    const TileTask& t = plan.tasks[i];
    // Bitwise row-segment compare over the haloed footprint. memcmp on the
    // raw float bytes: NaN payloads and signed zeros count as changes, which
    // errs toward recompute — exactly the safe direction.
    for (std::int64_t y = t.hy0; y < t.hy0 + t.hh; ++y) {
      const std::size_t off = static_cast<std::size_t>(y * w + t.hx0);
      if (std::memcmp(a + off, b + off, static_cast<std::size_t>(t.hw) * sizeof(float)) != 0) {
        plan.dirty[i] = 1;
        ++plan.dirty_count;
        break;
      }
    }
  }
  return plan;
}

void splice_clean_tiles(Tensor& output, const Tensor& prev_hr, const DeltaPlan& plan,
                        std::int64_t scale) {
  if (!(output.shape() == prev_hr.shape())) {
    throw std::invalid_argument("splice_clean_tiles: HR shapes must match");
  }
  const std::int64_t w = output.shape().w();
  for (std::size_t i = 0; i < plan.tasks.size(); ++i) {
    if (plan.dirty[i]) continue;
    const TileTask& t = plan.tasks[i];
    for (std::int64_t y = t.y0 * scale; y < (t.y0 + t.th) * scale; ++y) {
      const std::size_t off = static_cast<std::size_t>(y * w + t.x0 * scale);
      std::memcpy(output.raw() + off, prev_hr.raw() + off,
                  static_cast<std::size_t>(t.tw) * scale * sizeof(float));
    }
  }
}

Tensor upscale_tile_streaming(StreamingUpscaler& streamer, const Tensor& input,
                              const TileTask& task) {
  const std::int64_t scale = streamer.network().config().scale;
  Tensor tile = crop_spatial(input, task.hy0, task.hx0, task.hh, task.hw);
  Tensor up = streamer.upscale(tile);
  return crop_spatial(up, (task.y0 - task.hy0) * scale, (task.x0 - task.hx0) * scale,
                      task.th * scale, task.tw * scale);
}

Tensor upscale_video_delta(const SesrInference& network, const Tensor& prev_lr,
                           const Tensor& prev_hr, const Tensor& next_lr,
                           const TilingOptions& options, std::int64_t halo, bool streaming,
                           std::size_t* dirty_out) {
  const DeltaPlan plan = plan_tile_delta(prev_lr, next_lr, options, halo);
  if (dirty_out != nullptr) *dirty_out = plan.dirty_count;
  const std::int64_t scale = network.config().scale;
  Tensor output(1, next_lr.shape().h() * scale, next_lr.shape().w() * scale, 1);
  splice_clean_tiles(output, prev_hr, plan, scale);
  std::optional<StreamingUpscaler> streamer;
  if (streaming && plan.dirty_count > 0) streamer.emplace(network);
  for (std::size_t i = 0; i < plan.tasks.size(); ++i) {
    if (!plan.dirty[i]) continue;
    const TileTask& task = plan.tasks[i];
    const Tensor roi = streaming ? upscale_tile_streaming(*streamer, next_lr, task)
                                 : upscale_tile(network, next_lr, task);
    paste_tile(output, roi, task, scale);
  }
  return output;
}

}  // namespace sesr::core
