// Collapsible Linear Block (paper Section 3.1, Fig. 2(b)).
//
// Training-time structure: a kh x kw convolution expanding x input channels to
// p >> x intermediate channels, followed by a 1 x 1 projection to y output
// channels, with NO nonlinearity in between — so the pair is algebraically one
// kh x kw convolution with x inputs and y outputs. An optional short residual
// (x == y, odd kernel) is folded via Algorithm 2.
//
// Two training modes, numerically identical by construction (a property test
// asserts their gradients match):
//   kExpanded        — forward runs both convolutions on the feature maps.
//   kCollapsedForward— the paper's efficient implementation (Fig. 3): each step
//                      first collapses the weights (cheap: kernels are tiny),
//                      runs the forward pass as ONE narrow convolution, and
//                      backpropagates through the collapse operator into the
//                      expanded weights.
#pragma once

#include <optional>
#include <string>

#include "core/block.hpp"
#include "core/collapse.hpp"
#include "nn/conv2d.hpp"
#include "nn/layer.hpp"

namespace sesr::core {

enum class BlockMode {
  kExpanded,
  kCollapsedForward,
};

struct LinearBlockConfig {
  std::int64_t kh = 3;
  std::int64_t kw = 3;
  std::int64_t in_channels = 16;
  std::int64_t expand_channels = 256;  // p in the paper; p >> x
  std::int64_t out_channels = 16;
  bool short_residual = false;  // fold +x via Algorithm 2 (needs in==out, odd k)
  bool with_bias = false;       // paper's parameter counts are bias-free
  BlockMode mode = BlockMode::kCollapsedForward;
};

class LinearBlock final : public CollapsibleBlock {
 public:
  LinearBlock(std::string name, const LinearBlockConfig& config, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return name_; }

  const LinearBlockConfig& config() const { return config_; }

  // Deployment export: the single narrow kernel (residual folded in when the
  // block has one) and its bias, independent of training mode.
  Tensor collapsed_weight() const override;
  std::optional<Tensor> collapsed_bias() const override;

  // Number of parameters the *collapsed* block contributes (kh*kw*x*y [+ y]),
  // i.e. what the paper's P formula counts.
  std::int64_t collapsed_parameter_count() const override;

  nn::Parameter& expand_weight() { return expand_weight_; }
  nn::Parameter& project_weight() { return project_weight_; }

 private:
  Tensor collapse_weights_cached(CollapseCache& cache) const;

  std::string name_;
  LinearBlockConfig config_;
  nn::Parameter expand_weight_;   // (kh, kw, x, p)
  nn::Parameter project_weight_;  // (1, 1, p, y)
  std::optional<nn::Parameter> expand_bias_;   // (1, 1, 1, p)
  std::optional<nn::Parameter> project_bias_;  // (1, 1, 1, y)

  // Forward caches (training mode only).
  Tensor cached_input_;
  Tensor cached_mid_;            // expanded-mode: output of the first conv
  CollapseCache collapse_cache_; // collapsed-forward mode
};

}  // namespace sesr::core
