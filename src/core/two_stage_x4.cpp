#include "core/two_stage_x4.hpp"

#include <stdexcept>

#include "nn/depth_to_space.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::core {

namespace {
LinearBlockConfig lb(std::int64_t kh, std::int64_t in_c, std::int64_t expand, std::int64_t out_c,
                     bool residual) {
  LinearBlockConfig c;
  c.kh = c.kw = kh;
  c.in_channels = in_c;
  c.expand_channels = expand;
  c.out_channels = out_c;
  c.short_residual = residual;
  c.mode = BlockMode::kCollapsedForward;
  return c;
}
}  // namespace

SesrTwoStageX4::SesrTwoStageX4(std::int64_t f, std::int64_t m, std::int64_t expand, Rng& rng)
    : f_(f), m_(m) {
  if (f < 1 || m < 1) throw std::invalid_argument("SesrTwoStageX4: f and m must be >= 1");
  first_ = std::make_unique<LinearBlock>("first", lb(5, 1, expand, f, false), rng);
  for (std::int64_t i = 0; i < m; ++i) {
    blocks_.push_back(
        std::make_unique<LinearBlock>("block" + std::to_string(i), lb(3, f, expand, f, true), rng));
  }
  head1_ = std::make_unique<LinearBlock>("head1", lb(5, f, expand, 4 * f, false), rng);
  head2_ = std::make_unique<LinearBlock>("head2", lb(5, f, expand, 4, false), rng);
  for (std::int64_t i = 0; i < m + 1; ++i) {
    activations_.push_back(std::make_unique<nn::PRelu>("act" + std::to_string(i), f));
  }
  activations_.push_back(std::make_unique<nn::PRelu>("act.head", f));  // after first shuffle
}

Tensor SesrTwoStageX4::forward(const Tensor& input, bool training) {
  if (input.shape().c() != 1) {
    throw std::invalid_argument("SesrTwoStageX4: expects a single (Y) input channel");
  }
  if (training) cached_input_ = input;
  Tensor feat = activations_[0]->forward(first_->forward(input, training), training);
  Tensor skip = feat;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    feat = activations_[i + 1]->forward(blocks_[i]->forward(feat, training), training);
  }
  add_inplace(feat, skip);
  Tensor up1 = head1_->forward(feat, training);  // (N, H, W, 4f)
  head1_pre_shuffle_ = up1.shape();
  Tensor mid = nn::depth_to_space(up1, 2);       // (N, 2H, 2W, f)
  mid = activations_.back()->forward(mid, training);
  Tensor up2 = head2_->forward(mid, training);   // (N, 2H, 2W, 4)
  head2_pre_shuffle_ = up2.shape();
  return nn::depth_to_space(up2, 2);             // (N, 4H, 4W, 1)
}

void SesrTwoStageX4::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("SesrTwoStageX4::backward before forward");
  Tensor g = nn::space_to_depth(grad_output, 2);
  if (g.shape() != head2_pre_shuffle_) throw std::logic_error("SesrTwoStageX4: grad shape mismatch");
  Tensor g_mid = head2_->backward(g);
  g_mid = activations_.back()->backward(g_mid);
  Tensor g_up1 = nn::space_to_depth(g_mid, 2);
  if (g_up1.shape() != head1_pre_shuffle_) {
    throw std::logic_error("SesrTwoStageX4: head1 grad shape mismatch");
  }
  Tensor g_feat = head1_->backward(g_up1);
  Tensor g_chain = g_feat;
  for (std::size_t i = blocks_.size(); i-- > 0;) {
    g_chain = blocks_[i]->backward(activations_[i + 1]->backward(g_chain));
  }
  Tensor g_skip = add(g_chain, g_feat);
  first_->backward(activations_[0]->backward(g_skip));
}

std::vector<nn::Parameter*> SesrTwoStageX4::parameters() {
  std::vector<nn::Parameter*> out;
  for (nn::Parameter* p : first_->parameters()) out.push_back(p);
  for (auto& b : blocks_) {
    for (nn::Parameter* p : b->parameters()) out.push_back(p);
  }
  for (nn::Parameter* p : head1_->parameters()) out.push_back(p);
  for (nn::Parameter* p : head2_->parameters()) out.push_back(p);
  for (auto& a : activations_) {
    for (nn::Parameter* p : a->parameters()) out.push_back(p);
  }
  return out;
}

std::string SesrTwoStageX4::name() const {
  return "SESR-M" + std::to_string(m_) + " two-stage-x4 (f=" + std::to_string(f_) + ")";
}

std::int64_t SesrTwoStageX4::collapsed_parameter_count() const {
  return first_->collapsed_parameter_count() + m_ * blocks_.front()->collapsed_parameter_count() +
         head1_->collapsed_parameter_count() + head2_->collapsed_parameter_count();
}

std::int64_t SesrTwoStageX4::collapsed_macs(std::int64_t lr_h, std::int64_t lr_w) const {
  const std::int64_t body = first_->collapsed_parameter_count() +
                            m_ * blocks_.front()->collapsed_parameter_count() +
                            head1_->collapsed_parameter_count();
  const std::int64_t stage2 = head2_->collapsed_parameter_count();
  return lr_h * lr_w * body + (2 * lr_h) * (2 * lr_w) * stage2;
}

}  // namespace sesr::core
