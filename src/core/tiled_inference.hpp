// Functional tiled inference (paper Section 5.6, "further optimizations").
//
// The NPU study prices tiling analytically; this module actually *runs* it:
// the LR image is cut into tiles, each tile is padded with a halo of real
// image pixels covering the network's receptive field, upscaled independently,
// and the HR tiles are stitched. With halo >= receptive-field radius the
// stitched result is exactly the full-frame result (a property test asserts
// this) — the "boundary overhead ... to maintain the functional correctness"
// the paper mentions. Smaller halos trade exactness for less overlap compute.
#pragma once

#include <cstdint>

#include "core/sesr_inference.hpp"
#include "tensor/tensor.hpp"

namespace sesr::core {

struct TilingOptions {
  std::int64_t tile_h = 64;  // LR tile size (without halo)
  std::int64_t tile_w = 64;
  std::int64_t halo = -1;    // -1 = exact (receptive-field radius)
};

// Receptive-field radius of the collapsed network: sum over convs of
// (max(kh, kw) - 1) / 2 — the halo needed for exact tiling.
std::int64_t receptive_field_radius(const SesrInference& network);

// Upscale (1, H, W, 1) tile by tile. Edge tiles clamp the halo at the image
// border (replicating the full-frame padding behaviour).
Tensor upscale_tiled(const SesrInference& network, const Tensor& input,
                     const TilingOptions& options);

// Overhead accounting: total LR pixels convolved (tiles + halos) relative to
// the untiled H*W — the paper's "boundary overhead" made measurable.
double tiling_compute_overhead(std::int64_t image_h, std::int64_t image_w,
                               const TilingOptions& options, std::int64_t halo_used);

}  // namespace sesr::core
