// Functional tiled inference (paper Section 5.6, "further optimizations").
//
// The NPU study prices tiling analytically; this module actually *runs* it:
// the LR image is cut into tiles, each tile is padded with a halo of real
// image pixels covering the network's receptive field, upscaled independently,
// and the HR tiles are stitched. With halo >= receptive-field radius the
// stitched result is exactly the full-frame result (a property test asserts
// this) — the "boundary overhead ... to maintain the functional correctness"
// the paper mentions. Smaller halos trade exactness for less overlap compute.
#pragma once

#include <cstdint>
#include <vector>

#include "core/sesr_inference.hpp"
#include "tensor/tensor.hpp"

namespace sesr::core {

struct TilingOptions {
  std::int64_t tile_h = 64;  // LR tile size (without halo)
  std::int64_t tile_w = 64;
  std::int64_t halo = -1;    // -1 = exact (receptive-field radius)
};

// Receptive-field radius of the collapsed network: sum over convs of
// (max(kh, kw) - 1) / 2 — the halo needed for exact tiling.
std::int64_t receptive_field_radius(const SesrInference& network);

// One tile of the grid, in LR coordinates. The fan-out seam: tasks are
// independent — any thread may run upscale_tile on any task and paste the
// result, because the pasted HR regions are disjoint.
struct TileTask {
  std::int64_t y0 = 0, x0 = 0;  // tile origin (without halo)
  std::int64_t th = 0, tw = 0;  // tile extent (without halo)
  std::int64_t hy0 = 0, hx0 = 0;  // haloed crop origin (clamped to the image)
  std::int64_t hh = 0, hw = 0;    // haloed crop extent
};

// Enumerate the tile grid for an (1, H, W, 1) input, row-major. Halo < 0 is
// resolved by the caller (pass receptive_field_radius for exactness).
std::vector<TileTask> tile_grid(std::int64_t image_h, std::int64_t image_w,
                                const TilingOptions& options, std::int64_t halo);

// A contiguous run of tile-grid tasks forming one scheduling unit. The serve
// layer's dispatch queue works in these units: tiles_per_unit = 1 gives the
// finest cross-request interleaving, larger units amortize dispatch overhead
// for big grids. Units partition [0, task_count) exactly.
struct TileUnitRange {
  std::size_t first = 0;
  std::size_t count = 0;
};

// Partition `task_count` tiles into units of at most `tiles_per_unit` (values
// < 1 are treated as 1). The last unit takes the remainder.
std::vector<TileUnitRange> plan_tile_units(std::size_t task_count, std::int64_t tiles_per_unit);

// Upscale one task's haloed crop and return the HR region of interest
// (th*scale by tw*scale) to paste at (y0*scale, x0*scale).
Tensor upscale_tile(const SesrInference& network, const Tensor& input, const TileTask& task);

// Paste an upscale_tile result into the (1, scale*H, scale*W, 1) output frame.
// Distinct tasks write disjoint regions, so concurrent pastes need no lock.
void paste_tile(Tensor& output, const Tensor& roi, const TileTask& task, std::int64_t scale);

// Upscale (1, H, W, 1) tile by tile. Edge tiles clamp the halo at the image
// border (replicating the full-frame padding behaviour).
Tensor upscale_tiled(const SesrInference& network, const Tensor& input,
                     const TilingOptions& options);

// Overhead accounting: total LR pixels convolved (tiles + halos) relative to
// the untiled H*W — the paper's "boundary overhead" made measurable.
double tiling_compute_overhead(std::int64_t image_h, std::int64_t image_w,
                               const TilingOptions& options, std::int64_t halo_used);

}  // namespace sesr::core
