// Streaming (line-buffer) inference for the collapsed SESR network.
//
// This is the functional counterpart of the cascade fusion the NPU simulator
// prices (src/hw): the whole network advances row by row through per-layer
// line buffers, every intermediate row is computed exactly once, and peak
// memory is O(width * channels * kernel_rows) — INDEPENDENT of image height.
// It demonstrates, in running code, why the paper's narrow VGG-like collapsed
// network streams end-to-end while wide/residual-heavy nets need DRAM-sized
// buffers: the two long residuals are exactly the streams that must be
// retained across the pipeline delay, visible here as extra buffered rows.
//
// Output equals SesrInference::upscale to float tolerance (property-tested).
// In pure kInt8 precision the match is bitwise: integer accumulation is
// order-independent and the fixed calibrated scales commute with cropping, so
// the row-by-row pipeline reproduces the full-frame GEMM path exactly. Hybrid
// plans with fp16 layers match to float tolerance like kFp16 (fp32 summation
// order differs between conv_row and the blocked GEMM).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/sesr_inference.hpp"
#include "tensor/tensor.hpp"

namespace sesr::core {

class StreamingUpscaler {
 public:
  explicit StreamingUpscaler(const SesrInference& network);

  // Upscale a (1, H, W, 1) Y image; numerically equal to network.upscale().
  Tensor upscale(const Tensor& input);

  // Instrumentation from the last upscale() call: peak rows simultaneously
  // buffered across all streams, and the equivalent storage bytes (4 bytes
  // per element, or 2 for the line buffers a binary16 pipeline would hold —
  // everything except the fp32 pre-shuffle stream when the network is in
  // fp16 precision). In kInt8/kHybrid a quantized pipeline holds each line
  // buffer at the width its consuming conv needs — 1 byte for an int8
  // consumer, 2 for an fp16 one — except the two long-residual sources
  // (input and act0), whose second consumer adds on the carrier and which
  // therefore stay at binary16 minimum.
  std::int64_t peak_buffered_rows() const { return peak_rows_; }
  std::int64_t peak_buffered_bytes() const { return peak_bytes_; }

  // The network this streamer pipelines (the tile-delta path crops HR regions
  // of interest with its scale).
  const SesrInference& network() const { return net_; }

 private:
  struct Stream {
    std::int64_t channels = 0;
    std::int64_t next_row = 0;  // rows [0, next_row) have been produced
    std::deque<std::pair<std::int64_t, std::vector<float>>> rows;

    const float* row(std::int64_t y) const;  // nullptr if y outside [0, H)
    void push(std::int64_t y, std::vector<float> data);
    void prune(std::int64_t min_needed_row);
  };

  const SesrInference& net_;
  std::vector<std::int64_t> radius_;  // per conv layer
  // Mirrors the network's fp16 weight rounding when it is in kFp16 precision:
  // fp32 copies whose values are exactly round16(weight), built lazily. Row
  // values stay fp32 in the deques (every stored value is binary16-exact),
  // so only the byte accounting changes.
  std::vector<Tensor> fp16_weights_;
  std::int64_t peak_rows_ = 0;
  std::int64_t peak_bytes_ = 0;
};

}  // namespace sesr::core
