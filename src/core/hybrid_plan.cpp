#include "core/hybrid_plan.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace sesr::core {

namespace {

// Plain full-image Y-PSNR against peak 1.0, double-accumulated. The planner
// only ever compares its own scores against its own fp32 baseline, so it uses
// this self-contained definition instead of pulling the metrics library (and
// its data dependency) into core.
double psnr_db(const Tensor& got, const Tensor& want) {
  if (got.numel() != want.numel()) {
    throw std::invalid_argument("plan_hybrid_precision: LR/HR pair shape mismatch");
  }
  double se = 0.0;
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    const double d = static_cast<double>(got.raw()[i]) - static_cast<double>(want.raw()[i]);
    se += d * d;
  }
  const double mse = se / static_cast<double>(got.numel());
  if (mse <= 0.0) return 199.0;  // identical images; finite so means stay finite
  return 10.0 * std::log10(1.0 / mse);
}

}  // namespace

HybridPlanReport plan_hybrid_precision(SesrInference& network, const std::vector<Tensor>& lr,
                                       const std::vector<Tensor>& hr, double budget_db) {
  if (lr.empty() || lr.size() != hr.size()) {
    throw std::invalid_argument("plan_hybrid_precision: need matching LR/HR calibration pairs");
  }
  if (!network.int8_calibrated()) {
    throw std::logic_error("plan_hybrid_precision: calibrate_int8() must run first");
  }
  const std::size_t n_layers = network.convolutions().size();
  const InferencePrecision saved_precision = network.precision();

  HybridPlanReport report;
  const auto mean_psnr = [&]() {
    double sum = 0.0;
    for (std::size_t i = 0; i < lr.size(); ++i) sum += psnr_db(network.upscale(lr[i]), hr[i]);
    return sum / static_cast<double>(lr.size());
  };
  network.set_precision(InferencePrecision::kFp32);
  report.fp32_psnr = mean_psnr();

  const auto score = [&](const std::vector<LayerPrecision>& plan) {
    network.set_hybrid_plan(plan);
    network.set_precision(InferencePrecision::kHybrid);
    ++report.evaluated;
    return mean_psnr();
  };
  const auto int8_count = [](const std::vector<LayerPrecision>& plan) {
    return static_cast<std::int64_t>(
        std::count(plan.begin(), plan.end(), LayerPrecision::kInt8));
  };

  // Best feasible plan (max int8 layers, PSNR tie-break) plus the best plan
  // overall as the fallback if nothing fits the budget.
  std::vector<LayerPrecision> best_plan;
  double best_psnr = 0.0;
  bool best_feasible = false;
  const auto consider = [&](const std::vector<LayerPrecision>& plan, double plan_psnr) {
    const bool feasible = report.fp32_psnr - plan_psnr <= budget_db;
    bool better = false;
    if (best_plan.empty()) {
      better = true;
    } else if (feasible != best_feasible) {
      better = feasible;
    } else if (feasible) {
      const std::int64_t c = int8_count(plan);
      const std::int64_t bc = int8_count(best_plan);
      better = c > bc || (c == bc && plan_psnr > best_psnr);
    } else {
      better = plan_psnr > best_psnr;
    }
    if (better) {
      best_plan = plan;
      best_psnr = plan_psnr;
      best_feasible = feasible;
    }
  };

  if (n_layers <= static_cast<std::size_t>(kExhaustiveLayers)) {
    for (std::uint32_t mask = 0; mask < (1U << n_layers); ++mask) {
      std::vector<LayerPrecision> plan(n_layers, LayerPrecision::kFp16);
      for (std::size_t i = 0; i < n_layers; ++i) {
        if ((mask >> i) & 1U) plan[i] = LayerPrecision::kInt8;
      }
      consider(plan, score(plan));
    }
  } else {
    // Sensitivity-ordered greedy: measure each layer's solo int8 PSNR drop,
    // then try quantizing the k most tolerant layers for k = L..0 and keep
    // the largest feasible k. O(2L) scores instead of 2^L.
    std::vector<std::pair<double, std::size_t>> order;
    for (std::size_t i = 0; i < n_layers; ++i) {
      std::vector<LayerPrecision> plan(n_layers, LayerPrecision::kFp16);
      plan[i] = LayerPrecision::kInt8;
      order.emplace_back(report.fp32_psnr - score(plan), i);
    }
    std::sort(order.begin(), order.end());
    for (std::size_t k = n_layers + 1; k-- > 0;) {
      std::vector<LayerPrecision> plan(n_layers, LayerPrecision::kFp16);
      for (std::size_t j = 0; j < k; ++j) plan[order[j].second] = LayerPrecision::kInt8;
      const double s = score(plan);
      consider(plan, s);
      if (report.fp32_psnr - s <= budget_db) break;  // largest feasible k found
    }
  }

  network.set_hybrid_plan(best_plan);
  network.set_precision(saved_precision);
  report.plan = std::move(best_plan);
  report.plan_psnr = best_psnr;
  report.drop_db = report.fp32_psnr - report.plan_psnr;
  report.int8_layers = int8_count(report.plan);
  return report;
}

}  // namespace sesr::core
