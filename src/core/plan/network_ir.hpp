// Network IR: resolved-shape layer descriptors shared by the execution-plan
// compiler (core/plan) and the NPU performance simulator (src/hw).
//
// Two consumers, one graph. The hw simulator walks the descriptor list and
// prices compute and memory traffic analytically (how the paper uses Arm's
// closed-source estimator, covering networks far too large to train here);
// the pass pipeline in core/plan/passes lowers the same list into fused
// executor steps and a liveness-based activation memory plan. The namespace
// stays sesr::hw for source compatibility with the simulator and its tools.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sesr_network.hpp"

namespace sesr::hw {

enum class OpKind {
  kConv,           // kh x kw convolution, stride 1, SAME
  kConvTranspose,  // kh x kw transposed conv, stride = upscale factor
  kActivation,     // ReLU/PReLU — fused with the producing conv (free)
  kDepthToSpace,   // pixel shuffle — pure permutation, fused with neighbours
  kResidualAdd,    // elementwise add with a saved skip tensor
};

struct LayerDesc {
  OpKind kind = OpKind::kConv;
  std::string label;
  // Input geometry (output derived from kind):
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t in_c = 0;
  std::int64_t out_c = 0;
  std::int64_t kh = 1;
  std::int64_t kw = 1;
  std::int64_t stride = 1;  // upscale factor for kConvTranspose / kDepthToSpace
  // For kResidualAdd: channel count of the saved skip tensor (== in_c) and the
  // index of the layer whose output is consumed (for lifetime analysis).
  std::int64_t skip_from = -1;

  std::int64_t out_h() const;
  std::int64_t out_w() const;
  std::int64_t macs() const;
  std::int64_t input_elements() const { return in_h * in_w * in_c; }
  std::int64_t output_elements() const { return out_h() * out_w() * out_c; }
  std::int64_t weight_bytes() const;  // int8 weights
};

struct NetworkIr {
  std::string name;
  std::int64_t input_h = 0;
  std::int64_t input_w = 0;
  std::int64_t input_c = 1;
  std::vector<LayerDesc> layers;

  std::int64_t total_macs() const;
  std::int64_t total_parameters() const;

  // Same network re-shaped for a different input size (tiling support).
  NetworkIr with_input(std::int64_t h, std::int64_t w) const;
};

// IR builders.
NetworkIr sesr_ir(const core::SesrConfig& config, std::int64_t in_h, std::int64_t in_w);
NetworkIr fsrcnn_ir(std::int64_t in_h, std::int64_t in_w, std::int64_t scale);
// VDSR: bicubic pre-upscale + 20 3x3/64ch convs at HR + global residual.
NetworkIr vdsr_ir(std::int64_t in_h, std::int64_t in_w, std::int64_t scale);
// Generic stand-in for published models we know only by budget: `body_channels`
// wide 3x3 conv body at LR sized to hit `target_macs` at this input, then a
// subpixel upsampling head. Used for the Fig. 1(b) FPS survey rows.
NetworkIr generic_residual_ir(const std::string& name, std::int64_t in_h, std::int64_t in_w,
                              std::int64_t scale, std::int64_t body_channels,
                              std::int64_t target_macs);

}  // namespace sesr::hw
