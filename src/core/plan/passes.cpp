#include "core/plan/passes.hpp"

#include <stdexcept>

namespace sesr::core::plan {
namespace {

std::int64_t blocks_product(const std::vector<std::int64_t>& blocks) {
  std::int64_t p = 1;
  for (std::int64_t b : blocks) p *= b;
  return p;
}

}  // namespace

std::int64_t PlanOp::out_h() const {
  switch (kind) {
    case hw::OpKind::kDepthToSpace:
      return in_h * blocks_product(blocks);
    case hw::OpKind::kConvTranspose:
      throw std::logic_error("plan: transposed conv has no executor lowering");
    default:
      return in_h;
  }
}

std::int64_t PlanOp::out_w() const {
  switch (kind) {
    case hw::OpKind::kDepthToSpace:
      return in_w * blocks_product(blocks);
    case hw::OpKind::kConvTranspose:
      throw std::logic_error("plan: transposed conv has no executor lowering");
    default:
      return in_w;
  }
}

std::vector<PlanOp> lower(const hw::NetworkIr& ir) {
  std::vector<PlanOp> ops;
  ops.reserve(ir.layers.size());
  int conv_count = 0;
  int act_count = 0;
  for (std::size_t i = 0; i < ir.layers.size(); ++i) {
    const hw::LayerDesc& l = ir.layers[i];
    PlanOp op;
    op.kind = l.kind;
    op.label = l.label;
    op.in_h = l.in_h;
    op.in_w = l.in_w;
    op.in_c = l.in_c;
    op.out_c = l.out_c;
    op.kh = l.kh;
    op.kw = l.kw;
    op.input = i == 0 ? kInputValue : static_cast<int>(i) - 1;
    op.output = static_cast<int>(i);
    switch (l.kind) {
      case hw::OpKind::kConv:
        op.conv_index = conv_count++;
        break;
      case hw::OpKind::kActivation:
        op.act_index = act_count++;
        break;
      case hw::OpKind::kDepthToSpace:
        op.blocks.push_back(l.stride);
        break;
      case hw::OpKind::kResidualAdd:
        if (l.skip_from == -1) {
          op.skip = kInputValue;
        } else if (l.skip_from < 0 || l.skip_from >= static_cast<std::int64_t>(i)) {
          throw std::invalid_argument("plan: layer '" + l.label +
                                      "' skip_from must name an earlier layer");
        } else {
          op.skip = static_cast<int>(l.skip_from);
        }
        break;
      case hw::OpKind::kConvTranspose:
        throw std::invalid_argument("plan: transposed conv is not executable (layer '" +
                                    l.label + "')");
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

namespace {

// True if any op other than `except` reads value `v` (as input or skip).
bool value_read_elsewhere(const std::vector<PlanOp>& ops, int v, std::size_t except) {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i == except) continue;
    if (ops[i].input == v || ops[i].skip == v) return true;
  }
  return false;
}

}  // namespace

void fuse_activation_pass(std::vector<PlanOp>& ops) {
  std::vector<PlanOp> out;
  out.reserve(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    PlanOp& op = ops[i];
    const bool fusible = op.kind == hw::OpKind::kActivation && !out.empty() &&
                         out.back().kind == hw::OpKind::kConv &&
                         out.back().act_index < 0 && out.back().skip == kNoValue &&
                         op.input == out.back().output &&
                         !value_read_elsewhere(ops, op.input, i);
    if (fusible) {
      // The conv now applies the activation in its GEMM epilogue and takes
      // over the activation's value id, so downstream reads resolve to the
      // activated tensor; the conv's old (pre-activation) value had no other
      // reader — the fusibility condition — so no reference rewriting needed.
      PlanOp& conv = out.back();
      conv.act_index = op.act_index;
      conv.output = op.output;
    } else {
      out.push_back(std::move(op));
    }
  }
  ops = std::move(out);
}

void fuse_residual_pass(std::vector<PlanOp>& ops) {
  std::vector<PlanOp> out;
  out.reserve(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    PlanOp& op = ops[i];
    const bool fusible = op.kind == hw::OpKind::kResidualAdd && !out.empty() &&
                         op.input == out.back().output && out.back().skip == kNoValue &&
                         !value_read_elsewhere(ops, op.input, i);
    if (fusible) {
      // The producer's output buffer absorbs the add in place and takes over
      // the add's value id; its own pre-add value had no other reader. The
      // skip value's lifetime now extends to the producer step, which keeps
      // the planner from aliasing the two buffers. A skip of the producer's
      // own output (m = 0: the long residual lands on the layer it forked
      // from) follows the rename and degenerates to an in-place doubling.
      PlanOp& producer = out.back();
      producer.skip = op.skip == producer.output ? op.output : op.skip;
      producer.output = op.output;
    } else {
      out.push_back(std::move(op));
    }
  }
  ops = std::move(out);
}

void chain_shuffle_pass(std::vector<PlanOp>& ops) {
  std::vector<PlanOp> out;
  out.reserve(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    PlanOp& op = ops[i];
    const bool chains = op.kind == hw::OpKind::kDepthToSpace && !out.empty() &&
                        out.back().kind == hw::OpKind::kDepthToSpace &&
                        out.back().skip == kNoValue && op.skip == kNoValue &&
                        op.input == out.back().output &&
                        !value_read_elsewhere(ops, op.input, i);
    if (chains) {
      PlanOp& head = out.back();
      head.blocks.insert(head.blocks.end(), op.blocks.begin(), op.blocks.end());
      head.out_c = op.out_c;
      head.output = op.output;
    } else {
      out.push_back(std::move(op));
    }
  }
  ops = std::move(out);
}

std::vector<PlanOp> lower_and_fuse(const hw::NetworkIr& ir) {
  std::vector<PlanOp> ops = lower(ir);
  fuse_activation_pass(ops);
  fuse_residual_pass(ops);
  chain_shuffle_pass(ops);
  return ops;
}

}  // namespace sesr::core::plan
