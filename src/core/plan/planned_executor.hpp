// Interprets compiled execution plans with statically planned arenas.
//
// The executor owns nothing about the network: run() takes the SesrInference
// whose weights it replays, and the executor holds only (a) a small cache of
// compiled plans keyed by input shape and (b) the two activation arenas (fp32
// carrier and binary16). Steady state — same shape, warm cache, arenas grown
// — performs zero heap allocations: every layer output lands in a
// planner-assigned arena slice and the final step writes the caller's output
// buffer directly.
//
// Batching scales the compiled plan instead of recompiling: every offset and
// size is per batch item, so the executor multiplies both by N. That keeps
// slices disjoint because disjointness is preserved under a common positive
// scale factor.
//
// The interpreters mirror the legacy upscale / upscale_fp16 / upscale_mixed
// paths kernel for kernel (same entry points, same epilogues, same rounding
// steps, same op order), so planned output is bit-identical to direct output
// in every precision — the plan changes where bytes live, never arithmetic.
#pragma once

#include <cstdint>
#include <vector>

#include "core/plan/execution_plan.hpp"
#include "tensor/fp16.hpp"
#include "tensor/tensor.hpp"

namespace sesr::core::plan {

class PlannedExecutor {
 public:
  // Upscales `input` (N, H, W, 1) into `output` (N, scale*H, scale*W, 1),
  // which must be pre-shaped. Compiles/caches the plan for (H, W) on first
  // use; allocation-free afterwards.
  void run(const SesrInference& net, const Tensor& input, Tensor& output);

  // The cached (or freshly compiled) plan for one LR shape at the network's
  // current precision.
  const ExecutionPlan& plan_for(const SesrInference& net, std::int64_t lr_h, std::int64_t lr_w);

  // Per-pixel arena coefficients at the current precision (compiles a small
  // probe plan if none is cached).
  PlanFootprint footprint(const SesrInference& net);

  // Bytes currently retained by the two arenas (capacity, not size: what the
  // process actually holds).
  std::int64_t arena_bytes() const;

  // Grow the arenas up front to the footprint of `lr_pixels` LR pixels so
  // steady-state traffic below that bound never reallocates.
  void reserve(const SesrInference& net, std::int64_t lr_pixels);

  // Release arena memory beyond the footprint of `lr_pixels` (after an
  // oversized frame inflated them).
  void trim(const SesrInference& net, std::int64_t lr_pixels);

  // Drop cached plans (precision or hybrid assignment changed). Arenas keep
  // their memory.
  void invalidate();

 private:
  struct CachedPlan {
    ExecutionPlan plan;
    std::uint64_t stamp = 0;  // LRU clock
  };

  void run_fp32(const ExecutionPlan& p, const SesrInference& net, const Tensor& input,
                Tensor& output);
  void run_fp16(const ExecutionPlan& p, const SesrInference& net, const Tensor& input,
                Tensor& output);
  void run_mixed(const ExecutionPlan& p, const SesrInference& net, const Tensor& input,
                 Tensor& output);
  void run_shuffle(const ExecutionPlan& p, const PlanStep& step, const float* in,
                   std::int64_t batch, Tensor& output);
  float* float_ptr(const ExecutionPlan& p, int value, std::int64_t batch, Tensor& output);
  fp16::Half* half_ptr(const ExecutionPlan& p, int value, std::int64_t batch);

  std::vector<CachedPlan> plans_;
  std::uint64_t stamp_ = 0;
  std::vector<float> float_arena_;
  std::vector<fp16::Half> half_arena_;
};

}  // namespace sesr::core::plan
