// Compiled execution plan: fused steps + a static activation memory plan.
//
// compile() runs the whole pipeline for one network at one input shape:
// build the IR, lower and fuse it (passes.hpp), assign every surviving value
// a storage space for the requested precision (fp32 carrier or binary16),
// derive live intervals, and let the memory planner pack each space into one
// flat arena. The result is a closed-form recipe the planned executor
// replays: for each step, which kernel, which weights, and the exact arena
// offsets of its operands. No allocation decisions remain at run time.
//
// Precision changes which values are stored as binary16 (and adds staging
// values), never the step list: the fp16 path stores inter-conv activations
// as half, the hybrid path stages each fp16 layer's input through a
// step-local half value, and int8 runs entirely on the fp32 carrier — all
// mirroring the legacy per-precision upscale paths kernel for kernel.
//
// Every value's size is channels x pixels, so the whole plan scales linearly
// and exactly with the LR pixel count: footprint() returns per-pixel
// coefficients the registry records per route at registration time.
#pragma once

#include <cstdint>
#include <vector>

#include "core/plan/memory_planner.hpp"
#include "core/plan/passes.hpp"
#include "core/sesr_inference.hpp"

namespace sesr::core::plan {

// Constant-folding pass: collapse every trained linear block into its single
// equivalent conv (Algorithm 1) with the short residual and all biases folded
// through (Algorithm 2). Weights and biases become plan-time constants; the
// SesrInference constructor delegates here.
std::vector<CollapsedConv> collapse_pass(const SesrNetwork& network);

enum class ValueSpace : std::uint8_t { kFloat, kHalf };

struct PlanValue {
  std::int64_t elements = 0;  // per batch item, at the compiled shape
  ValueSpace space = ValueSpace::kFloat;
  int def = 0;       // step defining the value (input staging: step 0)
  int last_use = 0;  // last step reading or updating it (closed interval)
  std::int64_t offset = 0;  // elements into its space's arena
  bool external = false;    // the network output: caller's buffer, not arena
};

// One executor step. The op's input/skip/output fields are rewritten to
// PlanValue indices (kInputValue still means the caller's input tensor).
struct PlanStep {
  PlanOp op;
  std::vector<int> temps;  // shuffle-chain intermediates, in chain order
  int stage = kNoValue;    // hybrid: half staging value for this conv's input
};

// Exact per-LR-pixel arena coefficients of a compiled route.
struct PlanFootprint {
  std::int64_t float_per_pixel = 0;  // fp32 carrier elements per LR pixel
  std::int64_t half_per_pixel = 0;   // binary16 elements per LR pixel
  std::int64_t bytes(std::int64_t lr_pixels) const {
    return lr_pixels * (float_per_pixel * static_cast<std::int64_t>(sizeof(float)) +
                        half_per_pixel * 2);
  }
};

class ExecutionPlan {
 public:
  // Compiles for the network's current precision (int8/hybrid state must
  // already be present, as set_precision enforces).
  static ExecutionPlan compile(const SesrInference& net, std::int64_t lr_h, std::int64_t lr_w);

  const std::vector<PlanStep>& steps() const { return steps_; }
  const std::vector<PlanValue>& values() const { return values_; }
  std::int64_t lr_h() const { return lr_h_; }
  std::int64_t lr_w() const { return lr_w_; }
  InferencePrecision precision() const { return precision_; }

  // Arena sizes per batch item at the compiled shape.
  std::int64_t float_arena_elements() const { return float_arena_elements_; }
  std::int64_t half_arena_elements() const { return half_arena_elements_; }
  std::int64_t peak_activation_bytes() const {
    return float_arena_elements_ * static_cast<std::int64_t>(sizeof(float)) +
           half_arena_elements_ * 2;
  }

  // fp16 only: the rounded input staging value, and (when the input residual
  // is on) the float scratch its fp32 widening lands in. kNoValue otherwise.
  int input_half_value() const { return input_half_value_; }
  int input_float_value() const { return input_float_value_; }

  // Per-pixel coefficients; exact because every value size and offset is a
  // multiple of the LR pixel count (throws if that invariant ever breaks).
  PlanFootprint footprint() const;

 private:
  std::vector<PlanStep> steps_;
  std::vector<PlanValue> values_;
  std::int64_t float_arena_elements_ = 0;
  std::int64_t half_arena_elements_ = 0;
  std::int64_t lr_h_ = 0;
  std::int64_t lr_w_ = 0;
  InferencePrecision precision_ = InferencePrecision::kFp32;
  int input_half_value_ = kNoValue;
  int input_float_value_ = kNoValue;
};

}  // namespace sesr::core::plan
