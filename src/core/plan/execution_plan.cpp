#include "core/plan/execution_plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace sesr::core::plan {

std::vector<CollapsedConv> collapse_pass(const SesrNetwork& network) {
  const auto collapse = [](const CollapsibleBlock& block) {
    CollapsedConv conv;
    conv.weight = block.collapsed_weight();
    conv.bias = block.collapsed_bias();
    return conv;
  };
  std::vector<CollapsedConv> convs;
  convs.reserve(network.middle_blocks().size() + 2);
  convs.push_back(collapse(network.first_block()));
  for (const auto& b : network.middle_blocks()) convs.push_back(collapse(*b));
  convs.push_back(collapse(network.last_block()));
  return convs;
}

ExecutionPlan ExecutionPlan::compile(const SesrInference& net, std::int64_t lr_h,
                                     std::int64_t lr_w) {
  const hw::NetworkIr ir = hw::sesr_ir(net.config(), lr_h, lr_w);
  std::vector<PlanOp> ops = lower_and_fuse(ir);

  ExecutionPlan plan;
  plan.lr_h_ = lr_h;
  plan.lr_w_ = lr_w;
  plan.precision_ = net.precision();
  const int n_steps = static_cast<int>(ops.size());

  // Value ids are original lowered-op indices; remap to dense PlanValue
  // indices and derive [def, last_use] from the fused program's reads.
  std::vector<int> vmap(ir.layers.size(), kNoValue);
  for (int s = 0; s < n_steps; ++s) {
    PlanValue v;
    v.elements = ops[s].output_elements();
    v.def = s;
    v.last_use = s;
    v.external = s == n_steps - 1;
    vmap[static_cast<std::size_t>(ops[s].output)] = static_cast<int>(plan.values_.size());
    plan.values_.push_back(v);
  }
  for (int s = 0; s < n_steps; ++s) {
    const auto remap = [&](int& ref) {
      if (ref < 0) return;  // kInputValue stays symbolic
      ref = vmap[static_cast<std::size_t>(ref)];
      if (ref == kNoValue) {
        throw std::logic_error("ExecutionPlan: op references a value no pass defines");
      }
      plan.values_[static_cast<std::size_t>(ref)].last_use =
          std::max(plan.values_[static_cast<std::size_t>(ref)].last_use, s);
    };
    remap(ops[s].input);
    remap(ops[s].skip);
    ops[s].output = vmap[static_cast<std::size_t>(ops[s].output)];
  }

  int last_conv_step = -1;
  for (int s = 0; s < n_steps; ++s) {
    if (ops[s].kind == hw::OpKind::kConv) last_conv_step = s;
  }

  plan.steps_.reserve(ops.size());
  for (int s = 0; s < n_steps; ++s) {
    PlanStep step;
    step.op = std::move(ops[s]);
    plan.steps_.push_back(std::move(step));
  }

  const auto add_value = [&](std::int64_t elements, ValueSpace space, int def, int last_use) {
    PlanValue v;
    v.elements = elements;
    v.space = space;
    v.def = def;
    v.last_use = last_use;
    plan.values_.push_back(v);
    return static_cast<int>(plan.values_.size()) - 1;
  };

  // Precision-specific storage spaces and staging values, mirroring the
  // legacy per-precision paths exactly.
  if (plan.precision_ == InferencePrecision::kFp16) {
    // Inter-conv activations are stored as binary16; the last conv's fp32
    // accumulator (and everything after it) stays float.
    for (int s = 0; s < n_steps; ++s) {
      const PlanOp& op = plan.steps_[static_cast<std::size_t>(s)].op;
      if (op.kind == hw::OpKind::kConv && s != last_conv_step) {
        plan.values_[static_cast<std::size_t>(op.output)].space = ValueSpace::kHalf;
      }
    }
    // The input is rounded to binary16 once and stays live as long as any
    // step (conv input or input residual) still reads it.
    int input_last_use = 0;
    int residual_step = kNoValue;
    for (int s = 0; s < n_steps; ++s) {
      const PlanOp& op = plan.steps_[static_cast<std::size_t>(s)].op;
      if (op.input == kInputValue) input_last_use = std::max(input_last_use, s);
      if (op.skip == kInputValue) {
        input_last_use = std::max(input_last_use, s);
        residual_step = std::max(residual_step, s);
      }
    }
    const std::int64_t input_elements = ir.input_h * ir.input_w * ir.input_c;
    plan.input_half_value_ = add_value(input_elements, ValueSpace::kHalf, 0, input_last_use);
    if (residual_step != kNoValue) {
      // Step-local float widening of the rounded input for the residual add.
      plan.input_float_value_ =
          add_value(input_elements, ValueSpace::kFloat, residual_step, residual_step);
    }
  } else if (plan.precision_ == InferencePrecision::kHybrid) {
    // Each fp16 layer stages its fp32 carrier input through binary16.
    const std::vector<LayerPrecision>& layer_plan = net.hybrid_plan();
    for (int s = 0; s < n_steps; ++s) {
      PlanStep& step = plan.steps_[static_cast<std::size_t>(s)];
      if (step.op.kind != hw::OpKind::kConv) continue;
      if (layer_plan.at(static_cast<std::size_t>(step.op.conv_index)) != LayerPrecision::kFp16) {
        continue;
      }
      step.stage = add_value(step.op.input_elements(), ValueSpace::kHalf, s, s);
    }
  }

  // Chained depth-to-space intermediates (scale 4): step-local float temps.
  for (int s = 0; s < n_steps; ++s) {
    PlanStep& step = plan.steps_[static_cast<std::size_t>(s)];
    if (step.op.kind != hw::OpKind::kDepthToSpace) continue;
    for (std::size_t k = 0; k + 1 < step.op.blocks.size(); ++k) {
      // A shuffle is a permutation: every intermediate has the input's numel.
      step.temps.push_back(add_value(step.op.input_elements(), ValueSpace::kFloat, s, s));
    }
  }

  // Pack each space into its own flat arena. The final output lives in the
  // caller's buffer, not the arena.
  const auto pack = [&](ValueSpace space) {
    std::vector<ValueInterval> intervals(plan.values_.size());
    for (std::size_t i = 0; i < plan.values_.size(); ++i) {
      const PlanValue& v = plan.values_[i];
      intervals[i].def = v.def;
      intervals[i].last_use = v.last_use;
      intervals[i].elements = (v.space == space && !v.external) ? v.elements : 0;
    }
    const MemoryPlan mem = plan_memory(intervals);
    for (std::size_t i = 0; i < plan.values_.size(); ++i) {
      if (plan.values_[i].space == space && !plan.values_[i].external) {
        plan.values_[i].offset = mem.offsets[i];
      }
    }
    return mem.arena_elements;
  };
  plan.float_arena_elements_ = pack(ValueSpace::kFloat);
  plan.half_arena_elements_ = pack(ValueSpace::kHalf);
  return plan;
}

PlanFootprint ExecutionPlan::footprint() const {
  const std::int64_t pixels = lr_h_ * lr_w_;
  if (pixels <= 0 || float_arena_elements_ % pixels != 0 || half_arena_elements_ % pixels != 0) {
    throw std::logic_error("ExecutionPlan::footprint: arena not a multiple of the pixel count");
  }
  PlanFootprint f;
  f.float_per_pixel = float_arena_elements_ / pixels;
  f.half_per_pixel = half_arena_elements_ / pixels;
  return f;
}

}  // namespace sesr::core::plan
