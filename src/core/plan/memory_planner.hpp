// Liveness-based static activation memory planner.
//
// Input: one live interval per value — its size and the closed step range
// [def, last_use] over which its bytes must stay intact. Output: an offset
// per value inside one flat arena, sized so that any two values whose
// intervals overlap never share bytes.
//
// The assignment is greedy first-fit in definition order: walk values by
// (def, index), collect the ranges already claimed by live neighbours, and
// drop the value into the lowest gap that fits. For a conv chain this
// degenerates to the classic ping-pong pair (a conv's input and output
// overlap at the conv step, so they alternate between two slots) with any
// long-lived residual skip pinned alongside — the planner discovers that
// layout instead of hard-coding it, so unusual graphs (multiple skips,
// chained shuffles) still plan correctly.
//
// Offsets are in elements; the caller owns the element width. Every size here
// scales linearly in the frame's pixel count and every comparison the
// algorithm makes compares such quantities, so a plan computed at one shape
// rescales exactly to any other — that is what lets the registry record an
// exact per-pixel footprint at registration time.
#pragma once

#include <cstdint>
#include <vector>

namespace sesr::core::plan {

struct ValueInterval {
  std::int64_t elements = 0;  // 0-element values take no space
  int def = 0;
  int last_use = 0;  // closed: the value is live through this step
};

struct MemoryPlan {
  std::vector<std::int64_t> offsets;  // one per interval, in elements
  std::int64_t arena_elements = 0;
};

inline bool intervals_overlap(const ValueInterval& a, const ValueInterval& b) {
  return a.def <= b.last_use && b.def <= a.last_use;
}

MemoryPlan plan_memory(const std::vector<ValueInterval>& values);

}  // namespace sesr::core::plan
