#include "core/plan/memory_planner.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace sesr::core::plan {

MemoryPlan plan_memory(const std::vector<ValueInterval>& values) {
  const std::size_t n = values.size();
  MemoryPlan plan;
  plan.offsets.assign(n, 0);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a].def < values[b].def;
  });

  std::vector<bool> placed(n, false);
  for (std::size_t v : order) {
    const ValueInterval& val = values[v];
    if (val.last_use < val.def) {
      throw std::invalid_argument("plan_memory: interval with last_use < def");
    }
    if (val.elements <= 0) {
      placed[v] = true;
      continue;
    }
    // Claimed ranges of already-placed values live at the same time as v.
    std::vector<std::pair<std::int64_t, std::int64_t>> busy;
    for (std::size_t u = 0; u < n; ++u) {
      if (u == v || !placed[u] || values[u].elements <= 0) continue;
      if (intervals_overlap(val, values[u])) {
        busy.emplace_back(plan.offsets[u], plan.offsets[u] + values[u].elements);
      }
    }
    std::sort(busy.begin(), busy.end());
    // First-fit: lowest offset whose [offset, offset+size) clears every busy
    // range. Busy ranges are disjoint once sorted (they all pairwise overlap
    // v in time, but not necessarily each other in time — so merge as we go).
    std::int64_t offset = 0;
    for (const auto& [lo, hi] : busy) {
      if (offset + val.elements <= lo) break;
      offset = std::max(offset, hi);
    }
    plan.offsets[v] = offset;
    plan.arena_elements = std::max(plan.arena_elements, offset + val.elements);
    placed[v] = true;
  }
  return plan;
}

}  // namespace sesr::core::plan
