// Lowering + optimization passes over the network IR.
//
// The pass pipeline turns a NetworkIr — a flat list of layer descriptors with
// resolved shapes — into the fused op list the planned executor runs:
//
//   lower()                one PlanOp per IR layer, SSA value ids
//   fuse_activation_pass   conv -> activation becomes the conv's GEMM epilogue
//                          (the fusion the kernels already support)
//   fuse_residual_pass     a residual-add folds into the producing op as an
//                          in-place add on its output buffer (no extra value)
//   chain_shuffle_pass     consecutive depth-to-space ops chain into one step
//
// Passes are pure list rewrites: they never touch weights or arithmetic, so a
// fused program computes bit-identically to the unfused one — fusion only
// removes intermediate buffers and full-tensor sweeps. The memory planner
// (memory_planner.hpp) then assigns every surviving value an arena offset
// from its live interval.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/plan/network_ir.hpp"

namespace sesr::core::plan {

// Distinguished value ids. Real values are the producing op's index in the
// lowered list (ids survive passes; references are rewritten).
inline constexpr int kInputValue = -1;  // the network input tensor
inline constexpr int kNoValue = -2;

// One lowered (possibly fused) op. After the full pipeline each op maps 1:1
// onto one executor step.
struct PlanOp {
  hw::OpKind kind = hw::OpKind::kConv;
  std::string label;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t in_c = 0;
  std::int64_t out_c = 0;
  std::int64_t kh = 1;
  std::int64_t kw = 1;
  // kConv: which network conv executes this op; kActivation (pre-fusion) /
  // fused conv: which activation (PReLU slot) applies.
  int conv_index = -1;
  int act_index = -1;
  // kDepthToSpace: the chained shuffle factors (one entry before
  // chain_shuffle_pass, possibly more after).
  std::vector<std::int64_t> blocks;

  int input = kInputValue;  // main operand
  int skip = kNoValue;      // fused residual source (kInputValue = network input)
  int output = 0;           // value this op defines

  std::int64_t out_h() const;
  std::int64_t out_w() const;
  std::int64_t input_elements() const { return in_h * in_w * in_c; }
  std::int64_t output_elements() const { return out_h() * out_w() * out_c; }
};

// Lower the IR 1:1: op i consumes op i-1's output (or the network input) and
// defines value i; kResidualAdd ops reference layer skip_from's value as
// `skip`. Throws if a skip_from index is out of range or not an earlier layer.
std::vector<PlanOp> lower(const hw::NetworkIr& ir);

// Folds every kActivation into the preceding op when that op is a kConv
// consumed only by the activation: the conv gets the activation's act_index
// (executed as a fused GEMM epilogue) and the activation op disappears.
void fuse_activation_pass(std::vector<PlanOp>& ops);

// Folds every kResidualAdd into the op producing its main operand: the add
// becomes an in-place update of that op's output buffer (the skip reference
// moves onto the producer, extending the skip value's lifetime to it), and
// downstream references to the add's value are rewritten to the producer's.
void fuse_residual_pass(std::vector<PlanOp>& ops);

// Merges runs of consecutive kDepthToSpace ops (each consuming exactly the
// previous shuffle's output) into one op with chained `blocks`; the executor
// routes intra-chain intermediates through step-local temps.
void chain_shuffle_pass(std::vector<PlanOp>& ops);

// The full pipeline in canonical order.
std::vector<PlanOp> lower_and_fuse(const hw::NetworkIr& ir);

}  // namespace sesr::core::plan
