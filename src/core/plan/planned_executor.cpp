#include "core/plan/planned_executor.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/conv2d.hpp"
#include "nn/conv2d_s8.hpp"
#include "nn/depth_to_space.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::core::plan {
namespace {

// A handful of shapes covers full frames plus the serve layer's tile sizes.
constexpr std::size_t kMaxCachedPlans = 8;

const Tensor* bias_ptr(const CollapsedConv& c) { return c.bias ? &*c.bias : nullptr; }

}  // namespace

const ExecutionPlan& PlannedExecutor::plan_for(const SesrInference& net, std::int64_t lr_h,
                                               std::int64_t lr_w) {
  for (CachedPlan& cached : plans_) {
    if (cached.plan.lr_h() == lr_h && cached.plan.lr_w() == lr_w &&
        cached.plan.precision() == net.precision()) {
      cached.stamp = ++stamp_;
      return cached.plan;
    }
  }
  if (plans_.size() >= kMaxCachedPlans) {
    const auto lru = std::min_element(
        plans_.begin(), plans_.end(),
        [](const CachedPlan& a, const CachedPlan& b) { return a.stamp < b.stamp; });
    plans_.erase(lru);
  }
  plans_.push_back(CachedPlan{ExecutionPlan::compile(net, lr_h, lr_w), ++stamp_});
  return plans_.back().plan;
}

PlanFootprint PlannedExecutor::footprint(const SesrInference& net) {
  // Any probe shape gives the exact coefficients; 16x16 keeps compile cheap.
  return plan_for(net, 16, 16).footprint();
}

std::int64_t PlannedExecutor::arena_bytes() const {
  return static_cast<std::int64_t>(float_arena_.capacity() * sizeof(float)) +
         static_cast<std::int64_t>(half_arena_.capacity() * sizeof(fp16::Half));
}

void PlannedExecutor::reserve(const SesrInference& net, std::int64_t lr_pixels) {
  const PlanFootprint f = footprint(net);
  const auto f_need = static_cast<std::size_t>(f.float_per_pixel * lr_pixels);
  const auto h_need = static_cast<std::size_t>(f.half_per_pixel * lr_pixels);
  if (float_arena_.size() < f_need) float_arena_.resize(f_need);
  if (half_arena_.size() < h_need) half_arena_.resize(h_need);
}

void PlannedExecutor::trim(const SesrInference& net, std::int64_t lr_pixels) {
  const PlanFootprint f = footprint(net);
  const auto f_keep = static_cast<std::size_t>(f.float_per_pixel * lr_pixels);
  const auto h_keep = static_cast<std::size_t>(f.half_per_pixel * lr_pixels);
  if (float_arena_.capacity() > f_keep) {
    float_arena_.resize(f_keep);
    float_arena_.shrink_to_fit();
  }
  if (half_arena_.capacity() > h_keep) {
    half_arena_.resize(h_keep);
    half_arena_.shrink_to_fit();
  }
}

void PlannedExecutor::invalidate() { plans_.clear(); }

float* PlannedExecutor::float_ptr(const ExecutionPlan& p, int value, std::int64_t batch,
                                  Tensor& output) {
  const PlanValue& v = p.values()[static_cast<std::size_t>(value)];
  if (v.external) return output.raw();
  return float_arena_.data() + v.offset * batch;
}

fp16::Half* PlannedExecutor::half_ptr(const ExecutionPlan& p, int value, std::int64_t batch) {
  return half_arena_.data() + p.values()[static_cast<std::size_t>(value)].offset * batch;
}

void PlannedExecutor::run(const SesrInference& net, const Tensor& input, Tensor& output) {
  const Shape& in_shape = input.shape();
  const ExecutionPlan& p = plan_for(net, in_shape.h(), in_shape.w());
  const std::int64_t batch = in_shape.n();
  const PlanStep& final_step = p.steps().back();
  if (output.numel() != final_step.op.output_elements() * batch) {
    throw std::invalid_argument("PlannedExecutor::run: output tensor has the wrong shape");
  }
  const auto f_need = static_cast<std::size_t>(p.float_arena_elements() * batch);
  const auto h_need = static_cast<std::size_t>(p.half_arena_elements() * batch);
  if (float_arena_.size() < f_need) float_arena_.resize(f_need);
  if (half_arena_.size() < h_need) half_arena_.resize(h_need);

  switch (p.precision()) {
    case InferencePrecision::kFp32:
      run_fp32(p, net, input, output);
      break;
    case InferencePrecision::kFp16:
      run_fp16(p, net, input, output);
      break;
    case InferencePrecision::kInt8:
    case InferencePrecision::kHybrid:
      run_mixed(p, net, input, output);
      break;
  }
}

void PlannedExecutor::run_shuffle(const ExecutionPlan& p, const PlanStep& step, const float* in,
                                  std::int64_t batch, Tensor& output) {
  const PlanOp& op = step.op;
  const float* cur = in;
  Shape shape(batch, op.in_h, op.in_w, op.in_c);
  for (std::size_t k = 0; k < op.blocks.size(); ++k) {
    const std::int64_t b = op.blocks[k];
    float* dst = k + 1 == op.blocks.size() ? float_ptr(p, op.output, batch, output)
                                           : float_ptr(p, step.temps[k], batch, output);
    nn::depth_to_space_into(cur, shape, b, dst);
    shape = Shape(batch, shape.h() * b, shape.w() * b, shape.c() / (b * b));
    cur = dst;
  }
}

void PlannedExecutor::run_fp32(const ExecutionPlan& p, const SesrInference& net,
                               const Tensor& input, Tensor& output) {
  const std::int64_t batch = input.shape().n();
  for (const PlanStep& step : p.steps()) {
    const PlanOp& op = step.op;
    const float* in =
        op.input == kInputValue ? input.raw() : float_ptr(p, op.input, batch, output);
    if (op.kind == hw::OpKind::kDepthToSpace) {
      run_shuffle(p, step, in, batch, output);
      continue;
    }
    if (op.kind != hw::OpKind::kConv) {
      throw std::logic_error("PlannedExecutor: unfused op survived the pass pipeline");
    }
    const CollapsedConv& c = net.convolutions()[static_cast<std::size_t>(op.conv_index)];
    const Shape in_shape(batch, op.in_h, op.in_w, op.in_c);
    float* out = float_ptr(p, op.output, batch, output);
    if (op.act_index >= 0) {
      const nn::Epilogue epi = net.activation_epilogue(static_cast<std::size_t>(op.act_index));
      nn::conv2d_into(in, in_shape, c.weight, bias_ptr(c), &epi, nn::Padding::kSame, out);
    } else {
      // The legacy path's conv2d_bias / conv2d dispatch, bit for bit.
      nn::conv2d_into(in, in_shape, c.weight, bias_ptr(c), nullptr, nn::Padding::kSame, out);
    }
    if (op.skip != kNoValue) {
      const std::int64_t elems = op.output_elements() * batch;
      if (op.skip == kInputValue) {
        add_input_residual(out, input.raw(), elems / op.out_c, op.out_c);
      } else {
        add_inplace(out, float_ptr(p, op.skip, batch, output), elems);
      }
    }
  }
}

void PlannedExecutor::run_fp16(const ExecutionPlan& p, const SesrInference& net,
                               const Tensor& input, Tensor& output) {
  const std::int64_t batch = input.shape().n();
  fp16::Half* x_half = half_ptr(p, p.input_half_value(), batch);
  fp16::convert_to_half(input.raw(), x_half, input.numel());
  for (const PlanStep& step : p.steps()) {
    const PlanOp& op = step.op;
    if (op.kind == hw::OpKind::kDepthToSpace) {
      run_shuffle(p, step, float_ptr(p, op.input, batch, output), batch, output);
      continue;
    }
    if (op.kind != hw::OpKind::kConv) {
      throw std::logic_error("PlannedExecutor: unfused op survived the pass pipeline");
    }
    const CollapsedConv& c = net.convolutions()[static_cast<std::size_t>(op.conv_index)];
    const fp16::HalfTensor& w = net.fp16_weights()[static_cast<std::size_t>(op.conv_index)];
    const Shape in_shape(batch, op.in_h, op.in_w, op.in_c);
    const fp16::Half* in = op.input == kInputValue ? x_half : half_ptr(p, op.input, batch);
    const nn::Epilogue epi = op.act_index >= 0
                                 ? net.activation_epilogue(static_cast<std::size_t>(op.act_index))
                                 : nn::Epilogue{};
    const std::int64_t elems = op.output_elements() * batch;
    if (p.values()[static_cast<std::size_t>(op.output)].space == ValueSpace::kHalf) {
      fp16::Half* out = half_ptr(p, op.output, batch);
      nn::conv2d_fp16_into(in, in_shape, w, bias_ptr(c), epi, nn::Padding::kSame, out);
      if (op.skip != kNoValue) {
        const fp16::Half* skip =
            op.skip == kInputValue ? x_half : half_ptr(p, op.skip, batch);
        fp16::add_inplace(out, skip, elems);
      }
    } else {
      // The last conv: fp32 accumulator output, residual added in fp32 on the
      // once-rounded input (exactly upscale_fp16's tail).
      float* out = float_ptr(p, op.output, batch, output);
      nn::conv2d_fp16_to_float_into(in, in_shape, w, bias_ptr(c), epi, nn::Padding::kSame, out);
      if (op.skip == kInputValue) {
        float* x_float = float_ptr(p, p.input_float_value(), batch, output);
        fp16::convert_to_float(x_half, x_float, input.numel());
        add_input_residual(out, x_float, elems / op.out_c, op.out_c);
      } else if (op.skip != kNoValue) {
        add_inplace(out, float_ptr(p, op.skip, batch, output), elems);
      }
    }
  }
}

void PlannedExecutor::run_mixed(const ExecutionPlan& p, const SesrInference& net,
                                const Tensor& input, Tensor& output) {
  const std::int64_t batch = input.shape().n();
  const bool pure_int8 = p.precision() == InferencePrecision::kInt8;
  const auto n_convs = static_cast<int>(net.convolutions().size());
  for (const PlanStep& step : p.steps()) {
    const PlanOp& op = step.op;
    const float* in =
        op.input == kInputValue ? input.raw() : float_ptr(p, op.input, batch, output);
    if (op.kind == hw::OpKind::kDepthToSpace) {
      run_shuffle(p, step, in, batch, output);
      continue;
    }
    if (op.kind != hw::OpKind::kConv) {
      throw std::logic_error("PlannedExecutor: unfused op survived the pass pipeline");
    }
    const CollapsedConv& c = net.convolutions()[static_cast<std::size_t>(op.conv_index)];
    const Shape in_shape(batch, op.in_h, op.in_w, op.in_c);
    float* out = float_ptr(p, op.output, batch, output);
    const nn::Epilogue epi = op.act_index >= 0
                                 ? net.activation_epilogue(static_cast<std::size_t>(op.act_index))
                                 : nn::Epilogue{};
    const bool is_int8 =
        pure_int8 ||
        net.hybrid_plan()[static_cast<std::size_t>(op.conv_index)] == LayerPrecision::kInt8;
    if (is_int8) {
      nn::conv2d_s8_into(in, in_shape, net.activation_scales()[static_cast<std::size_t>(
                                           op.conv_index)],
                         net.s8_weights()[static_cast<std::size_t>(op.conv_index)], bias_ptr(c),
                         epi, nn::Padding::kSame, out);
    } else {
      fp16::Half* stage = half_ptr(p, step.stage, batch);
      fp16::convert_to_half(in, stage, op.input_elements() * batch);
      nn::conv2d_fp16_to_float_into(stage, in_shape,
                                    net.fp16_weights()[static_cast<std::size_t>(op.conv_index)],
                                    bias_ptr(c), epi, nn::Padding::kSame, out);
      if (op.conv_index + 1 < n_convs) {
        fp16::round_through_half(out, op.output_elements() * batch);
      }
    }
    if (op.skip != kNoValue) {
      const std::int64_t elems = op.output_elements() * batch;
      if (op.skip == kInputValue) {
        add_input_residual(out, input.raw(), elems / op.out_c, op.out_c);
      } else {
        add_inplace(out, float_ptr(p, op.skip, batch, output), elems);
      }
    }
  }
}

}  // namespace sesr::core::plan
