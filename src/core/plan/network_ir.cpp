#include "core/plan/network_ir.hpp"

#include <algorithm>
#include <stdexcept>

namespace sesr::hw {

std::int64_t LayerDesc::out_h() const {
  switch (kind) {
    case OpKind::kConvTranspose:
    case OpKind::kDepthToSpace:
      return in_h * stride;
    default:
      return in_h;
  }
}

std::int64_t LayerDesc::out_w() const {
  switch (kind) {
    case OpKind::kConvTranspose:
    case OpKind::kDepthToSpace:
      return in_w * stride;
    default:
      return in_w;
  }
}

std::int64_t LayerDesc::macs() const {
  switch (kind) {
    case OpKind::kConv:
      return in_h * in_w * kh * kw * in_c * out_c;
    case OpKind::kConvTranspose:
      // Priced per output pixel, like a conv running at HR resolution.
      return out_h() * out_w() * kh * kw * in_c * out_c;
    default:
      return 0;  // activations/shuffles/adds are not MAC work
  }
}

std::int64_t LayerDesc::weight_bytes() const {
  switch (kind) {
    case OpKind::kConv:
    case OpKind::kConvTranspose:
      return kh * kw * in_c * out_c;
    case OpKind::kActivation:
      return out_c;  // PReLU slopes at most
    default:
      return 0;
  }
}

std::int64_t NetworkIr::total_macs() const {
  std::int64_t total = 0;
  for (const LayerDesc& l : layers) total += l.macs();
  return total;
}

std::int64_t NetworkIr::total_parameters() const {
  std::int64_t total = 0;
  for (const LayerDesc& l : layers) {
    if (l.kind == OpKind::kConv || l.kind == OpKind::kConvTranspose) {
      total += l.kh * l.kw * l.in_c * l.out_c;
    }
  }
  return total;
}

NetworkIr NetworkIr::with_input(std::int64_t h, std::int64_t w) const {
  NetworkIr out = *this;
  out.input_h = h;
  out.input_w = w;
  std::int64_t cur_h = h;
  std::int64_t cur_w = w;
  for (LayerDesc& l : out.layers) {
    l.in_h = cur_h;
    l.in_w = cur_w;
    cur_h = l.out_h();
    cur_w = l.out_w();
  }
  return out;
}

namespace {
LayerDesc conv(std::string label, std::int64_t h, std::int64_t w, std::int64_t in_c,
               std::int64_t out_c, std::int64_t kh, std::int64_t kw) {
  LayerDesc l;
  l.kind = OpKind::kConv;
  l.label = std::move(label);
  l.in_h = h;
  l.in_w = w;
  l.in_c = in_c;
  l.out_c = out_c;
  l.kh = kh;
  l.kw = kw;
  return l;
}

LayerDesc act(std::string label, std::int64_t h, std::int64_t w, std::int64_t c) {
  LayerDesc l;
  l.kind = OpKind::kActivation;
  l.label = std::move(label);
  l.in_h = h;
  l.in_w = w;
  l.in_c = c;
  l.out_c = c;
  return l;
}

LayerDesc residual(std::string label, std::int64_t h, std::int64_t w, std::int64_t c,
                   std::int64_t skip_from) {
  LayerDesc l;
  l.kind = OpKind::kResidualAdd;
  l.label = std::move(label);
  l.in_h = h;
  l.in_w = w;
  l.in_c = c;
  l.out_c = c;
  l.skip_from = skip_from;
  return l;
}

LayerDesc d2s(std::string label, std::int64_t h, std::int64_t w, std::int64_t c,
              std::int64_t block) {
  LayerDesc l;
  l.kind = OpKind::kDepthToSpace;
  l.label = std::move(label);
  l.in_h = h;
  l.in_w = w;
  l.in_c = c;
  l.out_c = c / (block * block);
  l.stride = block;
  return l;
}
}  // namespace

NetworkIr sesr_ir(const core::SesrConfig& config, std::int64_t in_h, std::int64_t in_w) {
  NetworkIr ir;
  ir.name = config.describe();
  ir.input_h = in_h;
  ir.input_w = in_w;
  const std::int64_t f = config.f;
  ir.layers.push_back(conv("first-5x5", in_h, in_w, 1, f, 5, 5));
  ir.layers.push_back(act("act0", in_h, in_w, f));
  const std::int64_t skip_src = static_cast<std::int64_t>(ir.layers.size()) - 1;
  for (std::int64_t i = 0; i < config.m; ++i) {
    // Collapsed block: short residual already folded into the kernel — one conv.
    ir.layers.push_back(conv("block" + std::to_string(i), in_h, in_w, f, f, 3, 3));
    ir.layers.push_back(act("act" + std::to_string(i + 1), in_h, in_w, f));
  }
  ir.layers.push_back(residual("long-blue", in_h, in_w, f, skip_src));
  ir.layers.push_back(conv("last-5x5", in_h, in_w, f, config.output_channels(), 5, 5));
  if (config.input_residual) {
    ir.layers.push_back(residual("long-black", in_h, in_w, config.output_channels(), -1));
  }
  ir.layers.push_back(d2s("shuffle", in_h, in_w, config.output_channels(), 2));
  if (config.scale == 4) {
    ir.layers.push_back(d2s("shuffle2", in_h * 2, in_w * 2, config.output_channels() / 4, 2));
  }
  return ir;
}

NetworkIr fsrcnn_ir(std::int64_t in_h, std::int64_t in_w, std::int64_t scale) {
  NetworkIr ir;
  ir.name = "FSRCNN (x" + std::to_string(scale) + ")";
  ir.input_h = in_h;
  ir.input_w = in_w;
  constexpr std::int64_t d = 56;
  constexpr std::int64_t s = 12;
  ir.layers.push_back(conv("feature-5x5", in_h, in_w, 1, d, 5, 5));
  ir.layers.push_back(act("feature.act", in_h, in_w, d));
  ir.layers.push_back(conv("shrink-1x1", in_h, in_w, d, s, 1, 1));
  ir.layers.push_back(act("shrink.act", in_h, in_w, s));
  for (int i = 0; i < 4; ++i) {
    ir.layers.push_back(conv("map" + std::to_string(i), in_h, in_w, s, s, 3, 3));
    ir.layers.push_back(act("map" + std::to_string(i) + ".act", in_h, in_w, s));
  }
  ir.layers.push_back(conv("expand-1x1", in_h, in_w, s, d, 1, 1));
  ir.layers.push_back(act("expand.act", in_h, in_w, d));
  LayerDesc deconv;
  deconv.kind = OpKind::kConvTranspose;
  deconv.label = "deconv-9x9";
  deconv.in_h = in_h;
  deconv.in_w = in_w;
  deconv.in_c = d;
  deconv.out_c = 1;
  deconv.kh = deconv.kw = 9;
  deconv.stride = scale;
  ir.layers.push_back(deconv);
  return ir;
}

NetworkIr vdsr_ir(std::int64_t in_h, std::int64_t in_w, std::int64_t scale) {
  // VDSR runs on the bicubic-upscaled image: all 20 layers at HR resolution.
  NetworkIr ir;
  ir.name = "VDSR (x" + std::to_string(scale) + ")";
  ir.input_h = in_h;
  ir.input_w = in_w;
  const std::int64_t h = in_h * scale;
  const std::int64_t w = in_w * scale;
  ir.layers.push_back(conv("in-3x3", h, w, 1, 64, 3, 3));
  ir.layers.push_back(act("act0", h, w, 64));
  for (int i = 1; i <= 18; ++i) {
    ir.layers.push_back(conv("mid" + std::to_string(i), h, w, 64, 64, 3, 3));
    ir.layers.push_back(act("act" + std::to_string(i), h, w, 64));
  }
  ir.layers.push_back(conv("out-3x3", h, w, 64, 1, 3, 3));
  ir.layers.push_back(residual("global", h, w, 1, -1));
  return ir;
}

NetworkIr generic_residual_ir(const std::string& name, std::int64_t in_h, std::int64_t in_w,
                              std::int64_t scale, std::int64_t body_channels,
                              std::int64_t target_macs) {
  NetworkIr ir;
  ir.name = name;
  ir.input_h = in_h;
  ir.input_w = in_w;
  const std::int64_t c = body_channels;
  ir.layers.push_back(conv("head", in_h, in_w, 1, c, 3, 3));
  // Subpixel tail: conv to scale^2 channels + shuffle.
  const std::int64_t tail_macs = in_h * in_w * 3 * 3 * c * scale * scale;
  const std::int64_t per_body_layer = in_h * in_w * 3 * 3 * c * c;
  const std::int64_t head_macs = ir.layers.back().macs();
  const std::int64_t remaining = std::max<std::int64_t>(0, target_macs - head_macs - tail_macs);
  const std::int64_t n_body =
      std::max<std::int64_t>(1, (remaining + per_body_layer / 2) / per_body_layer);
  for (std::int64_t i = 0; i < n_body; ++i) {
    ir.layers.push_back(conv("body" + std::to_string(i), in_h, in_w, c, c, 3, 3));
    ir.layers.push_back(act("act" + std::to_string(i), in_h, in_w, c));
    if (i % 2 == 1) {
      ir.layers.push_back(residual("skip" + std::to_string(i), in_h, in_w, c,
                                   static_cast<std::int64_t>(ir.layers.size()) - 5));
    }
  }
  ir.layers.push_back(conv("tail", in_h, in_w, c, scale * scale, 3, 3));
  ir.layers.push_back(d2s("shuffle", in_h, in_w, scale * scale, scale));
  return ir;
}

}  // namespace sesr::hw
