// The collapse algebra of SESR (paper Algorithms 1 and 2).
//
// Algorithm 1 ("collapse linear block"): a sequence of linear convolutions
// (no nonlinearity between them) is itself a single convolution; its kernel is
// recovered by convolving an identity probe. For kernels W_1 (k1h,k1w,Cin,C1),
// ..., W_L (kLh,kLw,C_{L-1},C_L) in HWIO layout:
//   1. Build the probe Delta of shape (Cin, 1, 1, Cin), Delta[i,0,0,i] = 1.
//   2. Zero-pad its spatial dims by (KH-1, KW-1) on each side, where
//      KH = sum_i k_ih - (L-1), KW likewise (the composed receptive field).
//   3. Push it through the L convolutions with VALID padding.
//   4. reverse both spatial axes and transpose (N,H,W,C) -> (H,W,N,C):
//      the result is the collapsed HWIO kernel (KH, KW, Cin, C_L).
//
// Algorithm 2 ("collapse residual"): an identity skip is a convolution whose
// kernel W_R has a 1 at the spatial center of channel i -> i; folding a short
// residual is the addition W_C + W_R (odd kernels only).
//
// Because every step of Algorithm 1 is linear in the layer weights, the whole
// collapse is differentiable; collapse_backward() backpropagates a gradient on
// the collapsed kernel into gradients on the expanded weights. This is what
// makes the paper's efficient training mode (Fig. 3 — forward pass in collapsed
// space even during training) exact rather than approximate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace sesr::core {

// Composed receptive field of a conv sequence: sum(k) - (L - 1) per axis.
std::int64_t composed_kernel_extent(std::span<const std::int64_t> extents);

// Algorithm 1. Weights are HWIO; consecutive channel counts must chain.
Tensor collapse_conv_sequence(std::span<const Tensor> weights);

// Intermediate activations of the probe pipeline, retained for backward.
struct CollapseCache {
  std::vector<Tensor> inputs;  // inputs[i] is the probe tensor fed to conv i
};

Tensor collapse_conv_sequence_cached(std::span<const Tensor> weights, CollapseCache& cache);

// Backpropagate d(loss)/d(W_collapsed) into d(loss)/d(W_i); gradients are
// *accumulated* into grad_weights (which must match weights' shapes).
void collapse_backward(const Tensor& grad_collapsed, std::span<const Tensor> weights,
                       const CollapseCache& cache, std::span<Tensor> grad_weights);

// Collapse the bias chain: with per-layer biases b_i, the collapsed conv's bias
// is beta_L where beta_1 = b_1 and beta_i = b_i + W_i ** beta_{i-1}
// (** sums the kernel over its spatial taps). Biases are (1, 1, 1, C_i).
Tensor collapse_bias_sequence(std::span<const Tensor> weights, std::span<const Tensor> biases);

// Backward of the bias chain; accumulates into grad_weights / grad_biases.
void collapse_bias_backward(const Tensor& grad_collapsed_bias, std::span<const Tensor> weights,
                            std::span<const Tensor> biases, std::span<Tensor> grad_weights,
                            std::span<Tensor> grad_biases);

// Algorithm 2: W_R for a (k, k, c, c) kernel; returns the residual kernel.
Tensor residual_kernel(std::int64_t kh, std::int64_t kw, std::int64_t channels);

// w += residual_kernel(...) — requires odd spatial dims and square channels.
void add_residual_identity(Tensor& w);

}  // namespace sesr::core
