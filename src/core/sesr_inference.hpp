// Collapsed SESR for deployment (paper Fig. 2(d)).
//
// After training, every linear block collapses (Algorithm 1) and every short
// residual folds into its kernel (Algorithm 2), leaving a VGG-like network of
// m+2 narrow convolutions, the activations, the two long residuals, and the
// depth-to-space. This class holds exactly that: plain kernels, no expanded
// weights, forward-only — what one would ship to an NPU.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/sesr_network.hpp"
#include "nn/conv2d_s8.hpp"
#include "tensor/fp16.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace sesr::core {

namespace plan {
class PlannedExecutor;
}

// Broadcast-add the (N, H, W, 1) input onto every channel of the pre-shuffle
// output: out[p * out_c + c] += in[p] — the paper's long "black" residual.
// One definition shared by every precision path and the planned executor.
void add_input_residual(float* out, const float* input, std::int64_t pixels,
                        std::int64_t out_c);

struct CollapsedConv {
  Tensor weight;                // HWIO
  std::optional<Tensor> bias;   // (1, 1, 1, out_c)
};

// Arithmetic mode of the collapsed forward pass. kFp16 stores weights and
// inter-layer activations as binary16 (halving the conv working-set traffic)
// while every dot product still accumulates in fp32; biases, PReLU slopes,
// the residual adds and the depth-to-space stay in fp32 arithmetic, with one
// binary16 rounding per stored activation. kInt8 runs every conv through the
// quantized u8 x s8 GEMM (per-output-channel weight scales, calibrated
// per-tensor activation scales; requires calibrate_int8 first) on an fp32
// carrier between layers. kHybrid runs the per-layer fp16/int8 split stored
// by set_hybrid_plan — the NAWQ-SR-style assignment the hybrid planner
// searches. See docs/PERFORMANCE.md, "Precision".
enum class InferencePrecision { kFp32, kFp16, kInt8, kHybrid };

// Per-layer arithmetic of a hybrid plan (fp32 never appears in a plan: the
// planner trades int8 speed against fp16 quality, and fp16 already matches
// fp32 to far below the planning budget).
enum class LayerPrecision : std::uint8_t { kFp16 = 0, kInt8 = 1 };

class SesrInference {
 public:
  // Collapse a trained (or freshly initialized) SESR network.
  explicit SesrInference(const SesrNetwork& network);

  // Reconstruct from a checkpoint previously written by to_tensor_map().
  explicit SesrInference(const TensorMap& map);

  // Copies share no executor state: the copy re-plans lazily. Moves carry the
  // executor (its plans depend only on config/precision, which move along).
  SesrInference(const SesrInference& other);
  SesrInference& operator=(const SesrInference& other);
  SesrInference(SesrInference&&) noexcept;
  SesrInference& operator=(SesrInference&&) noexcept;
  ~SesrInference();

  // Upscale a (N, H, W, 1) Y-channel tensor to (N, scale*H, scale*W, 1),
  // using the precision selected by set_precision (fp32 by default). Runs the
  // compiled execution plan (bit-identical to upscale_direct; only buffer
  // placement differs). Not safe for concurrent calls on one instance — the
  // serve layer runs one replica per worker.
  Tensor upscale(const Tensor& input) const;

  // The legacy unplanned forward: every layer allocates its output tensor.
  // Kept as the reference the planned path is audited against.
  Tensor upscale_direct(const Tensor& input) const;

  // Planned forward into a caller-owned (N, scale*H, scale*W, 1) tensor.
  // Steady state (warm plan cache, grown arenas) performs zero heap
  // allocations. Ignores set_use_plan — this entry point is the plan.
  void upscale_into(const Tensor& input, Tensor& output) const;

  // Route upscale() through the execution plan (default) or the legacy
  // allocating path. The audit pair flips this to compare the two.
  void set_use_plan(bool use_plan) { use_plan_ = use_plan; }
  bool use_plan() const { return use_plan_; }

  // Activation-arena controls for long-lived serving workers: grow the
  // executor's arenas up front for frames up to `lr_pixels` (so steady-state
  // traffic never reallocates), release memory an oversized frame left
  // behind, and observe current retained bytes.
  void plan_reserve(std::int64_t lr_pixels);
  void plan_trim(std::int64_t lr_pixels);
  std::int64_t plan_arena_bytes() const;

  // Select the forward-pass precision. Switching to kFp16 rounds every conv
  // kernel to binary16 once (cached); switching back restores the untouched
  // fp32 weights. kInt8 requires calibrate_int8 to have run (throws
  // std::logic_error otherwise); kHybrid additionally requires a stored plan.
  // Not thread-safe against concurrent upscale calls.
  void set_precision(InferencePrecision precision);
  InferencePrecision precision() const { return precision_; }

  // Calibrates the int8 path: quantizes every conv kernel (symmetric,
  // per-output-channel) and derives one max-abs activation scale per layer by
  // replaying the exact fused fp32 dataflow — bias included — over the given
  // LR Y-frames. Deterministic; the result serializes through to_tensor_map,
  // so restored replicas inherit bit-identical scales without the frames.
  void calibrate_int8(const std::vector<Tensor>& frames);
  bool int8_calibrated() const { return !act_scales_.empty(); }
  // Per-layer activation scales (m+2 entries once calibrated).
  const std::vector<float>& activation_scales() const { return act_scales_; }
  // Quantized kernels (valid once calibrated).
  const std::vector<nn::S8ConvWeights>& s8_weights() const { return s8_weights_; }

  // Stores the per-layer fp16/int8 assignment used by kHybrid (one entry per
  // conv). Produced by plan_hybrid_precision (core/hybrid_plan.hpp), but any
  // plan of the right length is accepted. Serialized with the checkpoint.
  void set_hybrid_plan(std::vector<LayerPrecision> plan);
  const std::vector<LayerPrecision>& hybrid_plan() const { return plan_; }

  const SesrConfig& config() const { return config_; }
  std::int64_t parameter_count() const;  // conv weights (+ biases), the paper's P
  std::string name() const { return config_.describe() + " [collapsed]"; }

  TensorMap to_tensor_map() const;

  const std::vector<CollapsedConv>& convolutions() const { return convs_; }

  // Activation following conv `index` (0 = first conv, ..., m = last middle
  // conv); PReLU with the stored per-channel slopes, or ReLU for the hardware
  // variant. Exposed so derived pipelines (e.g. the int8 path) can mirror the
  // exact float dataflow.
  Tensor activate(std::size_t index, const Tensor& x) const;
  // Per-activation PReLU slopes; empty tensors mean ReLU.
  const std::vector<Tensor>& prelu_alphas() const { return prelu_alpha_; }

  // Fused-epilogue descriptor of activation `index` (ReLU, or PReLU with the
  // stored slopes). The returned epilogue borrows the alpha tensor's storage.
  nn::Epilogue activation_epilogue(std::size_t index) const;

  // Binary16 conv kernels; populated by set_precision(kFp16/kHybrid).
  const std::vector<fp16::HalfTensor>& fp16_weights() const { return fp16_weights_; }

 private:
  Tensor upscale_fp16(const Tensor& input) const;
  // kInt8 / kHybrid forward on the fp32 carrier (quantize-in-pack per layer).
  Tensor upscale_mixed(const Tensor& input) const;
  // Replays the fused fp32 dataflow, calling observe(layer, input) just
  // before each conv — the calibration observer hook.
  Tensor replay_fp32(const Tensor& input,
                     const std::function<void(std::size_t, const Tensor&)>& observe) const;
  void ensure_fp16_weights();

  SesrConfig config_;
  std::vector<CollapsedConv> convs_;  // first, m middle (residual folded), last
  std::vector<Tensor> prelu_alpha_;   // per activation; empty tensors when ReLU
  InferencePrecision precision_ = InferencePrecision::kFp32;
  std::vector<fp16::HalfTensor> fp16_weights_;  // per conv; built on first kFp16 switch
  std::vector<float> act_scales_;               // per conv; set by calibrate_int8
  std::vector<nn::S8ConvWeights> s8_weights_;   // per conv; set by calibrate_int8
  std::vector<LayerPrecision> plan_;            // per conv; set by set_hybrid_plan
  bool use_plan_ = true;
  // Built on first planned upscale; holds compiled plans + activation arenas.
  mutable std::unique_ptr<plan::PlannedExecutor> exec_;
};

}  // namespace sesr::core
