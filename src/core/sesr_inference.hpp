// Collapsed SESR for deployment (paper Fig. 2(d)).
//
// After training, every linear block collapses (Algorithm 1) and every short
// residual folds into its kernel (Algorithm 2), leaving a VGG-like network of
// m+2 narrow convolutions, the activations, the two long residuals, and the
// depth-to-space. This class holds exactly that: plain kernels, no expanded
// weights, forward-only — what one would ship to an NPU.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/sesr_network.hpp"
#include "tensor/fp16.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace sesr::core {

struct CollapsedConv {
  Tensor weight;                // HWIO
  std::optional<Tensor> bias;   // (1, 1, 1, out_c)
};

// Arithmetic mode of the collapsed forward pass. kFp16 stores weights and
// inter-layer activations as binary16 (halving the conv working-set traffic)
// while every dot product still accumulates in fp32; biases, PReLU slopes,
// the residual adds and the depth-to-space stay in fp32 arithmetic, with one
// binary16 rounding per stored activation. See docs/PERFORMANCE.md,
// "Precision".
enum class InferencePrecision { kFp32, kFp16 };

class SesrInference {
 public:
  // Collapse a trained (or freshly initialized) SESR network.
  explicit SesrInference(const SesrNetwork& network);

  // Reconstruct from a checkpoint previously written by to_tensor_map().
  explicit SesrInference(const TensorMap& map);

  // Upscale a (N, H, W, 1) Y-channel tensor to (N, scale*H, scale*W, 1),
  // using the precision selected by set_precision (fp32 by default).
  Tensor upscale(const Tensor& input) const;

  // Select the forward-pass precision. Switching to kFp16 rounds every conv
  // kernel to binary16 once (cached); switching back restores the untouched
  // fp32 weights. Not thread-safe against concurrent upscale calls.
  void set_precision(InferencePrecision precision);
  InferencePrecision precision() const { return precision_; }

  const SesrConfig& config() const { return config_; }
  std::int64_t parameter_count() const;  // conv weights (+ biases), the paper's P
  std::string name() const { return config_.describe() + " [collapsed]"; }

  TensorMap to_tensor_map() const;

  const std::vector<CollapsedConv>& convolutions() const { return convs_; }

  // Activation following conv `index` (0 = first conv, ..., m = last middle
  // conv); PReLU with the stored per-channel slopes, or ReLU for the hardware
  // variant. Exposed so derived pipelines (e.g. the int8 path) can mirror the
  // exact float dataflow.
  Tensor activate(std::size_t index, const Tensor& x) const;
  // Per-activation PReLU slopes; empty tensors mean ReLU.
  const std::vector<Tensor>& prelu_alphas() const { return prelu_alpha_; }

 private:
  Tensor upscale_fp16(const Tensor& input) const;

  SesrConfig config_;
  std::vector<CollapsedConv> convs_;  // first, m middle (residual folded), last
  std::vector<Tensor> prelu_alpha_;   // per activation; empty tensors when ReLU
  InferencePrecision precision_ = InferencePrecision::kFp32;
  std::vector<fp16::HalfTensor> fp16_weights_;  // per conv; built on first kFp16 switch
};

}  // namespace sesr::core
