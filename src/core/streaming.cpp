#include "core/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "nn/conv2d_s8.hpp"
#include "nn/gemm_s8.hpp"
#include "tensor/fp16.hpp"

namespace sesr::core {

namespace {
// One output row of a SAME-padded conv: taps outside [0, H) read zero rows.
// `rows[t]` is the input row y - r + t (nullptr = zero padding).
void conv_row(const std::vector<const float*>& rows, std::int64_t width, const Tensor& weight,
              float* out) {
  const Shape& ws = weight.shape();
  const std::int64_t kh = ws.dim(0);
  const std::int64_t kw = ws.dim(1);
  const std::int64_t in_c = ws.dim(2);
  const std::int64_t out_c = ws.dim(3);
  const std::int64_t rw = kw / 2;
  std::fill(out, out + width * out_c, 0.0F);
  for (std::int64_t ky = 0; ky < kh; ++ky) {
    const float* src = rows[static_cast<std::size_t>(ky)];
    if (src == nullptr) continue;
    for (std::int64_t x = 0; x < width; ++x) {
      float* dst = out + x * out_c;
      for (std::int64_t kx = 0; kx < kw; ++kx) {
        const std::int64_t ix = x - rw + kx;
        if (ix < 0 || ix >= width) continue;
        const float* pix = src + ix * in_c;
        const std::int64_t base = (ky * kw + kx) * in_c * out_c;
        const float* w = weight.raw() + base;
        for (std::int64_t ic = 0; ic < in_c; ++ic) {
          const float v = pix[ic];
          if (v == 0.0F) continue;
          const float* wc = w + ic * out_c;
          for (std::int64_t oc = 0; oc < out_c; ++oc) dst[oc] += v * wc[oc];
        }
      }
    }
  }
}

// One output row of the SAME-padded s8 x s8 conv, int32 accumulate. Skipped
// (out-of-bounds) taps contribute zero, exactly like the u8 zero-point
// padding in the packed GEMM; since integer sums are order-independent the
// accumulator equals gemm_s8's compensated accumulator bit for bit.
void conv_row_s8(const std::vector<const std::int8_t*>& rows, std::int64_t width,
                 const nn::S8ConvWeights& weight, std::int32_t* acc) {
  const Shape& ws = weight.shape;
  const std::int64_t kh = ws.dim(0);
  const std::int64_t kw = ws.dim(1);
  const std::int64_t in_c = ws.dim(2);
  const std::int64_t out_c = ws.dim(3);
  const std::int64_t rw = kw / 2;
  std::fill(acc, acc + width * out_c, 0);
  for (std::int64_t ky = 0; ky < kh; ++ky) {
    const std::int8_t* src = rows[static_cast<std::size_t>(ky)];
    if (src == nullptr) continue;
    for (std::int64_t x = 0; x < width; ++x) {
      std::int32_t* dst = acc + x * out_c;
      for (std::int64_t kx = 0; kx < kw; ++kx) {
        const std::int64_t ix = x - rw + kx;
        if (ix < 0 || ix >= width) continue;
        const std::int8_t* pix = src + ix * in_c;
        const std::int8_t* w = weight.values.data() + (ky * kw + kx) * in_c * out_c;
        for (std::int64_t ic = 0; ic < in_c; ++ic) {
          const std::int32_t v = pix[ic];
          if (v == 0) continue;
          const std::int8_t* wc = w + ic * out_c;
          for (std::int64_t oc = 0; oc < out_c; ++oc) {
            dst[oc] += v * static_cast<std::int32_t>(wc[oc]);
          }
        }
      }
    }
  }
}

void activate_row(const Tensor& alpha, std::int64_t width, std::int64_t channels, float* row) {
  if (alpha.empty()) {
    for (std::int64_t i = 0; i < width * channels; ++i) row[i] = row[i] > 0.0F ? row[i] : 0.0F;
    return;
  }
  const float* pa = alpha.raw();
  for (std::int64_t x = 0; x < width; ++x) {
    for (std::int64_t c = 0; c < channels; ++c) {
      float& v = row[x * channels + c];
      if (v <= 0.0F) v *= pa[c];
    }
  }
}
}  // namespace

const float* StreamingUpscaler::Stream::row(std::int64_t y) const {
  for (const auto& [index, data] : rows) {
    if (index == y) return data.data();
  }
  return nullptr;
}

void StreamingUpscaler::Stream::push(std::int64_t y, std::vector<float> data) {
  rows.emplace_back(y, std::move(data));
  next_row = y + 1;
}

void StreamingUpscaler::Stream::prune(std::int64_t min_needed_row) {
  while (!rows.empty() && rows.front().first < min_needed_row) rows.pop_front();
}

StreamingUpscaler::StreamingUpscaler(const SesrInference& network) : net_(network) {
  for (const CollapsedConv& conv : network.convolutions()) {
    if (conv.bias) {
      throw std::invalid_argument("StreamingUpscaler: biased networks not supported");
    }
    radius_.push_back(conv.weight.shape().dim(0) / 2);
  }
}

Tensor StreamingUpscaler::upscale(const Tensor& input) {
  const Shape& s = input.shape();
  if (s.n() != 1 || s.c() != 1) {
    throw std::invalid_argument("StreamingUpscaler: expects a (1, H, W, 1) Y image");
  }
  const std::int64_t height = s.h();
  const std::int64_t width = s.w();
  const auto& convs = net_.convolutions();
  const std::size_t n_convs = convs.size();
  // fp16 mode mirrors the full-frame reduced-precision dataflow row by row:
  // rounded weights, rounded input rows, one binary16 rounding per produced
  // activation row (and on the residual sum), fp32 pre-shuffle stream.
  // int8/hybrid mode keeps the fp32 carrier in the deques and quantizes (or
  // rounds, for the plan's fp16 layers) at consumption, exactly as
  // upscale_mixed does per layer.
  const InferencePrecision prec = net_.precision();
  const bool fp16_mode = prec == InferencePrecision::kFp16;
  const bool mixed_mode =
      prec == InferencePrecision::kInt8 || prec == InferencePrecision::kHybrid;
  auto layer_int8 = [&](std::size_t i) {
    return prec == InferencePrecision::kInt8 ||
           (prec == InferencePrecision::kHybrid &&
            net_.hybrid_plan()[i] == LayerPrecision::kInt8);
  };
  if (mixed_mode && !net_.int8_calibrated()) {
    throw std::logic_error("StreamingUpscaler: network not calibrated for int8");
  }
  const bool need_fp16_w =
      fp16_mode || (mixed_mode && [&] {
        for (std::size_t i = 0; i < n_convs; ++i) {
          if (!layer_int8(i)) return true;
        }
        return false;
      }());
  // Per-layer single-rounded dequant products, mirroring conv2d_s8 exactly.
  std::vector<std::vector<float>> s8_dequant;
  if (mixed_mode) {
    s8_dequant.resize(n_convs);
    for (std::size_t i = 0; i < n_convs; ++i) {
      const nn::S8ConvWeights& w8 = net_.s8_weights()[i];
      s8_dequant[i].resize(w8.scale.size());
      for (std::size_t oc = 0; oc < w8.scale.size(); ++oc) {
        s8_dequant[i][oc] = net_.activation_scales()[i] * w8.scale[oc];
      }
    }
  }
  if (need_fp16_w && fp16_weights_.empty()) {
    fp16_weights_.reserve(n_convs);
    for (const CollapsedConv& conv : convs) {
      Tensor w = conv.weight;
      fp16::round_through_half(w.raw(), w.numel());
      fp16_weights_.push_back(std::move(w));
    }
  }
  const std::int64_t scale = net_.config().scale;
  const std::int64_t out_c = net_.config().output_channels();
  Tensor output(1, height * scale, width * scale, 1);

  // Streams: 0 = input, 1 = act0 output, 1+i = act_i output (i = 1..m),
  // n_convs = pre-shuffle tensor. Stream 1 doubles as the blue-skip source;
  // stream 0 doubles as the black-skip source.
  std::vector<Stream> streams(n_convs + 1);
  streams[0].channels = 1;
  for (std::size_t i = 1; i < n_convs; ++i) streams[i].channels = net_.config().f;
  streams[n_convs].channels = out_c;

  peak_rows_ = 0;
  peak_bytes_ = 0;
  std::int64_t shuffled = 0;  // pre-shuffle rows consumed by depth-to-space

  auto try_produce_conv = [&](std::size_t layer) -> bool {
    Stream& src = streams[layer];
    Stream& dst = streams[layer + 1];
    const std::int64_t y = dst.next_row;
    if (y >= height) return false;
    const std::int64_t r = radius_[layer];
    if (src.next_row < std::min(height, y + r + 1)) return false;  // inputs not ready
    const bool is_last = layer + 1 == n_convs;
    // The last conv consumes chain + blue skip; check the skip rows too.
    if (is_last && streams[1].next_row < std::min(height, y + r + 1)) return false;

    const std::int64_t kh = convs[layer].weight.shape().dim(0);
    std::vector<const float*> rows(static_cast<std::size_t>(kh), nullptr);
    std::vector<std::vector<float>> combined;  // keeps combined skip rows alive
    for (std::int64_t ky = 0; ky < kh; ++ky) {
      const std::int64_t iy = y - r + ky;
      if (iy < 0 || iy >= height) continue;
      const float* base = src.row(iy);
      if (base == nullptr) throw std::logic_error("StreamingUpscaler: source row pruned too early");
      if (is_last) {
        const float* skip = streams[1].row(iy);
        if (skip == nullptr) throw std::logic_error("StreamingUpscaler: skip row pruned too early");
        std::vector<float> sum(static_cast<std::size_t>(width * src.channels));
        for (std::size_t i = 0; i < sum.size(); ++i) sum[i] = base[i] + skip[i];
        if (fp16_mode) {
          fp16::round_through_half(sum.data(), static_cast<std::int64_t>(sum.size()));
        }
        combined.push_back(std::move(sum));
        rows[static_cast<std::size_t>(ky)] = combined.back().data();
      } else {
        rows[static_cast<std::size_t>(ky)] = base;
      }
    }
    std::vector<float> out(static_cast<std::size_t>(width * dst.channels));
    if (mixed_mode && layer_int8(layer)) {
      // Quantize the taps with the layer's calibrated scale and run the
      // direct s8 conv; the dequant + activation below restate the fused
      // GEMM epilogue expression exactly (fmaf, then f > 0 ? f : alpha * f),
      // so pure-int8 rows are bitwise equal to the full-frame path.
      const float inv = 1.0F / net_.activation_scales()[layer];
      std::vector<std::vector<std::int8_t>> qstore;
      qstore.reserve(static_cast<std::size_t>(kh));
      std::vector<const std::int8_t*> qrows(static_cast<std::size_t>(kh), nullptr);
      for (std::int64_t ky = 0; ky < kh; ++ky) {
        const float* src_row = rows[static_cast<std::size_t>(ky)];
        if (src_row == nullptr) continue;
        std::vector<std::int8_t> q(static_cast<std::size_t>(width * src.channels));
        for (std::size_t i = 0; i < q.size(); ++i) q[i] = nn::quantize_value(src_row[i], inv);
        qstore.push_back(std::move(q));
        qrows[static_cast<std::size_t>(ky)] = qstore.back().data();
      }
      std::vector<std::int32_t> acc(out.size());
      conv_row_s8(qrows, width, net_.s8_weights()[layer], acc.data());
      const std::vector<float>& dq = s8_dequant[layer];
      const std::int64_t ch = dst.channels;
      for (std::int64_t x = 0; x < width; ++x) {
        for (std::int64_t oc = 0; oc < ch; ++oc) {
          out[static_cast<std::size_t>(x * ch + oc)] = std::fmaf(
              static_cast<float>(acc[static_cast<std::size_t>(x * ch + oc)]), dq[static_cast<std::size_t>(oc)], 0.0F);
        }
      }
      if (!is_last) {
        const Tensor& alpha = net_.prelu_alphas().at(layer);
        if (alpha.empty()) {
          for (float& f : out) f = f > 0.0F ? f : 0.0F;
        } else {
          const float* pa = alpha.raw();
          for (std::int64_t x = 0; x < width; ++x) {
            for (std::int64_t oc = 0; oc < ch; ++oc) {
              float& f = out[static_cast<std::size_t>(x * ch + oc)];
              f = f > 0.0F ? f : pa[oc] * f;
            }
          }
        }
      }
    } else if (mixed_mode) {
      // fp16 layer of a hybrid plan: binary16-round copies of the taps (the
      // deques hold the raw fp32 carrier), conv with the rounded weights,
      // one rounding on the stored activation row (except after the last
      // conv) — one layer of the pure-fp16 path, quantize-at-consumption.
      std::vector<std::vector<float>> rstore;
      rstore.reserve(static_cast<std::size_t>(kh));
      std::vector<const float*> rrows(static_cast<std::size_t>(kh), nullptr);
      for (std::int64_t ky = 0; ky < kh; ++ky) {
        const float* src_row = rows[static_cast<std::size_t>(ky)];
        if (src_row == nullptr) continue;
        std::vector<float> r(src_row, src_row + width * src.channels);
        fp16::round_through_half(r.data(), static_cast<std::int64_t>(r.size()));
        rstore.push_back(std::move(r));
        rrows[static_cast<std::size_t>(ky)] = rstore.back().data();
      }
      conv_row(rrows, width, fp16_weights_[layer], out.data());
      if (!is_last) {
        activate_row(net_.prelu_alphas().at(layer), width, dst.channels, out.data());
        fp16::round_through_half(out.data(), static_cast<std::int64_t>(out.size()));
      }
    } else {
      conv_row(rows, width, fp16_mode ? fp16_weights_[layer] : convs[layer].weight, out.data());
      if (!is_last) {
        activate_row(net_.prelu_alphas().at(layer), width, dst.channels, out.data());
        if (fp16_mode) {
          fp16::round_through_half(out.data(), static_cast<std::int64_t>(out.size()));
        }
      }
    }
    if (is_last && net_.config().input_residual) {
      const float* in_row = streams[0].row(y);
      if (in_row == nullptr) throw std::logic_error("StreamingUpscaler: input row pruned too early");
      for (std::int64_t x = 0; x < width; ++x) {
        for (std::int64_t c = 0; c < out_c; ++c) out[static_cast<std::size_t>(x * out_c + c)] += in_row[x];
      }
    }
    dst.push(y, std::move(out));
    return true;
  };

  auto try_shuffle = [&]() -> bool {
    Stream& pre = streams[n_convs];
    if (shuffled >= height || pre.next_row <= shuffled) return false;
    const float* row = pre.row(shuffled);
    if (row == nullptr) throw std::logic_error("StreamingUpscaler: pre-shuffle row missing");
    // depth-to-space (applied twice for x4, composed into one index map).
    for (std::int64_t x = 0; x < width; ++x) {
      for (std::int64_t c = 0; c < out_c; ++c) {
        std::int64_t dy = 0;
        std::int64_t dx = 0;
        if (scale == 2) {
          dy = c / 2;
          dx = c % 2;
        } else {  // scale 4: first shuffle block (c / 4), second block (c % 4)
          const std::int64_t c1 = c / 4;
          const std::int64_t c2 = c % 4;
          dy = 2 * (c1 / 2) + c2 / 2;
          dx = 2 * (c1 % 2) + c2 % 2;
        }
        output(0, shuffled * scale + dy, x * scale + dx, 0) = row[x * out_c + c];
      }
    }
    ++shuffled;
    return true;
  };

  auto prune_and_measure = [&]() {
    // Stream 0 feeds conv 0 (radius r0) and, with the input residual, the
    // last conv's output rows (delay = pre-shuffle production).
    const std::int64_t need0_conv = streams[1].next_row - radius_[0];
    const std::int64_t need0_resid =
        net_.config().input_residual ? streams[n_convs].next_row : height;
    streams[0].prune(std::min(need0_conv, need0_resid));
    // Stream 1 feeds conv 1 and the blue skip at the last conv.
    if (n_convs > 2) {
      const std::int64_t need1_conv = streams[2].next_row - radius_[1];
      const std::int64_t need1_skip = streams[n_convs].next_row - radius_[n_convs - 1];
      streams[1].prune(std::min(need1_conv, need1_skip));
      for (std::size_t i = 2; i < n_convs; ++i) {
        streams[i].prune(streams[i + 1].next_row - radius_[i]);
      }
    }
    streams[n_convs].prune(shuffled);
    std::int64_t rows = 0;
    std::int64_t bytes = 0;
    for (std::size_t i = 0; i < streams.size(); ++i) {
      const Stream& st = streams[i];
      // In fp16 mode every line buffer except the fp32 pre-shuffle stream
      // holds binary16 cells; in int8/hybrid mode each buffer holds what its
      // consuming conv reads (s8 or binary16), except the long-residual
      // sources (input with input_residual, act0), whose second consumer
      // adds on the carrier and which therefore stay binary16 at minimum.
      std::int64_t elem_bytes = 4;
      if (i < n_convs) {
        if (fp16_mode) {
          elem_bytes = 2;
        } else if (mixed_mode) {
          elem_bytes = layer_int8(i) ? 1 : 2;
          const bool residual_source = (i == 0 && net_.config().input_residual) || i == 1;
          if (residual_source) elem_bytes = std::max<std::int64_t>(elem_bytes, 2);
        }
      }
      rows += static_cast<std::int64_t>(st.rows.size());
      bytes += static_cast<std::int64_t>(st.rows.size()) * width * st.channels * elem_bytes;
    }
    peak_rows_ = std::max(peak_rows_, rows);
    peak_bytes_ = std::max(peak_bytes_, bytes);
  };

  // Drive: feed input rows, then advance every stage as far as possible.
  std::int64_t fed = 0;
  while (shuffled < height) {
    bool progress = false;
    if (fed < height) {
      std::vector<float> row(static_cast<std::size_t>(width));
      const float* src = input.raw() + s.offset(0, fed, 0, 0);
      std::copy(src, src + width, row.begin());
      if (fp16_mode) fp16::round_through_half(row.data(), width);
      streams[0].push(fed, std::move(row));
      ++fed;
      progress = true;
    }
    for (std::size_t layer = 0; layer < n_convs; ++layer) {
      while (try_produce_conv(layer)) progress = true;
    }
    while (try_shuffle()) progress = true;
    prune_and_measure();
    if (!progress) throw std::logic_error("StreamingUpscaler: pipeline stalled");
  }
  return output;
}

}  // namespace sesr::core
