// CollapsibleBlock: the contract every SESR-compatible block fulfils.
//
// A block maps (N, H, W, in_c) -> (N, H, W, out_c) at training time and must be
// expressible as ONE kh x kw convolution at inference time (so the deployed
// network is the VGG-like chain of Fig. 2(d) regardless of how the block was
// overparameterized during training). Implementations:
//   core::LinearBlock        — the paper's collapsible linear block.
//   baselines::SingleConvBlock — no overparameterization (VGG / ablations).
//   baselines::RepVggBlock   — k x k + 1 x 1 branch + identity (RepVGG-style).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "nn/layer.hpp"
#include "tensor/rng.hpp"

namespace sesr::core {

class CollapsibleBlock : public nn::Layer {
 public:
  // The single equivalent kernel, with any short residual already folded in
  // (Algorithm 2), ready for deployment.
  virtual Tensor collapsed_weight() const = 0;
  virtual std::optional<Tensor> collapsed_bias() const = 0;
  // Parameters of the *collapsed* form — what the paper's P formula counts.
  virtual std::int64_t collapsed_parameter_count() const = 0;
};

// Shape request handed to a block factory by the network builder.
struct BlockSpec {
  std::string name;
  std::int64_t kh = 3;
  std::int64_t kw = 3;
  std::int64_t in_channels = 16;
  std::int64_t out_channels = 16;
  bool short_residual = false;
};

using BlockFactory =
    std::function<std::unique_ptr<CollapsibleBlock>(const BlockSpec& spec, Rng& rng)>;

}  // namespace sesr::core
