#include "core/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/conv2d.hpp"
#include "nn/depth_to_space.hpp"
#include "nn/im2col.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::core {

QuantizedTensor quantize_symmetric(const Tensor& t) {
  QuantizedTensor q;
  q.shape = t.shape();
  q.values.resize(static_cast<std::size_t>(t.numel()));
  const float max_abs_val = max_abs(t);
  q.scale = max_abs_val > 0.0F ? max_abs_val / 127.0F : kDegenerateQuantScale;
  const float inv = 1.0F / q.scale;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    q.values[static_cast<std::size_t>(i)] = nn::quantize_value(t.raw()[i], inv);
  }
  return q;
}

Tensor dequantize(const QuantizedTensor& q) {
  Tensor t(q.shape);
  for (std::size_t i = 0; i < q.values.size(); ++i) {
    t.raw()[i] = static_cast<float>(q.values[i]) * q.scale;
  }
  return t;
}

Tensor conv2d_int8(const QuantizedTensor& input, const QuantizedTensor& weight) {
  const Shape& is = input.shape;
  const Shape& ws = weight.shape;
  if (is.c() != ws.dim(2)) throw std::invalid_argument("conv2d_int8: channel mismatch");
  const nn::ConvGeometry g = nn::same_geometry(is.h(), is.w(), is.c(), ws.dim(0), ws.dim(1));
  const std::int64_t out_c = ws.dim(3);
  Tensor out(is.n(), g.out_h, g.out_w, out_c);
  const float out_scale = input.scale * weight.scale;
  for (std::int64_t n = 0; n < is.n(); ++n) {
    for (std::int64_t oy = 0; oy < g.out_h; ++oy) {
      for (std::int64_t ox = 0; ox < g.out_w; ++ox) {
        for (std::int64_t oc = 0; oc < out_c; ++oc) {
          std::int32_t acc = 0;  // int32 accumulator, as NPUs do
          for (std::int64_t ky = 0; ky < g.kh; ++ky) {
            const std::int64_t iy = oy - g.pad_top + ky;
            if (iy < 0 || iy >= is.h()) continue;
            for (std::int64_t kx = 0; kx < g.kw; ++kx) {
              const std::int64_t ix = ox - g.pad_left + kx;
              if (ix < 0 || ix >= is.w()) continue;
              for (std::int64_t ic = 0; ic < is.c(); ++ic) {
                const std::int32_t xv =
                    input.values[static_cast<std::size_t>(is.offset(n, iy, ix, ic))];
                const std::int32_t wv =
                    weight.values[static_cast<std::size_t>(ws.offset(ky, kx, ic, oc))];
                acc += xv * wv;
              }
            }
          }
          out(n, oy, ox, oc) = static_cast<float>(acc) * out_scale;
        }
      }
    }
  }
  return out;
}

namespace {
// Replays the SesrInference float dataflow, invoking `observe(layer, input)`
// just before each convolution — used for activation-range calibration.
template <typename Observer>
Tensor replay_forward(const SesrInference& network, const Tensor& input, Observer&& observe) {
  const auto& convs = network.convolutions();
  observe(0, input);
  Tensor feat = network.activate(0, nn::conv2d(input, convs.front().weight, nn::Padding::kSame));
  Tensor skip = feat;
  for (std::size_t i = 1; i + 1 < convs.size(); ++i) {
    observe(i, feat);
    feat = network.activate(i, nn::conv2d(feat, convs[i].weight, nn::Padding::kSame));
  }
  add_inplace(feat, skip);
  observe(convs.size() - 1, feat);
  Tensor out = nn::conv2d(feat, convs.back().weight, nn::Padding::kSame);
  if (network.config().input_residual) {
    const std::int64_t oc = network.config().output_channels();
    float* po = out.raw();
    const float* pi = input.raw();
    const std::int64_t pixels = out.numel() / oc;
    for (std::int64_t p = 0; p < pixels; ++p) {
      for (std::int64_t c = 0; c < oc; ++c) po[p * oc + c] += pi[p];
    }
  }
  Tensor y = nn::depth_to_space(out, 2);
  if (network.config().scale == 4) y = nn::depth_to_space(y, 2);
  return y;
}

// Quantize with a fixed, pre-calibrated scale.
QuantizedTensor quantize_with_scale(const Tensor& t, float scale) {
  QuantizedTensor q;
  q.shape = t.shape();
  q.scale = scale;
  q.values.resize(static_cast<std::size_t>(t.numel()));
  const float inv = 1.0F / scale;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    q.values[static_cast<std::size_t>(i)] = nn::quantize_value(t.raw()[i], inv);
  }
  return q;
}
}  // namespace

QuantizedSesr::QuantizedSesr(const SesrInference& network, const std::vector<Tensor>& calibration)
    : config_(network.config()), prelu_alpha_(network.prelu_alphas()) {
  if (calibration.empty()) throw std::invalid_argument("QuantizedSesr: no calibration images");
  for (const CollapsedConv& conv : network.convolutions()) {
    if (conv.bias) {
      throw std::invalid_argument(
          "QuantizedSesr: biased networks not supported (SESR is bias-free)");
    }
    weights_.push_back(quantize_symmetric(conv.weight));
  }
  activation_scale_.assign(weights_.size(), 0.0F);
  for (const Tensor& image : calibration) {
    if (image.shape().c() != 1) {
      throw std::invalid_argument("QuantizedSesr: calibration images must be Y-channel");
    }
    replay_forward(network, image, [&](std::size_t layer, const Tensor& x) {
      activation_scale_[layer] = std::max(activation_scale_[layer], max_abs(x) / 127.0F);
    });
  }
  for (float& s : activation_scale_) {
    if (s <= 0.0F) s = kDegenerateQuantScale;
  }
}

Tensor QuantizedSesr::apply_activation(std::size_t index, const Tensor& x) const {
  const Tensor& alpha = prelu_alpha_.at(index);
  Tensor out(x.shape());
  const float* pi = x.raw();
  float* po = out.raw();
  const std::int64_t n = x.numel();
  if (alpha.empty()) {
    for (std::int64_t i = 0; i < n; ++i) po[i] = pi[i] > 0.0F ? pi[i] : 0.0F;
    return out;
  }
  const std::int64_t c = x.shape().c();
  const float* pa = alpha.raw();
  const std::int64_t pixels = n / c;
  for (std::int64_t i = 0; i < pixels; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float v = pi[i * c + ch];
      po[i * c + ch] = v > 0.0F ? v : pa[ch] * v;
    }
  }
  return out;
}

Tensor QuantizedSesr::upscale(const Tensor& input) const {
  if (input.shape().c() != 1) {
    throw std::invalid_argument("QuantizedSesr::upscale expects a single (Y) channel");
  }
  auto qconv = [&](std::size_t layer, const Tensor& x) {
    return conv2d_int8(quantize_with_scale(x, activation_scale_[layer]), weights_[layer]);
  };
  Tensor feat = apply_activation(0, qconv(0, input));
  Tensor skip = feat;
  for (std::size_t i = 1; i + 1 < weights_.size(); ++i) {
    feat = apply_activation(i, qconv(i, feat));
  }
  add_inplace(feat, skip);
  Tensor out = qconv(weights_.size() - 1, feat);
  if (config_.input_residual) {
    const std::int64_t oc = config_.output_channels();
    float* po = out.raw();
    const float* pi = input.raw();
    const std::int64_t pixels = out.numel() / oc;
    for (std::int64_t p = 0; p < pixels; ++p) {
      for (std::int64_t c = 0; c < oc; ++c) po[p * oc + c] += pi[p];
    }
  }
  Tensor y = nn::depth_to_space(out, 2);
  if (config_.scale == 4) y = nn::depth_to_space(y, 2);
  return y;
}

std::int64_t QuantizedSesr::weight_bytes() const {
  std::int64_t total = 0;
  for (const QuantizedTensor& w : weights_) {
    total += static_cast<std::int64_t>(w.values.size());
  }
  return total;
}

}  // namespace sesr::core
