// The SESR network (paper Fig. 2(a) for training, Fig. 2(d) after collapse).
//
// Training graph, parameterized by {f, m, scale}:
//   1. 5x5 linear block, 1 -> f channels, then PReLU.
//   2. m 3x3 linear blocks f -> f, each with a collapsible short residual,
//      PReLU *after* the residual addition (so the residual folds, Fig. 2(c)).
//   3. Long "blue" residual: add the step-1 features to the step-2 output.
//   4. 5x5 linear block, f -> scale^2 channels (x4 uses 16 = 4^2 with a single
//      conv and TWO depth-to-space passes — the paper's MAC-saving trick).
//   5. Long "black" residual: the input Y-channel is added to every output
//      channel (equivalently: a nearest-neighbor upsample added after shuffle).
//   6. depth-to-space to (scale*H, scale*W, 1).
//
// The hardware-friendly variant of Section 5.5 replaces PReLU with ReLU and
// drops the black residual (~0.1 dB, buys DRAM traffic on the NPU).
//
// Y-channel convention: inputs are (N, H, W, 1) in [0, 1].
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/linear_block.hpp"
#include "nn/activations.hpp"
#include "train/model.hpp"

namespace sesr::core {

struct SesrConfig {
  std::int64_t f = 16;       // feature channels
  std::int64_t m = 5;        // number of 3x3 linear blocks
  std::int64_t scale = 2;    // 2 or 4
  std::int64_t expand = 256; // p inside linear blocks
  bool prelu = true;             // false = ReLU (hardware variant)
  bool input_residual = true;    // false drops the long black residual
  bool short_residuals = true;   // false = ExpandNet-style training (Sec 5.4)
  bool with_bias = false;        // paper parameter counts are bias-free
  BlockMode mode = BlockMode::kCollapsedForward;

  std::int64_t output_channels() const { return scale * scale; }
  std::string describe() const;  // e.g. "SESR-M5 (f=16, m=5, x2)"
};

// Named configurations from the paper's experiments (Section 5.1).
SesrConfig sesr_m3(std::int64_t scale = 2);
SesrConfig sesr_m5(std::int64_t scale = 2);
SesrConfig sesr_m7(std::int64_t scale = 2);
SesrConfig sesr_m11(std::int64_t scale = 2);
SesrConfig sesr_xl(std::int64_t scale = 2);
// Section 5.5 / 5.6 hardware variant: ReLU, no input residual.
SesrConfig hardware_variant(SesrConfig config);

// Default factory: the paper's collapsible linear blocks with `expand`
// intermediate channels in the given training mode.
core::BlockFactory linear_block_factory(std::int64_t expand, BlockMode mode, bool with_bias);

class SesrNetwork final : public train::Model {
 public:
  // Builds the network with the paper's linear blocks.
  SesrNetwork(const SesrConfig& config, Rng& rng);
  // Builds the same topology with custom blocks (RepVGG / plain-conv baselines).
  SesrNetwork(const SesrConfig& config, const BlockFactory& factory, Rng& rng,
              std::string variant_label = {});

  Tensor forward(const Tensor& input, bool training) override;
  void backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override {
    return variant_label_.empty() ? config_.describe() : variant_label_ + " " + config_.describe();
  }

  const SesrConfig& config() const { return config_; }

  CollapsibleBlock& first_block() { return *first_; }
  CollapsibleBlock& last_block() { return *last_; }
  std::vector<std::unique_ptr<CollapsibleBlock>>& middle_blocks() { return blocks_; }
  const CollapsibleBlock& first_block() const { return *first_; }
  const CollapsibleBlock& last_block() const { return *last_; }
  const std::vector<std::unique_ptr<CollapsibleBlock>>& middle_blocks() const { return blocks_; }
  // Activation i (0 follows the first block; 1 + i follows middle block i).
  const nn::Layer& activation(std::size_t index) const { return *activations_.at(index); }
  nn::Layer& activation(std::size_t index) { return *activations_.at(index); }

  // Collapsed parameter count — the paper's P; MACs = H * W * P.
  std::int64_t collapsed_parameter_count() const;

 private:
  Tensor apply_activation(std::size_t index, const Tensor& x, bool training);
  Tensor activation_backward(std::size_t index, const Tensor& grad);

  SesrConfig config_;
  std::string variant_label_;
  std::unique_ptr<CollapsibleBlock> first_;
  std::vector<std::unique_ptr<CollapsibleBlock>> blocks_;
  std::unique_ptr<CollapsibleBlock> last_;
  // activations_[0] follows the first block; activations_[1 + i] follows middle block i.
  std::vector<std::unique_ptr<nn::Layer>> activations_;

  // Forward caches for backward (training mode).
  Tensor cached_input_;
  Shape pre_shuffle_shape_{0, 0, 0, 0};
};

}  // namespace sesr::core
