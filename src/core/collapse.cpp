#include "core/collapse.hpp"

#include <stdexcept>

#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::core {

namespace {
void check_chain(std::span<const Tensor> weights) {
  if (weights.empty()) throw std::invalid_argument("collapse: empty weight sequence");
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (!weights[i].shape().valid()) {
      throw std::invalid_argument("collapse: invalid kernel shape at layer " + std::to_string(i));
    }
    if (i > 0 && weights[i].shape().dim(2) != weights[i - 1].shape().dim(3)) {
      throw std::invalid_argument("collapse: channel mismatch between layers " +
                                  std::to_string(i - 1) + " and " + std::to_string(i));
    }
  }
}

// Inverse of the {1, 2, 0, 3} transpose used when finalizing the kernel.
constexpr std::array<int, 4> kProbeToKernel{1, 2, 0, 3};
constexpr std::array<int, 4> kKernelToProbe{2, 0, 1, 3};
}  // namespace

std::int64_t composed_kernel_extent(std::span<const std::int64_t> extents) {
  if (extents.empty()) throw std::invalid_argument("composed_kernel_extent: empty sequence");
  std::int64_t total = 1 - static_cast<std::int64_t>(extents.size());
  for (std::int64_t k : extents) {
    if (k < 1) throw std::invalid_argument("composed_kernel_extent: kernel extent < 1");
    total += k;
  }
  return total;
}

Tensor collapse_conv_sequence(std::span<const Tensor> weights) {
  CollapseCache cache;
  return collapse_conv_sequence_cached(weights, cache);
}

Tensor collapse_conv_sequence_cached(std::span<const Tensor> weights, CollapseCache& cache) {
  check_chain(weights);
  std::vector<std::int64_t> khs;
  std::vector<std::int64_t> kws;
  khs.reserve(weights.size());
  kws.reserve(weights.size());
  for (const Tensor& w : weights) {
    khs.push_back(w.shape().dim(0));
    kws.push_back(w.shape().dim(1));
  }
  const std::int64_t kh = composed_kernel_extent(khs);
  const std::int64_t kw = composed_kernel_extent(kws);
  const std::int64_t in_c = weights.front().shape().dim(2);

  // Identity probe, padded so the VALID conv chain leaves exactly (kh, kw).
  Tensor probe(in_c, 1, 1, in_c);
  for (std::int64_t i = 0; i < in_c; ++i) probe(i, 0, 0, i) = 1.0F;
  probe = pad_spatial(probe, kh - 1, kh - 1, kw - 1, kw - 1);

  cache.inputs.clear();
  cache.inputs.reserve(weights.size());
  for (const Tensor& w : weights) {
    cache.inputs.push_back(probe);
    // The padded probe is overwhelmingly zero, which is exactly the case the
    // zero-skipping kernel exists for (dense activations use nn::conv2d).
    probe = nn::conv2d_zero_skip(probe, w, nn::Padding::kValid);
  }
  // probe is now (in_c, kh, kw, out_c); flip taps and move in_c to dim 2.
  return transpose(reverse_spatial(probe), kProbeToKernel);
}

void collapse_backward(const Tensor& grad_collapsed, std::span<const Tensor> weights,
                       const CollapseCache& cache, std::span<Tensor> grad_weights) {
  check_chain(weights);
  if (cache.inputs.size() != weights.size() || grad_weights.size() != weights.size()) {
    throw std::invalid_argument("collapse_backward: cache/grad sizes do not match weights");
  }
  // Undo the permutation steps (both are orthogonal, so adjoint = inverse).
  Tensor grad_probe = reverse_spatial(transpose(grad_collapsed, kKernelToProbe));
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (grad_weights[i].shape() != weights[i].shape()) {
      throw std::invalid_argument("collapse_backward: grad_weights shape mismatch at layer " +
                                  std::to_string(i));
    }
    nn::conv2d_backward_weight(cache.inputs[i], grad_probe, grad_weights[i], nn::Padding::kValid);
    if (i > 0) {
      grad_probe = nn::conv2d_backward_input(grad_probe, weights[i], cache.inputs[i].shape(),
                                             nn::Padding::kValid);
    }
  }
}

namespace {
// v' = W ** v: contract v over in-channels, summing the kernel spatially.
Tensor bias_through(const Tensor& w, const Tensor& v) {
  const std::int64_t in_c = w.shape().dim(2);
  const std::int64_t out_c = w.shape().dim(3);
  if (v.numel() != in_c) throw std::invalid_argument("bias_through: bias/in_c mismatch");
  Tensor out(1, 1, 1, out_c);
  for (std::int64_t o = 0; o < out_c; ++o) {
    double acc = 0.0;
    for (std::int64_t ky = 0; ky < w.shape().dim(0); ++ky) {
      for (std::int64_t kx = 0; kx < w.shape().dim(1); ++kx) {
        for (std::int64_t i = 0; i < in_c; ++i) {
          acc += static_cast<double>(w(ky, kx, i, o)) * v.raw()[i];
        }
      }
    }
    out.raw()[o] = static_cast<float>(acc);
  }
  return out;
}
}  // namespace

Tensor collapse_bias_sequence(std::span<const Tensor> weights, std::span<const Tensor> biases) {
  check_chain(weights);
  if (biases.size() != weights.size()) {
    throw std::invalid_argument("collapse_bias_sequence: biases/weights count mismatch");
  }
  Tensor beta = biases[0];
  for (std::size_t i = 1; i < weights.size(); ++i) {
    beta = add(biases[i], bias_through(weights[i], beta));
  }
  return beta;
}

void collapse_bias_backward(const Tensor& grad_collapsed_bias, std::span<const Tensor> weights,
                            std::span<const Tensor> biases, std::span<Tensor> grad_weights,
                            std::span<Tensor> grad_biases) {
  check_chain(weights);
  const std::size_t n = weights.size();
  if (biases.size() != n || grad_weights.size() != n || grad_biases.size() != n) {
    throw std::invalid_argument("collapse_bias_backward: span sizes do not match weights");
  }
  // Recompute the forward chain of effective biases beta_0..beta_{n-1}.
  std::vector<Tensor> beta(n);
  beta[0] = biases[0];
  for (std::size_t i = 1; i < n; ++i) beta[i] = add(biases[i], bias_through(weights[i], beta[i - 1]));

  // Reverse sweep: gbeta is d(loss)/d(beta_i).
  Tensor gbeta = grad_collapsed_bias;
  for (std::size_t i = n; i-- > 0;) {
    add_inplace(grad_biases[i], gbeta);
    if (i == 0) break;
    // beta_i = b_i + W_i ** beta_{i-1}:
    //   dW_i[ky,kx,ic,oc] += beta_{i-1}[ic] * gbeta[oc];  dbeta_{i-1}[ic] += sum W_i * gbeta.
    const Tensor& w = weights[i];
    Tensor gprev(1, 1, 1, w.shape().dim(2));
    for (std::int64_t ky = 0; ky < w.shape().dim(0); ++ky) {
      for (std::int64_t kx = 0; kx < w.shape().dim(1); ++kx) {
        for (std::int64_t ic = 0; ic < w.shape().dim(2); ++ic) {
          for (std::int64_t oc = 0; oc < w.shape().dim(3); ++oc) {
            grad_weights[i](ky, kx, ic, oc) += beta[i - 1].raw()[ic] * gbeta.raw()[oc];
            gprev.raw()[ic] += w(ky, kx, ic, oc) * gbeta.raw()[oc];
          }
        }
      }
    }
    gbeta = std::move(gprev);
  }
}

Tensor residual_kernel(std::int64_t kh, std::int64_t kw, std::int64_t channels) {
  return nn::identity_kernel(kh, kw, channels);
}

void add_residual_identity(Tensor& w) {
  const Shape& s = w.shape();
  if (s.dim(2) != s.dim(3)) {
    throw std::invalid_argument("add_residual_identity: in/out channels differ (" +
                                s.to_string() + ")");
  }
  add_inplace(w, residual_kernel(s.dim(0), s.dim(1), s.dim(2)));
}

}  // namespace sesr::core
