// Analytic MAC accounting for the two SESR training modes (paper Fig. 3).
//
// Expanded-space training runs every linear block as two wide convolutions on
// the feature maps; collapsed-forward training pays a tiny per-step collapse
// (convolutions over k x k probe tensors) plus one narrow convolution per
// block. For SESR-M5 with a batch of 32 64x64 crops these come to 41.77 GMACs
// vs 1.84 GMACs per forward pass — the paper's exact Fig. 3 numbers, which the
// unit tests assert.
#pragma once

#include <cstdint>

#include "core/sesr_network.hpp"

namespace sesr::core {

struct TrainingMacReport {
  std::int64_t expanded_forward_macs = 0;   // both convs per block, on feature maps
  std::int64_t collapse_macs = 0;           // Algorithm 1 probe convolutions
  std::int64_t collapsed_forward_macs = 0;  // narrow convs on feature maps
  // Total for the paper's "efficient implementation": collapse + narrow forward.
  std::int64_t efficient_total() const { return collapse_macs + collapsed_forward_macs; }
  double speedup() const {
    return static_cast<double>(expanded_forward_macs) / static_cast<double>(efficient_total());
  }
};

// Forward-pass MACs for one batch of (batch x crop x crop) LR inputs.
TrainingMacReport training_forward_macs(const SesrConfig& config, std::int64_t batch,
                                        std::int64_t crop_h, std::int64_t crop_w);

}  // namespace sesr::core
