#include "core/training_macs.hpp"

namespace sesr::core {

namespace {
// MACs of a conv producing `out_elems` output elements with a kh*kw*in_c kernel.
std::int64_t conv_macs(std::int64_t out_elems, std::int64_t kh, std::int64_t kw,
                       std::int64_t in_c) {
  return out_elems * kh * kw * in_c;
}

struct BlockDims {
  std::int64_t k;
  std::int64_t in_c;
  std::int64_t out_c;
};

// Per-pixel expanded cost of a linear block: k x k expansion + 1x1 projection.
std::int64_t expanded_per_pixel(const BlockDims& b, std::int64_t p) {
  return b.k * b.k * b.in_c * p + p * b.out_c;
}

// Algorithm 1 cost for one block: probe (in_c, 2k-1, 2k-1, in_c) -> VALID k x k
// conv -> (in_c, k, k, p) -> 1x1 -> (in_c, k, k, out_c).
std::int64_t collapse_cost(const BlockDims& b, std::int64_t p) {
  const std::int64_t probe_out = b.in_c * b.k * b.k;  // spatial x batch elements
  return conv_macs(probe_out * p, b.k, b.k, b.in_c) + conv_macs(probe_out * b.out_c, 1, 1, p);
}
}  // namespace

TrainingMacReport training_forward_macs(const SesrConfig& config, std::int64_t batch,
                                        std::int64_t crop_h, std::int64_t crop_w) {
  const std::int64_t pixels = batch * crop_h * crop_w;
  const std::int64_t p = config.expand;

  std::vector<BlockDims> blocks;
  blocks.push_back({5, 1, config.f});
  for (std::int64_t i = 0; i < config.m; ++i) blocks.push_back({3, config.f, config.f});
  blocks.push_back({5, config.f, config.output_channels()});

  TrainingMacReport r;
  for (const BlockDims& b : blocks) {
    r.expanded_forward_macs += pixels * expanded_per_pixel(b, p);
    r.collapse_macs += collapse_cost(b, p);
    r.collapsed_forward_macs += pixels * (b.k * b.k * b.in_c * b.out_c);
  }
  return r;
}

}  // namespace sesr::core
