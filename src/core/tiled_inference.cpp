#include "core/tiled_inference.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/tensor_ops.hpp"

namespace sesr::core {

std::int64_t receptive_field_radius(const SesrInference& network) {
  std::int64_t radius = 0;
  for (const CollapsedConv& conv : network.convolutions()) {
    const std::int64_t k = std::max(conv.weight.shape().dim(0), conv.weight.shape().dim(1));
    radius += (k - 1) / 2;
  }
  return radius;
}

Tensor upscale_tiled(const SesrInference& network, const Tensor& input,
                     const TilingOptions& options) {
  const Shape& s = input.shape();
  if (s.n() != 1 || s.c() != 1) {
    throw std::invalid_argument("upscale_tiled: expects a (1, H, W, 1) Y image");
  }
  if (options.tile_h < 1 || options.tile_w < 1) {
    throw std::invalid_argument("upscale_tiled: tile dims must be positive");
  }
  const std::int64_t halo =
      options.halo >= 0 ? options.halo : receptive_field_radius(network);
  const std::int64_t scale = network.config().scale;
  Tensor out(1, s.h() * scale, s.w() * scale, 1);

  for (std::int64_t y0 = 0; y0 < s.h(); y0 += options.tile_h) {
    const std::int64_t th = std::min(options.tile_h, s.h() - y0);
    for (std::int64_t x0 = 0; x0 < s.w(); x0 += options.tile_w) {
      const std::int64_t tw = std::min(options.tile_w, s.w() - x0);
      // Halo clamped at the image border: the tile then sees the same zero
      // padding the full-frame pass would apply there.
      const std::int64_t hy0 = std::max<std::int64_t>(0, y0 - halo);
      const std::int64_t hx0 = std::max<std::int64_t>(0, x0 - halo);
      const std::int64_t hy1 = std::min(s.h(), y0 + th + halo);
      const std::int64_t hx1 = std::min(s.w(), x0 + tw + halo);
      Tensor tile = crop_spatial(input, hy0, hx0, hy1 - hy0, hx1 - hx0);
      Tensor up = network.upscale(tile);
      Tensor roi = crop_spatial(up, (y0 - hy0) * scale, (x0 - hx0) * scale, th * scale,
                                tw * scale);
      // Paste the ROI into the output frame.
      for (std::int64_t y = 0; y < roi.shape().h(); ++y) {
        const float* src = roi.raw() + roi.shape().offset(0, y, 0, 0);
        float* dst = out.raw() + out.shape().offset(0, y0 * scale + y, x0 * scale, 0);
        std::copy(src, src + roi.shape().w(), dst);
      }
    }
  }
  return out;
}

double tiling_compute_overhead(std::int64_t image_h, std::int64_t image_w,
                               const TilingOptions& options, std::int64_t halo_used) {
  if (image_h < 1 || image_w < 1) throw std::invalid_argument("tiling_compute_overhead: bad image");
  double padded_pixels = 0.0;
  for (std::int64_t y0 = 0; y0 < image_h; y0 += options.tile_h) {
    const std::int64_t th = std::min(options.tile_h, image_h - y0);
    for (std::int64_t x0 = 0; x0 < image_w; x0 += options.tile_w) {
      const std::int64_t tw = std::min(options.tile_w, image_w - x0);
      const std::int64_t hy0 = std::max<std::int64_t>(0, y0 - halo_used);
      const std::int64_t hx0 = std::max<std::int64_t>(0, x0 - halo_used);
      const std::int64_t hy1 = std::min(image_h, y0 + th + halo_used);
      const std::int64_t hx1 = std::min(image_w, x0 + tw + halo_used);
      padded_pixels += static_cast<double>((hy1 - hy0) * (hx1 - hx0));
    }
  }
  return padded_pixels / (static_cast<double>(image_h) * static_cast<double>(image_w));
}

}  // namespace sesr::core
