#include "core/tiled_inference.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/tensor_ops.hpp"

namespace sesr::core {

std::int64_t receptive_field_radius(const SesrInference& network) {
  std::int64_t radius = 0;
  for (const CollapsedConv& conv : network.convolutions()) {
    const std::int64_t k = std::max(conv.weight.shape().dim(0), conv.weight.shape().dim(1));
    radius += (k - 1) / 2;
  }
  return radius;
}

std::vector<TileTask> tile_grid(std::int64_t image_h, std::int64_t image_w,
                                const TilingOptions& options, std::int64_t halo) {
  if (image_h < 1 || image_w < 1) {
    throw std::invalid_argument("tile_grid: image dims must be positive");
  }
  if (options.tile_h < 1 || options.tile_w < 1) {
    throw std::invalid_argument("tile_grid: tile dims must be positive");
  }
  if (halo < 0) throw std::invalid_argument("tile_grid: halo must be resolved (>= 0)");
  std::vector<TileTask> tasks;
  for (std::int64_t y0 = 0; y0 < image_h; y0 += options.tile_h) {
    const std::int64_t th = std::min(options.tile_h, image_h - y0);
    for (std::int64_t x0 = 0; x0 < image_w; x0 += options.tile_w) {
      const std::int64_t tw = std::min(options.tile_w, image_w - x0);
      // Halo clamped at the image border: the tile then sees the same zero
      // padding the full-frame pass would apply there.
      TileTask t;
      t.y0 = y0;
      t.x0 = x0;
      t.th = th;
      t.tw = tw;
      t.hy0 = std::max<std::int64_t>(0, y0 - halo);
      t.hx0 = std::max<std::int64_t>(0, x0 - halo);
      t.hh = std::min(image_h, y0 + th + halo) - t.hy0;
      t.hw = std::min(image_w, x0 + tw + halo) - t.hx0;
      tasks.push_back(t);
    }
  }
  return tasks;
}

std::vector<TileUnitRange> plan_tile_units(std::size_t task_count, std::int64_t tiles_per_unit) {
  const auto unit = static_cast<std::size_t>(std::max<std::int64_t>(1, tiles_per_unit));
  std::vector<TileUnitRange> units;
  units.reserve((task_count + unit - 1) / unit);
  for (std::size_t first = 0; first < task_count; first += unit) {
    units.push_back({first, std::min(unit, task_count - first)});
  }
  return units;
}

Tensor upscale_tile(const SesrInference& network, const Tensor& input, const TileTask& task) {
  const std::int64_t scale = network.config().scale;
  Tensor tile = crop_spatial(input, task.hy0, task.hx0, task.hh, task.hw);
  Tensor up = network.upscale(tile);
  return crop_spatial(up, (task.y0 - task.hy0) * scale, (task.x0 - task.hx0) * scale,
                      task.th * scale, task.tw * scale);
}

void paste_tile(Tensor& output, const Tensor& roi, const TileTask& task, std::int64_t scale) {
  for (std::int64_t y = 0; y < roi.shape().h(); ++y) {
    const float* src = roi.raw() + roi.shape().offset(0, y, 0, 0);
    float* dst =
        output.raw() + output.shape().offset(0, task.y0 * scale + y, task.x0 * scale, 0);
    std::copy(src, src + roi.shape().w(), dst);
  }
}

Tensor upscale_tiled(const SesrInference& network, const Tensor& input,
                     const TilingOptions& options) {
  const Shape& s = input.shape();
  if (s.n() != 1 || s.c() != 1) {
    throw std::invalid_argument("upscale_tiled: expects a (1, H, W, 1) Y image");
  }
  const std::int64_t halo =
      options.halo >= 0 ? options.halo : receptive_field_radius(network);
  const std::int64_t scale = network.config().scale;
  Tensor out(1, s.h() * scale, s.w() * scale, 1);
  for (const TileTask& task : tile_grid(s.h(), s.w(), options, halo)) {
    paste_tile(out, upscale_tile(network, input, task), task, scale);
  }
  return out;
}

double tiling_compute_overhead(std::int64_t image_h, std::int64_t image_w,
                               const TilingOptions& options, std::int64_t halo_used) {
  if (image_h < 1 || image_w < 1) throw std::invalid_argument("tiling_compute_overhead: bad image");
  double padded_pixels = 0.0;
  for (std::int64_t y0 = 0; y0 < image_h; y0 += options.tile_h) {
    const std::int64_t th = std::min(options.tile_h, image_h - y0);
    for (std::int64_t x0 = 0; x0 < image_w; x0 += options.tile_w) {
      const std::int64_t tw = std::min(options.tile_w, image_w - x0);
      const std::int64_t hy0 = std::max<std::int64_t>(0, y0 - halo_used);
      const std::int64_t hx0 = std::max<std::int64_t>(0, x0 - halo_used);
      const std::int64_t hy1 = std::min(image_h, y0 + th + halo_used);
      const std::int64_t hx1 = std::min(image_w, x0 + tw + halo_used);
      padded_pixels += static_cast<double>((hy1 - hy0) * (hx1 - hx0));
    }
  }
  return padded_pixels / (static_cast<double>(image_h) * static_cast<double>(image_w));
}

}  // namespace sesr::core
