#include "core/linear_block.hpp"

#include <array>
#include <stdexcept>

#include "nn/init.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::core {

namespace {
void validate(const LinearBlockConfig& c) {
  if (c.kh < 1 || c.kw < 1 || c.in_channels < 1 || c.expand_channels < 1 || c.out_channels < 1) {
    throw std::invalid_argument("LinearBlock: all sizes must be positive");
  }
  if (c.short_residual) {
    if (c.in_channels != c.out_channels) {
      throw std::invalid_argument("LinearBlock: short residual needs in_channels == out_channels");
    }
    if (c.kh % 2 == 0 || c.kw % 2 == 0) {
      throw std::invalid_argument(
          "LinearBlock: short residual folds only into odd kernels (Algorithm 2)");
    }
  }
}
}  // namespace

LinearBlock::LinearBlock(std::string name, const LinearBlockConfig& config, Rng& rng)
    : name_(std::move(name)),
      config_(config),
      expand_weight_(name_ + ".expand.weight",
                     (validate(config),
                      nn::glorot_uniform_kernel(config.kh, config.kw, config.in_channels,
                                           config.expand_channels, rng))),
      project_weight_(name_ + ".project.weight",
                      nn::glorot_uniform_kernel(1, 1, config.expand_channels, config.out_channels, rng)) {
  if (config_.with_bias) {
    expand_bias_.emplace(name_ + ".expand.bias", Tensor(1, 1, 1, config_.expand_channels));
    project_bias_.emplace(name_ + ".project.bias", Tensor(1, 1, 1, config_.out_channels));
  }
}

Tensor LinearBlock::collapse_weights_cached(CollapseCache& cache) const {
  const std::array<Tensor, 2> weights{expand_weight_.value, project_weight_.value};
  Tensor w = collapse_conv_sequence_cached(weights, cache);
  if (config_.short_residual) add_residual_identity(w);
  return w;
}

Tensor LinearBlock::collapsed_weight() const {
  CollapseCache cache;
  return collapse_weights_cached(cache);
}

std::optional<Tensor> LinearBlock::collapsed_bias() const {
  if (!config_.with_bias) return std::nullopt;
  const std::array<Tensor, 2> weights{expand_weight_.value, project_weight_.value};
  const std::array<Tensor, 2> biases{expand_bias_->value, project_bias_->value};
  return collapse_bias_sequence(weights, biases);
}

std::int64_t LinearBlock::collapsed_parameter_count() const {
  std::int64_t p = config_.kh * config_.kw * config_.in_channels * config_.out_channels;
  if (config_.with_bias) p += config_.out_channels;
  return p;
}

Tensor LinearBlock::forward(const Tensor& input, bool training) {
  if (input.shape().c() != config_.in_channels) {
    throw std::invalid_argument("LinearBlock " + name_ + ": input channels mismatch");
  }
  if (training) cached_input_ = input;
  if (config_.mode == BlockMode::kExpanded) {
    Tensor mid = expand_bias_
                     ? nn::conv2d_bias(input, expand_weight_.value, expand_bias_->value,
                                       nn::Padding::kSame)
                     : nn::conv2d(input, expand_weight_.value, nn::Padding::kSame);
    if (training) cached_mid_ = mid;
    Tensor out = project_bias_
                     ? nn::conv2d_bias(mid, project_weight_.value, project_bias_->value,
                                       nn::Padding::kSame)
                     : nn::conv2d(mid, project_weight_.value, nn::Padding::kSame);
    if (config_.short_residual) add_inplace(out, input);
    return out;
  }
  // Collapsed-forward: one narrow conv with the freshly collapsed kernel
  // (residual already folded into the kernel by Algorithm 2).
  collapse_cache_.inputs.clear();
  Tensor w = collapse_weights_cached(collapse_cache_);
  if (!training) collapse_cache_.inputs.clear();
  if (config_.with_bias) {
    const Tensor b = *collapsed_bias();
    return nn::conv2d_bias(input, w, b, nn::Padding::kSame);
  }
  return nn::conv2d(input, w, nn::Padding::kSame);
}

Tensor LinearBlock::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("LinearBlock::backward before forward");
  if (config_.mode == BlockMode::kExpanded) {
    // Through the 1x1 projection.
    nn::conv2d_backward_weight(cached_mid_, grad_output, project_weight_.grad, nn::Padding::kSame);
    if (project_bias_) {
      const std::int64_t out_c = config_.out_channels;
      const float* g = grad_output.raw();
      float* gb = project_bias_->grad.raw();
      const std::int64_t pixels = grad_output.numel() / out_c;
      for (std::int64_t i = 0; i < pixels; ++i) {
        for (std::int64_t c = 0; c < out_c; ++c) gb[c] += g[i * out_c + c];
      }
    }
    Tensor grad_mid = nn::conv2d_backward_input(grad_output, project_weight_.value,
                                                cached_mid_.shape(), nn::Padding::kSame);
    // Through the kh x kw expansion.
    nn::conv2d_backward_weight(cached_input_, grad_mid, expand_weight_.grad, nn::Padding::kSame);
    if (expand_bias_) {
      const std::int64_t p = config_.expand_channels;
      const float* g = grad_mid.raw();
      float* gb = expand_bias_->grad.raw();
      const std::int64_t pixels = grad_mid.numel() / p;
      for (std::int64_t i = 0; i < pixels; ++i) {
        for (std::int64_t c = 0; c < p; ++c) gb[c] += g[i * p + c];
      }
    }
    Tensor grad_input = nn::conv2d_backward_input(grad_mid, expand_weight_.value,
                                                  cached_input_.shape(), nn::Padding::kSame);
    if (config_.short_residual) add_inplace(grad_input, grad_output);
    return grad_input;
  }

  // Collapsed-forward mode: gradient w.r.t. the collapsed kernel, then chain
  // through Algorithm 1 into the expanded weights. The residual identity W_R
  // is a constant, so it contributes nothing to the weight gradient.
  if (collapse_cache_.inputs.empty()) {
    throw std::logic_error("LinearBlock::backward: missing collapse cache (forward not training)");
  }
  const std::array<Tensor, 2> weights{expand_weight_.value, project_weight_.value};
  Tensor w_collapsed = collapse_conv_sequence(weights);  // without residual: W_C only
  Tensor grad_wc(w_collapsed.shape());
  nn::conv2d_backward_weight(cached_input_, grad_output, grad_wc, nn::Padding::kSame);
  std::array<Tensor, 2> grad_weights{expand_weight_.grad, project_weight_.grad};
  collapse_backward(grad_wc, weights, collapse_cache_, grad_weights);
  expand_weight_.grad = std::move(grad_weights[0]);
  project_weight_.grad = std::move(grad_weights[1]);
  if (config_.with_bias) {
    const std::int64_t out_c = config_.out_channels;
    Tensor grad_bc(1, 1, 1, out_c);
    const float* g = grad_output.raw();
    const std::int64_t pixels = grad_output.numel() / out_c;
    for (std::int64_t i = 0; i < pixels; ++i) {
      for (std::int64_t c = 0; c < out_c; ++c) grad_bc.raw()[c] += g[i * out_c + c];
    }
    const std::array<Tensor, 2> biases{expand_bias_->value, project_bias_->value};
    std::array<Tensor, 2> gw{expand_weight_.grad, project_weight_.grad};
    std::array<Tensor, 2> gb{expand_bias_->grad, project_bias_->grad};
    collapse_bias_backward(grad_bc, weights, biases, gw, gb);
    expand_weight_.grad = std::move(gw[0]);
    project_weight_.grad = std::move(gw[1]);
    expand_bias_->grad = std::move(gb[0]);
    project_bias_->grad = std::move(gb[1]);
  }
  // d(input): residual contributes grad_output directly; the conv path uses
  // the full collapsed kernel (with residual) minus... the identity part is
  // exactly the residual path, so using the full kernel already accounts for it.
  if (config_.short_residual) add_residual_identity(w_collapsed);
  return nn::conv2d_backward_input(grad_output, w_collapsed, cached_input_.shape(),
                                   nn::Padding::kSame);
}

std::vector<nn::Parameter*> LinearBlock::parameters() {
  std::vector<nn::Parameter*> out{&expand_weight_, &project_weight_};
  if (expand_bias_) out.push_back(&*expand_bias_);
  if (project_bias_) out.push_back(&*project_bias_);
  return out;
}

}  // namespace sesr::core
