#include "core/sesr_network.hpp"

#include <stdexcept>

#include "nn/depth_to_space.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::core {

std::string SesrConfig::describe() const {
  std::string s = "SESR-M" + std::to_string(m);
  if (f != 16) s = (f == 32 && m == 11) ? "SESR-XL" : s + "-f" + std::to_string(f);
  s += " (f=" + std::to_string(f) + ", m=" + std::to_string(m) + ", x" + std::to_string(scale) + ")";
  if (!prelu || !input_residual) s += " [hw]";
  return s;
}

namespace {
SesrConfig base_config(std::int64_t f, std::int64_t m, std::int64_t scale) {
  SesrConfig c;
  c.f = f;
  c.m = m;
  c.scale = scale;
  return c;
}
}  // namespace

SesrConfig sesr_m3(std::int64_t scale) { return base_config(16, 3, scale); }
SesrConfig sesr_m5(std::int64_t scale) { return base_config(16, 5, scale); }
SesrConfig sesr_m7(std::int64_t scale) { return base_config(16, 7, scale); }
SesrConfig sesr_m11(std::int64_t scale) { return base_config(16, 11, scale); }
SesrConfig sesr_xl(std::int64_t scale) { return base_config(32, 11, scale); }

SesrConfig hardware_variant(SesrConfig config) {
  config.prelu = false;
  config.input_residual = false;
  return config;
}

BlockFactory linear_block_factory(std::int64_t expand, BlockMode mode, bool with_bias) {
  return [expand, mode, with_bias](const BlockSpec& spec, Rng& rng) {
    LinearBlockConfig c;
    c.kh = spec.kh;
    c.kw = spec.kw;
    c.in_channels = spec.in_channels;
    c.out_channels = spec.out_channels;
    c.expand_channels = expand;
    c.short_residual = spec.short_residual;
    c.with_bias = with_bias;
    c.mode = mode;
    return std::make_unique<LinearBlock>(spec.name, c, rng);
  };
}

SesrNetwork::SesrNetwork(const SesrConfig& config, Rng& rng)
    : SesrNetwork(config, linear_block_factory(config.expand, config.mode, config.with_bias),
                  rng) {}

SesrNetwork::SesrNetwork(const SesrConfig& config, const BlockFactory& factory, Rng& rng,
                         std::string variant_label)
    : config_(config), variant_label_(std::move(variant_label)) {
  if (config.scale != 2 && config.scale != 4) {
    throw std::invalid_argument("SesrNetwork: scale must be 2 or 4");
  }
  first_ = factory({"first", 5, 5, 1, config.f, /*short_residual=*/false}, rng);
  for (std::int64_t i = 0; i < config.m; ++i) {
    blocks_.push_back(factory(
        {"block" + std::to_string(i), 3, 3, config.f, config.f, config.short_residuals}, rng));
  }
  last_ = factory(
      {"last", 5, 5, config.f, config.output_channels(), /*short_residual=*/false}, rng);

  for (std::int64_t i = 0; i < config.m + 1; ++i) {
    const std::string act_name = "act" + std::to_string(i);
    if (config.prelu) {
      activations_.push_back(std::make_unique<nn::PRelu>(act_name, config.f));
    } else {
      activations_.push_back(std::make_unique<nn::Relu>(act_name));
    }
  }
}

Tensor SesrNetwork::apply_activation(std::size_t index, const Tensor& x, bool training) {
  return activations_.at(index)->forward(x, training);
}

Tensor SesrNetwork::activation_backward(std::size_t index, const Tensor& grad) {
  return activations_.at(index)->backward(grad);
}

Tensor SesrNetwork::forward(const Tensor& input, bool training) {
  if (input.shape().c() != 1) {
    throw std::invalid_argument("SesrNetwork: expects a single (Y) input channel");
  }
  if (training) cached_input_ = input;

  Tensor feat = apply_activation(0, first_->forward(input, training), training);
  Tensor skip = feat;  // long blue residual source
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    feat = apply_activation(i + 1, blocks_[i]->forward(feat, training), training);
  }
  add_inplace(feat, skip);

  Tensor out = last_->forward(feat, training);
  if (config_.input_residual) {
    // Broadcast-add the Y input to every scale^2 output channel.
    const std::int64_t oc = config_.output_channels();
    float* po = out.raw();
    const float* pi = input.raw();
    const std::int64_t pixels = out.numel() / oc;
    for (std::int64_t p = 0; p < pixels; ++p) {
      for (std::int64_t c = 0; c < oc; ++c) po[p * oc + c] += pi[p];
    }
  }
  pre_shuffle_shape_ = out.shape();
  Tensor y = nn::depth_to_space(out, 2);
  if (config_.scale == 4) y = nn::depth_to_space(y, 2);
  return y;
}

void SesrNetwork::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("SesrNetwork::backward before forward");
  Tensor grad = nn::space_to_depth(grad_output, 2);
  if (config_.scale == 4) grad = nn::space_to_depth(grad, 2);
  if (grad.shape() != pre_shuffle_shape_) {
    throw std::logic_error("SesrNetwork::backward: gradient shape mismatch");
  }
  // (Input-residual gradient flows to the data, not to any parameter; dropped.)
  Tensor grad_feat = last_->backward(grad);

  // Long blue residual: the skip source (activation 0 output) receives grad_feat
  // both through the block chain and directly.
  Tensor grad_chain = grad_feat;
  for (std::size_t i = blocks_.size(); i-- > 0;) {
    grad_chain = blocks_[i]->backward(activation_backward(i + 1, grad_chain));
  }
  Tensor grad_skip = add(grad_chain, grad_feat);
  Tensor grad_first_out = activation_backward(0, grad_skip);
  first_->backward(grad_first_out);
}

std::vector<nn::Parameter*> SesrNetwork::parameters() {
  std::vector<nn::Parameter*> out;
  for (nn::Parameter* p : first_->parameters()) out.push_back(p);
  for (auto& b : blocks_) {
    for (nn::Parameter* p : b->parameters()) out.push_back(p);
  }
  for (nn::Parameter* p : last_->parameters()) out.push_back(p);
  for (auto& a : activations_) {
    for (nn::Parameter* p : a->parameters()) out.push_back(p);
  }
  return out;
}

std::int64_t SesrNetwork::collapsed_parameter_count() const {
  std::int64_t p = first_->collapsed_parameter_count() + last_->collapsed_parameter_count();
  for (const auto& b : blocks_) p += b->collapsed_parameter_count();
  return p;
}

}  // namespace sesr::core
