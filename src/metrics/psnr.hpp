// PSNR on the Y channel with border shaving — the SISR evaluation convention
// used by the paper (shave `scale` pixels from each border before comparing).
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace sesr::metrics {

// PSNR in dB between two same-shaped tensors with values in [0, 1].
double psnr(const Tensor& a, const Tensor& b);

// Shave `border` pixels on every side of both images, then PSNR.
double psnr_shaved(const Tensor& a, const Tensor& b, std::int64_t border);

}  // namespace sesr::metrics
