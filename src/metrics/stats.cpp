#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sesr::metrics {

SampleStats compute_stats(const std::vector<double>& samples) {
  if (samples.empty()) throw std::invalid_argument("compute_stats: no samples");
  SampleStats s;
  s.count = static_cast<std::int64_t>(samples.size());
  s.min = samples.front();
  s.max = samples.front();
  double total = 0.0;
  for (const double v : samples) {
    total += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = total / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double sq = 0.0;
    for (const double v : samples) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(samples.size() - 1));
  }
  return s;
}

}  // namespace sesr::metrics
