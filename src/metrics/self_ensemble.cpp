#include "metrics/self_ensemble.hpp"

#include "data/augment.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::metrics {

Upscaler self_ensemble(Upscaler base) {
  return [base = std::move(base)](const Tensor& lr) {
    Tensor acc;
    for (int i = 0; i < 8; ++i) {
      Tensor sr = data::dihedral_inverse(base(data::dihedral_transform(lr, i)), i);
      if (i == 0) acc = std::move(sr);
      else add_inplace(acc, sr);
    }
    scale_inplace(acc, 1.0F / 8.0F);
    return acc;
  };
}

}  // namespace sesr::metrics
