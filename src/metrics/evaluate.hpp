// Dataset-level evaluation: run any upscaler over a benchmark set and report
// mean PSNR/SSIM with the standard border-shave — the loop behind every
// quality column reproduced from Tables 1 and 2.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "data/benchmark_sets.hpp"
#include "tensor/tensor.hpp"

namespace sesr::metrics {

// Maps a (1, h, w, 1) LR image to its (1, h*scale, w*scale, 1) upscale.
using Upscaler = std::function<Tensor(const Tensor& lr)>;

struct QualityScore {
  std::string dataset;
  double psnr = 0.0;
  double ssim = 0.0;
  std::int64_t images = 0;
};

// LR images are derived from the set's HR by bicubic downscale (the standard
// degradation protocol); PSNR/SSIM are shaved by `scale` pixels per side.
QualityScore evaluate_on_set(const Upscaler& upscaler, const data::BenchmarkSet& set,
                             std::int64_t scale);

std::vector<QualityScore> evaluate_on_sets(const Upscaler& upscaler,
                                           const std::vector<data::BenchmarkSet>& sets,
                                           std::int64_t scale);

}  // namespace sesr::metrics
