// Geometric self-ensemble (x8 TTA) — the standard SISR test-time trick:
// upscale all eight dihedral transforms of the input, undo each transform,
// and average. Typically worth ~0.1-0.2 dB at 8x the compute; wraps any
// Upscaler so it composes with collapsed, quantized or tiled inference.
#pragma once

#include "metrics/evaluate.hpp"

namespace sesr::metrics {

// Returns an upscaler that applies `base` under the 8 dihedral transforms and
// averages the aligned results.
Upscaler self_ensemble(Upscaler base);

}  // namespace sesr::metrics
