#include "metrics/evaluate.hpp"

#include <stdexcept>

#include "data/resize.hpp"
#include "metrics/psnr.hpp"
#include "metrics/ssim.hpp"

namespace sesr::metrics {

QualityScore evaluate_on_set(const Upscaler& upscaler, const data::BenchmarkSet& set,
                             std::int64_t scale) {
  if (set.hr.empty()) throw std::invalid_argument("evaluate_on_set: empty set " + set.name);
  QualityScore score;
  score.dataset = set.name;
  for (const Tensor& hr : set.hr) {
    const Tensor lr = data::downscale_bicubic(hr, scale);
    const Tensor sr = upscaler(lr);
    if (sr.shape() != hr.shape()) {
      throw std::runtime_error("evaluate_on_set: upscaler returned " + sr.shape().to_string() +
                               ", expected " + hr.shape().to_string());
    }
    score.psnr += psnr_shaved(sr, hr, scale);
    score.ssim += ssim_shaved(sr, hr, scale);
    ++score.images;
  }
  score.psnr /= static_cast<double>(score.images);
  score.ssim /= static_cast<double>(score.images);
  return score;
}

std::vector<QualityScore> evaluate_on_sets(const Upscaler& upscaler,
                                           const std::vector<data::BenchmarkSet>& sets,
                                           std::int64_t scale) {
  std::vector<QualityScore> out;
  out.reserve(sets.size());
  for (const data::BenchmarkSet& set : sets) out.push_back(evaluate_on_set(upscaler, set, scale));
  return out;
}

}  // namespace sesr::metrics
