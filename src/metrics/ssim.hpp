// SSIM (Wang et al. 2004) with the standard 11x11 Gaussian window,
// sigma = 1.5, K1 = 0.01, K2 = 0.03 — the configuration behind the SSIM
// columns of the paper's Tables 1 and 2.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace sesr::metrics {

// Mean SSIM over valid window positions; inputs in [0, 1], same shapes.
double ssim(const Tensor& a, const Tensor& b);

// Shave `border` pixels per side first (same convention as psnr_shaved).
double ssim_shaved(const Tensor& a, const Tensor& b, std::int64_t border);

}  // namespace sesr::metrics
