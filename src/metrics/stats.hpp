// Small-sample statistics for repeated-run studies (the paper's Section 5.5
// remark that per-model PSNR standard deviation is ~0.02 dB underpins its
// 0.1-0.2 dB comparisons; bench_seed_variance reproduces the measurement).
#pragma once

#include <cstdint>
#include <vector>

namespace sesr::metrics {

struct SampleStats {
  double mean = 0.0;
  double stddev = 0.0;  // sample (n-1) standard deviation
  double min = 0.0;
  double max = 0.0;
  std::int64_t count = 0;
};

SampleStats compute_stats(const std::vector<double>& samples);

}  // namespace sesr::metrics
