#include "metrics/ssim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "tensor/tensor_ops.hpp"

namespace sesr::metrics {

namespace {
constexpr std::int64_t kWindow = 11;
constexpr double kSigma = 1.5;
constexpr double kK1 = 0.01;
constexpr double kK2 = 0.03;

std::vector<double> gaussian_window() {
  std::vector<double> w(kWindow * kWindow);
  const std::int64_t r = kWindow / 2;
  double total = 0.0;
  for (std::int64_t y = -r; y <= r; ++y) {
    for (std::int64_t x = -r; x <= r; ++x) {
      const double v = std::exp(-(static_cast<double>(y * y + x * x)) / (2.0 * kSigma * kSigma));
      w[static_cast<std::size_t>((y + r) * kWindow + (x + r))] = v;
      total += v;
    }
  }
  for (double& v : w) v /= total;
  return w;
}
}  // namespace

double ssim(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) throw std::invalid_argument("ssim: shape mismatch");
  const Shape& s = a.shape();
  if (s.h() < kWindow || s.w() < kWindow) {
    throw std::invalid_argument("ssim: image smaller than the 11x11 window");
  }
  static const std::vector<double> window = gaussian_window();
  constexpr double c1 = (kK1 * 1.0) * (kK1 * 1.0);
  constexpr double c2 = (kK2 * 1.0) * (kK2 * 1.0);
  const std::int64_t r = kWindow / 2;

  double total = 0.0;
  std::int64_t count = 0;
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t c = 0; c < s.c(); ++c) {
      for (std::int64_t y = r; y < s.h() - r; ++y) {
        for (std::int64_t x = r; x < s.w() - r; ++x) {
          double mu_a = 0.0;
          double mu_b = 0.0;
          double aa = 0.0;
          double bb = 0.0;
          double ab = 0.0;
          for (std::int64_t dy = -r; dy <= r; ++dy) {
            for (std::int64_t dx = -r; dx <= r; ++dx) {
              const double w = window[static_cast<std::size_t>((dy + r) * kWindow + (dx + r))];
              const double va = a(n, y + dy, x + dx, c);
              const double vb = b(n, y + dy, x + dx, c);
              mu_a += w * va;
              mu_b += w * vb;
              aa += w * va * va;
              bb += w * vb * vb;
              ab += w * va * vb;
            }
          }
          // E[x^2] - E[x]^2 cancels catastrophically on flat windows: the
          // computed variance can come out (slightly) negative, shrinking the
          // denominator and pushing the per-window score above 1. Clamp the
          // variances at zero and bound the covariance by Cauchy-Schwarz
          // (|cov| <= sqrt(var_a * var_b), an identity in exact arithmetic) so
          // ssim(x, x) == 1 exactly and ssim <= 1 for every input.
          const double var_a = std::max(aa - mu_a * mu_a, 0.0);
          const double var_b = std::max(bb - mu_b * mu_b, 0.0);
          const double cov_limit = std::sqrt(var_a * var_b);
          const double cov = std::clamp(ab - mu_a * mu_b, -cov_limit, cov_limit);
          const double num = (2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2);
          const double den = (mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2);
          total += num / den;
          ++count;
        }
      }
    }
  }
  return total / static_cast<double>(count);
}

double ssim_shaved(const Tensor& a, const Tensor& b, std::int64_t border) {
  if (border < 0) throw std::invalid_argument("ssim_shaved: negative border");
  if (border == 0) return ssim(a, b);
  const Shape& s = a.shape();
  if (s.h() <= 2 * border || s.w() <= 2 * border) {
    throw std::invalid_argument("ssim_shaved: border larger than image");
  }
  return ssim(crop_spatial(a, border, border, s.h() - 2 * border, s.w() - 2 * border),
              crop_spatial(b, border, border, s.h() - 2 * border, s.w() - 2 * border));
}

}  // namespace sesr::metrics
