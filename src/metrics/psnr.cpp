#include "metrics/psnr.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/tensor_ops.hpp"

namespace sesr::metrics {

double psnr(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) throw std::invalid_argument("psnr: shape mismatch");
  if (a.numel() == 0) throw std::invalid_argument("psnr: empty tensors");
  double mse = 0.0;
  const float* pa = a.raw();
  const float* pb = b.raw();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pa[i]) - pb[i];
    mse += d * d;
  }
  mse /= static_cast<double>(n);
  if (mse <= 0.0) return 100.0;  // identical images: conventional cap
  return 10.0 * std::log10(1.0 / mse);
}

double psnr_shaved(const Tensor& a, const Tensor& b, std::int64_t border) {
  if (border < 0) throw std::invalid_argument("psnr_shaved: negative border");
  if (border == 0) return psnr(a, b);
  const Shape& s = a.shape();
  if (s.h() <= 2 * border || s.w() <= 2 * border) {
    throw std::invalid_argument("psnr_shaved: border larger than image");
  }
  return psnr(crop_spatial(a, border, border, s.h() - 2 * border, s.w() - 2 * border),
              crop_spatial(b, border, border, s.h() - 2 * border, s.w() - 2 * border));
}

}  // namespace sesr::metrics
