#include "nas/candidate_network.hpp"

#include <stdexcept>

#include "nn/depth_to_space.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::nas {

namespace {
core::LinearBlockConfig block_config(const KernelChoice& k, std::int64_t in_c, std::int64_t out_c,
                                     std::int64_t expand, bool want_residual) {
  core::LinearBlockConfig c;
  c.kh = k.kh;
  c.kw = k.kw;
  c.in_channels = in_c;
  c.out_channels = out_c;
  c.expand_channels = expand;
  c.short_residual = want_residual && k.odd() && in_c == out_c;
  c.mode = core::BlockMode::kCollapsedForward;
  return c;
}
}  // namespace

CandidateNetwork::CandidateNetwork(const Genome& genome, std::int64_t expand, Rng& rng)
    : genome_(genome) {
  if (genome.scale != 2 && genome.scale != 4) {
    throw std::invalid_argument("CandidateNetwork: scale must be 2 or 4");
  }
  first_ = std::make_unique<core::LinearBlock>(
      "first", block_config(genome.first, 1, genome.f, expand, /*want_residual=*/false), rng);
  for (std::size_t i = 0; i < genome.blocks.size(); ++i) {
    blocks_.push_back(std::make_unique<core::LinearBlock>(
        "block" + std::to_string(i),
        block_config(genome.blocks[i], genome.f, genome.f, expand, /*want_residual=*/true), rng));
  }
  last_ = std::make_unique<core::LinearBlock>(
      "last",
      block_config(genome.last, genome.f, genome.scale * genome.scale, expand,
                   /*want_residual=*/false),
      rng);
  for (std::size_t i = 0; i < genome.blocks.size() + 1; ++i) {
    activations_.push_back(std::make_unique<nn::PRelu>("act" + std::to_string(i), genome.f));
  }
}

Tensor CandidateNetwork::forward(const Tensor& input, bool training) {
  if (input.shape().c() != 1) {
    throw std::invalid_argument("CandidateNetwork: expects a single (Y) channel");
  }
  if (training) cached_input_ = input;
  Tensor feat = activations_[0]->forward(first_->forward(input, training), training);
  Tensor skip = feat;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    feat = activations_[i + 1]->forward(blocks_[i]->forward(feat, training), training);
  }
  add_inplace(feat, skip);
  Tensor out = last_->forward(feat, training);
  pre_shuffle_shape_ = out.shape();
  return nn::depth_to_space(out, genome_.scale);
}

void CandidateNetwork::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("CandidateNetwork::backward before forward");
  Tensor grad = nn::space_to_depth(grad_output, genome_.scale);
  if (grad.shape() != pre_shuffle_shape_) {
    throw std::logic_error("CandidateNetwork::backward: gradient shape mismatch");
  }
  Tensor grad_feat = last_->backward(grad);
  Tensor grad_chain = grad_feat;
  for (std::size_t i = blocks_.size(); i-- > 0;) {
    grad_chain = blocks_[i]->backward(activations_[i + 1]->backward(grad_chain));
  }
  Tensor grad_skip = add(grad_chain, grad_feat);
  first_->backward(activations_[0]->backward(grad_skip));
}

std::vector<nn::Parameter*> CandidateNetwork::parameters() {
  std::vector<nn::Parameter*> out;
  for (nn::Parameter* p : first_->parameters()) out.push_back(p);
  for (auto& b : blocks_) {
    for (nn::Parameter* p : b->parameters()) out.push_back(p);
  }
  for (nn::Parameter* p : last_->parameters()) out.push_back(p);
  for (auto& a : activations_) {
    for (nn::Parameter* p : a->parameters()) out.push_back(p);
  }
  return out;
}

std::int64_t CandidateNetwork::collapsed_parameter_count() const {
  std::int64_t p = first_->collapsed_parameter_count() + last_->collapsed_parameter_count();
  for (const auto& b : blocks_) p += b->collapsed_parameter_count();
  return p;
}

}  // namespace sesr::nas
