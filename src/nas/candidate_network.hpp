// Trainable network decoded from a NAS genome.
//
// Same topology contract as SesrNetwork (first block -> m blocks -> last block
// -> depth-to-space, long blue residual, PReLU after every block) but with
// per-block kernel shapes from the genome. Blocks with odd x odd kernels carry
// collapsible short residuals; even/asymmetric blocks run residual-free
// (Algorithm 2's center-tap constraint). Used as the accuracy oracle during
// evolutionary search and to verify the found architectures actually train.
#pragma once

#include <memory>
#include <vector>

#include "core/linear_block.hpp"
#include "nas/search_space.hpp"
#include "nn/activations.hpp"
#include "train/model.hpp"

namespace sesr::nas {

class CandidateNetwork final : public train::Model {
 public:
  // `expand` = p inside the linear blocks (smaller than 256 keeps proxy
  // training cheap during search).
  CandidateNetwork(const Genome& genome, std::int64_t expand, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  void backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return "NAS " + genome_.describe(); }

  const Genome& genome() const { return genome_; }
  std::int64_t collapsed_parameter_count() const;

 private:
  Genome genome_;
  std::unique_ptr<core::LinearBlock> first_;
  std::vector<std::unique_ptr<core::LinearBlock>> blocks_;
  std::unique_ptr<core::LinearBlock> last_;
  std::vector<std::unique_ptr<nn::PRelu>> activations_;
  Tensor cached_input_;
  Shape pre_shuffle_shape_{0, 0, 0, 0};
};

}  // namespace sesr::nas
