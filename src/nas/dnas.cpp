#include "nas/dnas.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/depth_to_space.hpp"
#include "tensor/tensor_ops.hpp"
#include "train/loss.hpp"
#include "train/optimizer.hpp"

namespace sesr::nas {

namespace {
std::vector<double> softmax(const Tensor& logits) {
  std::vector<double> p(static_cast<std::size_t>(logits.numel()));
  double max_logit = logits.raw()[0];
  for (std::int64_t i = 1; i < logits.numel(); ++i) {
    max_logit = std::max(max_logit, static_cast<double>(logits.raw()[i]));
  }
  double total = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = std::exp(static_cast<double>(logits.raw()[i]) - max_logit);
    total += p[i];
  }
  for (double& v : p) v /= total;
  return p;
}

// d(loss)/d(theta) from d(loss)/d(p) via the softmax Jacobian.
void softmax_backward(const std::vector<double>& p, const std::vector<double>& dp,
                      Tensor& grad_theta) {
  double inner = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) inner += p[i] * dp[i];
  for (std::size_t i = 0; i < p.size(); ++i) {
    grad_theta.raw()[i] += static_cast<float>(p[i] * (dp[i] - inner));
  }
}

// Latency of one f -> f conv with kernel k at the given geometry.
double branch_latency(const KernelChoice& k, std::int64_t f, std::int64_t h, std::int64_t w,
                      const hw::NpuConfig& npu) {
  hw::NetworkIr ir;
  ir.name = "branch";
  ir.input_h = h;
  ir.input_w = w;
  hw::LayerDesc l;
  l.kind = hw::OpKind::kConv;
  l.label = "conv";
  l.in_h = h;
  l.in_w = w;
  l.in_c = f;
  l.out_c = f;
  l.kh = k.kh;
  l.kw = k.kw;
  ir.layers.push_back(l);
  return hw::simulate(ir, npu).runtime_ms;
}

core::LinearBlockConfig branch_config(const KernelChoice& k, std::int64_t f, std::int64_t expand) {
  core::LinearBlockConfig c;
  c.kh = k.kh;
  c.kw = k.kw;
  c.in_channels = c.out_channels = f;
  c.expand_channels = expand;
  c.short_residual = k.odd();  // collapsible residual where Algorithm 2 allows
  c.mode = core::BlockMode::kCollapsedForward;
  return c;
}
}  // namespace

DnasSupernet::DnasSupernet(const DnasOptions& options, const hw::NpuConfig& npu, Rng& rng)
    : options_(options), kernel_menu_(block_kernel_menu()) {
  if (options.slots < 1) throw std::invalid_argument("DnasSupernet: slots must be >= 1");
  for (const KernelChoice& k : kernel_menu_) {
    branch_latency_ms_.push_back(
        branch_latency(k, options.f, options.latency_h, options.latency_w, npu));
  }
  branch_latency_ms_.push_back(0.0);  // skip branch costs nothing

  core::LinearBlockConfig first = branch_config({5, 5}, options.f, options.expand);
  first.in_channels = 1;
  first.short_residual = false;
  first_ = std::make_unique<core::LinearBlock>("first", first, rng);
  first_act_ = std::make_unique<nn::PRelu>("first.act", options.f);

  for (std::int64_t s = 0; s < options.slots; ++s) {
    auto slot = std::make_unique<Slot>("slot" + std::to_string(s) + ".theta",
                                       static_cast<std::int64_t>(branch_count()));
    for (std::size_t k = 0; k < kernel_menu_.size(); ++k) {
      slot->branches.push_back(std::make_unique<core::LinearBlock>(
          "slot" + std::to_string(s) + ".k" + std::to_string(k),
          branch_config(kernel_menu_[k], options.f, options.expand), rng));
    }
    slot->act = std::make_unique<nn::PRelu>("slot" + std::to_string(s) + ".act", options.f);
    slots_.push_back(std::move(slot));
  }

  core::LinearBlockConfig last = branch_config({5, 5}, options.f, options.expand);
  last.out_channels = options.scale * options.scale;
  last.short_residual = false;
  last_ = std::make_unique<core::LinearBlock>("last", last, rng);
}

Tensor DnasSupernet::forward(const Tensor& input, bool training) {
  if (input.shape().c() != 1) throw std::invalid_argument("DnasSupernet: expects Y input");
  if (training) cached_input_ = input;
  Tensor feat = first_act_->forward(first_->forward(input, training), training);
  Tensor skip = feat;
  for (auto& slot : slots_) {
    slot->probs = softmax(slot->theta.value);
    if (training) {
      slot->input = feat;
      slot->branch_outputs.clear();
    }
    Tensor mixed = scale(feat, static_cast<float>(slot->probs.back()));  // skip branch
    for (std::size_t k = 0; k < slot->branches.size(); ++k) {
      Tensor out = slot->branches[k]->forward(feat, training);
      axpy_inplace(mixed, out, static_cast<float>(slot->probs[k]));
      if (training) slot->branch_outputs.push_back(std::move(out));
    }
    feat = slot->act->forward(mixed, training);
  }
  add_inplace(feat, skip);
  Tensor out = last_->forward(feat, training);
  // Input residual (as in SESR).
  const std::int64_t oc = options_.scale * options_.scale;
  float* po = out.raw();
  const float* pi = input.raw();
  const std::int64_t pixels = out.numel() / oc;
  for (std::int64_t p = 0; p < pixels; ++p) {
    for (std::int64_t c = 0; c < oc; ++c) po[p * oc + c] += pi[p];
  }
  pre_shuffle_ = out.shape();
  Tensor y = nn::depth_to_space(out, 2);
  if (options_.scale == 4) y = nn::depth_to_space(y, 2);
  return y;
}

void DnasSupernet::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("DnasSupernet::backward before forward");
  Tensor g = nn::space_to_depth(grad_output, 2);
  if (options_.scale == 4) g = nn::space_to_depth(g, 2);
  if (g.shape() != pre_shuffle_) throw std::logic_error("DnasSupernet: grad shape mismatch");
  Tensor g_feat = last_->backward(g);
  Tensor g_chain = g_feat;  // flows through the slot chain
  for (std::size_t s = slots_.size(); s-- > 0;) {
    Slot& slot = *slots_[s];
    Tensor g_mixed = slot.act->backward(g_chain);
    // d(loss)/d(p_k) = <g_mixed, branch_k(x)>; skip branch uses x itself.
    std::vector<double> dp(branch_count(), 0.0);
    for (std::size_t k = 0; k < slot.branches.size(); ++k) {
      const float* a = g_mixed.raw();
      const float* b = slot.branch_outputs[k].raw();
      double acc = 0.0;
      for (std::int64_t i = 0; i < g_mixed.numel(); ++i) acc += static_cast<double>(a[i]) * b[i];
      dp[k] = acc;
    }
    {
      const float* a = g_mixed.raw();
      const float* b = slot.input.raw();
      double acc = 0.0;
      for (std::int64_t i = 0; i < g_mixed.numel(); ++i) acc += static_cast<double>(a[i]) * b[i];
      dp.back() = acc;
    }
    softmax_backward(slot.probs, dp, slot.theta.grad);
    // Input gradient: skip path + each branch scaled by its probability.
    Tensor g_in = scale(g_mixed, static_cast<float>(slot.probs.back()));
    for (std::size_t k = 0; k < slot.branches.size(); ++k) {
      Tensor gk = slot.branches[k]->backward(scale(g_mixed, static_cast<float>(slot.probs[k])));
      add_inplace(g_in, gk);
    }
    g_chain = std::move(g_in);
  }
  Tensor g_skip = add(g_chain, g_feat);  // long blue residual
  first_->backward(first_act_->backward(g_skip));
}

std::vector<nn::Parameter*> DnasSupernet::parameters() {
  std::vector<nn::Parameter*> out;
  for (nn::Parameter* p : first_->parameters()) out.push_back(p);
  for (nn::Parameter* p : first_act_->parameters()) out.push_back(p);
  for (auto& slot : slots_) {
    for (auto& b : slot->branches) {
      for (nn::Parameter* p : b->parameters()) out.push_back(p);
    }
    for (nn::Parameter* p : slot->act->parameters()) out.push_back(p);
  }
  for (nn::Parameter* p : last_->parameters()) out.push_back(p);
  return out;
}

std::vector<nn::Parameter*> DnasSupernet::architecture_parameters() {
  std::vector<nn::Parameter*> out;
  for (auto& slot : slots_) out.push_back(&slot->theta);
  return out;
}

std::vector<double> DnasSupernet::slot_probabilities(std::size_t slot) const {
  return softmax(slots_.at(slot)->theta.value);
}

double DnasSupernet::expected_latency_ms() const {
  double total = 0.0;
  for (const auto& slot : slots_) {
    const auto p = softmax(slot->theta.value);
    for (std::size_t k = 0; k < p.size(); ++k) total += p[k] * branch_latency_ms_[k];
  }
  return total;
}

void DnasSupernet::accumulate_latency_gradients(double lambda) {
  for (auto& slot : slots_) {
    const auto p = softmax(slot->theta.value);
    std::vector<double> dp(p.size());
    for (std::size_t k = 0; k < p.size(); ++k) dp[k] = lambda * branch_latency_ms_[k];
    softmax_backward(p, dp, slot->theta.grad);
  }
}

Genome DnasSupernet::decode() const {
  Genome g;
  g.f = options_.f;
  g.scale = options_.scale;
  g.first = {5, 5};
  g.last = {5, 5};
  for (const auto& slot : slots_) {
    const auto p = softmax(slot->theta.value);
    std::size_t best = 0;
    for (std::size_t k = 1; k < p.size(); ++k) {
      if (p[k] > p[best]) best = k;
    }
    if (best == p.size() - 1) continue;  // skip branch: slot removed
    g.blocks.push_back(kernel_menu_[best]);
  }
  if (g.blocks.empty()) g.blocks.push_back({3, 3});  // degenerate decode guard
  return g;
}

DnasResult dnas_search(const data::SrDataset& dataset, const hw::NpuConfig& npu,
                       const DnasOptions& options) {
  Rng rng(options.seed);
  DnasSupernet supernet(options, npu, rng);
  train::Adam weight_opt(options.lr);
  auto weights = supernet.parameters();
  auto thetas = supernet.architecture_parameters();
  Rng batch_rng = rng.fork();

  double final_loss = 0.0;
  for (std::int64_t step = 0; step < options.steps; ++step) {
    auto [lr_img, hr_img] = dataset.sample_batch(options.batch, options.crop, batch_rng);
    nn::zero_gradients(weights);
    nn::zero_gradients(thetas);
    Tensor y = supernet.forward(lr_img, true);
    const train::LossResult loss = train::l1_loss(y, hr_img);
    supernet.backward(loss.grad);
    if (options.latency_weight > 0.0) {
      supernet.accumulate_latency_gradients(options.latency_weight);
    }
    weight_opt.step(weights);
    for (nn::Parameter* theta : thetas) {
      axpy_inplace(theta->value, theta->grad, -options.theta_lr);
    }
    final_loss = loss.value;
  }

  DnasResult result;
  result.genome = supernet.decode();
  result.supernet_final_loss = final_loss;
  result.expected_latency_ms = supernet.expected_latency_ms();
  result.decoded_latency_ms =
      hw::simulate(genome_ir(result.genome, options.latency_h, options.latency_w), npu)
          .runtime_ms;
  return result;
}

}  // namespace sesr::nas
