// SESR NAS search space (paper Section 3.4 / Fig. 9).
//
// Each candidate is a SESR-shaped chain of collapsible linear blocks whose
// per-block kernels may be small, even-sized or asymmetric (2x2, 2x1, 2x3,
// 3x2, ...), plus a channel width and depth. Short residuals fold only into
// odd x odd kernels (Algorithm 2 needs a center tap), so even/asymmetric
// blocks run residual-free — the same constraint the paper's DNAS respects.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/network_ir.hpp"
#include "tensor/rng.hpp"

namespace sesr::nas {

struct KernelChoice {
  std::int64_t kh = 3;
  std::int64_t kw = 3;
  bool odd() const { return kh % 2 == 1 && kw % 2 == 1; }
  friend bool operator==(const KernelChoice&, const KernelChoice&) = default;
};

// The kernel menu for intermediate blocks (the paper's Fig. 9 alphabet).
const std::vector<KernelChoice>& block_kernel_menu();
// First/last block menu (3x3 or 5x5, as found by the paper's NAS).
const std::vector<KernelChoice>& edge_kernel_menu();
// Channel width menu.
const std::vector<std::int64_t>& channel_menu();

struct Genome {
  std::int64_t f = 16;
  std::int64_t scale = 2;
  KernelChoice first{5, 5};
  KernelChoice last{5, 5};
  std::vector<KernelChoice> blocks;  // depth = blocks.size()

  std::string describe() const;  // e.g. "f=16 [5x5 | 3x3 2x2 3x2 | 5x5]"
  // Collapsed parameter count of the decoded network.
  std::int64_t parameter_count() const;
};

// A random genome with depth in [min_depth, max_depth].
Genome random_genome(std::int64_t scale, std::int64_t min_depth, std::int64_t max_depth, Rng& rng);

// Point mutation: perturb one of {block kernel, depth, width, edge kernels}.
Genome mutate(const Genome& genome, Rng& rng, std::int64_t min_depth, std::int64_t max_depth);

// One-point crossover over the block list; width/edges from either parent.
Genome crossover(const Genome& a, const Genome& b, Rng& rng);

// Hardware IR of the *collapsed* candidate for latency estimation.
hw::NetworkIr genome_ir(const Genome& genome, std::int64_t in_h, std::int64_t in_w);

}  // namespace sesr::nas
