#include "nas/search_space.hpp"

#include <stdexcept>

namespace sesr::nas {

const std::vector<KernelChoice>& block_kernel_menu() {
  static const std::vector<KernelChoice> menu{
      {1, 1}, {2, 1}, {1, 2}, {2, 2}, {2, 3}, {3, 2}, {3, 3},
  };
  return menu;
}

const std::vector<KernelChoice>& edge_kernel_menu() {
  static const std::vector<KernelChoice> menu{{3, 3}, {5, 5}};
  return menu;
}

const std::vector<std::int64_t>& channel_menu() {
  static const std::vector<std::int64_t> menu{8, 12, 16, 24, 32};
  return menu;
}

std::string Genome::describe() const {
  std::string s = "f=" + std::to_string(f) + " [" + std::to_string(first.kh) + "x" +
                  std::to_string(first.kw) + " |";
  for (const KernelChoice& k : blocks) {
    s += " " + std::to_string(k.kh) + "x" + std::to_string(k.kw);
  }
  s += " | " + std::to_string(last.kh) + "x" + std::to_string(last.kw) + "]";
  return s;
}

std::int64_t Genome::parameter_count() const {
  std::int64_t p = first.kh * first.kw * 1 * f;
  for (const KernelChoice& k : blocks) p += k.kh * k.kw * f * f;
  p += last.kh * last.kw * f * scale * scale;
  return p;
}

namespace {
template <typename T>
const T& pick(const std::vector<T>& menu, Rng& rng) {
  return menu[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(menu.size()) - 1))];
}
}  // namespace

Genome random_genome(std::int64_t scale, std::int64_t min_depth, std::int64_t max_depth,
                     Rng& rng) {
  if (min_depth < 1 || max_depth < min_depth) {
    throw std::invalid_argument("random_genome: bad depth range");
  }
  Genome g;
  g.scale = scale;
  g.f = pick(channel_menu(), rng);
  g.first = pick(edge_kernel_menu(), rng);
  g.last = pick(edge_kernel_menu(), rng);
  const std::int64_t depth = rng.uniform_int(min_depth, max_depth);
  for (std::int64_t i = 0; i < depth; ++i) g.blocks.push_back(pick(block_kernel_menu(), rng));
  return g;
}

Genome mutate(const Genome& genome, Rng& rng, std::int64_t min_depth, std::int64_t max_depth) {
  Genome g = genome;
  switch (rng.uniform_int(0, 4)) {
    case 0: {  // re-roll one block kernel
      if (!g.blocks.empty()) {
        const auto i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(g.blocks.size()) - 1));
        g.blocks[i] = pick(block_kernel_menu(), rng);
      }
      break;
    }
    case 1: {  // grow
      if (static_cast<std::int64_t>(g.blocks.size()) < max_depth) {
        g.blocks.insert(g.blocks.begin() + rng.uniform_int(
                                               0, static_cast<std::int64_t>(g.blocks.size())),
                        pick(block_kernel_menu(), rng));
      }
      break;
    }
    case 2: {  // shrink
      if (static_cast<std::int64_t>(g.blocks.size()) > min_depth) {
        g.blocks.erase(g.blocks.begin() +
                       rng.uniform_int(0, static_cast<std::int64_t>(g.blocks.size()) - 1));
      }
      break;
    }
    case 3:
      g.f = pick(channel_menu(), rng);
      break;
    default:
      if (rng.bernoulli(0.5)) g.first = pick(edge_kernel_menu(), rng);
      else g.last = pick(edge_kernel_menu(), rng);
      break;
  }
  return g;
}

Genome crossover(const Genome& a, const Genome& b, Rng& rng) {
  const bool base_is_a = rng.bernoulli(0.5);
  Genome g = base_is_a ? a : b;
  const Genome& other = base_is_a ? b : a;
  // Splice block tails.
  if (!g.blocks.empty() && !other.blocks.empty()) {
    const std::int64_t cut_a = rng.uniform_int(0, static_cast<std::int64_t>(g.blocks.size()));
    const std::int64_t cut_b = rng.uniform_int(0, static_cast<std::int64_t>(other.blocks.size()));
    std::vector<KernelChoice> blocks(g.blocks.begin(), g.blocks.begin() + cut_a);
    blocks.insert(blocks.end(), other.blocks.begin() + cut_b, other.blocks.end());
    if (!blocks.empty()) g.blocks = std::move(blocks);
  }
  return g;
}

hw::NetworkIr genome_ir(const Genome& genome, std::int64_t in_h, std::int64_t in_w) {
  hw::NetworkIr ir;
  ir.name = "NAS " + genome.describe();
  ir.input_h = in_h;
  ir.input_w = in_w;
  auto conv = [&](const std::string& label, std::int64_t in_c, std::int64_t out_c,
                  const KernelChoice& k) {
    hw::LayerDesc l;
    l.kind = hw::OpKind::kConv;
    l.label = label;
    l.in_h = in_h;
    l.in_w = in_w;
    l.in_c = in_c;
    l.out_c = out_c;
    l.kh = k.kh;
    l.kw = k.kw;
    ir.layers.push_back(l);
  };
  auto act = [&](const std::string& label, std::int64_t c) {
    hw::LayerDesc l;
    l.kind = hw::OpKind::kActivation;
    l.label = label;
    l.in_h = in_h;
    l.in_w = in_w;
    l.in_c = c;
    l.out_c = c;
    ir.layers.push_back(l);
  };
  conv("first", 1, genome.f, genome.first);
  act("act0", genome.f);
  for (std::size_t i = 0; i < genome.blocks.size(); ++i) {
    conv("block" + std::to_string(i), genome.f, genome.f, genome.blocks[i]);
    act("act" + std::to_string(i + 1), genome.f);
  }
  conv("last", genome.f, genome.scale * genome.scale, genome.last);
  hw::LayerDesc shuffle;
  shuffle.kind = hw::OpKind::kDepthToSpace;
  shuffle.label = "shuffle";
  shuffle.in_h = in_h;
  shuffle.in_w = in_w;
  shuffle.in_c = genome.scale * genome.scale;
  shuffle.out_c = 1;
  shuffle.stride = genome.scale;
  ir.layers.push_back(shuffle);
  return ir;
}

}  // namespace sesr::nas
