// Latency-constrained evolutionary search over the SESR block space — the
// reproduction of the paper's "preliminary proof-of-concept" NAS (Section 3.4
// and 5.6). The paper uses DNAS; the claim we reproduce is that searching the
// same space (even/asymmetric kernels, widths, depths) under an NPU latency
// budget yields nets faster than hand-designed SESR at matched quality.
// See DESIGN.md's substitution table.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "hw/npu_simulator.hpp"
#include "nas/search_space.hpp"

namespace sesr::nas {

struct SearchOptions {
  std::int64_t population = 8;
  std::int64_t generations = 4;
  std::int64_t keep_top = 3;  // elitism
  // Latency oracle geometry (paper evaluates 200x200 -> 400x400).
  std::int64_t latency_h = 200;
  std::int64_t latency_w = 200;
  double latency_limit_ms = 0.0;  // required (> 0)
  // Accuracy oracle (proxy training).
  std::int64_t proxy_steps = 40;
  std::int64_t proxy_expand = 64;  // p inside candidate linear blocks
  std::int64_t proxy_batch = 4;
  std::int64_t proxy_crop = 16;
  float proxy_lr = 2e-3F;
  std::int64_t eval_images = 2;  // PSNR averaged over this many full val images
  std::int64_t min_depth = 2;
  std::int64_t max_depth = 10;
  std::uint64_t seed = 0x9a5'0001;
};

struct Evaluated {
  Genome genome;
  double psnr = 0.0;
  double latency_ms = 0.0;
  bool feasible = false;
  double fitness = 0.0;
};

struct SearchResult {
  Evaluated best;                       // best feasible (or least-infeasible)
  std::vector<Evaluated> final_population;
  std::vector<double> best_fitness_per_generation;
};

// Train/val both come from `dataset` (train = random patches, val = the first
// `eval_images` full images).
SearchResult evolutionary_search(const data::SrDataset& dataset, const hw::NpuConfig& npu,
                                 const SearchOptions& options);

// The two oracles, exposed for testing and for pricing reference designs.
double candidate_latency_ms(const Genome& genome, const hw::NpuConfig& npu, std::int64_t h,
                            std::int64_t w);
double candidate_proxy_psnr(const Genome& genome, const data::SrDataset& dataset,
                            const SearchOptions& options, Rng& rng);

}  // namespace sesr::nas
