// Differentiable NAS over the SESR block space — the paper's actual search
// method (Section 3.4: "we employ a generic differentiable NAS (DNAS) with
// appropriate constraints", with a latency term following "standard
// hardware-aware DNAS practices").
//
// Supernet: the SESR topology with `slots` intermediate positions. Every slot
// holds one collapsible linear block per kernel choice (1x1 ... 3x3, even and
// asymmetric) PLUS an identity branch ("skip") that lets the search shorten
// the network — the paper's "skip connection branch ... added in parallel to
// each collapsible linear block ... to create shortcuts for choosing the
// number of layers". The slot output is the softmax-weighted sum of branches;
// architecture parameters theta train jointly with the weights against
//   L = L1(SR, HR) + lambda * E[latency],
// where E[latency] = sum_slots sum_k softmax(theta)_k * latency_k with
// per-branch latencies priced by the NPU simulator — so the constraint is
// differentiable in theta. Decoding takes the argmax branch per slot (skip
// branches are dropped), yielding a nas::Genome compatible with the rest of
// the NAS stack. Width (f) is not relaxed (channel masking is out of scope;
// the evolutionary searcher covers it) — documented in DESIGN.md.
#pragma once

#include <memory>
#include <vector>

#include "core/linear_block.hpp"
#include "data/dataset.hpp"
#include "hw/npu_simulator.hpp"
#include "nas/search_space.hpp"
#include "nn/activations.hpp"
#include "train/model.hpp"

namespace sesr::nas {

struct DnasOptions {
  std::int64_t slots = 5;     // intermediate block positions
  std::int64_t f = 16;        // fixed channel width
  std::int64_t expand = 32;   // p inside supernet linear blocks
  std::int64_t scale = 2;
  std::int64_t steps = 120;
  std::int64_t batch = 2;
  std::int64_t crop = 12;
  float lr = 2e-3F;           // weight learning rate (Adam)
  float theta_lr = 5e-2F;     // architecture learning rate (plain SGD)
  double latency_weight = 0.0;      // lambda; 0 = accuracy-only search
  std::int64_t latency_h = 200;     // geometry for the per-branch latency table
  std::int64_t latency_w = 200;
  std::uint64_t seed = 0xD9A5'0001;
};

class DnasSupernet final : public train::Model {
 public:
  DnasSupernet(const DnasOptions& options, const hw::NpuConfig& npu, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  void backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;  // weights only
  std::string name() const override { return "DNAS supernet"; }

  // Architecture parameters (one logit vector per slot).
  std::vector<nn::Parameter*> architecture_parameters();
  // Current branch probabilities of a slot (softmax of its logits).
  std::vector<double> slot_probabilities(std::size_t slot) const;
  // Expected latency under the current relaxation, and its gradient
  // accumulation into the theta grads (scaled by lambda).
  double expected_latency_ms() const;
  void accumulate_latency_gradients(double lambda);

  // Argmax decode; skip branches shorten the network.
  Genome decode() const;

  std::size_t branch_count() const { return kernel_menu_.size() + 1; }  // + skip

 private:
  struct Slot {
    std::vector<std::unique_ptr<core::LinearBlock>> branches;
    nn::Parameter theta;
    std::unique_ptr<nn::PRelu> act;
    // forward caches
    std::vector<Tensor> branch_outputs;
    Tensor input;
    std::vector<double> probs;

    Slot(std::string name, std::int64_t index) : theta(std::move(name), Tensor(1, 1, 1, index)) {}
  };

  DnasOptions options_;
  std::vector<KernelChoice> kernel_menu_;
  std::vector<double> branch_latency_ms_;  // per kernel choice (+0 for skip)
  std::unique_ptr<core::LinearBlock> first_;
  std::unique_ptr<core::LinearBlock> last_;
  std::unique_ptr<nn::PRelu> first_act_;
  std::vector<std::unique_ptr<Slot>> slots_;
  Tensor cached_input_;
  Shape pre_shuffle_{0, 0, 0, 0};
};

struct DnasResult {
  Genome genome;
  double supernet_final_loss = 0.0;
  double expected_latency_ms = 0.0;  // of the relaxed supernet at the end
  double decoded_latency_ms = 0.0;   // of the argmax-decoded network
};

// Train the supernet on the dataset and decode the architecture.
DnasResult dnas_search(const data::SrDataset& dataset, const hw::NpuConfig& npu,
                       const DnasOptions& options);

}  // namespace sesr::nas
