#include "nas/evolution.hpp"

#include <algorithm>
#include <stdexcept>

#include "metrics/psnr.hpp"
#include "nas/candidate_network.hpp"
#include "train/trainer.hpp"

namespace sesr::nas {

double candidate_latency_ms(const Genome& genome, const hw::NpuConfig& npu, std::int64_t h,
                            std::int64_t w) {
  return hw::simulate(genome_ir(genome, h, w), npu).runtime_ms;
}

double candidate_proxy_psnr(const Genome& genome, const data::SrDataset& dataset,
                            const SearchOptions& options, Rng& rng) {
  CandidateNetwork net(genome, options.proxy_expand, rng);
  train::Adam adam(options.proxy_lr);
  train::ConstantLr schedule(options.proxy_lr);
  train::Trainer trainer(net, adam, schedule, train::l1_loss);
  Rng batch_rng = rng.fork();
  train::TrainOptions topts;
  topts.steps = options.proxy_steps;
  trainer.run(
      [&](std::int64_t) {
        return dataset.sample_batch(options.proxy_batch, options.proxy_crop, batch_rng);
      },
      topts);

  double total = 0.0;
  const auto count =
      std::min<std::size_t>(static_cast<std::size_t>(options.eval_images), dataset.size());
  for (std::size_t i = 0; i < count; ++i) {
    auto [lr_img, hr_img] = dataset.image_pair(i);
    total += metrics::psnr_shaved(net.predict(lr_img), hr_img, dataset.scale());
  }
  return total / static_cast<double>(count);
}

namespace {
Evaluated evaluate(const Genome& genome, const data::SrDataset& dataset, const hw::NpuConfig& npu,
                   const SearchOptions& options, Rng& rng) {
  Evaluated e;
  e.genome = genome;
  e.latency_ms = candidate_latency_ms(genome, npu, options.latency_h, options.latency_w);
  e.psnr = candidate_proxy_psnr(genome, dataset, options, rng);
  e.feasible = e.latency_ms <= options.latency_limit_ms;
  // PSNR with a steep penalty for exceeding the latency budget.
  const double overrun = std::max(0.0, e.latency_ms / options.latency_limit_ms - 1.0);
  e.fitness = e.psnr - 50.0 * overrun;
  return e;
}
}  // namespace

SearchResult evolutionary_search(const data::SrDataset& dataset, const hw::NpuConfig& npu,
                                 const SearchOptions& options) {
  if (options.latency_limit_ms <= 0.0) {
    throw std::invalid_argument("evolutionary_search: latency_limit_ms must be > 0");
  }
  if (options.population < 2 || options.keep_top < 1 ||
      options.keep_top >= options.population) {
    throw std::invalid_argument("evolutionary_search: bad population/keep_top");
  }
  Rng rng(options.seed);

  std::vector<Evaluated> population;
  for (std::int64_t i = 0; i < options.population; ++i) {
    population.push_back(evaluate(
        random_genome(dataset.scale(), options.min_depth, options.max_depth, rng), dataset, npu,
        options, rng));
  }
  auto by_fitness = [](const Evaluated& a, const Evaluated& b) { return a.fitness > b.fitness; };
  std::sort(population.begin(), population.end(), by_fitness);

  SearchResult result;
  result.best_fitness_per_generation.push_back(population.front().fitness);
  for (std::int64_t gen = 0; gen < options.generations; ++gen) {
    std::vector<Evaluated> next(population.begin(), population.begin() + options.keep_top);
    while (static_cast<std::int64_t>(next.size()) < options.population) {
      const auto parent = [&]() -> const Genome& {
        // Tournament of 2 over the current population.
        const auto a = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(population.size()) - 1));
        const auto b = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(population.size()) - 1));
        return (population[a].fitness >= population[b].fitness ? population[a] : population[b])
            .genome;
      };
      Genome child = rng.bernoulli(0.4) ? crossover(parent(), parent(), rng) : parent();
      child = mutate(child, rng, options.min_depth, options.max_depth);
      child.scale = dataset.scale();
      next.push_back(evaluate(child, dataset, npu, options, rng));
    }
    population = std::move(next);
    std::sort(population.begin(), population.end(), by_fitness);
    result.best_fitness_per_generation.push_back(population.front().fitness);
  }

  // Prefer the best feasible candidate; fall back to best fitness overall.
  result.best = population.front();
  for (const Evaluated& e : population) {
    if (e.feasible && (!result.best.feasible || e.psnr > result.best.psnr)) result.best = e;
  }
  result.final_population = std::move(population);
  return result;
}

}  // namespace sesr::nas
