// Forwarding header: the network IR moved to core/plan so the execution-plan
// compiler (which lives below src/hw in the link order) can consume it. The
// types are unchanged and still live in namespace sesr::hw.
#pragma once

#include "core/plan/network_ir.hpp"
