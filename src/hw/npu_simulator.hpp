// Analytic mobile-NPU performance model — the stand-in for the Arm Ethos-N78
// performance estimator used in Section 5.6 (see DESIGN.md substitution table).
//
// Model (all constants in NpuConfig, calibrated against Table 3):
//  * int8 weights and activations (1 byte/element).
//  * Compute rate = TOP/s / 2 (MACs) x utilization.
//  * Cascading (layer fusion): consecutive layers are greedily grouped while
//    the stripe line-buffers of every internal boundary — kh rows of the
//    boundary tensor — fit in `cascade_buffer_bytes`. Within a cascade,
//    intermediate tensors never touch DRAM. This is the mechanism that makes
//    narrow nets (SESR, 16ch) stream end-to-end while wide nets (FSRCNN, 56ch
//    + a 9x9 deconv) fracture into DRAM-bound pieces — the paper's "memory
//    bandwidth, not MACs" effect.
//  * A cascade reads its input and writes its output through DRAM; if the
//    first layer's line buffer itself exceeds the budget, its input is
//    re-fetched kh times (no row reuse).
//  * Residual skips: the saved tensor is written to and re-read from DRAM
//    (large SISR feature maps cannot be pinned) — why the paper insists on
//    *collapsing* residuals and drops the input residual in the HW variant.
//  * runtime = sum over cascades of max(compute time, DRAM time)  (roofline).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/network_ir.hpp"

namespace sesr::hw {

struct NpuConfig {
  double tops = 4.0;                    // peak int8 TOP/s (2 ops per MAC)
  double utilization = 0.55;            // achieved fraction of peak compute
  double dram_gbps = 8.0;               // effective DRAM bandwidth, GB/s
  // Total SRAM available for stripe-fusing a cascade of layers.
  std::int64_t cascade_buffer_bytes = 1024 * 1024;
  // Line buffer available to a single layer for reusing its input rows; a
  // layer whose kh rows exceed this re-fetches its input kh times (this is
  // what penalizes FSRCNN's 9x9/56-channel deconvolution at 1080p).
  std::int64_t line_buffer_bytes = 512 * 1024;
  double bytes_per_element = 1.0;       // int8 activations
  // Energy model: DRAM access costs ~2 orders of magnitude more than an int8
  // MAC (Horowitz, ISSCC'14 scaling) — the energy-side reason the paper
  // minimizes feature-map traffic, not just MACs.
  double pj_per_mac = 0.3;
  double pj_per_dram_byte = 20.0;

  double macs_per_second() const { return tops * 1e12 / 2.0 * utilization; }
};

// The 4-TOP/s configuration used throughout the paper's Figures 1(b) and Table 3.
NpuConfig ethos_n78_like();

struct CascadeCost {
  std::string label;          // first..last layer labels
  std::int64_t macs = 0;
  std::int64_t dram_bytes = 0;
  double compute_ms = 0.0;
  double dram_ms = 0.0;
  double runtime_ms() const { return compute_ms > dram_ms ? compute_ms : dram_ms; }
};

struct PerfReport {
  std::string model;
  std::int64_t macs = 0;
  double dram_traffic_mb = 0.0;  // total bytes moved (incl. refetch penalties)
  double dram_footprint_mb = 0.0;  // unique DRAM-resident tensors
  double runtime_ms = 0.0;
  double fps = 0.0;
  double energy_mj = 0.0;           // compute + DRAM energy per frame
  double energy_compute_mj = 0.0;   // MAC portion
  double energy_dram_mj = 0.0;      // traffic portion
  std::vector<CascadeCost> cascades;
};

// Price a network on the NPU.
PerfReport simulate(const NetworkIr& ir, const NpuConfig& config);

// Tiled inference (Section 5.6 "further optimizations"): price one tile and
// scale by the fractional tile count (1920/400 x 1080/300 = 17.28 in the
// paper). `halo` adds per-tile border pixels to account for receptive-field
// overlap (0 reproduces the paper's idealized arithmetic).
struct TiledReport {
  PerfReport tile;       // one tile
  double tile_count = 0.0;
  double total_runtime_ms = 0.0;
  double fps = 0.0;
};

TiledReport simulate_tiled(const NetworkIr& full_ir, std::int64_t tile_h, std::int64_t tile_w,
                           const NpuConfig& config, std::int64_t halo = 0);

}  // namespace sesr::hw
