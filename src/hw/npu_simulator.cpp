#include "hw/npu_simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace sesr::hw {

NpuConfig ethos_n78_like() { return NpuConfig{}; }

namespace {

// Line-buffer bytes a layer needs to consume its input in streaming mode:
// kh rows of the input tensor.
std::int64_t line_buffer_bytes(const LayerDesc& l, const NpuConfig& cfg) {
  const std::int64_t rows = std::max<std::int64_t>(1, l.kh);
  return static_cast<std::int64_t>(static_cast<double>(rows * l.in_w * l.in_c) *
                                   cfg.bytes_per_element);
}

std::int64_t tensor_bytes(std::int64_t elements, const NpuConfig& cfg) {
  return static_cast<std::int64_t>(static_cast<double>(elements) * cfg.bytes_per_element);
}

struct Cascade {
  std::size_t first = 0;
  std::size_t last = 0;  // inclusive
};

// Greedy fusion: extend the cascade while the sum of internal boundary line
// buffers stays within budget. Residual adds and shuffles are always fusable
// (they add only their own small line buffer).
std::vector<Cascade> build_cascades(const NetworkIr& ir, const NpuConfig& cfg) {
  std::vector<Cascade> cascades;
  std::size_t i = 0;
  while (i < ir.layers.size()) {
    Cascade c;
    c.first = c.last = i;
    std::int64_t buffers = 0;
    while (c.last + 1 < ir.layers.size()) {
      const std::int64_t next_buffer = line_buffer_bytes(ir.layers[c.last + 1], cfg);
      if (buffers + next_buffer > cfg.cascade_buffer_bytes) break;
      buffers += next_buffer;
      ++c.last;
    }
    cascades.push_back(c);
    i = c.last + 1;
  }
  return cascades;
}

}  // namespace

PerfReport simulate(const NetworkIr& ir, const NpuConfig& cfg) {
  if (ir.layers.empty()) throw std::invalid_argument("simulate: empty network " + ir.name);
  PerfReport report;
  report.model = ir.name;
  report.macs = ir.total_macs();

  const std::vector<Cascade> cascades = build_cascades(ir, cfg);
  const double bytes_per_ms = cfg.dram_gbps * 1e9 / 1e3;
  const double macs_per_ms = cfg.macs_per_second() / 1e3;

  // Footprint: network input + output + every cascade-boundary tensor + skips.
  std::int64_t footprint = tensor_bytes(ir.layers.front().input_elements(), cfg) +
                           tensor_bytes(ir.layers.back().output_elements(), cfg);

  for (const Cascade& c : cascades) {
    const LayerDesc& head = ir.layers[c.first];
    const LayerDesc& tail = ir.layers[c.last];
    CascadeCost cost;
    cost.label = head.label + (c.first == c.last ? "" : ".." + tail.label);

    // Input read (with refetch penalty if even this layer alone cannot buffer
    // its rows), output write, weights.
    std::int64_t traffic = 0;
    std::int64_t refetch = 1;
    if (head.kind == OpKind::kConv || head.kind == OpKind::kConvTranspose) {
      if (line_buffer_bytes(head, cfg) > cfg.line_buffer_bytes) refetch = head.kh;
    }
    traffic += tensor_bytes(head.input_elements(), cfg) * refetch;
    traffic += tensor_bytes(tail.output_elements(), cfg);
    if (c.first != 0) {
      // Boundary tensor also had to be *written* by the previous cascade; that
      // write is accounted there (as its output), so only reads counted here.
      footprint += tensor_bytes(head.input_elements(), cfg);
    }
    for (std::size_t i = c.first; i <= c.last; ++i) {
      const LayerDesc& l = ir.layers[i];
      cost.macs += l.macs();
      traffic += l.weight_bytes();
      if (l.kind == OpKind::kResidualAdd) {
        // Skip tensor: written when produced, read back at the add.
        const std::int64_t skip = tensor_bytes(l.input_elements(), cfg);
        traffic += 2 * skip;
        footprint += skip;
      }
    }
    cost.dram_bytes = traffic;
    cost.compute_ms = static_cast<double>(cost.macs) / macs_per_ms;
    cost.dram_ms = static_cast<double>(traffic) / bytes_per_ms;
    report.runtime_ms += cost.runtime_ms();
    report.dram_traffic_mb += static_cast<double>(traffic) / 1e6;
    report.cascades.push_back(std::move(cost));
  }
  report.dram_footprint_mb = static_cast<double>(footprint) / 1e6;
  report.fps = report.runtime_ms > 0.0 ? 1000.0 / report.runtime_ms : 0.0;
  report.energy_compute_mj = static_cast<double>(report.macs) * cfg.pj_per_mac * 1e-9;
  report.energy_dram_mj = report.dram_traffic_mb * 1e6 * cfg.pj_per_dram_byte * 1e-9;
  report.energy_mj = report.energy_compute_mj + report.energy_dram_mj;
  return report;
}

TiledReport simulate_tiled(const NetworkIr& full_ir, std::int64_t tile_h, std::int64_t tile_w,
                           const NpuConfig& cfg, std::int64_t halo) {
  if (tile_h < 1 || tile_w < 1 || halo < 0) {
    throw std::invalid_argument("simulate_tiled: bad tile geometry");
  }
  TiledReport report;
  const NetworkIr tile_ir = full_ir.with_input(tile_h + 2 * halo, tile_w + 2 * halo);
  report.tile = simulate(tile_ir, cfg);
  report.tile_count = (static_cast<double>(full_ir.input_h) / static_cast<double>(tile_h)) *
                      (static_cast<double>(full_ir.input_w) / static_cast<double>(tile_w));
  report.total_runtime_ms = report.tile.runtime_ms * report.tile_count;
  report.fps = report.total_runtime_ms > 0.0 ? 1000.0 / report.total_runtime_ms : 0.0;
  return report;
}

}  // namespace sesr::hw
