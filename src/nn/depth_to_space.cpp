#include "nn/depth_to_space.hpp"

#include <stdexcept>

namespace sesr::nn {

Tensor depth_to_space(const Tensor& input, std::int64_t block) {
  const Shape& s = input.shape();
  if (block < 1) throw std::invalid_argument("depth_to_space: block must be >= 1");
  if (s.c() % (block * block) != 0) {
    throw std::invalid_argument("depth_to_space: channels " + std::to_string(s.c()) +
                                " not divisible by block^2");
  }
  Tensor out(s.n(), s.h() * block, s.w() * block, s.c() / (block * block));
  depth_to_space_into(input.raw(), s, block, out.raw());
  return out;
}

void depth_to_space_into(const float* input, const Shape& s, std::int64_t block, float* out) {
  const std::int64_t out_c = s.c() / (block * block);
  const Shape os(s.n(), s.h() * block, s.w() * block, out_c);
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t y = 0; y < s.h(); ++y) {
      for (std::int64_t x = 0; x < s.w(); ++x) {
        for (std::int64_t dy = 0; dy < block; ++dy) {
          for (std::int64_t dx = 0; dx < block; ++dx) {
            const float* src = input + s.offset(n, y, x, (dy * block + dx) * out_c);
            float* dst = out + os.offset(n, y * block + dy, x * block + dx, 0);
            for (std::int64_t c = 0; c < out_c; ++c) dst[c] = src[c];
          }
        }
      }
    }
  }
}

Tensor space_to_depth(const Tensor& input, std::int64_t block) {
  const Shape& s = input.shape();
  if (block < 1) throw std::invalid_argument("space_to_depth: block must be >= 1");
  if (s.h() % block != 0 || s.w() % block != 0) {
    throw std::invalid_argument("space_to_depth: spatial dims not divisible by block");
  }
  Tensor out(s.n(), s.h() / block, s.w() / block, s.c() * block * block);
  const Shape& os = out.shape();
  for (std::int64_t n = 0; n < os.n(); ++n) {
    for (std::int64_t y = 0; y < os.h(); ++y) {
      for (std::int64_t x = 0; x < os.w(); ++x) {
        for (std::int64_t dy = 0; dy < block; ++dy) {
          for (std::int64_t dx = 0; dx < block; ++dx) {
            const float* src = input.raw() + s.offset(n, y * block + dy, x * block + dx, 0);
            float* dst = out.raw() + os.offset(n, y, x, (dy * block + dx) * s.c());
            for (std::int64_t c = 0; c < s.c(); ++c) dst[c] = src[c];
          }
        }
      }
    }
  }
  return out;
}

Tensor DepthToSpace::forward(const Tensor& input, bool /*training*/) {
  return depth_to_space(input, block_);
}

Tensor DepthToSpace::backward(const Tensor& grad_output) {
  return space_to_depth(grad_output, block_);
}

}  // namespace sesr::nn
