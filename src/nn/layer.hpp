// Layer abstraction for the training stack.
//
// A Layer owns its parameters (value + gradient buffers), caches whatever it
// needs during forward(), and returns the input gradient from backward() while
// accumulating parameter gradients. The optimizers in src/train consume the
// flat Parameter list. There is no general autograd tape: SESR-family networks
// are small static graphs, so each network wires its own backward pass — which
// also keeps the efficient-training path (backprop *through* the collapse
// operator, Fig. 3 of the paper) explicit and testable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace sesr::nn {

struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string n, Tensor v) : name(std::move(n)), value(std::move(v)), grad(value.zeros_like()) {}
};

class Layer {
 public:
  virtual ~Layer() = default;
  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  // Computes the output; when `training` is true the layer caches activations
  // needed by backward().
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  // Consumes d(loss)/d(output), accumulates parameter gradients, returns
  // d(loss)/d(input). Must be preceded by forward(..., true).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  // Mutable views of this layer's parameters (empty for stateless layers).
  virtual std::vector<Parameter*> parameters() { return {}; }

  virtual std::string name() const = 0;
};

// Collect parameters from several layers into one optimizer-ready list.
std::vector<Parameter*> collect_parameters(const std::vector<Layer*>& layers);

// Zero all gradient buffers.
void zero_gradients(const std::vector<Parameter*>& params);

// Global L2 norm over all parameter gradients (vanishing-gradient telemetry
// for the Section 5.4 reproduction).
float gradient_norm(const std::vector<Parameter*>& params);

// Checkpoint helpers: parameters keyed by their (unique) names.
TensorMap parameters_to_map(const std::vector<Parameter*>& params);
void load_parameters_from_map(const std::vector<Parameter*>& params, const TensorMap& map);

}  // namespace sesr::nn
