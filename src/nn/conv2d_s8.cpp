#include "nn/conv2d_s8.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "tensor/scratch.hpp"
#include "tensor/thread_pool.hpp"

namespace sesr::nn {

namespace {

// Offset-binary zero point: quantized 0 stored as u8 (0 + 128).
constexpr std::uint8_t kQuantZero = 128;

// Must match conv2d.cpp so int8 and fp32 layers stripe — and therefore
// parallelize — identically.
constexpr std::int64_t kStripePixels = 1024;

ConvGeometry conv_geometry_s8(const Shape& in_s, const Shape& w_s, Padding padding) {
  if (!w_s.valid()) {
    throw std::invalid_argument("conv2d_s8: invalid weight shape " + w_s.to_string());
  }
  if (in_s.c() != w_s.dim(2)) {
    throw std::invalid_argument("conv2d_s8: input channels " + std::to_string(in_s.c()) +
                                " != weight in_channels " + std::to_string(w_s.dim(2)));
  }
  const std::int64_t kh = w_s.dim(0);
  const std::int64_t kw = w_s.dim(1);
  if (padding == Padding::kSame) return same_geometry(in_s.h(), in_s.w(), in_s.c(), kh, kw, 1);
  return valid_geometry(in_s.h(), in_s.w(), in_s.c(), kh, kw);
}

// Implicit im2col source for the int8 GEMM, reading from the pre-quantized
// offset-binary u8 image (the conv entry point quantizes the whole activation
// tensor exactly once per layer via nn::quantize_u8_run — quantizing inside
// this row source instead would redo the same pixel kh*kw times and dominate
// the layer). Structure mirrors Im2colFp16Source (kernel-row-contiguous
// memcpy runs with horizontal clamps); out-of-bounds taps emit the quantized
// zero point instead of 0.0f.
struct Im2colS8Source {
  const std::uint8_t* img;  // base of quantized batch image n
  const ConvGeometry* g;
  std::int64_t row0;        // first image-space im2col row of this stripe
};

void im2col_s8_row(const void* vctx, std::int64_t row, std::int64_t p0, std::int64_t kc,
                   std::uint8_t* dst) {
  const auto& s = *static_cast<const Im2colS8Source*>(vctx);
  const ConvGeometry& g = *s.g;
  const std::int64_t c = g.channels;
  const std::int64_t kwc = g.kw * c;
  const std::int64_t r = s.row0 + row;
  const std::int64_t oy = r / g.out_w;
  const std::int64_t ox = r % g.out_w;
  const std::int64_t iy0 = oy * g.stride - g.pad_top;
  const std::int64_t ix0 = ox * g.stride - g.pad_left;
  const std::int64_t lo = std::max<std::int64_t>(0, -ix0) * c;
  const std::int64_t hi = (std::min(g.kw, g.in_w - ix0)) * c;
  std::int64_t q = p0;
  const std::int64_t q_end = p0 + kc;
  std::int64_t ky = q / kwc;
  std::int64_t cell = q - ky * kwc;
  while (q < q_end) {
    const std::int64_t len = std::min(kwc - cell, q_end - q);
    const std::int64_t iy = iy0 + ky;
    if (iy < 0 || iy >= g.in_h || hi <= lo) {
      std::fill(dst, dst + len, kQuantZero);
    } else {
      const std::int64_t cut0 = std::clamp(lo, cell, cell + len);
      const std::int64_t cut1 = std::clamp(hi, cell, cell + len);
      std::fill(dst, dst + (cut0 - cell), kQuantZero);
      std::memcpy(dst + (cut0 - cell), s.img + (iy * g.in_w + ix0) * c + cut0,
                  static_cast<std::size_t>(cut1 - cut0));
      std::fill(dst + (cut1 - cell), dst + len, kQuantZero);
    }
    dst += len;
    q += len;
    ++ky;
    cell = 0;
  }
}

}  // namespace

S8ConvWeights quantize_conv_weights(const Tensor& weight) {
  if (!weight.shape().valid()) {
    throw std::invalid_argument("quantize_conv_weights: invalid weight shape " +
                                weight.shape().to_string());
  }
  const std::int64_t out_c = weight.shape().dim(3);
  const std::int64_t k = weight.numel() / out_c;  // kh * kw * in_c
  S8ConvWeights q;
  q.shape = weight.shape();
  q.values.resize(static_cast<std::size_t>(weight.numel()));
  q.scale.resize(static_cast<std::size_t>(out_c));
  const float* w = weight.raw();
  for (std::int64_t oc = 0; oc < out_c; ++oc) {
    float max_abs = 0.0F;
    for (std::int64_t i = 0; i < k; ++i) {
      max_abs = std::max(max_abs, std::fabs(w[i * out_c + oc]));
    }
    const float scale = max_abs > 0.0F ? max_abs / 127.0F : kDegenerateQuantScale;
    q.scale[static_cast<std::size_t>(oc)] = scale;
    const float inv = 1.0F / scale;
    for (std::int64_t i = 0; i < k; ++i) {
      q.values[static_cast<std::size_t>(i * out_c + oc)] = quantize_value(w[i * out_c + oc], inv);
    }
  }
  q.colsum = s8_column_sums({q.values.data(), q.values.size()}, k, out_c);
  return q;
}

void conv2d_s8_into(const float* input, const Shape& in_shape, float act_scale,
                    const S8ConvWeights& weight, const Tensor* bias, const Epilogue& epilogue,
                    Padding padding, float* out) {
  const ConvGeometry g = conv_geometry_s8(in_shape, weight.shape, padding);
  const std::int64_t out_c = weight.shape.dim(3);
  const std::int64_t batch = in_shape.n();
  const std::int64_t numel = in_shape.numel();
  if (bias != nullptr && bias->numel() != out_c) {
    throw std::invalid_argument("conv2d_s8: bias numel must equal out_channels");
  }
  if (!(act_scale > 0.0F)) {
    throw std::invalid_argument("conv2d_s8: activation scale must be positive");
  }
  if (epilogue.act == Epilogue::Act::kPRelu && epilogue.prelu_alpha == nullptr) {
    throw std::invalid_argument("conv2d_s8: PReLU epilogue requires prelu_alpha");
  }
  const Shape out_shape(batch, g.out_h, g.out_w, out_c);
  // Combined dequantization factor per output channel: one single-rounded
  // float product, mirrored exactly by the src/check reference. Scratch-backed
  // (as is qimg below) so a steady-state layer performs no allocation.
  std::span<float> dequant = scratch_floats(ScratchSlot::kS8Dequant,
                                            static_cast<std::size_t>(out_c));
  for (std::int64_t oc = 0; oc < out_c; ++oc) {
    dequant[static_cast<std::size_t>(oc)] = act_scale * weight.scale[static_cast<std::size_t>(oc)];
  }
  S8Epilogue epi;
  epi.scale = dequant.data();
  epi.bias = bias != nullptr ? bias->raw() : nullptr;
  epi.act = epilogue.act;
  epi.prelu_alpha = epilogue.prelu_alpha;
  const std::span<const std::int8_t> wspan{weight.values.data(), weight.values.size()};
  const std::span<const std::int32_t> cspan{weight.colsum.data(), weight.colsum.size()};
  const float inv_scale = 1.0F / act_scale;
  // Quantize the whole activation tensor once (elementwise, so chunk order is
  // irrelevant); the im2col row source then only copies bytes. Pool workers
  // read qimg but never touch the submitting thread's scratch slot, so the
  // span stays valid for both loops.
  std::span<std::uint8_t> qimg = scratch_bytes(ScratchSlot::kS8Quant,
                                               static_cast<std::size_t>(numel));
  constexpr std::int64_t kQuantChunk = 1 << 16;
  const std::int64_t chunks = (numel + kQuantChunk - 1) / kQuantChunk;
  ThreadPool::global().parallel_for(0, chunks, [&](std::int64_t ci) {
    const std::int64_t lo = ci * kQuantChunk;
    const std::int64_t hi = std::min(lo + kQuantChunk, numel);
    quantize_u8_run(input + lo, qimg.data() + lo, hi - lo, inv_scale);
  });
  const std::int64_t sc = (g.rows() + kStripePixels - 1) / kStripePixels;
  ThreadPool::global().parallel_for(0, batch * sc, [&](std::int64_t idx) {
    const std::int64_t n = idx / sc;
    const std::int64_t r0 = (idx % sc) * kStripePixels;
    const std::int64_t r1 = std::min(r0 + kStripePixels, g.rows());
    const std::int64_t rows = r1 - r0;
    std::span<float> dst(out + out_shape.offset(n, 0, 0, 0) + r0 * out_c,
                         static_cast<std::size_t>(rows * out_c));
    const Im2colS8Source src{qimg.data() + in_shape.offset(n, 0, 0, 0), &g, r0};
    gemm_s8_rows(im2col_s8_row, &src, wspan, cspan, dst, rows, g.cols(), out_c, epi);
  });
}

Tensor conv2d_s8(const Tensor& input, float act_scale, const S8ConvWeights& weight,
                 const Tensor* bias, const Epilogue& epilogue, Padding padding) {
  const ConvGeometry g = conv_geometry_s8(input.shape(), weight.shape, padding);
  Tensor out(input.shape().n(), g.out_h, g.out_w, weight.shape.dim(3));
  conv2d_s8_into(input.raw(), input.shape(), act_scale, weight, bias, epilogue, padding,
                 out.raw());
  return out;
}

}  // namespace sesr::nn
