#include "nn/winograd.hpp"

#include <array>
#include <stdexcept>
#include <vector>

namespace sesr::nn {

namespace {
// F(2x2, 3x3) transforms (Lavin & Gray, 2016):
//   Y = A^T [ (G g G^T) .* (B^T d B) ] A
// with d a 4x4 input tile, g the 3x3 kernel, Y the 2x2 output tile.

// U = G g G^T for one (ic, oc) 3x3 kernel slice.
std::array<float, 16> transform_kernel(const float g[9]) {
  // G = [1, 0, 0; .5, .5, .5; .5, -.5, .5; 0, 0, 1]
  float tmp[4][3];
  for (int j = 0; j < 3; ++j) {
    const float g0 = g[0 * 3 + j];
    const float g1 = g[1 * 3 + j];
    const float g2 = g[2 * 3 + j];
    tmp[0][j] = g0;
    tmp[1][j] = 0.5F * (g0 + g1 + g2);
    tmp[2][j] = 0.5F * (g0 - g1 + g2);
    tmp[3][j] = g2;
  }
  std::array<float, 16> u{};
  for (int i = 0; i < 4; ++i) {
    const float t0 = tmp[i][0];
    const float t1 = tmp[i][1];
    const float t2 = tmp[i][2];
    u[static_cast<std::size_t>(i * 4 + 0)] = t0;
    u[static_cast<std::size_t>(i * 4 + 1)] = 0.5F * (t0 + t1 + t2);
    u[static_cast<std::size_t>(i * 4 + 2)] = 0.5F * (t0 - t1 + t2);
    u[static_cast<std::size_t>(i * 4 + 3)] = t2;
  }
  return u;
}

// V = B^T d B for a 4x4 input tile.
// B^T = [1, 0, -1, 0; 0, 1, 1, 0; 0, -1, 1, 0; 0, 1, 0, -1]
void transform_input(const float d[16], float v[16]) {
  float tmp[16];
  for (int j = 0; j < 4; ++j) {
    const float d0 = d[0 * 4 + j];
    const float d1 = d[1 * 4 + j];
    const float d2 = d[2 * 4 + j];
    const float d3 = d[3 * 4 + j];
    tmp[0 * 4 + j] = d0 - d2;
    tmp[1 * 4 + j] = d1 + d2;
    tmp[2 * 4 + j] = d2 - d1;
    tmp[3 * 4 + j] = d1 - d3;
  }
  for (int i = 0; i < 4; ++i) {
    const float t0 = tmp[i * 4 + 0];
    const float t1 = tmp[i * 4 + 1];
    const float t2 = tmp[i * 4 + 2];
    const float t3 = tmp[i * 4 + 3];
    v[i * 4 + 0] = t0 - t2;
    v[i * 4 + 1] = t1 + t2;
    v[i * 4 + 2] = t2 - t1;
    v[i * 4 + 3] = t1 - t3;
  }
}

// Y = A^T m A for the 4x4 elementwise product m; writes a 2x2 tile.
// A^T = [1, 1, 1, 0; 0, 1, -1, -1]
void transform_output(const float m[16], float y[4]) {
  float tmp[8];
  for (int j = 0; j < 4; ++j) {
    const float m0 = m[0 * 4 + j];
    const float m1 = m[1 * 4 + j];
    const float m2 = m[2 * 4 + j];
    const float m3 = m[3 * 4 + j];
    tmp[0 * 4 + j] = m0 + m1 + m2;
    tmp[1 * 4 + j] = m1 - m2 - m3;
  }
  for (int i = 0; i < 2; ++i) {
    const float t0 = tmp[i * 4 + 0];
    const float t1 = tmp[i * 4 + 1];
    const float t2 = tmp[i * 4 + 2];
    const float t3 = tmp[i * 4 + 3];
    y[i * 2 + 0] = t0 + t1 + t2;
    y[i * 2 + 1] = t1 - t2 - t3;
  }
}
}  // namespace

Tensor winograd_weight_transform(const Tensor& weight) {
  const Shape& ws = weight.shape();
  if (ws.dim(0) != 3 || ws.dim(1) != 3) {
    throw std::invalid_argument("winograd: kernel must be 3x3, got " + ws.to_string());
  }
  Tensor u(4, 4, ws.dim(2), ws.dim(3));
  float g[9];
  for (std::int64_t ic = 0; ic < ws.dim(2); ++ic) {
    for (std::int64_t oc = 0; oc < ws.dim(3); ++oc) {
      for (int ky = 0; ky < 3; ++ky) {
        for (int kx = 0; kx < 3; ++kx) g[ky * 3 + kx] = weight(ky, kx, ic, oc);
      }
      const auto t = transform_kernel(g);
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) u(i, j, ic, oc) = t[static_cast<std::size_t>(i * 4 + j)];
      }
    }
  }
  return u;
}

Tensor conv2d_winograd_3x3_pretransformed(const Tensor& input, const Tensor& transformed,
                                          std::int64_t out_c) {
  const Shape& s = input.shape();
  const Shape& us = transformed.shape();
  if (us.dim(0) != 4 || us.dim(1) != 4 || us.dim(2) != s.c() || us.dim(3) != out_c) {
    throw std::invalid_argument("winograd: transformed weight shape mismatch");
  }
  Tensor out(s.n(), s.h(), s.w(), out_c);
  const std::int64_t in_c = s.c();
  std::vector<float> v(static_cast<std::size_t>(16 * in_c));
  float d[16];
  float m[16];
  float y[4];
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t ty = 0; ty < s.h(); ty += 2) {
      for (std::int64_t tx = 0; tx < s.w(); tx += 2) {
        // Gather + transform the 4x4 input tile for every channel (SAME
        // padding: tile starts one pixel up-left of the output tile).
        for (std::int64_t c = 0; c < in_c; ++c) {
          for (int dy = 0; dy < 4; ++dy) {
            for (int dx = 0; dx < 4; ++dx) {
              const std::int64_t iy = ty + dy - 1;
              const std::int64_t ix = tx + dx - 1;
              d[dy * 4 + dx] = (iy >= 0 && iy < s.h() && ix >= 0 && ix < s.w())
                                   ? input(n, iy, ix, c)
                                   : 0.0F;
            }
          }
          transform_input(d, v.data() + c * 16);
        }
        for (std::int64_t oc = 0; oc < out_c; ++oc) {
          for (int i = 0; i < 16; ++i) m[i] = 0.0F;
          for (std::int64_t c = 0; c < in_c; ++c) {
            const float* vc = v.data() + c * 16;
            for (int i = 0; i < 4; ++i) {
              for (int j = 0; j < 4; ++j) {
                m[i * 4 + j] += vc[i * 4 + j] * transformed(i, j, c, oc);
              }
            }
          }
          transform_output(m, y);
          for (int dy = 0; dy < 2; ++dy) {
            for (int dx = 0; dx < 2; ++dx) {
              const std::int64_t oy = ty + dy;
              const std::int64_t ox = tx + dx;
              if (oy < s.h() && ox < s.w()) out(n, oy, ox, oc) = y[dy * 2 + dx];
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor conv2d_winograd_3x3(const Tensor& input, const Tensor& weight) {
  return conv2d_winograd_3x3_pretransformed(input, winograd_weight_transform(weight),
                                            weight.shape().dim(3));
}

}  // namespace sesr::nn
