// im2col / col2im lowering for convolution.
//
// For one image (1, H, W, C) and a kh x kw window with stride and zero padding,
// im2col produces a row-major matrix of shape
//   [out_h * out_w, kh * kw * C]
// where each row is the flattened receptive field of one output pixel, in
// (ky, kx, c) order — the same order in which HWIO kernels flatten, so a single
// GEMM against the [kh*kw*C, out_c] weight matrix computes the convolution.
// col2im is its adjoint (scatter-add), used for input gradients.
#pragma once

#include <cstdint>

#include "tensor/fp16.hpp"
#include "tensor/tensor.hpp"

namespace sesr::nn {

struct ConvGeometry {
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t channels = 0;
  std::int64_t kh = 0;
  std::int64_t kw = 0;
  std::int64_t stride = 1;
  std::int64_t pad_top = 0;
  std::int64_t pad_left = 0;
  std::int64_t out_h = 0;
  std::int64_t out_w = 0;

  std::int64_t rows() const { return out_h * out_w; }
  std::int64_t cols() const { return kh * kw * channels; }
};

// Geometry for SAME padding (output spatial dims = ceil(in / stride); for the
// stride-1 case used throughout SESR, output == input and asymmetric/even
// kernels pad more on the bottom/right, matching TF convention).
ConvGeometry same_geometry(std::int64_t in_h, std::int64_t in_w, std::int64_t channels,
                           std::int64_t kh, std::int64_t kw, std::int64_t stride = 1);

// Geometry for VALID padding (no padding; output = in - k + 1, stride 1 only).
ConvGeometry valid_geometry(std::int64_t in_h, std::int64_t in_w, std::int64_t channels,
                            std::int64_t kh, std::int64_t kw);

// Lower batch image n of `input` into `cols` (must hold rows()*cols() floats).
void im2col(const Tensor& input, std::int64_t n, const ConvGeometry& g, float* cols);

// Stripe form: lowers only output rows [row_begin, row_end) (row = oy*out_w+ox)
// into `cols`, which must hold (row_end - row_begin) * cols() floats. This is
// the unit of intra-image parallelism: each stripe is independent, so N=1
// inference scales across cores by splitting the row space.
void im2col_rows(const Tensor& input, std::int64_t n, const ConvGeometry& g,
                 std::int64_t row_begin, std::int64_t row_end, float* cols);

// Raw-image form: `image` points at one (g.in_h, g.in_w, g.channels) NHWC
// image (e.g. an execution-plan arena slice, which has no Tensor wrapper).
// The geometry is trusted; the Tensor overloads validate and delegate here.
void im2col_rows(const float* image, const ConvGeometry& g, std::int64_t row_begin,
                 std::int64_t row_end, float* cols);

// Adjoint: scatter-add `cols` back into batch image n of `grad_input`.
void col2im_add(const float* cols, const ConvGeometry& g, Tensor& grad_input, std::int64_t n);

// Stripe form of the adjoint, partitioned over *input* rows: only input rows
// iy in [y_begin, y_end) receive contributions. Disjoint ranges touch disjoint
// elements, and for each element the contributions arrive in the same order as
// the full col2im_add, so a fixed partition yields bit-identical results for
// any thread count. `cols` is the full rows()*cols() matrix.
void col2im_add_rows(const float* cols, const ConvGeometry& g, Tensor& grad_input, std::int64_t n,
                     std::int64_t y_begin, std::int64_t y_end);

}  // namespace sesr::nn
