#include "nn/conv_transpose.hpp"

#include <stdexcept>

#include "nn/init.hpp"

namespace sesr::nn {

Tensor conv_transpose2d(const Tensor& input, const Tensor& weight, std::int64_t stride) {
  // The forward transposed conv with stride s producing (H*s, W*s, out_c) is the
  // input-gradient of a SAME conv with stride s mapping (H*s, W*s, out_c) ->
  // (H, W, in_c), whose kernel is (kh, kw, out_c, in_c).
  const Shape& s = input.shape();
  if (weight.shape().dim(3) != s.c()) {
    throw std::invalid_argument("conv_transpose2d: weight in_c (dim 3) must match input channels");
  }
  const std::int64_t out_c = weight.shape().dim(2);
  Shape out_shape(s.n(), s.h() * stride, s.w() * stride, out_c);
  return conv2d_backward_input(input, weight, out_shape, Padding::kSame, stride);
}

ConvTranspose2d::ConvTranspose2d(std::string name, std::int64_t kh, std::int64_t kw,
                                 std::int64_t in_c, std::int64_t out_c, std::int64_t stride,
                                 Rng& rng)
    : name_(std::move(name)),
      stride_(stride),
      in_c_(in_c),
      out_c_(out_c),
      weight_(name_ + ".weight", glorot_uniform_kernel(kh, kw, out_c, in_c, rng)) {
  if (stride < 1) throw std::invalid_argument("ConvTranspose2d: stride must be >= 1");
}

Tensor ConvTranspose2d::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  return conv_transpose2d(input, weight_.value, stride_);
}

Tensor ConvTranspose2d::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("ConvTranspose2d::backward before forward");
  // Adjoint of the adjoint: grad wrt input is the plain strided conv of
  // grad_output with the stored kernel; grad wrt weight swaps the roles of
  // input and output in the conv weight-gradient kernel.
  conv2d_backward_weight(grad_output, cached_input_, weight_.grad, Padding::kSame, stride_);
  return conv2d(grad_output, weight_.value, Padding::kSame, stride_);
}

}  // namespace sesr::nn
