// 2-D convolution: stateless functional ops plus a trainable Layer.
//
// Kernels are HWIO tensors (kh, kw, in_c, out_c) and activations NHWC. The
// functional entry points are used directly by the collapse algebra
// (Algorithm 1 convolves an identity probe with VALID padding) and by the
// efficient-training mode, which backpropagates *through* those same ops.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "nn/gemm.hpp"
#include "nn/im2col.hpp"
#include "nn/layer.hpp"
#include "tensor/fp16.hpp"
#include "tensor/tensor.hpp"

namespace sesr::nn {

enum class Padding { kSame, kValid };

// Geometry helper for a conv over `input` with the given kernel.
ConvGeometry conv_geometry(const Tensor& input, const Tensor& weight, Padding padding,
                           std::int64_t stride = 1);

// out[n, oy, ox, oc] = sum_{ky,kx,ic} in[n, oy*s - pt + ky, ox*s - pl + kx, ic] * w[ky, kx, ic, oc]
Tensor conv2d(const Tensor& input, const Tensor& weight, Padding padding, std::int64_t stride = 1);

// Same, plus per-output-channel bias (1, 1, 1, out_c) fused into the GEMM
// epilogue (single pass over the output).
Tensor conv2d_bias(const Tensor& input, const Tensor& weight, const Tensor& bias, Padding padding,
                   std::int64_t stride = 1);

// out = act(conv2d(input, weight) + bias) with the activation fused into the
// GEMM write-back (see nn::Epilogue) — one pass over the output instead of a
// conv pass plus an elementwise activation pass. `bias` may be null. The
// result is bit-identical to conv2d_bias / conv2d followed by the equivalent
// elementwise activation.
Tensor conv2d_fused(const Tensor& input, const Tensor& weight, const Tensor* bias,
                    const Epilogue& epilogue, Padding padding, std::int64_t stride = 1);

// Reduced-precision forward: input and weight are binary16 storage, the GEMM
// accumulates in fp32 (gemm_fp16w), bias add and activation ride the fused
// epilogue in fp32, and each finished output stripe is rounded to binary16
// exactly once. Deterministic for any thread count (fixed stripe boundaries,
// fixed k-block order), so tiled and full-frame fp16 inference agree bitwise.
fp16::HalfTensor conv2d_fp16(const fp16::HalfTensor& input, const fp16::HalfTensor& weight,
                             const Tensor* bias, const Epilogue& epilogue, Padding padding,
                             std::int64_t stride = 1);

// Same compute, but the fp32 accumulator stripe is stored directly — no final
// rounding. Used for the last conv of the fp16 network, whose output feeds
// the fp32 residual add + depth_to_space.
Tensor conv2d_fp16_to_float(const fp16::HalfTensor& input, const fp16::HalfTensor& weight,
                            const Tensor* bias, const Epilogue& epilogue, Padding padding,
                            std::int64_t stride = 1);

// Output-span forms for the execution-plan path (src/core/plan): input and
// output are raw NHWC images in caller-provided storage (planner arena
// slices), `in_shape` describes `input`, and `out` must hold
// n * out_h * out_w * out_c elements. The dispatch mirrors the allocating
// entry points exactly — epilogue == nullptr selects the gemm / gemm_bias
// forms conv2d / conv2d_bias use, non-null selects conv2d_fused's kernel — so
// results are bit-identical to the Tensor-returning calls.
void conv2d_into(const float* input, const Shape& in_shape, const Tensor& weight,
                 const Tensor* bias, const Epilogue* epilogue, Padding padding, float* out,
                 std::int64_t stride = 1);

void conv2d_fp16_into(const fp16::Half* input, const Shape& in_shape,
                      const fp16::HalfTensor& weight, const Tensor* bias, const Epilogue& epilogue,
                      Padding padding, fp16::Half* out, std::int64_t stride = 1);

void conv2d_fp16_to_float_into(const fp16::Half* input, const Shape& in_shape,
                               const fp16::HalfTensor& weight, const Tensor* bias,
                               const Epilogue& epilogue, Padding padding, float* out,
                               std::int64_t stride = 1);

// conv2d through the zero-skipping GEMM kernel. Only worthwhile when the
// input is overwhelmingly zero — i.e. the padded identity probes Algorithm 1
// convolves to collapse a linear block; dense activations should use conv2d.
Tensor conv2d_zero_skip(const Tensor& input, const Tensor& weight, Padding padding,
                        std::int64_t stride = 1);

// d(loss)/d(input) given d(loss)/d(output).
Tensor conv2d_backward_input(const Tensor& grad_output, const Tensor& weight,
                             const Shape& input_shape, Padding padding, std::int64_t stride = 1);

// Accumulates d(loss)/d(weight) into grad_weight (same HWIO shape as weight).
void conv2d_backward_weight(const Tensor& input, const Tensor& grad_output, Tensor& grad_weight,
                            Padding padding, std::int64_t stride = 1);

// Same, with the bias gradient (column sums of grad_output) accumulated into
// grad_bias during the same striped pass — no second sweep over grad_output.
void conv2d_backward_weight_bias(const Tensor& input, const Tensor& grad_output,
                                 Tensor& grad_weight, Tensor& grad_bias, Padding padding,
                                 std::int64_t stride = 1);

// Reference direct convolution (no im2col); used only to validate the fast path.
Tensor conv2d_naive(const Tensor& input, const Tensor& weight, Padding padding,
                    std::int64_t stride = 1);

// Trainable convolution layer with optional bias.
class Conv2d final : public Layer {
 public:
  // Glorot-uniform initialized weight (the TF default the original SESR code
  // relies on; He gain compounds through residual stacks and destabilizes
  // deep configs); zero bias. `name` must be unique within a model.
  Conv2d(std::string name, std::int64_t kh, std::int64_t kw, std::int64_t in_c, std::int64_t out_c,
         Padding padding, bool with_bias, Rng& rng, std::int64_t stride = 1);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }

  Parameter& weight() { return weight_; }
  const Parameter& weight() const { return weight_; }
  bool has_bias() const { return bias_.has_value(); }
  Parameter& bias() { return *bias_; }

  std::int64_t kh() const { return weight_.value.shape().dim(0); }
  std::int64_t kw() const { return weight_.value.shape().dim(1); }
  std::int64_t in_channels() const { return weight_.value.shape().dim(2); }
  std::int64_t out_channels() const { return weight_.value.shape().dim(3); }
  Padding padding() const { return padding_; }
  std::int64_t stride() const { return stride_; }

 private:
  std::string name_;
  Padding padding_;
  std::int64_t stride_;
  Parameter weight_;
  std::optional<Parameter> bias_;
  Tensor cached_input_;  // saved by forward(training=true)
};

}  // namespace sesr::nn
