#include "nn/im2col.hpp"

#include <algorithm>
#include <stdexcept>

namespace sesr::nn {

ConvGeometry same_geometry(std::int64_t in_h, std::int64_t in_w, std::int64_t channels,
                           std::int64_t kh, std::int64_t kw, std::int64_t stride) {
  if (in_h < 1 || in_w < 1 || channels < 1 || kh < 1 || kw < 1 || stride < 1) {
    throw std::invalid_argument("same_geometry: all dimensions must be positive");
  }
  ConvGeometry g;
  g.in_h = in_h;
  g.in_w = in_w;
  g.channels = channels;
  g.kh = kh;
  g.kw = kw;
  g.stride = stride;
  g.out_h = (in_h + stride - 1) / stride;
  g.out_w = (in_w + stride - 1) / stride;
  // TF SAME rule: total padding so that windows cover the input; extra padding
  // (for even kernels) goes on the bottom/right.
  const std::int64_t pad_h = std::max<std::int64_t>(0, (g.out_h - 1) * stride + kh - in_h);
  const std::int64_t pad_w = std::max<std::int64_t>(0, (g.out_w - 1) * stride + kw - in_w);
  g.pad_top = pad_h / 2;
  g.pad_left = pad_w / 2;
  return g;
}

ConvGeometry valid_geometry(std::int64_t in_h, std::int64_t in_w, std::int64_t channels,
                            std::int64_t kh, std::int64_t kw) {
  if (in_h < kh || in_w < kw || channels < 1 || kh < 1 || kw < 1) {
    throw std::invalid_argument("valid_geometry: input smaller than kernel");
  }
  ConvGeometry g;
  g.in_h = in_h;
  g.in_w = in_w;
  g.channels = channels;
  g.kh = kh;
  g.kw = kw;
  g.stride = 1;
  g.pad_top = 0;
  g.pad_left = 0;
  g.out_h = in_h - kh + 1;
  g.out_w = in_w - kw + 1;
  return g;
}

void im2col(const Tensor& input, std::int64_t n, const ConvGeometry& g, float* cols) {
  im2col_rows(input, n, g, 0, g.rows(), cols);
}

void im2col_rows(const Tensor& input, std::int64_t n, const ConvGeometry& g,
                 std::int64_t row_begin, std::int64_t row_end, float* cols) {
  const Shape& s = input.shape();
  if (s.h() != g.in_h || s.w() != g.in_w || s.c() != g.channels) {
    throw std::invalid_argument("im2col: tensor shape does not match geometry");
  }
  if (row_begin < 0 || row_end > g.rows() || row_begin > row_end) {
    throw std::invalid_argument("im2col_rows: row range out of bounds");
  }
  im2col_rows(input.raw() + s.offset(n, 0, 0, 0), g, row_begin, row_end, cols);
}

void im2col_rows(const float* image, const ConvGeometry& g, std::int64_t row_begin,
                 std::int64_t row_end, float* cols) {
  const std::int64_t c = g.channels;
  for (std::int64_t r = row_begin; r < row_end; ++r) {
    const std::int64_t oy = r / g.out_w;
    const std::int64_t ox = r % g.out_w;
    {
      float* row = cols + (r - row_begin) * g.cols();
      for (std::int64_t ky = 0; ky < g.kh; ++ky) {
        const std::int64_t iy = oy * g.stride - g.pad_top + ky;
        float* dst = row + ky * g.kw * c;
        if (iy < 0 || iy >= g.in_h) {
          std::fill(dst, dst + g.kw * c, 0.0F);
          continue;
        }
        for (std::int64_t kx = 0; kx < g.kw; ++kx) {
          const std::int64_t ix = ox * g.stride - g.pad_left + kx;
          if (ix < 0 || ix >= g.in_w) {
            std::fill(dst + kx * c, dst + (kx + 1) * c, 0.0F);
          } else {
            const float* src = image + (iy * g.in_w + ix) * c;
            std::copy(src, src + c, dst + kx * c);
          }
        }
      }
    }
  }
}

void col2im_add(const float* cols, const ConvGeometry& g, Tensor& grad_input, std::int64_t n) {
  col2im_add_rows(cols, g, grad_input, n, 0, g.in_h);
}

void col2im_add_rows(const float* cols, const ConvGeometry& g, Tensor& grad_input, std::int64_t n,
                     std::int64_t y_begin, std::int64_t y_end) {
  const Shape& s = grad_input.shape();
  if (s.h() != g.in_h || s.w() != g.in_w || s.c() != g.channels) {
    throw std::invalid_argument("col2im_add: tensor shape does not match geometry");
  }
  if (y_begin < 0 || y_end > g.in_h || y_begin > y_end) {
    throw std::invalid_argument("col2im_add_rows: input row range out of bounds");
  }
  const std::int64_t c = g.channels;
  // Only output rows whose kh-tall receptive field intersects [y_begin, y_end)
  // can contribute: oy*stride - pad_top + ky in range for some ky in [0, kh).
  const std::int64_t oy_lo =
      std::max<std::int64_t>(0, (y_begin + g.pad_top - g.kh + g.stride) / g.stride);
  const std::int64_t oy_hi = std::min(g.out_h - 1, (y_end - 1 + g.pad_top) / g.stride);
  for (std::int64_t oy = oy_lo; oy <= oy_hi; ++oy) {
    for (std::int64_t ox = 0; ox < g.out_w; ++ox) {
      const float* row = cols + (oy * g.out_w + ox) * g.cols();
      for (std::int64_t ky = 0; ky < g.kh; ++ky) {
        const std::int64_t iy = oy * g.stride - g.pad_top + ky;
        if (iy < y_begin || iy >= y_end) continue;
        for (std::int64_t kx = 0; kx < g.kw; ++kx) {
          const std::int64_t ix = ox * g.stride - g.pad_left + kx;
          if (ix < 0 || ix >= g.in_w) continue;
          const float* src = row + (ky * g.kw + kx) * c;
          float* dst = grad_input.raw() + s.offset(n, iy, ix, 0);
          for (std::int64_t ch = 0; ch < c; ++ch) dst[ch] += src[ch];
        }
      }
    }
  }
}

}  // namespace sesr::nn
