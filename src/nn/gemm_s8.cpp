// Packed u8 x s8 GEMM micro-kernels for the int8 serving path. See
// gemm_s8.hpp for the layout and exactness contract; the structure mirrors
// gemm.cpp (pack panels, register-tiled micro-kernel, atomic ISA dispatch)
// with two differences: a single full-k sweep per micro-tile replaces the
// kKc k-blocking (int8 panels are small enough for L1 at SESR conv sizes),
// and each micro-kernel build consumes its own A-panel byte layout, so the
// dispatch hands out a {kernel, layout} descriptor instead of a bare
// function pointer.
//
// Accumulator wraparound: the raw offset-binary accumulator (sum of u8*s8
// plus the 128*colsum compensation term) may not fit int32 for extreme k even
// when the true s8*s8 product does. All accumulation therefore runs modulo
// 2^32 — uint32 in the scalar kernel, hardware-wrapping SIMD adds in the
// vector kernels — and the final int32 result is exact two's-complement
// whenever the true product fits, which the int64 reference in src/check
// validates (it throws on genuine int32 overflow instead of comparing).
#include "nn/gemm_s8.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#include <immintrin.h>
#endif

#include "tensor/scratch.hpp"

// The VEX-encoded AVX-VNNI intrinsics (_mm256_dpbusd_avx_epi32) need gcc 11+
// or clang 14+; older compilers fall back to the AVX2 madd kernel.
#if (defined(__x86_64__) || defined(__i386__)) &&                                        \
    ((defined(__clang_major__) && __clang_major__ >= 14) ||                              \
     (!defined(__clang__) && defined(__GNUC__) && __GNUC__ >= 11))
#define SESR_INT8_VNNI 1
#else
#define SESR_INT8_VNNI 0
#endif

namespace sesr::nn {

namespace {

constexpr std::int64_t kMrS8 = 6;  // rows per micro-tile
constexpr std::int64_t kNrS8 = 8;  // columns per micro-tile (one __m256i of int32)
constexpr std::int64_t kMcS8 = 96; // rows per packed A block

// Per-tile write-back context. Exactly one of c / ci32 is set: c gets the
// fused dequant->bias->activation store, ci32 the raw compensated int32
// accumulators (audit path). Column-indexed pointers are pre-offset to the
// tile's first column.
struct S8TileCtx {
  const std::int32_t* colsum = nullptr;
  const float* scale = nullptr;
  const float* bias = nullptr;
  Epilogue::Act act = Epilogue::Act::kNone;
  const float* alpha = nullptr;
  float* c = nullptr;
  std::int32_t* ci32 = nullptr;
  std::int64_t ldc = 0;
  std::int64_t mr = 0;
  std::int64_t nr = 0;
};

// Packed A is plain row-major: each 6-row tile holds 6 consecutive rows of
// k4 = 4*kg bytes (k rounded up to the dot-4 group, tail padded with the
// quantized zero point). Packing a tile is then just one row-source write per
// row — no byte scatter — which matters because the pack runs once per A
// element while the kernels amortize it over n. `lda` (= k4) is the row
// stride inside a tile.
using S8MicroFn = void (*)(const std::uint8_t* ap, std::int64_t lda, const std::uint8_t* bp,
                           std::int64_t kg, const S8TileCtx& tile);

struct S8Kernel {
  S8MicroFn fn;
};

inline std::int32_t load_le_i32(const std::uint8_t* p) {
  std::int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Offset removal + dequant + bias + activation for one micro-tile of wrapped
// accumulators. The uint32 -> int32 conversion is modular (C++20), so the
// result is the exact s8 x s8 accumulator whenever that fits int32. The fmaf
// keeps the dequant store single-rounded in every kernel build AND in the
// src/check reference regardless of -ffp-contract, so bit-equality between
// them is a property of the expression, not of compiler flags.
inline void s8_store_tile(const std::uint32_t acc[kMrS8][kNrS8], const S8TileCtx& t) {
  for (std::int64_t i = 0; i < t.mr; ++i) {
    if (t.ci32 != nullptr) {
      std::int32_t* out = t.ci32 + i * t.ldc;
      for (std::int64_t j = 0; j < t.nr; ++j) {
        out[j] = static_cast<std::int32_t>(acc[i][j] -
                                           static_cast<std::uint32_t>(t.colsum[j]) * 128U);
      }
      continue;
    }
    float* out = t.c + i * t.ldc;
    for (std::int64_t j = 0; j < t.nr; ++j) {
      const std::int32_t v = static_cast<std::int32_t>(
          acc[i][j] - static_cast<std::uint32_t>(t.colsum[j]) * 128U);
      float f = std::fmaf(static_cast<float>(v), t.scale[j],
                          t.bias != nullptr ? t.bias[j] : 0.0F);
      if (t.act == Epilogue::Act::kRelu) {
        f = f > 0.0F ? f : 0.0F;
      } else if (t.act == Epilogue::Act::kPRelu) {
        f = f > 0.0F ? f : t.alpha[j] * f;
      }
      out[j] = f;
    }
  }
}

#if defined(__x86_64__) || defined(__i386__)
// Vector write-back for full-width fp32 tiles (nr == 8, dequant path). Each
// lane computes exactly the scalar expression: vcvtdq2ps matches the scalar
// int->float cast (round-to-nearest), vfmadd matches the single-rounded fmaf,
// and-with-compare-mask matches `f > 0 ? f : 0` (false lanes become +0.0f,
// same as the scalar 0.0F arm, including for f = -0.0 and NaN), blendv
// matches the PReLU ternary. Partial tiles and the i32 audit path fall back
// to the scalar store.
__attribute__((target("avx2,fma"))) void s8_store_tile_avx2(
    const __m256i acc[kMrS8], const S8TileCtx& t) {
  const __m256i comp = _mm256_mullo_epi32(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t.colsum)), _mm256_set1_epi32(128));
  const __m256 scale = _mm256_loadu_ps(t.scale);
  const __m256 bias = t.bias != nullptr ? _mm256_loadu_ps(t.bias) : _mm256_setzero_ps();
  const __m256 zero = _mm256_setzero_ps();
  for (std::int64_t i = 0; i < t.mr; ++i) {
    const __m256 v = _mm256_cvtepi32_ps(_mm256_sub_epi32(acc[i], comp));
    __m256 f = _mm256_fmadd_ps(v, scale, bias);
    if (t.act == Epilogue::Act::kRelu) {
      f = _mm256_and_ps(f, _mm256_cmp_ps(f, zero, _CMP_GT_OQ));
    } else if (t.act == Epilogue::Act::kPRelu) {
      const __m256 neg = _mm256_mul_ps(_mm256_loadu_ps(t.alpha), f);
      f = _mm256_blendv_ps(neg, f, _mm256_cmp_ps(f, zero, _CMP_GT_OQ));
    }
    _mm256_storeu_ps(t.c + i * t.ldc, f);
  }
}

// Dispatches a vector-kernel tile store: vector write-back when the tile is
// full width on the fused float path, scalar otherwise.
__attribute__((target("avx2,fma"))) inline void s8_store_tile_vec(const __m256i vacc[kMrS8],
                                                                  const S8TileCtx& t) {
  if (t.nr == kNrS8 && t.ci32 == nullptr) {
    s8_store_tile_avx2(vacc, t);
    return;
  }
  alignas(32) std::uint32_t acc[kMrS8][kNrS8];
  for (std::int64_t i = 0; i < kMrS8; ++i) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc[i]), vacc[i]);
  }
  s8_store_tile(acc, t);
}
#endif  // x86

// Portable scalar kernel.
void s8_micro_generic(const std::uint8_t* ap, std::int64_t lda, const std::uint8_t* bp,
                      std::int64_t kg, const S8TileCtx& tile) {
  std::uint32_t acc[kMrS8][kNrS8] = {};
  for (std::int64_t g = 0; g < kg; ++g) {
    const std::uint8_t* b = bp + g * kNrS8 * 4;
    for (std::int64_t i = 0; i < kMrS8; ++i) {
      const std::uint8_t* a = ap + i * lda + g * 4;
      for (std::int64_t j = 0; j < kNrS8; ++j) {
        std::int32_t s = 0;
        for (int t = 0; t < 4; ++t) {
          s += static_cast<std::int32_t>(a[t]) *
               static_cast<std::int32_t>(static_cast<std::int8_t>(b[j * 4 + t]));
        }
        acc[i][j] += static_cast<std::uint32_t>(s);
      }
    }
  }
  s8_store_tile(acc, tile);
}

#if defined(__x86_64__) || defined(__i386__)

// AVX2 kernel. maddubs_epi16's intermediate s16 pair-sum saturates at
// 255*127*2 > 32767, so exactness forces the widening route instead: the
// B panel is split into even/odd k-positions as sign-extended s16 lanes
// (shift tricks, no extra tables), and each broadcast A dword (a0 a1 a2 a3)
// splits the same way in-register — mask the odd bytes for the (a0, a2) u16
// lanes, shift right 8 for (a1, a3). madd_epi16 then gives the exact int32
// pair-dot: u8 operands are 0..255 as s16, products <= 255*127 per lane,
// pair sums fit int32.
__attribute__((target("avx2,fma"))) void s8_micro_avx2(const std::uint8_t* ap, std::int64_t lda,
                                                   const std::uint8_t* bp, std::int64_t kg,
                                                   const S8TileCtx& tile) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256();
  __m256i acc3 = _mm256_setzero_si256();
  __m256i acc4 = _mm256_setzero_si256();
  __m256i acc5 = _mm256_setzero_si256();
  const __m256i lo_mask = _mm256_set1_epi16(0x00FF);
  for (std::int64_t g = 0; g < kg; ++g) {
    const __m256i braw = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + g * 32));
    const __m256i beven = _mm256_srai_epi16(_mm256_slli_epi16(braw, 8), 8);  // k-pos 0, 2
    const __m256i bodd = _mm256_srai_epi16(braw, 8);                         // k-pos 1, 3
    const std::uint8_t* a = ap + g * 4;
#define SESR_S8_ROW(accr, idx)                                                          \
  {                                                                                     \
    const __m256i araw = _mm256_set1_epi32(load_le_i32(a + (idx) * lda));               \
    const __m256i ae = _mm256_and_si256(araw, lo_mask);                                 \
    const __m256i ao = _mm256_srli_epi16(araw, 8);                                      \
    accr = _mm256_add_epi32(accr, _mm256_add_epi32(_mm256_madd_epi16(ae, beven),        \
                                                   _mm256_madd_epi16(ao, bodd)));       \
  }
    SESR_S8_ROW(acc0, 0)
    SESR_S8_ROW(acc1, 1)
    SESR_S8_ROW(acc2, 2)
    SESR_S8_ROW(acc3, 3)
    SESR_S8_ROW(acc4, 4)
    SESR_S8_ROW(acc5, 5)
#undef SESR_S8_ROW
  }
  const __m256i acc[kMrS8] = {acc0, acc1, acc2, acc3, acc4, acc5};
  s8_store_tile_vec(acc, tile);
}

#if SESR_INT8_VNNI
// AVX-VNNI kernel: one dpbusd per (row, 4-k group) replaces the broadcast +
// 2x madd + 2x add sequence. VPDPBUSD wraps (no saturation; that is the
// VPDPBUSDS variant), so it is exact under the same modular contract.
__attribute__((target("avx2,fma,avxvnni"))) void s8_micro_vnni(const std::uint8_t* ap,
                                                           std::int64_t lda,
                                                           const std::uint8_t* bp,
                                                           std::int64_t kg,
                                                           const S8TileCtx& tile) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256();
  __m256i acc3 = _mm256_setzero_si256();
  __m256i acc4 = _mm256_setzero_si256();
  __m256i acc5 = _mm256_setzero_si256();
  for (std::int64_t g = 0; g < kg; ++g) {
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + g * 32));
    const std::uint8_t* a = ap + g * 4;
    acc0 = _mm256_dpbusd_avx_epi32(acc0, _mm256_set1_epi32(load_le_i32(a + 0 * lda)), b);
    acc1 = _mm256_dpbusd_avx_epi32(acc1, _mm256_set1_epi32(load_le_i32(a + 1 * lda)), b);
    acc2 = _mm256_dpbusd_avx_epi32(acc2, _mm256_set1_epi32(load_le_i32(a + 2 * lda)), b);
    acc3 = _mm256_dpbusd_avx_epi32(acc3, _mm256_set1_epi32(load_le_i32(a + 3 * lda)), b);
    acc4 = _mm256_dpbusd_avx_epi32(acc4, _mm256_set1_epi32(load_le_i32(a + 4 * lda)), b);
    acc5 = _mm256_dpbusd_avx_epi32(acc5, _mm256_set1_epi32(load_le_i32(a + 5 * lda)), b);
  }
  const __m256i acc[kMrS8] = {acc0, acc1, acc2, acc3, acc4, acc5};
  s8_store_tile_vec(acc, tile);
}
#endif  // SESR_INT8_VNNI

// AVX-VNNI (VEX) is CPUID.(EAX=7, ECX=1):EAX[4]. Raw cpuid instead of
// __builtin_cpu_supports("avxvnni") because older clang rejects the feature
// string at compile time; AVX2 support (checked separately) implies the OS
// ymm-state support the instruction needs.
bool cpu_has_avxvnni() {
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid_count(7, 1, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (eax & (1U << 4)) != 0;
}
#endif  // x86

bool int8_simd_disabled() {
  static const bool disabled = [] {
    const char* env = std::getenv("SESR_DISABLE_INT8_SIMD");
    return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  }();
  return disabled;
}

constexpr S8Kernel kKernelGeneric{s8_micro_generic};
#if defined(__x86_64__) || defined(__i386__)
constexpr S8Kernel kKernelAvx2{s8_micro_avx2};
#if SESR_INT8_VNNI
constexpr S8Kernel kKernelVnni{s8_micro_vnni};
#endif
#endif

const S8Kernel* pick_s8_kernel() {
#if defined(__x86_64__) || defined(__i386__)
  if (!int8_simd_disabled() && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma")) {
#if SESR_INT8_VNNI
    if (cpu_has_avxvnni()) return &kKernelVnni;
#endif
    return &kKernelAvx2;
  }
#endif
  return &kKernelGeneric;
}

// Atomic for the same reason as g_micro_kernel in gemm.cpp: the audit flips
// the dispatch between sweeps while pool workers may be reading it.
std::atomic<const S8Kernel*> g_s8_kernel{pick_s8_kernel()};

// Packs B columns [0, n) into ceil(n/8) panels of kg groups; each group holds
// 8 columns x 4 consecutive k values (the dot-4 unit every kernel consumes).
// Out-of-range k and columns pad with 0, which keeps both the accumulator and
// the column sums unchanged.
void pack_b_s8(const std::int8_t* b, std::int64_t k, std::int64_t n, std::int64_t kg,
               std::uint8_t* bp) {
  for (std::int64_t jt = 0; jt * kNrS8 < n; ++jt) {
    std::uint8_t* panel = bp + jt * kg * kNrS8 * 4;
    for (std::int64_t g = 0; g < kg; ++g) {
      for (std::int64_t j = 0; j < kNrS8; ++j) {
        const std::int64_t col = jt * kNrS8 + j;
        std::uint8_t* dst = panel + g * kNrS8 * 4 + j * 4;
        for (std::int64_t t = 0; t < 4; ++t) {
          const std::int64_t kk = g * 4 + t;
          dst[t] = (col < n && kk < k) ? static_cast<std::uint8_t>(b[kk * n + col])
                                       : static_cast<std::uint8_t>(0);
        }
      }
    }
  }
}

// Packs rows [i0, i0 + mc) generated by `src` into row-major 6-row tiles:
// tile row i occupies bytes [i * k4, i * k4 + k4). The row source writes
// straight into its destination row — packing costs exactly one pass over
// the A bytes. Padding (k tail, missing tile rows) is 128 — quantized zero —
// and only ever multiplies zero B padding, so any value would do; 128 keeps
// panels deterministic.
void pack_a_s8(S8RowSource src, const void* ctx, std::int64_t i0, std::int64_t mc,
               std::int64_t k, std::int64_t kg, std::uint8_t* ap) {
  const std::int64_t k4 = kg * 4;
  for (std::int64_t ii = 0; ii < mc; ii += kMrS8) {
    std::uint8_t* tile = ap + (ii / kMrS8) * kMrS8 * k4;
    for (std::int64_t i = 0; i < kMrS8; ++i) {
      std::uint8_t* row = tile + i * k4;
      if (ii + i < mc) {
        src(ctx, i0 + ii + i, 0, k, row);
        std::memset(row + k, 128, static_cast<std::size_t>(k4 - k));
      } else {
        std::memset(row, 128, static_cast<std::size_t>(k4));
      }
    }
  }
}

// Macro-kernel: packs all of B once (int8 weight panels are k*n bytes — L2
// resident for every SESR conv), then walks kMcS8-row A blocks; the inner
// tile loop keeps one B panel hot across all row tiles.
void gemm_s8_driver(S8RowSource src, const void* ctx, const std::int8_t* b,
                    const std::int32_t* colsum, float* c, std::int32_t* ci32, std::int64_t m,
                    std::int64_t k, std::int64_t n, const S8Epilogue* epi) {
  if (m <= 0 || n <= 0) return;
  const S8Kernel& kern = *g_s8_kernel.load(std::memory_order_relaxed);
  const std::int64_t kg = (k + 3) / 4;
  const std::int64_t n_tiles = (n + kNrS8 - 1) / kNrS8;
  const std::int64_t b_panel = kg * kNrS8 * 4;
  const std::int64_t k4 = kg * 4;
  const std::int64_t a_panel = kMrS8 * k4;
  std::span<std::uint8_t> bp =
      scratch_bytes(ScratchSlot::kS8PackB, static_cast<std::size_t>(n_tiles * b_panel));
  pack_b_s8(b, k, n, kg, bp.data());
  for (std::int64_t i0 = 0; i0 < m; i0 += kMcS8) {
    const std::int64_t mc = std::min(kMcS8, m - i0);
    const std::int64_t m_tiles = (mc + kMrS8 - 1) / kMrS8;
    std::span<std::uint8_t> ap =
        scratch_bytes(ScratchSlot::kS8PackA, static_cast<std::size_t>(m_tiles * a_panel));
    pack_a_s8(src, ctx, i0, mc, k, kg, ap.data());
    for (std::int64_t jt = 0; jt < n_tiles; ++jt) {
      const std::int64_t j0 = jt * kNrS8;
      for (std::int64_t it = 0; it < m_tiles; ++it) {
        const std::int64_t ii = it * kMrS8;
        S8TileCtx tile;
        tile.colsum = colsum + j0;
        tile.ldc = n;
        tile.mr = std::min(kMrS8, mc - ii);
        tile.nr = std::min(kNrS8, n - j0);
        if (ci32 != nullptr) {
          tile.ci32 = ci32 + (i0 + ii) * n + j0;
        } else {
          tile.c = c + (i0 + ii) * n + j0;
          tile.scale = epi->scale + j0;
          tile.bias = epi->bias != nullptr ? epi->bias + j0 : nullptr;
          tile.act = epi->act;
          tile.alpha = epi->prelu_alpha != nullptr ? epi->prelu_alpha + j0 : nullptr;
        }
        kern.fn(ap.data() + it * a_panel, k4, bp.data() + jt * b_panel, kg, tile);
      }
    }
  }
}

struct ContigS8 {
  const std::uint8_t* a;
  std::int64_t k;
};

void contig_s8_row(const void* ctx, std::int64_t row, std::int64_t p0, std::int64_t kc,
                   std::uint8_t* dst) {
  const auto* src = static_cast<const ContigS8*>(ctx);
  std::memcpy(dst, src->a + row * src->k + p0, static_cast<std::size_t>(kc));
}

void check_s8_sizes(std::size_t a_size, std::span<const std::int8_t> b,
                    std::span<const std::int32_t> colsum, std::size_t c_size, std::int64_t m,
                    std::int64_t k, std::int64_t n, bool has_a) {
  if (m < 0 || k < 0 || n < 0) throw std::invalid_argument("gemm_s8: negative dimension");
  if (has_a && a_size < static_cast<std::size_t>(m * k)) {
    throw std::invalid_argument("gemm_s8: A span too small");
  }
  if (b.size() < static_cast<std::size_t>(k * n)) {
    throw std::invalid_argument("gemm_s8: B span too small");
  }
  if (colsum.size() < static_cast<std::size_t>(n)) {
    throw std::invalid_argument("gemm_s8: colsum span too small");
  }
  if (c_size < static_cast<std::size_t>(m * n)) {
    throw std::invalid_argument("gemm_s8: C span too small");
  }
}

void check_s8_epilogue(const S8Epilogue& epi) {
  if (epi.scale == nullptr) throw std::invalid_argument("gemm_s8: epilogue.scale is required");
  if (epi.act == Epilogue::Act::kPRelu && epi.prelu_alpha == nullptr) {
    throw std::invalid_argument("gemm_s8: PReLU epilogue requires prelu_alpha");
  }
}

void quantize_u8_scalar(const float* src, std::uint8_t* dst, std::int64_t n, float inv) {
  for (std::int64_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(static_cast<std::int32_t>(quantize_value(src[i], inv)) +
                                       128);
  }
}

#if defined(__x86_64__) || defined(__i386__)
// Vectorized quantize_value + 128. Exactness is an expression-level mirror of
// the scalar form: clamp to [-127, 127] first, add copysign(0.5, r) (equal to
// the r >= 0 ternary for every non-NaN input including -0.0, where both sides
// round to 0), then truncate — cvttps is the C cast. Values land in [1, 255],
// so the signed i32->i16 and unsigned i16->u8 packs never saturate; the final
// 32-bit permute undoes the packs' 128-bit lane interleave.
__attribute__((target("avx2"))) void quantize_u8_avx2(const float* src, std::uint8_t* dst,
                                                      std::int64_t n, float inv) {
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256 vmax = _mm256_set1_ps(127.0F);
  const __m256 vmin = _mm256_set1_ps(-127.0F);
  const __m256 vhalf = _mm256_set1_ps(0.5F);
  const __m256 vsign = _mm256_set1_ps(-0.0F);
  const __m256i v128 = _mm256_set1_epi32(128);
  const __m256i perm = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i q[4];
    for (int t = 0; t < 4; ++t) {
      __m256 r = _mm256_mul_ps(_mm256_loadu_ps(src + i + t * 8), vinv);
      r = _mm256_max_ps(_mm256_min_ps(r, vmax), vmin);
      const __m256 half = _mm256_or_ps(_mm256_and_ps(r, vsign), vhalf);
      q[t] = _mm256_add_epi32(_mm256_cvttps_epi32(_mm256_add_ps(r, half)), v128);
    }
    const __m256i p01 = _mm256_packs_epi32(q[0], q[1]);
    const __m256i p23 = _mm256_packs_epi32(q[2], q[3]);
    const __m256i packed = _mm256_permutevar8x32_epi32(_mm256_packus_epi16(p01, p23), perm);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), packed);
  }
  quantize_u8_scalar(src + i, dst + i, n - i, inv);
}
#endif  // x86

}  // namespace

void quantize_u8_run(const float* src, std::uint8_t* dst, std::int64_t n, float inv_scale) {
#if defined(__x86_64__) || defined(__i386__)
  static const bool use_avx2 = !int8_simd_disabled() && __builtin_cpu_supports("avx2");
  if (use_avx2) {
    quantize_u8_avx2(src, dst, n, inv_scale);
    return;
  }
#endif
  quantize_u8_scalar(src, dst, n, inv_scale);
}

std::vector<std::int32_t> s8_column_sums(std::span<const std::int8_t> b, std::int64_t k,
                                         std::int64_t n) {
  if (b.size() < static_cast<std::size_t>(k * n)) {
    throw std::invalid_argument("s8_column_sums: B span too small");
  }
  std::vector<std::int32_t> sums(static_cast<std::size_t>(n), 0);
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const std::int8_t* row = b.data() + kk * n;
    for (std::int64_t j = 0; j < n; ++j) sums[static_cast<std::size_t>(j)] += row[j];
  }
  return sums;
}

bool gemm_s8_avx2_supported() {
#if defined(__x86_64__) || defined(__i386__)
  return !int8_simd_disabled() && __builtin_cpu_supports("avx2") &&
         __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool gemm_s8_vnni_supported() {
#if (defined(__x86_64__) || defined(__i386__)) && SESR_INT8_VNNI
  return !int8_simd_disabled() && __builtin_cpu_supports("avx2") &&
         __builtin_cpu_supports("fma") && cpu_has_avxvnni();
#else
  return false;
#endif
}

bool set_gemm_s8_isa(GemmS8Isa isa) {
  switch (isa) {
    case GemmS8Isa::kAuto:
      g_s8_kernel.store(pick_s8_kernel(), std::memory_order_relaxed);
      return true;
    case GemmS8Isa::kGeneric:
      g_s8_kernel.store(&kKernelGeneric, std::memory_order_relaxed);
      return true;
    case GemmS8Isa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      if (gemm_s8_avx2_supported()) {
        g_s8_kernel.store(&kKernelAvx2, std::memory_order_relaxed);
        return true;
      }
#endif
      return false;
    case GemmS8Isa::kVnni:
#if (defined(__x86_64__) || defined(__i386__)) && SESR_INT8_VNNI
      if (gemm_s8_vnni_supported()) {
        g_s8_kernel.store(&kKernelVnni, std::memory_order_relaxed);
        return true;
      }
#endif
      return false;
  }
  return false;
}

void gemm_s8_rows(S8RowSource src, const void* ctx, std::span<const std::int8_t> b,
                  std::span<const std::int32_t> colsum, std::span<float> c, std::int64_t m,
                  std::int64_t k, std::int64_t n, const S8Epilogue& epilogue) {
  check_s8_sizes(0, b, colsum, c.size(), m, k, n, /*has_a=*/false);
  check_s8_epilogue(epilogue);
  gemm_s8_driver(src, ctx, b.data(), colsum.data(), c.data(), nullptr, m, k, n, &epilogue);
}

void gemm_s8(std::span<const std::uint8_t> a, std::span<const std::int8_t> b,
             std::span<const std::int32_t> colsum, std::span<float> c, std::int64_t m,
             std::int64_t k, std::int64_t n, const S8Epilogue& epilogue) {
  check_s8_sizes(a.size(), b, colsum, c.size(), m, k, n, /*has_a=*/true);
  check_s8_epilogue(epilogue);
  const ContigS8 src{a.data(), k};
  gemm_s8_driver(contig_s8_row, &src, b.data(), colsum.data(), c.data(), nullptr, m, k, n,
                 &epilogue);
}

void gemm_s8_i32(std::span<const std::uint8_t> a, std::span<const std::int8_t> b,
                 std::span<const std::int32_t> colsum, std::span<std::int32_t> c, std::int64_t m,
                 std::int64_t k, std::int64_t n) {
  check_s8_sizes(a.size(), b, colsum, c.size(), m, k, n, /*has_a=*/true);
  const ContigS8 src{a.data(), k};
  gemm_s8_driver(contig_s8_row, &src, b.data(), colsum.data(), nullptr, c.data(), m, k, n,
                 nullptr);
}

}  // namespace sesr::nn
