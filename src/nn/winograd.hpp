// Winograd F(2x2, 3x3) convolution.
//
// The collapsed SESR body is a chain of 3x3 convolutions — exactly the case
// Winograd accelerates (2.25x fewer multiplies: 16 instead of 36 per 2x2
// output tile). Provided as an optimized inference path, validated bit-close
// against the im2col path and measured in bench_micro_kernels. SAME padding,
// stride 1, odd image sizes handled by edge padding.
#pragma once

#include "tensor/tensor.hpp"

namespace sesr::nn {

// Drop-in replacement for conv2d(input, weight, Padding::kSame) with a
// (3, 3, in_c, out_c) kernel.
Tensor conv2d_winograd_3x3(const Tensor& input, const Tensor& weight);

// Weight transform U = G w G^T for all (in_c, out_c) pairs, exposed so a
// deployed network can pre-transform once; shape (4, 4, in_c, out_c).
Tensor winograd_weight_transform(const Tensor& weight);

// Forward with pre-transformed weights.
Tensor conv2d_winograd_3x3_pretransformed(const Tensor& input, const Tensor& transformed,
                                          std::int64_t out_c);

}  // namespace sesr::nn
