#include "nn/group_conv.hpp"

#include <stdexcept>

#include "nn/init.hpp"
#include "tensor/tensor_ops.hpp"
#include "tensor/thread_pool.hpp"

namespace sesr::nn {

namespace {
struct GroupDims {
  std::int64_t in_per_group;
  std::int64_t out_per_group;
};

GroupDims check_grouping(const Shape& ws, std::int64_t in_c, std::int64_t groups) {
  if (groups < 1) throw std::invalid_argument("conv2d_grouped: groups must be >= 1");
  if (in_c % groups != 0 || ws.dim(3) % groups != 0) {
    throw std::invalid_argument("conv2d_grouped: channels not divisible by groups");
  }
  if (ws.dim(2) != in_c / groups) {
    throw std::invalid_argument("conv2d_grouped: weight in_c must be in_c/groups");
  }
  return {in_c / groups, ws.dim(3) / groups};
}

// Kernel slice for group g: (kh, kw, in_per_group, out_per_group).
Tensor slice_kernel(const Tensor& w, std::int64_t g, const GroupDims& d) {
  const Shape& s = w.shape();
  Tensor out(s.dim(0), s.dim(1), s.dim(2), d.out_per_group);
  for (std::int64_t ky = 0; ky < s.dim(0); ++ky) {
    for (std::int64_t kx = 0; kx < s.dim(1); ++kx) {
      for (std::int64_t ic = 0; ic < s.dim(2); ++ic) {
        for (std::int64_t oc = 0; oc < d.out_per_group; ++oc) {
          out(ky, kx, ic, oc) = w(ky, kx, ic, g * d.out_per_group + oc);
        }
      }
    }
  }
  return out;
}

void accumulate_kernel_slice(Tensor& w, std::int64_t g, const GroupDims& d, const Tensor& grad) {
  const Shape& s = w.shape();
  for (std::int64_t ky = 0; ky < s.dim(0); ++ky) {
    for (std::int64_t kx = 0; kx < s.dim(1); ++kx) {
      for (std::int64_t ic = 0; ic < s.dim(2); ++ic) {
        for (std::int64_t oc = 0; oc < d.out_per_group; ++oc) {
          w(ky, kx, ic, g * d.out_per_group + oc) += grad(ky, kx, ic, oc);
        }
      }
    }
  }
}
}  // namespace

Tensor conv2d_grouped(const Tensor& input, const Tensor& weight, std::int64_t groups,
                      Padding padding) {
  const GroupDims d = check_grouping(weight.shape(), input.shape().c(), groups);
  const ConvGeometry geo = same_geometry(input.shape().h(), input.shape().w(), d.in_per_group,
                                         weight.shape().dim(0), weight.shape().dim(1));
  const std::int64_t out_h = padding == Padding::kSame
                                 ? geo.out_h
                                 : input.shape().h() - weight.shape().dim(0) + 1;
  const std::int64_t out_w = padding == Padding::kSame
                                 ? geo.out_w
                                 : input.shape().w() - weight.shape().dim(1) + 1;
  Tensor out(input.shape().n(), out_h, out_w, d.out_per_group * groups);
  // Groups are independent and write disjoint channel slices; the inner conv2d
  // detects the nested call and runs its stripes inline.
  ThreadPool::global().parallel_for(0, groups, [&](std::int64_t g) {
    Tensor xg = sesr::slice_channels(input, g * d.in_per_group, d.in_per_group);
    Tensor yg = conv2d(xg, slice_kernel(weight, g, d), padding);
    sesr::write_channels(out, g * d.out_per_group, yg);
  });
  return out;
}

Tensor grouped_to_dense(const Tensor& weight, std::int64_t groups) {
  const Shape& s = weight.shape();
  const std::int64_t in_per = s.dim(2);
  const std::int64_t out_per = s.dim(3) / groups;
  Tensor dense(kernel_shape(s.dim(0), s.dim(1), in_per * groups, s.dim(3)));
  for (std::int64_t g = 0; g < groups; ++g) {
    for (std::int64_t ky = 0; ky < s.dim(0); ++ky) {
      for (std::int64_t kx = 0; kx < s.dim(1); ++kx) {
        for (std::int64_t ic = 0; ic < in_per; ++ic) {
          for (std::int64_t oc = 0; oc < out_per; ++oc) {
            dense(ky, kx, g * in_per + ic, g * out_per + oc) =
                weight(ky, kx, ic, g * out_per + oc);
          }
        }
      }
    }
  }
  return dense;
}

GroupedConv2d::GroupedConv2d(std::string name, std::int64_t kh, std::int64_t kw, std::int64_t in_c,
                             std::int64_t out_c, std::int64_t groups, Padding padding, Rng& rng)
    : name_(std::move(name)),
      groups_(groups),
      in_c_(in_c),
      out_c_(out_c),
      padding_(padding),
      weight_(name_ + ".weight",
              (check_grouping(kernel_shape(kh, kw, in_c / std::max<std::int64_t>(groups, 1), out_c),
                              in_c, groups),
               glorot_uniform_kernel(kh, kw, in_c / groups, out_c, rng))) {}

Tensor GroupedConv2d::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  return conv2d_grouped(input, weight_.value, groups_, padding_);
}

Tensor GroupedConv2d::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("GroupedConv2d::backward before forward");
  const GroupDims d = check_grouping(weight_.value.shape(), in_c_, groups_);
  Tensor grad_input(cached_input_.shape());
  // Each group touches disjoint slices of weight_.grad and grad_input, so the
  // group loop parallelizes without synchronization.
  ThreadPool::global().parallel_for(0, groups_, [&](std::int64_t g) {
    Tensor xg = sesr::slice_channels(cached_input_, g * d.in_per_group, d.in_per_group);
    Tensor gg = sesr::slice_channels(grad_output, g * d.out_per_group, d.out_per_group);
    Tensor wg = slice_kernel(weight_.value, g, d);
    Tensor gw(wg.shape());
    conv2d_backward_weight(xg, gg, gw, padding_);
    accumulate_kernel_slice(weight_.grad, g, d, gw);
    Tensor gi = conv2d_backward_input(gg, wg, xg.shape(), padding_);
    sesr::write_channels(grad_input, g * d.in_per_group, gi);
  });
  return grad_input;
}

}  // namespace sesr::nn
