#include "nn/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "tensor/scratch.hpp"

namespace sesr::nn {

namespace {
void check_sizes(std::span<const float> a, std::span<const float> b, std::span<float> c,
                 std::int64_t m, std::int64_t k, std::int64_t n, bool a_transposed,
                 bool b_transposed) {
  const std::int64_t a_need = a_transposed ? k * m : m * k;
  const std::int64_t b_need = b_transposed ? n * k : k * n;
  if (m < 0 || k < 0 || n < 0 || static_cast<std::int64_t>(a.size()) < a_need ||
      static_cast<std::int64_t>(b.size()) < b_need || static_cast<std::int64_t>(c.size()) < m * n) {
    throw std::invalid_argument("gemm: buffer sizes inconsistent with m/k/n");
  }
}

// ---------------------------------------------------------------------------
// Register-tiled kernel: C tiles of MR x NR accumulate in registers while A/B
// stream from packed panels. Blocking constants (floats):
//   KC * NR panel of B  ~ 16 KiB  -> L1-resident across one A block
//   MC * KC panel of A  ~ 96 KiB  -> L2-resident across one B panel sweep
constexpr std::int64_t kMr = 6;
constexpr std::int64_t kNr = 16;
constexpr std::int64_t kKc = 256;
constexpr std::int64_t kMc = 96;  // multiple of kMr
constexpr std::int64_t kNc = 1024;

// Logical matrix element (r, c) of A/B is src[r * rs + c * cs]; the stride
// pair folds the transposed variants into one packing routine.
void pack_a_block(const float* a, std::int64_t rs, std::int64_t cs, std::int64_t i0,
                  std::int64_t mc, std::int64_t p0, std::int64_t kc, float* dst) {
  for (std::int64_t ii = 0; ii < mc; ii += kMr) {
    const std::int64_t ib = std::min(kMr, mc - ii);
    float* panel = dst + ii * kc;
    for (std::int64_t p = 0; p < kc; ++p) {
      const float* src = a + (i0 + ii) * rs + (p0 + p) * cs;
      std::int64_t i = 0;
      for (; i < ib; ++i) panel[p * kMr + i] = src[i * rs];
      for (; i < kMr; ++i) panel[p * kMr + i] = 0.0F;  // pad so tiles are full
    }
  }
}

void pack_b_block(const float* b, std::int64_t rs, std::int64_t cs, std::int64_t p0,
                  std::int64_t kc, std::int64_t j0, std::int64_t nc, float* dst) {
  for (std::int64_t jj = 0; jj < nc; jj += kNr) {
    const std::int64_t jb = std::min(kNr, nc - jj);
    float* panel = dst + jj * kc;
    for (std::int64_t p = 0; p < kc; ++p) {
      const float* src = b + (p0 + p) * rs + (j0 + jj) * cs;
      std::int64_t j = 0;
      for (; j < jb; ++j) panel[p * kNr + j] = src[j * cs];
      for (; j < kNr; ++j) panel[p * kNr + j] = 0.0F;
    }
  }
}

// Fp16 packing fuses the F16C widening into the pack: each source row is
// converted once into `rowbuf` (kc or nc floats — L1-resident) and scattered
// straight into the packed panel. Staging whole mc x kc / kc x nc blocks to
// fp32 first (the obvious factoring) doubles the pack traffic through L2/L3
// and erases the bandwidth the half-width operands were meant to save.
// Conversion and panel layout are identical to convert_to_float +
// pack_a_block/pack_b_block, so results stay bit-identical to widening up
// front (tests/test_nn.cpp, Gemm.Fp16WeightsMatchWidenedFp32).
// The A side generalizes one step further: rows come from an Fp16RowSource
// callback rather than a stored matrix, so the conv path can run im2col
// inside the pack (implicit lowering — no column matrix in memory at all).
// The contiguous-matrix case is just the trivial producer below.
void pack_a_fp16_rows(Fp16RowSource src, const void* ctx, std::int64_t mr_panel, std::int64_t i0,
                      std::int64_t mc, std::int64_t p0, std::int64_t kc, float* rowbuf,
                      float* dst) {
  for (std::int64_t ii = 0; ii < mc; ii += mr_panel) {
    const std::int64_t ib = std::min(mr_panel, mc - ii);
    float* panel = dst + ii * kc;
    for (std::int64_t i = 0; i < ib; ++i) {
      src(ctx, i0 + ii + i, p0, kc, rowbuf);
      for (std::int64_t p = 0; p < kc; ++p) panel[p * mr_panel + i] = rowbuf[p];
    }
    for (std::int64_t i = ib; i < mr_panel; ++i) {
      for (std::int64_t p = 0; p < kc; ++p) panel[p * mr_panel + i] = 0.0F;
    }
  }
}

struct ContigFp16A {
  const fp16::Half* a;
  std::int64_t k;
};

void contig_fp16_row(const void* vctx, std::int64_t row, std::int64_t p0, std::int64_t kc,
                     float* dst) {
  const auto& ctx = *static_cast<const ContigFp16A*>(vctx);
  fp16::convert_to_float(ctx.a + row * ctx.k + p0, dst, kc);
}

void pack_b_fp16(const fp16::Half* b, std::int64_t n, std::int64_t p0, std::int64_t kc,
                 std::int64_t j0, std::int64_t nc, float* rowbuf, float* dst) {
  for (std::int64_t p = 0; p < kc; ++p) {
    fp16::convert_to_float(b + (p0 + p) * n + j0, rowbuf, nc);
    for (std::int64_t jj = 0; jj < nc; jj += kNr) {
      const std::int64_t jb = std::min(kNr, nc - jj);
      float* panel = dst + jj * kc + p * kNr;
      std::int64_t j = 0;
      for (; j < jb; ++j) panel[j] = rowbuf[jj + j];
      for (; j < kNr; ++j) panel[j] = 0.0F;
    }
  }
}

// The two tile bodies are inlined into each ISA-specific wrapper below so the
// compiler vectorizes them for that target. The full-tile body only ever
// indexes the accumulator array with compile-time constants — that is what
// lets the register allocator keep all 6x16 accumulators in vector registers;
// a single variable-index access would spill the array to the stack and
// cripple the inner loop (measured ~5x slower). The `omp simd` pragma (enabled
// by -fopenmp-simd, no runtime dependency) is load-bearing: without it GCC
// leaves the rank-1 update scalar even at -O3 with FMA available (measured
// ~1 GMAC/s plain vs ~39 GMAC/s with the pragma on this machine). Edge tiles
// take the variable epilogue and the spill, but they only run on the last
// row/column panel.
// `bias`, when non-null, is added on the store (only with accumulate==false).
// `epi`, when non-null, is the fused activation applied to the just-stored
// tile values; gemm_tiled only passes it on the last k-block, after the bias
// and all partial sums have landed, so the fused result matches a separate
// elementwise pass bit for bit. ReLU must stay the explicit `v > 0 ? v : 0`
// branch (not alpha=0 PReLU, which would turn negatives into -0.0F).
__attribute__((always_inline)) inline void apply_epilogue_rows(float* c, std::int64_t ldc,
                                                               std::int64_t mr, std::int64_t nr,
                                                               const Epilogue* epi) {
  if (epi == nullptr || epi->act == Epilogue::Act::kNone) return;
  if (epi->act == Epilogue::Act::kRelu) {
    for (std::int64_t i = 0; i < mr; ++i) {
      float* crow = c + i * ldc;
#pragma omp simd
      for (std::int64_t j = 0; j < nr; ++j) crow[j] = crow[j] > 0.0F ? crow[j] : 0.0F;
    }
  } else {
    const float* alpha = epi->prelu_alpha;
    for (std::int64_t i = 0; i < mr; ++i) {
      float* crow = c + i * ldc;
#pragma omp simd
      for (std::int64_t j = 0; j < nr; ++j) {
        const float v = crow[j];
        crow[j] = v > 0.0F ? v : alpha[j] * v;
      }
    }
  }
}

__attribute__((always_inline)) inline void micro_tile_full(const float* ap, const float* bp,
                                                           std::int64_t kc, float* c,
                                                           std::int64_t ldc, bool accumulate,
                                                           const float* bias,
                                                           const Epilogue* epi) {
  float acc[kMr][kNr] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * kMr;
    const float* brow = bp + p * kNr;
    for (std::int64_t i = 0; i < kMr; ++i) {
      const float av = arow[i];
#pragma omp simd
      for (std::int64_t j = 0; j < kNr; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (std::int64_t i = 0; i < kMr; ++i) {
    float* crow = c + i * ldc;
    if (accumulate) {
#pragma omp simd
      for (std::int64_t j = 0; j < kNr; ++j) crow[j] += acc[i][j];
    } else if (bias != nullptr) {
#pragma omp simd
      for (std::int64_t j = 0; j < kNr; ++j) crow[j] = acc[i][j] + bias[j];
    } else {
#pragma omp simd
      for (std::int64_t j = 0; j < kNr; ++j) crow[j] = acc[i][j];
    }
  }
  apply_epilogue_rows(c, ldc, kMr, kNr, epi);
}

__attribute__((always_inline)) inline void micro_tile_edge(const float* ap, const float* bp,
                                                           std::int64_t kc, float* c,
                                                           std::int64_t ldc, std::int64_t mr,
                                                           std::int64_t nr, bool accumulate,
                                                           const float* bias,
                                                           const Epilogue* epi) {
  float acc[kMr][kNr] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * kMr;
    const float* brow = bp + p * kNr;
    for (std::int64_t i = 0; i < kMr; ++i) {
      const float av = arow[i];
#pragma omp simd
      for (std::int64_t j = 0; j < kNr; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < nr; ++j) {
      if (accumulate) {
        crow[j] += acc[i][j];
      } else {
        crow[j] = acc[i][j] + (bias != nullptr ? bias[j] : 0.0F);
      }
    }
  }
  apply_epilogue_rows(c, ldc, mr, nr, epi);
}

__attribute__((always_inline)) inline void micro_kernel_body(
    const float* ap, const float* bp, std::int64_t kc, float* c, std::int64_t ldc,
    std::int64_t mr, std::int64_t nr, bool accumulate, const float* bias, const Epilogue* epi) {
  if (mr == kMr && nr == kNr) {
    micro_tile_full(ap, bp, kc, c, ldc, accumulate, bias, epi);
  } else {
    micro_tile_edge(ap, bp, kc, c, ldc, mr, nr, accumulate, bias, epi);
  }
}

using MicroKernelFn = void (*)(const float*, const float*, std::int64_t, float*, std::int64_t,
                               std::int64_t, std::int64_t, bool, const float*, const Epilogue*);

void micro_kernel_generic(const float* ap, const float* bp, std::int64_t kc, float* c,
                          std::int64_t ldc, std::int64_t mr, std::int64_t nr, bool accumulate,
                          const float* bias, const Epilogue* epi) {
  micro_kernel_body(ap, bp, kc, c, ldc, mr, nr, accumulate, bias, epi);
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2,fma"))) void micro_kernel_avx2(const float* ap, const float* bp,
                                                           std::int64_t kc, float* c,
                                                           std::int64_t ldc, std::int64_t mr,
                                                           std::int64_t nr, bool accumulate,
                                                           const float* bias,
                                                           const Epilogue* epi) {
  micro_kernel_body(ap, bp, kc, c, ldc, mr, nr, accumulate, bias, epi);
}
#endif

MicroKernelFn pick_micro_kernel() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) return micro_kernel_avx2;
#endif
  return micro_kernel_generic;
}

// ---------------------------------------------------------------------------
// Narrow-N register tile for the fp16 deployment GEMM. Collapsed SESR tails
// are n = 4 (out_c = 4 * scale^2 / 4 at x2), and the 6x16 tile then burns 3/4
// of every FMA on masked-out columns (~7 GFLOP/s measured). Flipping the tile
// — vector lanes along ROWS, scalar broadcast along the 4 columns — keeps
// every lane live: acc[j] spans kMrN packed rows, B values broadcast. The
// per-element summation order is still p-sequential within the k-block, so
// results are bit-identical to the wide tile.
constexpr std::int64_t kMrN = 16;  // rows per narrow tile (2 vectors of 8)
constexpr std::int64_t kNrN = 4;   // columns per narrow tile

__attribute__((always_inline)) inline void micro_tile_narrow_body(
    const float* ap, const float* bp, std::int64_t kc, float* c, std::int64_t ldc,
    std::int64_t mr, std::int64_t nr, bool accumulate, const float* bias, const Epilogue* epi) {
  float acc[kNrN][kMrN] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * kMrN;
    const float* brow = bp + p * kNrN;
    for (std::int64_t j = 0; j < kNrN; ++j) {
      const float bv = brow[j];
#pragma omp simd
      for (std::int64_t i = 0; i < kMrN; ++i) acc[j][i] += arow[i] * bv;
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < nr; ++j) {
      if (accumulate) {
        crow[j] += acc[j][i];
      } else {
        crow[j] = acc[j][i] + (bias != nullptr ? bias[j] : 0.0F);
      }
    }
  }
  apply_epilogue_rows(c, ldc, mr, nr, epi);
}

void micro_kernel_narrow_generic(const float* ap, const float* bp, std::int64_t kc, float* c,
                                 std::int64_t ldc, std::int64_t mr, std::int64_t nr,
                                 bool accumulate, const float* bias, const Epilogue* epi) {
  micro_tile_narrow_body(ap, bp, kc, c, ldc, mr, nr, accumulate, bias, epi);
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2,fma"))) void micro_kernel_narrow_avx2(
    const float* ap, const float* bp, std::int64_t kc, float* c, std::int64_t ldc,
    std::int64_t mr, std::int64_t nr, bool accumulate, const float* bias, const Epilogue* epi) {
  micro_tile_narrow_body(ap, bp, kc, c, ldc, mr, nr, accumulate, bias, epi);
}
#endif

MicroKernelFn pick_narrow_kernel() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return micro_kernel_narrow_avx2;
  }
#endif
  return micro_kernel_narrow_generic;
}

// Atomic so the audit's set_gemm_isa() between sweeps is race-free against
// worker threads reading the dispatch inside gemm_tiled.
std::atomic<MicroKernelFn> g_micro_kernel{pick_micro_kernel()};
std::atomic<MicroKernelFn> g_narrow_kernel{pick_narrow_kernel()};

// Shared macro-kernel: packs panels and walks register tiles. Summation over k
// happens in kKc blocks in a fixed order, so results for a given (m, k, n) are
// bit-identical regardless of how callers partition the row space.
void gemm_tiled(const float* a, std::int64_t a_rs, std::int64_t a_cs, const float* b,
                std::int64_t b_rs, std::int64_t b_cs, const float* bias, float* c, std::int64_t m,
                std::int64_t k, std::int64_t n, bool accumulate,
                const Epilogue* epi = nullptr) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate) {
      for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) c[i * n + j] = bias != nullptr ? bias[j] : 0.0F;
        apply_epilogue_rows(c + i * n, n, 1, n, epi);
      }
    }
    return;
  }
  const MicroKernelFn micro_kernel = g_micro_kernel.load(std::memory_order_relaxed);
  const std::int64_t nc_max = std::min(n, kNc);
  const std::int64_t nc_round = (nc_max + kNr - 1) / kNr * kNr;
  const std::int64_t kc_max = std::min(k, kKc);
  float* bpack = scratch_floats(ScratchSlot::kGemmPackB,
                                static_cast<std::size_t>(nc_round * kc_max))
                     .data();
  float* apack =
      scratch_floats(ScratchSlot::kGemmPackA, static_cast<std::size_t>(kMc * kc_max)).data();
  for (std::int64_t j0 = 0; j0 < n; j0 += kNc) {
    const std::int64_t nc = std::min(kNc, n - j0);
    for (std::int64_t p0 = 0; p0 < k; p0 += kKc) {
      const std::int64_t kc = std::min(kKc, k - p0);
      const bool first_k = p0 == 0;
      const bool last_k = p0 + kKc >= k;
      const bool acc_block = accumulate || !first_k;
      const float* bias_block = (!acc_block && bias != nullptr) ? bias : nullptr;
      // Activation fires only once every k-partial has been summed into C.
      const Epilogue* epi_block = (last_k && epi != nullptr) ? epi : nullptr;
      pack_b_block(b, b_rs, b_cs, p0, kc, j0, nc, bpack);
      for (std::int64_t i0 = 0; i0 < m; i0 += kMc) {
        const std::int64_t mc = std::min(kMc, m - i0);
        pack_a_block(a, a_rs, a_cs, i0, mc, p0, kc, apack);
        for (std::int64_t jj = 0; jj < nc; jj += kNr) {
          const std::int64_t nr = std::min(kNr, nc - jj);
          // Bias and PReLU slopes are per output column: shift both to this
          // tile's column origin.
          Epilogue tile_epi;
          const Epilogue* tile_epi_ptr = nullptr;
          if (epi_block != nullptr && epi_block->act != Epilogue::Act::kNone) {
            tile_epi.act = epi_block->act;
            tile_epi.prelu_alpha = epi_block->prelu_alpha != nullptr
                                       ? epi_block->prelu_alpha + j0 + jj
                                       : nullptr;
            tile_epi_ptr = &tile_epi;
          }
          for (std::int64_t ii = 0; ii < mc; ii += kMr) {
            micro_kernel(apack + ii * kc, bpack + jj * kc, kc,
                           c + (i0 + ii) * n + (j0 + jj), n, std::min(kMr, mc - ii), nr,
                           acc_block,
                           bias_block != nullptr ? bias_block + j0 + jj : nullptr, tile_epi_ptr);
          }
        }
      }
    }
  }
}

// fp16-storage macro-kernel: same blocking and k-summation order as
// gemm_tiled, but A rows come from an Fp16RowSource (widened fp32 values) and
// the B panel is widened during its pack. Because conversion is elementwise
// and the packed panels end up identical, the output is bit-identical to
// widening A and B up front and calling gemm_tiled — without an fp32 copy of
// either operand ever existing (only row-sized L1 conversion buffers).
void gemm_tiled_fp16(Fp16RowSource src, const void* ctx, const fp16::Half* b, const float* bias,
                     float* c, std::int64_t m, std::int64_t k, std::int64_t n,
                     const Epilogue* epi) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) c[i * n + j] = bias != nullptr ? bias[j] : 0.0F;
      apply_epilogue_rows(c + i * n, n, 1, n, epi);
    }
    return;
  }
  const std::int64_t kc_max = std::min(k, kKc);
  // n <= kNrN takes the narrow tile (see micro_tile_narrow_body): one column
  // block, A packed kMrN rows per panel, B widened into a kNrN-strided panel.
  if (n <= kNrN) {
    const MicroKernelFn narrow = g_narrow_kernel.load(std::memory_order_relaxed);
    float* bpack = scratch_floats(ScratchSlot::kGemmPackB,
                                  static_cast<std::size_t>(kNrN * kc_max))
                       .data();
    float* apack =
        scratch_floats(ScratchSlot::kGemmPackA, static_cast<std::size_t>(kMc * kc_max)).data();
    float* arowbuf =
        scratch_floats(ScratchSlot::kF16StageA, static_cast<std::size_t>(kc_max)).data();
    float browbuf[kNrN];
    for (std::int64_t p0 = 0; p0 < k; p0 += kKc) {
      const std::int64_t kc = std::min(kKc, k - p0);
      const bool first_k = p0 == 0;
      const bool last_k = p0 + kKc >= k;
      const float* bias_block = (first_k && bias != nullptr) ? bias : nullptr;
      const Epilogue* epi_block = (last_k && epi != nullptr) ? epi : nullptr;
      for (std::int64_t p = 0; p < kc; ++p) {
        fp16::convert_to_float(b + (p0 + p) * n, browbuf, n);
        std::int64_t j = 0;
        for (; j < n; ++j) bpack[p * kNrN + j] = browbuf[j];
        for (; j < kNrN; ++j) bpack[p * kNrN + j] = 0.0F;
      }
      for (std::int64_t i0 = 0; i0 < m; i0 += kMc) {
        const std::int64_t mc = std::min(kMc, m - i0);
        pack_a_fp16_rows(src, ctx, kMrN, i0, mc, p0, kc, arowbuf, apack);
        for (std::int64_t ii = 0; ii < mc; ii += kMrN) {
          narrow(apack + ii * kc, bpack, kc, c + (i0 + ii) * n, n, std::min(kMrN, mc - ii), n,
                 !first_k, bias_block, epi_block);
        }
      }
    }
    return;
  }
  const MicroKernelFn micro_kernel = g_micro_kernel.load(std::memory_order_relaxed);
  const std::int64_t nc_max = std::min(n, kNc);
  const std::int64_t nc_round = (nc_max + kNr - 1) / kNr * kNr;
  float* bpack = scratch_floats(ScratchSlot::kGemmPackB,
                                static_cast<std::size_t>(nc_round * kc_max))
                     .data();
  float* apack =
      scratch_floats(ScratchSlot::kGemmPackA, static_cast<std::size_t>(kMc * kc_max)).data();
  // Row-sized conversion buffers for the fused convert+pack (see pack_b_fp16).
  float* browbuf =
      scratch_floats(ScratchSlot::kF16StageB, static_cast<std::size_t>(nc_max)).data();
  float* arowbuf =
      scratch_floats(ScratchSlot::kF16StageA, static_cast<std::size_t>(kc_max)).data();
  for (std::int64_t j0 = 0; j0 < n; j0 += kNc) {
    const std::int64_t nc = std::min(kNc, n - j0);
    for (std::int64_t p0 = 0; p0 < k; p0 += kKc) {
      const std::int64_t kc = std::min(kKc, k - p0);
      const bool first_k = p0 == 0;
      const bool last_k = p0 + kKc >= k;
      const float* bias_block = (first_k && bias != nullptr) ? bias : nullptr;
      const Epilogue* epi_block = (last_k && epi != nullptr) ? epi : nullptr;
      pack_b_fp16(b, n, p0, kc, j0, nc, browbuf, bpack);
      for (std::int64_t i0 = 0; i0 < m; i0 += kMc) {
        const std::int64_t mc = std::min(kMc, m - i0);
        pack_a_fp16_rows(src, ctx, kMr, i0, mc, p0, kc, arowbuf, apack);
        for (std::int64_t jj = 0; jj < nc; jj += kNr) {
          const std::int64_t nr = std::min(kNr, nc - jj);
          Epilogue tile_epi;
          const Epilogue* tile_epi_ptr = nullptr;
          if (epi_block != nullptr && epi_block->act != Epilogue::Act::kNone) {
            tile_epi.act = epi_block->act;
            tile_epi.prelu_alpha = epi_block->prelu_alpha != nullptr
                                       ? epi_block->prelu_alpha + j0 + jj
                                       : nullptr;
            tile_epi_ptr = &tile_epi;
          }
          for (std::int64_t ii = 0; ii < mc; ii += kMr) {
            micro_kernel(apack + ii * kc, bpack + jj * kc, kc,
                           c + (i0 + ii) * n + (j0 + jj), n, std::min(kMr, mc - ii), nr,
                           !first_k,
                           bias_block != nullptr ? bias_block + j0 + jj : nullptr, tile_epi_ptr);
          }
        }
      }
    }
  }
}
}  // namespace

bool gemm_avx2_supported() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool set_gemm_isa(GemmIsa isa) {
  switch (isa) {
    case GemmIsa::kAuto:
      g_micro_kernel.store(pick_micro_kernel(), std::memory_order_relaxed);
      g_narrow_kernel.store(pick_narrow_kernel(), std::memory_order_relaxed);
      return true;
    case GemmIsa::kGeneric:
      g_micro_kernel.store(micro_kernel_generic, std::memory_order_relaxed);
      g_narrow_kernel.store(micro_kernel_narrow_generic, std::memory_order_relaxed);
      return true;
    case GemmIsa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      if (gemm_avx2_supported()) {
        g_micro_kernel.store(micro_kernel_avx2, std::memory_order_relaxed);
        g_narrow_kernel.store(micro_kernel_narrow_avx2, std::memory_order_relaxed);
        return true;
      }
#endif
      return false;
  }
  return false;
}

void gemm(std::span<const float> a, std::span<const float> b, std::span<float> c, std::int64_t m,
          std::int64_t k, std::int64_t n) {
  check_sizes(a, b, c, m, k, n, false, false);
  gemm_tiled(a.data(), k, 1, b.data(), n, 1, nullptr, c.data(), m, k, n, false);
}

void gemm_bias(std::span<const float> a, std::span<const float> b, std::span<const float> bias,
               std::span<float> c, std::int64_t m, std::int64_t k, std::int64_t n) {
  check_sizes(a, b, c, m, k, n, false, false);
  if (static_cast<std::int64_t>(bias.size()) < n) {
    throw std::invalid_argument("gemm_bias: bias must hold n elements");
  }
  gemm_tiled(a.data(), k, 1, b.data(), n, 1, bias.data(), c.data(), m, k, n, false);
}

void gemm_fused(std::span<const float> a, std::span<const float> b, std::span<const float> bias,
                std::span<float> c, std::int64_t m, std::int64_t k, std::int64_t n,
                const Epilogue& epilogue) {
  check_sizes(a, b, c, m, k, n, false, false);
  if (!bias.empty() && static_cast<std::int64_t>(bias.size()) < n) {
    throw std::invalid_argument("gemm_fused: bias must hold n elements");
  }
  if (epilogue.act == Epilogue::Act::kPRelu && epilogue.prelu_alpha == nullptr) {
    throw std::invalid_argument("gemm_fused: kPRelu requires prelu_alpha");
  }
  gemm_tiled(a.data(), k, 1, b.data(), n, 1, bias.empty() ? nullptr : bias.data(), c.data(), m, k,
             n, false, &epilogue);
}

void gemm_fp16w(std::span<const fp16::Half> a, std::span<const fp16::Half> b,
                std::span<const float> bias, std::span<float> c, std::int64_t m, std::int64_t k,
                std::int64_t n, const Epilogue& epilogue) {
  if (m < 0 || k < 0 || n < 0 || static_cast<std::int64_t>(a.size()) < m * k ||
      static_cast<std::int64_t>(b.size()) < k * n ||
      static_cast<std::int64_t>(c.size()) < m * n) {
    throw std::invalid_argument("gemm_fp16w: buffer sizes inconsistent with m/k/n");
  }
  if (!bias.empty() && static_cast<std::int64_t>(bias.size()) < n) {
    throw std::invalid_argument("gemm_fp16w: bias must hold n elements");
  }
  if (epilogue.act == Epilogue::Act::kPRelu && epilogue.prelu_alpha == nullptr) {
    throw std::invalid_argument("gemm_fp16w: kPRelu requires prelu_alpha");
  }
  const ContigFp16A ctx{a.data(), k};
  gemm_tiled_fp16(contig_fp16_row, &ctx, b.data(), bias.empty() ? nullptr : bias.data(), c.data(),
                  m, k, n, &epilogue);
}

void gemm_fp16_rows(Fp16RowSource src, const void* ctx, std::span<const fp16::Half> b,
                    std::span<const float> bias, std::span<float> c, std::int64_t m,
                    std::int64_t k, std::int64_t n, const Epilogue& epilogue) {
  if (src == nullptr) {
    throw std::invalid_argument("gemm_fp16_rows: null row source");
  }
  if (m < 0 || k < 0 || n < 0 || static_cast<std::int64_t>(b.size()) < k * n ||
      static_cast<std::int64_t>(c.size()) < m * n) {
    throw std::invalid_argument("gemm_fp16_rows: buffer sizes inconsistent with m/k/n");
  }
  if (!bias.empty() && static_cast<std::int64_t>(bias.size()) < n) {
    throw std::invalid_argument("gemm_fp16_rows: bias must hold n elements");
  }
  if (epilogue.act == Epilogue::Act::kPRelu && epilogue.prelu_alpha == nullptr) {
    throw std::invalid_argument("gemm_fp16_rows: kPRelu requires prelu_alpha");
  }
  gemm_tiled_fp16(src, ctx, b.data(), bias.empty() ? nullptr : bias.data(), c.data(), m, k, n,
                  &epilogue);
}

void gemm_accumulate(std::span<const float> a, std::span<const float> b, std::span<float> c,
                     std::int64_t m, std::int64_t k, std::int64_t n) {
  check_sizes(a, b, c, m, k, n, false, false);
  gemm_tiled(a.data(), k, 1, b.data(), n, 1, nullptr, c.data(), m, k, n, true);
}

void gemm_at_b(std::span<const float> a, std::span<const float> b, std::span<float> c,
               std::int64_t m, std::int64_t k, std::int64_t n) {
  check_sizes(a, b, c, m, k, n, true, false);
  // A is [k x m] row-major; logical A^T element (i, p) lives at a[p * m + i].
  gemm_tiled(a.data(), 1, m, b.data(), n, 1, nullptr, c.data(), m, k, n, false);
}

void gemm_at_b_accumulate(std::span<const float> a, std::span<const float> b, std::span<float> c,
                          std::int64_t m, std::int64_t k, std::int64_t n) {
  check_sizes(a, b, c, m, k, n, true, false);
  gemm_tiled(a.data(), 1, m, b.data(), n, 1, nullptr, c.data(), m, k, n, true);
}

void gemm_a_bt(std::span<const float> a, std::span<const float> b, std::span<float> c,
               std::int64_t m, std::int64_t k, std::int64_t n) {
  check_sizes(a, b, c, m, k, n, false, true);
  // B is [n x k] row-major; logical B^T element (p, j) lives at b[j * k + p].
  gemm_tiled(a.data(), k, 1, b.data(), 1, k, nullptr, c.data(), m, k, n, false);
}

void gemm_zero_skip(std::span<const float> a, std::span<const float> b, std::span<float> c,
                    std::int64_t m, std::int64_t k, std::int64_t n) {
  check_sizes(a, b, c, m, k, n, false, false);
  std::fill(c.begin(), c.begin() + static_cast<std::size_t>(m * n), 0.0F);
  constexpr std::int64_t kBlock = 64;  // fits comfortably in L1 for the j stripe
  for (std::int64_t j0 = 0; j0 < n; j0 += kBlock) {
    const std::int64_t j1 = std::min(j0 + kBlock, n);
    for (std::int64_t i = 0; i < m; ++i) {
      float* crow = c.data() + i * n;
      const float* arow = a.data() + i * k;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0F) continue;  // identity-probe inputs in Algorithm 1 are mostly zero
        const float* brow = b.data() + p * n;
        for (std::int64_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

}  // namespace sesr::nn
