#include "nn/gemm.hpp"

#include <algorithm>
#include <stdexcept>

namespace sesr::nn {

namespace {
void check_sizes(std::span<const float> a, std::span<const float> b, std::span<float> c,
                 std::int64_t m, std::int64_t k, std::int64_t n, bool a_transposed,
                 bool b_transposed) {
  const std::int64_t a_need = a_transposed ? k * m : m * k;
  const std::int64_t b_need = b_transposed ? n * k : k * n;
  if (m < 0 || k < 0 || n < 0 || static_cast<std::int64_t>(a.size()) < a_need ||
      static_cast<std::int64_t>(b.size()) < b_need || static_cast<std::int64_t>(c.size()) < m * n) {
    throw std::invalid_argument("gemm: buffer sizes inconsistent with m/k/n");
  }
}

// Core accumulating kernel: C += A * B, row-major, i-k-j order so the inner
// loop streams contiguously through B and C.
void kernel_accumulate(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                       std::int64_t n) {
  constexpr std::int64_t kBlock = 64;  // fits comfortably in L1 for the j stripe
  for (std::int64_t j0 = 0; j0 < n; j0 += kBlock) {
    const std::int64_t j1 = std::min(j0 + kBlock, n);
    for (std::int64_t i = 0; i < m; ++i) {
      float* crow = c + i * n;
      const float* arow = a + i * k;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0F) continue;  // identity-probe inputs in Algorithm 1 are mostly zero
        const float* brow = b + p * n;
        for (std::int64_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
      }
    }
  }
}
}  // namespace

void gemm(std::span<const float> a, std::span<const float> b, std::span<float> c, std::int64_t m,
          std::int64_t k, std::int64_t n) {
  check_sizes(a, b, c, m, k, n, false, false);
  std::fill(c.begin(), c.begin() + static_cast<std::size_t>(m * n), 0.0F);
  kernel_accumulate(a.data(), b.data(), c.data(), m, k, n);
}

void gemm_accumulate(std::span<const float> a, std::span<const float> b, std::span<float> c,
                     std::int64_t m, std::int64_t k, std::int64_t n) {
  check_sizes(a, b, c, m, k, n, false, false);
  kernel_accumulate(a.data(), b.data(), c.data(), m, k, n);
}

void gemm_at_b(std::span<const float> a, std::span<const float> b, std::span<float> c,
               std::int64_t m, std::int64_t k, std::int64_t n) {
  check_sizes(a, b, c, m, k, n, true, false);
  std::fill(c.begin(), c.begin() + static_cast<std::size_t>(m * n), 0.0F);
  // A is [k x m]; C[i, j] = sum_p A[p, i] * B[p, j]. Loop p outer so both reads stream.
  for (std::int64_t p = 0; p < k; ++p) {
    const float* arow = a.data() + p * m;
    const float* brow = b.data() + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0F) continue;
      float* crow = c.data() + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_at_b_accumulate(std::span<const float> a, std::span<const float> b, std::span<float> c,
                          std::int64_t m, std::int64_t k, std::int64_t n) {
  check_sizes(a, b, c, m, k, n, true, false);
  for (std::int64_t p = 0; p < k; ++p) {
    const float* arow = a.data() + p * m;
    const float* brow = b.data() + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0F) continue;
      float* crow = c.data() + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_a_bt(std::span<const float> a, std::span<const float> b, std::span<float> c,
               std::int64_t m, std::int64_t k, std::int64_t n) {
  check_sizes(a, b, c, m, k, n, false, true);
  // B is [n x k]; C[i, j] = dot(A[i, :], B[j, :]) — both rows contiguous.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    float* crow = c.data() + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b.data() + j * k;
      float acc = 0.0F;
      for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

}  // namespace sesr::nn
