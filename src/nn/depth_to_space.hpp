// Depth-to-space (pixel shuffle) — the upsampling primitive of SESR.
//
// Rearranges (N, H, W, C*r^2) into (N, H*r, W*r, C) with TF semantics:
// out[n, y*r + dy, x*r + dx, c] = in[n, y, x, (dy*r + dx)*C + c].
// SESR applies this once for x2 SISR (r=2 on 4 channels) and twice in a row
// for x4 (16 channels -> two r=2 shuffles), saving the extra upsampling convs
// prior networks use.
#pragma once

#include <cstdint>
#include <string>

#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace sesr::nn {

Tensor depth_to_space(const Tensor& input, std::int64_t block);
// Exact inverse (also the adjoint, since the op is a permutation).
Tensor space_to_depth(const Tensor& input, std::int64_t block);

// Output-span form for the execution-plan path: `input` is one raw NHWC block
// described by in_shape, `out` must hold n * h*block * w*block * c/block^2
// floats. Same copy loop as depth_to_space — a pure permutation either way.
void depth_to_space_into(const float* input, const Shape& in_shape, std::int64_t block,
                         float* out);

class DepthToSpace final : public Layer {
 public:
  DepthToSpace(std::string name, std::int64_t block) : name_(std::move(name)), block_(block) {}

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return name_; }

  std::int64_t block() const { return block_; }

 private:
  std::string name_;
  std::int64_t block_;
};

}  // namespace sesr::nn
