#include "nn/layer.hpp"

#include <cmath>
#include <stdexcept>

namespace sesr::nn {

std::vector<Parameter*> collect_parameters(const std::vector<Layer*>& layers) {
  std::vector<Parameter*> out;
  for (Layer* layer : layers) {
    if (layer == nullptr) throw std::invalid_argument("collect_parameters: null layer");
    for (Parameter* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

void zero_gradients(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) p->grad.zero();
}

float gradient_norm(const std::vector<Parameter*>& params) {
  double acc = 0.0;
  for (const Parameter* p : params) {
    for (float g : p->grad.data()) acc += static_cast<double>(g) * g;
  }
  return static_cast<float>(std::sqrt(acc));
}

TensorMap parameters_to_map(const std::vector<Parameter*>& params) {
  TensorMap map;
  for (const Parameter* p : params) {
    if (!map.emplace(p->name, p->value).second) {
      throw std::runtime_error("parameters_to_map: duplicate parameter name " + p->name);
    }
  }
  return map;
}

void load_parameters_from_map(const std::vector<Parameter*>& params, const TensorMap& map) {
  for (Parameter* p : params) {
    const auto it = map.find(p->name);
    if (it == map.end()) {
      throw std::runtime_error("load_parameters_from_map: missing parameter " + p->name);
    }
    if (it->second.shape() != p->value.shape()) {
      throw std::runtime_error("load_parameters_from_map: shape mismatch for " + p->name);
    }
    p->value = it->second;
    p->grad = p->value.zeros_like();
  }
}

}  // namespace sesr::nn
