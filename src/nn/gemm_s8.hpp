// Quantized u8 x s8 GEMM for the int8 serving path.
//
// Row-major: the logical product is C[m x n] = A[m x k] * B[k x n] where A
// holds offset-binary activations (true int8 value q in [-127, 127] stored as
// q + 128, so every byte is in [1, 255]) and B holds symmetric per-channel
// int8 weights. Accumulation is int32; the +128 activation offset is removed
// exactly at write-back via the per-column weight sums (acc - 128 * colsum),
// so the stored accumulator equals the plain s8 x s8 int64 dot product
// whenever that fits int32 — bit-exactly, which the conv2d_int8_vs_ref audit
// pair enforces against the int64-accumulated reference in src/check.
//
// Kernel shape mirrors gemm.cpp: packed panels, a 6-row x 8-column micro-tile
// with register accumulators, and one full-k sweep per tile (no k-blocking —
// int8 panels are 4x smaller than fp32, so the whole k extent of a SESR conv
// fits in L1). Three micro-kernel builds sit behind a runtime-detect seam:
//   kGeneric  portable scalar loop (the non-AVX fallback CI keeps honest)
//   kAvx2     zero/sign-extend to s16 + _mm256_madd_epi16 (exact; maddubs'
//             s16 pair-sum saturates at 255*127*2 > 32767, so it is not used)
//   kVnni     AVX-VNNI _mm256_dpbusd_avx_epi32 (u8 x s8 dot-4, exact)
// All three produce identical int32 accumulators; SESR_DISABLE_INT8_SIMD=1
// pins the scalar kernel for forced-generic CI runs.
//
// The dequantize -> bias -> activation epilogue rides the accumulator store:
//   out = act(fmaf(float(acc), scale[col], bias[col]))
// using an explicit single-rounding fmaf so the reference in src/check and
// every kernel build agree bit-for-bit regardless of FP contraction flags.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "nn/gemm.hpp"  // Epilogue

namespace sesr::nn {

// Micro-kernel selector for the int8 GEMM, mirroring nn::GemmIsa. Explicit
// values exist so the gemm_s8_* audit pairs can pin each build.
enum class GemmS8Isa { kAuto, kGeneric, kAvx2, kVnni };

// Force the int8 micro-kernel dispatch; returns false (dispatch unchanged)
// when the requested ISA is unsupported (or vector kernels are disabled via
// SESR_DISABLE_INT8_SIMD). Only call between kernel invocations.
bool set_gemm_s8_isa(GemmS8Isa isa);

// True when the respective vector build is usable on this CPU (and
// SESR_DISABLE_INT8_SIMD is not set).
bool gemm_s8_avx2_supported();
bool gemm_s8_vnni_supported();

// Fused write-back applied to every int32 accumulator (see file comment).
// `scale` holds one dequantization factor per output column — for the conv
// path that is activation_scale * weight_scale[out_channel].
struct S8Epilogue {
  const float* scale = nullptr;        // n factors; required
  const float* bias = nullptr;         // n biases, or nullptr
  Epilogue::Act act = Epilogue::Act::kNone;
  const float* prelu_alpha = nullptr;  // n slopes; required iff act == kPRelu
};

// The canonical scalar quantizer: round-half-away-from-zero, clamp to
// [-127, 127]. Every producer of int8 data in the repo (weight quantization,
// the implicit im2col row source, the streaming row path, core/quantize.cpp)
// must funnel through this exact expression; divergent rounding was the
// "reference drift" failure mode the audit pairs exist to catch. The
// trunc(r + 0.5) form equals std::round for every float with |r| <= 127
// (the add is exact or rounds within the same unit interval there) while
// staying auto-vectorizable — std::round is a libm call at baseline ISA,
// and this runs once per input element per quantized layer.
inline std::int8_t quantize_value(float v, float inv_scale) {
  float r = v * inv_scale;
  r = r < -127.0F ? -127.0F : (r > 127.0F ? 127.0F : r);
  return static_cast<std::int8_t>(static_cast<std::int32_t>(r + (r >= 0.0F ? 0.5F : -0.5F)));
}

// Scale floor for all-zero (or subnormal-max) tensors: maps every value to
// quantized 0 while keeping scale finite and the dequant product exact.
inline constexpr float kDegenerateQuantScale = 1.0F / 127.0F;

// Quantizes n fp32 values into offset-binary u8 (quantize_value(v) + 128) —
// the bulk form the conv path uses to quantize a whole activation tensor once
// per layer instead of once per im2col tap. Bit-identical to the scalar
// expression element for element (the AVX2 build mirrors clamp, the signed
// half-offset, and the truncating convert exactly); SESR_DISABLE_INT8_SIMD
// pins the scalar loop.
void quantize_u8_run(const float* src, std::uint8_t* dst, std::int64_t n, float inv_scale);

// Per-column sums of B (n entries), needed by the write-back to remove the
// +128 activation offset. Computed once per weight tensor at quantize time.
std::vector<std::int32_t> s8_column_sums(std::span<const std::int8_t> b, std::int64_t k,
                                         std::int64_t n);

// Produces logical A row `row`, k-slice [p0, p0 + kc), as offset-binary u8
// bytes into dst. Called from inside the A-pack, so the quantized im2col
// matrix never exists in memory (mirrors Fp16RowSource).
using S8RowSource = void (*)(const void* ctx, std::int64_t row, std::int64_t p0, std::int64_t kc,
                             std::uint8_t* dst);

// C[m x n] (fp32) = epilogue(A * B - 128 * colsum) with A generated row-wise
// by `src`. B is [k x n] row-major s8; colsum holds the n column sums of B.
void gemm_s8_rows(S8RowSource src, const void* ctx, std::span<const std::int8_t> b,
                  std::span<const std::int32_t> colsum, std::span<float> c, std::int64_t m,
                  std::int64_t k, std::int64_t n, const S8Epilogue& epilogue);

// Same with an explicit contiguous A (m x k offset-binary u8, row-major).
void gemm_s8(std::span<const std::uint8_t> a, std::span<const std::int8_t> b,
             std::span<const std::int32_t> colsum, std::span<float> c, std::int64_t m,
             std::int64_t k, std::int64_t n, const S8Epilogue& epilogue);

// Raw-accumulator variant for the audits: writes the offset-corrected int32
// accumulators (acc - 128 * colsum) without dequantization. Bit-comparable
// against the int64 reference whenever the true product fits int32.
void gemm_s8_i32(std::span<const std::uint8_t> a, std::span<const std::int8_t> b,
                 std::span<const std::int32_t> colsum, std::span<std::int32_t> c, std::int64_t m,
                 std::int64_t k, std::int64_t n);

}  // namespace sesr::nn
