// Weight initializers.
#pragma once

#include <cstdint>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace sesr::nn {

// He (Kaiming) normal init for an HWIO conv kernel: stddev = sqrt(2 / fan_in),
// fan_in = kh * kw * in_c. The standard choice for ReLU/PReLU networks.
Tensor he_normal_kernel(std::int64_t kh, std::int64_t kw, std::int64_t in_c, std::int64_t out_c,
                        Rng& rng);

// Glorot (Xavier) uniform init: limit = sqrt(6 / (fan_in + fan_out)).
Tensor glorot_uniform_kernel(std::int64_t kh, std::int64_t kw, std::int64_t in_c,
                             std::int64_t out_c, Rng& rng);

// Identity-like kernel for (kh, kw, c, c): center tap of channel i -> i is 1.
// Requires odd kh, kw. This is exactly the W_R of the paper's Algorithm 2.
Tensor identity_kernel(std::int64_t kh, std::int64_t kw, std::int64_t channels);

}  // namespace sesr::nn
