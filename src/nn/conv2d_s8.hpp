// Quantized convolution for the int8 serving path.
//
// Weights are quantized once per tensor (symmetric, per-output-channel) into
// an S8ConvWeights bundle; activations stay fp32 between layers (the "fp32
// carrier") and are quantized on the fly with a calibrated per-tensor scale
// inside the GEMM's implicit-im2col A-pack, mirroring Im2colFp16Source. The
// fused dequant -> bias -> activation epilogue writes fp32 output directly,
// so a quantized layer is a drop-in replacement for conv2d_fused.
//
// Exactness contract: for a fixed activation scale, quantization is
// elementwise and padding quantizes to the zero point, so cropping commutes
// with the whole layer — tiled and streaming execution reproduce full-frame
// int8 results bit-exactly (the int32 accumulator is order-independent and
// the dequant store is a fixed single-rounded expression; see gemm_s8.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/conv2d.hpp"
#include "nn/gemm_s8.hpp"
#include "tensor/tensor.hpp"

namespace sesr::nn {

// A conv weight tensor quantized for the u8 x s8 GEMM. `values` keeps the
// HWIO flat order, which is exactly the [kh*kw*in_c x out_c] row-major im2col
// B matrix the GEMM consumes; `scale` holds one symmetric dequantization
// factor per output channel and `colsum` the per-column sums the kernel uses
// to remove the +128 activation offset.
struct S8ConvWeights {
  Shape shape;                         // HWIO, same as the source tensor
  std::vector<std::int8_t> values;
  std::vector<float> scale;            // out_c entries: max|w|/127 (floored)
  std::vector<std::int32_t> colsum;    // out_c entries
};

// Symmetric per-output-channel quantization: scale[oc] = max|w[..., oc]|/127,
// floored at kDegenerateQuantScale for all-zero channels; every value rounds
// through nn::quantize_value. Deterministic, so replicas that quantize the
// same checkpoint hold bit-identical weights.
S8ConvWeights quantize_conv_weights(const Tensor& weight);

// out = act(dequant(conv_s8(quant(input), weight)) + bias): fp32 NHWC in,
// fp32 NHWC out. `act_scale` is the calibrated per-tensor activation scale
// (input quantizes as clamp(round(v/act_scale)) inside the A-pack; padding
// contributes the exact zero point). Bias may be null. Stride is 1; geometry
// rules match conv2d.
Tensor conv2d_s8(const Tensor& input, float act_scale, const S8ConvWeights& weight,
                 const Tensor* bias, const Epilogue& epilogue, Padding padding);

// Output-span form for the execution-plan path: raw NHWC in/out in
// caller-provided storage (see conv2d_into). Same kernels, same stripe
// boundaries — bit-identical to conv2d_s8. The one-shot quantized image and
// the per-channel dequant factors live in scratch slots (kS8Quant /
// kS8Dequant), so steady-state int8 layers allocate nothing.
void conv2d_s8_into(const float* input, const Shape& in_shape, float act_scale,
                    const S8ConvWeights& weight, const Tensor* bias, const Epilogue& epilogue,
                    Padding padding, float* out);

}  // namespace sesr::nn
