#include "nn/conv2d.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "nn/gemm.hpp"
#include "nn/init.hpp"
#include "tensor/thread_pool.hpp"

namespace sesr::nn {

namespace {
void check_weight(const Tensor& weight) {
  if (!weight.shape().valid()) {
    throw std::invalid_argument("conv2d: invalid weight shape " + weight.shape().to_string());
  }
}

void check_channels(const Tensor& input, const Tensor& weight) {
  if (input.shape().c() != weight.shape().dim(2)) {
    throw std::invalid_argument("conv2d: input channels " + std::to_string(input.shape().c()) +
                                " != weight in_channels " + std::to_string(weight.shape().dim(2)));
  }
}
}  // namespace

ConvGeometry conv_geometry(const Tensor& input, const Tensor& weight, Padding padding,
                           std::int64_t stride) {
  check_weight(weight);
  check_channels(input, weight);
  const Shape& s = input.shape();
  const std::int64_t kh = weight.shape().dim(0);
  const std::int64_t kw = weight.shape().dim(1);
  if (padding == Padding::kSame) return same_geometry(s.h(), s.w(), s.c(), kh, kw, stride);
  if (stride != 1) throw std::invalid_argument("conv2d: VALID padding supports stride 1 only");
  return valid_geometry(s.h(), s.w(), s.c(), kh, kw);
}

Tensor conv2d(const Tensor& input, const Tensor& weight, Padding padding, std::int64_t stride) {
  const ConvGeometry g = conv_geometry(input, weight, padding, stride);
  const std::int64_t out_c = weight.shape().dim(3);
  Tensor out(input.shape().n(), g.out_h, g.out_w, out_c);
  const auto process_image = [&](std::int64_t n, std::vector<float>& cols) {
    im2col(input, n, g, cols.data());
    // cols [rows x (kh*kw*cin)] * weight [(kh*kw*cin) x out_c] -> out image [rows x out_c]
    std::span<float> dst(out.raw() + out.shape().offset(n, 0, 0, 0),
                         static_cast<std::size_t>(g.rows() * out_c));
    gemm(cols, weight.data(), dst, g.rows(), g.cols(), out_c);
  };
  ThreadPool& pool = ThreadPool::global();
  if (pool.worker_count() > 1 && input.shape().n() > 1) {
    // Batch images are independent; each worker gets its own im2col buffer.
    pool.parallel_for(0, input.shape().n(), [&](std::int64_t n) {
      thread_local std::vector<float> cols;
      cols.resize(static_cast<std::size_t>(g.rows() * g.cols()));
      process_image(n, cols);
    });
  } else {
    std::vector<float> cols(static_cast<std::size_t>(g.rows() * g.cols()));
    for (std::int64_t n = 0; n < input.shape().n(); ++n) process_image(n, cols);
  }
  return out;
}

Tensor conv2d_bias(const Tensor& input, const Tensor& weight, const Tensor& bias, Padding padding,
                   std::int64_t stride) {
  const std::int64_t out_c = weight.shape().dim(3);
  if (bias.numel() != out_c) {
    throw std::invalid_argument("conv2d_bias: bias numel must equal out_channels");
  }
  Tensor out = conv2d(input, weight, padding, stride);
  float* po = out.raw();
  const float* pb = bias.raw();
  const std::int64_t pixels = out.numel() / out_c;
  for (std::int64_t i = 0; i < pixels; ++i) {
    for (std::int64_t c = 0; c < out_c; ++c) po[i * out_c + c] += pb[c];
  }
  return out;
}

Tensor conv2d_backward_input(const Tensor& grad_output, const Tensor& weight,
                             const Shape& input_shape, Padding padding, std::int64_t stride) {
  check_weight(weight);
  const std::int64_t out_c = weight.shape().dim(3);
  if (grad_output.shape().c() != out_c) {
    throw std::invalid_argument("conv2d_backward_input: grad_output channels mismatch");
  }
  Tensor probe(input_shape);  // only the shape is used
  const ConvGeometry g = conv_geometry(probe, weight, padding, stride);
  if (g.out_h != grad_output.shape().h() || g.out_w != grad_output.shape().w()) {
    throw std::invalid_argument("conv2d_backward_input: grad_output spatial dims mismatch");
  }
  Tensor grad_input(input_shape);
  std::vector<float> cols(static_cast<std::size_t>(g.rows() * g.cols()));
  for (std::int64_t n = 0; n < input_shape.n(); ++n) {
    // cols = grad_out [rows x out_c] * weight^T [out_c x (kh*kw*cin)]
    std::span<const float> go(grad_output.raw() + grad_output.shape().offset(n, 0, 0, 0),
                              static_cast<std::size_t>(g.rows() * out_c));
    gemm_a_bt(go, weight.data(), cols, g.rows(), out_c, g.cols());
    col2im_add(cols.data(), g, grad_input, n);
  }
  return grad_input;
}

void conv2d_backward_weight(const Tensor& input, const Tensor& grad_output, Tensor& grad_weight,
                            Padding padding, std::int64_t stride) {
  check_weight(grad_weight);
  check_channels(input, grad_weight);
  const ConvGeometry g = conv_geometry(input, grad_weight, padding, stride);
  const std::int64_t out_c = grad_weight.shape().dim(3);
  if (grad_output.shape().h() != g.out_h || grad_output.shape().w() != g.out_w ||
      grad_output.shape().c() != out_c || grad_output.shape().n() != input.shape().n()) {
    throw std::invalid_argument("conv2d_backward_weight: grad_output shape mismatch");
  }
  std::vector<float> cols(static_cast<std::size_t>(g.rows() * g.cols()));
  for (std::int64_t n = 0; n < input.shape().n(); ++n) {
    im2col(input, n, g, cols.data());
    // grad_w [(kh*kw*cin) x out_c] += cols^T [cols x rows]^T... i.e. cols^T * grad_out
    std::span<const float> go(grad_output.raw() + grad_output.shape().offset(n, 0, 0, 0),
                              static_cast<std::size_t>(g.rows() * out_c));
    gemm_at_b_accumulate(cols, go, grad_weight.data(), g.cols(), g.rows(), out_c);
  }
}

Tensor conv2d_naive(const Tensor& input, const Tensor& weight, Padding padding,
                    std::int64_t stride) {
  const ConvGeometry g = conv_geometry(input, weight, padding, stride);
  const Shape& s = input.shape();
  const std::int64_t out_c = weight.shape().dim(3);
  Tensor out(s.n(), g.out_h, g.out_w, out_c);
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t oy = 0; oy < g.out_h; ++oy) {
      for (std::int64_t ox = 0; ox < g.out_w; ++ox) {
        for (std::int64_t oc = 0; oc < out_c; ++oc) {
          double acc = 0.0;
          for (std::int64_t ky = 0; ky < g.kh; ++ky) {
            const std::int64_t iy = oy * g.stride - g.pad_top + ky;
            if (iy < 0 || iy >= s.h()) continue;
            for (std::int64_t kx = 0; kx < g.kw; ++kx) {
              const std::int64_t ix = ox * g.stride - g.pad_left + kx;
              if (ix < 0 || ix >= s.w()) continue;
              for (std::int64_t ic = 0; ic < s.c(); ++ic) {
                acc += static_cast<double>(input(n, iy, ix, ic)) * weight(ky, kx, ic, oc);
              }
            }
          }
          out(n, oy, ox, oc) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

Conv2d::Conv2d(std::string name, std::int64_t kh, std::int64_t kw, std::int64_t in_c,
               std::int64_t out_c, Padding padding, bool with_bias, Rng& rng, std::int64_t stride)
    : name_(std::move(name)),
      padding_(padding),
      stride_(stride),
      weight_(name_ + ".weight", glorot_uniform_kernel(kh, kw, in_c, out_c, rng)) {
  if (with_bias) bias_.emplace(name_ + ".bias", Tensor(1, 1, 1, out_c));
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  if (bias_) return conv2d_bias(input, weight_.value, bias_->value, padding_, stride_);
  return conv2d(input, weight_.value, padding_, stride_);
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("Conv2d::backward called without forward(training=true)");
  }
  conv2d_backward_weight(cached_input_, grad_output, weight_.grad, padding_, stride_);
  if (bias_) {
    const std::int64_t out_c = out_channels();
    float* gb = bias_->grad.raw();
    const float* go = grad_output.raw();
    const std::int64_t pixels = grad_output.numel() / out_c;
    for (std::int64_t i = 0; i < pixels; ++i) {
      for (std::int64_t c = 0; c < out_c; ++c) gb[c] += go[i * out_c + c];
    }
  }
  return conv2d_backward_input(grad_output, weight_.value, cached_input_.shape(), padding_,
                               stride_);
}

std::vector<Parameter*> Conv2d::parameters() {
  std::vector<Parameter*> out{&weight_};
  if (bias_) out.push_back(&*bias_);
  return out;
}

}  // namespace sesr::nn
