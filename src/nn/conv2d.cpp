#include "nn/conv2d.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/gemm.hpp"
#include "nn/init.hpp"
#include "tensor/scratch.hpp"
#include "tensor/thread_pool.hpp"

namespace sesr::nn {

namespace {
void check_weight(const Tensor& weight) {
  if (!weight.shape().valid()) {
    throw std::invalid_argument("conv2d: invalid weight shape " + weight.shape().to_string());
  }
}

void check_channels(const Shape& input, const Tensor& weight) {
  if (input.c() != weight.shape().dim(2)) {
    throw std::invalid_argument("conv2d: input channels " + std::to_string(input.c()) +
                                " != weight in_channels " + std::to_string(weight.shape().dim(2)));
  }
}

ConvGeometry conv_geometry_shape(const Shape& s, const Tensor& weight, Padding padding,
                                 std::int64_t stride) {
  check_weight(weight);
  check_channels(s, weight);
  const std::int64_t kh = weight.shape().dim(0);
  const std::int64_t kw = weight.shape().dim(1);
  if (padding == Padding::kSame) return same_geometry(s.h(), s.w(), s.c(), kh, kw, stride);
  if (stride != 1) throw std::invalid_argument("conv2d: VALID padding supports stride 1 only");
  return valid_geometry(s.h(), s.w(), s.c(), kh, kw);
}

// Output pixels per parallel stripe. Fixed — never derived from the worker
// count — so stripe boundaries, and with them every floating-point reduction
// order in the backward passes, are identical for any SESR_NUM_THREADS.
constexpr std::int64_t kStripePixels = 1024;

std::int64_t stripes_per_image(std::int64_t rows) {
  return (rows + kStripePixels - 1) / kStripePixels;
}

// Shared forward: stripes the im2col row space across the pool and fuses the
// optional bias into the GEMM store. `zero_skip` selects the branchy
// zero-skipping kernel kept for Algorithm-1 identity probes. Input and output
// are raw NHWC images (in_shape describes `input`; `out` must hold
// batch * out_h * out_w * out_c floats) so planner-owned arena slices work the
// same as Tensor storage; the Tensor entry points below allocate and delegate.
void conv2d_impl(const float* input, const Shape& in_shape, const Tensor& weight,
                 const float* bias, Padding padding, std::int64_t stride, bool zero_skip,
                 const Epilogue* epi, float* out) {
  const ConvGeometry g = conv_geometry_shape(in_shape, weight, padding, stride);
  const std::int64_t out_c = weight.shape().dim(3);
  const std::int64_t batch = in_shape.n();
  const Shape out_shape(batch, g.out_h, g.out_w, out_c);
  ThreadPool& pool = ThreadPool::global();
  const std::span<const float> bspan =
      bias != nullptr ? std::span<const float>{bias, static_cast<std::size_t>(out_c)}
                      : std::span<const float>{};

  // 1x1 stride-1 fast path (dominant in expanded SESR linear blocks): im2col
  // is the identity, so the whole batch is a single [batch*H*W, C] x
  // [C, out_c] product straight off the NHWC activations — no lowering, no
  // copies, bias fused into the epilogue.
  if (!zero_skip && g.kh == 1 && g.kw == 1 && g.stride == 1) {
    const std::int64_t cin = g.channels;
    pool.parallel_for_chunks(
        0, batch * g.rows(), kStripePixels, [&](std::int64_t lo, std::int64_t hi) {
          const std::int64_t rows = hi - lo;
          std::span<const float> src(input + lo * cin, static_cast<std::size_t>(rows * cin));
          std::span<float> dst(out + lo * out_c, static_cast<std::size_t>(rows * out_c));
          if (epi != nullptr) {
            gemm_fused(src, weight.data(), bspan, dst, rows, cin, out_c, *epi);
          } else if (bias != nullptr) {
            gemm_bias(src, weight.data(), bspan, dst, rows, cin, out_c);
          } else {
            gemm(src, weight.data(), dst, rows, cin, out_c);
          }
        });
    return;
  }

  // General path: one flat index space over (image, stripe) gives batch
  // parallelism and intra-image parallelism from the same loop, so N=1
  // deployment inference still uses the whole machine.
  const std::int64_t sc = stripes_per_image(g.rows());
  pool.parallel_for(0, batch * sc, [&](std::int64_t idx) {
    const std::int64_t n = idx / sc;
    const std::int64_t r0 = (idx % sc) * kStripePixels;
    const std::int64_t r1 = std::min(r0 + kStripePixels, g.rows());
    const std::int64_t rows = r1 - r0;
    std::span<float> cols =
        scratch_floats(ScratchSlot::kIm2col, static_cast<std::size_t>(rows * g.cols()));
    im2col_rows(input + in_shape.offset(n, 0, 0, 0), g, r0, r1, cols.data());
    std::span<float> dst(out + out_shape.offset(n, 0, 0, 0) + r0 * out_c,
                         static_cast<std::size_t>(rows * out_c));
    if (zero_skip) {
      gemm_zero_skip(cols, weight.data(), dst, rows, g.cols(), out_c);
      if (bias != nullptr) {
        for (std::int64_t i = 0; i < rows; ++i) {
          for (std::int64_t c = 0; c < out_c; ++c) dst[i * out_c + c] += bias[c];
        }
      }
    } else if (epi != nullptr) {
      gemm_fused(cols, weight.data(), bspan, dst, rows, g.cols(), out_c, *epi);
    } else if (bias != nullptr) {
      gemm_bias(cols, weight.data(), bspan, dst, rows, g.cols(), out_c);
    } else {
      gemm(cols, weight.data(), dst, rows, g.cols(), out_c);
    }
  });
}

// Allocating wrapper around the raw-pointer core.
Tensor conv2d_alloc(const Tensor& input, const Tensor& weight, const float* bias, Padding padding,
                    std::int64_t stride, bool zero_skip, const Epilogue* epi = nullptr) {
  const ConvGeometry g = conv_geometry_shape(input.shape(), weight, padding, stride);
  Tensor out(input.shape().n(), g.out_h, g.out_w, weight.shape().dim(3));
  conv2d_impl(input.raw(), input.shape(), weight, bias, padding, stride, zero_skip, epi,
              out.raw());
  return out;
}

ConvGeometry conv_geometry_fp16(const Shape& in_s, const Shape& w_s, Padding padding,
                                std::int64_t stride) {
  if (!w_s.valid()) {
    throw std::invalid_argument("conv2d_fp16: invalid weight shape " + w_s.to_string());
  }
  if (in_s.c() != w_s.dim(2)) {
    throw std::invalid_argument("conv2d_fp16: input channels " + std::to_string(in_s.c()) +
                                " != weight in_channels " + std::to_string(w_s.dim(2)));
  }
  const std::int64_t kh = w_s.dim(0);
  const std::int64_t kw = w_s.dim(1);
  if (padding == Padding::kSame) return same_geometry(in_s.h(), in_s.w(), in_s.c(), kh, kw, stride);
  if (stride != 1) {
    throw std::invalid_argument("conv2d_fp16: VALID padding supports stride 1 only");
  }
  return valid_geometry(in_s.h(), in_s.w(), in_s.c(), kh, kw);
}

// Implicit im2col source for the fp16 GEMM: widens the k-slice [p0, p0+kc) of
// im2col row `row` (stripe-local; `row0` rebases to the image row space)
// straight from the NHWC fp16 activations. The fp16 conv path never builds a
// column matrix — lowering happens inside the GEMM's A-pack, so the largest
// intermediate of the explicit scheme (rows x kh*kw*c halves, written by
// im2col and re-read by the pack) disappears. Values are identical to
// lowering first and widening after, so conv results stay bit-identical.
struct Im2colFp16Source {
  const fp16::Half* img;  // base of batch image n
  const ConvGeometry* g;
  std::int64_t row0;      // first image-space im2col row of this stripe
};

void im2col_fp16_row(const void* vctx, std::int64_t row, std::int64_t p0, std::int64_t kc,
                     float* dst) {
  const auto& s = *static_cast<const Im2colFp16Source*>(vctx);
  const ConvGeometry& g = *s.g;
  const std::int64_t c = g.channels;
  const std::int64_t kwc = g.kw * c;
  const std::int64_t r = s.row0 + row;
  const std::int64_t oy = r / g.out_w;
  const std::int64_t ox = r % g.out_w;
  const std::int64_t iy0 = oy * g.stride - g.pad_top;
  const std::int64_t ix0 = ox * g.stride - g.pad_left;
  // Column q maps to kernel row (q / (kw*c)) and cell (q % (kw*c)); within one
  // kernel row, consecutive kx taps are adjacent in NHWC memory, so the whole
  // in-bounds cell range [lo, hi) widens as a single contiguous F16C run with
  // at most one zero-fill on either side for the horizontal padding.
  const std::int64_t lo = std::max<std::int64_t>(0, -ix0) * c;
  const std::int64_t hi = (std::min(g.kw, g.in_w - ix0)) * c;
  std::int64_t q = p0;
  const std::int64_t q_end = p0 + kc;
  std::int64_t ky = q / kwc;
  std::int64_t cell = q - ky * kwc;
  while (q < q_end) {
    const std::int64_t len = std::min(kwc - cell, q_end - q);
    const std::int64_t iy = iy0 + ky;
    if (iy < 0 || iy >= g.in_h || hi <= lo) {
      std::fill(dst, dst + len, 0.0F);
    } else {
      const std::int64_t cut0 = std::clamp(lo, cell, cell + len);
      const std::int64_t cut1 = std::clamp(hi, cell, cell + len);
      std::fill(dst, dst + (cut0 - cell), 0.0F);
      fp16::convert_to_float(s.img + (iy * g.in_w + ix0) * c + cut0, dst + (cut0 - cell),
                             cut1 - cut0);
      std::fill(dst + (cut1 - cell), dst + len, 0.0F);
    }
    dst += len;
    q += len;
    ++ky;
    cell = 0;
  }
}

// Shared fp16-storage forward. Exactly one of out_h / out_f receives the
// result: out_h gets each stripe rounded to binary16 once, out_f stores the
// fp32 accumulator stripes directly. Raw NHWC in/out (see conv2d_impl); the
// Tensor entry points allocate and delegate.
void conv2d_fp16_impl(const fp16::Half* input, const Shape& in_shape,
                      const fp16::HalfTensor& weight, const Tensor* bias, const Epilogue& epi,
                      Padding padding, std::int64_t stride, fp16::Half* out_h, float* out_f) {
  const ConvGeometry g = conv_geometry_fp16(in_shape, weight.shape(), padding, stride);
  const std::int64_t out_c = weight.shape().dim(3);
  const std::int64_t batch = in_shape.n();
  if (bias != nullptr && bias->numel() != out_c) {
    throw std::invalid_argument("conv2d_fp16: bias numel must equal out_channels");
  }
  const Shape out_shape(batch, g.out_h, g.out_w, out_c);
  const std::span<const fp16::Half> wspan(weight.raw(),
                                          static_cast<std::size_t>(weight.numel()));
  const std::span<const float> bspan =
      bias != nullptr ? std::span<const float>{bias->raw(), static_cast<std::size_t>(out_c)}
                      : std::span<const float>{};
  // For 1x1 stride-1 the im2col is the identity, so the GEMM reads straight
  // off the NHWC fp16 activations (g.cols() == channels there). Everything
  // else lowers implicitly inside the GEMM's A-pack (see Im2colFp16Source).
  const bool fast_1x1 = g.kh == 1 && g.kw == 1 && g.stride == 1;
  const std::int64_t sc = stripes_per_image(g.rows());
  ThreadPool::global().parallel_for(0, batch * sc, [&](std::int64_t idx) {
    const std::int64_t n = idx / sc;
    const std::int64_t r0 = (idx % sc) * kStripePixels;
    const std::int64_t r1 = std::min(r0 + kStripePixels, g.rows());
    const std::int64_t rows = r1 - r0;
    const std::int64_t base = out_shape.offset(n, 0, 0, 0) + r0 * out_c;
    std::span<float> dst;
    if (out_f != nullptr) {
      dst = {out_f + base, static_cast<std::size_t>(rows * out_c)};
    } else {
      dst = scratch_floats(ScratchSlot::kF16OutStripe, static_cast<std::size_t>(rows * out_c));
    }
    if (fast_1x1) {
      const std::span<const fp16::Half> a{input + (n * g.rows() + r0) * g.channels,
                                          static_cast<std::size_t>(rows * g.channels)};
      gemm_fp16w(a, wspan, bspan, dst, rows, g.cols(), out_c, epi);
    } else {
      const Im2colFp16Source src{input + in_shape.offset(n, 0, 0, 0), &g, r0};
      gemm_fp16_rows(im2col_fp16_row, &src, wspan, bspan, dst, rows, g.cols(), out_c, epi);
    }
    if (out_h != nullptr) {
      fp16::convert_to_half(dst.data(), out_h + base, rows * out_c);
    }
  });
}
}  // namespace

ConvGeometry conv_geometry(const Tensor& input, const Tensor& weight, Padding padding,
                           std::int64_t stride) {
  return conv_geometry_shape(input.shape(), weight, padding, stride);
}

Tensor conv2d(const Tensor& input, const Tensor& weight, Padding padding, std::int64_t stride) {
  return conv2d_alloc(input, weight, nullptr, padding, stride, /*zero_skip=*/false);
}

Tensor conv2d_zero_skip(const Tensor& input, const Tensor& weight, Padding padding,
                        std::int64_t stride) {
  return conv2d_alloc(input, weight, nullptr, padding, stride, /*zero_skip=*/true);
}

Tensor conv2d_bias(const Tensor& input, const Tensor& weight, const Tensor& bias, Padding padding,
                   std::int64_t stride) {
  const std::int64_t out_c = weight.shape().dim(3);
  if (bias.numel() != out_c) {
    throw std::invalid_argument("conv2d_bias: bias numel must equal out_channels");
  }
  return conv2d_alloc(input, weight, bias.raw(), padding, stride, /*zero_skip=*/false);
}

Tensor conv2d_fused(const Tensor& input, const Tensor& weight, const Tensor* bias,
                    const Epilogue& epilogue, Padding padding, std::int64_t stride) {
  const std::int64_t out_c = weight.shape().dim(3);
  if (bias != nullptr && bias->numel() != out_c) {
    throw std::invalid_argument("conv2d_fused: bias numel must equal out_channels");
  }
  return conv2d_alloc(input, weight, bias != nullptr ? bias->raw() : nullptr, padding, stride,
                      /*zero_skip=*/false, &epilogue);
}

void conv2d_into(const float* input, const Shape& in_shape, const Tensor& weight,
                 const Tensor* bias, const Epilogue* epilogue, Padding padding, float* out,
                 std::int64_t stride) {
  const std::int64_t out_c = weight.shape().dim(3);
  if (bias != nullptr && bias->numel() != out_c) {
    throw std::invalid_argument("conv2d_into: bias numel must equal out_channels");
  }
  conv2d_impl(input, in_shape, weight, bias != nullptr ? bias->raw() : nullptr, padding, stride,
              /*zero_skip=*/false, epilogue, out);
}

fp16::HalfTensor conv2d_fp16(const fp16::HalfTensor& input, const fp16::HalfTensor& weight,
                             const Tensor* bias, const Epilogue& epilogue, Padding padding,
                             std::int64_t stride) {
  const ConvGeometry g = conv_geometry_fp16(input.shape(), weight.shape(), padding, stride);
  fp16::HalfTensor out(input.shape().n(), g.out_h, g.out_w, weight.shape().dim(3));
  conv2d_fp16_impl(input.raw(), input.shape(), weight, bias, epilogue, padding, stride, out.raw(),
                   nullptr);
  return out;
}

Tensor conv2d_fp16_to_float(const fp16::HalfTensor& input, const fp16::HalfTensor& weight,
                            const Tensor* bias, const Epilogue& epilogue, Padding padding,
                            std::int64_t stride) {
  const ConvGeometry g = conv_geometry_fp16(input.shape(), weight.shape(), padding, stride);
  Tensor out(input.shape().n(), g.out_h, g.out_w, weight.shape().dim(3));
  conv2d_fp16_impl(input.raw(), input.shape(), weight, bias, epilogue, padding, stride, nullptr,
                   out.raw());
  return out;
}

void conv2d_fp16_into(const fp16::Half* input, const Shape& in_shape,
                      const fp16::HalfTensor& weight, const Tensor* bias, const Epilogue& epilogue,
                      Padding padding, fp16::Half* out, std::int64_t stride) {
  conv2d_fp16_impl(input, in_shape, weight, bias, epilogue, padding, stride, out, nullptr);
}

void conv2d_fp16_to_float_into(const fp16::Half* input, const Shape& in_shape,
                               const fp16::HalfTensor& weight, const Tensor* bias,
                               const Epilogue& epilogue, Padding padding, float* out,
                               std::int64_t stride) {
  conv2d_fp16_impl(input, in_shape, weight, bias, epilogue, padding, stride, nullptr, out);
}

Tensor conv2d_backward_input(const Tensor& grad_output, const Tensor& weight,
                             const Shape& input_shape, Padding padding, std::int64_t stride) {
  check_weight(weight);
  const std::int64_t out_c = weight.shape().dim(3);
  if (grad_output.shape().c() != out_c) {
    throw std::invalid_argument("conv2d_backward_input: grad_output channels mismatch");
  }
  Tensor probe(input_shape);  // only the shape is used
  const ConvGeometry g = conv_geometry(probe, weight, padding, stride);
  if (g.out_h != grad_output.shape().h() || g.out_w != grad_output.shape().w()) {
    throw std::invalid_argument("conv2d_backward_input: grad_output spatial dims mismatch");
  }
  Tensor grad_input(input_shape);
  ThreadPool& pool = ThreadPool::global();
  std::span<float> cols =
      scratch_floats(ScratchSlot::kConvCols, static_cast<std::size_t>(g.rows() * g.cols()));
  // Stripe the scatter over disjoint *input* row bands; each band receives
  // contributions in the same order as a serial col2im, so the result does not
  // depend on the thread count.
  const std::int64_t grain_y =
      std::max<std::int64_t>(1, kStripePixels / std::max<std::int64_t>(1, g.in_w));
  for (std::int64_t n = 0; n < input_shape.n(); ++n) {
    const float* go_base = grad_output.raw() + grad_output.shape().offset(n, 0, 0, 0);
    // cols = grad_out [rows x out_c] * weight^T [out_c x (kh*kw*cin)], striped
    // over output rows (disjoint writes).
    pool.parallel_for_chunks(0, g.rows(), kStripePixels, [&](std::int64_t lo, std::int64_t hi) {
      const std::int64_t rows = hi - lo;
      std::span<const float> go(go_base + lo * out_c, static_cast<std::size_t>(rows * out_c));
      std::span<float> dst(cols.data() + lo * g.cols(),
                           static_cast<std::size_t>(rows * g.cols()));
      gemm_a_bt(go, weight.data(), dst, rows, out_c, g.cols());
    });
    pool.parallel_for_chunks(0, g.in_h, grain_y, [&](std::int64_t y0, std::int64_t y1) {
      col2im_add_rows(cols.data(), g, grad_input, n, y0, y1);
    });
  }
  return grad_input;
}

namespace {
void backward_weight_impl(const Tensor& input, const Tensor& grad_output, Tensor& grad_weight,
                          float* grad_bias, Padding padding, std::int64_t stride) {
  check_weight(grad_weight);
  check_channels(input.shape(), grad_weight);
  const ConvGeometry g = conv_geometry(input, grad_weight, padding, stride);
  const std::int64_t out_c = grad_weight.shape().dim(3);
  if (grad_output.shape().h() != g.out_h || grad_output.shape().w() != g.out_w ||
      grad_output.shape().c() != out_c || grad_output.shape().n() != input.shape().n()) {
    throw std::invalid_argument("conv2d_backward_weight: grad_output shape mismatch");
  }
  const std::int64_t sc = stripes_per_image(g.rows());
  const std::int64_t total = input.shape().n() * sc;
  const std::int64_t wn = grad_weight.numel();
  // Per-stripe partial accumulators (weight grad + fused bias grad), reduced
  // below in fixed stripe order so the sum is bit-identical for any thread
  // count. The arena buffer is caller-owned; workers only write their slice.
  const std::int64_t slice = wn + (grad_bias != nullptr ? out_c : 0);
  std::span<float> partials =
      scratch_floats(ScratchSlot::kGradPartial, static_cast<std::size_t>(total * slice));
  std::fill(partials.begin(), partials.end(), 0.0F);
  ThreadPool::global().parallel_for(0, total, [&](std::int64_t idx) {
    const std::int64_t n = idx / sc;
    const std::int64_t r0 = (idx % sc) * kStripePixels;
    const std::int64_t r1 = std::min(r0 + kStripePixels, g.rows());
    const std::int64_t rows = r1 - r0;
    std::span<float> cols =
        scratch_floats(ScratchSlot::kIm2col, static_cast<std::size_t>(rows * g.cols()));
    im2col_rows(input, n, g, r0, r1, cols.data());
    std::span<const float> go(grad_output.raw() + grad_output.shape().offset(n, 0, 0, 0) +
                                  r0 * out_c,
                              static_cast<std::size_t>(rows * out_c));
    float* pw = partials.data() + idx * slice;
    // partial grad_w [(kh*kw*cin) x out_c] += cols^T * grad_out
    gemm_at_b_accumulate(cols, go, {pw, static_cast<std::size_t>(wn)}, g.cols(), rows, out_c);
    if (grad_bias != nullptr) {
      float* pb = pw + wn;
      for (std::int64_t i = 0; i < rows; ++i) {
        for (std::int64_t c = 0; c < out_c; ++c) pb[c] += go[i * out_c + c];
      }
    }
  });
  float* gw = grad_weight.raw();
  for (std::int64_t idx = 0; idx < total; ++idx) {
    const float* pw = partials.data() + idx * slice;
    for (std::int64_t i = 0; i < wn; ++i) gw[i] += pw[i];
    if (grad_bias != nullptr) {
      for (std::int64_t c = 0; c < out_c; ++c) grad_bias[c] += pw[wn + c];
    }
  }
}
}  // namespace

void conv2d_backward_weight(const Tensor& input, const Tensor& grad_output, Tensor& grad_weight,
                            Padding padding, std::int64_t stride) {
  backward_weight_impl(input, grad_output, grad_weight, nullptr, padding, stride);
}

void conv2d_backward_weight_bias(const Tensor& input, const Tensor& grad_output,
                                 Tensor& grad_weight, Tensor& grad_bias, Padding padding,
                                 std::int64_t stride) {
  if (grad_bias.numel() != grad_weight.shape().dim(3)) {
    throw std::invalid_argument("conv2d_backward_weight_bias: bias grad numel mismatch");
  }
  backward_weight_impl(input, grad_output, grad_weight, grad_bias.raw(), padding, stride);
}

Tensor conv2d_naive(const Tensor& input, const Tensor& weight, Padding padding,
                    std::int64_t stride) {
  const ConvGeometry g = conv_geometry(input, weight, padding, stride);
  const Shape& s = input.shape();
  const std::int64_t out_c = weight.shape().dim(3);
  Tensor out(s.n(), g.out_h, g.out_w, out_c);
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t oy = 0; oy < g.out_h; ++oy) {
      for (std::int64_t ox = 0; ox < g.out_w; ++ox) {
        for (std::int64_t oc = 0; oc < out_c; ++oc) {
          double acc = 0.0;
          for (std::int64_t ky = 0; ky < g.kh; ++ky) {
            const std::int64_t iy = oy * g.stride - g.pad_top + ky;
            if (iy < 0 || iy >= s.h()) continue;
            for (std::int64_t kx = 0; kx < g.kw; ++kx) {
              const std::int64_t ix = ox * g.stride - g.pad_left + kx;
              if (ix < 0 || ix >= s.w()) continue;
              for (std::int64_t ic = 0; ic < s.c(); ++ic) {
                acc += static_cast<double>(input(n, iy, ix, ic)) * weight(ky, kx, ic, oc);
              }
            }
          }
          out(n, oy, ox, oc) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

Conv2d::Conv2d(std::string name, std::int64_t kh, std::int64_t kw, std::int64_t in_c,
               std::int64_t out_c, Padding padding, bool with_bias, Rng& rng, std::int64_t stride)
    : name_(std::move(name)),
      padding_(padding),
      stride_(stride),
      weight_(name_ + ".weight", glorot_uniform_kernel(kh, kw, in_c, out_c, rng)) {
  if (with_bias) bias_.emplace(name_ + ".bias", Tensor(1, 1, 1, out_c));
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  if (bias_) return conv2d_bias(input, weight_.value, bias_->value, padding_, stride_);
  return conv2d(input, weight_.value, padding_, stride_);
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("Conv2d::backward called without forward(training=true)");
  }
  if (bias_) {
    // Bias grad rides on the same striped pass as the weight grad instead of a
    // second sweep over grad_output.
    conv2d_backward_weight_bias(cached_input_, grad_output, weight_.grad, bias_->grad, padding_,
                                stride_);
  } else {
    conv2d_backward_weight(cached_input_, grad_output, weight_.grad, padding_, stride_);
  }
  return conv2d_backward_input(grad_output, weight_.value, cached_input_.shape(), padding_,
                               stride_);
}

std::vector<Parameter*> Conv2d::parameters() {
  std::vector<Parameter*> out{&weight_};
  if (bias_) out.push_back(&*bias_);
  return out;
}

}  // namespace sesr::nn
