// Grouped convolution — the efficiency primitive behind CARN-M, SplitSR and
// GhostSR (paper Section 2: "variants of group convolution", orthogonal to
// SESR's overparameterization and combinable with it).
//
// in_c and out_c are split into `groups` equal slices; slice g of the output
// sees only slice g of the input. Equivalent to a block-diagonal full conv
// (property-tested), with groups x fewer parameters and MACs.
#pragma once

#include <string>

#include "nn/conv2d.hpp"
#include "nn/layer.hpp"

namespace sesr::nn {

// Functional forward: weight is (kh, kw, in_c/groups, out_c); output channel
// slice g = conv(input slice g, weight slice g).
Tensor conv2d_grouped(const Tensor& input, const Tensor& weight, std::int64_t groups,
                      Padding padding);

// Embed a grouped kernel into the equivalent block-diagonal dense kernel
// (kh, kw, in_c, out_c) — used by tests and by collapse-style analysis.
Tensor grouped_to_dense(const Tensor& weight, std::int64_t groups);

class GroupedConv2d final : public Layer {
 public:
  GroupedConv2d(std::string name, std::int64_t kh, std::int64_t kw, std::int64_t in_c,
                std::int64_t out_c, std::int64_t groups, Padding padding, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_}; }
  std::string name() const override { return name_; }

  std::int64_t groups() const { return groups_; }
  Parameter& weight() { return weight_; }

 private:
  std::string name_;
  std::int64_t groups_;
  std::int64_t in_c_;
  std::int64_t out_c_;
  Padding padding_;
  Parameter weight_;  // (kh, kw, in_c/groups, out_c)
  Tensor cached_input_;
};

}  // namespace sesr::nn
