// Single-threaded SGEMM used by the im2col convolution path.
//
// Row-major throughout: C[m x n] (+)= A[m x k] * B[k x n]. The implementation
// is a register-tiled, cache-blocked kernel: A and B are packed into
// contiguous MR-row / NR-column panels and multiplied by a 6x16 micro-kernel
// whose accumulators live in registers (dispatched to an AVX2+FMA build of the
// kernel at runtime when the CPU supports it). Threading happens *above* this
// layer — the convolution stripes its row space and calls gemm per stripe —
// so every call here is deterministic and allocation-free (packing buffers
// come from the per-thread scratch arena).
//
// `gemm_zero_skip` keeps the old branchy zero-skipping kernel. It only pays
// off when A is mostly zeros, which in this codebase means one thing: the
// padded identity probes of Algorithm 1 (collapse). Everything else should
// use the dense kernels.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/fp16.hpp"

namespace sesr::nn {

// Which micro-kernel build the dense GEMM dispatches to. kAuto picks the best
// the CPU supports (the default, chosen at startup); the explicit values exist
// so the numerical audit (src/check) can sweep the scalar and AVX2 kernels as
// separate optimized-vs-reference pairs on the same machine.
enum class GemmIsa { kAuto, kGeneric, kAvx2 };

// Force the micro-kernel dispatch; returns false (leaving the dispatch
// unchanged) when the requested ISA is not supported by this CPU. Only call
// between kernel invocations — not while another thread is inside a GEMM.
bool set_gemm_isa(GemmIsa isa);

// True when the AVX2+FMA micro-kernel is available on this CPU.
bool gemm_avx2_supported();

// Optional activation fused into the GEMM write-back. The micro-kernel
// applies it on the *last* k-block's store only (bias rides on the first
// block's store), so the fused result is bit-identical to running the plain
// GEMM and then a separate elementwise activation pass over C — minus the
// extra full-tensor read/write. kPRelu reads one slope per output column
// (i.e. per conv output channel when C is the im2col output).
struct Epilogue {
  enum class Act { kNone, kRelu, kPRelu };
  Act act = Act::kNone;
  const float* prelu_alpha = nullptr;  // n slopes; required iff act == kPRelu
};

// C = A * B. C must hold m*n elements; it is overwritten.
void gemm(std::span<const float> a, std::span<const float> b, std::span<float> c, std::int64_t m,
          std::int64_t k, std::int64_t n);

// C = A * B + bias, bias broadcast over rows (bias holds n elements). This is
// the fused epilogue used by conv2d_bias: the bias add rides on the final
// store of the GEMM instead of a second pass over the output.
void gemm_bias(std::span<const float> a, std::span<const float> b, std::span<const float> bias,
               std::span<float> c, std::int64_t m, std::int64_t k, std::int64_t n);

// C = act(A * B + bias) with the activation applied in the micro-kernel's
// final store (see Epilogue). bias may be empty (no bias add).
void gemm_fused(std::span<const float> a, std::span<const float> b, std::span<const float> bias,
                std::span<float> c, std::int64_t m, std::int64_t k, std::int64_t n,
                const Epilogue& epilogue);

// C = act(A * B + bias) where A [m x k] and B [k x n] are stored as binary16.
// Operands are widened to fp32 inside the pack (row-sized L1 buffers,
// vectorized through the fp16 dispatch seam) and fed to the same packed
// micro-kernel, so accumulation is fp32 and the result is bit-identical to
// converting A and B up front and calling gemm_fused. C is fp32; callers that
// want fp16 activations round the output stripe afterwards.
void gemm_fp16w(std::span<const fp16::Half> a, std::span<const fp16::Half> b,
                std::span<const float> bias, std::span<float> c, std::int64_t m, std::int64_t k,
                std::int64_t n, const Epilogue& epilogue);

// Produces the widened fp32 values of logical A row `row`, k-slice
// [p0, p0 + kc), into dst (kc floats). Called once per (row, k-block) from
// inside the fp16 GEMM's A-pack, so the values go straight into the packed
// panel without an intermediate A matrix ever existing in memory.
using Fp16RowSource = void (*)(const void* ctx, std::int64_t row, std::int64_t p0,
                               std::int64_t kc, float* dst);

// gemm_fp16w with an implicit A operand: rows are generated on demand by
// `src` instead of being read from a stored [m x k] matrix. This is how the
// fp16 conv path runs im2col — the lowering happens inside the pack, so the
// half-precision column matrix (the largest buffer of the explicit scheme,
// written once and re-read once per GEMM call) is never materialized. Results
// are bit-identical to building the A matrix with the same producer and
// calling gemm_fp16w, because the packed panels are identical.
void gemm_fp16_rows(Fp16RowSource src, const void* ctx, std::span<const fp16::Half> b,
                    std::span<const float> bias, std::span<float> c, std::int64_t m,
                    std::int64_t k, std::int64_t n, const Epilogue& epilogue);

// C += A * B (accumulating variant used by gradient accumulation over a batch).
void gemm_accumulate(std::span<const float> a, std::span<const float> b, std::span<float> c,
                     std::int64_t m, std::int64_t k, std::int64_t n);

// C = A^T * B where A is [k x m] row-major (so A^T is [m x k]).
void gemm_at_b(std::span<const float> a, std::span<const float> b, std::span<float> c,
               std::int64_t m, std::int64_t k, std::int64_t n);

// C += A^T * B.
void gemm_at_b_accumulate(std::span<const float> a, std::span<const float> b, std::span<float> c,
                          std::int64_t m, std::int64_t k, std::int64_t n);

// C = A * B^T where B is [n x k] row-major (so B^T is [k x n]).
void gemm_a_bt(std::span<const float> a, std::span<const float> b, std::span<float> c,
               std::int64_t m, std::int64_t k, std::int64_t n);

// C = A * B with rows of A scanned once and zero entries skipped. Use only
// when A is overwhelmingly zero (Algorithm-1 identity probes); on dense data
// the branch makes it several times slower than gemm().
void gemm_zero_skip(std::span<const float> a, std::span<const float> b, std::span<float> c,
                    std::int64_t m, std::int64_t k, std::int64_t n);

}  // namespace sesr::nn
