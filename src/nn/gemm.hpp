// Single-threaded SGEMM used by the im2col convolution path.
//
// Row-major throughout: C[m x n] (+)= A[m x k] * B[k x n]. The implementation
// is a register-tiled, cache-blocked kernel: A and B are packed into
// contiguous MR-row / NR-column panels and multiplied by a 6x16 micro-kernel
// whose accumulators live in registers (dispatched to an AVX2+FMA build of the
// kernel at runtime when the CPU supports it). Threading happens *above* this
// layer — the convolution stripes its row space and calls gemm per stripe —
// so every call here is deterministic and allocation-free (packing buffers
// come from the per-thread scratch arena).
//
// `gemm_zero_skip` keeps the old branchy zero-skipping kernel. It only pays
// off when A is mostly zeros, which in this codebase means one thing: the
// padded identity probes of Algorithm 1 (collapse). Everything else should
// use the dense kernels.
#pragma once

#include <cstdint>
#include <span>

namespace sesr::nn {

// Which micro-kernel build the dense GEMM dispatches to. kAuto picks the best
// the CPU supports (the default, chosen at startup); the explicit values exist
// so the numerical audit (src/check) can sweep the scalar and AVX2 kernels as
// separate optimized-vs-reference pairs on the same machine.
enum class GemmIsa { kAuto, kGeneric, kAvx2 };

// Force the micro-kernel dispatch; returns false (leaving the dispatch
// unchanged) when the requested ISA is not supported by this CPU. Only call
// between kernel invocations — not while another thread is inside a GEMM.
bool set_gemm_isa(GemmIsa isa);

// True when the AVX2+FMA micro-kernel is available on this CPU.
bool gemm_avx2_supported();

// C = A * B. C must hold m*n elements; it is overwritten.
void gemm(std::span<const float> a, std::span<const float> b, std::span<float> c, std::int64_t m,
          std::int64_t k, std::int64_t n);

// C = A * B + bias, bias broadcast over rows (bias holds n elements). This is
// the fused epilogue used by conv2d_bias: the bias add rides on the final
// store of the GEMM instead of a second pass over the output.
void gemm_bias(std::span<const float> a, std::span<const float> b, std::span<const float> bias,
               std::span<float> c, std::int64_t m, std::int64_t k, std::int64_t n);

// C += A * B (accumulating variant used by gradient accumulation over a batch).
void gemm_accumulate(std::span<const float> a, std::span<const float> b, std::span<float> c,
                     std::int64_t m, std::int64_t k, std::int64_t n);

// C = A^T * B where A is [k x m] row-major (so A^T is [m x k]).
void gemm_at_b(std::span<const float> a, std::span<const float> b, std::span<float> c,
               std::int64_t m, std::int64_t k, std::int64_t n);

// C += A^T * B.
void gemm_at_b_accumulate(std::span<const float> a, std::span<const float> b, std::span<float> c,
                          std::int64_t m, std::int64_t k, std::int64_t n);

// C = A * B^T where B is [n x k] row-major (so B^T is [k x n]).
void gemm_a_bt(std::span<const float> a, std::span<const float> b, std::span<float> c,
               std::int64_t m, std::int64_t k, std::int64_t n);

// C = A * B with rows of A scanned once and zero entries skipped. Use only
// when A is overwhelmingly zero (Algorithm-1 identity probes); on dense data
// the branch makes it several times slower than gemm().
void gemm_zero_skip(std::span<const float> a, std::span<const float> b, std::span<float> c,
                    std::int64_t m, std::int64_t k, std::int64_t n);

}  // namespace sesr::nn
