// Single-threaded SGEMM used by the im2col convolution path.
//
// Row-major throughout: C[m x n] (+)= A[m x k] * B[k x n]. The kernel is a
// cache-blocked i-k-j loop; it is not meant to rival vendor BLAS, but it keeps
// the convolution benchmarks honest on one core and has no dependencies.
#pragma once

#include <cstdint>
#include <span>

namespace sesr::nn {

// C = A * B. C must hold m*n elements; it is overwritten.
void gemm(std::span<const float> a, std::span<const float> b, std::span<float> c, std::int64_t m,
          std::int64_t k, std::int64_t n);

// C += A * B (accumulating variant used by gradient accumulation over a batch).
void gemm_accumulate(std::span<const float> a, std::span<const float> b, std::span<float> c,
                     std::int64_t m, std::int64_t k, std::int64_t n);

// C = A^T * B where A is [k x m] row-major (so A^T is [m x k]).
void gemm_at_b(std::span<const float> a, std::span<const float> b, std::span<float> c,
               std::int64_t m, std::int64_t k, std::int64_t n);

// C += A^T * B.
void gemm_at_b_accumulate(std::span<const float> a, std::span<const float> b, std::span<float> c,
                          std::int64_t m, std::int64_t k, std::int64_t n);

// C = A * B^T where B is [n x k] row-major (so B^T is [k x n]).
void gemm_a_bt(std::span<const float> a, std::span<const float> b, std::span<float> c,
               std::int64_t m, std::int64_t k, std::int64_t n);

}  // namespace sesr::nn
