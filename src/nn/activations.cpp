#include "nn/activations.hpp"

#include <stdexcept>

namespace sesr::nn {

Tensor relu(const Tensor& input) {
  Tensor out(input.shape());
  const float* pi = input.raw();
  float* po = out.raw();
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] = pi[i] > 0.0F ? pi[i] : 0.0F;
  return out;
}

Tensor relu_backward(const Tensor& input, const Tensor& grad_output) {
  if (input.shape() != grad_output.shape()) {
    throw std::invalid_argument("relu_backward: shape mismatch");
  }
  Tensor out(input.shape());
  const float* pi = input.raw();
  const float* pg = grad_output.raw();
  float* po = out.raw();
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] = pi[i] > 0.0F ? pg[i] : 0.0F;
  return out;
}

Tensor Relu::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  return relu(input);
}

Tensor Relu::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("Relu::backward before forward");
  return relu_backward(cached_input_, grad_output);
}

PRelu::PRelu(std::string name, std::int64_t channels, float initial_alpha)
    : name_(std::move(name)), alpha_(name_ + ".alpha", Tensor(1, 1, 1, channels)) {
  alpha_.value.fill(initial_alpha);
}

Tensor PRelu::forward(const Tensor& input, bool training) {
  if (input.shape().c() != alpha_.value.shape().c()) {
    throw std::invalid_argument("PRelu: channel mismatch");
  }
  if (training) cached_input_ = input;
  Tensor out(input.shape());
  const float* pi = input.raw();
  const float* pa = alpha_.value.raw();
  float* po = out.raw();
  const std::int64_t c = input.shape().c();
  const std::int64_t pixels = input.numel() / c;
  for (std::int64_t i = 0; i < pixels; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float v = pi[i * c + ch];
      po[i * c + ch] = v > 0.0F ? v : pa[ch] * v;
    }
  }
  return out;
}

Tensor PRelu::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("PRelu::backward before forward");
  if (grad_output.shape() != cached_input_.shape()) {
    throw std::invalid_argument("PRelu::backward: shape mismatch");
  }
  Tensor grad_input(cached_input_.shape());
  const float* pi = cached_input_.raw();
  const float* pg = grad_output.raw();
  const float* pa = alpha_.value.raw();
  float* pga = alpha_.grad.raw();
  float* pgi = grad_input.raw();
  const std::int64_t c = cached_input_.shape().c();
  const std::int64_t pixels = cached_input_.numel() / c;
  for (std::int64_t i = 0; i < pixels; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float v = pi[i * c + ch];
      const float g = pg[i * c + ch];
      if (v > 0.0F) {
        pgi[i * c + ch] = g;
      } else {
        pgi[i * c + ch] = pa[ch] * g;
        pga[ch] += v * g;
      }
    }
  }
  return grad_input;
}

}  // namespace sesr::nn
