// Activation layers: ReLU and trainable per-channel PReLU.
//
// SESR uses PReLU after each residual addition at training time; the
// hardware-friendly variant (Section 5.5) swaps PReLU for ReLU.
#pragma once

#include <string>

#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace sesr::nn {

// Stateless functional forms.
Tensor relu(const Tensor& input);
Tensor relu_backward(const Tensor& input, const Tensor& grad_output);

class Relu final : public Layer {
 public:
  explicit Relu(std::string name) : name_(std::move(name)) {}

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Tensor cached_input_;
};

// PReLU with one learnable slope per channel: y = x if x > 0 else alpha_c * x.
class PRelu final : public Layer {
 public:
  // alpha initialized to `initial_alpha` (Keras/TF default 0.25 is common for SR).
  PRelu(std::string name, std::int64_t channels, float initial_alpha = 0.25F);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&alpha_}; }
  std::string name() const override { return name_; }

  Parameter& alpha() { return alpha_; }
  const Parameter& alpha() const { return alpha_; }

 private:
  std::string name_;
  Parameter alpha_;  // (1, 1, 1, C)
  Tensor cached_input_;
};

}  // namespace sesr::nn
