#include "nn/init.hpp"

#include <cmath>
#include <stdexcept>

namespace sesr::nn {

Tensor he_normal_kernel(std::int64_t kh, std::int64_t kw, std::int64_t in_c, std::int64_t out_c,
                        Rng& rng) {
  Tensor w(kernel_shape(kh, kw, in_c, out_c));
  const float fan_in = static_cast<float>(kh * kw * in_c);
  const float stddev = std::sqrt(2.0F / fan_in);
  w.fill_normal(rng, 0.0F, stddev);
  return w;
}

Tensor glorot_uniform_kernel(std::int64_t kh, std::int64_t kw, std::int64_t in_c,
                             std::int64_t out_c, Rng& rng) {
  Tensor w(kernel_shape(kh, kw, in_c, out_c));
  const float fan_in = static_cast<float>(kh * kw * in_c);
  const float fan_out = static_cast<float>(kh * kw * out_c);
  const float limit = std::sqrt(6.0F / (fan_in + fan_out));
  w.fill_uniform(rng, -limit, limit);
  return w;
}

Tensor identity_kernel(std::int64_t kh, std::int64_t kw, std::int64_t channels) {
  if (kh % 2 == 0 || kw % 2 == 0) {
    throw std::invalid_argument(
        "identity_kernel: even kernels have no center tap; residuals collapse only into odd "
        "kernels (Algorithm 2)");
  }
  Tensor w(kernel_shape(kh, kw, channels, channels));
  const std::int64_t cy = kh / 2;
  const std::int64_t cx = kw / 2;
  for (std::int64_t c = 0; c < channels; ++c) w(cy, cx, c, c) = 1.0F;
  return w;
}

}  // namespace sesr::nn
