// Transposed convolution (deconvolution), needed by the FSRCNN baseline whose
// final layer is a 9x9 deconv with stride = scale.
//
// Implemented as the exact adjoint of a strided SAME convolution: forward here
// is conv2d_backward_input of the corresponding forward conv, and backward
// reuses the conv forward/weight-grad kernels. Output spatial size is
// (in * stride), matching TF's SAME transposed conv.
#pragma once

#include <string>

#include "nn/conv2d.hpp"
#include "nn/layer.hpp"

namespace sesr::nn {

// Functional forward: input (N, H, W, Cin), weight HWIO (kh, kw, Cout, Cin)
// — note in/out swapped relative to Conv2d, as in the adjoint view.
Tensor conv_transpose2d(const Tensor& input, const Tensor& weight, std::int64_t stride);

class ConvTranspose2d final : public Layer {
 public:
  ConvTranspose2d(std::string name, std::int64_t kh, std::int64_t kw, std::int64_t in_c,
                  std::int64_t out_c, std::int64_t stride, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_}; }
  std::string name() const override { return name_; }

  std::int64_t stride() const { return stride_; }
  Parameter& weight() { return weight_; }

 private:
  std::string name_;
  std::int64_t stride_;
  std::int64_t in_c_;
  std::int64_t out_c_;
  Parameter weight_;  // (kh, kw, out_c, in_c): kernel of the adjoint forward conv
  Tensor cached_input_;
};

}  // namespace sesr::nn
