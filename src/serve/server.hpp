// Asynchronous batched eval server over ONE collapsed SESR network — the
// single-network special case of the sharded front end (sharded_server.hpp).
//
// Request flow (see docs/SERVING.md for the full picture):
//
//   submit(frame) ──> bounded RequestQueue ──> batcher thread ──> shared
//                      (block / reject)         groups (H, W)      dispatch
//                                               micro-batches        │
//                                                          ┌─────────┴───────┐
//                                                     worker session ... worker session
//                                                     (SesrInference replica each)
//
// EvalServer wraps a ShardedServer holding exactly one route ("default", the
// network's scale, ServeOptions::precision), so every execution property of
// the sharded path — bit-identical batched/tiled/streaming results, fair
// round-robin tile scheduling, the optional bit-exact response cache
// (ServeOptions::cache_entries), drain-on-close shutdown — holds here too.
//
// shutdown() is graceful: no new submissions, but everything already accepted
// is executed and every future completes. The destructor calls shutdown().
#pragma once

#include <future>

#include "core/sesr_inference.hpp"
#include "serve/sharded_server.hpp"

namespace sesr::serve {

class EvalServer {
 public:
  // The network is copied (via its checkpoint form) into one replica per
  // worker session, so the caller's instance is not retained.
  EvalServer(const core::SesrInference& network, ServeOptions options);
  EvalServer(const EvalServer&) = delete;
  EvalServer& operator=(const EvalServer&) = delete;

  // Enqueue a (1, H, W, 1) Y frame. The future resolves to the upscaled
  // (1, scale*H, scale*W, 1) frame, or to QueueFullError (kReject overload),
  // ServerClosedError (after shutdown), or the execution error.
  std::future<Tensor> submit(Tensor frame) { return server_.submit(route_, std::move(frame)); }

  // Drain in-flight requests, complete every accepted future, stop all
  // threads. Idempotent; also run by the (defaulted) destructor via
  // ShardedServer's.
  void shutdown() { server_.shutdown(); }

  ServerStats stats() const { return server_.stats().total; }
  CacheStats cache_stats() const { return server_.stats().cache; }
  const ServeOptions& options() const { return server_.options(); }

 private:
  static NetworkRegistry single_registry(const core::SesrInference& network,
                                         const ServeOptions& options);

  RouteKey route_;
  ShardedServer server_;
};

}  // namespace sesr::serve
