// Asynchronous batched eval server over the collapsed SESR network.
//
// Request flow (see docs/SERVING.md for the full picture):
//
//   submit(frame) ──> bounded RequestQueue ──> batcher thread ──> dispatch
//                      (block / reject)         groups (H, W)      queue
//                                               micro-batches        │
//                                                          ┌─────────┴───────┐
//                                                     worker session ... worker session
//                                                     (SesrInference replica each)
//
// The batcher pops shape-compatible micro-batches (flush on max_delay_us or
// queue pressure) and converts each to execution units: a full-frame batch
// runs as ONE stacked (B, H, W, 1) upscale; a tiled frame is split into
// TileTasks fanned out across every worker; streaming frames run on the
// worker's line-buffer StreamingUpscaler. All paths are bit-identical to
// their single-threaded counterparts (the kernels are deterministic and the
// per-sample reduction orders are batch-invariant), which the serve stress
// test asserts.
//
// shutdown() is graceful: no new submissions, but everything already accepted
// is executed and every future completes. The destructor calls shutdown().
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <variant>
#include <vector>

#include "core/sesr_inference.hpp"
#include "core/streaming.hpp"
#include "core/tiled_inference.hpp"
#include "serve/request_queue.hpp"
#include "serve/serve_options.hpp"
#include "serve/stats.hpp"

namespace sesr::serve {

class EvalServer {
 public:
  // The network is copied (via its checkpoint form) into one replica per
  // worker session, so the caller's instance is not retained.
  EvalServer(const core::SesrInference& network, ServeOptions options);
  ~EvalServer();
  EvalServer(const EvalServer&) = delete;
  EvalServer& operator=(const EvalServer&) = delete;

  // Enqueue a (1, H, W, 1) Y frame. The future resolves to the upscaled
  // (1, scale*H, scale*W, 1) frame, or to QueueFullError (kReject overload),
  // ServerClosedError (after shutdown), or the execution error.
  std::future<Tensor> submit(Tensor frame);

  // Drain in-flight requests, complete every accepted future, stop all
  // threads. Idempotent; called by the destructor.
  void shutdown();

  ServerStats stats() const { return stats_.snapshot(); }
  const ServeOptions& options() const { return options_; }

 private:
  // One micro-batch of same-shape requests executed by a single worker.
  struct BatchUnit {
    std::vector<FrameRequest> requests;
    ExecMode mode = ExecMode::kFullFrame;  // resolved (never kAuto)
  };
  // One frame being tiled across workers; the last tile fulfils the promise.
  struct TiledJob {
    FrameRequest request;
    Tensor output;  // (1, scale*H, scale*W, 1); tiles write disjoint regions
    std::vector<core::TileTask> tasks;
    std::atomic<std::int64_t> remaining{0};
    std::atomic<bool> failed{false};
  };
  struct TileUnit {
    std::shared_ptr<TiledJob> job;
    std::size_t task_index = 0;
  };
  using Unit = std::variant<BatchUnit, TileUnit>;

  struct WorkerSession {
    explicit WorkerSession(const TensorMap& checkpoint) : network(checkpoint) {}
    core::SesrInference network;
    std::optional<core::StreamingUpscaler> streamer;  // built on first use
    std::thread thread;
  };

  ExecMode resolve_mode(const Shape& shape) const;
  void batcher_loop();
  void worker_loop(WorkerSession& session);
  void dispatch(Unit unit);              // blocks while the dispatch queue is deep
  bool next_unit(Unit& unit);            // false = closed and drained
  void execute(WorkerSession& session, Unit& unit);
  void run_batch(WorkerSession& session, BatchUnit& unit);
  void run_tile(WorkerSession& session, TileUnit& unit);

  ServeOptions options_;
  RequestQueue queue_;
  StatsRecorder stats_;
  std::atomic<std::uint64_t> next_id_{0};

  // Dispatch stage: units ready for any worker. Depth-bounded so backpressure
  // reaches the submission queue instead of hiding here.
  std::mutex dispatch_mutex_;
  std::condition_variable dispatch_not_empty_;
  std::condition_variable dispatch_not_full_;
  std::deque<Unit> dispatch_queue_;
  std::size_t dispatch_depth_limit_;
  bool dispatch_closed_ = false;

  std::vector<std::unique_ptr<WorkerSession>> sessions_;
  std::thread batcher_;
  std::once_flag shutdown_once_;
};

}  // namespace sesr::serve
