// Route keys and the multi-network registry behind the sharded server.
//
// A production deployment serves several collapsed SESR variants at once —
// different capacity tiers (M5 vs M11 vs XL), scale factors (x2 vs x4), and
// arithmetic precisions (fp32 vs fp16). A RouteKey names one such variant;
// the NetworkRegistry owns a checkpoint (TensorMap) per registered route so a
// ShardedServer can build bit-exact worker replicas per shard without keeping
// the caller's SesrInference alive. The same underlying network may be
// registered under several precisions: each route gets its own shard whose
// replicas are pinned to that precision.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/plan/execution_plan.hpp"
#include "core/sesr_inference.hpp"
#include "tensor/serialize.hpp"

namespace sesr::serve {

// submit() named a (network, scale, precision) route nobody registered.
class UnknownRouteError : public std::runtime_error {
 public:
  explicit UnknownRouteError(const std::string& route)
      : std::runtime_error("eval server: unknown route '" + route + "'") {}
};

// The routing coordinate of one served network variant.
struct RouteKey {
  std::string network;  // deployment name, e.g. "m5", "m11", "xl"
  std::int64_t scale = 2;
  core::InferencePrecision precision = core::InferencePrecision::kFp32;

  bool operator==(const RouteKey& other) const {
    return network == other.network && scale == other.scale && precision == other.precision;
  }
};

// Canonical spelling, e.g. "m5:2:fp32" — the CLI syntax of --networks and the
// per-route label in stats output.
std::string route_string(const RouteKey& key);

// Inverse of route_string; throws std::invalid_argument on malformed input.
// Scale-only shorthand "m5:2" defaults the precision to fp32.
RouteKey parse_route(const std::string& spec);

// One registered network: everything a shard needs to build worker replicas.
struct RegisteredNetwork {
  RouteKey key;
  core::SesrConfig config;
  TensorMap checkpoint;      // bit-exact round trip (SesrInference(TensorMap))
  std::int64_t exact_halo;   // receptive_field_radius of the collapsed net
  bool biased;               // any conv carries a bias (streaming-ineligible)
  // Exact per-LR-pixel activation arena coefficients of the route's compiled
  // execution plan at its registered precision: footprint.bytes(lr_pixels) is
  // the route's peak activation footprint for one frame of that size, and the
  // size every worker replica's arena is pre-reserved to at shard build.
  core::plan::PlanFootprint footprint;
};

// Collapsed networks keyed by route. add() snapshots the network into its
// checkpoint form, so the registry (and any server built from it) is
// independent of the caller's instance.
class NetworkRegistry {
 public:
  // Throws std::invalid_argument when the route is already registered or when
  // key.scale disagrees with the network's own scale.
  void add(const RouteKey& key, const core::SesrInference& network);

  bool contains(const RouteKey& key) const;
  // Throws UnknownRouteError when the route is not registered.
  const RegisteredNetwork& find(const RouteKey& key) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<RegisteredNetwork>& entries() const { return entries_; }

 private:
  std::vector<RegisteredNetwork> entries_;  // registration order = shard order
};

}  // namespace sesr::serve
