#include "serve/video_sessions.hpp"

namespace sesr::serve {

std::optional<VideoSessionTable::Snapshot> VideoSessionTable::lookup_prev(
    std::size_t route_id, std::uint64_t session_id, std::uint64_t seq) {
  if (!enabled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(Key{route_id, session_id});
  if (it == index_.end() || seq == 0 || it->second->seq != seq - 1) {
    ++stats_.misses;
    return std::nullopt;
  }
  entries_.splice(entries_.begin(), entries_, it->second);
  ++stats_.hits;
  Snapshot snap;
  snap.seq = it->second->seq;
  snap.lr = it->second->lr;  // deep copies: the table entry stays private
  snap.hr = it->second->hr;
  return snap;
}

void VideoSessionTable::publish(std::size_t route_id, std::uint64_t session_id,
                                std::uint64_t seq, const Tensor& lr, const Tensor& hr) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const Key key{route_id, session_id};
  auto it = index_.find(key);
  if (it != index_.end()) {
    if (it->second->seq >= seq) {
      ++stats_.stale_drops;
      return;
    }
    it->second->seq = seq;
    it->second->lr = lr;
    it->second->hr = hr;
    entries_.splice(entries_.begin(), entries_, it->second);
    ++stats_.publishes;
    return;
  }
  entries_.push_front(Entry{key, seq, lr, hr});
  index_.emplace(key, entries_.begin());
  ++stats_.publishes;
  if (entries_.size() > max_sessions_) {
    index_.erase(entries_.back().key);
    entries_.pop_back();
    ++stats_.evictions;
  }
}

void VideoSessionTable::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  index_.clear();
}

VideoSessionStats VideoSessionTable::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  VideoSessionStats s = stats_;
  s.sessions = entries_.size();
  return s;
}

}  // namespace sesr::serve
