// Policy knobs for the batched eval server (src/serve/server.hpp).
//
// The server accepts (1, H, W, 1) Y-frame requests into a bounded queue, a
// batcher thread groups compatible shapes into micro-batches, and a pool of
// worker sessions executes them. ServeOptions decides every trade-off in that
// pipeline: how large micro-batches may grow, how long the batcher may hold a
// partial batch, what happens when the queue is full, and which execution
// path (full-frame / tiled / streaming) each frame takes.
#pragma once

#include <cstdint>
#include <functional>

#include "core/tiled_inference.hpp"

namespace sesr::serve {

// What submit() does when the bounded queue is full.
enum class OverloadPolicy {
  kBlock,   // submit() waits for space (closed-loop producers)
  kReject,  // submit() fails the future immediately with QueueFullError
};

// SLO-aware admission control (serve/admission.hpp). Disabled by default:
// with p99_budget_us == 0 and no per-request deadlines, submit_admitted
// behaves exactly like submit. When a budget is set, each request is admitted
// against a per-route latency estimate (EWMA of shard service time scaled by
// the route's current in-system depth); a request whose estimate exceeds the
// budget is rewritten to a cheaper registered route (the degrade ladder:
// fp32 -> fp16 -> hybrid -> int8 at the same scale, and x4 -> the two-stage
// x2 path) or, when even the cheapest rung misses, shed with a typed
// ShedError instead of queueing unboundedly.
struct SloOptions {
  // Per-route p99 latency budget (microseconds). 0 disables SLO admission;
  // per-request deadlines still apply when callers pass them.
  std::int64_t p99_budget_us = 0;
  // Smoothing factor of the per-route service-time EWMA, in (0, 1]. Higher
  // reacts faster to load shifts; lower is steadier under bursty traffic.
  double ewma_alpha = 0.2;
  // Admit while estimate <= headroom * budget. Below 1.0 sheds early (keeps
  // slack for estimation error); above 1.0 tolerates mild overshoot.
  double headroom = 1.0;
  // Degrade before shedding: rewrite to a cheaper registered route whose
  // estimate fits the budget.
  bool allow_degrade = true;
  // Shed (fail the future with ShedError) when no rung fits. With false,
  // over-budget requests are admitted anyway (monitor-only mode).
  bool allow_shed = true;
  // Warmup: a route with fewer completed samples than this is always
  // admittable — the estimator has nothing trustworthy to shed on yet.
  std::uint64_t min_samples = 4;
};

// Which execution path a worker session uses for a frame.
enum class ExecMode {
  kFullFrame,  // SesrInference::upscale on the (possibly batched) frames
  kTiled,      // cut into TileTasks, fanned out across all workers
  kStreaming,  // per-worker StreamingUpscaler (line buffers; no biased nets)
  kAuto,       // frames >= tiled_threshold_pixels go kTiled, the rest batch
};

struct ServeOptions {
  // Micro-batching: the batcher groups up to max_batch same-shape frames,
  // flushing early after max_delay_us or when the queue is full (pressure).
  std::int64_t max_batch = 8;
  std::int64_t max_delay_us = 2000;

  // Bounded submission queue.
  std::size_t queue_capacity = 64;
  OverloadPolicy overload = OverloadPolicy::kBlock;

  // Worker sessions, each owning a collapsed-network replica.
  int workers = 4;

  ExecMode mode = ExecMode::kFullFrame;
  core::TilingOptions tiling;                        // kTiled / kAuto tile geometry
  std::int64_t tiled_threshold_pixels = 128 * 128;   // kAuto: LR pixels >= this tile

  // Arithmetic precision of every worker replica (full-frame, tiled and
  // streaming paths all follow it; see core::InferencePrecision). The
  // sharded server overrides this per shard with each route's own precision.
  core::InferencePrecision precision = core::InferencePrecision::kFp32;

  // Response cache: maximum (route, LR frame) -> HR frame entries kept in the
  // bit-exact LRU cache (src/serve/response_cache.hpp). 0 disables caching.
  std::size_t cache_entries = 0;

  // Cross-request tile fairness: with true, each request (and each tiled
  // frame's whole fan-out) occupies one dispatch lane and workers serve lanes
  // round-robin, so a large frame's tiles interleave with small requests.
  // With false, dispatch is a single FIFO per shard (a large fan-out runs to
  // completion ahead of everything submitted after it).
  bool fair_tiles = true;

  // SLO-aware admission control for submit_admitted / the TCP front end.
  SloOptions slo;

  // Tile fan-out granularity: how many TileTasks ride in one dispatch unit
  // (core::plan_tile_units). 1 = finest interleaving; larger values cut
  // dispatch overhead for huge grids at some fairness cost.
  std::int64_t tiles_per_unit = 1;

  // Video sessions: maximum live (route, session_id) snapshots kept for the
  // tile-delta path (serve/video_sessions.hpp), LRU-evicted beyond the bound.
  // 0 disables the table — submit_video still works but every frame runs the
  // full path.
  std::size_t video_sessions = 64;

  // Test seam: when set, every worker invokes this immediately before
  // executing a unit of work. The concurrency tests use it to hold workers on
  // a latch so overload and shutdown-while-full become deterministic.
  std::function<void()> worker_hook;
};

}  // namespace sesr::serve
