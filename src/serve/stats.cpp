#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>

namespace sesr::serve {

void StatsRecorder::on_completed(Clock::time_point enqueue) {
  const double us =
      std::chrono::duration<double, std::micro>(Clock::now() - enqueue).count();
  std::lock_guard<std::mutex> lock(mutex_);
  latency_us_.push_back(us);
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const std::size_t n = samples.size();
  // Nearest rank: ceil(p/100 * n), computed with a half-ULP guard. Without
  // it the binary representation of p/100 pushes exact products past their
  // integer (0.95 * 20 evaluates to 19.000000000000004, whose ceil selects
  // rank 20 — the max — instead of rank 19).
  const double exact = p / 100.0 * static_cast<double>(n);
  auto rank = static_cast<std::size_t>(std::ceil(exact - 1e-9));
  rank = std::clamp<std::size_t>(rank, 1, n);  // p=0 floors to the minimum; p=100 stays in range
  const std::size_t index = rank - 1;
  std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(index),
                   samples.end());
  return samples[index];
}

ServerStats StatsRecorder::snapshot() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.tiles = tiles_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.two_stage = two_stage_.load(std::memory_order_relaxed);
  s.video_frames = video_frames_.load(std::memory_order_relaxed);
  s.video_delta_frames = video_delta_frames_.load(std::memory_order_relaxed);
  s.video_tiles_reused = video_tiles_reused_.load(std::memory_order_relaxed);
  s.video_tiles_recomputed = video_tiles_recomputed_.load(std::memory_order_relaxed);
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    samples = latency_us_;
  }
  s.completed = samples.size();
  // Cache hits complete on the submit path without ever forming a batch;
  // counting them here would report occupancies above max_batch.
  const std::uint64_t batched = s.completed > s.cache_hits ? s.completed - s.cache_hits : 0;
  s.mean_batch_frames =
      s.batches == 0 ? 0.0 : static_cast<double>(batched) / static_cast<double>(s.batches);
  s.p50_us = percentile(samples, 50.0);
  s.p95_us = percentile(samples, 95.0);
  s.p99_us = percentile(samples, 99.0);
  s.max_us = samples.empty() ? 0.0 : *std::max_element(samples.begin(), samples.end());
  s.wall_seconds = std::chrono::duration<double>(Clock::now() - start_).count();
  s.fps = s.wall_seconds > 0.0 ? static_cast<double>(s.completed) / s.wall_seconds : 0.0;
  return s;
}

}  // namespace sesr::serve
