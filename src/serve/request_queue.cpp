#include "serve/request_queue.hpp"

#include <algorithm>

namespace sesr::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

RequestQueue::PushResult RequestQueue::push(FrameRequest& request, OverloadPolicy policy) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (policy == OverloadPolicy::kBlock) {
    not_full_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
  }
  if (closed_) return PushResult::kClosed;
  if (queue_.size() >= capacity_) return PushResult::kFull;  // kReject path
  queue_.push_back(std::move(request));
  // A full queue is the batcher's pressure signal; wake it even mid-wait.
  not_empty_.notify_one();
  return PushResult::kAccepted;
}

std::vector<FrameRequest> RequestQueue::pop_batch(std::int64_t max_batch,
                                                  std::chrono::microseconds max_delay) {
  max_batch = std::max<std::int64_t>(1, max_batch);
  // Clamp the flush delay to 10 minutes: a pathological max_delay (e.g.
  // INT64_MAX microseconds from a CLI) must not defer flushing forever, and
  // saturating_deadline keeps enqueue_time + delay from wrapping.
  max_delay = std::clamp(max_delay, std::chrono::microseconds(0),
                         std::chrono::microseconds(600'000'000LL));
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return {};  // closed and drained

  const auto key_h = queue_.front().frame.shape().h();
  const auto key_w = queue_.front().frame.shape().w();
  const auto deadline = saturating_deadline(queue_.front().enqueue_time, max_delay);
  auto compatible = [&] {
    std::int64_t n = 0;
    for (const FrameRequest& r : queue_) {
      if (r.frame.shape().h() == key_h && r.frame.shape().w() == key_w) ++n;
    }
    return n;
  };
  // Wait for the batch to fill unless the deadline passes, the queue comes
  // under pressure (full: flushing now unblocks producers), or we close. The
  // wait is pinned to steady_clock via wait_for with the remaining time
  // recomputed each wake (clock.hpp): condition_variable::wait_until would
  // re-base the steady deadline onto the condvar's native clock on common
  // implementations, so a wall-clock jump mid-wait could flush a partial
  // batch early or hold it past its real deadline.
  while (compatible() < max_batch && queue_.size() < capacity_ && !closed_) {
    const auto wait = next_wait(ServeClock::now(), deadline);
    if (wait <= std::chrono::microseconds(0)) break;
    not_empty_.wait_for(lock, wait);
  }

  std::vector<FrameRequest> batch;
  for (auto it = queue_.begin(); it != queue_.end() && std::ssize(batch) < max_batch;) {
    if (it->frame.shape().h() == key_h && it->frame.shape().w() == key_w) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  not_full_.notify_all();
  return batch;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace sesr::serve
