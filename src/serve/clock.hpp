// Steady-clock deadline arithmetic for the serve stack.
//
// Every latency and deadline computation in src/serve is pinned to
// std::chrono::steady_clock: enqueue stamps, batcher flush deadlines,
// per-request SLO budgets, and the stats samples derived from them. Mixing in
// system_clock anywhere would make a wall-clock jump (NTP step, manual date
// change, suspend/resume on some platforms) flush batches early, expire
// deadlines that have not elapsed, or record negative latencies. The helpers
// here keep that promise in the two places it is easy to lose:
//
//   * condition_variable::wait_until with a steady_clock time point is
//     converted through the condition variable's native clock on common
//     implementations (libstdc++ historically re-based onto system_clock), so
//     a wall jump mid-wait shifts the effective deadline. wait_until_steady
//     loops on wait_for with a remaining-time recomputed from
//     steady_clock::now() each wake — a jump can cost one spurious wakeup,
//     never a wrong flush decision.
//   * enqueue_time + delay overflows time_point for pathological delays
//     (e.g. a CLI passing INT64_MAX microseconds), wrapping the deadline into
//     the past. saturating_deadline clamps instead of wrapping.
//
// next_wait is the pure decision kernel of the wait loop, exposed so the
// tests can drive it with a simulated jumping clock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace sesr::serve {

// The one clock the serve stack keys latency and deadlines to.
using ServeClock = std::chrono::steady_clock;
static_assert(ServeClock::is_steady, "serve deadlines require a monotonic clock");

// `from + delay` without overflow: delays that would push past
// time_point::max() clamp to it, and negative delays clamp to `from` (a
// deadline never precedes its anchor).
inline ServeClock::time_point saturating_deadline(ServeClock::time_point from,
                                                  std::chrono::microseconds delay) {
  if (delay <= std::chrono::microseconds(0)) return from;
  const auto headroom = ServeClock::time_point::max() - from;
  if (std::chrono::duration_cast<std::chrono::microseconds>(headroom) <= delay) {
    return ServeClock::time_point::max();
  }
  return from + delay;
}

// How much longer to wait for `deadline` as seen from `now`; zero once the
// deadline has passed (never negative). Pure — the simulated-clock-jump tests
// feed it arbitrary `now` sequences, including ones that step backwards, and
// assert the wait never explodes or goes negative.
inline std::chrono::microseconds next_wait(ServeClock::time_point now,
                                           ServeClock::time_point deadline) {
  if (now >= deadline) return std::chrono::microseconds(0);
  return std::chrono::duration_cast<std::chrono::microseconds>(deadline - now);
}

// Remaining budget of a per-request deadline in microseconds; zero once
// expired. Identical arithmetic to next_wait, named for the admission path.
inline std::int64_t remaining_budget_us(ServeClock::time_point now,
                                        ServeClock::time_point deadline) {
  return next_wait(now, deadline).count();
}

// wait_until pinned to steady_clock: waits on `cv` until `pred()` holds or
// `deadline` (steady) passes, re-deriving the remaining wait from
// steady_clock::now() after every wakeup. Returns pred() at exit, matching
// condition_variable::wait_until's predicate overload.
template <class Pred>
bool wait_until_steady(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                       ServeClock::time_point deadline, Pred pred) {
  while (!pred()) {
    const auto wait = next_wait(ServeClock::now(), deadline);
    if (wait <= std::chrono::microseconds(0)) return pred();
    cv.wait_for(lock, wait);
  }
  return true;
}

}  // namespace sesr::serve
