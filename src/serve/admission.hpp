// SLO-aware admission control for the sharded server.
//
// One controller fronts every shard. Per route it keeps an EWMA of observed
// service time (batcher-dispatch to completion, recorded by the execution
// core) and, at admit time, estimates the latency a new request would see as
//
//     estimate = service_ewma * (in_system + 1) / workers
//
// where in_system counts the route's admitted-but-unresolved requests. When
// the estimate exceeds the budget (the smaller of the route's SLO p99 budget
// and the request's own remaining deadline), the controller walks the route's
// DEGRADE LADDER — registered routes of the same network that are strictly
// cheaper — and admits at the first rung whose estimate fits:
//
//     m5:4:fp32 -> m5:4:fp16 -> m5:4:int8 -> two-stage via m5:2:* -> shed
//
// Same-scale rungs are precision downgrades (fp32 -> fp16 -> hybrid -> int8).
// An x4 route additionally falls back to running the network's x2 sibling
// twice (two-stage), whose cost is estimated coarsely as 5x the x2 rung's
// single-pass estimate (stage 2 upscales a 4x-pixel intermediate). When no
// rung fits, the request is SHED with a typed ShedError instead of queueing
// unboundedly — under sustained overload, shedding is what keeps admitted
// requests inside the budget.
//
// A route with fewer than min_samples completed observations admits
// optimistically: the estimator has nothing trustworthy to shed on yet, and
// admitting is the only way to warm it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/registry.hpp"
#include "serve/serve_options.hpp"

namespace sesr::serve {

// submit_admitted() shed the request: every degrade rung's latency estimate
// exceeded the budget. The typed overload response of the serve stack.
class ShedError : public std::runtime_error {
 public:
  explicit ShedError(std::int64_t estimate_us, std::int64_t budget_us)
      : std::runtime_error("eval server: shed (estimated " + std::to_string(estimate_us) +
                           "us over budget " + std::to_string(budget_us) + "us)"),
        estimate_us(estimate_us),
        budget_us(budget_us) {}
  std::int64_t estimate_us;
  std::int64_t budget_us;
};

class AdmissionController {
 public:
  enum class Action {
    kAdmit,            // route unchanged
    kDegrade,          // rewritten to a cheaper same-scale route
    kDegradeTwoStage,  // x4 served as the x2 sibling applied twice
    kShed,             // no rung fits the budget
  };

  struct Decision {
    Action action = Action::kAdmit;
    std::size_t route = 0;         // shard index to execute on (x2 shard for two-stage)
    std::int64_t estimate_us = 0;  // estimate at the chosen rung (or the best rejected one)
    std::int64_t budget_us = 0;    // effective budget the decision was made against
  };

  // `routes` in shard order (NetworkRegistry::entries()). `workers` is the
  // per-shard worker count (ServeOptions::workers).
  AdmissionController(const std::vector<RegisteredNetwork>& routes, SloOptions slo, int workers);

  // Decide for a request targeting shard `route`. `deadline_budget_us` is the
  // request's remaining deadline (<= 0 = none); the effective budget is
  // min(slo.p99_budget_us, deadline remaining), with 0 meaning "no budget"
  // for each. With no budget at all the request is always admitted unchanged.
  // `in_system(shard)` must return the shard's admitted-but-unresolved
  // request count.
  Decision admit(std::size_t route, std::int64_t deadline_budget_us,
                 const std::function<std::int64_t(std::size_t)>& in_system) const;

  // Record one observed service time (dispatch to completion) for `route`.
  // Lock-free; called from worker threads on every executed request.
  void record(std::size_t route, std::int64_t service_us);

  // Current EWMA in microseconds (0 until the first sample) — for stats and
  // tests.
  double ewma_us(std::size_t route) const;
  std::uint64_t samples(std::size_t route) const;

  const SloOptions& slo() const { return slo_; }

 private:
  struct Ewma {
    std::atomic<double> value{0.0};  // 0.0 = no samples yet
    std::atomic<std::uint64_t> count{0};
  };
  struct Rung {
    std::size_t route = 0;
    bool two_stage = false;
  };

  std::int64_t estimate_us(const Rung& rung,
                           const std::function<std::int64_t(std::size_t)>& in_system) const;

  SloOptions slo_;
  int workers_;
  std::unique_ptr<Ewma[]> ewma_;                 // per shard
  std::vector<std::vector<Rung>> ladder_;       // per shard: self first, then cheaper rungs
};

}  // namespace sesr::serve
