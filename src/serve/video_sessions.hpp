// Bounded per-session frame store of the video-session delta path.
//
// A video session is a client-owned (route, session_id) stream of frames with
// monotonically increasing sequence numbers. The table keeps, per live
// session, the most recent published (seq, LR frame, HR output) snapshot.
// submit_video looks the snapshot up when frame seq arrives: only an exact
// predecessor (stored seq == seq - 1, same shape) enables the tile-delta
// path — anything else (first frame, gap from a pipelined or dropped frame,
// resolution change, evicted session) falls back to a full re-upscale, which
// is always bit-correct, and then re-primes the session.
//
// The stored LR frame is the byte-confirmation key, tile-granular: the delta
// planner byte-compares every tile's haloed footprint against it, so a stale
// or corrupt snapshot can only mark tiles dirty (full tile recompute), never
// splice a wrong pixel. publish() is monotonic per session — a late
// out-of-order completion can never roll a session back to an older frame.
//
// Eviction is strict LRU over a bounded session count (ServeOptions::
// video_sessions; 0 disables the table and every submit_video runs the full
// path). clear() drops every session; reload_routes calls it alongside the
// response-cache clear, because snapshots computed by the old weights must
// not splice into outputs of the new ones.
//
// Thread safety: lookup/publish/clear/stats are safe from any thread (one
// mutex; tensors are deep-copied across the lock boundary).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "tensor/tensor.hpp"

namespace sesr::serve {

struct VideoSessionStats {
  std::uint64_t publishes = 0;    // snapshots stored (new frame accepted)
  std::uint64_t hits = 0;         // lookups that found the exact predecessor
  std::uint64_t misses = 0;       // first frames, seq gaps, evicted sessions
  std::uint64_t stale_drops = 0;  // publishes rejected by the monotonic guard
  std::uint64_t evictions = 0;    // sessions displaced by the LRU bound
  std::size_t sessions = 0;       // live sessions right now
};

class VideoSessionTable {
 public:
  explicit VideoSessionTable(std::size_t max_sessions) : max_sessions_(max_sessions) {}

  bool enabled() const { return max_sessions_ > 0; }
  std::size_t max_sessions() const { return max_sessions_; }

  // The previous frame of a session, copied out under the lock.
  struct Snapshot {
    std::uint64_t seq = 0;
    Tensor lr;  // the frame as submitted — the tile-granular confirmation key
    Tensor hr;  // the bit-exact output served for it
  };

  // Returns the stored snapshot iff the session exists and holds exactly the
  // predecessor of `seq` (stored seq + 1 == seq); refreshes LRU recency.
  // Everything else is a miss — the caller runs the full path.
  std::optional<Snapshot> lookup_prev(std::size_t route_id, std::uint64_t session_id,
                                      std::uint64_t seq);

  // Store frame `seq`'s (LR, HR) pair for the session, creating or advancing
  // it. Ignored (stale_drops) when the session already holds seq or newer:
  // publication order follows completion order, not submission order, and a
  // session must never move backwards.
  void publish(std::size_t route_id, std::uint64_t session_id, std::uint64_t seq,
               const Tensor& lr, const Tensor& hr);

  // Drop every session (route reload: old-weight outputs must not survive).
  void clear();

  VideoSessionStats stats() const;

 private:
  using Key = std::pair<std::size_t, std::uint64_t>;  // (route_id, session_id)
  struct Entry {
    Key key;
    std::uint64_t seq = 0;
    Tensor lr;
    Tensor hr;
  };
  using EntryList = std::list<Entry>;  // front = most recently used

  const std::size_t max_sessions_;
  mutable std::mutex mutex_;
  EntryList entries_;
  std::map<Key, EntryList::iterator> index_;
  VideoSessionStats stats_;
};

}  // namespace sesr::serve
