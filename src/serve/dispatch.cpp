#include "serve/dispatch.hpp"

#include <algorithm>
#include <utility>

#include "core/video_session.hpp"
#include "serve/admission.hpp"
#include "serve/clock.hpp"
#include "serve/response_cache.hpp"
#include "serve/video_sessions.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::serve {

// ------------------------------------------------------- FairDispatchQueue

FairDispatchQueue::FairDispatchQueue(std::size_t shard_count, std::size_t depth_limit, bool fair)
    : depth_limit_(std::max<std::size_t>(1, depth_limit)), fair_(fair), shards_(shard_count) {}

bool FairDispatchQueue::push(std::size_t shard, std::uint64_t lane, Unit&& unit,
                             std::size_t weight) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock, [&] { return weight == 0 || total_units_ < depth_limit_ || closed_; });
  if (closed_) return false;
  if (!fair_) lane = 0;  // single FIFO lane per shard
  ShardLanes& sl = shards_.at(shard);
  auto it = sl.by_id.find(lane);
  if (it == sl.by_id.end()) {
    // A new logical request: schedule it ahead of lanes that already had a
    // turn (fresh lanes stay FIFO among themselves). Lane counts are bounded
    // by the depth limit, so the linear scan stays cheap.
    auto pos = std::find_if(sl.rotation.begin(), sl.rotation.end(),
                            [](const Lane& l) { return l.served; });
    pos = sl.rotation.insert(pos, Lane{lane, false, {}});
    it = sl.by_id.emplace(lane, pos).first;
  }
  it->second->units.emplace_back(std::move(unit), weight);
  ++sl.units;
  total_units_ += weight;
  lock.unlock();
  not_empty_.notify_all();
  return true;
}

bool FairDispatchQueue::pop(std::size_t shard, Unit& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  ShardLanes& sl = shards_.at(shard);
  not_empty_.wait(lock, [&] { return closed_ || sl.units > 0; });
  if (sl.units == 0) return false;  // closed and this shard drained
  Lane& lane = sl.rotation.front();
  out = std::move(lane.units.front().first);
  total_units_ -= lane.units.front().second;
  lane.units.pop_front();
  lane.served = true;
  --sl.units;
  if (lane.units.empty()) {
    sl.by_id.erase(lane.id);
    sl.rotation.pop_front();
  } else {
    // Round-robin: the served lane goes to the back of the rotation.
    sl.rotation.splice(sl.rotation.end(), sl.rotation, sl.rotation.begin());
  }
  lock.unlock();
  not_full_.notify_all();
  return true;
}

void FairDispatchQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

std::size_t FairDispatchQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_units_;
}

// ------------------------------------------------------------- unit execution

namespace {

// Stack same-shape (1, H, W, 1) frames into one (B, H, W, 1) tensor. NHWC is
// contiguous per sample, so this is a straight concatenation of the buffers.
Tensor stack_frames(const std::vector<FrameRequest>& requests) {
  const Shape& s = requests.front().frame.shape();
  Tensor batched(static_cast<std::int64_t>(requests.size()), s.h(), s.w(), s.c());
  float* dst = batched.raw();
  for (const FrameRequest& r : requests) {
    dst = std::copy(r.frame.raw(), r.frame.raw() + r.frame.numel(), dst);
  }
  return batched;
}

// One observed service sample (batcher dispatch to resolution) into the
// admission EWMA. Recorded on success AND failure — a failing route still
// consumed a worker for that long.
void record_service(FrameRequest& request) {
  if (request.admission == nullptr) return;
  if (request.dispatch_time == ServeClock::time_point{}) return;  // never dispatched
  request.admission->record(
      request.admit_route,
      std::chrono::duration_cast<std::chrono::microseconds>(ServeClock::now() -
                                                            request.dispatch_time)
          .count());
}

// Last words of a resolved request: the external completion callback, then
// the drain counter. The promise is already fulfilled, so a done_hook that
// calls future.get() cannot block, and a drainer woken by inflight->done()
// observes the fully resolved request.
void finish_request(FrameRequest& request) {
  if (request.done_hook) request.done_hook();
  if (request.inflight != nullptr) request.inflight->done();
}

}  // namespace

// Completion bookkeeping shared by the batch and tile paths. Every side
// effect — cache insert, route counter, stats sample — precedes set_value, so
// a caller whose future has resolved observes the completion in stats() and
// gets a cache hit on the next identical submission.
void complete_request(FrameRequest& request, Tensor output, StatsRecorder& stats) {
  record_service(request);
  if (request.continuation) {
    // Two-stage degrade: stage 1 done; the continuation enqueues stage 2,
    // which carries the promise / done_hook / inflight to final resolution.
    auto continuation = std::move(request.continuation);
    request.continuation = nullptr;
    continuation(std::move(request), std::move(output));
    return;
  }
  if (request.cache != nullptr) request.cache->insert(request.route_id, request.frame, output);
  if (request.video != nullptr) {
    // Session publication precedes set_value for the same reason the cache
    // insert does: a closed-loop client that observed this completion must
    // find the snapshot when it submits the next frame.
    request.video->publish(request.route_id, request.video_session, request.video_seq,
                           request.frame, output);
  }
  if (request.route != nullptr) request.route->completed.fetch_add(1, std::memory_order_relaxed);
  stats.on_completed(request.enqueue_time);
  request.promise.set_value(std::move(output));
  finish_request(request);
}

void fail_request(FrameRequest& request, const std::exception_ptr& error, StatsRecorder& stats) {
  record_service(request);
  if (request.route != nullptr) request.route->failed.fetch_add(1, std::memory_order_relaxed);
  stats.on_failed();
  request.promise.set_exception(error);
  finish_request(request);
}

namespace {

void run_batch(WorkerSession& session, BatchUnit& unit, StatsRecorder& stats) {
  std::vector<Tensor> outputs;
  try {
    outputs.reserve(unit.requests.size());
    if (unit.mode == ExecMode::kStreaming) {
      if (!session.streamer) session.streamer.emplace(session.network);
      for (const FrameRequest& r : unit.requests) {
        outputs.push_back(session.streamer->upscale(r.frame));
      }
    } else if (unit.requests.size() == 1) {
      outputs.push_back(session.network.upscale(unit.requests.front().frame));
    } else {
      // The whole micro-batch in one stacked upscale. Per-sample results are
      // bit-identical to B=1 calls: the conv kernels stripe each image
      // independently with batch-invariant reduction orders.
      const Tensor batched = session.network.upscale(stack_frames(unit.requests));
      for (std::int64_t i = 0; i < std::ssize(unit.requests); ++i) {
        outputs.push_back(slice_batch(batched, i));
      }
    }
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (FrameRequest& r : unit.requests) fail_request(r, error, stats);
    return;
  }
  for (std::size_t i = 0; i < unit.requests.size(); ++i) {
    complete_request(unit.requests[i], std::move(outputs[i]), stats);
  }
}

void run_tiles(WorkerSession& session, TileUnit& unit, StatsRecorder& stats) {
  TiledJob& job = *unit.job;
  for (std::size_t t = unit.first_task; t < unit.first_task + unit.task_count; ++t) {
    const core::TileTask& task = job.tasks[t];
    try {
      Tensor roi;
      if (job.mode == ExecMode::kStreaming) {
        if (!session.streamer) session.streamer.emplace(session.network);
        roi = core::upscale_tile_streaming(*session.streamer, job.request.frame, task);
      } else {
        roi = core::upscale_tile(session.network, job.request.frame, task);
      }
      core::paste_tile(job.output, roi, task, session.network.config().scale);
      stats.on_tile();
    } catch (...) {
      if (!job.failed.exchange(true, std::memory_order_acq_rel)) {
        fail_request(job.request, std::current_exception(), stats);
      }
    }
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        !job.failed.load(std::memory_order_acquire)) {
      complete_request(job.request, std::move(job.output), stats);
    }
  }
}

}  // namespace

void execute_unit(WorkerSession& session, Unit& unit, StatsRecorder& stats) {
  if (auto* batch = std::get_if<BatchUnit>(&unit)) {
    run_batch(session, *batch, stats);
  } else {
    run_tiles(session, std::get<TileUnit>(unit), stats);
  }
}

}  // namespace sesr::serve
