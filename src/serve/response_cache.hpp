// Bit-exact LRU response cache for repeated frames.
//
// Video and game traffic repeats LR content heavily (static UI, paused
// frames, looping scenes); a collapsed SESR upscale is deterministic, so an
// identical (route, LR frame) pair always yields the identical HR output.
// The cache keys on an FNV-1a hash over the raw LR float bytes mixed with the
// route id and frame geometry, and — because a served result must be
// BIT-IDENTICAL to a cold run, never merely probably identical — every hash
// hit is confirmed by comparing the stored LR bytes before the stored HR
// tensor is returned. A hash collision therefore degrades to a miss, never to
// a wrong frame. Eviction is strict LRU over a bounded entry count;
// max_entries == 0 disables the cache entirely (every lookup misses, inserts
// are dropped), which is the single-network server's default.
//
// Thread safety: lookup/insert/stats are safe from any thread (one mutex; the
// tensors copied in and out are never shared across the lock boundary).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "tensor/tensor.hpp"

namespace sesr::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;      // lookups that found nothing usable
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;   // LRU displacement (capacity pressure)
  std::uint64_t collisions = 0;  // hash matched but LR bytes differed
  std::size_t entries = 0;
};

class ResponseCache {
 public:
  explicit ResponseCache(std::size_t max_entries) : max_entries_(max_entries) {}

  bool enabled() const { return max_entries_ > 0; }
  std::size_t max_entries() const { return max_entries_; }

  // FNV-1a over `bytes`, continuing from `seed` (use kFnvOffsetBasis to
  // start). Exposed for the content-hash tests.
  static constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
  static std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed);

  // Content hash of one (route, frame) pair: route id, H, W, and the raw
  // float bytes, all folded through FNV-1a.
  static std::uint64_t content_hash(std::size_t route_id, const Tensor& frame);

  // Returns a copy of the cached HR output when (route_id, frame) has been
  // inserted and its LR bytes match bit for bit; refreshes LRU recency.
  std::optional<Tensor> lookup(std::size_t route_id, const Tensor& frame);

  // Stores `output` for (route_id, frame), evicting the least recently used
  // entry when full. Re-inserting an existing key refreshes its recency.
  void insert(std::size_t route_id, const Tensor& frame, const Tensor& output);

  void clear();
  CacheStats stats() const;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::size_t route_id = 0;
    Tensor frame;   // the LR key, kept for exact confirmation
    Tensor output;  // the HR value
  };
  using EntryList = std::list<Entry>;  // front = most recently used

  bool matches(const Entry& entry, std::size_t route_id, const Tensor& frame) const;

  const std::size_t max_entries_;
  mutable std::mutex mutex_;
  EntryList entries_;
  std::unordered_map<std::uint64_t, EntryList::iterator> index_;  // hash -> entry
  CacheStats stats_;
};

}  // namespace sesr::serve
