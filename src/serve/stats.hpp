// Request-level counters and latency percentiles for the eval server.
//
// Workers record one sample per completed request (submit-to-completion,
// microseconds); counters are plain atomics. snapshot() is safe to call while
// traffic is in flight and computes percentiles over the samples so far.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace sesr::serve {

// Immutable view returned by EvalServer::stats().
struct ServerStats {
  std::uint64_t submitted = 0;   // accepted into the queue
  std::uint64_t rejected = 0;    // refused by the kReject overload policy
  std::uint64_t completed = 0;   // futures fulfilled (value or error)
  std::uint64_t failed = 0;      // futures fulfilled with an exception
  std::uint64_t batches = 0;     // execution units dispatched (batch or tile job)
  std::uint64_t tiles = 0;       // TileTasks executed by the fan-out path
  double mean_batch_frames = 0.0;  // completed / batches
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  double wall_seconds = 0.0;  // since server start
  double fps = 0.0;           // completed / wall_seconds
};

class StatsRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  StatsRecorder() : start_(Clock::now()) {}

  void on_submitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void on_rejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void on_batch() { batches_.fetch_add(1, std::memory_order_relaxed); }
  void on_tile() { tiles_.fetch_add(1, std::memory_order_relaxed); }
  void on_failed() { failed_.fetch_add(1, std::memory_order_relaxed); }

  // One completed request; `enqueue` is its submit() timestamp.
  void on_completed(Clock::time_point enqueue);

  ServerStats snapshot() const;

 private:
  Clock::time_point start_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> tiles_{0};
  std::atomic<std::uint64_t> failed_{0};
  mutable std::mutex mutex_;           // guards latency_us_
  std::vector<double> latency_us_;
};

// p in [0, 100]; empty samples give 0. (Nearest-rank on a sorted copy.)
double percentile(std::vector<double> samples, double p);

}  // namespace sesr::serve
