// Request-level counters and latency percentiles for the eval server.
//
// Workers record one sample per completed request (submit-to-completion,
// microseconds); counters are plain atomics. snapshot() is safe to call while
// traffic is in flight and computes percentiles over the samples so far.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace sesr::serve {

// Immutable view returned by EvalServer::stats().
struct ServerStats {
  std::uint64_t submitted = 0;   // accepted (queued or served from cache)
  std::uint64_t rejected = 0;    // refused by the kReject overload policy
  std::uint64_t completed = 0;   // futures fulfilled (value or error)
  std::uint64_t failed = 0;      // futures fulfilled with an exception
  std::uint64_t batches = 0;     // execution units dispatched (batch or tile job)
  std::uint64_t tiles = 0;       // TileTasks executed by the fan-out path
  std::uint64_t cache_hits = 0;  // requests fulfilled by the response cache
  std::uint64_t shed = 0;        // refused by SLO admission (typed ShedError)
  std::uint64_t degraded = 0;    // admitted on a cheaper route than requested
  std::uint64_t two_stage = 0;   // x4 requests served as x2 applied twice
  std::uint64_t video_frames = 0;        // frames submitted through submit_video
  std::uint64_t video_delta_frames = 0;  // of those, served by the tile-delta path
  std::uint64_t video_tiles_reused = 0;      // HR tiles spliced from session snapshots
  std::uint64_t video_tiles_recomputed = 0;  // dirty tiles re-upscaled by delta jobs
  double mean_batch_frames = 0.0;  // (completed - cache_hits) / batches
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  double wall_seconds = 0.0;  // since server start
  double fps = 0.0;           // completed / wall_seconds
};

class StatsRecorder {
 public:
  // Latency samples and wall_seconds are pinned to the monotonic clock: a
  // wall-clock step (NTP, manual date change) must never produce negative or
  // inflated latencies.
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady, "serve stats require a monotonic clock");

  StatsRecorder() : start_(Clock::now()) {}

  void on_submitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void on_rejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void on_batch() { batches_.fetch_add(1, std::memory_order_relaxed); }
  void on_tile() { tiles_.fetch_add(1, std::memory_order_relaxed); }
  void on_failed() { failed_.fetch_add(1, std::memory_order_relaxed); }
  void on_cache_hit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void on_shed() { shed_.fetch_add(1, std::memory_order_relaxed); }
  void on_degraded() { degraded_.fetch_add(1, std::memory_order_relaxed); }
  void on_two_stage() { two_stage_.fetch_add(1, std::memory_order_relaxed); }
  void on_video_frame() { video_frames_.fetch_add(1, std::memory_order_relaxed); }
  void on_video_delta(std::uint64_t reused, std::uint64_t recomputed) {
    video_delta_frames_.fetch_add(1, std::memory_order_relaxed);
    video_tiles_reused_.fetch_add(reused, std::memory_order_relaxed);
    video_tiles_recomputed_.fetch_add(recomputed, std::memory_order_relaxed);
  }

  // One completed request; `enqueue` is its submit() timestamp.
  void on_completed(Clock::time_point enqueue);

  ServerStats snapshot() const;

 private:
  Clock::time_point start_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> tiles_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> two_stage_{0};
  std::atomic<std::uint64_t> video_frames_{0};
  std::atomic<std::uint64_t> video_delta_frames_{0};
  std::atomic<std::uint64_t> video_tiles_reused_{0};
  std::atomic<std::uint64_t> video_tiles_recomputed_{0};
  mutable std::mutex mutex_;           // guards latency_us_
  std::vector<double> latency_us_;
};

// Per-network counters of the sharded server (one block per route). Updated
// lock-free from the submit path and the worker sessions; read via
// ShardedServer::stats().
struct RouteCounters {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> cache_hits{0};
  // High-water mark of any worker replica's plan arena (bytes) after a unit,
  // i.e. the largest activation footprint this route has actually paid.
  std::atomic<std::uint64_t> peak_activation_bytes{0};
};

// Nearest-rank percentile: the smallest sample s such that at least p percent
// of the samples are <= s. p is clamped to [0, 100]; empty input returns 0;
// a single sample is every percentile of itself; p = 100 is the maximum (the
// upper rank is clamped in-range, never one past the end).
double percentile(std::vector<double> samples, double p);

}  // namespace sesr::serve
