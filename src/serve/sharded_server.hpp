// Multi-network sharded serving front end.
//
//   submit(route, frame) / submit_admitted(route, frame, opts)
//        │  route lookup · SLO admission (shed / degrade / two-stage rewrite)
//        │  response-cache probe (bit-exact hit -> immediate)
//        ▼
//   shard[m5:2:fp32]   shard[m11:2:fp16]  ...       (one per registered route)
//   RequestQueue        RequestQueue                 bounded, per shard
//   batcher thread      batcher thread               shape-grouping micro-batches
//        │                   │
//        └────── shared FairDispatchQueue ───────────one global depth bound,
//        ▲                   ▲                       per-shard lanes, round-robin
//   worker sessions     worker sessions              (replicas of the shard's net,
//                                                    pinned to the route precision)
//
// Each registered (network, scale, precision) route gets a SHARD: its own
// bounded submission queue, its own batcher, and `workers` sessions holding
// bit-exact replicas of that route's network. All shards dispatch into ONE
// shared bounded queue (global backpressure) whose round-robin lane scheduler
// keeps a large frame's tile fan-out from starving small requests — see
// dispatch.hpp. The response cache sits in front of the pipeline: a hit is
// fulfilled on the submit path with an output that is bit-identical to a cold
// run (the cache stores and confirms the exact LR bytes; the audit pair
// `cached_vs_cold_serve` holds it to that).
//
// Admission (serve/admission.hpp) sits between route lookup and the queue:
// when ServeOptions::slo sets a p99 budget (or the request carries its own
// deadline), an over-budget request is rewritten to a cheaper registered
// route (precision downgrade, or x4 served as the x2 sibling twice) or shed
// with a typed ShedError. submit() with the default SloOptions behaves
// exactly as before.
//
// Lifecycle: RUNNING -> (begin_drain) DRAINING -> (resume) RUNNING
//                                   └-> reload_routes: swap checkpoints while
//                                       drained, then resume
//           any state -> (shutdown / destructor) CLOSED
//
// Draining stops admission (submits fail with typed ServerDrainingError) and
// blocks until every previously accepted request — including mid-flight tile
// fan-outs and two-stage continuations — has resolved its future. shutdown()
// drains first, then closes queues and joins every thread: no accepted
// request is ever abandoned. Both are idempotent; the destructor calls
// shutdown().
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/admission.hpp"
#include "serve/dispatch.hpp"
#include "serve/registry.hpp"
#include "serve/request_queue.hpp"
#include "serve/response_cache.hpp"
#include "serve/serve_options.hpp"
#include "serve/stats.hpp"
#include "serve/video_sessions.hpp"

namespace sesr::serve {

// Per-route counter snapshot inside ShardedStats.
struct RouteStats {
  std::string route;  // route_string of the shard's key
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;
  double service_ewma_us = 0.0;  // admission estimator (0 until warmed)
  // Largest per-replica activation arena observed while serving this route
  // (bytes, 0 until the first unit executes). Workers are pre-sized from the
  // route's registered PlanFootprint, so in steady state this equals the
  // pre-sized bound and never grows between stats() calls.
  std::uint64_t peak_activation_bytes = 0;
};

struct ShardedStats {
  ServerStats total;                  // aggregate across every shard
  std::vector<RouteStats> per_route;  // registration order
  CacheStats cache;
  VideoSessionStats video;
};

// Per-request knobs of submit_admitted.
struct SubmitOptions {
  // Remaining latency budget of this request in microseconds; 0 = none.
  // Admission shrinks the SLO budget to it (expiry is advisory: an admitted
  // request is never cancelled mid-execution).
  std::int64_t deadline_us = 0;
  // Fires after the future resolves (value or exception), on the fulfilling
  // thread; future.get() cannot block by then. The TCP front end's bridge
  // back into its IO loop. Fires on every resolution path, including
  // synchronous rejections.
  std::function<void()> done_hook;
  // Overrides OverloadPolicy::kBlock with kReject for this request: a caller
  // that must never park a thread (the network IO loop) gets QueueFullError
  // instead of waiting for queue space.
  bool never_block = false;
};

// What admission decided for one submit_admitted call.
struct AdmitResult {
  std::future<Tensor> future;
  std::string served_route;  // route actually executing (differs when degraded)
  bool degraded = false;     // rewritten to a cheaper route
  bool two_stage = false;    // x4 served as x2 applied twice
  bool shed = false;         // future fails with ShedError
  // Video sessions (submit_video only): the tile-delta path engaged — the
  // session's previous frame was found, and only `tiles_recomputed` of
  // `tiles_total` grid tiles are being re-upscaled (the rest splice from the
  // previous HR output, bit-identical to a full re-upscale).
  bool delta = false;
  std::size_t tiles_total = 0;
  std::size_t tiles_recomputed = 0;
};

// Per-request video-session identity of submit_video. The client owns both
// fields: session_id names the stream, seq must increase by exactly 1 per
// frame for the delta path to engage (any gap falls back to a full
// re-upscale, which re-primes the session).
struct VideoOptions {
  std::uint64_t session_id = 0;
  std::uint64_t seq = 0;
};

class ShardedServer {
 public:
  // Builds one shard per registry entry. The registry is snapshotted (its
  // checkpoints are copied into the shards), so it need not outlive the
  // server. `options` applies to every shard (workers, batching, queue depth,
  // mode, tiling, overload, slo) except `precision`, which each route
  // overrides.
  ShardedServer(const NetworkRegistry& registry, ServeOptions options);
  ~ShardedServer();
  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  // Enqueue a (1, H, W, 1) Y frame for the given route. The future resolves
  // to the upscaled frame, or to UnknownRouteError, QueueFullError (kReject
  // overload), ShedError (SLO admission), ServerDrainingError (while
  // draining), ServerClosedError (after shutdown), or the execution error.
  std::future<Tensor> submit(const RouteKey& route, Tensor frame);

  // submit() plus per-request deadline / completion hook / admission
  // visibility: the result reports whether the request was degraded to a
  // cheaper route, rewritten to the two-stage x2 path, or shed.
  AdmitResult submit_admitted(const RouteKey& route, Tensor frame, SubmitOptions opts = {});

  // Submit one frame of a video session. Bit-identical to submit_admitted's
  // output for the same frame; when the session's previous frame (seq - 1,
  // same shape) is live in the session table, only the tiles whose haloed LR
  // footprints changed are re-upscaled and the rest splice from the previous
  // HR output. Differences from submit_admitted: the degrade ladder is
  // skipped (a session pins its route — serving one frame from a cheaper
  // network would fork the stream's bit-history; shedding still applies), and
  // the response cache is bypassed (the session table is the reuse
  // mechanism). Every completed frame re-primes the session.
  AdmitResult submit_video(const RouteKey& route, Tensor frame, const VideoOptions& video,
                           SubmitOptions opts = {});

  // Stop admitting (submits fail with ServerDrainingError) and block until
  // every accepted request has resolved. Threads stay up; resume() reopens
  // admission. Safe to call repeatedly.
  void begin_drain();
  void resume();
  bool draining() const { return draining_.load(std::memory_order_seq_cst); }

  // Swap every shard's checkpoint for the matching route in `registry` (the
  // route set must be identical, same registration order). Requires a drained
  // server: call begin_drain() first, reload, then resume(). Worker replicas
  // are rebuilt from the new checkpoints and the response cache is cleared —
  // cached outputs of the old weights must not survive the swap.
  void reload_routes(const NetworkRegistry& registry);

  // Drain in-flight requests, complete every accepted future, stop all
  // threads. Idempotent; called by the destructor.
  void shutdown();

  ShardedStats stats() const;
  const ServeOptions& options() const { return options_; }
  std::size_t shard_count() const { return shards_.size(); }
  const AdmissionController& admission() const { return admission_; }

 private:
  struct Shard {
    std::size_t index = 0;
    RegisteredNetwork net;
    std::unique_ptr<RequestQueue> queue;
    std::vector<std::unique_ptr<WorkerSession>> sessions;
    std::thread batcher;
    RouteCounters counters;
  };

  ExecMode resolve_mode(const Shape& shape) const;
  void batcher_loop(Shard& shard);
  void worker_loop(Shard& shard, WorkerSession& session);
  std::int64_t in_system(std::size_t shard) const;
  // Fan a TiledJob's units into the dispatch queue (first unit weight 1, the
  // rest weight 0) and resolve the request with a typed error if dispatch
  // closed mid-fan-out. Shared by the kTiled batch path and video delta jobs.
  void dispatch_tiled_job(Shard& shard, const std::shared_ptr<TiledJob>& job);
  // Stage 2 of a two-stage degrade: wrap the intermediate into a fresh
  // request carrying stage 1's promise and push it straight to the x2
  // shard's dispatch (weight 0 — never blocks a worker thread).
  void enqueue_second_stage(std::size_t shard_index, FrameRequest&& stage1, Tensor&& intermediate);

  ServeOptions options_;
  StatsRecorder stats_;
  ResponseCache cache_;
  VideoSessionTable sessions_;
  FairDispatchQueue dispatch_;
  AdmissionController admission_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<std::string, std::size_t> route_index_;  // route_string -> shard
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> closed_{false};
  InflightTracker inflight_;
  std::once_flag shutdown_once_;
};

}  // namespace sesr::serve
