// Multi-network sharded serving front end.
//
//   submit(route, frame)
//        │  route lookup · response-cache probe (bit-exact hit -> immediate)
//        ▼
//   shard[m5:2:fp32]   shard[m11:2:fp16]  ...       (one per registered route)
//   RequestQueue        RequestQueue                 bounded, per shard
//   batcher thread      batcher thread               shape-grouping micro-batches
//        │                   │
//        └────── shared FairDispatchQueue ───────────one global depth bound,
//        ▲                   ▲                       per-shard lanes, round-robin
//   worker sessions     worker sessions              (replicas of the shard's net,
//                                                    pinned to the route precision)
//
// Each registered (network, scale, precision) route gets a SHARD: its own
// bounded submission queue, its own batcher, and `workers` sessions holding
// bit-exact replicas of that route's network. All shards dispatch into ONE
// shared bounded queue (global backpressure) whose round-robin lane scheduler
// keeps a large frame's tile fan-out from starving small requests — see
// dispatch.hpp. The response cache sits in front of the pipeline: a hit is
// fulfilled on the submit path with an output that is bit-identical to a cold
// run (the cache stores and confirms the exact LR bytes; the audit pair
// `cached_vs_cold_serve` holds it to that).
//
// shutdown() is graceful and idempotent: all accepted work completes, every
// future resolves, all threads join. The destructor calls shutdown().
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/dispatch.hpp"
#include "serve/registry.hpp"
#include "serve/request_queue.hpp"
#include "serve/response_cache.hpp"
#include "serve/serve_options.hpp"
#include "serve/stats.hpp"

namespace sesr::serve {

// Per-route counter snapshot inside ShardedStats.
struct RouteStats {
  std::string route;  // route_string of the shard's key
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;
};

struct ShardedStats {
  ServerStats total;                  // aggregate across every shard
  std::vector<RouteStats> per_route;  // registration order
  CacheStats cache;
};

class ShardedServer {
 public:
  // Builds one shard per registry entry. The registry is snapshotted (its
  // checkpoints are copied into the shards), so it need not outlive the
  // server. `options` applies to every shard (workers, batching, queue depth,
  // mode, tiling, overload) except `precision`, which each route overrides.
  ShardedServer(const NetworkRegistry& registry, ServeOptions options);
  ~ShardedServer();
  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  // Enqueue a (1, H, W, 1) Y frame for the given route. The future resolves
  // to the upscaled frame, or to UnknownRouteError, QueueFullError (kReject
  // overload), ServerClosedError (after shutdown), or the execution error.
  std::future<Tensor> submit(const RouteKey& route, Tensor frame);

  // Drain in-flight requests, complete every accepted future, stop all
  // threads. Idempotent; called by the destructor.
  void shutdown();

  ShardedStats stats() const;
  const ServeOptions& options() const { return options_; }
  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    std::size_t index = 0;
    RegisteredNetwork net;
    std::unique_ptr<RequestQueue> queue;
    std::vector<std::unique_ptr<WorkerSession>> sessions;
    std::thread batcher;
    RouteCounters counters;
  };

  ExecMode resolve_mode(const Shape& shape) const;
  void batcher_loop(Shard& shard);
  void worker_loop(Shard& shard, WorkerSession& session);

  ServeOptions options_;
  StatsRecorder stats_;
  ResponseCache cache_;
  FairDispatchQueue dispatch_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<std::string, std::size_t> route_index_;  // route_string -> shard
  std::atomic<std::uint64_t> next_id_{0};
  std::once_flag shutdown_once_;
};

}  // namespace sesr::serve
