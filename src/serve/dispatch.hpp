// Execution units, the shared fair dispatch queue, and the worker-session
// execution core — the machinery common to EvalServer (one network) and
// ShardedServer (a registry of networks).
//
// Units flow   batcher(s) ──push──> FairDispatchQueue ──pop──> worker sessions
//
// The queue is ONE object shared by every shard: a single global depth bound
// (backpressure reaches the submission queues, never pools in a staging
// area), with per-shard unit storage because a worker can only execute units
// of the shard whose network replica it holds.
//
// Fairness: within a shard, units are grouped into LANES — one lane per
// logical request (a micro-batch is one lane entry; a tiled frame's whole tile
// fan-out shares one lane). pop() serves fresh lanes first (FIFO among
// themselves), then cycles already-served lanes round-robin, one unit per
// turn: a newly arrived small request is scheduled after at most the units
// already executing, and a 100-tile frame interleaves 1:1 with its peers
// instead of holding the workers for its entire fan-out. With fair == false
// every unit lands in a single FIFO lane per shard, which is exactly the
// pre-fairness behaviour (and the bench's comparison baseline).
//
// Depth is counted in LOGICAL requests, not units: push() takes a weight, and
// the batchers push a tiled job's first unit with weight 1 and the rest of
// its fan-out with weight 0. A weight-0 push never blocks — otherwise a
// batcher could stall mid-fan-out with the rest of the job stuck behind it in
// the FIFO submission queue, where no lane scheduling can reach it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "core/sesr_inference.hpp"
#include "core/streaming.hpp"
#include "core/tiled_inference.hpp"
#include "serve/request_queue.hpp"
#include "serve/serve_options.hpp"
#include "serve/stats.hpp"

namespace sesr::serve {

// One micro-batch of same-shape requests executed by a single worker.
struct BatchUnit {
  std::vector<FrameRequest> requests;
  ExecMode mode = ExecMode::kFullFrame;  // resolved (never kAuto)
};

// One frame being tiled across a shard's workers; the last tile fulfils the
// promise.
struct TiledJob {
  FrameRequest request;
  Tensor output;  // (1, scale*H, scale*W, 1); tiles write disjoint regions
  std::vector<core::TileTask> tasks;
  std::atomic<std::int64_t> remaining{0};  // tiles left, counts down to 0
  std::atomic<bool> failed{false};
  // Which execution path recomputes each tile. kTiled/kFullFrame both run
  // upscale_tile; kStreaming (a video-session delta job on a streaming-mode
  // server) runs the worker's StreamingUpscaler over the haloed crop so the
  // recomputed tiles land bit-identical to the session's full streaming
  // frames.
  ExecMode mode = ExecMode::kTiled;
};

// A contiguous run of a TiledJob's tasks (ServeOptions::tiles_per_unit wide).
struct TileUnit {
  std::shared_ptr<TiledJob> job;
  std::size_t first_task = 0;
  std::size_t task_count = 1;
};

using Unit = std::variant<BatchUnit, TileUnit>;

class FairDispatchQueue {
 public:
  // `depth_limit` bounds the TOTAL weighted depth across all shards.
  FairDispatchQueue(std::size_t shard_count, std::size_t depth_limit, bool fair);

  // Blocks while the queue is at its weighted depth limit (weight-0 pushes
  // never block: they extend an already-admitted job). Returns false when the
  // queue was closed: the unit was NOT enqueued and NOT consumed — a caller
  // holding it by name can still fail its promises with a typed error.
  bool push(std::size_t shard, std::uint64_t lane, Unit&& unit, std::size_t weight = 1);

  // Pops the next unit for `shard`: fresh lanes first in arrival order, then
  // already-served lanes round-robin. Blocks until a unit arrives; returns
  // false once the queue is closed and the shard is drained.
  bool pop(std::size_t shard, Unit& out);

  // Wakes everyone; pending units remain poppable (drain semantics).
  void close();

  // Current weighted depth (admitted logical requests still queued).
  std::size_t size() const;

 private:
  struct Lane {
    std::uint64_t id = 0;
    bool served = false;  // has pop() taken a unit from this lane yet?
    std::deque<std::pair<Unit, std::size_t>> units;  // (unit, weight)
  };
  struct ShardLanes {
    std::list<Lane> rotation;  // front = next lane to serve
    std::unordered_map<std::uint64_t, std::list<Lane>::iterator> by_id;
    std::size_t units = 0;
  };

  const std::size_t depth_limit_;
  const bool fair_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<ShardLanes> shards_;
  std::size_t total_units_ = 0;
  bool closed_ = false;
};

// One worker's private execution context: a bit-exact network replica
// (reconstructed from the registry checkpoint) and its lazily-built streamer.
struct WorkerSession {
  explicit WorkerSession(const TensorMap& checkpoint) : network(checkpoint) {}
  core::SesrInference network;
  std::optional<core::StreamingUpscaler> streamer;  // built on first use
  std::thread thread;
  // Serializes unit execution against reload_routes' replica rebuild. The
  // request's inflight token is released when its promise is fulfilled
  // (inside execute_unit), but the worker still reads `network` for arena
  // bookkeeping afterwards — a reload that only waited for inflight==0 would
  // rebuild the replica under that tail read.
  std::mutex busy;
  // Steady-state arena bound the shard pre-reserved this replica to (from the
  // route's registered PlanFootprint). A tile unit that leaves the arena above
  // presized_bytes — an oversized tiled frame — triggers a trim back to
  // presized_pixels so one outlier never pins worker RSS for the process
  // lifetime.
  std::int64_t presized_pixels = 0;
  std::int64_t presized_bytes = 0;
};

// Executes one unit on one session: runs the batch / tile work, inserts
// completed outputs into each request's response cache (when routed through
// one), fulfils the promises, and records stats. Cache insertion happens
// BEFORE the promise is fulfilled, so a caller that observed a completion can
// rely on the next identical submission hitting the cache.
void execute_unit(WorkerSession& session, Unit& unit, StatsRecorder& stats);

// Resolve one request with a value / an error. Shared by the execution core
// and the server's submit/drain paths so every resolution runs the same
// ordered epilogue: cache insert (success only) -> route counter -> stats ->
// admission EWMA sample -> promise -> done_hook -> inflight done. When the
// request carries a two-stage continuation, complete_request hands it
// (request, output) INSTEAD of fulfilling the promise — stage 2 owns the
// promise, done_hook, and inflight from then on.
void complete_request(FrameRequest& request, Tensor output, StatsRecorder& stats);
void fail_request(FrameRequest& request, const std::exception_ptr& error, StatsRecorder& stats);

}  // namespace sesr::serve
