#include "serve/sharded_server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/video_session.hpp"
#include "serve/clock.hpp"
#include "tensor/scratch.hpp"

namespace sesr::serve {

namespace {

void validate(const ServeOptions& o, const NetworkRegistry& registry) {
  if (registry.empty()) {
    throw std::invalid_argument("ShardedServer: registry has no networks");
  }
  if (o.workers < 1) throw std::invalid_argument("EvalServer: workers must be >= 1");
  if (o.max_batch < 1) throw std::invalid_argument("EvalServer: max_batch must be >= 1");
  if (o.max_delay_us < 0) throw std::invalid_argument("EvalServer: max_delay_us must be >= 0");
  if (o.queue_capacity < 1) {
    throw std::invalid_argument("EvalServer: queue_capacity must be >= 1");
  }
  if ((o.mode == ExecMode::kTiled || o.mode == ExecMode::kAuto) &&
      (o.tiling.tile_h < 1 || o.tiling.tile_w < 1)) {
    throw std::invalid_argument("EvalServer: tile dims must be positive");
  }
  if (o.tiles_per_unit < 1) {
    throw std::invalid_argument("EvalServer: tiles_per_unit must be >= 1");
  }
  if (o.mode == ExecMode::kStreaming) {
    for (const RegisteredNetwork& entry : registry.entries()) {
      if (entry.biased) {
        throw std::invalid_argument("EvalServer: streaming mode cannot serve biased networks");
      }
    }
  }
}

// Steady-state LR pixel bound of one worker replica: the larger of a full
// micro-batch of the biggest frames the kAuto ladder keeps un-tiled, and one
// haloed tile of the shard's tiling geometry. Everything a worker executes in
// steady state fits this bound; only an explicitly-tiled oversized frame (big
// tile options) or an explicit kFullFrame route serving frames above the tile
// threshold can exceed it, and the tile path trims back down afterwards.
std::int64_t planned_pixel_bound(const ServeOptions& o, const RegisteredNetwork& net) {
  const std::int64_t halo = o.tiling.halo >= 0 ? o.tiling.halo : net.exact_halo;
  const std::int64_t tile_pixels =
      (o.tiling.tile_h + 2 * halo) * (o.tiling.tile_w + 2 * halo);
  return std::max(tile_pixels, o.max_batch * o.tiled_threshold_pixels);
}

// Pre-reserve a replica's plan arena to the route's registered footprint at
// the steady-state pixel bound, so serving never grows it.
void presize_session(WorkerSession& session, const ServeOptions& options,
                     const RegisteredNetwork& net) {
  session.presized_pixels = planned_pixel_bound(options, net);
  session.presized_bytes = net.footprint.bytes(session.presized_pixels);
  session.network.plan_reserve(session.presized_pixels);
}

// Monotonic high-water update of a route's observed peak arena bytes.
void record_peak(std::atomic<std::uint64_t>& peak, std::uint64_t bytes) {
  std::uint64_t prev = peak.load(std::memory_order_relaxed);
  while (prev < bytes &&
         !peak.compare_exchange_weak(prev, bytes, std::memory_order_relaxed)) {
  }
}

// Resolve a request on the submit path (before it was ever queued): fail the
// promise, fire the completion hook. The caller handles inflight accounting.
void resolve_rejected(FrameRequest& request, std::exception_ptr error) {
  request.promise.set_exception(std::move(error));
  if (request.done_hook) request.done_hook();
}

}  // namespace

ShardedServer::ShardedServer(const NetworkRegistry& registry, ServeOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_entries),
      sessions_(options_.video_sessions),
      // Depth is weighted in logical requests (a tiled job admits as 1, not
      // as its fan-out), so the bound is per-shard headroom for staged
      // requests, not units; the per-shard RequestQueue remains the primary
      // admission control.
      dispatch_(registry.size(),
                std::max<std::size_t>(16, static_cast<std::size_t>(options_.workers) * 4) *
                    std::max<std::size_t>(1, registry.size()),
                options_.fair_tiles),
      admission_(registry.entries(), options_.slo, options_.workers) {
  validate(options_, registry);
  for (const RegisteredNetwork& entry : registry.entries()) {
    auto shard = std::make_unique<Shard>();
    shard->index = shards_.size();
    shard->net = entry;
    shard->queue = std::make_unique<RequestQueue>(options_.queue_capacity);
    for (int i = 0; i < options_.workers; ++i) {
      shard->sessions.push_back(std::make_unique<WorkerSession>(entry.checkpoint));
      // Each replica rounds its own fp16 weight cache before the worker
      // threads start, so serving never hits the lazy conversion path, and
      // pre-reserves its plan arena from the route's registered footprint so
      // steady-state serving never allocates activation memory.
      shard->sessions.back()->network.set_precision(entry.key.precision);
      presize_session(*shard->sessions.back(), options_, entry);
    }
    route_index_.emplace(route_string(entry.key), shard->index);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    for (auto& session : shard->sessions) {
      session->thread =
          std::thread([this, sh = shard.get(), s = session.get()] { worker_loop(*sh, *s); });
    }
    shard->batcher = std::thread([this, sh = shard.get()] { batcher_loop(*sh); });
  }
}

ShardedServer::~ShardedServer() { shutdown(); }

std::int64_t ShardedServer::in_system(std::size_t shard) const {
  const RouteCounters& c = shards_[shard]->counters;
  const auto submitted = c.submitted.load(std::memory_order_relaxed);
  const auto resolved = c.completed.load(std::memory_order_relaxed) +
                        c.failed.load(std::memory_order_relaxed);
  return submitted > resolved ? static_cast<std::int64_t>(submitted - resolved) : 0;
}

std::future<Tensor> ShardedServer::submit(const RouteKey& route, Tensor frame) {
  return submit_admitted(route, std::move(frame)).future;
}

AdmitResult ShardedServer::submit_admitted(const RouteKey& route, Tensor frame,
                                           SubmitOptions opts) {
  FrameRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.frame = std::move(frame);
  request.enqueue_time = ServeClock::now();
  if (opts.deadline_us > 0) {
    request.deadline =
        saturating_deadline(request.enqueue_time, std::chrono::microseconds(opts.deadline_us));
  }
  request.done_hook = std::move(opts.done_hook);

  AdmitResult result;
  result.future = request.promise.get_future();
  result.served_route = route_string(route);

  const Shape& s = request.frame.shape();
  if (s.n() != 1 || s.c() != 1 || s.h() < 1 || s.w() < 1) {
    resolve_rejected(request, std::make_exception_ptr(std::invalid_argument(
                                  "ShardedServer::submit expects a (1, H, W, 1) Y frame")));
    return result;
  }
  const auto it = route_index_.find(result.served_route);
  if (it == route_index_.end()) {
    resolve_rejected(request,
                     std::make_exception_ptr(UnknownRouteError(result.served_route)));
    return result;
  }
  Shard* shard = shards_[it->second].get();

  // Drain gate. The increment precedes the flag check (both seq_cst): either
  // this submitter observes draining/closed and backs out, or the drainer's
  // wait_zero() observes the increment and waits for this request.
  inflight_.add();
  if (closed_.load(std::memory_order_seq_cst)) {
    inflight_.done();
    resolve_rejected(request, std::make_exception_ptr(ServerClosedError()));
    return result;
  }
  if (draining_.load(std::memory_order_seq_cst)) {
    inflight_.done();
    resolve_rejected(request, std::make_exception_ptr(ServerDrainingError()));
    return result;
  }

  // SLO admission: shed, or rewrite to a cheaper route, before queueing.
  const std::int64_t deadline_budget =
      opts.deadline_us > 0
          ? std::max<std::int64_t>(1, remaining_budget_us(request.enqueue_time, request.deadline))
          : 0;
  const AdmissionController::Decision decision = admission_.admit(
      shard->index, deadline_budget, [this](std::size_t idx) { return in_system(idx); });
  switch (decision.action) {
    case AdmissionController::Action::kShed:
      stats_.on_shed();
      inflight_.done();
      resolve_rejected(request, std::make_exception_ptr(
                                    ShedError(decision.estimate_us, decision.budget_us)));
      result.shed = true;
      return result;
    case AdmissionController::Action::kDegrade:
      shard = shards_[decision.route].get();
      result.degraded = true;
      result.served_route = route_string(shard->net.key);
      stats_.on_degraded();
      break;
    case AdmissionController::Action::kDegradeTwoStage:
      shard = shards_[decision.route].get();
      result.degraded = true;
      result.two_stage = true;
      result.served_route = route_string(shard->net.key);
      stats_.on_degraded();
      stats_.on_two_stage();
      break;
    case AdmissionController::Action::kAdmit:
      break;
  }
  request.admission = &admission_;
  request.admit_route = shard->index;

  if (result.two_stage) {
    // Stage 1 hands its intermediate to the continuation instead of the
    // promise; the continuation enqueues stage 2 on the same x2 shard. The
    // response cache is bypassed: its entries are keyed by the executing
    // route, and a degraded output must never shadow the direct path.
    const std::size_t x2_shard = shard->index;
    request.continuation = [this, x2_shard](FrameRequest&& stage1, Tensor&& intermediate) {
      enqueue_second_stage(x2_shard, std::move(stage1), std::move(intermediate));
    };
  } else if (cache_.enabled()) {
    // Response cache: a hit never touches the pipeline — the stored output is
    // bit-identical to a cold run because the cache confirmed the LR bytes.
    if (std::optional<Tensor> hit = cache_.lookup(shard->index, request.frame)) {
      stats_.on_submitted();
      stats_.on_cache_hit();
      shard->counters.submitted.fetch_add(1, std::memory_order_relaxed);
      shard->counters.cache_hits.fetch_add(1, std::memory_order_relaxed);
      shard->counters.completed.fetch_add(1, std::memory_order_relaxed);
      stats_.on_completed(request.enqueue_time);
      request.promise.set_value(*std::move(hit));
      if (request.done_hook) request.done_hook();
      inflight_.done();
      return result;
    }
    request.cache = &cache_;
  }
  request.route = &shard->counters;
  request.route_id = shard->index;
  request.inflight = &inflight_;

  const OverloadPolicy policy = opts.never_block ? OverloadPolicy::kReject : options_.overload;
  switch (shard->queue->push(request, policy)) {
    case RequestQueue::PushResult::kAccepted:
      stats_.on_submitted();
      shard->counters.submitted.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestQueue::PushResult::kFull:
      stats_.on_rejected();
      request.inflight = nullptr;
      inflight_.done();
      resolve_rejected(request, std::make_exception_ptr(QueueFullError()));
      break;
    case RequestQueue::PushResult::kClosed:
      request.inflight = nullptr;
      inflight_.done();
      resolve_rejected(request, std::make_exception_ptr(ServerClosedError()));
      break;
  }
  return result;
}

AdmitResult ShardedServer::submit_video(const RouteKey& route, Tensor frame,
                                        const VideoOptions& video, SubmitOptions opts) {
  FrameRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.frame = std::move(frame);
  request.enqueue_time = ServeClock::now();
  if (opts.deadline_us > 0) {
    request.deadline =
        saturating_deadline(request.enqueue_time, std::chrono::microseconds(opts.deadline_us));
  }
  request.done_hook = std::move(opts.done_hook);

  AdmitResult result;
  result.future = request.promise.get_future();
  result.served_route = route_string(route);

  const Shape& s = request.frame.shape();
  if (s.n() != 1 || s.c() != 1 || s.h() < 1 || s.w() < 1) {
    resolve_rejected(request, std::make_exception_ptr(std::invalid_argument(
                                  "ShardedServer::submit_video expects a (1, H, W, 1) Y frame")));
    return result;
  }
  const auto it = route_index_.find(result.served_route);
  if (it == route_index_.end()) {
    resolve_rejected(request,
                     std::make_exception_ptr(UnknownRouteError(result.served_route)));
    return result;
  }
  Shard* shard = shards_[it->second].get();

  // Drain gate, exactly as submit_admitted.
  inflight_.add();
  if (closed_.load(std::memory_order_seq_cst)) {
    inflight_.done();
    resolve_rejected(request, std::make_exception_ptr(ServerClosedError()));
    return result;
  }
  if (draining_.load(std::memory_order_seq_cst)) {
    inflight_.done();
    resolve_rejected(request, std::make_exception_ptr(ServerDrainingError()));
    return result;
  }

  // SLO admission, shed only: a session pins its route. Serving one frame
  // from a degraded sibling would key the session's bit-history to a
  // different network, so kDegrade/kDegradeTwoStage admit on the requested
  // route instead.
  const std::int64_t deadline_budget =
      opts.deadline_us > 0
          ? std::max<std::int64_t>(1, remaining_budget_us(request.enqueue_time, request.deadline))
          : 0;
  const AdmissionController::Decision decision = admission_.admit(
      shard->index, deadline_budget, [this](std::size_t idx) { return in_system(idx); });
  if (decision.action == AdmissionController::Action::kShed) {
    stats_.on_shed();
    inflight_.done();
    resolve_rejected(request,
                     std::make_exception_ptr(ShedError(decision.estimate_us, decision.budget_us)));
    result.shed = true;
    return result;
  }
  request.admission = &admission_;
  request.admit_route = shard->index;

  stats_.on_video_frame();
  // Every video frame publishes its (LR, HR) pair on completion, re-priming
  // the session for the next frame. The response cache is bypassed: the
  // session table is the video reuse mechanism.
  request.video = &sessions_;
  request.video_session = video.session_id;
  request.video_seq = video.seq;
  request.route = &shard->counters;
  request.route_id = shard->index;
  request.inflight = &inflight_;

  // Tile-delta probe: an exact predecessor snapshot (seq - 1, same shape)
  // enables the delta path. The plan byte-compares every tile's haloed
  // footprint against the snapshot LR — tile-granular byte confirmation, so a
  // stale snapshot only makes tiles dirty, never splices a wrong pixel.
  if (std::optional<VideoSessionTable::Snapshot> prev =
          sessions_.lookup_prev(shard->index, video.session_id, video.seq)) {
    if (prev->lr.shape() == s) {
      const ExecMode mode = resolve_mode(s);
      // The recompute halo must match the executed grid for kTiled (bitwise
      // per-tile equality needs the identical crop function); full-frame and
      // streaming paths need the exact receptive-field radius.
      const std::int64_t halo =
          mode == ExecMode::kTiled
              ? (options_.tiling.halo >= 0 ? options_.tiling.halo : shard->net.exact_halo)
              : shard->net.exact_halo;
      core::DeltaPlan plan = core::plan_tile_delta(prev->lr, request.frame, options_.tiling, halo);
      result.delta = true;
      result.tiles_total = plan.tasks.size();
      result.tiles_recomputed = plan.dirty_count;
      stats_.on_video_delta(plan.tasks.size() - plan.dirty_count, plan.dirty_count);
      if (plan.dirty_count == 0) {
        // Bitwise-identical frame: the previous HR output IS this frame's
        // output. Resolved synchronously like a cache hit; the publication
        // advances the session to this seq first.
        sessions_.publish(shard->index, video.session_id, video.seq, request.frame, prev->hr);
        stats_.on_submitted();
        shard->counters.submitted.fetch_add(1, std::memory_order_relaxed);
        shard->counters.completed.fetch_add(1, std::memory_order_relaxed);
        stats_.on_completed(request.enqueue_time);
        request.promise.set_value(std::move(prev->hr));
        if (request.done_hook) request.done_hook();
        inflight_.done();
        return result;
      }
      auto delta = std::make_shared<VideoDeltaPlan>();
      delta->mode = mode;
      delta->total_tiles = plan.tasks.size();
      const std::int64_t scale = shard->net.config.scale;
      delta->output = Tensor(1, s.h() * scale, s.w() * scale, 1);
      core::splice_clean_tiles(delta->output, prev->hr, plan, scale);
      delta->dirty_tasks.reserve(plan.dirty_count);
      for (std::size_t i = 0; i < plan.tasks.size(); ++i) {
        if (plan.dirty[i]) delta->dirty_tasks.push_back(plan.tasks[i]);
      }
      request.video_delta = std::move(delta);
    }
  }

  const OverloadPolicy policy = opts.never_block ? OverloadPolicy::kReject : options_.overload;
  switch (shard->queue->push(request, policy)) {
    case RequestQueue::PushResult::kAccepted:
      stats_.on_submitted();
      shard->counters.submitted.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestQueue::PushResult::kFull:
      stats_.on_rejected();
      request.inflight = nullptr;
      inflight_.done();
      resolve_rejected(request, std::make_exception_ptr(QueueFullError()));
      break;
    case RequestQueue::PushResult::kClosed:
      request.inflight = nullptr;
      inflight_.done();
      resolve_rejected(request, std::make_exception_ptr(ServerClosedError()));
      break;
  }
  return result;
}

void ShardedServer::enqueue_second_stage(std::size_t shard_index, FrameRequest&& stage1,
                                         Tensor&& intermediate) {
  FrameRequest stage2;
  stage2.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  stage2.frame = std::move(intermediate);
  stage2.promise = std::move(stage1.promise);
  stage2.enqueue_time = stage1.enqueue_time;  // end-to-end latency spans both stages
  stage2.deadline = stage1.deadline;
  stage2.route = stage1.route;
  stage2.route_id = shard_index;
  stage2.admission = &admission_;
  stage2.admit_route = shard_index;
  stage2.inflight = stage1.inflight;
  stage2.done_hook = std::move(stage1.done_hook);
  // Bypasses the batcher (pushed straight to dispatch below), so the service
  // clock restarts here.
  stage2.dispatch_time = ServeClock::now();

  BatchUnit batch;
  batch.mode = options_.mode == ExecMode::kStreaming ? ExecMode::kStreaming
                                                     : ExecMode::kFullFrame;
  const std::uint64_t lane = stage2.id;
  batch.requests.push_back(std::move(stage2));
  stats_.on_batch();
  Unit unit = std::move(batch);
  // Weight 0: the logical request admitted once at submit time, and this runs
  // on a worker thread — it must never block on the depth bound. push only
  // fails after close(), which shutdown() reaches only once in-flight work
  // (including this continuation) has resolved; handle it anyway so no path
  // can abandon the promise.
  if (!dispatch_.push(shard_index, lane, std::move(unit), 0)) {
    FrameRequest& lost = std::get<BatchUnit>(unit).requests.front();
    fail_request(lost, std::make_exception_ptr(ServerClosedError()), stats_);
  }
}

ExecMode ShardedServer::resolve_mode(const Shape& shape) const {
  if (options_.mode != ExecMode::kAuto) return options_.mode;
  return shape.h() * shape.w() >= options_.tiled_threshold_pixels ? ExecMode::kTiled
                                                                  : ExecMode::kFullFrame;
}

void ShardedServer::dispatch_tiled_job(Shard& shard, const std::shared_ptr<TiledJob>& job) {
  const std::uint64_t lane = job->request.id;
  stats_.on_batch();
  bool dropped = false;
  bool first = true;
  // The job admits against the depth bound once (weight 1); the rest of its
  // fan-out must never block, or this batcher would stall with the queue
  // behind it frozen in FIFO order.
  for (const core::TileUnitRange& range :
       core::plan_tile_units(job->tasks.size(), options_.tiles_per_unit)) {
    if (!dispatch_.push(shard.index, lane, TileUnit{job, range.first, range.count},
                        first ? 1 : 0)) {
      dropped = true;
      break;
    }
    first = false;
  }
  if (dropped && !job->failed.exchange(true, std::memory_order_acq_rel)) {
    // Dispatch closed mid-fan-out. shutdown() drains in-flight work before
    // closing dispatch, so this is defensive — but if it ever fires, the
    // request resolves with a typed error (promise, hook and inflight all
    // handled by fail_request), never a broken promise. Units already pushed
    // still execute; the failed flag keeps them from completing the job
    // twice.
    fail_request(job->request, std::make_exception_ptr(ServerClosedError()), stats_);
  }
}

void ShardedServer::batcher_loop(Shard& shard) {
  const std::int64_t scale = shard.net.config.scale;
  while (true) {
    std::vector<FrameRequest> batch = shard.queue->pop_batch(
        options_.max_batch, std::chrono::microseconds(options_.max_delay_us));
    if (batch.empty()) break;  // closed and drained
    const auto dispatched = ServeClock::now();
    for (FrameRequest& request : batch) request.dispatch_time = dispatched;
    // Peel off video tile-delta requests: each becomes its own TiledJob over
    // only the dirty tiles the submit path planned (clean regions are already
    // spliced into the plan's output), on the plan's resolved exec path.
    {
      std::vector<FrameRequest> rest;
      rest.reserve(batch.size());
      for (FrameRequest& request : batch) {
        if (!request.video_delta) {
          rest.push_back(std::move(request));
          continue;
        }
        std::shared_ptr<VideoDeltaPlan> plan = std::move(request.video_delta);
        auto job = std::make_shared<TiledJob>();
        job->tasks = std::move(plan->dirty_tasks);
        job->output = std::move(plan->output);
        job->mode = plan->mode;
        job->remaining.store(static_cast<std::int64_t>(job->tasks.size()),
                             std::memory_order_relaxed);
        job->request = std::move(request);
        dispatch_tiled_job(shard, job);
      }
      batch = std::move(rest);
    }
    if (batch.empty()) continue;
    const ExecMode mode = resolve_mode(batch.front().frame.shape());
    if (mode == ExecMode::kTiled) {
      // Large frames: one TiledJob per frame. Its units all share one
      // dispatch lane, so concurrent small requests interleave fairly.
      const std::int64_t halo =
          options_.tiling.halo >= 0 ? options_.tiling.halo : shard.net.exact_halo;
      for (FrameRequest& request : batch) {
        auto job = std::make_shared<TiledJob>();
        const Shape& s = request.frame.shape();
        job->tasks = core::tile_grid(s.h(), s.w(), options_.tiling, halo);
        job->output = Tensor(1, s.h() * scale, s.w() * scale, 1);
        job->mode = ExecMode::kTiled;
        job->remaining.store(static_cast<std::int64_t>(job->tasks.size()),
                             std::memory_order_relaxed);
        job->request = std::move(request);
        dispatch_tiled_job(shard, job);
      }
    } else {
      stats_.on_batch();
      const std::uint64_t lane = batch.front().id;
      Unit unit = BatchUnit{std::move(batch), mode};
      if (!dispatch_.push(shard.index, lane, std::move(unit))) {
        // Dispatch closed under this batcher (again defensive post-drain):
        // resolve every request in the undelivered batch with a typed error
        // instead of letting their promises die with the unit.
        for (FrameRequest& request : std::get<BatchUnit>(unit).requests) {
          fail_request(request, std::make_exception_ptr(ServerClosedError()), stats_);
        }
        break;
      }
    }
  }
}

void ShardedServer::worker_loop(Shard& shard, WorkerSession& session) {
  Unit unit;
  while (dispatch_.pop(shard.index, unit)) {
    // Held across the unit AND the arena bookkeeping below: reload_routes
    // must not rebuild this replica between the promise resolving (which
    // releases the inflight token it waits on) and the last `network` touch.
    std::lock_guard<std::mutex> guard(session.busy);
    if (options_.worker_hook) options_.worker_hook();
    execute_unit(session, unit, stats_);
    const std::int64_t arena = session.network.plan_arena_bytes();
    record_peak(shard.counters.peak_activation_bytes, static_cast<std::uint64_t>(arena));
    if (arena > session.presized_bytes && std::holds_alternative<TileUnit>(unit)) {
      // An oversized tiled frame (tile options larger than the pre-sized
      // bound) grew this replica's arena and scratch past steady state; give
      // the excess back now that its unit is done. Full-frame growth is left
      // alone — trimming there would thrash under steady large-frame traffic.
      session.network.plan_trim(session.presized_pixels);
      scratch_trim();
    }
  }
}

void ShardedServer::begin_drain() {
  draining_.store(true, std::memory_order_seq_cst);
  inflight_.wait_zero();
}

void ShardedServer::resume() {
  if (closed_.load(std::memory_order_seq_cst)) {
    throw std::logic_error("ShardedServer::resume after shutdown");
  }
  draining_.store(false, std::memory_order_seq_cst);
}

void ShardedServer::reload_routes(const NetworkRegistry& registry) {
  if (closed_.load(std::memory_order_seq_cst)) {
    throw std::logic_error("ShardedServer::reload_routes after shutdown");
  }
  if (!draining_.load(std::memory_order_seq_cst)) {
    throw std::logic_error(
        "ShardedServer::reload_routes requires a drained server (call begin_drain first)");
  }
  // Drained means no ACCEPTED request in flight, but live traffic being
  // rejected right now still bumps the inflight counter for the length of its
  // drain-gate check. Those bumps resolve in microseconds; wait them out
  // instead of spuriously refusing the reload.
  inflight_.wait_zero();
  validate(options_, registry);
  if (registry.size() != shards_.size()) {
    throw std::invalid_argument("ShardedServer::reload_routes: route set must match");
  }
  const auto& entries = registry.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (route_string(entries[i].key) != route_string(shards_[i]->net.key)) {
      throw std::invalid_argument("ShardedServer::reload_routes: route set must match (got '" +
                                  route_string(entries[i].key) + "', shard " +
                                  std::to_string(i) + " serves '" +
                                  route_string(shards_[i]->net.key) + "')");
    }
  }
  // Drained: wait_zero above saw every request resolve, but a worker may
  // still be inside its per-unit tail (arena bookkeeping after fulfilling
  // the promise) — each session's `busy` mutex closes that window before its
  // replica is rebuilt. Traffic resumed after this call observes the new
  // weights through the queue mutexes.
  for (std::size_t i = 0; i < entries.size(); ++i) {
    Shard& shard = *shards_[i];
    shard.net = entries[i];
    for (auto& session : shard.sessions) {
      std::lock_guard<std::mutex> guard(session->busy);
      session->network = core::SesrInference(entries[i].checkpoint);
      session->network.set_precision(entries[i].key.precision);
      presize_session(*session, options_, entries[i]);
      session->streamer.reset();
    }
  }
  // Cached responses and video-session snapshots were computed by the old
  // weights; neither may serve (or splice into) post-reload outputs.
  cache_.clear();
  sessions_.clear();
}

void ShardedServer::shutdown() {
  std::call_once(shutdown_once_, [this] {
    // Graceful drain first: every accepted request (including mid-flight tile
    // fan-outs and two-stage continuations) resolves before any queue closes,
    // so no promise ever reaches a closed dispatch.
    closed_.store(true, std::memory_order_seq_cst);
    inflight_.wait_zero();
    for (auto& shard : shards_) shard->queue->close();
    for (auto& shard : shards_) {
      if (shard->batcher.joinable()) shard->batcher.join();  // drains the submission queue
    }
    dispatch_.close();
    for (auto& shard : shards_) {
      for (auto& session : shard->sessions) {
        if (session->thread.joinable()) session->thread.join();
      }
    }
  });
}

ShardedStats ShardedServer::stats() const {
  ShardedStats s;
  s.total = stats_.snapshot();
  for (const auto& shard : shards_) {
    RouteStats r;
    r.route = route_string(shard->net.key);
    r.submitted = shard->counters.submitted.load(std::memory_order_relaxed);
    r.completed = shard->counters.completed.load(std::memory_order_relaxed);
    r.failed = shard->counters.failed.load(std::memory_order_relaxed);
    r.cache_hits = shard->counters.cache_hits.load(std::memory_order_relaxed);
    r.service_ewma_us = admission_.ewma_us(shard->index);
    r.peak_activation_bytes =
        shard->counters.peak_activation_bytes.load(std::memory_order_relaxed);
    s.per_route.push_back(std::move(r));
  }
  s.cache = cache_.stats();
  s.video = sessions_.stats();
  return s;
}

}  // namespace sesr::serve
