#include "serve/sharded_server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sesr::serve {

namespace {

void validate(const ServeOptions& o, const NetworkRegistry& registry) {
  if (registry.empty()) {
    throw std::invalid_argument("ShardedServer: registry has no networks");
  }
  if (o.workers < 1) throw std::invalid_argument("EvalServer: workers must be >= 1");
  if (o.max_batch < 1) throw std::invalid_argument("EvalServer: max_batch must be >= 1");
  if (o.max_delay_us < 0) throw std::invalid_argument("EvalServer: max_delay_us must be >= 0");
  if (o.queue_capacity < 1) {
    throw std::invalid_argument("EvalServer: queue_capacity must be >= 1");
  }
  if ((o.mode == ExecMode::kTiled || o.mode == ExecMode::kAuto) &&
      (o.tiling.tile_h < 1 || o.tiling.tile_w < 1)) {
    throw std::invalid_argument("EvalServer: tile dims must be positive");
  }
  if (o.tiles_per_unit < 1) {
    throw std::invalid_argument("EvalServer: tiles_per_unit must be >= 1");
  }
  if (o.mode == ExecMode::kStreaming) {
    for (const RegisteredNetwork& entry : registry.entries()) {
      if (entry.biased) {
        throw std::invalid_argument("EvalServer: streaming mode cannot serve biased networks");
      }
    }
  }
}

}  // namespace

ShardedServer::ShardedServer(const NetworkRegistry& registry, ServeOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_entries),
      // Depth is weighted in logical requests (a tiled job admits as 1, not
      // as its fan-out), so the bound is per-shard headroom for staged
      // requests, not units; the per-shard RequestQueue remains the primary
      // admission control.
      dispatch_(registry.size(),
                std::max<std::size_t>(16, static_cast<std::size_t>(options_.workers) * 4) *
                    std::max<std::size_t>(1, registry.size()),
                options_.fair_tiles) {
  validate(options_, registry);
  for (const RegisteredNetwork& entry : registry.entries()) {
    auto shard = std::make_unique<Shard>();
    shard->index = shards_.size();
    shard->net = entry;
    shard->queue = std::make_unique<RequestQueue>(options_.queue_capacity);
    for (int i = 0; i < options_.workers; ++i) {
      shard->sessions.push_back(std::make_unique<WorkerSession>(entry.checkpoint));
      // Each replica rounds its own fp16 weight cache before the worker
      // threads start, so serving never hits the lazy conversion path.
      shard->sessions.back()->network.set_precision(entry.key.precision);
    }
    route_index_.emplace(route_string(entry.key), shard->index);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    for (auto& session : shard->sessions) {
      session->thread =
          std::thread([this, sh = shard.get(), s = session.get()] { worker_loop(*sh, *s); });
    }
    shard->batcher = std::thread([this, sh = shard.get()] { batcher_loop(*sh); });
  }
}

ShardedServer::~ShardedServer() { shutdown(); }

std::future<Tensor> ShardedServer::submit(const RouteKey& route, Tensor frame) {
  FrameRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.frame = std::move(frame);
  request.enqueue_time = std::chrono::steady_clock::now();
  std::future<Tensor> future = request.promise.get_future();
  const Shape& s = request.frame.shape();
  if (s.n() != 1 || s.c() != 1 || s.h() < 1 || s.w() < 1) {
    request.promise.set_exception(std::make_exception_ptr(
        std::invalid_argument("ShardedServer::submit expects a (1, H, W, 1) Y frame")));
    return future;
  }
  const auto it = route_index_.find(route_string(route));
  if (it == route_index_.end()) {
    request.promise.set_exception(std::make_exception_ptr(UnknownRouteError(route_string(route))));
    return future;
  }
  Shard& shard = *shards_[it->second];

  // Response cache: a hit never touches the pipeline — the stored output is
  // bit-identical to a cold run because the cache confirmed the LR bytes.
  if (cache_.enabled()) {
    if (std::optional<Tensor> hit = cache_.lookup(shard.index, request.frame)) {
      stats_.on_submitted();
      stats_.on_cache_hit();
      shard.counters.submitted.fetch_add(1, std::memory_order_relaxed);
      shard.counters.cache_hits.fetch_add(1, std::memory_order_relaxed);
      shard.counters.completed.fetch_add(1, std::memory_order_relaxed);
      stats_.on_completed(request.enqueue_time);
      request.promise.set_value(*std::move(hit));
      return future;
    }
    request.cache = &cache_;
  }
  request.route = &shard.counters;
  request.route_id = shard.index;

  switch (shard.queue->push(request, options_.overload)) {
    case RequestQueue::PushResult::kAccepted:
      stats_.on_submitted();
      shard.counters.submitted.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestQueue::PushResult::kFull:
      stats_.on_rejected();
      request.promise.set_exception(std::make_exception_ptr(QueueFullError()));
      break;
    case RequestQueue::PushResult::kClosed:
      request.promise.set_exception(std::make_exception_ptr(ServerClosedError()));
      break;
  }
  return future;
}

ExecMode ShardedServer::resolve_mode(const Shape& shape) const {
  if (options_.mode != ExecMode::kAuto) return options_.mode;
  return shape.h() * shape.w() >= options_.tiled_threshold_pixels ? ExecMode::kTiled
                                                                  : ExecMode::kFullFrame;
}

void ShardedServer::batcher_loop(Shard& shard) {
  const std::int64_t scale = shard.net.config.scale;
  while (true) {
    std::vector<FrameRequest> batch = shard.queue->pop_batch(
        options_.max_batch, std::chrono::microseconds(options_.max_delay_us));
    if (batch.empty()) break;  // closed and drained
    const ExecMode mode = resolve_mode(batch.front().frame.shape());
    if (mode == ExecMode::kTiled) {
      // Large frames: one TiledJob per frame. Its units all share one
      // dispatch lane, so concurrent small requests interleave fairly.
      const std::int64_t halo =
          options_.tiling.halo >= 0 ? options_.tiling.halo : shard.net.exact_halo;
      for (FrameRequest& request : batch) {
        auto job = std::make_shared<TiledJob>();
        const Shape& s = request.frame.shape();
        job->tasks = core::tile_grid(s.h(), s.w(), options_.tiling, halo);
        job->output = Tensor(1, s.h() * scale, s.w() * scale, 1);
        job->remaining.store(static_cast<std::int64_t>(job->tasks.size()),
                             std::memory_order_relaxed);
        job->request = std::move(request);
        const std::uint64_t lane = job->request.id;
        stats_.on_batch();
        bool dropped = false;
        bool first = true;
        // The job admits against the depth bound once (weight 1); the rest of
        // its fan-out must never block, or this batcher would stall with the
        // queue behind it frozen in FIFO order.
        for (const core::TileUnitRange& range :
             core::plan_tile_units(job->tasks.size(), options_.tiles_per_unit)) {
          if (!dispatch_.push(shard.index, lane, TileUnit{job, range.first, range.count},
                              first ? 1 : 0)) {
            dropped = true;
            break;
          }
          first = false;
        }
        if (dropped && !job->failed.exchange(true, std::memory_order_acq_rel)) {
          // Dispatch closed mid-fan-out (shutdown was not graceful for this
          // job); fail the frame rather than leave its future dangling.
          stats_.on_failed();
          shard.counters.failed.fetch_add(1, std::memory_order_relaxed);
          job->request.promise.set_exception(std::make_exception_ptr(ServerClosedError()));
        }
      }
    } else {
      stats_.on_batch();
      const std::uint64_t lane = batch.front().id;
      BatchUnit unit{std::move(batch), mode};
      if (!dispatch_.push(shard.index, lane, std::move(unit))) {
        // The queue rejects pushes only after close(); shutdown() drains the
        // batchers before closing dispatch, so this is purely defensive.
        break;
      }
    }
  }
}

void ShardedServer::worker_loop(Shard& shard, WorkerSession& session) {
  Unit unit;
  while (dispatch_.pop(shard.index, unit)) {
    if (options_.worker_hook) options_.worker_hook();
    execute_unit(session, unit, stats_);
  }
}

void ShardedServer::shutdown() {
  std::call_once(shutdown_once_, [this] {
    for (auto& shard : shards_) shard->queue->close();
    for (auto& shard : shards_) {
      if (shard->batcher.joinable()) shard->batcher.join();  // drains the submission queue
    }
    dispatch_.close();
    for (auto& shard : shards_) {
      for (auto& session : shard->sessions) {
        if (session->thread.joinable()) session->thread.join();
      }
    }
  });
}

ShardedStats ShardedServer::stats() const {
  ShardedStats s;
  s.total = stats_.snapshot();
  for (const auto& shard : shards_) {
    RouteStats r;
    r.route = route_string(shard->net.key);
    r.submitted = shard->counters.submitted.load(std::memory_order_relaxed);
    r.completed = shard->counters.completed.load(std::memory_order_relaxed);
    r.failed = shard->counters.failed.load(std::memory_order_relaxed);
    r.cache_hits = shard->counters.cache_hits.load(std::memory_order_relaxed);
    s.per_route.push_back(std::move(r));
  }
  s.cache = cache_.stats();
  return s;
}

}  // namespace sesr::serve
