#include "serve/net/wire.hpp"

#include <bit>
#include <cstring>

namespace sesr::serve::net {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}

// Little cursor over a payload; every read checks remaining length.
struct Cursor {
  const std::uint8_t* p;
  std::size_t left;

  bool u16(std::uint16_t& v) {
    if (left < 2) return false;
    v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
    p += 2;
    left -= 2;
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (left < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    left -= 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (left < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    left -= 8;
    return true;
  }
  bool u8(std::uint8_t& v) {
    if (left < 1) return false;
    v = *p++;
    --left;
    return true;
  }
  bool bytes(std::size_t n, std::string& out) {
    if (left < n) return false;
    out.assign(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return true;
  }
  bool f32s(std::size_t n, std::vector<float>& out) {
    // Divide rather than multiply: n*4 wraps for n >= 2^62 and a wrapped
    // product of 0 would pass the length check, then resize(n) throws — on
    // the IO thread, pre-auth, that is a remote crash.
    if (n > left / 4) return false;
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t bits = 0;
      u32(bits);
      out[i] = std::bit_cast<float>(bits);
    }
    return true;
  }
};

void put_prefix(std::vector<std::uint8_t>& out) {
  put_u32(out, kMagic);
  put_u32(out, 0);  // payload length patched by seal()
}

void seal(std::vector<std::uint8_t>& out) {
  const auto payload = static_cast<std::uint32_t>(out.size() - 8);
  for (int i = 0; i < 4; ++i) out[4 + i] = static_cast<std::uint8_t>(payload >> (8 * i));
}

}  // namespace

std::vector<std::uint8_t> encode_request(const WireRequest& request) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + 41 + request.auth.size() + request.route.size() + request.pixels.size() * 4);
  put_prefix(out);
  put_u64(out, request.id);
  put_u32(out, request.deadline_us);
  std::uint8_t flags = request.video ? kRequestFlagVideo : 0;
  if (!request.auth.empty()) flags |= kRequestFlagAuth;
  out.push_back(flags);
  put_u64(out, request.session_id);
  put_u32(out, request.frame_seq);
  if (!request.auth.empty()) {
    put_u16(out, static_cast<std::uint16_t>(request.auth.size()));
    out.insert(out.end(), request.auth.begin(), request.auth.end());
  }
  put_u16(out, static_cast<std::uint16_t>(request.route.size()));
  out.insert(out.end(), request.route.begin(), request.route.end());
  put_u32(out, static_cast<std::uint32_t>(request.h));
  put_u32(out, static_cast<std::uint32_t>(request.w));
  for (float v : request.pixels) put_f32(out, v);
  seal(out);
  return out;
}

std::vector<std::uint8_t> encode_response(const WireResponse& response) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + 24 + response.route.size() + response.pixels.size() * 4 +
              response.message.size());
  put_prefix(out);
  put_u64(out, response.id);
  out.push_back(static_cast<std::uint8_t>(response.status));
  out.push_back(response.flags);
  put_u16(out, static_cast<std::uint16_t>(response.route.size()));
  out.insert(out.end(), response.route.begin(), response.route.end());
  if (response.status == Status::kOk) {
    put_u32(out, static_cast<std::uint32_t>(response.h));
    put_u32(out, static_cast<std::uint32_t>(response.w));
    for (float v : response.pixels) put_f32(out, v);
  } else {
    put_u32(out, 0);
    put_u32(out, 0);
    out.insert(out.end(), response.message.begin(), response.message.end());
  }
  seal(out);
  return out;
}

std::optional<WireRequest> decode_request(const std::vector<std::uint8_t>& payload) {
  Cursor c{payload.data(), payload.size()};
  WireRequest r;
  std::uint8_t flags;
  std::uint16_t route_len;
  std::uint32_t h, w;
  if (!c.u64(r.id) || !c.u32(r.deadline_us) || !c.u8(flags) || !c.u64(r.session_id) ||
      !c.u32(r.frame_seq)) {
    return std::nullopt;
  }
  if ((flags & ~(kRequestFlagVideo | kRequestFlagAuth)) != 0) {
    return std::nullopt;  // unknown flag bits
  }
  if ((flags & kRequestFlagAuth) != 0) {
    std::uint16_t auth_len;
    if (!c.u16(auth_len) || auth_len == 0 || !c.bytes(auth_len, r.auth)) return std::nullopt;
  }
  if (!c.u16(route_len) || !c.bytes(route_len, r.route) || !c.u32(h) || !c.u32(w)) {
    return std::nullopt;
  }
  r.video = (flags & kRequestFlagVideo) != 0;
  if (r.route.empty() || h == 0 || w == 0) return std::nullopt;
  // The pixel block must be exactly h*w floats — no trailing garbage. The
  // byte count is compared via division: count*4 wraps u64 for h=w=2^31
  // (count=2^62, count*4 == 0 matches an empty tail) and this runs before
  // the auth check, so it must be overflow-proof.
  const std::uint64_t count = static_cast<std::uint64_t>(h) * w;
  if (c.left % 4 != 0 || c.left / 4 != count) return std::nullopt;
  r.h = static_cast<std::int64_t>(h);
  r.w = static_cast<std::int64_t>(w);
  if (!c.f32s(count, r.pixels)) return std::nullopt;
  return r;
}

std::optional<WireResponse> decode_response(const std::vector<std::uint8_t>& payload) {
  Cursor c{payload.data(), payload.size()};
  WireResponse r;
  std::uint8_t status;
  std::uint16_t route_len;
  std::uint32_t h, w;
  if (!c.u64(r.id) || !c.u8(status) || !c.u8(r.flags) || !c.u16(route_len) ||
      !c.bytes(route_len, r.route) || !c.u32(h) || !c.u32(w)) {
    return std::nullopt;
  }
  if (status > static_cast<std::uint8_t>(Status::kUnauthorized)) return std::nullopt;
  r.status = static_cast<Status>(status);
  if (r.status == Status::kOk) {
    if (h == 0 || w == 0) return std::nullopt;
    const std::uint64_t count = static_cast<std::uint64_t>(h) * w;
    if (c.left % 4 != 0 || c.left / 4 != count) return std::nullopt;  // overflow-proof
    r.h = static_cast<std::int64_t>(h);
    r.w = static_cast<std::int64_t>(w);
    if (!c.f32s(count, r.pixels)) return std::nullopt;
  } else {
    if (h != 0 || w != 0) return std::nullopt;
    if (!c.bytes(c.left, r.message)) return std::nullopt;
  }
  return r;
}

void FrameReader::feed(const std::uint8_t* data, std::size_t size) {
  if (poisoned()) return;
  buffer_.insert(buffer_.end(), data, data + size);
  // Carve frames by advancing an offset and compact ONCE at the end: one
  // recv() can carry K coalesced small frames, and erasing the front of the
  // buffer per frame memmoves the whole tail K times — O(K^2) bytes for what
  // should be one pass.
  while (buffer_.size() - consumed_ >= 8) {
    const std::uint8_t* p = buffer_.data() + consumed_;
    std::uint32_t magic = 0, len = 0;
    for (int i = 0; i < 4; ++i) magic |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(p[4 + i]) << (8 * i);
    if (magic != kMagic) {
      error_ = "bad frame magic";
      buffer_.clear();
      consumed_ = 0;
      return;
    }
    if (len > max_payload_) {
      error_ = "frame payload exceeds limit (" + std::to_string(len) + " bytes)";
      buffer_.clear();
      consumed_ = 0;
      return;
    }
    if (buffer_.size() - consumed_ < 8 + static_cast<std::size_t>(len)) break;  // incomplete
    ready_.emplace_back(p + 8, p + 8 + len);
    consumed_ += 8 + static_cast<std::size_t>(len);
  }
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

std::optional<std::vector<std::uint8_t>> FrameReader::next() {
  if (ready_.empty()) return std::nullopt;
  std::vector<std::uint8_t> payload = std::move(ready_.front());
  ready_.pop_front();
  return payload;
}

bool constant_time_equal(const std::string& candidate, const std::string& secret) {
  // Fold the length difference into the accumulator instead of early-exiting,
  // and index the secret modulo its size so every candidate byte is touched:
  // runtime depends only on candidate.size(), never on match position.
  unsigned diff = candidate.size() == secret.size() ? 0u : 1u;
  if (secret.empty()) return diff == 0;
  for (std::size_t i = 0; i < candidate.size(); ++i) {
    diff |= static_cast<unsigned>(static_cast<unsigned char>(candidate[i]) ^
                                  static_cast<unsigned char>(secret[i % secret.size()]));
  }
  return diff == 0;
}

Tensor pixels_to_frame(std::int64_t h, std::int64_t w, const std::vector<float>& pixels) {
  return Tensor(Shape(1, h, w, 1), pixels);
}

std::vector<float> frame_to_pixels(const Tensor& frame) {
  return std::vector<float>(frame.raw(), frame.raw() + frame.numel());
}

}  // namespace sesr::serve::net
