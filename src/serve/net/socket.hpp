// Thin RAII wrappers over POSIX TCP sockets — everything the front end needs
// and nothing more (IPv4 loopback-grade: bind/listen/accept/connect,
// non-blocking mode, send/recv). Errors surface as SocketError with errno
// text. Linux/POSIX only, matching the repo's serving targets.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace sesr::serve::net {

class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& what) : std::runtime_error("socket: " + what) {}
};

// Owning file descriptor; -1 = empty. Move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void reset();

 private:
  int fd_ = -1;
};

// Bind + listen on 127.0.0.1:port (port 0 = kernel-assigned ephemeral;
// local_port() reports the actual one). SO_REUSEADDR so restarts don't trip
// over TIME_WAIT.
Fd listen_tcp(std::uint16_t port, int backlog = 64);

// The bound port of a listening socket.
std::uint16_t local_port(const Fd& fd);

// Blocking connect to host:port (numeric IPv4 or "localhost").
Fd connect_tcp(const std::string& host, std::uint16_t port);

void set_nonblocking(const Fd& fd, bool nonblocking);

// TCP_NODELAY: request/response frames should not wait on Nagle.
void set_nodelay(const Fd& fd);

// Blocking helpers for the client side: loop until all `size` bytes moved.
// send_all throws on error; recv_all returns false on orderly peer close
// before `size` bytes arrived and throws on error.
void send_all(const Fd& fd, const std::uint8_t* data, std::size_t size);
bool recv_all(const Fd& fd, std::uint8_t* data, std::size_t size);

// One self-pipe for waking a poll() loop from other threads: wake() is
// async-signal-safe-grade (a single write), drain() consumes pending bytes.
class WakePipe {
 public:
  WakePipe();
  int read_fd() const { return read_.get(); }
  void wake();
  void drain();

 private:
  Fd read_;
  Fd write_;
};

}  // namespace sesr::serve::net
