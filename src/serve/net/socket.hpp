// Thin RAII wrappers over POSIX TCP sockets — everything the front end needs
// and nothing more (IPv4: bind/listen/accept/connect, non-blocking mode,
// send/recv, SO_REUSEPORT for shared-nothing listener shards). Errors surface
// as SocketError with errno text. Linux/POSIX only, matching the repo's
// serving targets.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace sesr::serve::net {

class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& what) : std::runtime_error("socket: " + what) {}
};

// Owning file descriptor; -1 = empty. Move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void reset();

 private:
  int fd_ = -1;
};

// Bind + listen on bind_address:port (port 0 = kernel-assigned ephemeral;
// local_port() reports the actual one). bind_address is a numeric IPv4
// address — "127.0.0.1" for loopback-only, "0.0.0.0" to accept from any
// interface. SO_REUSEADDR so restarts don't trip over TIME_WAIT;
// reuse_port additionally sets SO_REUSEPORT so N listeners can share one
// (address, port) and the kernel load-balances accepts across them — the
// IO-shard mechanism (every sharing listener must set it, including the
// first).
Fd listen_tcp(const std::string& bind_address, std::uint16_t port, int backlog = 64,
              bool reuse_port = false);

// True when `bind_address` is a loopback address (127.0.0.0/8 or
// "localhost"): the auth-token requirement keys off this.
bool is_loopback_address(const std::string& bind_address);

// What the accept loop should do about an accept(2) errno. Pure
// classification (unit-testable without exhausting fds):
//  - kRetry:  per-connection failure (ECONNABORTED, EPROTO, EINTR, ...) —
//             the next queued connection may be fine, keep accepting.
//  - kDrained: EAGAIN/EWOULDBLOCK — the backlog is empty, return to poll().
//  - kPause:  resource exhaustion (EMFILE, ENFILE, ENOBUFS, ENOMEM) — the
//             listener stays readable, so polling it again immediately would
//             busy-spin at 100% CPU; deregister it briefly and retry.
enum class AcceptAction { kRetry, kDrained, kPause };
AcceptAction classify_accept_errno(int err);

// The bound port of a listening socket.
std::uint16_t local_port(const Fd& fd);

// Blocking connect to host:port (numeric IPv4 or "localhost").
Fd connect_tcp(const std::string& host, std::uint16_t port);

void set_nonblocking(const Fd& fd, bool nonblocking);

// TCP_NODELAY: request/response frames should not wait on Nagle.
void set_nodelay(const Fd& fd);

// Blocking helpers for the client side: loop until all `size` bytes moved.
// send_all throws on error; recv_all returns false on orderly peer close
// before `size` bytes arrived and throws on error.
void send_all(const Fd& fd, const std::uint8_t* data, std::size_t size);
bool recv_all(const Fd& fd, std::uint8_t* data, std::size_t size);

// One self-pipe for waking a poll() loop from other threads: wake() is
// async-signal-safe-grade (a single write), drain() consumes pending bytes.
class WakePipe {
 public:
  WakePipe();
  int read_fd() const { return read_.get(); }
  void wake();
  void drain();

 private:
  Fd read_;
  Fd write_;
};

}  // namespace sesr::serve::net
