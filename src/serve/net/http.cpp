#include "serve/net/http.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>

namespace sesr::serve::net {

namespace {

const std::string kEmpty;

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Percent-decode a query component; '+' means space per form encoding.
std::string url_decode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex_digit(s[i + 1]);
      const int lo = hex_digit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
      } else {
        out.push_back(s[i]);
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::map<std::string, std::string> parse_query(const std::string& qs) {
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  while (pos < qs.size()) {
    std::size_t amp = qs.find('&', pos);
    if (amp == std::string::npos) amp = qs.size();
    const std::string pair = qs.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (!pair.empty()) out[url_decode(pair)] = "";
    } else {
      out[url_decode(pair.substr(0, eq))] = url_decode(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
  return out;
}

bool is_known_method(const std::string& m) {
  return m == "GET" || m == "POST" || m == "HEAD" || m == "PUT" || m == "DELETE" ||
         m == "OPTIONS";
}

}  // namespace

const std::string& HttpRequest::header(const std::string& lower_name) const {
  const auto it = headers.find(lower_name);
  return it == headers.end() ? kEmpty : it->second;
}

void HttpReader::poison(const std::string& why) {
  error_ = why;
  buffer_.clear();
  in_progress_.reset();
  body_needed_ = 0;
}

void HttpReader::feed(const std::uint8_t* data, std::size_t size) {
  if (poisoned()) return;
  buffer_.insert(buffer_.end(), data, data + size);
  parse();
}

std::optional<HttpRequest> HttpReader::next() {
  if (ready_.empty()) return std::nullopt;
  HttpRequest r = std::move(ready_.front());
  ready_.pop_front();
  return r;
}

void HttpReader::parse() {
  for (;;) {
    if (in_progress_) {
      // Accumulating a Content-Length body.
      if (buffer_.size() < body_needed_) return;
      in_progress_->body.assign(buffer_.begin(),
                                buffer_.begin() + static_cast<std::ptrdiff_t>(body_needed_));
      buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(body_needed_));
      ready_.push_back(std::move(*in_progress_));
      in_progress_.reset();
      body_needed_ = 0;
      continue;
    }
    // Find the end of the header block.
    static const char kTerm[] = "\r\n\r\n";
    const auto it = std::search(buffer_.begin(), buffer_.end(), kTerm, kTerm + 4);
    if (it == buffer_.end()) {
      if (buffer_.size() > max_header_) poison("header block exceeds limit");
      return;
    }
    const std::size_t header_len = static_cast<std::size_t>(it - buffer_.begin());
    if (header_len + 4 > max_header_ + 4) {
      poison("header block exceeds limit");
      return;
    }
    const std::string head(buffer_.begin(), it);
    buffer_.erase(buffer_.begin(), it + 4);

    // Request line: METHOD SP target SP HTTP/1.x
    const std::size_t line_end = head.find("\r\n");
    const std::string line = line_end == std::string::npos ? head : head.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      poison("malformed request line");
      return;
    }
    HttpRequest req;
    req.method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = line.substr(sp2 + 1);
    if (!is_known_method(req.method) || target.empty() || target[0] != '/') {
      poison("malformed request line");
      return;
    }
    if (version != "HTTP/1.1" && version != "HTTP/1.0") {
      poison("unsupported HTTP version '" + version + "'");
      return;
    }
    const std::size_t qpos = target.find('?');
    if (qpos != std::string::npos) {
      req.query = parse_query(target.substr(qpos + 1));
      target.resize(qpos);
    }
    req.path = target;
    req.keep_alive = version == "HTTP/1.1";  // 1.0 defaults to close

    // Header fields.
    std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
    while (pos < head.size()) {
      std::size_t eol = head.find("\r\n", pos);
      if (eol == std::string::npos) eol = head.size();
      const std::string field = head.substr(pos, eol - pos);
      pos = eol + 2;
      const std::size_t colon = field.find(':');
      if (colon == std::string::npos) {
        poison("malformed header field");
        return;
      }
      const std::string name = to_lower(trim(field.substr(0, colon)));
      // Duplicate framing headers must be rejected, not last-one-wins: a
      // proxy that honors the first Content-Length while this parser honors
      // the second desyncs the keep-alive stream (request smuggling).
      if ((name == "content-length" || name == "transfer-encoding") &&
          req.headers.count(name) != 0) {
        poison("duplicate " + name + " header");
        return;
      }
      req.headers[name] = trim(field.substr(colon + 1));
    }
    const std::string conn = to_lower(req.header("connection"));
    if (conn == "close") req.keep_alive = false;
    if (conn == "keep-alive") req.keep_alive = true;
    if (!to_lower(req.header("transfer-encoding")).empty()) {
      poison("transfer-encoding not supported (use Content-Length)");
      return;
    }

    // Body: Content-Length only.
    const std::string cl = req.header("content-length");
    std::size_t body_len = 0;
    if (!cl.empty()) {
      if (cl.find_first_not_of("0123456789") != std::string::npos || cl.size() > 12) {
        poison("bad Content-Length");
        return;
      }
      body_len = static_cast<std::size_t>(std::stoull(cl));
      if (body_len > max_body_) {
        poison("body exceeds limit (" + cl + " bytes)");
        return;
      }
    }
    if (body_len == 0) {
      ready_.push_back(std::move(req));
      continue;
    }
    in_progress_ = std::move(req);
    body_needed_ = body_len;
  }
}

const char* http_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::vector<std::uint8_t> http_response(int status, const std::string& content_type,
                                        const std::vector<std::uint8_t>& body,
                                        bool close_connection,
                                        const std::vector<std::string>& extra) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " + http_reason(status) + "\r\n";
  head += "Content-Type: " + content_type + "\r\n";
  head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  for (const auto& h : extra) head += h + "\r\n";
  if (close_connection) head += "Connection: close\r\n";
  head += "\r\n";
  std::vector<std::uint8_t> out;
  out.reserve(head.size() + body.size());
  out.insert(out.end(), head.begin(), head.end());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<std::uint8_t> http_response(int status, const std::string& content_type,
                                        const std::string& body, bool close_connection,
                                        const std::vector<std::string>& extra) {
  return http_response(status, content_type,
                       std::vector<std::uint8_t>(body.begin(), body.end()), close_connection,
                       extra);
}

bool looks_like_http(const std::uint8_t* data, std::size_t size) {
  static const char* kMethods[] = {"GET ", "POST ", "HEAD ", "PUT ", "DELETE ", "OPTIONS "};
  for (const char* m : kMethods) {
    const std::size_t n = std::strlen(m);
    // A prefix of a method token counts while the connection is still short:
    // the sniffer only commits once kSniffBytes arrived or the stream ended.
    const std::size_t cmp = std::min(size, n);
    if (std::memcmp(data, m, cmp) == 0 && cmp == n) return true;
  }
  return false;
}

std::optional<PgmImage> decode_pgm(const std::vector<std::uint8_t>& bytes) {
  // Header tokens separated by whitespace: "P5" w h maxval, then one
  // whitespace byte, then w*h raw samples. Comments (#...) are not supported.
  std::size_t pos = 0;
  auto skip_ws = [&] {
    while (pos < bytes.size() && std::isspace(bytes[pos])) ++pos;
  };
  auto token = [&]() -> std::string {
    skip_ws();
    std::string t;
    while (pos < bytes.size() && !std::isspace(bytes[pos])) t.push_back(static_cast<char>(bytes[pos++]));
    return t;
  };
  if (token() != "P5") return std::nullopt;
  const std::string ws = token(), hs = token(), maxs = token();
  if (ws.empty() || hs.empty() || maxs.empty()) return std::nullopt;
  if (ws.find_first_not_of("0123456789") != std::string::npos ||
      hs.find_first_not_of("0123456789") != std::string::npos ||
      maxs.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  // Length-cap the digit tokens before stoll: a 20-digit width would throw
  // std::out_of_range on the IO thread. 9 digits covers every dimension the
  // cap below admits.
  if (ws.size() > 9 || hs.size() > 9 || maxs.size() > 9) return std::nullopt;
  const long long w = std::stoll(ws), h = std::stoll(hs), maxval = std::stoll(maxs);
  if (w <= 0 || h <= 0 || maxval != 255) return std::nullopt;
  if (w > kMaxImageDim || h > kMaxImageDim) return std::nullopt;
  if (pos >= bytes.size() || !std::isspace(bytes[pos])) return std::nullopt;
  ++pos;  // single whitespace after maxval
  const std::size_t count = static_cast<std::size_t>(w) * static_cast<std::size_t>(h);
  if (bytes.size() - pos != count) return std::nullopt;
  PgmImage img;
  img.h = h;
  img.w = w;
  img.pixels.resize(count);
  for (std::size_t i = 0; i < count; ++i) img.pixels[i] = static_cast<float>(bytes[pos + i]) / 255.0f;
  return img;
}

std::vector<std::uint8_t> encode_pgm(std::int64_t h, std::int64_t w,
                                     const std::vector<float>& pixels) {
  const std::string head = "P5\n" + std::to_string(w) + " " + std::to_string(h) + "\n255\n";
  std::vector<std::uint8_t> out;
  out.reserve(head.size() + pixels.size());
  out.insert(out.end(), head.begin(), head.end());
  for (float v : pixels) {
    const float clamped = std::min(1.0f, std::max(0.0f, v));
    out.push_back(static_cast<std::uint8_t>(std::lround(clamped * 255.0f)));
  }
  return out;
}

}  // namespace sesr::serve::net
