#include "serve/net/server.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/net/http.hpp"
#include "serve/net/wire.hpp"

namespace sesr::serve::net {

namespace {

using Clock = std::chrono::steady_clock;

// Over-cap connections are still accepted into a small holding pen so they
// can be told why (HTTP 503) or closed cleanly (binary EOF) instead of
// languishing in the backlog; beyond the pen they are closed on sight.
constexpr std::size_t kOverflowSlots = 32;
// How long a listener sits out of the poll set after fd/memory exhaustion
// (EMFILE & friends) before accepts are retried.
constexpr std::chrono::milliseconds kAcceptPause{100};

// Map a failed future's exception onto a wire status + message.
WireResponse error_response(std::uint64_t id, const std::string& route,
                            const std::exception_ptr& error) {
  WireResponse r;
  r.id = id;
  r.route = route;
  try {
    std::rethrow_exception(error);
  } catch (const ShedError& e) {
    r.status = Status::kOverloaded;
    r.message = e.what();
  } catch (const QueueFullError& e) {
    r.status = Status::kOverloaded;
    r.message = e.what();
  } catch (const ServerClosedError& e) {  // covers ServerDrainingError
    r.status = Status::kShuttingDown;
    r.message = e.what();
  } catch (const UnknownRouteError& e) {
    r.status = Status::kUnknownRoute;
    r.message = e.what();
  } catch (const std::invalid_argument& e) {
    r.status = Status::kBadRequest;
    r.message = e.what();
  } catch (const std::exception& e) {
    r.status = Status::kError;
    r.message = e.what();
  } catch (...) {
    r.status = Status::kError;
    r.message = "unknown execution error";
  }
  return r;
}

int http_status_for(Status s) {
  switch (s) {
    case Status::kOk: return 200;
    case Status::kOverloaded: return 503;
    case Status::kUnknownRoute: return 404;
    case Status::kBadRequest: return 400;
    case Status::kShuttingDown: return 503;
    case Status::kUnauthorized: return 401;
    case Status::kError: return 500;
  }
  return 500;
}

}  // namespace

struct NetServer::Impl {
  enum class Proto { kUnknown, kBinary, kHttp, kBad };

  struct Connection {
    std::uint64_t id = 0;
    Fd fd;
    Proto proto = Proto::kUnknown;
    std::vector<std::uint8_t> sniff;  // bytes held until the protocol is known
    FrameReader reader;
    HttpReader http;
    std::deque<std::vector<std::uint8_t>> outbox;
    std::size_t out_offset = 0;  // bytes of outbox.front() already written
    bool close_after_flush = false;
    bool overflow = false;   // accepted over the cap: reject politely, close
    bool http_busy = false;  // one in-flight HTTP request (response ordering)
    std::size_t inflight = 0;  // submits whose response is not yet queued
    Clock::time_point last_activity;
  };

  struct Pending {
    std::uint64_t conn_id = 0;
    std::uint64_t wire_id = 0;
    std::string served_route;
    std::uint8_t flags = 0;
    std::future<Tensor> future;
    bool via_http = false;
    bool http_pgm = false;  // respond as PGM; else raw f32 plane
    bool http_keep_alive = true;
  };

  // One IO shard: listener + poll loop + every per-connection structure.
  // Shared-nothing — only the atomic counters are read cross-thread (stats)
  // and only completed/wake are written cross-thread (worker done_hooks).
  struct Shard {
    std::size_t index = 0;
    Fd listener;
    WakePipe wake;
    std::thread thread;

    // IO-thread-private state.
    std::map<std::uint64_t, Connection> conns;  // conn id -> connection
    std::map<std::uint64_t, Pending> pending;   // seq -> in-flight request
    std::uint64_t next_conn_id = 1;
    std::uint64_t next_seq = 1;
    std::size_t active_count = 0;    // live non-overflow connections
    std::size_t overflow_count = 0;  // live over-cap connections
    bool accept_paused = false;      // listener out of the poll set
    Clock::time_point accept_resume{};

    // Worker threads hand resolved request seqs back through here.
    std::mutex completed_mutex;
    std::vector<std::uint64_t> completed;

    // Counters (read from any thread via stats()).
    std::atomic<std::uint64_t> n_accepted{0}, n_rejected{0}, n_disconnects{0};
    std::atomic<std::uint64_t> n_requests{0}, n_responses{0}, n_malformed{0};
    std::atomic<std::uint64_t> n_accept_errors{0}, n_timeouts{0};
    std::atomic<std::uint64_t> n_http{0}, n_auth_failures{0};
  };

  ShardedServer& server;
  NetServerOptions options;
  std::size_t per_shard_cap = 1;
  std::vector<std::unique_ptr<Shard>> shards;

  Impl(ShardedServer& server, NetServerOptions options)
      : server(server), options(std::move(options)) {}

  NetShardStats snapshot(const Shard& sh) const {
    NetShardStats s;
    s.connections_accepted = sh.n_accepted.load(std::memory_order_relaxed);
    s.connections_rejected = sh.n_rejected.load(std::memory_order_relaxed);
    s.disconnects = sh.n_disconnects.load(std::memory_order_relaxed);
    s.requests = sh.n_requests.load(std::memory_order_relaxed);
    s.responses = sh.n_responses.load(std::memory_order_relaxed);
    s.malformed = sh.n_malformed.load(std::memory_order_relaxed);
    s.accept_errors = sh.n_accept_errors.load(std::memory_order_relaxed);
    s.timeouts = sh.n_timeouts.load(std::memory_order_relaxed);
    s.http_requests = sh.n_http.load(std::memory_order_relaxed);
    s.auth_failures = sh.n_auth_failures.load(std::memory_order_relaxed);
    return s;
  }

  NetStats snapshot_all() const {
    NetStats total;
    for (const auto& sh : shards) {
      const NetShardStats s = snapshot(*sh);
      total.connections_accepted += s.connections_accepted;
      total.connections_rejected += s.connections_rejected;
      total.disconnects += s.disconnects;
      total.requests += s.requests;
      total.responses += s.responses;
      total.malformed += s.malformed;
      total.accept_errors += s.accept_errors;
      total.timeouts += s.timeouts;
      total.http_requests += s.http_requests;
      total.auth_failures += s.auth_failures;
      total.shards.push_back(s);
    }
    return total;
  }

  static std::string json_of(const NetShardStats& s) {
    return "{\"connections_accepted\":" + std::to_string(s.connections_accepted) +
           ",\"connections_rejected\":" + std::to_string(s.connections_rejected) +
           ",\"disconnects\":" + std::to_string(s.disconnects) +
           ",\"requests\":" + std::to_string(s.requests) +
           ",\"responses\":" + std::to_string(s.responses) +
           ",\"malformed\":" + std::to_string(s.malformed) +
           ",\"accept_errors\":" + std::to_string(s.accept_errors) +
           ",\"timeouts\":" + std::to_string(s.timeouts) +
           ",\"http_requests\":" + std::to_string(s.http_requests) +
           ",\"auth_failures\":" + std::to_string(s.auth_failures) + "}";
  }

  std::string stats_json() const {
    const NetStats total = snapshot_all();
    std::string out = json_of(total);
    out.pop_back();  // reopen the totals object to append the shard array
    out += ",\"io_shards\":" + std::to_string(shards.size()) + ",\"shards\":[";
    for (std::size_t i = 0; i < total.shards.size(); ++i) {
      if (i) out += ",";
      out += json_of(total.shards[i]);
    }
    out += "]}\n";
    return out;
  }

  void drop_conn(Shard& sh, std::uint64_t id) {
    auto it = sh.conns.find(id);
    if (it == sh.conns.end()) return;
    if (it->second.overflow) {
      --sh.overflow_count;
    } else {
      --sh.active_count;
    }
    sh.conns.erase(it);
  }

  void queue_response(Shard& sh, Connection& conn, const WireResponse& response) {
    (void)sh;
    conn.outbox.push_back(encode_response(response));
  }

  void poison(Shard& sh, Connection& conn, const std::string& why) {
    sh.n_malformed.fetch_add(1, std::memory_order_relaxed);
    WireResponse r;
    r.id = 0;  // the frame boundary is lost; no request id to echo
    r.status = Status::kBadRequest;
    r.message = why;
    queue_response(sh, conn, r);
    conn.close_after_flush = true;
  }

  SubmitOptions make_submit_options(Shard& sh, std::uint64_t seq, std::uint32_t deadline_us) {
    SubmitOptions opts;
    opts.deadline_us = deadline_us;
    opts.never_block = true;  // the IO loop must never park on a full queue
    opts.done_hook = [shp = &sh, seq] {
      {
        std::lock_guard<std::mutex> lock(shp->completed_mutex);
        shp->completed.push_back(seq);
      }
      shp->wake.wake();
    };
    return opts;
  }

  // --- binary protocol ----------------------------------------------------

  void handle_payload(Shard& sh, Connection& conn, const std::vector<std::uint8_t>& payload) {
    std::optional<WireRequest> request = decode_request(payload);
    if (!request) {
      poison(sh, conn, "malformed request payload");
      return;
    }
    if (!options.auth_token.empty() &&
        !constant_time_equal(request->auth, options.auth_token)) {
      sh.n_auth_failures.fetch_add(1, std::memory_order_relaxed);
      WireResponse r;
      r.id = request->id;
      r.status = Status::kUnauthorized;
      r.route = request->route;
      r.message = "auth token missing or invalid";
      queue_response(sh, conn, r);
      return;  // the connection survives; the client can retry with a token
    }
    RouteKey key;
    try {
      key = parse_route(request->route);
    } catch (const std::exception& e) {
      WireResponse r;
      r.id = request->id;
      r.status = Status::kUnknownRoute;
      r.route = request->route;
      r.message = e.what();
      queue_response(sh, conn, r);
      return;
    }
    sh.n_requests.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t seq = sh.next_seq++;
    Pending& entry = sh.pending[seq];
    entry.conn_id = conn.id;
    entry.wire_id = request->id;
    SubmitOptions opts = make_submit_options(sh, seq, request->deadline_us);
    AdmitResult admitted;
    try {
      // Tensor construction inside the try: a throwing Shape/Tensor ctor
      // must hit the same erase-and-answer path as a throwing submit.
      Tensor frame = pixels_to_frame(request->h, request->w, request->pixels);
      if (options.submit_fault) options.submit_fault();
      if (request->video) {
        VideoOptions video;
        video.session_id = request->session_id;
        video.seq = request->frame_seq;
        admitted = server.submit_video(key, std::move(frame), video, std::move(opts));
      } else {
        admitted = server.submit_admitted(key, std::move(frame), std::move(opts));
      }
    } catch (...) {
      // A synchronous throw means no done_hook will ever fire for this seq.
      // Without this erase the entry leaks and shutdown()'s pending.empty()
      // gate never passes — the IO loop would spin forever on shutdown.
      sh.pending.erase(seq);
      WireResponse r = error_response(request->id, request->route, std::current_exception());
      queue_response(sh, conn, r);
      return;
    }
    entry.future = std::move(admitted.future);
    entry.served_route = std::move(admitted.served_route);
    if (admitted.degraded) entry.flags |= kFlagDegraded;
    if (admitted.two_stage) entry.flags |= kFlagTwoStage;
    if (admitted.delta) entry.flags |= kFlagDeltaReuse;
    conn.inflight++;
    // If the done_hook already fired (synchronous rejection / cache hit), the
    // seq sits in `completed` and this same thread collects it on the next
    // loop iteration — the entry above is fully populated by then.
  }

  // --- HTTP adapter -------------------------------------------------------

  bool http_authorized(const HttpRequest& req) const {
    const std::string& header = req.header("authorization");
    std::string candidate = header;
    static const char kBearer[] = "Bearer ";
    if (header.rfind(kBearer, 0) == 0) candidate = header.substr(sizeof(kBearer) - 1);
    return constant_time_equal(candidate, options.auth_token);
  }

  void handle_http(Shard& sh, Connection& conn, HttpRequest req) {
    sh.n_http.fetch_add(1, std::memory_order_relaxed);
    const bool keep_alive = req.keep_alive;
    auto respond = [&](int code, const std::string& ctype, const std::string& body,
                       const std::vector<std::string>& extra = {}) {
      conn.outbox.push_back(http_response(code, ctype, body, !keep_alive, extra));
      if (!keep_alive) conn.close_after_flush = true;
    };
    if (req.path == "/healthz") {  // liveness probes stay tokenless
      if (req.method != "GET") return respond(405, "text/plain", "method not allowed\n");
      return respond(200, "text/plain", "ok\n");
    }
    if (!options.auth_token.empty() && !http_authorized(req)) {
      sh.n_auth_failures.fetch_add(1, std::memory_order_relaxed);
      return respond(401, "text/plain", "unauthorized\n");
    }
    if (req.path == "/stats") {
      if (req.method != "GET") return respond(405, "text/plain", "method not allowed\n");
      return respond(200, "application/json", stats_json());
    }
    if (req.path != "/v1/upscale") return respond(404, "text/plain", "not found\n");
    if (req.method != "POST") return respond(405, "text/plain", "method not allowed\n");

    auto query = [&](const char* name) -> std::string {
      const auto it = req.query.find(name);
      return it == req.query.end() ? std::string() : it->second;
    };
    auto query_u64 = [&](const char* name, std::uint64_t& out) -> bool {
      const std::string v = query(name);
      if (v.empty() || v.size() > 12 ||
          v.find_first_not_of("0123456789") != std::string::npos) {
        return false;
      }
      out = std::stoull(v);
      return true;
    };
    const std::string route = query("route");
    if (route.empty()) {
      return respond(400, "text/plain", "missing 'route' query parameter\n");
    }
    RouteKey key;
    try {
      key = parse_route(route);
    } catch (const std::exception& e) {
      return respond(404, "text/plain", std::string(e.what()) + "\n");
    }
    // Body: a PGM (P5) image, or a raw little-endian f32 plane with h and w
    // in the query string.
    std::int64_t h = 0, w = 0;
    std::vector<float> pixels;
    const bool pgm =
        req.body.size() >= 2 && req.body[0] == 'P' && req.body[1] == '5';
    if (pgm) {
      std::optional<PgmImage> img = decode_pgm(req.body);
      if (!img) return respond(400, "text/plain", "malformed PGM body\n");
      h = img->h;
      w = img->w;
      pixels = std::move(img->pixels);
    } else {
      std::uint64_t hq = 0, wq = 0;
      if (!query_u64("h", hq) || !query_u64("w", wq) || hq == 0 || wq == 0) {
        return respond(400, "text/plain",
                       "raw f32 mode needs positive 'h' and 'w' query parameters "
                       "(or send a PGM body)\n");
      }
      // Cap each side before multiplying: query_u64 admits 12-digit values,
      // so hq*wq*4 can wrap u64 to 0 and "match" an empty body — then the
      // resize below throws on the IO thread and kills the process.
      if (hq > static_cast<std::uint64_t>(kMaxImageDim) ||
          wq > static_cast<std::uint64_t>(kMaxImageDim)) {
        return respond(400, "text/plain", "image dimensions exceed limit\n");
      }
      if (hq * wq * 4 != req.body.size()) {
        return respond(400, "text/plain",
                       "body must be exactly h*w little-endian f32 values\n");
      }
      h = static_cast<std::int64_t>(hq);
      w = static_cast<std::int64_t>(wq);
      pixels.resize(hq * wq);
      std::memcpy(pixels.data(), req.body.data(), req.body.size());
    }
    std::uint64_t deadline_us = 0;
    if (!query("deadline_us").empty() && !query_u64("deadline_us", deadline_us)) {
      return respond(400, "text/plain", "bad 'deadline_us' query parameter\n");
    }

    sh.n_requests.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t seq = sh.next_seq++;
    Pending& entry = sh.pending[seq];
    entry.conn_id = conn.id;
    entry.via_http = true;
    entry.http_pgm = pgm;
    entry.http_keep_alive = keep_alive;
    SubmitOptions opts =
        make_submit_options(sh, seq, static_cast<std::uint32_t>(deadline_us));
    AdmitResult admitted;
    try {
      Tensor frame = pixels_to_frame(h, w, pixels);  // may throw: same path as submit
      if (options.submit_fault) options.submit_fault();
      admitted = server.submit_admitted(key, std::move(frame), std::move(opts));
    } catch (...) {
      sh.pending.erase(seq);  // same leak hazard as the binary path
      const WireResponse err = error_response(0, route, std::current_exception());
      return respond(http_status_for(err.status), "text/plain", err.message + "\n");
    }
    entry.future = std::move(admitted.future);
    entry.served_route = std::move(admitted.served_route);
    if (admitted.degraded) entry.flags |= kFlagDegraded;
    if (admitted.two_stage) entry.flags |= kFlagTwoStage;
    if (admitted.delta) entry.flags |= kFlagDeltaReuse;
    conn.inflight++;
    conn.http_busy = true;  // hold further HTTP requests until this answers
  }

  void pump_http(Shard& sh, Connection& conn) {
    while (!conn.http_busy && !conn.close_after_flush) {
      std::optional<HttpRequest> req = conn.http.next();
      if (!req) break;
      try {
        handle_http(sh, conn, std::move(*req));
      } catch (...) {
        // Same terminate guard as the binary dispatch: answer and close this
        // connection instead of letting the exception off the IO thread.
        const WireResponse err =
            error_response(0, std::string(), std::current_exception());
        conn.outbox.push_back(http_response(http_status_for(err.status), "text/plain",
                                            err.message + "\n", true));
        conn.close_after_flush = true;
      }
    }
    if (conn.http.poisoned() && !conn.http_busy && !conn.close_after_flush) {
      sh.n_malformed.fetch_add(1, std::memory_order_relaxed);
      conn.outbox.push_back(
          http_response(400, "text/plain", conn.http.error() + "\n", true));
      conn.close_after_flush = true;
    }
  }

  // --- protocol sniffing --------------------------------------------------

  void sniff_decide(Connection& conn) {
    const std::uint8_t* d = conn.sniff.data();
    const std::size_t n = conn.sniff.size();
    if (n >= 4) {
      std::uint32_t magic = 0;
      for (int i = 0; i < 4; ++i) magic |= static_cast<std::uint32_t>(d[i]) << (8 * i);
      if (magic == kMagic) conn.proto = Proto::kBinary;
    }
    if (conn.proto == Proto::kUnknown && looks_like_http(d, n)) conn.proto = Proto::kHttp;
    if (conn.proto == Proto::kUnknown) {
      // Neither magic nor a complete method token yet; once enough bytes are
      // in hand to rule both out, the stream is garbage.
      if (n >= kSniffBytes) conn.proto = Proto::kBad;
      return;
    }
    if (!conn.overflow) {  // overflow conns only need the protocol, not the data
      if (conn.proto == Proto::kBinary) {
        conn.reader.feed(d, n);
      } else {
        conn.http.feed(d, n);
      }
    }
    conn.sniff.clear();
    conn.sniff.shrink_to_fit();
  }

  void ingest(Connection& conn, const std::uint8_t* data, std::size_t size) {
    switch (conn.proto) {
      case Proto::kUnknown:
        conn.sniff.insert(conn.sniff.end(), data, data + size);
        sniff_decide(conn);
        return;
      case Proto::kBinary:
        if (!conn.overflow) conn.reader.feed(data, size);
        return;
      case Proto::kHttp:
        if (!conn.overflow) conn.http.feed(data, size);
        return;
      case Proto::kBad:
        return;  // discarded; post_read drops the connection
    }
  }

  // Dispatch whatever complete requests the readers now hold. Returns false
  // when the connection was dropped.
  bool post_read(Shard& sh, Connection& conn) {
    if (conn.proto == Proto::kBad) {
      if (conn.overflow) {
        drop_conn(sh, conn.id);
        return false;
      }
      // First bytes matched neither protocol. Answer in the binary framing —
      // the likeliest sender is a broken binary client, and an HTTP client
      // would have matched the sniff — then close, preserving the original
      // bad-magic contract (kBadRequest, request id 0).
      if (!conn.close_after_flush) {
        poison(sh, conn, "unrecognized protocol (neither SESR framing nor HTTP)");
      }
      return true;
    }
    if (conn.overflow) {
      if (conn.proto == Proto::kBinary) {
        // Binary protocol has no pre-auth chatter to hang on: a clean EOF is
        // the unambiguous "try elsewhere" signal.
        drop_conn(sh, conn.id);
        return false;
      }
      if (conn.proto == Proto::kHttp && !conn.close_after_flush) {
        conn.outbox.push_back(http_response(503, "text/plain", "over capacity\n", true));
        conn.close_after_flush = true;
      }
      return true;  // kUnknown: keep sniffing (timeouts bound the wait)
    }
    if (conn.proto == Proto::kBinary) {
      while (auto payload = conn.reader.next()) {
        try {
          handle_payload(sh, conn, *payload);
        } catch (...) {
          // Last line of defense: this runs on the IO thread, where an
          // escaped exception would std::terminate the whole server. Answer
          // this connection and close it; everyone else keeps being served.
          queue_response(sh, conn,
                         error_response(0, std::string(), std::current_exception()));
          conn.close_after_flush = true;
        }
        if (conn.close_after_flush) return true;  // poisoned inside a handler
      }
      if (conn.reader.poisoned() && !conn.close_after_flush) {
        poison(sh, conn, conn.reader.error());
      }
    } else if (conn.proto == Proto::kHttp) {
      pump_http(sh, conn);
    }
    return true;
  }

  // --- completions --------------------------------------------------------

  void drain_completions(Shard& sh) {
    std::vector<std::uint64_t> ready;
    {
      std::lock_guard<std::mutex> lock(sh.completed_mutex);
      ready.swap(sh.completed);
    }
    for (const std::uint64_t seq : ready) {
      auto it = sh.pending.find(seq);
      if (it == sh.pending.end()) continue;
      Pending entry = std::move(it->second);
      sh.pending.erase(it);
      auto conn_it = sh.conns.find(entry.conn_id);
      if (conn_it == sh.conns.end()) continue;  // client left; drop the result
      Connection& conn = conn_it->second;
      if (conn.inflight > 0) conn.inflight--;
      if (!entry.via_http) {
        WireResponse response;
        try {
          Tensor output = entry.future.get();  // ready: the hook fires post-promise
          response.id = entry.wire_id;
          response.status = Status::kOk;
          response.flags = entry.flags;
          response.route = entry.served_route;
          response.h = output.shape().h();
          response.w = output.shape().w();
          response.pixels = frame_to_pixels(output);
        } catch (...) {
          response = error_response(entry.wire_id, entry.served_route,
                                    std::current_exception());
          response.flags = entry.flags;
        }
        queue_response(sh, conn, response);
        continue;
      }
      // HTTP completion.
      int code = 200;
      std::string ctype = "text/plain";
      std::vector<std::uint8_t> body;
      std::vector<std::string> extra;
      try {
        Tensor output = entry.future.get();
        const std::int64_t h = output.shape().h();
        const std::int64_t w = output.shape().w();
        const std::vector<float> pixels = frame_to_pixels(output);
        if (entry.http_pgm) {
          ctype = "image/x-portable-graymap";
          body = encode_pgm(h, w, pixels);
        } else {
          ctype = "application/octet-stream";
          body.resize(pixels.size() * 4);
          std::memcpy(body.data(), pixels.data(), body.size());
        }
        extra.push_back("X-SESR-Height: " + std::to_string(h));
        extra.push_back("X-SESR-Width: " + std::to_string(w));
        extra.push_back("X-SESR-Route: " + entry.served_route);
        extra.push_back("X-SESR-Flags: " + std::to_string(entry.flags));
      } catch (...) {
        const WireResponse err =
            error_response(0, entry.served_route, std::current_exception());
        code = http_status_for(err.status);
        const std::string text = err.message + "\n";
        body.assign(text.begin(), text.end());
      }
      const bool close = !entry.http_keep_alive;
      conn.outbox.push_back(http_response(code, ctype, body, close, extra));
      conn.http_busy = false;
      if (close) {
        conn.close_after_flush = true;
      } else {
        pump_http(sh, conn);  // a pipelined request may already be waiting
      }
    }
  }

  // --- socket events ------------------------------------------------------

  void accept_ready(Shard& sh, Clock::time_point now) {
    while (true) {
      const int fd = ::accept(sh.listener.get(), nullptr, nullptr);
      if (fd < 0) {
        switch (classify_accept_errno(errno)) {
          case AcceptAction::kDrained:
            return;
          case AcceptAction::kRetry:
            // This connection died in the backlog; the next may be fine.
            sh.n_accept_errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          case AcceptAction::kPause:
            // fd/memory exhaustion: the listener stays readable, so keeping
            // it in the poll set would busy-spin. Sit out briefly.
            sh.n_accept_errors.fetch_add(1, std::memory_order_relaxed);
            sh.accept_paused = true;
            sh.accept_resume = now + kAcceptPause;
            return;
        }
      }
      Fd accepted(fd);
      const bool over = sh.active_count >= per_shard_cap;
      if (over && sh.overflow_count >= kOverflowSlots) {
        sh.n_rejected.fetch_add(1, std::memory_order_relaxed);
        continue;  // pen full too: Fd closes on scope exit
      }
      set_nonblocking(accepted, true);
      set_nodelay(accepted);
      const std::uint64_t id = sh.next_conn_id++;
      Connection conn;
      conn.id = id;
      conn.fd = std::move(accepted);
      conn.reader = FrameReader(options.max_payload_bytes);
      conn.http = HttpReader(options.max_payload_bytes);
      conn.overflow = over;
      conn.last_activity = now;
      sh.conns.emplace(id, std::move(conn));
      if (over) {
        sh.n_rejected.fetch_add(1, std::memory_order_relaxed);
        sh.overflow_count++;
      } else {
        sh.n_accepted.fetch_add(1, std::memory_order_relaxed);
        sh.active_count++;
      }
    }
  }

  // Returns false when the connection died and was erased.
  bool read_ready(Shard& sh, Connection& conn, Clock::time_point now) {
    std::uint8_t buf[64 * 1024];
    while (true) {
      const ssize_t n = ::recv(conn.fd.get(), buf, sizeof(buf), 0);
      if (n > 0) {
        conn.last_activity = now;
        ingest(conn, buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // Peer closed (possibly mid-request) or hard error: drop the
      // connection; in-flight completions for it are discarded later.
      sh.n_disconnects.fetch_add(1, std::memory_order_relaxed);
      drop_conn(sh, conn.id);
      return false;
    }
    return post_read(sh, conn);
  }

  // Returns false when the connection was erased.
  bool write_ready(Shard& sh, Connection& conn, Clock::time_point now) {
    while (!conn.outbox.empty()) {
      const std::vector<std::uint8_t>& front = conn.outbox.front();
      const ssize_t n = ::send(conn.fd.get(), front.data() + conn.out_offset,
                               front.size() - conn.out_offset, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        sh.n_disconnects.fetch_add(1, std::memory_order_relaxed);
        drop_conn(sh, conn.id);
        return false;
      }
      conn.last_activity = now;  // write progress counts as liveness
      conn.out_offset += static_cast<std::size_t>(n);
      if (conn.out_offset == front.size()) {
        conn.outbox.pop_front();
        conn.out_offset = 0;
        sh.n_responses.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (conn.close_after_flush) {
      drop_conn(sh, conn.id);
      return false;
    }
    return true;
  }

  void sweep_timeouts(Shard& sh, Clock::time_point now) {
    if (options.read_timeout_ms == 0 && options.idle_timeout_ms == 0) return;
    std::vector<std::uint64_t> doomed;
    for (const auto& [id, conn] : sh.conns) {
      const auto age_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              now - conn.last_activity)
                              .count();
      bool partial = false;
      switch (conn.proto) {
        case Proto::kUnknown: partial = !conn.sniff.empty(); break;
        case Proto::kBinary: partial = conn.reader.partial_bytes() > 0; break;
        case Proto::kHttp: partial = conn.http.partial_bytes() > 0; break;
        case Proto::kBad: break;
      }
      if (partial) {
        // Slow-loris: a request trickling in byte-by-byte does not get to
        // hold a connection slot indefinitely.
        if (options.read_timeout_ms != 0 &&
            age_ms >= static_cast<long long>(options.read_timeout_ms)) {
          doomed.push_back(id);
        }
      } else if (conn.inflight == 0) {
        // Nothing pending in either direction; in-flight inference and
        // slow-draining outboxes with write progress never trip this.
        if (options.idle_timeout_ms != 0 &&
            age_ms >= static_cast<long long>(options.idle_timeout_ms)) {
          doomed.push_back(id);
        }
      }
    }
    for (const std::uint64_t id : doomed) {
      sh.n_timeouts.fetch_add(1, std::memory_order_relaxed);
      drop_conn(sh, id);
    }
  }

  void run(Shard& sh, const std::atomic<bool>& stopping) {
    bool accepting = true;
    while (true) {
      drain_completions(sh);
      const Clock::time_point now = Clock::now();
      sweep_timeouts(sh, now);  // also during shutdown: dead peers must not wedge it

      if (stopping.load(std::memory_order_seq_cst)) {
        if (accepting) {
          sh.listener.reset();  // stop accepting; existing requests still finish
          accepting = false;
        }
        bool flushed = sh.pending.empty();
        for (const auto& [id, conn] : sh.conns) {
          if (!conn.outbox.empty()) flushed = false;
        }
        if (flushed) break;
      }

      if (sh.accept_paused && now >= sh.accept_resume) sh.accept_paused = false;
      const bool poll_listener = accepting && !sh.accept_paused;

      std::vector<pollfd> fds;
      fds.push_back(pollfd{sh.wake.read_fd(), POLLIN, 0});
      if (poll_listener) fds.push_back(pollfd{sh.listener.get(), POLLIN, 0});
      std::vector<std::uint64_t> order;  // conn id per pollfd entry
      for (auto& [id, conn] : sh.conns) {
        short events = 0;
        if (!stopping.load(std::memory_order_relaxed)) events |= POLLIN;
        if (!conn.outbox.empty()) events |= POLLOUT;
        if (events == 0) continue;
        fds.push_back(pollfd{conn.fd.get(), events, 0});
        order.push_back(id);
      }
      // 100ms cap: a safety net so a lost wakeup can only delay the loop, and
      // the tick that drives timeout sweeps and accept-pause expiry.
      ::poll(fds.data(), fds.size(), 100);

      const Clock::time_point after = Clock::now();
      std::size_t index = 0;
      if (fds[index].revents & POLLIN) sh.wake.drain();
      ++index;
      if (poll_listener) {
        if (fds[index].revents & POLLIN) accept_ready(sh, after);
        ++index;
      }
      for (std::size_t c = 0; c < order.size(); ++c, ++index) {
        auto it = sh.conns.find(order[c]);
        if (it == sh.conns.end()) continue;
        Connection& conn = it->second;
        const short revents = fds[index].revents;
        if (revents & (POLLERR | POLLNVAL)) {
          sh.n_disconnects.fetch_add(1, std::memory_order_relaxed);
          drop_conn(sh, conn.id);
          continue;
        }
        if ((revents & (POLLIN | POLLHUP)) && !read_ready(sh, conn, after)) continue;
        it = sh.conns.find(order[c]);
        if (it == sh.conns.end()) continue;
        if ((revents & POLLOUT) || !it->second.outbox.empty()) {
          write_ready(sh, it->second, after);
        }
      }
    }
    sh.conns.clear();
    sh.active_count = 0;
    sh.overflow_count = 0;
  }
};

NetServer::NetServer(ShardedServer& server, NetServerOptions options)
    : impl_(std::make_unique<Impl>(server, std::move(options))) {
  const NetServerOptions& opts = impl_->options;
  if (opts.io_shards == 0) {
    throw std::invalid_argument("net: io_shards must be >= 1");
  }
  if (!is_loopback_address(opts.bind_address) && opts.auth_token.empty()) {
    throw std::invalid_argument(
        "net: refusing to bind non-loopback address '" + opts.bind_address +
        "' without an auth token (set NetServerOptions::auth_token)");
  }
  impl_->per_shard_cap =
      std::max<std::size_t>(1, opts.max_connections / opts.io_shards);
  // Shard 0 may bind an ephemeral port; the rest join it via SO_REUSEPORT
  // (which shard 0 must also set for the group to form).
  const bool reuse = opts.io_shards > 1;
  for (std::size_t i = 0; i < opts.io_shards; ++i) {
    auto shard = std::make_unique<Impl::Shard>();
    shard->index = i;
    const std::uint16_t port = i == 0 ? opts.port : port_;
    shard->listener = listen_tcp(opts.bind_address, port, 64, reuse);
    set_nonblocking(shard->listener, true);
    if (i == 0) port_ = local_port(shard->listener);
    impl_->shards.push_back(std::move(shard));
  }
  // Threads start only after every listener bound: a bind failure above must
  // not leave half a fleet running.
  for (auto& shard : impl_->shards) {
    shard->thread =
        std::thread([this, sh = shard.get()] { impl_->run(*sh, stopping_); });
  }
}

NetServer::~NetServer() { shutdown(); }

NetStats NetServer::stats() const { return impl_->snapshot_all(); }

void NetServer::shutdown() {
  std::call_once(shutdown_once_, [this] {
    stopping_.store(true, std::memory_order_seq_cst);
    for (auto& shard : impl_->shards) shard->wake.wake();
    for (auto& shard : impl_->shards) {
      if (shard->thread.joinable()) shard->thread.join();
    }
  });
}

}  // namespace sesr::serve::net
