#include "serve/net/server.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "serve/admission.hpp"
#include "serve/net/wire.hpp"

namespace sesr::serve::net {

namespace {

// Map a failed future's exception onto a wire status + message.
WireResponse error_response(std::uint64_t id, const std::string& route,
                            const std::exception_ptr& error) {
  WireResponse r;
  r.id = id;
  r.route = route;
  try {
    std::rethrow_exception(error);
  } catch (const ShedError& e) {
    r.status = Status::kOverloaded;
    r.message = e.what();
  } catch (const QueueFullError& e) {
    r.status = Status::kOverloaded;
    r.message = e.what();
  } catch (const ServerClosedError& e) {  // covers ServerDrainingError
    r.status = Status::kShuttingDown;
    r.message = e.what();
  } catch (const UnknownRouteError& e) {
    r.status = Status::kUnknownRoute;
    r.message = e.what();
  } catch (const std::invalid_argument& e) {
    r.status = Status::kBadRequest;
    r.message = e.what();
  } catch (const std::exception& e) {
    r.status = Status::kError;
    r.message = e.what();
  } catch (...) {
    r.status = Status::kError;
    r.message = "unknown execution error";
  }
  return r;
}

}  // namespace

struct NetServer::Impl {
  struct Connection {
    std::uint64_t id = 0;
    Fd fd;
    FrameReader reader;
    std::deque<std::vector<std::uint8_t>> outbox;
    std::size_t out_offset = 0;  // bytes of outbox.front() already written
    bool close_after_flush = false;
  };

  struct Pending {
    std::uint64_t conn_id = 0;
    std::uint64_t wire_id = 0;
    std::string served_route;
    std::uint8_t flags = 0;
    std::future<Tensor> future;
  };

  ShardedServer& server;
  NetServerOptions options;
  Fd listener;
  WakePipe wake;

  // IO-thread-private state.
  std::map<std::uint64_t, Connection> conns;  // conn id -> connection
  std::map<std::uint64_t, Pending> pending;   // seq -> in-flight request
  std::uint64_t next_conn_id = 1;
  std::uint64_t next_seq = 1;

  // Worker threads hand resolved request seqs back through here.
  std::mutex completed_mutex;
  std::vector<std::uint64_t> completed;

  // Counters (read from any thread via stats()).
  std::atomic<std::uint64_t> n_accepted{0}, n_rejected{0}, n_disconnects{0};
  std::atomic<std::uint64_t> n_requests{0}, n_responses{0}, n_malformed{0};

  Impl(ShardedServer& server, NetServerOptions options)
      : server(server), options(options) {}

  void queue_response(Connection& conn, const WireResponse& response) {
    conn.outbox.push_back(encode_response(response));
  }

  void handle_payload(Connection& conn, const std::vector<std::uint8_t>& payload) {
    std::optional<WireRequest> request = decode_request(payload);
    if (!request) {
      poison(conn, "malformed request payload");
      return;
    }
    RouteKey key;
    try {
      key = parse_route(request->route);
    } catch (const std::exception& e) {
      WireResponse r;
      r.id = request->id;
      r.status = Status::kUnknownRoute;
      r.route = request->route;
      r.message = e.what();
      queue_response(conn, r);
      return;
    }
    n_requests.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t seq = next_seq++;
    Pending& entry = pending[seq];
    entry.conn_id = conn.id;
    entry.wire_id = request->id;
    SubmitOptions opts;
    opts.deadline_us = request->deadline_us;
    opts.never_block = true;  // the IO loop must never park on a full queue
    opts.done_hook = [this, seq] {
      {
        std::lock_guard<std::mutex> lock(completed_mutex);
        completed.push_back(seq);
      }
      wake.wake();
    };
    Tensor frame = pixels_to_frame(request->h, request->w, request->pixels);
    AdmitResult admitted;
    if (request->video) {
      VideoOptions video;
      video.session_id = request->session_id;
      video.seq = request->frame_seq;
      admitted = server.submit_video(key, std::move(frame), video, std::move(opts));
    } else {
      admitted = server.submit_admitted(key, std::move(frame), std::move(opts));
    }
    entry.future = std::move(admitted.future);
    entry.served_route = std::move(admitted.served_route);
    if (admitted.degraded) entry.flags |= kFlagDegraded;
    if (admitted.two_stage) entry.flags |= kFlagTwoStage;
    if (admitted.delta) entry.flags |= kFlagDeltaReuse;
    // If the done_hook already fired (synchronous rejection / cache hit), the
    // seq sits in `completed` and this same thread collects it after this
    // handler returns — the entry above is fully populated by then.
  }

  void poison(Connection& conn, const std::string& why) {
    n_malformed.fetch_add(1, std::memory_order_relaxed);
    WireResponse r;
    r.id = 0;  // the frame boundary is lost; no request id to echo
    r.status = Status::kBadRequest;
    r.message = why;
    queue_response(conn, r);
    conn.close_after_flush = true;
  }

  void drain_completions() {
    std::vector<std::uint64_t> ready;
    {
      std::lock_guard<std::mutex> lock(completed_mutex);
      ready.swap(completed);
    }
    for (const std::uint64_t seq : ready) {
      auto it = pending.find(seq);
      if (it == pending.end()) continue;
      Pending entry = std::move(it->second);
      pending.erase(it);
      auto conn_it = conns.find(entry.conn_id);
      if (conn_it == conns.end()) continue;  // client left; drop the result
      WireResponse response;
      try {
        Tensor output = entry.future.get();  // ready: the hook fires post-promise
        response.id = entry.wire_id;
        response.status = Status::kOk;
        response.flags = entry.flags;
        response.route = entry.served_route;
        response.h = output.shape().h();
        response.w = output.shape().w();
        response.pixels = frame_to_pixels(output);
      } catch (...) {
        response = error_response(entry.wire_id, entry.served_route, std::current_exception());
        response.flags = entry.flags;
      }
      queue_response(conn_it->second, response);
    }
  }

  void accept_ready() {
    while (true) {
      const int fd = ::accept(listener.get(), nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
        return;  // transient accept failure; the listener stays up
      }
      Fd accepted(fd);
      if (conns.size() >= options.max_connections) {
        n_rejected.fetch_add(1, std::memory_order_relaxed);
        continue;  // Fd closes on scope exit
      }
      set_nonblocking(accepted, true);
      set_nodelay(accepted);
      const std::uint64_t id = next_conn_id++;
      Connection conn;
      conn.id = id;
      conn.fd = std::move(accepted);
      conn.reader = FrameReader(options.max_payload_bytes);
      conns.emplace(id, std::move(conn));
      n_accepted.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Returns false when the connection died and was erased.
  bool read_ready(Connection& conn) {
    std::uint8_t buf[64 * 1024];
    while (true) {
      const ssize_t n = ::recv(conn.fd.get(), buf, sizeof(buf), 0);
      if (n > 0) {
        conn.reader.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // Peer closed (possibly mid-request) or hard error: drop the
      // connection; in-flight completions for it are discarded later.
      n_disconnects.fetch_add(1, std::memory_order_relaxed);
      conns.erase(conn.id);
      return false;
    }
    while (auto payload = conn.reader.next()) {
      handle_payload(conn, *payload);
      if (conn.close_after_flush) return true;  // poisoned inside a handler
    }
    if (conn.reader.poisoned() && !conn.close_after_flush) {
      poison(conn, conn.reader.error());
    }
    return true;
  }

  // Returns false when the connection was erased.
  bool write_ready(Connection& conn) {
    while (!conn.outbox.empty()) {
      const std::vector<std::uint8_t>& front = conn.outbox.front();
      const ssize_t n = ::send(conn.fd.get(), front.data() + conn.out_offset,
                               front.size() - conn.out_offset, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        n_disconnects.fetch_add(1, std::memory_order_relaxed);
        conns.erase(conn.id);
        return false;
      }
      conn.out_offset += static_cast<std::size_t>(n);
      if (conn.out_offset == front.size()) {
        conn.outbox.pop_front();
        conn.out_offset = 0;
        n_responses.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (conn.close_after_flush) {
      conns.erase(conn.id);
      return false;
    }
    return true;
  }

  void run(const std::atomic<bool>& stopping) {
    bool accepting = true;
    while (true) {
      drain_completions();

      if (stopping.load(std::memory_order_seq_cst)) {
        if (accepting) {
          listener.reset();  // stop accepting; existing requests still finish
          accepting = false;
        }
        bool flushed = pending.empty();
        for (const auto& [id, conn] : conns) {
          if (!conn.outbox.empty()) flushed = false;
        }
        if (flushed) break;
      }

      std::vector<pollfd> fds;
      fds.push_back(pollfd{wake.read_fd(), POLLIN, 0});
      if (accepting) fds.push_back(pollfd{listener.get(), POLLIN, 0});
      std::vector<std::uint64_t> order;  // conn id per pollfd entry
      for (auto& [id, conn] : conns) {
        short events = 0;
        if (!stopping.load(std::memory_order_relaxed)) events |= POLLIN;
        if (!conn.outbox.empty()) events |= POLLOUT;
        if (events == 0) continue;
        fds.push_back(pollfd{conn.fd.get(), events, 0});
        order.push_back(id);
      }
      // 100ms cap: a pure safety net so a lost wakeup can only delay, never
      // wedge, the loop.
      ::poll(fds.data(), fds.size(), 100);

      std::size_t index = 0;
      if (fds[index].revents & POLLIN) wake.drain();
      ++index;
      if (accepting) {
        if (fds[index].revents & POLLIN) accept_ready();
        ++index;
      }
      for (std::size_t c = 0; c < order.size(); ++c, ++index) {
        auto it = conns.find(order[c]);
        if (it == conns.end()) continue;
        Connection& conn = it->second;
        const short revents = fds[index].revents;
        if (revents & (POLLERR | POLLNVAL)) {
          n_disconnects.fetch_add(1, std::memory_order_relaxed);
          conns.erase(conn.id);
          continue;
        }
        if ((revents & (POLLIN | POLLHUP)) && !read_ready(conn)) continue;
        if ((revents & POLLOUT) || !it->second.outbox.empty()) write_ready(it->second);
      }
    }
    conns.clear();
  }
};

NetServer::NetServer(ShardedServer& server, NetServerOptions options)
    : impl_(std::make_unique<Impl>(server, options)) {
  impl_->listener = listen_tcp(options.port);
  set_nonblocking(impl_->listener, true);
  port_ = local_port(impl_->listener);
  io_thread_ = std::thread([this] { impl_->run(stopping_); });
}

NetServer::~NetServer() { shutdown(); }

NetStats NetServer::stats() const {
  NetStats s;
  s.connections_accepted = impl_->n_accepted.load(std::memory_order_relaxed);
  s.connections_rejected = impl_->n_rejected.load(std::memory_order_relaxed);
  s.disconnects = impl_->n_disconnects.load(std::memory_order_relaxed);
  s.requests = impl_->n_requests.load(std::memory_order_relaxed);
  s.responses = impl_->n_responses.load(std::memory_order_relaxed);
  s.malformed = impl_->n_malformed.load(std::memory_order_relaxed);
  return s;
}

void NetServer::shutdown() {
  std::call_once(shutdown_once_, [this] {
    stopping_.store(true, std::memory_order_seq_cst);
    impl_->wake.wake();
    if (io_thread_.joinable()) io_thread_.join();
  });
}

}  // namespace sesr::serve::net
