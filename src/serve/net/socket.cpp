#include "serve/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sesr::serve::net {

namespace {

[[noreturn]] void throw_errno(const std::string& op) {
  throw SocketError(op + ": " + std::strerror(errno));
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd listen_tcp(const std::string& bind_address, std::uint16_t port, int backlog,
              bool reuse_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  if (reuse_port &&
      ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    throw_errno("setsockopt(SO_REUSEPORT)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  const std::string numeric =
      (bind_address == "localhost" || bind_address.empty()) ? "127.0.0.1" : bind_address;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    throw SocketError("listen: unsupported bind address '" + bind_address +
                      "' (numeric IPv4 only)");
  }
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind(" + numeric + ":" + std::to_string(port) + ")");
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen");
  return fd;
}

bool is_loopback_address(const std::string& bind_address) {
  if (bind_address == "localhost" || bind_address.empty()) return true;
  in_addr addr{};
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr) != 1) return false;
  // 127.0.0.0/8: the whole block is loopback, not just 127.0.0.1.
  return (ntohl(addr.s_addr) >> 24) == 127u;
}

AcceptAction classify_accept_errno(int err) {
  switch (err) {
    case EAGAIN:
#if EAGAIN != EWOULDBLOCK
    case EWOULDBLOCK:
#endif
      return AcceptAction::kDrained;
    // Linux completes handshakes asynchronously, so a connection can be dead
    // (reset by the peer, protocol error) by the time accept() reaches it.
    // That is the CONNECTION's failure, not the listener's: the next queued
    // one may be fine.
    case ECONNABORTED:
#ifdef EPROTO
    case EPROTO:
#endif
    case EINTR:
      return AcceptAction::kRetry;
    // Out of fds (process or system) or kernel memory: the pending connection
    // stays in the backlog, the listener stays POLLIN-readable, and an
    // accept loop that just returns will be woken again immediately — a
    // 100%-CPU spin until an fd frees. The listener must leave the poll set
    // until resources can plausibly have been released.
    case EMFILE:
    case ENFILE:
    case ENOBUFS:
    case ENOMEM:
      return AcceptAction::kPause;
    default:
      // Unknown errno: treat like exhaustion — pausing is safe for any cause
      // (accepts resume after the backoff), spinning is not.
      return AcceptAction::kPause;
  }
}

std::uint16_t local_port(const Fd& fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Fd connect_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = (host == "localhost" || host.empty()) ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    throw SocketError("connect: unsupported host '" + host + "' (numeric IPv4 only)");
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("connect(" + numeric + ":" + std::to_string(port) + ")");
  }
  return fd;
}

void set_nonblocking(const Fd& fd, bool nonblocking) {
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int next = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd.get(), F_SETFL, next) != 0) throw_errno("fcntl(F_SETFL)");
}

void set_nodelay(const Fd& fd) {
  const int one = 1;
  if (::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    throw_errno("setsockopt(TCP_NODELAY)");
  }
}

void send_all(const Fd& fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd.get(), data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool recv_all(const Fd& fd, std::uint8_t* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd.get(), data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) return false;  // orderly close mid-message
    got += static_cast<std::size_t>(n);
  }
  return true;
}

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe(fds) != 0) throw_errno("pipe");
  read_ = Fd(fds[0]);
  write_ = Fd(fds[1]);
  set_nonblocking(read_, true);
  set_nonblocking(write_, true);
}

void WakePipe::wake() {
  const std::uint8_t byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success here.
  (void)!::write(write_.get(), &byte, 1);
}

void WakePipe::drain() {
  std::uint8_t buf[256];
  while (::read(read_.get(), buf, sizeof(buf)) > 0) {
  }
}

}  // namespace sesr::serve::net
