// Blocking client for the TCP front end — the load generator's and the
// tests' view of the wire protocol. One connection, synchronous send/recv;
// run several NetClients (one per thread) for closed-loop concurrency.
//
// send()/recv_response() are split so a caller can pipeline a few requests on
// one connection; upscale() is the common send-one-wait-one wrapper. send_raw
// ships arbitrary bytes — the chaos tests use it for malformed frames and
// mid-request disconnects.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/net/socket.hpp"
#include "serve/net/wire.hpp"
#include "tensor/tensor.hpp"

namespace sesr::serve::net {

class NetClient {
 public:
  NetClient(const std::string& host, std::uint16_t port);

  // Attach a shared-secret token: every subsequent request carries it in the
  // wire auth field (kRequestFlagAuth). Required against servers bound
  // beyond loopback; harmless extra bytes against tokenless ones.
  void set_auth_token(std::string token) { auth_token_ = std::move(token); }

  // Queue one request; returns the request id used on the wire.
  std::uint64_t send(const std::string& route, const Tensor& frame,
                     std::uint32_t deadline_us = 0);

  // Queue one video-session frame (kRequestFlagVideo with session_id/seq).
  // Submit seq = 1, 2, 3, ... per session; consecutive seqs let the server's
  // tile-delta path reuse unchanged tiles (kFlagDeltaReuse in the response).
  std::uint64_t send_video(const std::string& route, const Tensor& frame,
                           std::uint64_t session_id, std::uint32_t seq,
                           std::uint32_t deadline_us = 0);

  // send_video + recv_response, asserting the echoed id matches.
  WireResponse upscale_video(const std::string& route, const Tensor& frame,
                             std::uint64_t session_id, std::uint32_t seq,
                             std::uint32_t deadline_us = 0);

  // Block for the next response frame. std::nullopt = server closed the
  // connection. Throws SocketError on transport errors and std::runtime_error
  // on an undecodable response.
  std::optional<WireResponse> recv_response();

  // send + recv_response, asserting the echoed id matches.
  WireResponse upscale(const std::string& route, const Tensor& frame,
                       std::uint32_t deadline_us = 0);

  // Ship raw bytes verbatim (chaos testing).
  void send_raw(const std::vector<std::uint8_t>& bytes);

  // Close the socket immediately (mid-request disconnect simulation).
  void disconnect();
  bool connected() const { return fd_.valid(); }

 private:
  Fd fd_;
  std::uint64_t next_id_ = 1;
  std::string auth_token_;
};

}  // namespace sesr::serve::net
