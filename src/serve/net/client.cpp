#include "serve/net/client.hpp"

namespace sesr::serve::net {

NetClient::NetClient(const std::string& host, std::uint16_t port)
    : fd_(connect_tcp(host, port)) {
  set_nodelay(fd_);
}

std::uint64_t NetClient::send(const std::string& route, const Tensor& frame,
                              std::uint32_t deadline_us) {
  WireRequest request;
  request.id = next_id_++;
  request.deadline_us = deadline_us;
  request.auth = auth_token_;
  request.route = route;
  request.h = frame.shape().h();
  request.w = frame.shape().w();
  request.pixels = frame_to_pixels(frame);
  const std::vector<std::uint8_t> bytes = encode_request(request);
  send_all(fd_, bytes.data(), bytes.size());
  return request.id;
}

std::uint64_t NetClient::send_video(const std::string& route, const Tensor& frame,
                                    std::uint64_t session_id, std::uint32_t seq,
                                    std::uint32_t deadline_us) {
  WireRequest request;
  request.id = next_id_++;
  request.deadline_us = deadline_us;
  request.video = true;
  request.session_id = session_id;
  request.frame_seq = seq;
  request.auth = auth_token_;
  request.route = route;
  request.h = frame.shape().h();
  request.w = frame.shape().w();
  request.pixels = frame_to_pixels(frame);
  const std::vector<std::uint8_t> bytes = encode_request(request);
  send_all(fd_, bytes.data(), bytes.size());
  return request.id;
}

WireResponse NetClient::upscale_video(const std::string& route, const Tensor& frame,
                                      std::uint64_t session_id, std::uint32_t seq,
                                      std::uint32_t deadline_us) {
  const std::uint64_t id = send_video(route, frame, session_id, seq, deadline_us);
  std::optional<WireResponse> response = recv_response();
  if (!response) throw std::runtime_error("net client: server closed the connection");
  if (response->id != id) {
    throw std::runtime_error("net client: response id mismatch (pipelining without matching?)");
  }
  return *response;
}

std::optional<WireResponse> NetClient::recv_response() {
  std::uint8_t header[8];
  if (!recv_all(fd_, header, sizeof(header))) return std::nullopt;
  std::uint32_t magic = 0, len = 0;
  for (int i = 0; i < 4; ++i) magic |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[4 + i]) << (8 * i);
  if (magic != kMagic || len > kMaxPayloadBytes) {
    throw std::runtime_error("net client: malformed response frame");
  }
  std::vector<std::uint8_t> payload(len);
  if (len > 0 && !recv_all(fd_, payload.data(), payload.size())) return std::nullopt;
  std::optional<WireResponse> response = decode_response(payload);
  if (!response) throw std::runtime_error("net client: undecodable response payload");
  return response;
}

WireResponse NetClient::upscale(const std::string& route, const Tensor& frame,
                                std::uint32_t deadline_us) {
  const std::uint64_t id = send(route, frame, deadline_us);
  std::optional<WireResponse> response = recv_response();
  if (!response) throw std::runtime_error("net client: server closed the connection");
  if (response->id != id) {
    throw std::runtime_error("net client: response id mismatch (pipelining without matching?)");
  }
  return *response;
}

void NetClient::send_raw(const std::vector<std::uint8_t>& bytes) {
  send_all(fd_, bytes.data(), bytes.size());
}

void NetClient::disconnect() { fd_.reset(); }

}  // namespace sesr::serve::net
