// TCP front end: a poll()-driven IO loop feeding ShardedServer.
//
//   accept ──> per-connection FrameReader ──> decode_request
//                     │                             │
//                     │                  submit_admitted(route, frame,
//                     │                    {deadline, done_hook, never_block})
//                     │                             │ (worker threads)
//              outbox <── encode_response <── completion queue + wake pipe
//
// One thread owns every socket. Inference completions arrive on worker
// threads; their done_hook only records the pending-request id and writes one
// byte to a self-pipe, so the IO thread wakes, collects the resolved future
// (ready by contract — the hook fires after the promise), encodes the
// response, and writes it on the owning connection. Responses therefore
// pipeline: a connection may have many requests in flight and receives
// responses in completion order, matched by the echoed request id.
//
// Every submit uses never_block: the IO loop must not park on a full queue,
// so overload surfaces as a typed kOverloaded response (shed or queue-full)
// instead of backpressure-by-stall. A malformed frame poisons its connection:
// the server answers kBadRequest (request id 0) and closes after flushing —
// length-prefix framing cannot resynchronize past corrupt bytes. A client
// that disconnects mid-request just loses its responses; in-flight inference
// completes and the results are dropped on the floor when the completion
// finds no live connection.
//
// shutdown(): stop accepting, stop reading, flush every in-flight response,
// join. It does NOT shut down the ShardedServer — the owner decides whether
// that instance drains, reloads, or dies.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "serve/net/socket.hpp"
#include "serve/net/wire.hpp"
#include "serve/sharded_server.hpp"

namespace sesr::serve::net {

struct NetServerOptions {
  std::uint16_t port = 0;  // 0 = ephemeral; NetServer::port() reports it
  std::size_t max_connections = 256;
  std::uint32_t max_payload_bytes = kMaxPayloadBytes;
};

struct NetStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  // over max_connections
  std::uint64_t disconnects = 0;           // peer closed (clean or mid-request)
  std::uint64_t requests = 0;              // complete frames decoded and submitted
  std::uint64_t responses = 0;             // responses fully written
  std::uint64_t malformed = 0;             // poisoned connections
};

class NetServer {
 public:
  // Binds 127.0.0.1:{options.port} and starts the IO thread. Throws
  // SocketError when the port is taken.
  NetServer(ShardedServer& server, NetServerOptions options);
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  std::uint16_t port() const { return port_; }
  NetStats stats() const;

  // Stop accepting and reading, flush every pending response (waiting for
  // in-flight inference to resolve), close all sockets, join. Idempotent.
  void shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint16_t port_ = 0;
  std::thread io_thread_;
  std::atomic<bool> stopping_{false};
  std::once_flag shutdown_once_;
};

}  // namespace sesr::serve::net
