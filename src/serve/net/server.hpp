// TCP front end: N shared-nothing IO shards feeding one ShardedServer.
//
//   listener[i] (SO_REUSEPORT) ──> shard i poll() loop
//        │  sniff first bytes: "SESR" -> binary framing, method token -> HTTP
//        │
//        ├─ binary: FrameReader ──> decode_request ──> auth check
//        │                                │
//        ├─ HTTP:   HttpReader  ──> /healthz /stats /v1/upscale
//        │                                │
//        │                   submit_admitted / submit_video
//        │                     {deadline, done_hook, never_block}
//        │                                │ (worker threads)
//        └── outbox <── encode_response / http_response <── completions + wake
//
// Each shard owns its listener, connections, pending table, wake pipe, and
// counters — shared-nothing, so shards never contend. With io_shards > 1
// every listener binds the same (address, port) with SO_REUSEPORT and the
// kernel load-balances accepted connections across shards by 4-tuple hash.
// The process-wide max_connections budget is split evenly per shard.
//
// Inference completions arrive on worker threads; their done_hook only
// records the pending-request seq and wakes the owning shard's pipe, so that
// shard's IO thread collects the resolved future (ready by contract — the
// hook fires after the promise), encodes the response, and writes it on the
// owning connection. Binary responses pipeline (matched by echoed request
// id); HTTP allows one in-flight request per connection so responses stay
// ordered.
//
// Every submit uses never_block: an IO loop must not park on a full queue,
// so overload surfaces as a typed kOverloaded response / HTTP 503 instead of
// backpressure-by-stall. A malformed frame poisons its connection: the
// server answers kBadRequest (HTTP: 400) and closes after flushing. Slow or
// dead peers are bounded by two per-connection timers: read_timeout_ms while
// a partial request is pending (the slow-loris defense) and idle_timeout_ms
// when nothing is pending at all.
//
// Deployment shape: binding beyond loopback (bind_address not in 127/8)
// REQUIRES auth_token — the constructor refuses otherwise. When a token is
// set, every binary request must carry it (kRequestFlagAuth field; wrong or
// missing answers kUnauthorized, the connection survives) and every HTTP
// request except GET /healthz must send it in Authorization (401 otherwise).
// Comparison is constant-time either way.
//
// shutdown(): stop accepting, stop reading, flush every in-flight response,
// join all shards. It does NOT shut down the ShardedServer — the owner
// decides whether that instance drains, reloads, or dies.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/net/socket.hpp"
#include "serve/net/wire.hpp"
#include "serve/sharded_server.hpp"

namespace sesr::serve::net {

struct NetServerOptions {
  std::uint16_t port = 0;  // 0 = ephemeral; NetServer::port() reports it
  // Numeric IPv4 bind address. Loopback ("127.0.0.1") serves local clients
  // only; "0.0.0.0" accepts from any interface and REQUIRES auth_token.
  std::string bind_address = "127.0.0.1";
  // Shared-secret token. Empty = no auth (loopback binds only). Non-empty =
  // enforced on every request, any bind.
  std::string auth_token;
  // Number of SO_REUSEPORT listener shards (>= 1). Each shard is one thread
  // with its own listener + poll loop; the kernel spreads connections across
  // them. One shard preserves the single-threaded front end exactly.
  std::size_t io_shards = 1;
  std::size_t max_connections = 256;  // process-wide; split evenly per shard
  std::uint32_t max_payload_bytes = kMaxPayloadBytes;
  // Close a connection whose partial request (binary frame or HTTP header/
  // body) has made no progress for this long — a slow-loris writer cannot
  // hold a slot open byte-by-byte. 0 disables.
  std::uint32_t read_timeout_ms = 10'000;
  // Close a connection with nothing pending (no partial input, no in-flight
  // inference) and no activity for this long. 0 disables.
  std::uint32_t idle_timeout_ms = 60'000;
  // TEST SEAM: when set, invoked immediately before every ShardedServer
  // submit on the IO thread; throwing simulates a synchronous submit failure
  // (the pending-entry-leak regression needs one on demand).
  std::function<void()> submit_fault;
};

// Counters of one IO shard (and, summed, of the whole front end).
struct NetShardStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  // over max_connections
  std::uint64_t disconnects = 0;           // peer closed (clean or mid-request)
  std::uint64_t requests = 0;              // decoded and submitted (both protocols)
  std::uint64_t responses = 0;             // responses fully written
  std::uint64_t malformed = 0;             // poisoned connections
  std::uint64_t accept_errors = 0;         // accept(2) failures (retried or paused)
  std::uint64_t timeouts = 0;              // read/idle timeout closes
  std::uint64_t http_requests = 0;         // requests that arrived via HTTP
  std::uint64_t auth_failures = 0;         // kUnauthorized / 401 answers
};

// Roll-up: the inherited fields are totals across shards; `shards` is the
// per-shard breakdown (size == io_shards, index == shard id).
struct NetStats : NetShardStats {
  std::vector<NetShardStats> shards;
};

class NetServer {
 public:
  // Binds io_shards listeners on bind_address:{options.port} and starts one
  // IO thread per shard. Throws SocketError when the bind fails and
  // std::invalid_argument for a non-loopback bind without auth_token or
  // io_shards == 0.
  NetServer(ShardedServer& server, NetServerOptions options);
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  std::uint16_t port() const { return port_; }
  NetStats stats() const;

  // Stop accepting and reading, flush every pending response (waiting for
  // in-flight inference to resolve), close all sockets, join all shards.
  // Idempotent.
  void shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::once_flag shutdown_once_;
};

}  // namespace sesr::serve::net
