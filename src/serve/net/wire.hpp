// Length-prefixed binary wire protocol of the TCP front end.
//
// Every frame on the socket, both directions, is
//
//     u32 magic "SESR"  ·  u32 payload_len  ·  payload_len bytes
//
// with all integers little-endian and floats IEEE-754 binary32 (bit pattern
// little-endian). Request payload:
//
//     u64 request_id · u32 deadline_us · u8 flags · u64 session_id
//     · u32 frame_seq · [u16 auth_len · auth bytes]
//     · u16 route_len · route bytes
//     · u32 h · u32 w · h*w f32 (the (1, H, W, 1) Y plane, row-major)
//
// `flags` bit 0 (kRequestFlagVideo) marks a video-session frame: session_id
// names the client's stream and frame_seq must increase by exactly 1 per
// frame for the server's tile-delta path to engage (a gap just costs a full
// re-upscale). Non-video requests carry flags = 0 and zeros for both fields.
// `flags` bit 1 (kRequestFlagAuth) says the optional auth field is present:
// the shared-secret token a server bound beyond loopback requires (checked
// with a constant-time compare; a wrong or missing token answers
// kUnauthorized, the connection survives). Requests without the flag omit
// the field entirely, so pre-auth clients stay wire-compatible against
// tokenless servers. Unknown flag bits are malformed.
//
// Response payload:
//
//     u64 request_id · u8 status · u8 flags · u16 route_len · route bytes
//     · u32 h · u32 w · h*w f32        (status == kOk: the HR plane)
//                     · message bytes  (status != kOk: h = w = 0, h*w absent)
//
// `route` in a response is the route that actually served the request (the
// degrade ladder may rewrite it); `flags` says how. request_id is an opaque
// caller token echoed back verbatim — responses may arrive out of request
// order (the server pipelines), so the id is how a client matches them.
//
// Everything here is pure encode/decode on byte vectors — no sockets — so
// the framing is unit-testable (and fuzzable) without a connection. The
// incremental FrameReader is the server/client side deframer: feed() bytes as
// they arrive, next() hands back complete payloads, and a malformed prefix
// (bad magic, oversized length) poisons the reader with an error message —
// the connection owner answers with kBadRequest and closes.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace sesr::serve::net {

inline constexpr std::uint32_t kMagic = 0x52534553u;  // "SESR" little-endian
// Frames above this payload size are rejected as malformed (a 4K x 4K f32
// plane is ~64 MiB; anything bigger is a corrupt length, not a frame).
inline constexpr std::uint32_t kMaxPayloadBytes = 96u * 1024u * 1024u;

enum class Status : std::uint8_t {
  kOk = 0,
  kOverloaded = 1,    // shed by SLO admission or rejected by a full queue
  kUnknownRoute = 2,  // route not registered (or unparseable route spec)
  kBadRequest = 3,    // malformed frame / invalid dimensions
  kShuttingDown = 4,  // server draining or shut down
  kError = 5,         // execution error
  kUnauthorized = 6,  // auth token required / wrong (non-loopback binds)
};

// Response flag bits.
inline constexpr std::uint8_t kFlagDegraded = 1u << 0;  // served by a cheaper route
inline constexpr std::uint8_t kFlagTwoStage = 1u << 1;  // x4 served as x2 twice
inline constexpr std::uint8_t kFlagDeltaReuse = 1u << 2;  // video tile-delta path engaged

// Request flag bits.
inline constexpr std::uint8_t kRequestFlagVideo = 1u << 0;  // session_id/frame_seq are live
inline constexpr std::uint8_t kRequestFlagAuth = 1u << 1;   // auth field present

struct WireRequest {
  std::uint64_t id = 0;
  std::uint32_t deadline_us = 0;  // 0 = no per-request deadline
  bool video = false;             // kRequestFlagVideo
  std::uint64_t session_id = 0;   // video only
  std::uint32_t frame_seq = 0;    // video only; +1 per frame within a session
  std::string auth;               // shared-secret token; empty = field absent
  std::string route;              // route_string, e.g. "m5:2:fp32"
  std::int64_t h = 0;
  std::int64_t w = 0;
  std::vector<float> pixels;  // h*w, row-major
};

struct WireResponse {
  std::uint64_t id = 0;
  Status status = Status::kOk;
  std::uint8_t flags = 0;
  std::string route;  // served route (kOk) or requested route when known
  std::int64_t h = 0;
  std::int64_t w = 0;
  std::vector<float> pixels;  // kOk only
  std::string message;        // error text, status != kOk
};

// Serialize one frame (magic + length prefix + payload).
std::vector<std::uint8_t> encode_request(const WireRequest& request);
std::vector<std::uint8_t> encode_response(const WireResponse& response);

// Parse one complete PAYLOAD (no magic/length prefix — FrameReader already
// stripped it). Returns std::nullopt on malformed payloads (truncated fields,
// length/dimension mismatch, empty route, zero-pixel frames).
std::optional<WireRequest> decode_request(const std::vector<std::uint8_t>& payload);
std::optional<WireResponse> decode_response(const std::vector<std::uint8_t>& payload);

// Incremental deframer: feed() raw socket bytes, next() pops complete
// payloads in arrival order. A bad magic or oversized length permanently
// poisons the reader (error() non-empty, next() forever empty): framing is
// byte-synchronous, so nothing after a corrupt prefix can be trusted.
class FrameReader {
 public:
  explicit FrameReader(std::uint32_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  void feed(const std::uint8_t* data, std::size_t size);
  std::optional<std::vector<std::uint8_t>> next();
  const std::string& error() const { return error_; }
  bool poisoned() const { return !error_.empty(); }
  // Bytes buffered but not yet parsed into a complete frame — non-zero means
  // a partial frame is pending (the read-timeout trigger).
  std::size_t partial_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::uint32_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  // Frames already carved out of buffer_ this feed; the buffer compacts once
  // per feed() (erasing per frame is O(K^2) over K coalesced frames).
  std::size_t consumed_ = 0;
  std::deque<std::vector<std::uint8_t>> ready_;
  std::string error_;
};

// Timing-safe equality for shared-secret tokens: examines every byte of
// `candidate` regardless of where the first mismatch is, so response timing
// does not leak a prefix match. (Length is not hidden — the frame carries it
// in clear — only content.)
bool constant_time_equal(const std::string& candidate, const std::string& secret);

// Frame (1, H, W, 1) <-> wire pixel helpers.
Tensor pixels_to_frame(std::int64_t h, std::int64_t w, const std::vector<float>& pixels);
std::vector<float> frame_to_pixels(const Tensor& frame);

}  // namespace sesr::serve::net
