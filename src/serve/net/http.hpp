// Minimal HTTP/1.1 adapter for the TCP front end — just enough protocol for
// curl, load balancers, and health probes to speak to the same port as the
// binary framing. The server sniffs the first bytes of every connection
// ("SESR" magic -> binary, an HTTP method token -> this adapter), so one
// listener serves both.
//
// Scope is deliberately small:
//   - request line + headers + Content-Length body (no chunked encoding, no
//     multipart, no TLS — reject with 411/400 rather than guess)
//   - incremental parsing (HttpReader mirrors FrameReader: feed bytes, pop
//     complete requests, poison permanently on malformed/oversized input)
//   - keep-alive by HTTP/1.1 default; "Connection: close" honored
//
// Everything here is pure byte parsing/serialization — no sockets — so the
// adapter is unit-testable without a connection, exactly like wire.{hpp,cpp}.
//
// Endpoints are the server's business (server.cpp): GET /healthz, GET
// /stats, POST /v1/upscale. This header also carries the tiny binary PGM
// (P5) codec /v1/upscale accepts and returns, so `curl --data-binary
// @frame.pgm` round-trips without any custom tooling.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sesr::serve::net {

struct HttpRequest {
  std::string method;   // "GET", "POST", ... (uppercase on the wire)
  std::string path;     // target without the query string, e.g. "/v1/upscale"
  std::map<std::string, std::string> query;    // decoded query parameters
  std::map<std::string, std::string> headers;  // names lowercased
  std::vector<std::uint8_t> body;
  bool keep_alive = true;  // HTTP/1.1 default; false on "Connection: close"

  // Lowercase-name header lookup; empty string when absent.
  const std::string& header(const std::string& lower_name) const;
};

// Incremental HTTP/1.1 request parser: feed() raw socket bytes, next() pops
// complete requests in order. Malformed input (bad request line, non-numeric
// Content-Length, chunked encoding, oversized header block or body) poisons
// the parser permanently — the connection owner answers 400 and closes, the
// same contract as FrameReader.
class HttpReader {
 public:
  explicit HttpReader(std::size_t max_body = 96u * 1024u * 1024u,
                      std::size_t max_header_bytes = 16u * 1024u)
      : max_body_(max_body), max_header_(max_header_bytes) {}

  void feed(const std::uint8_t* data, std::size_t size);
  std::optional<HttpRequest> next();
  const std::string& error() const { return error_; }
  bool poisoned() const { return !error_.empty(); }
  // Bytes buffered toward an incomplete request (read-timeout trigger).
  std::size_t partial_bytes() const { return buffer_.size(); }

 private:
  void parse();
  void poison(const std::string& why);

  std::size_t max_body_;
  std::size_t max_header_;
  std::vector<std::uint8_t> buffer_;
  std::deque<HttpRequest> ready_;
  std::string error_;
  // Parse state: headers of the in-progress request once seen, while the
  // body accumulates.
  std::optional<HttpRequest> in_progress_;
  std::size_t body_needed_ = 0;
};

// Serialize one response: status line, Date-free minimal headers
// (Content-Type, Content-Length, Connection when closing), body. `extra`
// headers are emitted verbatim (already "Name: value" formatted).
std::vector<std::uint8_t> http_response(int status, const std::string& content_type,
                                        const std::vector<std::uint8_t>& body,
                                        bool close_connection = false,
                                        const std::vector<std::string>& extra = {});
std::vector<std::uint8_t> http_response(int status, const std::string& content_type,
                                        const std::string& body, bool close_connection = false,
                                        const std::vector<std::string>& extra = {});

// The reason phrase for the subset of statuses the server emits.
const char* http_reason(int status);

// True when the first bytes of a connection look like the start of an HTTP
// request (a known method token + space). Needs at most kSniffBytes bytes;
// call only with size >= kSniffBytes or once the connection closed short.
inline constexpr std::size_t kSniffBytes = 8;
bool looks_like_http(const std::uint8_t* data, std::size_t size);

// --- binary PGM (P5) codec for /v1/upscale -------------------------------
//
// P5 with maxval 255: header "P5\n<w> <h>\n255\n" then w*h raw bytes. Floats
// map linearly [0,1] <-> [0,255] (clamped on encode; 1/255 quantization is
// the price of the format — raw f32 mode is the lossless path).
//
// Per-side image dimension cap for request decoding (PGM header and the raw
// f32 query parameters). Keeps every w*h product far from u64/size_t wrap so
// the body-length checks are exact, and keeps Shape::numel from overflowing
// before a request is even admitted.
inline constexpr std::int64_t kMaxImageDim = 1 << 20;
struct PgmImage {
  std::int64_t h = 0;
  std::int64_t w = 0;
  std::vector<float> pixels;  // h*w, row-major, [0,1]
};
std::optional<PgmImage> decode_pgm(const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> encode_pgm(std::int64_t h, std::int64_t w,
                                     const std::vector<float>& pixels);

}  // namespace sesr::serve::net
