#include "serve/response_cache.hpp"

#include <cstring>

namespace sesr::serve {

std::uint64_t ResponseCache::fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t ResponseCache::content_hash(std::size_t route_id, const Tensor& frame) {
  const std::uint64_t route = route_id;
  const std::int64_t dims[2] = {frame.shape().h(), frame.shape().w()};
  std::uint64_t h = fnv1a(&route, sizeof(route), kFnvOffsetBasis);
  h = fnv1a(dims, sizeof(dims), h);
  return fnv1a(frame.raw(), static_cast<std::size_t>(frame.numel()) * sizeof(float), h);
}

bool ResponseCache::matches(const Entry& entry, std::size_t route_id, const Tensor& frame) const {
  return entry.route_id == route_id && entry.frame.shape() == frame.shape() &&
         std::memcmp(entry.frame.raw(), frame.raw(),
                     static_cast<std::size_t>(frame.numel()) * sizeof(float)) == 0;
}

std::optional<Tensor> ResponseCache::lookup(std::size_t route_id, const Tensor& frame) {
  if (!enabled()) return std::nullopt;
  const std::uint64_t hash = content_hash(route_id, frame);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(hash);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (!matches(*it->second, route_id, frame)) {
    ++stats_.collisions;
    ++stats_.misses;
    return std::nullopt;
  }
  entries_.splice(entries_.begin(), entries_, it->second);  // refresh recency
  ++stats_.hits;
  return it->second->output;  // copy made outside the entry's lifetime worries
}

void ResponseCache::insert(std::size_t route_id, const Tensor& frame, const Tensor& output) {
  if (!enabled()) return;
  const std::uint64_t hash = content_hash(route_id, frame);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(hash);
  if (it != index_.end()) {
    // Same content re-inserted (two in-flight misses of one frame), or a
    // colliding key: either way the slot is refreshed with the new value.
    if (!matches(*it->second, route_id, frame)) ++stats_.collisions;
    it->second->route_id = route_id;
    it->second->frame = frame;
    it->second->output = output;
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  if (entries_.size() >= max_entries_) {
    index_.erase(entries_.back().hash);
    entries_.pop_back();
    ++stats_.evictions;
  }
  entries_.push_front(Entry{hash, route_id, frame, output});
  index_[hash] = entries_.begin();
  ++stats_.insertions;
}

void ResponseCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  index_.clear();
}

CacheStats ResponseCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s = stats_;
  s.entries = entries_.size();
  return s;
}

}  // namespace sesr::serve
