#include "serve/registry.hpp"

#include "core/tiled_inference.hpp"

namespace sesr::serve {

namespace {

const char* precision_string(core::InferencePrecision precision) {
  switch (precision) {
    case core::InferencePrecision::kFp16: return "fp16";
    case core::InferencePrecision::kInt8: return "int8";
    case core::InferencePrecision::kHybrid: return "hybrid";
    case core::InferencePrecision::kFp32: break;
  }
  return "fp32";
}

}  // namespace

std::string route_string(const RouteKey& key) {
  return key.network + ":" + std::to_string(key.scale) + ":" + precision_string(key.precision);
}

RouteKey parse_route(const std::string& spec) {
  const std::size_t first = spec.find(':');
  if (first == 0 || first == std::string::npos) {
    throw std::invalid_argument("bad route '" + spec + "' (expected name:scale[:precision])");
  }
  const std::size_t second = spec.find(':', first + 1);
  RouteKey key;
  key.network = spec.substr(0, first);
  const std::string scale_part =
      spec.substr(first + 1, second == std::string::npos ? std::string::npos : second - first - 1);
  try {
    std::size_t consumed = 0;
    key.scale = std::stoll(scale_part, &consumed);
    if (consumed != scale_part.size()) throw std::invalid_argument(scale_part);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad route scale in '" + spec + "'");
  }
  if (key.scale < 1) throw std::invalid_argument("bad route scale in '" + spec + "'");
  if (second != std::string::npos) {
    const std::string precision = spec.substr(second + 1);
    if (precision == "fp32") key.precision = core::InferencePrecision::kFp32;
    else if (precision == "fp16") key.precision = core::InferencePrecision::kFp16;
    else if (precision == "int8") key.precision = core::InferencePrecision::kInt8;
    else if (precision == "hybrid") key.precision = core::InferencePrecision::kHybrid;
    else throw std::invalid_argument("bad route precision '" + precision + "' in '" + spec + "'");
  }
  return key;
}

void NetworkRegistry::add(const RouteKey& key, const core::SesrInference& network) {
  if (key.network.empty()) {
    throw std::invalid_argument("NetworkRegistry: route needs a network name");
  }
  if (key.scale != network.config().scale) {
    throw std::invalid_argument("NetworkRegistry: route '" + route_string(key) + "' scale " +
                                std::to_string(key.scale) + " != network scale " +
                                std::to_string(network.config().scale));
  }
  if (contains(key)) {
    throw std::invalid_argument("NetworkRegistry: duplicate route '" + route_string(key) + "'");
  }
  // int8/hybrid routes need the calibration (and plan) to travel with the
  // checkpoint: every shard replica is rebuilt from it and pinned to the
  // route precision, so reject uncalibrated networks here rather than deep
  // inside shard construction.
  if (key.precision == core::InferencePrecision::kInt8 ||
      key.precision == core::InferencePrecision::kHybrid) {
    if (!network.int8_calibrated()) {
      throw std::invalid_argument("NetworkRegistry: route '" + route_string(key) +
                                  "' requires calibrate_int8() on the network");
    }
  }
  if (key.precision == core::InferencePrecision::kHybrid &&
      network.hybrid_plan().size() != network.convolutions().size()) {
    throw std::invalid_argument("NetworkRegistry: route '" + route_string(key) +
                                "' requires a hybrid plan (set_hybrid_plan)");
  }
  RegisteredNetwork entry;
  entry.key = key;
  entry.config = network.config();
  entry.checkpoint = network.to_tensor_map();
  entry.exact_halo = core::receptive_field_radius(network);
  entry.biased = false;
  for (const core::CollapsedConv& conv : network.convolutions()) {
    if (conv.bias) entry.biased = true;
  }
  // Record the route's exact peak activation footprint: compile the plan for
  // a probe copy pinned to the route precision (the caller's instance may be
  // at a different one) and keep the per-pixel coefficients. Shards pre-size
  // every worker replica's arena from this at construction.
  {
    core::SesrInference probe = network;
    probe.set_precision(key.precision);
    entry.footprint = core::plan::ExecutionPlan::compile(probe, 16, 16).footprint();
  }
  entries_.push_back(std::move(entry));
}

bool NetworkRegistry::contains(const RouteKey& key) const {
  for (const RegisteredNetwork& entry : entries_) {
    if (entry.key == key) return true;
  }
  return false;
}

const RegisteredNetwork& NetworkRegistry::find(const RouteKey& key) const {
  for (const RegisteredNetwork& entry : entries_) {
    if (entry.key == key) return entry;
  }
  throw UnknownRouteError(route_string(key));
}

}  // namespace sesr::serve
