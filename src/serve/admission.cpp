#include "serve/admission.hpp"

#include <algorithm>
#include <cmath>

namespace sesr::serve {

namespace {

// Relative arithmetic cost of a precision; lower = cheaper. Orders the
// degrade ladder fp32 -> fp16 -> hybrid -> int8 (gentlest downgrade first).
int precision_cost(core::InferencePrecision p) {
  switch (p) {
    case core::InferencePrecision::kFp32:
      return 3;
    case core::InferencePrecision::kFp16:
      return 2;
    case core::InferencePrecision::kHybrid:
      return 1;
    case core::InferencePrecision::kInt8:
      return 0;
  }
  return 3;
}

}  // namespace

AdmissionController::AdmissionController(const std::vector<RegisteredNetwork>& routes,
                                         SloOptions slo, int workers)
    : slo_(slo),
      workers_(std::max(1, workers)),
      ewma_(std::make_unique<Ewma[]>(routes.size())),
      ladder_(routes.size()) {
  slo_.ewma_alpha = std::clamp(slo_.ewma_alpha, 1e-3, 1.0);
  slo_.headroom = std::max(slo_.headroom, 1e-3);
  for (std::size_t i = 0; i < routes.size(); ++i) {
    const RouteKey& self = routes[i].key;
    ladder_[i].push_back(Rung{i, false});
    // Same network, same scale, strictly cheaper precision — gentlest first.
    std::vector<std::size_t> cheaper;
    for (std::size_t j = 0; j < routes.size(); ++j) {
      const RouteKey& other = routes[j].key;
      if (j != i && other.network == self.network && other.scale == self.scale &&
          precision_cost(other.precision) < precision_cost(self.precision)) {
        cheaper.push_back(j);
      }
    }
    std::sort(cheaper.begin(), cheaper.end(), [&](std::size_t a, std::size_t b) {
      return precision_cost(routes[a].key.precision) > precision_cost(routes[b].key.precision);
    });
    for (std::size_t j : cheaper) ladder_[i].push_back(Rung{j, false});
    // x4 -> two-stage x2: the same network's x2 siblings, gentlest precision
    // first. The x2 shard executes both passes.
    if (self.scale == 4) {
      std::vector<std::size_t> halves;
      for (std::size_t j = 0; j < routes.size(); ++j) {
        const RouteKey& other = routes[j].key;
        if (other.network == self.network && other.scale == 2) halves.push_back(j);
      }
      std::sort(halves.begin(), halves.end(), [&](std::size_t a, std::size_t b) {
        return precision_cost(routes[a].key.precision) > precision_cost(routes[b].key.precision);
      });
      for (std::size_t j : halves) ladder_[i].push_back(Rung{j, true});
    }
  }
}

std::int64_t AdmissionController::estimate_us(
    const Rung& rung, const std::function<std::int64_t(std::size_t)>& in_system) const {
  const double ewma = ewma_[rung.route].value.load(std::memory_order_relaxed);
  if (ewma <= 0.0) return 0;  // unwarmed: admit optimistically
  const std::int64_t depth = std::max<std::int64_t>(0, in_system(rung.route));
  const double single =
      ewma * static_cast<double>(depth + 1) / static_cast<double>(workers_);
  // Two-stage runs the x2 network twice, the second pass over a 4x-pixel
  // intermediate: coarsely 5x one pass at the rung's current depth.
  const double est = rung.two_stage ? single * 5.0 : single;
  return static_cast<std::int64_t>(std::llround(std::min(est, 9e18)));
}

AdmissionController::Decision AdmissionController::admit(
    std::size_t route, std::int64_t deadline_budget_us,
    const std::function<std::int64_t(std::size_t)>& in_system) const {
  Decision d;
  d.route = route;
  std::int64_t budget = slo_.p99_budget_us > 0 ? slo_.p99_budget_us : 0;
  if (deadline_budget_us > 0) {
    budget = budget > 0 ? std::min(budget, deadline_budget_us) : deadline_budget_us;
  }
  d.budget_us = budget;
  if (budget <= 0) return d;  // no SLO and no deadline: always admit unchanged

  const double allowed = slo_.headroom * static_cast<double>(budget);
  const auto& ladder = ladder_.at(route);
  const std::size_t rungs = slo_.allow_degrade ? ladder.size() : 1;
  for (std::size_t r = 0; r < rungs; ++r) {
    const Rung& rung = ladder[r];
    const bool warmed = ewma_[rung.route].count.load(std::memory_order_relaxed) >=
                        slo_.min_samples;
    const std::int64_t est = estimate_us(rung, in_system);
    d.estimate_us = est;
    if (!warmed || static_cast<double>(est) <= allowed) {
      d.route = rung.route;
      d.action = r == 0 ? Action::kAdmit
                        : (rung.two_stage ? Action::kDegradeTwoStage : Action::kDegrade);
      return d;
    }
  }
  if (slo_.allow_shed) {
    d.action = Action::kShed;
    d.route = route;
    return d;
  }
  d.action = Action::kAdmit;  // monitor-only: over budget but admitted anyway
  d.route = route;
  return d;
}

void AdmissionController::record(std::size_t route, std::int64_t service_us) {
  if (service_us < 0) service_us = 0;
  Ewma& e = ewma_[route];
  const double sample = static_cast<double>(service_us);
  double cur = e.value.load(std::memory_order_relaxed);
  double next;
  do {
    next = cur <= 0.0 ? sample : cur + slo_.ewma_alpha * (sample - cur);
    // First-sample seeding: keep a strictly positive value so 0.0 stays the
    // "unwarmed" sentinel even for a 0us sample.
    if (next <= 0.0) next = 1.0;
  } while (!e.value.compare_exchange_weak(cur, next, std::memory_order_relaxed));
  e.count.fetch_add(1, std::memory_order_relaxed);
}

double AdmissionController::ewma_us(std::size_t route) const {
  return ewma_[route].value.load(std::memory_order_relaxed);
}

std::uint64_t AdmissionController::samples(std::size_t route) const {
  return ewma_[route].count.load(std::memory_order_relaxed);
}

}  // namespace sesr::serve
