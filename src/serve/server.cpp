#include "serve/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "tensor/tensor_ops.hpp"

namespace sesr::serve {

namespace {

// Stack same-shape (1, H, W, 1) frames into one (B, H, W, 1) tensor. NHWC is
// contiguous per sample, so this is a straight concatenation of the buffers.
Tensor stack_frames(const std::vector<FrameRequest>& requests) {
  const Shape& s = requests.front().frame.shape();
  Tensor batched(static_cast<std::int64_t>(requests.size()), s.h(), s.w(), s.c());
  float* dst = batched.raw();
  for (const FrameRequest& r : requests) {
    dst = std::copy(r.frame.raw(), r.frame.raw() + r.frame.numel(), dst);
  }
  return batched;
}

void validate(const ServeOptions& o, const core::SesrInference& network) {
  if (o.workers < 1) throw std::invalid_argument("EvalServer: workers must be >= 1");
  if (o.max_batch < 1) throw std::invalid_argument("EvalServer: max_batch must be >= 1");
  if (o.max_delay_us < 0) throw std::invalid_argument("EvalServer: max_delay_us must be >= 0");
  if (o.queue_capacity < 1) {
    throw std::invalid_argument("EvalServer: queue_capacity must be >= 1");
  }
  if ((o.mode == ExecMode::kTiled || o.mode == ExecMode::kAuto) &&
      (o.tiling.tile_h < 1 || o.tiling.tile_w < 1)) {
    throw std::invalid_argument("EvalServer: tile dims must be positive");
  }
  if (o.mode == ExecMode::kStreaming) {
    for (const core::CollapsedConv& conv : network.convolutions()) {
      if (conv.bias) {
        throw std::invalid_argument("EvalServer: streaming mode cannot serve biased networks");
      }
    }
  }
}

}  // namespace

EvalServer::EvalServer(const core::SesrInference& network, ServeOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity),
      dispatch_depth_limit_(static_cast<std::size_t>(options_.workers) * 2) {
  validate(options_, network);
  const TensorMap checkpoint = network.to_tensor_map();
  for (int i = 0; i < options_.workers; ++i) {
    sessions_.push_back(std::make_unique<WorkerSession>(checkpoint));
    // Each replica rounds its own fp16 weight cache before the worker
    // threads start, so serving never hits the lazy conversion path.
    sessions_.back()->network.set_precision(options_.precision);
  }
  for (auto& session : sessions_) {
    session->thread = std::thread([this, s = session.get()] { worker_loop(*s); });
  }
  batcher_ = std::thread([this] { batcher_loop(); });
}

EvalServer::~EvalServer() { shutdown(); }

std::future<Tensor> EvalServer::submit(Tensor frame) {
  FrameRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.frame = std::move(frame);
  request.enqueue_time = std::chrono::steady_clock::now();
  std::future<Tensor> future = request.promise.get_future();
  const Shape& s = request.frame.shape();
  if (s.n() != 1 || s.c() != 1 || s.h() < 1 || s.w() < 1) {
    request.promise.set_exception(std::make_exception_ptr(
        std::invalid_argument("EvalServer::submit expects a (1, H, W, 1) Y frame")));
    return future;
  }
  switch (queue_.push(request, options_.overload)) {
    case RequestQueue::PushResult::kAccepted:
      stats_.on_submitted();
      break;
    case RequestQueue::PushResult::kFull:
      stats_.on_rejected();
      request.promise.set_exception(std::make_exception_ptr(QueueFullError()));
      break;
    case RequestQueue::PushResult::kClosed:
      request.promise.set_exception(std::make_exception_ptr(ServerClosedError()));
      break;
  }
  return future;
}

ExecMode EvalServer::resolve_mode(const Shape& shape) const {
  if (options_.mode != ExecMode::kAuto) return options_.mode;
  return shape.h() * shape.w() >= options_.tiled_threshold_pixels ? ExecMode::kTiled
                                                                  : ExecMode::kFullFrame;
}

void EvalServer::batcher_loop() {
  // Any session's replica works for read-only geometry queries.
  const core::SesrInference& net = sessions_.front()->network;
  const std::int64_t exact_halo = core::receptive_field_radius(net);
  const std::int64_t scale = net.config().scale;
  while (true) {
    std::vector<FrameRequest> batch =
        queue_.pop_batch(options_.max_batch, std::chrono::microseconds(options_.max_delay_us));
    if (batch.empty()) break;  // closed and drained
    const ExecMode mode = resolve_mode(batch.front().frame.shape());
    if (mode == ExecMode::kTiled) {
      // Large frames: one TiledJob per frame, tiles fanned out across the
      // whole worker pool so a single frame uses every session.
      const std::int64_t halo = options_.tiling.halo >= 0 ? options_.tiling.halo : exact_halo;
      for (FrameRequest& request : batch) {
        auto job = std::make_shared<TiledJob>();
        const Shape& s = request.frame.shape();
        job->tasks = core::tile_grid(s.h(), s.w(), options_.tiling, halo);
        job->output = Tensor(1, s.h() * scale, s.w() * scale, 1);
        job->remaining.store(static_cast<std::int64_t>(job->tasks.size()),
                             std::memory_order_relaxed);
        job->request = std::move(request);
        stats_.on_batch();
        for (std::size_t t = 0; t < job->tasks.size(); ++t) {
          dispatch(TileUnit{job, t});
        }
      }
    } else {
      stats_.on_batch();
      dispatch(BatchUnit{std::move(batch), mode});
    }
  }
}

void EvalServer::dispatch(Unit unit) {
  std::unique_lock<std::mutex> lock(dispatch_mutex_);
  dispatch_not_full_.wait(
      lock, [&] { return dispatch_queue_.size() < dispatch_depth_limit_ || dispatch_closed_; });
  dispatch_queue_.push_back(std::move(unit));
  lock.unlock();
  dispatch_not_empty_.notify_one();
}

bool EvalServer::next_unit(Unit& unit) {
  std::unique_lock<std::mutex> lock(dispatch_mutex_);
  dispatch_not_empty_.wait(lock, [&] { return dispatch_closed_ || !dispatch_queue_.empty(); });
  if (dispatch_queue_.empty()) return false;
  unit = std::move(dispatch_queue_.front());
  dispatch_queue_.pop_front();
  lock.unlock();
  dispatch_not_full_.notify_one();
  return true;
}

void EvalServer::worker_loop(WorkerSession& session) {
  Unit unit;
  while (next_unit(unit)) execute(session, unit);
}

void EvalServer::execute(WorkerSession& session, Unit& unit) {
  if (options_.worker_hook) options_.worker_hook();
  if (auto* batch = std::get_if<BatchUnit>(&unit)) {
    run_batch(session, *batch);
  } else {
    run_tile(session, std::get<TileUnit>(unit));
  }
}

void EvalServer::run_batch(WorkerSession& session, BatchUnit& unit) {
  std::vector<Tensor> outputs;
  try {
    outputs.reserve(unit.requests.size());
    if (unit.mode == ExecMode::kStreaming) {
      if (!session.streamer) session.streamer.emplace(session.network);
      for (const FrameRequest& r : unit.requests) {
        outputs.push_back(session.streamer->upscale(r.frame));
      }
    } else if (unit.requests.size() == 1) {
      outputs.push_back(session.network.upscale(unit.requests.front().frame));
    } else {
      // The whole micro-batch in one stacked upscale. Per-sample results are
      // bit-identical to B=1 calls: the conv kernels stripe each image
      // independently with batch-invariant reduction orders.
      const Tensor batched = session.network.upscale(stack_frames(unit.requests));
      for (std::int64_t i = 0; i < std::ssize(unit.requests); ++i) {
        outputs.push_back(slice_batch(batched, i));
      }
    }
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (FrameRequest& r : unit.requests) {
      stats_.on_failed();
      r.promise.set_exception(error);
    }
    return;
  }
  for (std::size_t i = 0; i < unit.requests.size(); ++i) {
    unit.requests[i].promise.set_value(std::move(outputs[i]));
    stats_.on_completed(unit.requests[i].enqueue_time);
  }
}

void EvalServer::run_tile(WorkerSession& session, TileUnit& unit) {
  TiledJob& job = *unit.job;
  const core::TileTask& task = job.tasks[unit.task_index];
  try {
    const Tensor roi = core::upscale_tile(session.network, job.request.frame, task);
    core::paste_tile(job.output, roi, task, session.network.config().scale);
    stats_.on_tile();
  } catch (...) {
    if (!job.failed.exchange(true, std::memory_order_acq_rel)) {
      stats_.on_failed();
      job.request.promise.set_exception(std::current_exception());
    }
  }
  if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
      !job.failed.load(std::memory_order_acquire)) {
    job.request.promise.set_value(std::move(job.output));
    stats_.on_completed(job.request.enqueue_time);
  }
}

void EvalServer::shutdown() {
  std::call_once(shutdown_once_, [this] {
    queue_.close();
    if (batcher_.joinable()) batcher_.join();  // drains the submission queue
    {
      std::lock_guard<std::mutex> lock(dispatch_mutex_);
      dispatch_closed_ = true;
    }
    dispatch_not_empty_.notify_all();
    dispatch_not_full_.notify_all();
    for (auto& session : sessions_) {
      if (session->thread.joinable()) session->thread.join();
    }
  });
}

}  // namespace sesr::serve
