#include "serve/server.hpp"

namespace sesr::serve {

NetworkRegistry EvalServer::single_registry(const core::SesrInference& network,
                                            const ServeOptions& options) {
  NetworkRegistry registry;
  registry.add(RouteKey{"default", network.config().scale, options.precision}, network);
  return registry;
}

EvalServer::EvalServer(const core::SesrInference& network, ServeOptions options)
    : route_{"default", network.config().scale, options.precision},
      server_(single_registry(network, options), std::move(options)) {}

}  // namespace sesr::serve
