// Bounded multi-producer submission queue with shape-grouping batch pops.
//
// Producers push FrameRequests under the configured overload policy: kBlock
// waits for space, kReject fails fast when full. The single batcher thread
// calls pop_batch, which collects up to max_batch requests sharing the oldest
// request's (H, W) — so one dispatch can stack them into a single (B, H, W, 1)
// batched upscale — and flushes early when the deadline passes or the queue is
// under pressure (full). close() stops new pushes, wakes every waiter, and
// lets pop_batch drain what was already accepted: graceful shutdown completes
// every admitted request.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "serve/serve_options.hpp"
#include "tensor/tensor.hpp"

namespace sesr::serve {

// submit() failed because the bounded queue was full under kReject.
class QueueFullError : public std::runtime_error {
 public:
  QueueFullError() : std::runtime_error("eval server: submission queue full") {}
};

// submit() arrived after shutdown began.
class ServerClosedError : public std::runtime_error {
 public:
  ServerClosedError() : std::runtime_error("eval server: shut down") {}
};

class ResponseCache;
struct RouteCounters;

struct FrameRequest {
  std::uint64_t id = 0;
  Tensor frame;  // (1, H, W, 1)
  std::promise<Tensor> promise;
  std::chrono::steady_clock::time_point enqueue_time;
  // Routing context (sharded server). When `cache` is set, the execution core
  // inserts the completed output under (route_id, frame) before fulfilling
  // the promise; `route` receives per-network completion counters.
  ResponseCache* cache = nullptr;
  RouteCounters* route = nullptr;
  std::size_t route_id = 0;
};

class RequestQueue {
 public:
  enum class PushResult { kAccepted, kFull, kClosed };

  explicit RequestQueue(std::size_t capacity);

  // On kAccepted the request has been moved into the queue; on kFull/kClosed
  // the caller keeps ownership (and typically fails the promise).
  //
  // Status contract (every path returns, none hangs, none drops the request):
  //   * kBlock, queue full: waits until space frees OR close() — a submitter
  //     blocked at close time wakes and gets kClosed, never a hang.
  //   * kReject, queue full: kFull immediately.
  //   * closed (including drain-on-close, when pops are still emptying the
  //     queue): kClosed under BOTH policies — closed wins over full, so a
  //     reject-policy producer racing the drain sees the server's state, not
  //     a transient kFull.
  PushResult push(FrameRequest& request, OverloadPolicy policy);

  // Pops [1, max_batch] requests whose frames share the oldest request's
  // (H, W). Blocks until at least one request is available (or the queue is
  // closed and drained — then returns empty). A partial batch waits at most
  // max_delay past the oldest request's enqueue time, but flushes immediately
  // when the queue is full, so blocked producers free up fast.
  std::vector<FrameRequest> pop_batch(std::int64_t max_batch,
                                      std::chrono::microseconds max_delay);

  // Stops accepting pushes and wakes all waiters; already-accepted requests
  // remain poppable (drain semantics).
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<FrameRequest> queue_;
  bool closed_ = false;
};

}  // namespace sesr::serve
