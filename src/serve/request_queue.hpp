// Bounded multi-producer submission queue with shape-grouping batch pops.
//
// Producers push FrameRequests under the configured overload policy: kBlock
// waits for space, kReject fails fast when full. The single batcher thread
// calls pop_batch, which collects up to max_batch requests sharing the oldest
// request's (H, W) — so one dispatch can stack them into a single (B, H, W, 1)
// batched upscale — and flushes early when the deadline passes or the queue is
// under pressure (full). close() stops new pushes, wakes every waiter, and
// lets pop_batch drain what was already accepted: graceful shutdown completes
// every admitted request.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/tiled_inference.hpp"
#include "serve/clock.hpp"
#include "serve/serve_options.hpp"
#include "tensor/tensor.hpp"

namespace sesr::serve {

// submit() failed because the bounded queue was full under kReject.
class QueueFullError : public std::runtime_error {
 public:
  QueueFullError() : std::runtime_error("eval server: submission queue full") {}
};

// submit() arrived after shutdown began.
class ServerClosedError : public std::runtime_error {
 public:
  ServerClosedError() : std::runtime_error("eval server: shut down") {}

 protected:
  explicit ServerClosedError(const std::string& what) : std::runtime_error(what) {}
};

// submit() arrived while the server was draining (begin_drain() without a
// following resume()). Derives from ServerClosedError so callers that only
// distinguish "server not accepting" keep working; callers that care can
// catch the drain case first.
class ServerDrainingError : public ServerClosedError {
 public:
  ServerDrainingError() : ServerClosedError("eval server: draining") {}
};

class AdmissionController;
class ResponseCache;
class VideoSessionTable;
struct RouteCounters;

// Tile-delta plan computed on the submit path of a video-session frame
// (sharded_server.cpp): the batcher turns a request carrying one into a
// TiledJob over only the dirty tiles, with the clean regions already spliced
// into `output` from the session's previous HR frame.
struct VideoDeltaPlan {
  std::vector<core::TileTask> dirty_tasks;  // the tiles to recompute
  Tensor output;  // (1, scale*H, scale*W, 1), clean tiles pre-spliced
  ExecMode mode = ExecMode::kFullFrame;  // resolved exec path (never kAuto)
  std::size_t total_tiles = 0;           // grid size, for reuse accounting
};

// Counts logical requests between admission (submit accepted the frame) and
// final resolution of their promise. begin_drain()/shutdown() block on
// wait_zero(): "every accepted request resolves before threads join" is this
// counter hitting zero. seq_cst on the counter pairs with the seq_cst
// draining flag in the server: a submitter increments BEFORE checking the
// flag, so either it sees draining and backs out, or the drainer's
// wait_zero() sees its increment.
class InflightTracker {
 public:
  void add() { count_.fetch_add(1, std::memory_order_seq_cst); }

  void done() {
    if (count_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      zero_.notify_all();
    }
  }

  std::int64_t count() const { return count_.load(std::memory_order_seq_cst); }

  void wait_zero() {
    std::unique_lock<std::mutex> lock(mutex_);
    zero_.wait(lock, [&] { return count_.load(std::memory_order_seq_cst) == 0; });
  }

 private:
  std::atomic<std::int64_t> count_{0};
  std::mutex mutex_;
  std::condition_variable zero_;
};

struct FrameRequest {
  std::uint64_t id = 0;
  Tensor frame;  // (1, H, W, 1)
  std::promise<Tensor> promise;
  ServeClock::time_point enqueue_time;
  // Per-request deadline (steady). time_point::max() = none. Admission
  // shrinks the SLO budget to the remaining deadline; expiry is advisory (a
  // request already executing is not cancelled).
  ServeClock::time_point deadline = ServeClock::time_point::max();
  // Stamped by the batcher when the request leaves the submission queue; the
  // admission EWMA's service sample is completion_time - dispatch_time.
  ServeClock::time_point dispatch_time{};
  // Routing context (sharded server). When `cache` is set, the execution core
  // inserts the completed output under (route_id, frame) before fulfilling
  // the promise; `route` receives per-network completion counters.
  ResponseCache* cache = nullptr;
  RouteCounters* route = nullptr;
  std::size_t route_id = 0;
  // Admission feedback: when set, completion records the observed service
  // time into `admission`'s EWMA for `admit_route` (the shard that actually
  // executed — the served route, not the requested one when degraded).
  AdmissionController* admission = nullptr;
  std::size_t admit_route = 0;
  // Drain accounting: add()'d at admission, done()'d after the promise (and
  // done_hook) resolve, on every path — value, typed error, or execution
  // error.
  InflightTracker* inflight = nullptr;
  // Fires after the promise resolves (value or exception), still on the
  // fulfilling thread. The TCP front end uses it to hand the completion back
  // to its IO loop; by the time it runs, future.get() cannot block.
  std::function<void()> done_hook;
  // Two-stage degrade (x4 served as x2 twice): when set, a successful
  // execution hands (request, intermediate) to the continuation INSTEAD of
  // fulfilling the promise — the continuation builds and enqueues stage 2,
  // which carries the promise/done_hook/inflight to final resolution.
  // Failures skip the continuation and fail the promise directly.
  std::function<void(FrameRequest&&, Tensor&&)> continuation;
  // Video-session context: when `video` is set, complete_request publishes
  // (frame, output) for (route_id, video_session) at video_seq — BEFORE the
  // promise resolves, so a closed-loop client's next frame always finds its
  // predecessor. When the submit path also attached a delta plan, the batcher
  // dispatches only the plan's dirty tiles instead of the full frame.
  VideoSessionTable* video = nullptr;
  std::uint64_t video_session = 0;
  std::uint64_t video_seq = 0;
  std::shared_ptr<VideoDeltaPlan> video_delta;
};

// True when the request carries a deadline and it has passed as of `now`.
inline bool deadline_expired(const FrameRequest& r, ServeClock::time_point now) {
  return r.deadline != ServeClock::time_point::max() && now >= r.deadline;
}

class RequestQueue {
 public:
  enum class PushResult { kAccepted, kFull, kClosed };

  explicit RequestQueue(std::size_t capacity);

  // On kAccepted the request has been moved into the queue; on kFull/kClosed
  // the caller keeps ownership (and typically fails the promise).
  //
  // Status contract (every path returns, none hangs, none drops the request):
  //   * kBlock, queue full: waits until space frees OR close() — a submitter
  //     blocked at close time wakes and gets kClosed, never a hang.
  //   * kReject, queue full: kFull immediately.
  //   * closed (including drain-on-close, when pops are still emptying the
  //     queue): kClosed under BOTH policies — closed wins over full, so a
  //     reject-policy producer racing the drain sees the server's state, not
  //     a transient kFull.
  PushResult push(FrameRequest& request, OverloadPolicy policy);

  // Pops [1, max_batch] requests whose frames share the oldest request's
  // (H, W). Blocks until at least one request is available (or the queue is
  // closed and drained — then returns empty). A partial batch waits at most
  // max_delay past the oldest request's enqueue time, but flushes immediately
  // when the queue is full, so blocked producers free up fast.
  std::vector<FrameRequest> pop_batch(std::int64_t max_batch,
                                      std::chrono::microseconds max_delay);

  // Stops accepting pushes and wakes all waiters; already-accepted requests
  // remain poppable (drain semantics).
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<FrameRequest> queue_;
  bool closed_ = false;
};

}  // namespace sesr::serve
