// Section 4 of the paper, executable: gradient-descent update rules for the
// four overparameterization schemes on the scalar l2 linear-regression problem
//   L(beta) = E[ (x * beta - y)^2 / 2 ],
// with the collapsed weights
//   ExpandNet: beta = w1 * w2            (Eq. 3)
//   SESR:      beta = w1 * w2 + 1        (Eq. 4)
//   RepVGG:    beta = w1 + w2 + 1        (Eq. 5; the 1x1 branch acts on the
//                                         same scalar, and the skip adds 1)
//   VGG:       beta = w1
//
// The paper's claims, which the tests verify exactly:
//   * RepVGG's beta update equals plain VGG's with lambda = 2*eta — step for
//     step, to machine precision (no adaptivity).
//   * ExpandNet/SESR updates carry a time-varying effective LR rho = eta*w2^2
//     and momentum-like gamma; SESR has the extra +gamma term from the skip.
//   * Deep multiplicative chains WITHOUT skips vanish: d(beta)/d(w_i) is a
//     product of the other weights, which collapses to ~0 for |w| < 1 as depth
//     grows. With skips (SESR), the gradient stays O(1).
#pragma once

#include <cstdint>
#include <vector>

namespace sesr::theory {

enum class Scheme { kVgg, kExpandNet, kSesr, kRepVgg };

// State of one scalar overparameterized "layer".
struct ScalarBlock {
  Scheme scheme = Scheme::kVgg;
  double w1 = 0.0;
  double w2 = 1.0;  // unused by kVgg

  double beta() const;  // collapsed weight
  // One gradient-descent step against d(loss)/d(beta) = grad_beta;
  // returns the new collapsed beta.
  double step(double grad_beta, double eta);
};

// Run `steps` of gradient descent on the regression loss with fixed data
// statistics E[x^2] = sxx, E[x y] = sxy; returns the trajectory of beta.
std::vector<double> train_scalar(Scheme scheme, double w1_init, double w2_init, double sxx,
                                 double sxy, double eta, std::int64_t steps);

// Gradient magnitude |d(beta)/d(w_1)| for a depth-L multiplicative chain:
//   no skips:  beta = prod w_i               (ExpandNet-style depth)
//   with skip: beta = prod w_i + 1 per pair  — modeled as SESR blocks stacked,
// computed for identical weights w. This is the vanishing-gradient probe.
double chain_gradient_no_skip(double w, std::int64_t depth);
double chain_gradient_with_skip(double w, std::int64_t depth);

}  // namespace sesr::theory
