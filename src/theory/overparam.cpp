#include "theory/overparam.hpp"

#include <cmath>
#include <stdexcept>

namespace sesr::theory {

double ScalarBlock::beta() const {
  switch (scheme) {
    case Scheme::kVgg: return w1;
    case Scheme::kExpandNet: return w1 * w2;
    case Scheme::kSesr: return w1 * w2 + 1.0;
    case Scheme::kRepVgg: return w1 + w2 + 1.0;
  }
  throw std::logic_error("ScalarBlock: unknown scheme");
}

double ScalarBlock::step(double grad_beta, double eta) {
  switch (scheme) {
    case Scheme::kVgg:
      // beta = w1: plain descent.
      w1 -= eta * grad_beta;
      break;
    case Scheme::kExpandNet:
    case Scheme::kSesr: {
      // beta = w1*w2 (+1): d/dw1 = grad*w2, d/dw2 = grad*w1 (chain rule;
      // the +1 constant drops out of both partials).
      const double g1 = grad_beta * w2;
      const double g2 = grad_beta * w1;
      w1 -= eta * g1;
      w2 -= eta * g2;
      break;
    }
    case Scheme::kRepVgg: {
      // beta = w1 + w2 + 1: both partials equal grad_beta -> beta moves by
      // 2*eta*grad, exactly a VGG step with lambda = 2*eta (Eq. 5).
      w1 -= eta * grad_beta;
      w2 -= eta * grad_beta;
      break;
    }
  }
  return beta();
}

std::vector<double> train_scalar(Scheme scheme, double w1_init, double w2_init, double sxx,
                                 double sxy, double eta, std::int64_t steps) {
  if (steps < 1) throw std::invalid_argument("train_scalar: steps must be >= 1");
  ScalarBlock block;
  block.scheme = scheme;
  block.w1 = w1_init;
  block.w2 = w2_init;
  std::vector<double> trajectory;
  trajectory.reserve(static_cast<std::size_t>(steps) + 1);
  trajectory.push_back(block.beta());
  for (std::int64_t t = 0; t < steps; ++t) {
    // d(loss)/d(beta) = E[(x*beta - y)x] = sxx*beta - sxy.
    const double grad = sxx * block.beta() - sxy;
    trajectory.push_back(block.step(grad, eta));
  }
  return trajectory;
}

double chain_gradient_no_skip(double w, std::int64_t depth) {
  if (depth < 1) throw std::invalid_argument("chain_gradient: depth must be >= 1");
  // beta = w^(2*depth) (each block contributes w1*w2 = w^2);
  // |d(beta)/d(w_1)| = |w|^(2*depth - 1).
  return std::pow(std::fabs(w), static_cast<double>(2 * depth - 1));
}

double chain_gradient_with_skip(double w, std::int64_t depth) {
  // beta = (w^2 + 1)^depth; |d/d(w_1)| = |w| * (w^2 + 1)^(depth - 1) >= |w|.
  return std::fabs(w) * std::pow(w * w + 1.0, static_cast<double>(depth - 1));
}

}  // namespace sesr::theory
