// Procedural image synthesis — the stand-in for DIV2K and the six benchmark
// datasets (see DESIGN.md, substitution table).
//
// Each family produces Y-channel images whose statistics mimic the character
// of one benchmark set: rectilinear structure for Urban100, flat fills + line
// art + halftone for Manga109, natural multi-scale texture for BSD100/DIV2K,
// and simple object scenes for Set5/Set14. All content is band-limited by a
// final small blur so that bicubic-downscaled LR images remain informative —
// the same property real photographs have — which is what makes the SR task
// learnable and the PSNR orderings meaningful.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace sesr::data {

enum class ImageFamily {
  kObjects,   // discs/ellipses/rectangles on smooth backgrounds (Set5/Set14)
  kNatural,   // plasma-noise multi-scale texture + gratings (BSD100/DIV2K)
  kUrban,     // rectilinear grids, windows, edges (Urban100)
  kLineArt,   // flat regions, strokes, halftone dots (Manga109)
};

// One (1, h, w, 1) image in [0, 1].
Tensor synthesize_image(ImageFamily family, std::int64_t h, std::int64_t w, Rng& rng);

// Gaussian blur with the given sigma (separable, reflect padding); used by the
// synthesizer for band-limiting and exposed for tests.
Tensor gaussian_blur(const Tensor& input, double sigma);

// Plasma (midpoint-displacement) noise in [0, 1]; the natural-texture base.
Tensor plasma_noise(std::int64_t h, std::int64_t w, double roughness, Rng& rng);

std::string to_string(ImageFamily family);

}  // namespace sesr::data
