// LR/HR pair dataset with random patch sampling — the DIV2K-training stand-in.
//
// Holds HR Y-channel images; batches are built by cropping random
// (crop*scale x crop*scale) HR patches and bicubic-downscaling them to
// (crop x crop) LR inputs, exactly mirroring the paper's 64x64-crop protocol.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "data/synthetic.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace sesr::data {

class SrDataset {
 public:
  SrDataset(std::vector<Tensor> hr_images, std::int64_t scale);

  // Builds a training corpus of `count` synthetic images of size (h x w),
  // drawn from a balanced mix of the four families.
  static SrDataset synthetic_corpus(std::int64_t count, std::int64_t h, std::int64_t w,
                                    std::int64_t scale, Rng& rng);

  // Random batch: first = LR (batch, crop, crop, 1), second = HR
  // (batch, crop*scale, crop*scale, 1).
  std::pair<Tensor, Tensor> sample_batch(std::int64_t batch, std::int64_t crop, Rng& rng) const;

  // Full-image pair i (LR derived by bicubic downscale).
  std::pair<Tensor, Tensor> image_pair(std::size_t index) const;

  std::size_t size() const { return hr_.size(); }
  std::int64_t scale() const { return scale_; }
  const Tensor& hr_image(std::size_t index) const { return hr_.at(index); }

 private:
  std::vector<Tensor> hr_;
  std::int64_t scale_;
};

}  // namespace sesr::data
