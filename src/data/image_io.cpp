#include "data/image_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace sesr::data {

namespace {
// Skips whitespace and '#' comments between header fields.
void skip_separators(std::istream& is) {
  for (;;) {
    const int c = is.peek();
    if (c == '#') {
      std::string line;
      std::getline(is, line);
    } else if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      is.get();
    } else {
      return;
    }
  }
}

std::int64_t read_header_int(std::istream& is) {
  skip_separators(is);
  std::int64_t v = 0;
  if (!(is >> v) || v < 0) throw std::runtime_error("read_pnm: malformed header");
  return v;
}
}  // namespace

Tensor read_pnm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("read_pnm: cannot open " + path);
  std::string magic;
  is >> magic;
  std::int64_t channels = 0;
  if (magic == "P5") channels = 1;
  else if (magic == "P6") channels = 3;
  else throw std::runtime_error("read_pnm: unsupported magic '" + magic + "' in " + path);
  const std::int64_t w = read_header_int(is);
  const std::int64_t h = read_header_int(is);
  const std::int64_t maxval = read_header_int(is);
  if (w < 1 || h < 1 || maxval < 1 || maxval > 255) {
    throw std::runtime_error("read_pnm: unsupported dimensions/maxval in " + path);
  }
  is.get();  // single whitespace after maxval
  std::vector<unsigned char> bytes(static_cast<std::size_t>(w * h * channels));
  is.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  if (!is) throw std::runtime_error("read_pnm: truncated pixel data in " + path);
  Tensor img(1, h, w, channels);
  float* p = img.raw();
  const float inv = 1.0F / static_cast<float>(maxval);
  for (std::size_t i = 0; i < bytes.size(); ++i) p[i] = static_cast<float>(bytes[i]) * inv;
  return img;
}

void write_pnm(const std::string& path, const Tensor& image) {
  const Shape& s = image.shape();
  if (s.n() != 1 || (s.c() != 1 && s.c() != 3)) {
    throw std::invalid_argument("write_pnm: expects (1, H, W, 1|3), got " + s.to_string());
  }
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("write_pnm: cannot open " + path);
  os << (s.c() == 1 ? "P5" : "P6") << '\n' << s.w() << ' ' << s.h() << '\n' << 255 << '\n';
  std::vector<unsigned char> bytes(static_cast<std::size_t>(image.numel()));
  const float* p = image.raw();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const float v = std::clamp(p[i], 0.0F, 1.0F);
    bytes[i] = static_cast<unsigned char>(std::lround(v * 255.0F));
  }
  os.write(reinterpret_cast<const char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  if (!os) throw std::runtime_error("write_pnm: write failed for " + path);
}

}  // namespace sesr::data
