#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace sesr::data {

namespace {

// --- low-level paint helpers (all operate on a (1, H, W, 1) tensor) ---------

void fill_gradient(Tensor& img, Rng& rng) {
  const Shape& s = img.shape();
  const float gx = rng.uniform(-0.4F, 0.4F);
  const float gy = rng.uniform(-0.4F, 0.4F);
  const float base = rng.uniform(0.2F, 0.8F);
  for (std::int64_t y = 0; y < s.h(); ++y) {
    for (std::int64_t x = 0; x < s.w(); ++x) {
      const float fy = static_cast<float>(y) / static_cast<float>(s.h());
      const float fx = static_cast<float>(x) / static_cast<float>(s.w());
      img(0, y, x, 0) = base + gx * fx + gy * fy;
    }
  }
}

void paint_rect(Tensor& img, std::int64_t y0, std::int64_t x0, std::int64_t h, std::int64_t w,
                float value) {
  const Shape& s = img.shape();
  const std::int64_t y1 = std::min(y0 + h, s.h());
  const std::int64_t x1 = std::min(x0 + w, s.w());
  for (std::int64_t y = std::max<std::int64_t>(0, y0); y < y1; ++y) {
    for (std::int64_t x = std::max<std::int64_t>(0, x0); x < x1; ++x) img(0, y, x, 0) = value;
  }
}

void paint_ellipse(Tensor& img, double cy, double cx, double ry, double rx, float value) {
  const Shape& s = img.shape();
  for (std::int64_t y = 0; y < s.h(); ++y) {
    for (std::int64_t x = 0; x < s.w(); ++x) {
      const double dy = (static_cast<double>(y) - cy) / ry;
      const double dx = (static_cast<double>(x) - cx) / rx;
      if (dy * dy + dx * dx <= 1.0) img(0, y, x, 0) = value;
    }
  }
}

void paint_line(Tensor& img, double y0, double x0, double y1, double x1, double thickness,
                float value) {
  const Shape& s = img.shape();
  const double len = std::hypot(y1 - y0, x1 - x0);
  const std::int64_t steps = std::max<std::int64_t>(2, static_cast<std::int64_t>(len * 2.0));
  const std::int64_t rad = std::max<std::int64_t>(0, static_cast<std::int64_t>(thickness / 2.0));
  for (std::int64_t i = 0; i <= steps; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(steps);
    const auto py = static_cast<std::int64_t>(y0 + t * (y1 - y0));
    const auto px = static_cast<std::int64_t>(x0 + t * (x1 - x0));
    for (std::int64_t dy = -rad; dy <= rad; ++dy) {
      for (std::int64_t dx = -rad; dx <= rad; ++dx) {
        const std::int64_t yy = py + dy;
        const std::int64_t xx = px + dx;
        if (yy >= 0 && yy < s.h() && xx >= 0 && xx < s.w()) img(0, yy, xx, 0) = value;
      }
    }
  }
}

void add_grating(Tensor& img, Rng& rng, float amplitude) {
  const Shape& s = img.shape();
  const double theta = rng.uniform(0.0F, static_cast<float>(std::numbers::pi));
  const double freq = rng.uniform(0.05F, 0.35F);  // cycles per pixel (stays below Nyquist/2)
  const double phase = rng.uniform(0.0F, 6.28F);
  const double ky = std::sin(theta) * 2.0 * std::numbers::pi * freq;
  const double kx = std::cos(theta) * 2.0 * std::numbers::pi * freq;
  for (std::int64_t y = 0; y < s.h(); ++y) {
    for (std::int64_t x = 0; x < s.w(); ++x) {
      img(0, y, x, 0) += amplitude * static_cast<float>(std::sin(ky * y + kx * x + phase));
    }
  }
}

void clamp01(Tensor& img) {
  for (float& v : img.data()) v = std::clamp(v, 0.0F, 1.0F);
}

// --- families ----------------------------------------------------------------

void paint_objects(Tensor& img, Rng& rng) {
  const Shape& s = img.shape();
  const std::int64_t n_objects = rng.uniform_int(4, 9);
  for (std::int64_t i = 0; i < n_objects; ++i) {
    const float v = rng.uniform(0.05F, 0.95F);
    if (rng.bernoulli(0.5)) {
      paint_ellipse(img, rng.uniform(0.0F, static_cast<float>(s.h())),
                    rng.uniform(0.0F, static_cast<float>(s.w())),
                    rng.uniform(3.0F, static_cast<float>(s.h()) / 3.0F),
                    rng.uniform(3.0F, static_cast<float>(s.w()) / 3.0F), v);
    } else {
      paint_rect(img, rng.uniform_int(0, s.h() - 4), rng.uniform_int(0, s.w() - 4),
                 rng.uniform_int(4, s.h() / 2), rng.uniform_int(4, s.w() / 2), v);
    }
  }
  if (rng.bernoulli(0.7)) add_grating(img, rng, rng.uniform(0.03F, 0.10F));
}

void paint_natural(Tensor& img, Rng& rng) {
  img = plasma_noise(img.shape().h(), img.shape().w(), 0.55, rng);
  add_grating(img, rng, rng.uniform(0.04F, 0.12F));
  if (rng.bernoulli(0.5)) {
    // A horizon-like edge: darken everything below a random smooth curve.
    const Shape& s = img.shape();
    const double base = rng.uniform(0.3F, 0.7F) * static_cast<double>(s.h());
    const double amp = rng.uniform(0.0F, 0.15F) * static_cast<double>(s.h());
    const double freq = rng.uniform(0.5F, 2.0F);
    const float shade = rng.uniform(0.55F, 0.85F);
    for (std::int64_t x = 0; x < s.w(); ++x) {
      const double edge =
          base + amp * std::sin(freq * 2.0 * std::numbers::pi * x / static_cast<double>(s.w()));
      for (std::int64_t y = static_cast<std::int64_t>(edge); y < s.h(); ++y) {
        if (y >= 0) img(0, y, x, 0) *= shade;
      }
    }
  }
}

void paint_urban(Tensor& img, Rng& rng) {
  const Shape& s = img.shape();
  // Buildings: large rectangles with window grids.
  const std::int64_t n_buildings = rng.uniform_int(2, 4);
  for (std::int64_t b = 0; b < n_buildings; ++b) {
    const std::int64_t bw = rng.uniform_int(s.w() / 4, s.w() / 2);
    const std::int64_t bh = rng.uniform_int(s.h() / 3, (3 * s.h()) / 4);
    const std::int64_t bx = rng.uniform_int(0, std::max<std::int64_t>(1, s.w() - bw));
    const std::int64_t by = s.h() - bh;
    const float wall = rng.uniform(0.25F, 0.75F);
    paint_rect(img, by, bx, bh, bw, wall);
    // Window grid.
    const std::int64_t cell = rng.uniform_int(4, 9);
    const std::int64_t win = std::max<std::int64_t>(2, cell - 2);
    const float glass = rng.bernoulli(0.5) ? wall + 0.25F : wall - 0.25F;
    for (std::int64_t y = by + 2; y + win < by + bh; y += cell) {
      for (std::int64_t x = bx + 2; x + win < bx + bw; x += cell) {
        paint_rect(img, y, x, win, win, glass);
      }
    }
  }
  // A few long straight edges (power lines / railings).
  const std::int64_t n_lines = rng.uniform_int(1, 4);
  for (std::int64_t i = 0; i < n_lines; ++i) {
    paint_line(img, rng.uniform(0.0F, static_cast<float>(s.h())), 0,
               rng.uniform(0.0F, static_cast<float>(s.h())), static_cast<double>(s.w() - 1), 1.0,
               rng.uniform(0.0F, 1.0F));
  }
}

void paint_line_art(Tensor& img, Rng& rng) {
  const Shape& s = img.shape();
  img.fill(rng.uniform(0.85F, 1.0F));  // paper-white background
  // Flat-fill panels.
  const std::int64_t n_panels = rng.uniform_int(2, 4);
  for (std::int64_t i = 0; i < n_panels; ++i) {
    paint_rect(img, rng.uniform_int(0, s.h() - 8), rng.uniform_int(0, s.w() - 8),
               rng.uniform_int(8, s.h() / 2), rng.uniform_int(8, s.w() / 2),
               rng.uniform(0.55F, 0.9F));
  }
  // Ink strokes.
  const std::int64_t n_strokes = rng.uniform_int(6, 14);
  for (std::int64_t i = 0; i < n_strokes; ++i) {
    paint_line(img, rng.uniform(0.0F, static_cast<float>(s.h())),
               rng.uniform(0.0F, static_cast<float>(s.w())),
               rng.uniform(0.0F, static_cast<float>(s.h())),
               rng.uniform(0.0F, static_cast<float>(s.w())), rng.uniform(1.0F, 2.5F),
               rng.uniform(0.0F, 0.15F));
  }
  // Halftone dot region (screentone).
  if (rng.bernoulli(0.8)) {
    const std::int64_t period = rng.uniform_int(3, 5);
    const std::int64_t y0 = rng.uniform_int(0, s.h() / 2);
    const std::int64_t x0 = rng.uniform_int(0, s.w() / 2);
    const std::int64_t hh = rng.uniform_int(s.h() / 4, s.h() / 2);
    const std::int64_t ww = rng.uniform_int(s.w() / 4, s.w() / 2);
    for (std::int64_t y = y0; y < std::min(y0 + hh, s.h()); y += period) {
      for (std::int64_t x = x0; x < std::min(x0 + ww, s.w()); x += period) {
        img(0, y, x, 0) = 0.2F;
      }
    }
  }
}

}  // namespace

Tensor gaussian_blur(const Tensor& input, double sigma) {
  if (sigma <= 0.0) return input;
  const std::int64_t radius = std::max<std::int64_t>(1, static_cast<std::int64_t>(sigma * 3.0));
  std::vector<double> kernel(static_cast<std::size_t>(2 * radius + 1));
  double total = 0.0;
  for (std::int64_t i = -radius; i <= radius; ++i) {
    const double v = std::exp(-0.5 * (static_cast<double>(i) / sigma) * (static_cast<double>(i) / sigma));
    kernel[static_cast<std::size_t>(i + radius)] = v;
    total += v;
  }
  for (double& v : kernel) v /= total;

  const Shape& s = input.shape();
  auto reflect = [](std::int64_t i, std::int64_t size) {
    if (i < 0) i = -i;
    if (i >= size) i = 2 * size - 2 - i;
    return std::clamp<std::int64_t>(i, 0, size - 1);
  };
  Tensor mid(s);
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t y = 0; y < s.h(); ++y) {
      for (std::int64_t x = 0; x < s.w(); ++x) {
        for (std::int64_t c = 0; c < s.c(); ++c) {
          double acc = 0.0;
          for (std::int64_t k = -radius; k <= radius; ++k) {
            acc += kernel[static_cast<std::size_t>(k + radius)] * input(n, reflect(y + k, s.h()), x, c);
          }
          mid(n, y, x, c) = static_cast<float>(acc);
        }
      }
    }
  }
  Tensor out(s);
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t y = 0; y < s.h(); ++y) {
      for (std::int64_t x = 0; x < s.w(); ++x) {
        for (std::int64_t c = 0; c < s.c(); ++c) {
          double acc = 0.0;
          for (std::int64_t k = -radius; k <= radius; ++k) {
            acc += kernel[static_cast<std::size_t>(k + radius)] * mid(n, y, reflect(x + k, s.w()), c);
          }
          out(n, y, x, c) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

Tensor plasma_noise(std::int64_t h, std::int64_t w, double roughness, Rng& rng) {
  if (h < 1 || w < 1) throw std::invalid_argument("plasma_noise: empty image");
  // Power-of-two-plus-one working grid covering the image.
  std::int64_t size = 1;
  while (size < std::max(h, w)) size *= 2;
  const std::int64_t grid = size + 1;
  std::vector<double> cell(static_cast<std::size_t>(grid * grid), 0.0);
  auto at = [&](std::int64_t y, std::int64_t x) -> double& {
    return cell[static_cast<std::size_t>(y * grid + x)];
  };
  at(0, 0) = rng.uniform();
  at(0, size) = rng.uniform();
  at(size, 0) = rng.uniform();
  at(size, size) = rng.uniform();
  double amp = 0.5;
  for (std::int64_t step = size; step > 1; step /= 2, amp *= roughness) {
    const std::int64_t half = step / 2;
    // Diamond step.
    for (std::int64_t y = half; y < grid; y += step) {
      for (std::int64_t x = half; x < grid; x += step) {
        const double avg = (at(y - half, x - half) + at(y - half, x + half) +
                            at(y + half, x - half) + at(y + half, x + half)) /
                           4.0;
        at(y, x) = avg + amp * (rng.uniform() - 0.5);
      }
    }
    // Square step.
    for (std::int64_t y = 0; y < grid; y += half) {
      for (std::int64_t x = (y / half) % 2 == 0 ? half : 0; x < grid; x += step) {
        double acc = 0.0;
        int cnt = 0;
        if (y - half >= 0) { acc += at(y - half, x); ++cnt; }
        if (y + half < grid) { acc += at(y + half, x); ++cnt; }
        if (x - half >= 0) { acc += at(y, x - half); ++cnt; }
        if (x + half < grid) { acc += at(y, x + half); ++cnt; }
        at(y, x) = acc / cnt + amp * (rng.uniform() - 0.5);
      }
    }
  }
  // Normalize to [0, 1] over the crop we keep.
  double lo = 1e30;
  double hi = -1e30;
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      lo = std::min(lo, at(y, x));
      hi = std::max(hi, at(y, x));
    }
  }
  const double range = hi - lo > 1e-12 ? hi - lo : 1.0;
  Tensor img(1, h, w, 1);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      img(0, y, x, 0) = static_cast<float>((at(y, x) - lo) / range);
    }
  }
  return img;
}

Tensor synthesize_image(ImageFamily family, std::int64_t h, std::int64_t w, Rng& rng) {
  if (h < 16 || w < 16) throw std::invalid_argument("synthesize_image: minimum size is 16x16");
  Tensor img(1, h, w, 1);
  fill_gradient(img, rng);
  switch (family) {
    case ImageFamily::kObjects: paint_objects(img, rng); break;
    case ImageFamily::kNatural: paint_natural(img, rng); break;
    case ImageFamily::kUrban: paint_urban(img, rng); break;
    case ImageFamily::kLineArt: paint_line_art(img, rng); break;
  }
  clamp01(img);
  // Band-limit: mimics optical antialiasing so x2/x4 downscales stay faithful.
  img = gaussian_blur(img, 0.6);
  clamp01(img);
  return img;
}

std::string to_string(ImageFamily family) {
  switch (family) {
    case ImageFamily::kObjects: return "objects";
    case ImageFamily::kNatural: return "natural";
    case ImageFamily::kUrban: return "urban";
    case ImageFamily::kLineArt: return "line-art";
  }
  return "unknown";
}

}  // namespace sesr::data
