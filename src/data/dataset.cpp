#include "data/dataset.hpp"

#include <stdexcept>

#include "data/resize.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::data {

SrDataset::SrDataset(std::vector<Tensor> hr_images, std::int64_t scale)
    : hr_(std::move(hr_images)), scale_(scale) {
  if (hr_.empty()) throw std::invalid_argument("SrDataset: no images");
  if (scale != 2 && scale != 4) throw std::invalid_argument("SrDataset: scale must be 2 or 4");
  for (const Tensor& t : hr_) {
    const Shape& s = t.shape();
    if (s.n() != 1 || s.c() != 1) {
      throw std::invalid_argument("SrDataset: images must be (1, H, W, 1), got " + s.to_string());
    }
    if (s.h() % scale != 0 || s.w() % scale != 0) {
      throw std::invalid_argument("SrDataset: image dims must be divisible by scale");
    }
  }
}

SrDataset SrDataset::synthetic_corpus(std::int64_t count, std::int64_t h, std::int64_t w,
                                      std::int64_t scale, Rng& rng) {
  if (count < 1) throw std::invalid_argument("synthetic_corpus: count must be >= 1");
  constexpr std::array<ImageFamily, 4> kFamilies{ImageFamily::kObjects, ImageFamily::kNatural,
                                                 ImageFamily::kUrban, ImageFamily::kLineArt};
  std::vector<Tensor> images;
  images.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    images.push_back(synthesize_image(kFamilies[static_cast<std::size_t>(i) % kFamilies.size()],
                                      h, w, rng));
  }
  return SrDataset(std::move(images), scale);
}

std::pair<Tensor, Tensor> SrDataset::sample_batch(std::int64_t batch, std::int64_t crop,
                                                  Rng& rng) const {
  if (batch < 1 || crop < 4) throw std::invalid_argument("sample_batch: bad batch/crop");
  const std::int64_t hr_crop = crop * scale_;
  Tensor lr(batch, crop, crop, 1);
  Tensor hr(batch, hr_crop, hr_crop, 1);
  for (std::int64_t b = 0; b < batch; ++b) {
    const Tensor& img = hr_[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hr_.size()) - 1))];
    const Shape& s = img.shape();
    if (s.h() < hr_crop || s.w() < hr_crop) {
      throw std::invalid_argument("sample_batch: crop larger than image");
    }
    // Align the crop origin to the scale so LR pixels sit on an exact grid.
    const std::int64_t y0 = rng.uniform_int(0, (s.h() - hr_crop) / scale_) * scale_;
    const std::int64_t x0 = rng.uniform_int(0, (s.w() - hr_crop) / scale_) * scale_;
    Tensor hr_patch = crop_spatial(img, y0, x0, hr_crop, hr_crop);
    Tensor lr_patch = downscale_bicubic(hr_patch, scale_);
    set_batch(hr, b, hr_patch);
    set_batch(lr, b, lr_patch);
  }
  return {std::move(lr), std::move(hr)};
}

std::pair<Tensor, Tensor> SrDataset::image_pair(std::size_t index) const {
  const Tensor& hr = hr_.at(index);
  return {downscale_bicubic(hr, scale_), hr};
}

}  // namespace sesr::data
