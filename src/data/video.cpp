#include "data/video.hpp"

#include <stdexcept>
#include <utility>

#include "tensor/tensor_ops.hpp"

namespace sesr::data {

namespace {

void validate(const VideoSequenceOptions& o) {
  if (o.frames < 1) throw std::invalid_argument("synthesize_video: frames must be >= 1");
  if (o.h < 1 || o.w < 1) throw std::invalid_argument("synthesize_video: dims must be positive");
  if (o.pan_step < 1) throw std::invalid_argument("synthesize_video: pan_step must be >= 1");
  if (o.cut_period < 1) {
    throw std::invalid_argument("synthesize_video: cut_period must be >= 1");
  }
  if (o.sparkle_pixels < 1) {
    throw std::invalid_argument("synthesize_video: sparkle_pixels must be >= 1");
  }
}

std::vector<Tensor> make_static(const VideoSequenceOptions& o, Rng& rng) {
  const Tensor base = synthesize_image(o.family, o.h, o.w, rng);
  std::vector<Tensor> frames;
  frames.reserve(static_cast<std::size_t>(o.frames));
  for (std::int64_t i = 0; i < o.frames; ++i) frames.push_back(base);
  return frames;
}

std::vector<Tensor> make_pan(const VideoSequenceOptions& o, Rng& rng) {
  // One wide scene; each frame is a sliding window shifted pan_step columns.
  const Tensor wide =
      synthesize_image(o.family, o.h, o.w + (o.frames - 1) * o.pan_step, rng);
  std::vector<Tensor> frames;
  frames.reserve(static_cast<std::size_t>(o.frames));
  for (std::int64_t i = 0; i < o.frames; ++i) {
    frames.push_back(crop_spatial(wide, 0, i * o.pan_step, o.h, o.w));
  }
  return frames;
}

std::vector<Tensor> make_cut(const VideoSequenceOptions& o, Rng& rng) {
  std::vector<Tensor> frames;
  frames.reserve(static_cast<std::size_t>(o.frames));
  Tensor scene = synthesize_image(o.family, o.h, o.w, rng);
  for (std::int64_t i = 0; i < o.frames; ++i) {
    if (i > 0 && i % o.cut_period == 0) {
      scene = synthesize_image(o.family, o.h, o.w, rng);
    }
    frames.push_back(scene);
  }
  return frames;
}

std::vector<Tensor> make_sparkle(const VideoSequenceOptions& o, Rng& rng) {
  // Static scene plus a handful of fresh single-pixel perturbations per
  // frame: consecutive frames differ only where last frame's sparkles revert
  // and this frame's land, so only the tiles whose haloed footprints those
  // pixels touch go dirty.
  const Tensor base = synthesize_image(o.family, o.h, o.w, rng);
  std::vector<Tensor> frames;
  frames.reserve(static_cast<std::size_t>(o.frames));
  for (std::int64_t i = 0; i < o.frames; ++i) {
    Tensor frame = base;
    for (std::int64_t p = 0; p < o.sparkle_pixels; ++p) {
      const std::int64_t y = rng.uniform_int(0, o.h - 1);
      const std::int64_t x = rng.uniform_int(0, o.w - 1);
      frame(0, y, x, 0) = rng.uniform(0.0F, 1.0F);
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

std::vector<Tensor> generate(const VideoSequenceOptions& o, Rng& rng);

std::vector<Tensor> make_mixed(const VideoSequenceOptions& o, Rng& rng) {
  // Cycle static -> sparkle -> pan -> fresh-scene segments; each segment
  // draws from its own forked stream so segment lengths never perturb the
  // content of later segments.
  static constexpr VideoPattern kCycle[] = {VideoPattern::kStatic, VideoPattern::kSparkle,
                                            VideoPattern::kPan, VideoPattern::kCut};
  std::vector<Tensor> frames;
  frames.reserve(static_cast<std::size_t>(o.frames));
  std::size_t phase = 0;
  while (std::ssize(frames) < o.frames) {
    VideoSequenceOptions seg = o;
    seg.pattern = kCycle[phase % 4];
    seg.frames = std::min<std::int64_t>(4, o.frames - std::ssize(frames));
    Rng seg_rng = rng.fork();
    std::vector<Tensor> chunk = generate(seg, seg_rng);
    for (Tensor& f : chunk) frames.push_back(std::move(f));
    ++phase;
  }
  return frames;
}

std::vector<Tensor> generate(const VideoSequenceOptions& o, Rng& rng) {
  switch (o.pattern) {
    case VideoPattern::kStatic:
      return make_static(o, rng);
    case VideoPattern::kPan:
      return make_pan(o, rng);
    case VideoPattern::kCut:
      return make_cut(o, rng);
    case VideoPattern::kSparkle:
      return make_sparkle(o, rng);
    case VideoPattern::kMixed:
      return make_mixed(o, rng);
  }
  throw std::invalid_argument("synthesize_video: unknown pattern");
}

}  // namespace

std::vector<Tensor> synthesize_video(const VideoSequenceOptions& options, std::uint64_t seed) {
  validate(options);
  Rng rng(seed ^ 0x5E5ED1DE0ULL);
  return generate(options, rng);
}

std::string to_string(VideoPattern pattern) {
  switch (pattern) {
    case VideoPattern::kStatic:
      return "static";
    case VideoPattern::kPan:
      return "pan";
    case VideoPattern::kCut:
      return "cut";
    case VideoPattern::kSparkle:
      return "sparkle";
    case VideoPattern::kMixed:
      return "mixed";
  }
  return "unknown";
}

VideoPattern parse_video_pattern(const std::string& name) {
  if (name == "static") return VideoPattern::kStatic;
  if (name == "pan") return VideoPattern::kPan;
  if (name == "cut") return VideoPattern::kCut;
  if (name == "sparkle") return VideoPattern::kSparkle;
  if (name == "mixed") return VideoPattern::kMixed;
  throw std::invalid_argument("unknown video pattern '" + name +
                              "' (want static|pan|cut|sparkle|mixed)");
}

}  // namespace sesr::data
