// RGB <-> YCbCr conversion (ITU-R BT.601, the convention SISR papers use).
//
// Following standard practice (paper footnote 1), super resolution runs on the
// Y channel only; PSNR/SSIM are computed on Y as well.
#pragma once

#include "tensor/tensor.hpp"

namespace sesr::data {

// (N, H, W, 3) RGB in [0,1] -> (N, H, W, 3) YCbCr in [0,1] (full-range 601).
Tensor rgb_to_ycbcr(const Tensor& rgb);
Tensor ycbcr_to_rgb(const Tensor& ycbcr);

// Extract the luma channel: (N, H, W, 3) -> (N, H, W, 1). Grayscale inputs
// (C=1) pass through unchanged.
Tensor extract_y(const Tensor& image);

}  // namespace sesr::data
