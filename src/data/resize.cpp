#include "data/resize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace sesr::data {

double cubic_kernel(double x) {
  constexpr double a = -0.5;
  x = std::fabs(x);
  if (x < 1.0) return (a + 2.0) * x * x * x - (a + 3.0) * x * x + 1.0;
  if (x < 2.0) return a * x * x * x - 5.0 * a * x * x + 8.0 * a * x - 4.0 * a;
  return 0.0;
}

namespace {
struct FilterTap {
  std::int64_t first;           // first source index, always in [0, in_size)
  std::vector<double> weights;  // folded into range, then normalized
};

// MATLAB imresize boundary convention: indices beyond the image reflect
// symmetrically about the border with edge repeat (-1 -> 0, -2 -> 1, ...,
// in_size -> in_size - 1). The modulus handles supports wider than the image
// (large downscale factors on small images).
std::int64_t mirror_index(std::int64_t i, std::int64_t size) {
  const std::int64_t period = 2 * size;
  i %= period;
  if (i < 0) i += period;
  return i < size ? i : period - 1 - i;
}

// Precompute, for each output coordinate, the contributing source range and
// weights. `ratio` = in / out; antialiasing widens support when ratio > 1.
// Out-of-range taps are folded into their mirrored in-range pixels BEFORE
// normalization, so the stored taps are exactly the weights each real source
// pixel receives — the MATLAB (a = -0.5, symmetric padding) convention the
// golden-vector tests pin down.
std::vector<FilterTap> build_taps(std::int64_t in_size, std::int64_t out_size) {
  if (in_size < 1 || out_size < 1) throw std::invalid_argument("resize: empty dimension");
  const double ratio = static_cast<double>(in_size) / static_cast<double>(out_size);
  const double support_scale = std::max(1.0, ratio);
  const double support = 2.0 * support_scale;
  std::vector<FilterTap> taps(static_cast<std::size_t>(out_size));
  std::vector<double> folded(static_cast<std::size_t>(in_size));
  for (std::int64_t o = 0; o < out_size; ++o) {
    // Center of output pixel o in input coordinates (pixel-center convention).
    const double center = (static_cast<double>(o) + 0.5) * ratio - 0.5;
    const std::int64_t first = static_cast<std::int64_t>(std::floor(center - support + 0.5));
    const std::int64_t last = static_cast<std::int64_t>(std::floor(center + support + 0.5));
    std::fill(folded.begin(), folded.end(), 0.0);
    double total = 0.0;
    std::int64_t lo = in_size;
    std::int64_t hi = -1;
    for (std::int64_t i = first; i <= last; ++i) {
      const double w = cubic_kernel((static_cast<double>(i) - center) / support_scale);
      if (w == 0.0) continue;
      const std::int64_t j = mirror_index(i, in_size);
      folded[static_cast<std::size_t>(j)] += w;
      total += w;
      lo = std::min(lo, j);
      hi = std::max(hi, j);
    }
    FilterTap tap;
    if (hi < lo) {  // kernel identically zero over the window (cannot happen
                    // for the cubic, but keep the tap well-defined)
      tap.first = mirror_index(static_cast<std::int64_t>(std::llround(center)), in_size);
      tap.weights.assign(1, 1.0);
    } else {
      tap.first = lo;
      tap.weights.assign(folded.begin() + lo, folded.begin() + hi + 1);
      // The folded cubic weights sum to ~1 (upscale) or ~scale (downscale);
      // they are never near zero, so this divide is always safe — the old
      // exact `total != 0.0` float compare is gone.
      for (double& w : tap.weights) w /= total;
    }
    taps[static_cast<std::size_t>(o)] = std::move(tap);
  }
  return taps;
}
}  // namespace

Tensor resize_bicubic(const Tensor& input, std::int64_t out_h, std::int64_t out_w) {
  const Shape& s = input.shape();
  const auto v_taps = build_taps(s.h(), out_h);
  const auto h_taps = build_taps(s.w(), out_w);

  // Vertical pass: (N, H, W, C) -> (N, out_h, W, C).
  Tensor mid(s.n(), out_h, s.w(), s.c());
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t oy = 0; oy < out_h; ++oy) {
      const FilterTap& tap = v_taps[static_cast<std::size_t>(oy)];
      for (std::int64_t x = 0; x < s.w(); ++x) {
        for (std::int64_t c = 0; c < s.c(); ++c) {
          double acc = 0.0;
          for (std::size_t k = 0; k < tap.weights.size(); ++k) {
            acc += tap.weights[k] * input(n, tap.first + static_cast<std::int64_t>(k), x, c);
          }
          mid(n, oy, x, c) = static_cast<float>(acc);
        }
      }
    }
  }

  // Horizontal pass: (N, out_h, W, C) -> (N, out_h, out_w, C).
  Tensor out(s.n(), out_h, out_w, s.c());
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t y = 0; y < out_h; ++y) {
      for (std::int64_t ox = 0; ox < out_w; ++ox) {
        const FilterTap& tap = h_taps[static_cast<std::size_t>(ox)];
        for (std::int64_t c = 0; c < s.c(); ++c) {
          double acc = 0.0;
          for (std::size_t k = 0; k < tap.weights.size(); ++k) {
            acc += tap.weights[k] * mid(n, y, tap.first + static_cast<std::int64_t>(k), c);
          }
          out(n, y, ox, c) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

Tensor upscale_bicubic(const Tensor& input, std::int64_t scale) {
  if (scale < 1) throw std::invalid_argument("upscale_bicubic: scale must be >= 1");
  return resize_bicubic(input, input.shape().h() * scale, input.shape().w() * scale);
}

Tensor downscale_bicubic(const Tensor& input, std::int64_t scale) {
  const Shape& s = input.shape();
  if (scale < 1 || s.h() % scale != 0 || s.w() % scale != 0) {
    throw std::invalid_argument("downscale_bicubic: dims must be divisible by scale");
  }
  return resize_bicubic(input, s.h() / scale, s.w() / scale);
}

}  // namespace sesr::data
