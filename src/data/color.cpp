#include "data/color.hpp"

#include <algorithm>
#include <stdexcept>

namespace sesr::data {

namespace {
void check_rgb(const Tensor& t, const char* op) {
  if (t.shape().c() != 3) {
    throw std::invalid_argument(std::string(op) + ": expects 3 channels, got " +
                                t.shape().to_string());
  }
}
}  // namespace

Tensor rgb_to_ycbcr(const Tensor& rgb) {
  check_rgb(rgb, "rgb_to_ycbcr");
  Tensor out(rgb.shape());
  const float* p = rgb.raw();
  float* q = out.raw();
  const std::int64_t pixels = rgb.numel() / 3;
  for (std::int64_t i = 0; i < pixels; ++i) {
    const float r = p[i * 3 + 0];
    const float g = p[i * 3 + 1];
    const float b = p[i * 3 + 2];
    q[i * 3 + 0] = 0.299F * r + 0.587F * g + 0.114F * b;
    q[i * 3 + 1] = 0.5F - 0.168736F * r - 0.331264F * g + 0.5F * b;
    q[i * 3 + 2] = 0.5F + 0.5F * r - 0.418688F * g - 0.081312F * b;
  }
  return out;
}

Tensor ycbcr_to_rgb(const Tensor& ycbcr) {
  check_rgb(ycbcr, "ycbcr_to_rgb");
  Tensor out(ycbcr.shape());
  const float* p = ycbcr.raw();
  float* q = out.raw();
  const std::int64_t pixels = ycbcr.numel() / 3;
  for (std::int64_t i = 0; i < pixels; ++i) {
    const float y = p[i * 3 + 0];
    const float cb = p[i * 3 + 1] - 0.5F;
    const float cr = p[i * 3 + 2] - 0.5F;
    q[i * 3 + 0] = std::clamp(y + 1.402F * cr, 0.0F, 1.0F);
    q[i * 3 + 1] = std::clamp(y - 0.344136F * cb - 0.714136F * cr, 0.0F, 1.0F);
    q[i * 3 + 2] = std::clamp(y + 1.772F * cb, 0.0F, 1.0F);
  }
  return out;
}

Tensor extract_y(const Tensor& image) {
  if (image.shape().c() == 1) return image;
  check_rgb(image, "extract_y");
  const Shape& s = image.shape();
  Tensor out(s.n(), s.h(), s.w(), 1);
  const float* p = image.raw();
  float* q = out.raw();
  const std::int64_t pixels = image.numel() / 3;
  for (std::int64_t i = 0; i < pixels; ++i) {
    q[i] = 0.299F * p[i * 3 + 0] + 0.587F * p[i * 3 + 1] + 0.114F * p[i * 3 + 2];
  }
  return out;
}

}  // namespace sesr::data
