#include "data/benchmark_sets.hpp"

#include <stdexcept>

namespace sesr::data {

namespace {
struct SetSpec {
  const char* name;
  ImageFamily family;
  std::int64_t full_count;
  std::int64_t reduced_count;
  std::uint64_t seed;
};

constexpr std::array<SetSpec, 6> kSpecs{{
    {"Set5", ImageFamily::kObjects, 5, 3, 0x5e75'0005},
    {"Set14", ImageFamily::kObjects, 14, 4, 0x5e75'0014},
    {"BSD100", ImageFamily::kNatural, 24, 4, 0x5e75'0100},
    {"Urban100", ImageFamily::kUrban, 24, 4, 0x5e75'0101},
    {"Manga109", ImageFamily::kLineArt, 24, 4, 0x5e75'0109},
    {"DIV2K", ImageFamily::kNatural, 20, 4, 0x5e75'2000},
}};

BenchmarkSet build(const SetSpec& spec, std::int64_t image_size, bool reduced) {
  if (image_size < 32 || image_size % 4 != 0) {
    throw std::invalid_argument("make_benchmark_sets: image_size must be >= 32, divisible by 4");
  }
  Rng rng(spec.seed);
  BenchmarkSet set;
  set.name = spec.name;
  const std::int64_t count = reduced ? spec.reduced_count : spec.full_count;
  set.hr.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    set.hr.push_back(synthesize_image(spec.family, image_size, image_size, rng));
  }
  return set;
}
}  // namespace

std::vector<BenchmarkSet> make_benchmark_sets(std::int64_t image_size, bool reduced) {
  std::vector<BenchmarkSet> sets;
  sets.reserve(kSpecs.size());
  for (const SetSpec& spec : kSpecs) sets.push_back(build(spec, image_size, reduced));
  return sets;
}

BenchmarkSet make_benchmark_set(const std::string& name, std::int64_t image_size, bool reduced) {
  for (const SetSpec& spec : kSpecs) {
    if (name == spec.name) return build(spec, image_size, reduced);
  }
  throw std::invalid_argument("make_benchmark_set: unknown set '" + name + "'");
}

}  // namespace sesr::data
