// Seeded synthetic video sequences — the temporal counterpart of
// data/synthetic's still-image families.
//
// Real SR traffic is video: long static stretches (paused frames, UI),
// smooth camera pans, hard scene cuts, and localized change (cursors,
// particles). Each pattern here produces a deterministic (1, H, W, 1) frame
// sequence from a single replayable seed, so the video-session delta path can
// be property-tested and benchmarked against exactly reproducible temporal
// structure: kStatic reuses every tile, kPan dirties everything but cheaply,
// kSparkle dirties only the tiles whose haloed footprints the perturbed
// pixels touch, kCut forces periodic full recomputes, and kMixed cycles
// through all of them the way a real session would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace sesr::data {

enum class VideoPattern {
  kStatic,   // one scene, every frame bitwise identical
  kPan,      // horizontal camera pan: every frame shifts pan_step LR pixels
  kCut,      // hard scene cut every cut_period frames, static in between
  kSparkle,  // static scene + a few per-frame single-pixel perturbations
  kMixed,    // static -> sparkle -> pan -> cut segments, repeating
};

struct VideoSequenceOptions {
  VideoPattern pattern = VideoPattern::kStatic;
  std::int64_t frames = 8;
  std::int64_t h = 48;
  std::int64_t w = 48;
  ImageFamily family = ImageFamily::kNatural;
  std::int64_t pan_step = 2;     // LR pixels shifted per kPan frame
  std::int64_t cut_period = 4;   // frames between kCut scene changes
  std::int64_t sparkle_pixels = 3;  // pixels perturbed per kSparkle frame
};

// Deterministic from (options, seed) alone: identical calls return bitwise
// identical sequences. Frames are (1, h, w, 1) in [0, 1].
std::vector<Tensor> synthesize_video(const VideoSequenceOptions& options, std::uint64_t seed);

std::string to_string(VideoPattern pattern);

// Parse "static" / "pan" / "cut" / "sparkle" / "mixed" (throws
// std::invalid_argument otherwise) — the CLI's --video argument.
VideoPattern parse_video_pattern(const std::string& name);

}  // namespace sesr::data
