#include "data/augment.hpp"

#include <stdexcept>

namespace sesr::data {

namespace {
Tensor flip_h(const Tensor& t) {
  const Shape& s = t.shape();
  Tensor out(s);
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t y = 0; y < s.h(); ++y) {
      for (std::int64_t x = 0; x < s.w(); ++x) {
        for (std::int64_t c = 0; c < s.c(); ++c) {
          out(n, y, s.w() - 1 - x, c) = t(n, y, x, c);
        }
      }
    }
  }
  return out;
}

Tensor flip_v(const Tensor& t) {
  const Shape& s = t.shape();
  Tensor out(s);
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t y = 0; y < s.h(); ++y) {
      for (std::int64_t x = 0; x < s.w(); ++x) {
        for (std::int64_t c = 0; c < s.c(); ++c) {
          out(n, s.h() - 1 - y, x, c) = t(n, y, x, c);
        }
      }
    }
  }
  return out;
}

Tensor transpose_hw(const Tensor& t) {
  const Shape& s = t.shape();
  Tensor out(s.n(), s.w(), s.h(), s.c());
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t y = 0; y < s.h(); ++y) {
      for (std::int64_t x = 0; x < s.w(); ++x) {
        for (std::int64_t c = 0; c < s.c(); ++c) {
          out(n, x, y, c) = t(n, y, x, c);
        }
      }
    }
  }
  return out;
}
}  // namespace

Tensor dihedral_transform(const Tensor& image, int index) {
  if (index < 0 || index > 7) throw std::invalid_argument("dihedral_transform: index in [0, 7]");
  Tensor out = image;
  if ((index & 1) != 0) out = flip_h(out);
  if ((index & 2) != 0) out = flip_v(out);
  if ((index & 4) != 0) out = transpose_hw(out);
  return out;
}

Tensor dihedral_inverse(const Tensor& image, int index) {
  if (index < 0 || index > 7) throw std::invalid_argument("dihedral_inverse: index in [0, 7]");
  // Apply the component inverses in reverse order (each is an involution).
  Tensor out = image;
  if ((index & 4) != 0) out = transpose_hw(out);
  if ((index & 2) != 0) out = flip_v(out);
  if ((index & 1) != 0) out = flip_h(out);
  return out;
}

std::pair<Tensor, Tensor> augment_pair(const Tensor& lr, const Tensor& hr, Rng& rng) {
  const int index = static_cast<int>(rng.uniform_int(0, 7));
  return {dihedral_transform(lr, index), dihedral_transform(hr, index)};
}

}  // namespace sesr::data
