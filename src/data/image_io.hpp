// Image I/O: binary PGM (P5, grayscale) and PPM (P6, RGB), 8-bit.
//
// These cover everything the examples need (load a source image, write the
// upscaled result) without an external codec dependency. Images are exchanged
// as (1, H, W, C) float tensors in [0, 1].
#pragma once

#include <string>

#include "tensor/tensor.hpp"

namespace sesr::data {

// Reads a P5 (C=1) or P6 (C=3) file; values scaled to [0, 1].
Tensor read_pnm(const std::string& path);

// Writes (1, H, W, 1) as P5 or (1, H, W, 3) as P6; values clamped to [0, 1].
void write_pnm(const std::string& path, const Tensor& image);

}  // namespace sesr::data
