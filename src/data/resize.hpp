// Bicubic resampling (the "Bicubic" baseline of Tables 1/2 and the LR-image
// generator for training/eval pairs).
//
// Separable convolutional resampler with the Keys cubic kernel (a = -0.5), the
// same family Matlab's imresize uses. Downscaling applies antialiasing by
// widening the kernel support by the scale factor — standard SISR practice for
// generating LR inputs. Edges are handled by clamping (replicate padding).
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace sesr::data {

// Generic resize of an NHWC tensor to (out_h, out_w), any channel count.
Tensor resize_bicubic(const Tensor& input, std::int64_t out_h, std::int64_t out_w);

// Convenience wrappers for integer scale factors.
Tensor upscale_bicubic(const Tensor& input, std::int64_t scale);
Tensor downscale_bicubic(const Tensor& input, std::int64_t scale);

// The Keys cubic interpolation kernel with a = -0.5 (exposed for tests).
double cubic_kernel(double x);

}  // namespace sesr::data
