// Bicubic resampling (the "Bicubic" baseline of Tables 1/2 and the LR-image
// generator for training/eval pairs).
//
// Separable convolutional resampler matching Matlab's imresize convention:
// Keys cubic kernel (a = -0.5), pixel-center alignment, and symmetric
// (mirror-with-edge-repeat) boundary handling, with boundary taps folded into
// their in-range pixels before normalization. Downscaling applies antialiasing
// by widening the kernel support by the scale factor — standard SISR practice
// for generating LR inputs. Golden-vector tests pin the border weights to
// precomputed values from this convention.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace sesr::data {

// Generic resize of an NHWC tensor to (out_h, out_w), any channel count.
Tensor resize_bicubic(const Tensor& input, std::int64_t out_h, std::int64_t out_w);

// Convenience wrappers for integer scale factors.
Tensor upscale_bicubic(const Tensor& input, std::int64_t scale);
Tensor downscale_bicubic(const Tensor& input, std::int64_t scale);

// The Keys cubic interpolation kernel with a = -0.5 (exposed for tests).
double cubic_kernel(double x);

}  // namespace sesr::data
