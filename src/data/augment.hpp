// Geometric data augmentation — the standard SISR training protocol
// (horizontal/vertical flips and 90-degree rotations give the 8-element
// dihedral group; applied identically to the LR/HR pair so the mapping stays
// consistent).
#pragma once

#include <cstdint>
#include <utility>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace sesr::data {

// The dihedral-4 transforms, indexed 0..7:
//   bit 0: horizontal flip, bit 1: vertical flip, bit 2: transpose (rot90).
Tensor dihedral_transform(const Tensor& image, int index);
// Inverse transform (for self-ensemble inference: transform, upscale, undo).
Tensor dihedral_inverse(const Tensor& image, int index);

// Apply the same random dihedral transform to an LR/HR pair.
std::pair<Tensor, Tensor> augment_pair(const Tensor& lr, const Tensor& hr, Rng& rng);

}  // namespace sesr::data
