// Synthetic stand-ins for the six evaluation datasets of Tables 1 and 2.
//
// Each named set draws from the procedural family that best matches the real
// set's character, with a fixed per-set seed so every bench and test evaluates
// on identical images. Image counts are scaled down from the originals (the
// evaluation plumbing is identical; wall-clock on one core is not).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "tensor/tensor.hpp"

namespace sesr::data {

struct BenchmarkSet {
  std::string name;        // "Set5", "Set14", "BSD100", "Urban100", "Manga109", "DIV2K"
  std::vector<Tensor> hr;  // (1, H, W, 1) Y-channel images, dims divisible by 4
};

// All six sets. `image_size` is the HR edge length (divisible by 4);
// `reduced` shrinks per-set image counts for fast CI runs.
std::vector<BenchmarkSet> make_benchmark_sets(std::int64_t image_size, bool reduced);

// One set by name (throws on unknown name).
BenchmarkSet make_benchmark_set(const std::string& name, std::int64_t image_size, bool reduced);

}  // namespace sesr::data
