// Minimal binary serialization for tensors and named-parameter checkpoints.
//
// Format ("SESR" magic, version 1, little-endian):
//   header:  char[4] "SESR" | u32 version | u64 entry_count
//   entry:   u64 name_len | name bytes | i64 dims[4] | f32 data[numel]
//
// Used by the examples to save a trained (expanded) model and reload either the
// expanded model or its collapsed deployment form.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "tensor/tensor.hpp"

namespace sesr {

// A named set of tensors, e.g. all parameters of a model keyed by layer path.
using TensorMap = std::map<std::string, Tensor>;

void write_tensor(std::ostream& os, const Tensor& t);
Tensor read_tensor(std::istream& is);

void save_tensors(const std::string& path, const TensorMap& tensors);
TensorMap load_tensors(const std::string& path);

}  // namespace sesr
