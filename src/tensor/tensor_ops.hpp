// Elementwise and structural tensor operations.
//
// These are the shape-checked building blocks shared by the NN layers, the
// collapse algebra (Algorithms 1 and 2 need pad / add / spatial reverse /
// axis transpose) and the data pipeline.
#pragma once

#include <array>
#include <cstdint>

#include "tensor/tensor.hpp"

namespace sesr {

// c = a + b (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);
// a += b in place.
void add_inplace(Tensor& a, const Tensor& b);
// Raw form for arena-resident activations (same loop, same rounding).
void add_inplace(float* a, const float* b, std::int64_t n);
// c = a - b.
Tensor sub(const Tensor& a, const Tensor& b);
// c = a * s.
Tensor scale(const Tensor& a, float s);
void scale_inplace(Tensor& a, float s);
// a += b * s (axpy).
void axpy_inplace(Tensor& a, const Tensor& b, float s);

// Reductions over all elements.
float sum(const Tensor& a);
float mean(const Tensor& a);
float max_abs(const Tensor& a);
// L2 norm of all elements.
float l2_norm(const Tensor& a);

// Largest absolute elementwise difference; the workhorse of the collapse
// exactness tests.
float max_abs_diff(const Tensor& a, const Tensor& b);

// Zero-pad the two spatial dimensions by (top, bottom, left, right).
Tensor pad_spatial(const Tensor& a, std::int64_t top, std::int64_t bottom, std::int64_t left,
                   std::int64_t right);

// Crop the spatial dims: rows [y0, y0+h), cols [x0, x0+w).
Tensor crop_spatial(const Tensor& a, std::int64_t y0, std::int64_t x0, std::int64_t h,
                    std::int64_t w);

// Reverse both spatial axes (the "reverse(x, [1, 2])" step of Algorithm 1).
Tensor reverse_spatial(const Tensor& a);

// Permute dimensions: out.dim(i) = in.dim(perm[i]). Algorithm 1 uses
// perm = {1, 2, 0, 3} to turn the conv output (N=Cin, kh, kw, Cout) into an
// HWIO kernel (kh, kw, Cin, Cout).
Tensor transpose(const Tensor& a, const std::array<int, 4>& perm);

// Concatenate along the channel axis.
Tensor concat_channels(const Tensor& a, const Tensor& b);

// Copy channels [c0, c0 + count) into a new tensor.
Tensor slice_channels(const Tensor& a, std::int64_t c0, std::int64_t count);
// Write src (same N/H/W) into channels [c0, c0 + src.c()) of dst.
void write_channels(Tensor& dst, std::int64_t c0, const Tensor& src);

// Extract one image of a batch as a (1, H, W, C) tensor.
Tensor slice_batch(const Tensor& a, std::int64_t n);
// Write a (1, H, W, C) tensor into batch slot n of dst.
void set_batch(Tensor& dst, std::int64_t n, const Tensor& src);

}  // namespace sesr
