#include "tensor/fp16.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace sesr::fp16 {

namespace {

std::uint32_t float_bits(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

float bits_to_float(std::uint32_t bits) {
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

std::uint16_t float_to_half_bits(float value) {
  const std::uint32_t bits = float_bits(value);
  const auto sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000U);
  const std::uint32_t abs = bits & 0x7fffffffU;
  if (abs >= 0x7f800000U) {  // inf / NaN
    if (abs == 0x7f800000U) return sign | 0x7c00U;
    // Quiet NaN keeping the top 10 payload bits — matches VCVTPS2PH, which
    // quietens signalling NaNs and truncates the payload.
    return static_cast<std::uint16_t>(sign | 0x7e00U | ((abs >> 13) & 0x3ffU));
  }
  if (abs >= 0x47800000U) return sign | 0x7c00U;  // >= 2^16: overflow to inf
  if (abs < 0x33000000U) return sign;             // < 2^-25: underflow to +-0
  const int exp32 = static_cast<int>(abs >> 23) - 127;
  const std::uint32_t sig = (abs & 0x007fffffU) | 0x00800000U;  // 24-bit significand
  // Normal halves shift the significand by 13; subnormals shift further, one
  // bit per exponent step below 2^-14. Carry out of the rounded mantissa
  // propagates into the exponent field, which also handles the
  // subnormal->normal and 65504->inf promotions exactly.
  std::uint32_t h_exp = 0;
  int shift = 13;
  if (exp32 >= -14) {
    // Biased exponent minus one: mant below keeps the implicit leading bit
    // (1 << 10), which supplies the missing exponent step when added in.
    h_exp = static_cast<std::uint32_t>(exp32 + 14);
  } else {
    shift += -14 - exp32;  // at most 24 (exp32 >= -25 here)
  }
  const std::uint32_t halfway = 1U << (shift - 1);
  const std::uint32_t rem = sig & ((1U << shift) - 1U);
  std::uint32_t mant = sig >> shift;
  if (rem > halfway || (rem == halfway && (mant & 1U) != 0)) ++mant;
  return static_cast<std::uint16_t>(sign | ((h_exp << 10) + mant));
}

float half_bits_to_float(std::uint16_t bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000U) << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1fU;
  std::uint32_t mant = bits & 0x3ffU;
  if (exp == 0x1fU) {  // inf / NaN
    // Quieten signalling NaNs (set the top mantissa bit) to stay bit-identical
    // with VCVTPH2PS, which never emits an sNaN.
    if (mant != 0) mant |= 0x200U;
    return bits_to_float(sign | 0x7f800000U | (mant << 13));
  }
  if (exp != 0) return bits_to_float(sign | ((exp + 112U) << 23) | (mant << 13));
  if (mant == 0) return bits_to_float(sign);  // +-0
  // Subnormal: value = mant * 2^-24. Normalize into an fp32 exponent.
  std::uint32_t shift = 0;
  while ((mant & 0x400U) == 0) {
    mant <<= 1;
    ++shift;
  }
  return bits_to_float(sign | ((113U - shift) << 23) | ((mant & 0x3ffU) << 13));
}

namespace {

void convert_to_float_generic(const Half* src, float* dst, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = half_bits_to_float(src[i].bits);
}

void convert_to_half_generic(const float* src, Half* dst, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i].bits = float_to_half_bits(src[i]);
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("f16c,avx"))) void convert_to_float_f16c(const Half* src, float* dst,
                                                               std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  for (; i < n; ++i) dst[i] = half_bits_to_float(src[i].bits);
}

__attribute__((target("f16c,avx"))) void convert_to_half_f16c(const float* src, Half* dst,
                                                              std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 f = _mm256_loadu_ps(src + i);
    const __m128i h = _mm256_cvtps_ph(f, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  for (; i < n; ++i) dst[i].bits = float_to_half_bits(src[i]);
}
#endif

using ToFloatFn = void (*)(const Half*, float*, std::int64_t);
using ToHalfFn = void (*)(const float*, Half*, std::int64_t);

bool f16c_cpu_supported() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("f16c") && __builtin_cpu_supports("avx");
#else
  return false;
#endif
}

bool f16c_env_disabled() {
  const char* v = std::getenv("SESR_DISABLE_F16C");
  return v != nullptr && std::string(v) != "0";
}

ToFloatFn pick_to_float() {
#if defined(__x86_64__) || defined(__i386__)
  if (f16c_cpu_supported() && !f16c_env_disabled()) return convert_to_float_f16c;
#endif
  return convert_to_float_generic;
}

ToHalfFn pick_to_half() {
#if defined(__x86_64__) || defined(__i386__)
  if (f16c_cpu_supported() && !f16c_env_disabled()) return convert_to_half_f16c;
#endif
  return convert_to_half_generic;
}

// Atomic so the audit's set_f16c_isa() between sweeps is race-free against
// worker threads converting inside the conv/GEMM drivers.
std::atomic<ToFloatFn> g_to_float{pick_to_float()};
std::atomic<ToHalfFn> g_to_half{pick_to_half()};

}  // namespace

bool f16c_supported() { return f16c_cpu_supported() && !f16c_env_disabled(); }

bool set_f16c_isa(F16cIsa isa) {
  switch (isa) {
    case F16cIsa::kAuto:
      g_to_float.store(pick_to_float(), std::memory_order_relaxed);
      g_to_half.store(pick_to_half(), std::memory_order_relaxed);
      return true;
    case F16cIsa::kGeneric:
      g_to_float.store(convert_to_float_generic, std::memory_order_relaxed);
      g_to_half.store(convert_to_half_generic, std::memory_order_relaxed);
      return true;
    case F16cIsa::kF16c:
#if defined(__x86_64__) || defined(__i386__)
      if (f16c_supported()) {
        g_to_float.store(convert_to_float_f16c, std::memory_order_relaxed);
        g_to_half.store(convert_to_half_f16c, std::memory_order_relaxed);
        return true;
      }
#endif
      return false;
  }
  return false;
}

void convert_to_float(const Half* src, float* dst, std::int64_t n) {
  g_to_float.load(std::memory_order_relaxed)(src, dst, n);
}

void convert_to_half(const float* src, Half* dst, std::int64_t n) {
  g_to_half.load(std::memory_order_relaxed)(src, dst, n);
}

HalfTensor HalfTensor::from_float(const Tensor& t) {
  HalfTensor h(t.shape());
  convert_to_half(t.raw(), h.raw(), t.numel());
  return h;
}

Tensor HalfTensor::to_float() const {
  Tensor t(shape_);
  convert_to_float(data_.data(), t.raw(), numel());
  return t;
}

void add_inplace(HalfTensor& a, const HalfTensor& b) {
  if (!(a.shape() == b.shape())) {
    throw std::invalid_argument("fp16::add_inplace: shape mismatch");
  }
  add_inplace(a.raw(), b.raw(), a.numel());
}

void add_inplace(Half* a, const Half* b, std::int64_t n) {
  // Chunked through small stack buffers so the fp32 working set stays
  // register/L1-resident while the conversions run vectorized.
  constexpr std::int64_t kChunk = 2048;
  float fa[kChunk];
  float fb[kChunk];
  for (std::int64_t i = 0; i < n; i += kChunk) {
    const std::int64_t len = std::min(kChunk, n - i);
    convert_to_float(a + i, fa, len);
    convert_to_float(b + i, fb, len);
    for (std::int64_t j = 0; j < len; ++j) fa[j] += fb[j];
    convert_to_half(fa, a + i, len);
  }
}

void round_through_half(float* data, std::int64_t n) {
  constexpr std::int64_t kChunk = 2048;
  Half h[kChunk];
  for (std::int64_t i = 0; i < n; i += kChunk) {
    const std::int64_t len = std::min(kChunk, n - i);
    convert_to_half(data + i, h, len);
    convert_to_float(h, data + i, len);
  }
}

}  // namespace sesr::fp16
