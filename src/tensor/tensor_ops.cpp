#include "tensor/tensor_ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sesr {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " + a.shape().to_string() +
                                " vs " + b.shape().to_string());
  }
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out(a.shape());
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  add_inplace(a.raw(), b.raw(), a.numel());
}

void add_inplace(float* a, const float* b, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) a[i] += b[i];
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out(a.shape());
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] = pa[i] - pb[i];
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out(a.shape());
  const float* pa = a.raw();
  float* po = out.raw();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] = pa[i] * s;
  return out;
}

void scale_inplace(Tensor& a, float s) {
  float* pa = a.raw();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) pa[i] *= s;
}

void axpy_inplace(Tensor& a, const Tensor& b, float s) {
  check_same_shape(a, b, "axpy_inplace");
  float* pa = a.raw();
  const float* pb = b.raw();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) pa[i] += pb[i] * s;
}

float sum(const Tensor& a) {
  double acc = 0.0;  // double accumulator: keeps reductions stable on large images
  for (float v : a.data()) acc += v;
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("mean: empty tensor");
  return sum(a) / static_cast<float>(a.numel());
}

float max_abs(const Tensor& a) {
  float m = 0.0F;
  for (float v : a.data()) m = std::max(m, std::fabs(v));
  return m;
}

float l2_norm(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.data()) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "max_abs_diff");
  float m = 0.0F;
  const float* pa = a.raw();
  const float* pb = b.raw();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) m = std::max(m, std::fabs(pa[i] - pb[i]));
  return m;
}

Tensor pad_spatial(const Tensor& a, std::int64_t top, std::int64_t bottom, std::int64_t left,
                   std::int64_t right) {
  if (top < 0 || bottom < 0 || left < 0 || right < 0) {
    throw std::invalid_argument("pad_spatial: negative padding");
  }
  const Shape& s = a.shape();
  Tensor out(s.n(), s.h() + top + bottom, s.w() + left + right, s.c());
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t y = 0; y < s.h(); ++y) {
      const float* src = a.raw() + s.offset(n, y, 0, 0);
      float* dst = out.raw() + out.shape().offset(n, y + top, left, 0);
      std::copy(src, src + s.w() * s.c(), dst);
    }
  }
  return out;
}

Tensor crop_spatial(const Tensor& a, std::int64_t y0, std::int64_t x0, std::int64_t h,
                    std::int64_t w) {
  const Shape& s = a.shape();
  if (y0 < 0 || x0 < 0 || h < 1 || w < 1 || y0 + h > s.h() || x0 + w > s.w()) {
    throw std::invalid_argument("crop_spatial: window out of range for " + s.to_string());
  }
  Tensor out(s.n(), h, w, s.c());
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t y = 0; y < h; ++y) {
      const float* src = a.raw() + s.offset(n, y0 + y, x0, 0);
      float* dst = out.raw() + out.shape().offset(n, y, 0, 0);
      std::copy(src, src + w * s.c(), dst);
    }
  }
  return out;
}

Tensor reverse_spatial(const Tensor& a) {
  const Shape& s = a.shape();
  Tensor out(s);
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t y = 0; y < s.h(); ++y) {
      for (std::int64_t x = 0; x < s.w(); ++x) {
        const float* src = a.raw() + s.offset(n, y, x, 0);
        float* dst = out.raw() + s.offset(n, s.h() - 1 - y, s.w() - 1 - x, 0);
        std::copy(src, src + s.c(), dst);
      }
    }
  }
  return out;
}

Tensor transpose(const Tensor& a, const std::array<int, 4>& perm) {
  std::array<bool, 4> seen{false, false, false, false};
  for (int p : perm) {
    if (p < 0 || p > 3 || seen[static_cast<std::size_t>(p)]) {
      throw std::invalid_argument("transpose: perm is not a permutation of {0,1,2,3}");
    }
    seen[static_cast<std::size_t>(p)] = true;
  }
  const Shape& s = a.shape();
  Shape os(s.dim(perm[0]), s.dim(perm[1]), s.dim(perm[2]), s.dim(perm[3]));
  Tensor out(os);
  std::array<std::int64_t, 4> idx{};  // index in the *input* tensor
  for (idx[0] = 0; idx[0] < s.dim(0); ++idx[0]) {
    for (idx[1] = 0; idx[1] < s.dim(1); ++idx[1]) {
      for (idx[2] = 0; idx[2] < s.dim(2); ++idx[2]) {
        for (idx[3] = 0; idx[3] < s.dim(3); ++idx[3]) {
          out(idx[static_cast<std::size_t>(perm[0])], idx[static_cast<std::size_t>(perm[1])],
              idx[static_cast<std::size_t>(perm[2])], idx[static_cast<std::size_t>(perm[3])]) =
              a(idx[0], idx[1], idx[2], idx[3]);
        }
      }
    }
  }
  return out;
}

Tensor concat_channels(const Tensor& a, const Tensor& b) {
  const Shape& sa = a.shape();
  const Shape& sb = b.shape();
  if (sa.n() != sb.n() || sa.h() != sb.h() || sa.w() != sb.w()) {
    throw std::invalid_argument("concat_channels: spatial/batch mismatch " + sa.to_string() +
                                " vs " + sb.to_string());
  }
  Tensor out(sa.n(), sa.h(), sa.w(), sa.c() + sb.c());
  for (std::int64_t n = 0; n < sa.n(); ++n) {
    for (std::int64_t y = 0; y < sa.h(); ++y) {
      for (std::int64_t x = 0; x < sa.w(); ++x) {
        const float* pa = a.raw() + sa.offset(n, y, x, 0);
        const float* pb = b.raw() + sb.offset(n, y, x, 0);
        float* po = out.raw() + out.shape().offset(n, y, x, 0);
        std::copy(pa, pa + sa.c(), po);
        std::copy(pb, pb + sb.c(), po + sa.c());
      }
    }
  }
  return out;
}

Tensor slice_channels(const Tensor& a, std::int64_t c0, std::int64_t count) {
  const Shape& s = a.shape();
  if (c0 < 0 || count < 1 || c0 + count > s.c()) {
    throw std::invalid_argument("slice_channels: range out of bounds for " + s.to_string());
  }
  Tensor out(s.n(), s.h(), s.w(), count);
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t y = 0; y < s.h(); ++y) {
      for (std::int64_t x = 0; x < s.w(); ++x) {
        const float* src = a.raw() + s.offset(n, y, x, c0);
        float* dst = out.raw() + out.shape().offset(n, y, x, 0);
        std::copy(src, src + count, dst);
      }
    }
  }
  return out;
}

void write_channels(Tensor& dst, std::int64_t c0, const Tensor& src) {
  const Shape& sd = dst.shape();
  const Shape& ss = src.shape();
  if (ss.n() != sd.n() || ss.h() != sd.h() || ss.w() != sd.w() || c0 < 0 ||
      c0 + ss.c() > sd.c()) {
    throw std::invalid_argument("write_channels: shape/range mismatch " + ss.to_string() +
                                " into " + sd.to_string());
  }
  for (std::int64_t n = 0; n < ss.n(); ++n) {
    for (std::int64_t y = 0; y < ss.h(); ++y) {
      for (std::int64_t x = 0; x < ss.w(); ++x) {
        const float* p = src.raw() + ss.offset(n, y, x, 0);
        float* q = dst.raw() + sd.offset(n, y, x, c0);
        std::copy(p, p + ss.c(), q);
      }
    }
  }
}

Tensor slice_batch(const Tensor& a, std::int64_t n) {
  const Shape& s = a.shape();
  if (n < 0 || n >= s.n()) throw std::out_of_range("slice_batch: index out of range");
  Tensor out(1, s.h(), s.w(), s.c());
  const float* src = a.raw() + s.offset(n, 0, 0, 0);
  std::copy(src, src + out.numel(), out.raw());
  return out;
}

void set_batch(Tensor& dst, std::int64_t n, const Tensor& src) {
  const Shape& sd = dst.shape();
  const Shape& ss = src.shape();
  if (ss.n() != 1 || ss.h() != sd.h() || ss.w() != sd.w() || ss.c() != sd.c()) {
    throw std::invalid_argument("set_batch: shape mismatch " + ss.to_string() + " into " +
                                sd.to_string());
  }
  if (n < 0 || n >= sd.n()) throw std::out_of_range("set_batch: index out of range");
  std::copy(src.raw(), src.raw() + src.numel(), dst.raw() + sd.offset(n, 0, 0, 0));
}

}  // namespace sesr
