// Deterministic random number generation.
//
// All stochastic components (weight init, data synthesis, patch sampling, NAS
// mutation) draw from an explicitly seeded Rng so every experiment in bench/ is
// bit-reproducible run to run.
#pragma once

#include <cstdint>
#include <random>

namespace sesr {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform in [lo, hi).
  float uniform(float lo = 0.0F, float hi = 1.0F) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }

  // Standard normal scaled to the given stddev and mean.
  float normal(float mean = 0.0F, float stddev = 1.0F) {
    return std::normal_distribution<float>(mean, stddev)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Bernoulli with probability p of true.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  // Derive an independent child stream; used to give each subsystem its own
  // stream so adding draws in one place does not perturb another.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sesr
