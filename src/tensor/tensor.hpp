// Owning, contiguous NHWC float32 tensor.
//
// This is the single data container used throughout the library: activations are
// (N, H, W, C); convolution kernels are (kh, kw, Cin, Cout) in HWIO order (the
// layout the paper's Algorithm 1 manipulates); 1-D parameter vectors such as
// PReLU slopes are (1, 1, 1, C).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/shape.hpp"

namespace sesr {

class Tensor {
 public:
  Tensor() = default;

  // Allocates and zero-fills.
  explicit Tensor(const Shape& shape);
  Tensor(std::int64_t n, std::int64_t h, std::int64_t w, std::int64_t c)
      : Tensor(Shape(n, h, w, c)) {}

  // Construct from existing data; data.size() must equal shape.numel().
  Tensor(const Shape& shape, std::vector<float> data);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  // Unchecked element access (hot loops).
  float& operator()(std::int64_t n, std::int64_t y, std::int64_t x, std::int64_t c) {
    return data_[static_cast<std::size_t>(shape_.offset(n, y, x, c))];
  }
  float operator()(std::int64_t n, std::int64_t y, std::int64_t x, std::int64_t c) const {
    return data_[static_cast<std::size_t>(shape_.offset(n, y, x, c))];
  }

  // Bounds-checked access; throws std::out_of_range.
  float& at(std::int64_t n, std::int64_t y, std::int64_t x, std::int64_t c);
  float at(std::int64_t n, std::int64_t y, std::int64_t x, std::int64_t c) const;

  void fill(float value);
  void zero() { fill(0.0F); }

  // In-place random fills.
  void fill_uniform(Rng& rng, float lo, float hi);
  void fill_normal(Rng& rng, float mean, float stddev);

  // Returns a tensor of the same shape, zero-filled (gradient buffers etc.).
  Tensor zeros_like() const { return Tensor(shape_); }

  // Reinterpret the same data with a different shape of equal numel.
  Tensor reshaped(const Shape& new_shape) const;

 private:
  Shape shape_{0, 0, 0, 0};
  std::vector<float> data_;
};

}  // namespace sesr
