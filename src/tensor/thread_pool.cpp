#include "tensor/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>

namespace sesr {

namespace {
unsigned pool_size_from_env() {
  if (const char* env = std::getenv("SESR_NUM_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<unsigned>(n);
    return 1U;  // malformed or non-positive: stay serial rather than guess
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1U;
}

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>(pool_size_from_env());
  return pool;
}

// Pool whose chunks this thread is currently executing (nullptr outside a
// loop body). A parallel_for issued from inside a running chunk must run
// inline — blocking on its own pool would deadlock — and this marker detects
// that without touching the pool mutex.
thread_local const ThreadPool* tl_draining_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads <= 1) return;  // inline mode
  // The caller participates in every parallel_for, so threads-1 workers make
  // `threads` the total compute width (SESR_NUM_THREADS=4 computes 4-wide).
  workers_.reserve(threads - 1);
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::int64_t ThreadPool::drain_chunks(Batch& batch) {
  const ThreadPool* prev = tl_draining_pool;
  tl_draining_pool = this;
  std::int64_t done = 0;
  for (;;) {
    const std::int64_t c = batch.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= batch.chunk_count) break;
    const std::int64_t lo = batch.begin + c * batch.grain;
    const std::int64_t hi = std::min(lo + batch.grain, batch.end);
    try {
      batch.invoke(batch.ctx, lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!batch.error) batch.error = std::current_exception();
    }
    ++done;
  }
  tl_draining_pool = prev;
  return done;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] {
        return shutting_down_ ||
               (batch_ != nullptr &&
                batch_->next_chunk.load(std::memory_order_relaxed) < batch_->chunk_count);
      });
      if (shutting_down_) return;
      // Snapshot under the lock: this worker drains exactly the batch it was
      // admitted to, even if a new one is installed while it runs.
      batch = batch_;
    }
    const std::int64_t done = drain_chunks(*batch);
    if (done > 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      batch->remaining -= done;
      if (batch->remaining == 0) batch_done_.notify_all();
    }
  }
}

void ThreadPool::run_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain,
                            ChunkFn invoke, const void* ctx) {
  if (begin >= end) return;
  grain = std::max<std::int64_t>(grain, 1);
  const std::int64_t chunks = (end - begin + grain - 1) / grain;
  if (workers_.empty() || chunks <= 1 || tl_draining_pool == this) {
    // Same chunk decomposition as the threaded path, run in order. The
    // tl_draining_pool case is a reentrant call from inside a loop body.
    for (std::int64_t lo = begin; lo < end; lo += grain) {
      invoke(ctx, lo, std::min(lo + grain, end));
    }
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->begin = begin;
  batch->end = end;
  batch->grain = grain;
  batch->chunk_count = chunks;
  batch->remaining = chunks;
  batch->invoke = invoke;
  batch->ctx = ctx;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // One batch in flight at a time: a concurrent submitter on another
    // non-worker thread queues here until the slot frees instead of
    // clobbering the active batch.
    batch_done_.wait(lock, [this] { return batch_ == nullptr; });
    batch_ = batch;
  }
  work_available_.notify_all();
  // The caller works too instead of blocking idle.
  const std::int64_t done = drain_chunks(*batch);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch->remaining -= done;
    batch_done_.wait(lock, [&] { return batch->remaining == 0; });
    batch_ = nullptr;  // frees the submission slot
    error = batch->error;
  }
  batch_done_.notify_all();  // wake submitters queued on the slot
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() { return *global_slot(); }

void ThreadPool::set_global_threads(unsigned threads) {
  global_slot() = std::make_unique<ThreadPool>(threads);
}

}  // namespace sesr
