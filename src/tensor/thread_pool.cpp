#include "tensor/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>

namespace sesr {

namespace {
unsigned pool_size_from_env() {
  if (const char* env = std::getenv("SESR_NUM_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<unsigned>(n);
    return 1U;  // malformed or non-positive: stay serial rather than guess
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1U;
}

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>(pool_size_from_env());
  return pool;
}
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads <= 1) return;  // inline mode
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::int64_t ThreadPool::drain_chunks() {
  std::int64_t done = 0;
  for (;;) {
    const std::int64_t c = batch_.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= batch_.chunk_count) return done;
    const std::int64_t lo = batch_.begin + c * batch_.grain;
    const std::int64_t hi = std::min(lo + batch_.grain, batch_.end);
    try {
      (*batch_.fn)(lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!batch_.error) batch_.error = std::current_exception();
    }
    ++done;
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] {
        return shutting_down_ ||
               (has_batch_ &&
                batch_.next_chunk.load(std::memory_order_relaxed) < batch_.chunk_count);
      });
      if (shutting_down_) return;
    }
    const std::int64_t done = drain_chunks();
    if (done > 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      batch_.remaining -= done;
      if (batch_.remaining == 0) batch_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain,
                                     const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<std::int64_t>(grain, 1);
  const std::int64_t chunks = (end - begin + grain - 1) / grain;
  bool inline_run = workers_.empty() || chunks <= 1;
  if (!inline_run) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (has_batch_) inline_run = true;  // reentrant call: run inline
  }
  if (inline_run) {
    // Same chunk decomposition as the threaded path, run in order.
    for (std::int64_t lo = begin; lo < end; lo += grain) fn(lo, std::min(lo + grain, end));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_.begin = begin;
    batch_.end = end;
    batch_.grain = grain;
    batch_.chunk_count = chunks;
    batch_.next_chunk.store(0, std::memory_order_relaxed);
    batch_.remaining = chunks;
    batch_.fn = &fn;
    batch_.error = nullptr;
    has_batch_ = true;
  }
  work_available_.notify_all();
  // The caller works too instead of blocking idle.
  const std::int64_t done = drain_chunks();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch_.remaining -= done;
    batch_done_.wait(lock, [this] { return batch_.remaining == 0; });
    has_batch_ = false;
    error = batch_.error;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              const std::function<void(std::int64_t)>& fn) {
  if (begin >= end) return;
  // ~4 chunks per way of parallelism keeps the tail balanced without paying
  // one dispatch per index.
  const std::int64_t ways = static_cast<std::int64_t>(worker_count()) + 1;
  const std::int64_t grain = std::max<std::int64_t>(1, (end - begin) / (ways * 4));
  parallel_for_chunks(begin, end, grain, [&fn](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) fn(i);
  });
}

ThreadPool& ThreadPool::global() { return *global_slot(); }

void ThreadPool::set_global_threads(unsigned threads) {
  global_slot() = std::make_unique<ThreadPool>(threads);
}

}  // namespace sesr
