#include "tensor/thread_pool.hpp"

#include <cstdlib>
#include <string>

namespace sesr {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads <= 1) return;  // inline mode
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::int64_t index = 0;
    const std::function<void(std::int64_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || (has_batch_ && batch_.next < batch_.end); });
      if (shutting_down_) return;
      index = batch_.next++;
      fn = batch_.fn;
    }
    std::exception_ptr error;
    try {
      (*fn)(index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !batch_.error) batch_.error = error;
      if (--batch_.remaining == 0) batch_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              const std::function<void(std::int64_t)>& fn) {
  if (begin >= end) return;
  bool inline_run = workers_.empty();
  if (!inline_run) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (has_batch_) inline_run = true;  // reentrant call: run inline
  }
  if (inline_run) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_.next = begin;
    batch_.end = end;
    batch_.fn = &fn;
    batch_.remaining = end - begin;
    batch_.error = nullptr;
    has_batch_ = true;
  }
  work_available_.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch_done_.wait(lock, [this] { return batch_.remaining == 0; });
    has_batch_ = false;
    error = batch_.error;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("SESR_NUM_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n > 0) return static_cast<unsigned>(n);
    }
    return 1U;
  }());
  return pool;
}

}  // namespace sesr
