#include "tensor/scratch.hpp"

#include <array>
#include <vector>

namespace sesr {

std::span<float> scratch_floats(ScratchSlot slot, std::size_t n) {
  thread_local std::array<std::vector<float>, static_cast<std::size_t>(ScratchSlot::kSlotCount)>
      buffers;
  std::vector<float>& buf = buffers[static_cast<std::size_t>(slot)];
  if (buf.size() < n) buf.resize(n);  // never shrinks: capacity is retained
  return {buf.data(), n};
}

std::span<std::uint8_t> scratch_bytes(ScratchSlot slot, std::size_t n) {
  thread_local std::array<std::vector<std::uint8_t>,
                          static_cast<std::size_t>(ScratchSlot::kSlotCount)>
      buffers;
  std::vector<std::uint8_t>& buf = buffers[static_cast<std::size_t>(slot)];
  if (buf.size() < n) buf.resize(n);
  return {buf.data(), n};
}

}  // namespace sesr
