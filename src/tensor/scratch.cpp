#include "tensor/scratch.hpp"

#include <array>
#include <atomic>
#include <vector>

namespace sesr {

namespace {

constexpr std::size_t kSlots = static_cast<std::size_t>(ScratchSlot::kSlotCount);

// Monotone trim epoch: scratch_trim() bumps it, each thread catches up (and
// releases capacity) lazily at its next scratch request.
std::atomic<std::uint64_t> g_trim_epoch{0};

// Process-wide high-water marks, updated only when a thread's buffer grows
// past the previous global max (rare after warmup, so the CAS loop is cold).
std::array<std::atomic<std::size_t>, kSlots> g_hw_floats{};
std::array<std::atomic<std::size_t>, kSlots> g_hw_bytes{};

void raise_high_water(std::atomic<std::size_t>& mark, std::size_t n) {
  std::size_t seen = mark.load(std::memory_order_relaxed);
  while (seen < n && !mark.compare_exchange_weak(seen, n, std::memory_order_relaxed)) {
  }
}

// One thread's buffers for every slot. Each buffer carries the trim epoch it
// has caught up to, and a stale buffer is released only when THAT buffer is
// requested again — never as a side effect of touching another slot — so the
// ownership contract ("a span is valid until the same slot is requested again
// on the same thread") survives a concurrent scratch_trim(): a kernel holding
// spans from several slots can keep using all of them until it re-enters.
struct ThreadScratch {
  std::array<std::vector<float>, kSlots> floats;
  std::array<std::vector<std::uint8_t>, kSlots> bytes;
  std::array<std::uint64_t, kSlots> float_epoch{};
  std::array<std::uint64_t, kSlots> byte_epoch{};

  template <typename Buf>
  static void catch_up_trim(Buf& buf, std::uint64_t& epoch) {
    const std::uint64_t now = g_trim_epoch.load(std::memory_order_relaxed);
    if (epoch == now) return;
    epoch = now;
    buf.clear();
    buf.shrink_to_fit();
  }
};

ThreadScratch& thread_scratch() {
  thread_local ThreadScratch scratch;
  return scratch;
}

}  // namespace

std::span<float> scratch_floats(ScratchSlot slot, std::size_t n) {
  ThreadScratch& ts = thread_scratch();
  const std::size_t i = static_cast<std::size_t>(slot);
  std::vector<float>& buf = ts.floats[i];
  ThreadScratch::catch_up_trim(buf, ts.float_epoch[i]);
  if (buf.size() < n) {
    buf.resize(n);  // never shrinks between trims: capacity is retained
    raise_high_water(g_hw_floats[i], n);
  }
  return {buf.data(), n};
}

std::span<std::uint8_t> scratch_bytes(ScratchSlot slot, std::size_t n) {
  ThreadScratch& ts = thread_scratch();
  const std::size_t i = static_cast<std::size_t>(slot);
  std::vector<std::uint8_t>& buf = ts.bytes[i];
  ThreadScratch::catch_up_trim(buf, ts.byte_epoch[i]);
  if (buf.size() < n) {
    buf.resize(n);
    raise_high_water(g_hw_bytes[i], n);
  }
  return {buf.data(), n};
}

void scratch_trim() { g_trim_epoch.fetch_add(1, std::memory_order_relaxed); }

ScratchHighWater scratch_high_water(ScratchSlot slot) {
  const std::size_t i = static_cast<std::size_t>(slot);
  return {g_hw_floats[i].load(std::memory_order_relaxed),
          g_hw_bytes[i].load(std::memory_order_relaxed)};
}

std::size_t scratch_high_water_bytes() {
  std::size_t total = 0;
  for (std::size_t i = 0; i < kSlots; ++i) {
    total += scratch_high_water(static_cast<ScratchSlot>(i)).bytes();
  }
  return total;
}

void scratch_reset_high_water() {
  for (std::size_t i = 0; i < kSlots; ++i) {
    g_hw_floats[i].store(0, std::memory_order_relaxed);
    g_hw_bytes[i].store(0, std::memory_order_relaxed);
  }
}

std::size_t scratch_thread_retained_bytes() {
  const ThreadScratch& ts = thread_scratch();
  std::size_t total = 0;
  for (const auto& b : ts.floats) total += b.capacity() * sizeof(float);
  for (const auto& b : ts.bytes) total += b.capacity();
  return total;
}

}  // namespace sesr
