// IEEE binary16 (half precision) storage type and fp32<->fp16 conversion.
//
// The fp16 inference path stores weights and activations as binary16 and
// accumulates in fp32 (see docs/PERFORMANCE.md, "Precision"), so the only
// arithmetic this module owns is conversion. Two implementations exist behind
// a runtime dispatch seam mirroring nn::set_gemm_isa:
//
//  * a scalar bit-manipulation reference (round-to-nearest-even, subnormals,
//    inf, NaN — no dependency on compiler _Float16 support), and
//  * an F16C vector kernel (VCVTPH2PS / VCVTPS2PH), compiled with
//    target("f16c,avx") and selected at startup via __builtin_cpu_supports.
//
// The two are bit-identical on every input (tests/test_fp16.cpp proves it
// exhaustively for half->float and over golden + random vectors for
// float->half); SESR_DISABLE_F16C=1 forces the scalar path so CI can exercise
// the portable implementation on x86 hosts.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace sesr::fp16 {

// Trivially copyable 16-bit storage cell. Arithmetic never happens in this
// type; kernels convert to fp32, compute, and convert back.
struct Half {
  std::uint16_t bits = 0;
};

static_assert(sizeof(Half) == 2, "Half must be exactly 16 bits");

// Scalar reference conversions (round-to-nearest-even; preserves signed
// zero, infinities, subnormals; NaNs map to quiet NaNs keeping the top 10
// payload bits — the same convention as the F16C hardware instructions).
std::uint16_t float_to_half_bits(float value);
float half_bits_to_float(std::uint16_t bits);

inline Half float_to_half(float value) { return Half{float_to_half_bits(value)}; }
inline float half_to_float(Half h) { return half_bits_to_float(h.bits); }

// Which conversion kernel the vector entry points dispatch to. kAuto picks
// F16C when the CPU supports it (and SESR_DISABLE_F16C is unset); the
// explicit values let the audit sweep both implementations on one machine.
enum class F16cIsa { kAuto, kGeneric, kF16c };

// Force the conversion dispatch; returns false (dispatch unchanged) when the
// requested ISA is unavailable. Only call between kernel invocations.
bool set_f16c_isa(F16cIsa isa);

// True when the F16C kernels are usable: CPU support present and not
// disabled via SESR_DISABLE_F16C=1.
bool f16c_supported();

// Vectorized bulk conversions (dispatched). Ranges must not overlap.
void convert_to_float(const Half* src, float* dst, std::int64_t n);
void convert_to_half(const float* src, Half* dst, std::int64_t n);

// Owning NHWC tensor of Half cells — the fp16 counterpart of sesr::Tensor
// for activations and HWIO weights on the reduced-precision path.
class HalfTensor {
 public:
  HalfTensor() = default;
  explicit HalfTensor(const Shape& shape)
      : shape_(shape), data_(static_cast<std::size_t>(shape.numel())) {}
  HalfTensor(std::int64_t n, std::int64_t h, std::int64_t w, std::int64_t c)
      : HalfTensor(Shape(n, h, w, c)) {}

  static HalfTensor from_float(const Tensor& t);
  Tensor to_float() const;

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }
  Half* raw() { return data_.data(); }
  const Half* raw() const { return data_.data(); }

 private:
  Shape shape_{0, 0, 0, 0};
  std::vector<Half> data_;
};

// a[i] = round16(a[i] + b[i]) — the fp16-storage residual add (fp32 compute,
// one rounding on the store), vectorized through the dispatch seam.
void add_inplace(HalfTensor& a, const HalfTensor& b);
// Raw form for arena-resident fp16 activations: identical chunking and
// rounding (widen both sides, add in fp32, round the sum to binary16 once).
void add_inplace(Half* a, const Half* b, std::int64_t n);

// Round every element of a float tensor through binary16 and back — the
// "what the fp16 path sees" projection used by the streaming upscaler and
// the tests.
void round_through_half(float* data, std::int64_t n);

}  // namespace sesr::fp16
