#include "tensor/tensor.hpp"

#include <stdexcept>
#include <string>

namespace sesr {

Tensor::Tensor(const Shape& shape)
    : shape_(shape), data_(static_cast<std::size_t>(shape.numel()), 0.0F) {
  if (!shape.valid()) {
    throw std::invalid_argument("Tensor: invalid shape " + shape.to_string());
  }
}

Tensor::Tensor(const Shape& shape, std::vector<float> data) : shape_(shape), data_(std::move(data)) {
  if (!shape.valid()) {
    throw std::invalid_argument("Tensor: invalid shape " + shape.to_string());
  }
  if (static_cast<std::int64_t>(data_.size()) != shape.numel()) {
    throw std::invalid_argument("Tensor: data size " + std::to_string(data_.size()) +
                                " does not match shape " + shape.to_string());
  }
}

namespace {
[[noreturn]] void throw_oob(const Shape& s, std::int64_t n, std::int64_t y, std::int64_t x,
                            std::int64_t c) {
  throw std::out_of_range("Tensor::at(" + std::to_string(n) + ", " + std::to_string(y) + ", " +
                          std::to_string(x) + ", " + std::to_string(c) + ") out of bounds for " +
                          s.to_string());
}

bool in_bounds(const Shape& s, std::int64_t n, std::int64_t y, std::int64_t x, std::int64_t c) {
  return n >= 0 && n < s.n() && y >= 0 && y < s.h() && x >= 0 && x < s.w() && c >= 0 && c < s.c();
}
}  // namespace

float& Tensor::at(std::int64_t n, std::int64_t y, std::int64_t x, std::int64_t c) {
  if (!in_bounds(shape_, n, y, x, c)) throw_oob(shape_, n, y, x, c);
  return (*this)(n, y, x, c);
}

float Tensor::at(std::int64_t n, std::int64_t y, std::int64_t x, std::int64_t c) const {
  if (!in_bounds(shape_, n, y, x, c)) throw_oob(shape_, n, y, x, c);
  return (*this)(n, y, x, c);
}

void Tensor::fill(float value) {
  for (float& v : data_) v = value;
}

void Tensor::fill_uniform(Rng& rng, float lo, float hi) {
  for (float& v : data_) v = rng.uniform(lo, hi);
}

void Tensor::fill_normal(Rng& rng, float mean, float stddev) {
  for (float& v : data_) v = rng.normal(mean, stddev);
}

Tensor Tensor::reshaped(const Shape& new_shape) const {
  if (new_shape.numel() != shape_.numel()) {
    throw std::invalid_argument("Tensor::reshaped: numel mismatch " + shape_.to_string() + " -> " +
                                new_shape.to_string());
  }
  return Tensor(new_shape, std::vector<float>(data_.begin(), data_.end()));
}

}  // namespace sesr
