// Shape of an NHWC tensor: (batch, height, width, channels).
//
// Every tensor in this library is 4-D NHWC float32, matching the layout the SESR
// paper's Algorithm 1 is written against ("First get NHWC tensor ..."). Lower-rank
// data (e.g. a flat parameter vector) uses degenerate dimensions of size 1.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace sesr {

class Shape {
 public:
  constexpr Shape() = default;
  constexpr Shape(std::int64_t n, std::int64_t h, std::int64_t w, std::int64_t c)
      : dims_{n, h, w, c} {}

  constexpr std::int64_t n() const { return dims_[0]; }
  constexpr std::int64_t h() const { return dims_[1]; }
  constexpr std::int64_t w() const { return dims_[2]; }
  constexpr std::int64_t c() const { return dims_[3]; }

  constexpr std::int64_t dim(int i) const { return dims_.at(static_cast<std::size_t>(i)); }

  // Total number of elements. Throws std::overflow_error if the product overflows.
  std::int64_t numel() const;

  // Flat offset of (n, y, x, c) in row-major NHWC order. No bounds checking here;
  // Tensor::at() performs checked access.
  constexpr std::int64_t offset(std::int64_t n, std::int64_t y, std::int64_t x,
                                std::int64_t c) const {
    return ((n * dims_[1] + y) * dims_[2] + x) * dims_[3] + c;
  }

  bool valid() const;  // all dims >= 1

  friend constexpr bool operator==(const Shape& a, const Shape& b) { return a.dims_ == b.dims_; }
  friend constexpr bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

  std::string to_string() const;  // e.g. "[2, 64, 64, 16]"

 private:
  std::array<std::int64_t, 4> dims_{0, 0, 0, 0};
};

std::ostream& operator<<(std::ostream& os, const Shape& s);

// Shape of a convolution kernel stored as a tensor: (kh, kw, in_channels, out_channels).
// This is the HWIO layout used by Algorithm 1 in the paper. Helper so call sites read
// clearly at a glance.
inline Shape kernel_shape(std::int64_t kh, std::int64_t kw, std::int64_t in_c,
                          std::int64_t out_c) {
  return Shape(kh, kw, in_c, out_c);
}

}  // namespace sesr
