#include "tensor/shape.hpp"

#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sesr {

std::int64_t Shape::numel() const {
  std::int64_t total = 1;
  for (std::int64_t d : dims_) {
    if (d < 0) throw std::invalid_argument("Shape::numel: negative dimension in " + to_string());
    if (d != 0 && total > std::numeric_limits<std::int64_t>::max() / d) {
      throw std::overflow_error("Shape::numel: element count overflows int64 for " + to_string());
    }
    total *= d;
  }
  return total;
}

bool Shape::valid() const {
  for (std::int64_t d : dims_) {
    if (d < 1) return false;
  }
  return true;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Shape& s) {
  os << '[' << s.dim(0) << ", " << s.dim(1) << ", " << s.dim(2) << ", " << s.dim(3) << ']';
  return os;
}

}  // namespace sesr
