// Minimal blocking thread pool with chunked parallel_for primitives.
//
// Work is handed out as contiguous index ranges (chunks), not single indices:
// workers grab chunks off an atomic cursor, so per-index locking never happens
// and small loop bodies are amortized over a whole range. The caller thread
// participates in chunk processing while it waits, so `threads` workers give
// `threads + 1`-way parallelism inside parallel_for.
//
// Sizing: SESR_NUM_THREADS env var; unset defaults to
// std::thread::hardware_concurrency(). 0/1 means fully serial (inline on the
// caller, no worker threads). All kernels built on this pool are deterministic
// in the thread count: they partition work by fixed grain (not by worker
// count) and fix every floating-point reduction order, so N threads and 1
// thread produce bit-identical tensors.
//
// parallel_for blocks until every index is processed; exceptions from workers
// are rethrown on the caller thread. Reentrant calls run inline (no deadlock).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sesr {

class ThreadPool {
 public:
  // threads = number of workers; 0 or 1 means "run inline on the caller".
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned worker_count() const { return static_cast<unsigned>(workers_.size()); }

  // Invokes fn(i) for every i in [begin, end), distributing contiguous chunks
  // across workers; blocks until done.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t)>& fn);

  // Range form: invokes fn(chunk_begin, chunk_end) over chunks of at most
  // `grain` indices. Chunk boundaries depend only on (begin, end, grain) —
  // never on the worker count — so callers may key deterministic reductions
  // off them. An inline (serial) pool runs the same chunks in order.
  void parallel_for_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain,
                           const std::function<void(std::int64_t, std::int64_t)>& fn);

  // Process-wide pool sized from SESR_NUM_THREADS (default: hardware
  // concurrency).
  static ThreadPool& global();

  // Replaces the process-wide pool (drains the old one first). Intended for
  // tests and benchmarks that compare thread counts; not safe to call while
  // another thread is inside the global pool.
  static void set_global_threads(unsigned threads);

 private:
  struct Batch {
    std::int64_t begin = 0;
    std::int64_t grain = 1;
    std::int64_t chunk_count = 0;
    std::int64_t end = 0;
    std::atomic<std::int64_t> next_chunk{0};
    std::int64_t remaining = 0;  // chunks not yet completed (guarded by mutex_)
    const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
    std::exception_ptr error;  // first failure (guarded by mutex_)
  };

  void worker_loop();
  // Runs chunks off the current batch until the cursor is exhausted; returns
  // the number of chunks this thread completed.
  std::int64_t drain_chunks();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  Batch batch_;
  bool has_batch_ = false;
  bool shutting_down_ = false;
};

}  // namespace sesr
