// Minimal blocking thread pool with chunked parallel_for primitives.
//
// Work is handed out as contiguous index ranges (chunks), not single indices:
// threads grab chunks off an atomic cursor, so per-index locking never happens
// and small loop bodies are amortized over a whole range. The caller thread
// participates in chunk processing while it waits, so a pool of size N
// computes N-wide: N-1 worker threads plus the caller.
//
// Sizing: SESR_NUM_THREADS env var = total compute threads; unset defaults to
// std::thread::hardware_concurrency(). 0/1 means fully serial (inline on the
// caller, no worker threads). All kernels built on this pool are deterministic
// in the thread count: they partition work by fixed grain (not by worker
// count) and fix every floating-point reduction order, so N threads and 1
// thread produce bit-identical tensors.
//
// parallel_for / parallel_for_chunks are templates over the callable: the
// loop body is invoked through a captureless trampoline (function pointer +
// context pointer), never through std::function, so submitting work performs
// no type-erasure allocation. An inline (serial) pool dispatches with zero
// heap traffic — the property the steady-state allocation regression test
// (tests/test_alloc.cpp) pins down; a threaded pool allocates exactly one
// small batch header per call.
//
// Each threaded call installs one heap-allocated batch; workers snapshot a
// shared_ptr to it while holding the pool mutex and only ever drain the batch
// they were admitted to, so a worker that wakes late can never touch the next
// batch's cursor or a caller-owned function object that has already been
// destroyed. At most one batch is in flight per pool: concurrent submissions
// from distinct non-worker threads serialize (second submitter blocks until
// the slot frees), while reentrant calls from inside a loop body run inline
// (no deadlock).
//
// parallel_for blocks until every index is processed; exceptions from workers
// are rethrown on the caller thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sesr {

class ThreadPool {
 public:
  // threads = total compute width including the caller thread, so N-1 workers
  // are spawned; 0 or 1 means "run inline on the caller".
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned worker_count() const { return static_cast<unsigned>(workers_.size()); }

  // Invokes fn(i) for every i in [begin, end), distributing contiguous chunks
  // across workers; blocks until done.
  template <typename F>
  void parallel_for(std::int64_t begin, std::int64_t end, const F& fn) {
    if (begin >= end) return;
    // ~4 chunks per way of parallelism keeps the tail balanced without paying
    // one dispatch per index.
    const std::int64_t ways = static_cast<std::int64_t>(worker_count()) + 1;
    const std::int64_t grain = std::max<std::int64_t>(1, (end - begin) / (ways * 4));
    run_chunks(begin, end, grain, &invoke_indexed<F>, &fn);
  }

  // Range form: invokes fn(chunk_begin, chunk_end) over chunks of at most
  // `grain` indices. Chunk boundaries depend only on (begin, end, grain) —
  // never on the worker count — so callers may key deterministic reductions
  // off them. An inline (serial) pool runs the same chunks in order.
  template <typename F>
  void parallel_for_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain, const F& fn) {
    run_chunks(begin, end, grain, &invoke_range<F>, &fn);
  }

  // Process-wide pool sized from SESR_NUM_THREADS (default: hardware
  // concurrency).
  static ThreadPool& global();

  // Replaces the process-wide pool (drains the old one first). Intended for
  // tests and benchmarks that compare thread counts; not safe to call while
  // another thread is inside the global pool.
  static void set_global_threads(unsigned threads);

 private:
  // Non-owning callable: `invoke(ctx, lo, hi)` runs the submitter's loop body
  // over one chunk. The templates above synthesize captureless trampolines, so
  // the body is reached without constructing a std::function.
  using ChunkFn = void (*)(const void* ctx, std::int64_t lo, std::int64_t hi);

  template <typename F>
  static void invoke_indexed(const void* ctx, std::int64_t lo, std::int64_t hi) {
    const F& fn = *static_cast<const F*>(ctx);
    for (std::int64_t i = lo; i < hi; ++i) fn(i);
  }

  template <typename F>
  static void invoke_range(const void* ctx, std::int64_t lo, std::int64_t hi) {
    (*static_cast<const F*>(ctx))(lo, hi);
  }

  // One chunked invocation. Heap-allocated and shared so a worker holding a
  // stale snapshot can only ever see an exhausted cursor, never the fields of
  // a successor batch. `ctx` points at the submitter's loop body; it stays
  // valid because the submitter cannot return before `remaining` hits zero,
  // and no thread dereferences it after claiming a chunk index >= chunk_count.
  struct Batch {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int64_t grain = 1;
    std::int64_t chunk_count = 0;
    std::atomic<std::int64_t> next_chunk{0};
    std::int64_t remaining = 0;  // chunks not yet completed (guarded by mutex_)
    ChunkFn invoke = nullptr;
    const void* ctx = nullptr;
    std::exception_ptr error;  // first failure (guarded by mutex_)
  };

  // The untemplated submission path behind parallel_for / parallel_for_chunks.
  void run_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain, ChunkFn invoke,
                  const void* ctx);

  void worker_loop();
  // Runs chunks off `batch` until its cursor is exhausted; returns the number
  // of chunks this thread completed.
  std::int64_t drain_chunks(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  std::shared_ptr<Batch> batch_;  // non-null while a batch is in flight (guarded by mutex_)
  bool shutting_down_ = false;
};

}  // namespace sesr
