// Minimal blocking thread pool with a parallel_for primitive.
//
// The convolution layer parallelizes across batch images when the pool has
// more than one worker (SESR_NUM_THREADS env var; default 1 = fully serial,
// keeping single-core CI runs deterministic and oversubscription-free).
// parallel_for blocks until every index is processed; exceptions from workers
// are rethrown on the caller thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sesr {

class ThreadPool {
 public:
  // threads = number of workers; 0 or 1 means "run inline on the caller".
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned worker_count() const { return static_cast<unsigned>(workers_.size()); }

  // Invokes fn(i) for every i in [begin, end), distributing indices across
  // workers; blocks until done. Reentrant calls run inline (no deadlock).
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t)>& fn);

  // Process-wide pool sized from SESR_NUM_THREADS (default 1).
  static ThreadPool& global();

 private:
  struct Batch {
    std::int64_t next = 0;
    std::int64_t end = 0;
    const std::function<void(std::int64_t)>* fn = nullptr;
    std::int64_t remaining = 0;  // indices not yet completed
    std::exception_ptr error;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  Batch batch_;
  bool has_batch_ = false;
  bool shutting_down_ = false;
};

}  // namespace sesr
