// Per-thread scratch arena for kernel workspace buffers.
//
// Hot paths (im2col lowering, GEMM packing, striped gradient partials) need
// short-lived float buffers on every call; allocating them per call dominates
// steady-state training time. Each thread owns one growable buffer per slot:
// the first call allocates, later calls reuse the retained capacity, so
// steady-state runs do no allocation at all.
//
// Ownership rules (see docs/PERFORMANCE.md):
//  - A span is valid until the SAME slot is requested again on the SAME thread.
//  - Slots are per call site: two live buffers in one kernel must use two slots.
//  - Never hand a span to another thread that may re-request the slot; sharing
//    the memory read/write across a parallel_for from the owning thread is fine
//    (the workers never touch the arena slot itself).
//
// Retention is grow-only by default, which means one oversized request (a 4K
// tile fan-out) would pin peak RSS for the process lifetime. scratch_trim()
// bumps a process-wide epoch; every thread releases its retained capacity the
// next time it asks for scratch, so trimming is safe to request from any
// thread at any time — no buffer is freed while a kernel may still hold its
// span. Per-slot high-water marks record the largest request ever served so
// the retained footprint stays observable after a trim.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace sesr {

enum class ScratchSlot : std::size_t {
  kGemmPackA = 0,   // packed A panels inside gemm
  kGemmPackB,       // packed B panels inside gemm
  kIm2col,          // per-stripe im2col patch matrix (conv forward / weight grad)
  kConvCols,        // full-image column matrix (conv backward input)
  kGradPartial,     // per-stripe weight/bias gradient partials
  kF16StageA,       // fp32 row buffer for the fp16 GEMM's A-pack widening
  kF16StageB,       // fp32 row buffer for the fp16 GEMM's B-pack widening
  kF16OutStripe,    // fp32 conv output stripe before the fp16 store
  kS8PackA,         // packed u8 activation panels inside the int8 GEMM
  kS8PackB,         // packed s8 weight panels inside the int8 GEMM
  kS8Quant,         // bulk-quantized u8 input image (int8 conv forward)
  kS8Dequant,       // per-channel dequant scales (int8 conv forward)
  kSlotCount,
};

// Returns this thread's buffer for `slot`, grown to at least `n` floats.
// Contents are unspecified (callers overwrite or explicitly zero).
std::span<float> scratch_floats(ScratchSlot slot, std::size_t n);

// Byte-typed variant for the int8 kernels' packed panels. Slots are shared
// with scratch_floats only in name: each slot owns one float buffer AND one
// byte buffer per thread, so requesting bytes never invalidates a float span
// of the same slot (the int8 slots above only ever use the byte side).
std::span<std::uint8_t> scratch_bytes(ScratchSlot slot, std::size_t n);

// Asks every thread to release its retained scratch capacity. Deferred per
// slot: a thread frees a buffer only at that buffer's own next request, so a
// span handed out before the trim stays valid exactly as long as the ownership
// rule above already promised — even for a kernel mid-flight when the trim
// lands. Serve workers call this after finishing an oversized tile fan-out;
// high-water marks are NOT reset.
void scratch_trim();

// Largest request (in elements) ever served for one slot, across all threads
// since process start (or the last scratch_reset_high_water()).
struct ScratchHighWater {
  std::size_t float_elems = 0;
  std::size_t byte_elems = 0;
  std::size_t bytes() const { return float_elems * sizeof(float) + byte_elems; }
};
ScratchHighWater scratch_high_water(ScratchSlot slot);

// Sum of per-slot high-water bytes — an upper bound on one thread's retained
// scratch footprint between trims.
std::size_t scratch_high_water_bytes();

// Test seam: clears all high-water marks.
void scratch_reset_high_water();

// Bytes currently retained by THIS thread's scratch buffers (both sides of
// every slot). Test seam for observing trim behaviour.
std::size_t scratch_thread_retained_bytes();

}  // namespace sesr
