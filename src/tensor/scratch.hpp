// Per-thread scratch arena for kernel workspace buffers.
//
// Hot paths (im2col lowering, GEMM packing, striped gradient partials) need
// short-lived float buffers on every call; allocating them per call dominates
// steady-state training time. Each thread owns one growable buffer per slot:
// the first call allocates, later calls reuse the retained capacity, so
// steady-state runs do no allocation at all.
//
// Ownership rules (see docs/PERFORMANCE.md):
//  - A span is valid until the SAME slot is requested again on the SAME thread.
//  - Slots are per call site: two live buffers in one kernel must use two slots.
//  - Never hand a span to another thread that may re-request the slot; sharing
//    the memory read/write across a parallel_for from the owning thread is fine
//    (the workers never touch the arena slot itself).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace sesr {

enum class ScratchSlot : std::size_t {
  kGemmPackA = 0,   // packed A panels inside gemm
  kGemmPackB,       // packed B panels inside gemm
  kIm2col,          // per-stripe im2col patch matrix (conv forward / weight grad)
  kConvCols,        // full-image column matrix (conv backward input)
  kGradPartial,     // per-stripe weight/bias gradient partials
  kF16StageA,       // fp32 row buffer for the fp16 GEMM's A-pack widening
  kF16StageB,       // fp32 row buffer for the fp16 GEMM's B-pack widening
  kF16OutStripe,    // fp32 conv output stripe before the fp16 store
  kS8PackA,         // packed u8 activation panels inside the int8 GEMM
  kS8PackB,         // packed s8 weight panels inside the int8 GEMM
  kSlotCount,
};

// Returns this thread's buffer for `slot`, grown to at least `n` floats.
// Contents are unspecified (callers overwrite or explicitly zero).
std::span<float> scratch_floats(ScratchSlot slot, std::size_t n);

// Byte-typed variant for the int8 kernels' packed panels. Slots are shared
// with scratch_floats only in name: each slot owns one float buffer AND one
// byte buffer per thread, so requesting bytes never invalidates a float span
// of the same slot (the int8 slots above only ever use the byte side).
std::span<std::uint8_t> scratch_bytes(ScratchSlot slot, std::size_t n);

}  // namespace sesr
