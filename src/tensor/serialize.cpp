#include "tensor/serialize.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace sesr {

namespace {
constexpr std::array<char, 4> kMagic{'S', 'E', 'S', 'R'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("serialize: truncated stream");
  return v;
}
}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  for (int i = 0; i < 4; ++i) write_pod(os, t.shape().dim(i));
  os.write(reinterpret_cast<const char*>(t.raw()),
           static_cast<std::streamsize>(t.numel() * static_cast<std::int64_t>(sizeof(float))));
  if (!os) throw std::runtime_error("serialize: write failed");
}

Tensor read_tensor(std::istream& is) {
  std::array<std::int64_t, 4> dims{};
  for (auto& d : dims) d = read_pod<std::int64_t>(is);
  Shape shape(dims[0], dims[1], dims[2], dims[3]);
  if (!shape.valid()) throw std::runtime_error("serialize: invalid shape " + shape.to_string());
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.raw()),
          static_cast<std::streamsize>(t.numel() * static_cast<std::int64_t>(sizeof(float))));
  if (!is) throw std::runtime_error("serialize: truncated tensor data");
  return t;
}

void save_tensors(const std::string& path, const TensorMap& tensors) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_tensors: cannot open " + path);
  os.write(kMagic.data(), kMagic.size());
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(tensors.size()));
  for (const auto& [name, tensor] : tensors) {
    write_pod(os, static_cast<std::uint64_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_tensor(os, tensor);
  }
  if (!os) throw std::runtime_error("save_tensors: write failed for " + path);
}

TensorMap load_tensors(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_tensors: cannot open " + path);
  std::array<char, 4> magic{};
  is.read(magic.data(), magic.size());
  if (!is || magic != kMagic) throw std::runtime_error("load_tensors: bad magic in " + path);
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kVersion) {
    throw std::runtime_error("load_tensors: unsupported version " + std::to_string(version));
  }
  const auto count = read_pod<std::uint64_t>(is);
  TensorMap out;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint64_t>(is);
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!is) throw std::runtime_error("load_tensors: truncated name");
    out.emplace(std::move(name), read_tensor(is));
  }
  return out;
}

}  // namespace sesr
