// The property-sweep engine of the numerical audit.
//
// An AuditPair binds one optimized code path to its double-precision
// reference: its `trial` callback draws a random configuration (shape,
// stride, alignment, data) from a seed, runs both paths, and reports the
// error. The engine sweeps every pair over many seeds and over multiple
// global thread counts, checks each trial against the pair's tolerances,
// and verifies that the optimized output is bit-identical across thread
// counts (the repo's determinism promise).
//
// A trial FAILS only when its error exceeds BOTH tolerances — max-abs and
// max-ULP — so each pair can be tight in the metric that suits its value
// range (see docs/AUDIT.md). Every failure records the seed that produced
// it; `sesr-audit --replay <seed> --pair <name>` reruns exactly that trial.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "check/compare.hpp"

namespace sesr::check {

struct TrialResult {
  ErrorStats stats;
  std::string detail;             // human-readable configuration, e.g. "m=13 k=64 n=48"
  std::uint64_t output_hash = 0;  // bit hash of the optimized output
  bool skipped = false;           // pair not applicable (e.g. AVX2 on a non-AVX2 CPU)
};

struct AuditPair {
  std::string name;
  std::string description;
  double tol_abs = 0.0;
  double tol_ulp = 0.0;
  std::function<TrialResult(std::uint64_t seed)> trial;
};

// One executed trial, kept when it fails (or for replay output).
struct TrialRecord {
  std::uint64_t seed = 0;
  unsigned threads = 0;
  TrialResult result;
};

struct PairReport {
  std::string name;
  double tol_abs = 0.0;
  double tol_ulp = 0.0;
  ErrorStats worst;               // across all passing + failing trials
  std::string worst_detail;
  std::int64_t trials_run = 0;
  std::int64_t trials_skipped = 0;
  std::vector<TrialRecord> failures;
  // Seeds whose optimized output hashed differently across thread counts.
  std::vector<std::uint64_t> nondeterministic_seeds;

  bool passed() const { return failures.empty() && nondeterministic_seeds.empty(); }
};

struct AuditOptions {
  int trials = 32;
  std::uint64_t base_seed = 0x5E5A0D17ULL;
  std::vector<unsigned> thread_counts = {1, 4};
  std::vector<std::string> pair_filter;  // empty = every builtin pair
};

// Deterministic per-trial seed: splitmix64 over (base, pair name, index).
// Printed on failure; --replay feeds it straight back into the pair.
std::uint64_t trial_seed(std::uint64_t base_seed, std::string_view pair_name, int trial_index);

// The registered optimized-vs-reference pairs (src/check/audits.cpp).
const std::vector<AuditPair>& builtin_pairs();
const AuditPair* find_pair(std::string_view name);

// Sweep `options.trials` seeds per pair per thread count. Restores the global
// thread pool to its prior width before returning.
std::vector<PairReport> run_audit(const AuditOptions& options);

// Rerun one pair on one explicit seed (the replay path). Runs under every
// requested thread count and reports like a one-trial sweep.
PairReport replay_trial(const AuditPair& pair, std::uint64_t seed,
                        const std::vector<unsigned>& thread_counts);

bool all_passed(const std::vector<PairReport>& reports);

void print_report(std::ostream& os, const std::vector<PairReport>& reports,
                  const AuditOptions& options);

}  // namespace sesr::check
