#include "check/audit.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "tensor/thread_pool.hpp"

namespace sesr::check {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// A trial fails only when it exceeds BOTH tolerances; each pair is tight in
// the metric that suits its value range and loose in the other.
bool trial_passed(const AuditPair& pair, const TrialResult& r) {
  if (r.skipped) return true;
  return !(r.stats.max_abs > pair.tol_abs && r.stats.max_ulp > pair.tol_ulp);
}

// RAII restore of the global pool width. worker_count() is N-1 workers for a
// pool of compute width N (the caller participates), so width = workers + 1.
class ThreadPoolGuard {
 public:
  ThreadPoolGuard() : saved_width_(ThreadPool::global().worker_count() + 1) {}
  ~ThreadPoolGuard() { ThreadPool::set_global_threads(saved_width_); }
  ThreadPoolGuard(const ThreadPoolGuard&) = delete;
  ThreadPoolGuard& operator=(const ThreadPoolGuard&) = delete;

 private:
  unsigned saved_width_;
};

// Run one seed of one pair under every thread count, folding the results into
// `report`. The first thread count's stats drive pass/fail; the remaining
// runs exist to cross-check the output hash (thread-count determinism).
void run_one_seed(const AuditPair& pair, std::uint64_t seed,
                  const std::vector<unsigned>& thread_counts, PairReport& report) {
  bool have_hash = false;
  std::uint64_t first_hash = 0;
  bool hash_mismatch = false;
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    ThreadPool::set_global_threads(thread_counts[t]);
    TrialResult result = pair.trial(seed);
    if (result.skipped) {
      if (t == 0) ++report.trials_skipped;
      continue;
    }
    if (!have_hash) {
      have_hash = true;
      first_hash = result.output_hash;
    } else if (result.output_hash != first_hash) {
      hash_mismatch = true;
    }
    if (t == 0) {
      ++report.trials_run;
      if (result.stats.max_ulp > report.worst.max_ulp || report.worst.count == 0) {
        report.worst_detail = result.detail;
      }
      report.worst.merge(result.stats);
      if (!trial_passed(pair, result)) {
        report.failures.push_back({seed, thread_counts[t], std::move(result)});
      }
    }
  }
  if (hash_mismatch) report.nondeterministic_seeds.push_back(seed);
}

PairReport make_report(const AuditPair& pair) {
  PairReport report;
  report.name = pair.name;
  report.tol_abs = pair.tol_abs;
  report.tol_ulp = pair.tol_ulp;
  return report;
}

}  // namespace

std::uint64_t trial_seed(std::uint64_t base_seed, std::string_view pair_name, int trial_index) {
  std::uint64_t h = splitmix64(base_seed);
  for (const char c : pair_name) {
    h = splitmix64(h ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  return splitmix64(h ^ static_cast<std::uint64_t>(trial_index));
}

const AuditPair* find_pair(std::string_view name) {
  for (const AuditPair& pair : builtin_pairs()) {
    if (pair.name == name) return &pair;
  }
  return nullptr;
}

std::vector<PairReport> run_audit(const AuditOptions& options) {
  if (options.thread_counts.empty()) {
    throw std::invalid_argument("run_audit: need at least one thread count");
  }
  std::vector<PairReport> reports;
  ThreadPoolGuard guard;
  for (const AuditPair& pair : builtin_pairs()) {
    if (!options.pair_filter.empty() &&
        std::find(options.pair_filter.begin(), options.pair_filter.end(), pair.name) ==
            options.pair_filter.end()) {
      continue;
    }
    PairReport report = make_report(pair);
    for (int i = 0; i < options.trials; ++i) {
      run_one_seed(pair, trial_seed(options.base_seed, pair.name, i), options.thread_counts,
                   report);
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

PairReport replay_trial(const AuditPair& pair, std::uint64_t seed,
                        const std::vector<unsigned>& thread_counts) {
  if (thread_counts.empty()) {
    throw std::invalid_argument("replay_trial: need at least one thread count");
  }
  ThreadPoolGuard guard;
  PairReport report = make_report(pair);
  run_one_seed(pair, seed, thread_counts, report);
  return report;
}

bool all_passed(const std::vector<PairReport>& reports) {
  return std::all_of(reports.begin(), reports.end(),
                     [](const PairReport& r) { return r.passed(); });
}

void print_report(std::ostream& os, const std::vector<PairReport>& reports,
                  const AuditOptions& options) {
  os << "sesr-audit: " << reports.size() << " pair(s), " << options.trials
     << " trial(s) each, threads {";
  for (std::size_t i = 0; i < options.thread_counts.size(); ++i) {
    os << (i ? "," : "") << options.thread_counts[i];
  }
  os << "}, base seed 0x" << std::hex << options.base_seed << std::dec << "\n\n";

  for (const PairReport& r : reports) {
    os << (r.passed() ? "PASS " : "FAIL ") << std::left << std::setw(24) << r.name
       << std::right << " trials=" << r.trials_run;
    if (r.trials_skipped > 0) os << " skipped=" << r.trials_skipped;
    os << std::scientific << std::setprecision(3) << " max_abs=" << r.worst.max_abs
       << " max_ulp=" << r.worst.max_ulp << std::defaultfloat
       << " (tol abs " << r.tol_abs << " / ulp " << r.tol_ulp << ")";
    if (!r.worst_detail.empty()) os << "  [" << r.worst_detail << "]";
    os << "\n";
    for (const TrialRecord& f : r.failures) {
      os << "    VIOLATION seed=" << f.seed << " threads=" << f.threads << " "
         << f.result.detail << std::scientific << std::setprecision(6)
         << " max_abs=" << f.result.stats.max_abs << " max_ulp=" << f.result.stats.max_ulp
         << " worst@" << f.result.stats.worst_index << " got=" << f.result.stats.worst_got
         << " want=" << f.result.stats.worst_want << std::defaultfloat << "\n"
         << "      replay: sesr-audit --pair " << r.name << " --replay " << f.seed << "\n";
    }
    for (const std::uint64_t seed : r.nondeterministic_seeds) {
      os << "    NONDETERMINISTIC across thread counts: seed=" << seed << "\n"
         << "      replay: sesr-audit --pair " << r.name << " --replay " << seed << "\n";
    }
  }
  os << "\n"
     << (all_passed(reports) ? "audit OK" : "audit FAILED") << "\n";
}

}  // namespace sesr::check
