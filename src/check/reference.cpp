#include "check/reference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "data/resize.hpp"

namespace sesr::check {

DTensor to_dtensor(const Tensor& t) {
  DTensor d(t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    d.data[static_cast<std::size_t>(i)] = static_cast<double>(t.raw()[i]);
  }
  return d;
}

std::vector<double> ref_gemm(std::span<const float> a, std::span<const float> b, std::int64_t m,
                             std::int64_t k, std::int64_t n) {
  if (static_cast<std::int64_t>(a.size()) != m * k ||
      static_cast<std::int64_t>(b.size()) != k * n) {
    throw std::invalid_argument("ref_gemm: size mismatch");
  }
  std::vector<double> c(static_cast<std::size_t>(m * n), 0.0);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[static_cast<std::size_t>(i * k + p)]) *
               static_cast<double>(b[static_cast<std::size_t>(p * n + j)]);
      }
      c[static_cast<std::size_t>(i * n + j)] = acc;
    }
  }
  return c;
}

DTensor ref_conv2d(const DTensor& input, const Tensor& weight, const nn::ConvGeometry& g) {
  const Shape& is = input.shape;
  const Shape& ws = weight.shape();
  if (is.c() != ws.dim(2)) throw std::invalid_argument("ref_conv2d: channel mismatch");
  const std::int64_t out_c = ws.dim(3);
  DTensor out(Shape(is.n(), g.out_h, g.out_w, out_c));
  for (std::int64_t n = 0; n < is.n(); ++n) {
    for (std::int64_t oy = 0; oy < g.out_h; ++oy) {
      for (std::int64_t ox = 0; ox < g.out_w; ++ox) {
        for (std::int64_t oc = 0; oc < out_c; ++oc) {
          double acc = 0.0;
          for (std::int64_t ky = 0; ky < g.kh; ++ky) {
            const std::int64_t iy = oy * g.stride - g.pad_top + ky;
            if (iy < 0 || iy >= is.h()) continue;
            for (std::int64_t kx = 0; kx < g.kw; ++kx) {
              const std::int64_t ix = ox * g.stride - g.pad_left + kx;
              if (ix < 0 || ix >= is.w()) continue;
              for (std::int64_t ic = 0; ic < is.c(); ++ic) {
                acc += input(n, iy, ix, ic) *
                       static_cast<double>(weight(ky, kx, ic, oc));
              }
            }
          }
          out(n, oy, ox, oc) = acc;
        }
      }
    }
  }
  return out;
}

DTensor ref_conv2d(const Tensor& input, const Tensor& weight, const nn::ConvGeometry& g) {
  return ref_conv2d(to_dtensor(input), weight, g);
}

DTensor ref_depth_to_space(const DTensor& input, std::int64_t block) {
  const Shape& s = input.shape;
  if (s.c() % (block * block) != 0) {
    throw std::invalid_argument("ref_depth_to_space: channels not divisible by block^2");
  }
  const std::int64_t out_c = s.c() / (block * block);
  DTensor out(Shape(s.n(), s.h() * block, s.w() * block, out_c));
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t y = 0; y < s.h(); ++y) {
      for (std::int64_t x = 0; x < s.w(); ++x) {
        for (std::int64_t dy = 0; dy < block; ++dy) {
          for (std::int64_t dx = 0; dx < block; ++dx) {
            for (std::int64_t c = 0; c < out_c; ++c) {
              out(n, y * block + dy, x * block + dx, c) =
                  input(n, y, x, (dy * block + dx) * out_c + c);
            }
          }
        }
      }
    }
  }
  return out;
}

namespace {

// Symmetric mirror with edge repeat (-1 -> 0, -2 -> 1, ..., n -> n-1), the
// MATLAB imresize boundary rule. Kept separate from data::resize's copy so
// the audit exercises two independently written implementations.
std::int64_t ref_mirror(std::int64_t i, std::int64_t size) {
  const std::int64_t period = 2 * size;
  i %= period;
  if (i < 0) i += period;
  return i < size ? i : period - 1 - i;
}

// Resample one output coordinate along one axis: evaluate the (antialiased)
// cubic window directly against `line`, mirror out-of-range taps, normalize.
double ref_resample_1d(std::int64_t o, std::int64_t in_size, double ratio,
                       const std::vector<double>& line) {
  const double support_scale = std::max(1.0, ratio);
  const double support = 2.0 * support_scale;
  const double center = (static_cast<double>(o) + 0.5) * ratio - 0.5;
  const std::int64_t first = static_cast<std::int64_t>(std::floor(center - support + 0.5));
  const std::int64_t last = static_cast<std::int64_t>(std::floor(center + support + 0.5));
  double acc = 0.0;
  double total = 0.0;
  for (std::int64_t i = first; i <= last; ++i) {
    const double w = data::cubic_kernel((static_cast<double>(i) - center) / support_scale);
    if (w == 0.0) continue;
    acc += w * line[static_cast<std::size_t>(ref_mirror(i, in_size))];
    total += w;
  }
  return acc / total;
}

}  // namespace

DTensor ref_resize_bicubic(const Tensor& input, std::int64_t out_h, std::int64_t out_w) {
  const Shape& s = input.shape();
  if (s.h() < 1 || s.w() < 1 || out_h < 1 || out_w < 1) {
    throw std::invalid_argument("ref_resize_bicubic: empty dimension");
  }
  const double ratio_h = static_cast<double>(s.h()) / static_cast<double>(out_h);
  const double ratio_w = static_cast<double>(s.w()) / static_cast<double>(out_w);

  // Vertical pass in double.
  DTensor mid(Shape(s.n(), out_h, s.w(), s.c()));
  std::vector<double> line(static_cast<std::size_t>(s.h()));
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t x = 0; x < s.w(); ++x) {
      for (std::int64_t c = 0; c < s.c(); ++c) {
        for (std::int64_t y = 0; y < s.h(); ++y) {
          line[static_cast<std::size_t>(y)] = static_cast<double>(input(n, y, x, c));
        }
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          mid(n, oy, x, c) = ref_resample_1d(oy, s.h(), ratio_h, line);
        }
      }
    }
  }

  // Horizontal pass in double (no float rounding of the intermediate).
  DTensor out(Shape(s.n(), out_h, out_w, s.c()));
  line.assign(static_cast<std::size_t>(s.w()), 0.0);
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t y = 0; y < out_h; ++y) {
      for (std::int64_t c = 0; c < s.c(); ++c) {
        for (std::int64_t x = 0; x < s.w(); ++x) {
          line[static_cast<std::size_t>(x)] = mid(n, y, x, c);
        }
        for (std::int64_t ox = 0; ox < out_w; ++ox) {
          out(n, y, ox, c) = ref_resample_1d(ox, s.w(), ratio_w, line);
        }
      }
    }
  }
  return out;
}

double ref_psnr(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) throw std::invalid_argument("ref_psnr: shape mismatch");
  if (a.numel() == 0) throw std::invalid_argument("ref_psnr: empty tensors");
  // Kahan-compensated sum of squared differences.
  double sum = 0.0;
  double comp = 0.0;
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a.raw()[i]) - static_cast<double>(b.raw()[i]);
    const double term = d * d - comp;
    const double next = sum + term;
    comp = (next - sum) - term;
    sum = next;
  }
  const double mse = sum / static_cast<double>(n);
  if (mse <= 0.0) return 100.0;
  return 10.0 * std::log10(1.0 / mse);
}

namespace {

constexpr std::int64_t kSsimWindow = 11;
constexpr double kSsimSigma = 1.5;
constexpr double kSsimC1 = 0.01 * 0.01;
constexpr double kSsimC2 = 0.03 * 0.03;

std::vector<double> ssim_gaussian() {
  std::vector<double> w(kSsimWindow * kSsimWindow);
  const std::int64_t r = kSsimWindow / 2;
  double total = 0.0;
  for (std::int64_t y = -r; y <= r; ++y) {
    for (std::int64_t x = -r; x <= r; ++x) {
      const double v =
          std::exp(-(static_cast<double>(y * y + x * x)) / (2.0 * kSsimSigma * kSsimSigma));
      w[static_cast<std::size_t>((y + r) * kSsimWindow + (x + r))] = v;
      total += v;
    }
  }
  for (double& v : w) v /= total;
  return w;
}

}  // namespace

double ref_ssim(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) throw std::invalid_argument("ref_ssim: shape mismatch");
  const Shape& s = a.shape();
  if (s.h() < kSsimWindow || s.w() < kSsimWindow) {
    throw std::invalid_argument("ref_ssim: image smaller than the 11x11 window");
  }
  static const std::vector<double> window = ssim_gaussian();
  const std::int64_t r = kSsimWindow / 2;
  double total = 0.0;
  std::int64_t count = 0;
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t c = 0; c < s.c(); ++c) {
      for (std::int64_t y = r; y < s.h() - r; ++y) {
        for (std::int64_t x = r; x < s.w() - r; ++x) {
          // Pass 1: weighted means.
          double mu_a = 0.0;
          double mu_b = 0.0;
          for (std::int64_t dy = -r; dy <= r; ++dy) {
            for (std::int64_t dx = -r; dx <= r; ++dx) {
              const double w =
                  window[static_cast<std::size_t>((dy + r) * kSsimWindow + (dx + r))];
              mu_a += w * a(n, y + dy, x + dx, c);
              mu_b += w * b(n, y + dy, x + dx, c);
            }
          }
          // Pass 2: centered moments — non-negative by construction, no
          // catastrophic cancellation possible.
          double var_a = 0.0;
          double var_b = 0.0;
          double cov = 0.0;
          for (std::int64_t dy = -r; dy <= r; ++dy) {
            for (std::int64_t dx = -r; dx <= r; ++dx) {
              const double w =
                  window[static_cast<std::size_t>((dy + r) * kSsimWindow + (dx + r))];
              const double da = a(n, y + dy, x + dx, c) - mu_a;
              const double db = b(n, y + dy, x + dx, c) - mu_b;
              var_a += w * da * da;
              var_b += w * db * db;
              cov += w * da * db;
            }
          }
          const double num = (2.0 * mu_a * mu_b + kSsimC1) * (2.0 * cov + kSsimC2);
          const double den =
              (mu_a * mu_a + mu_b * mu_b + kSsimC1) * (var_a + var_b + kSsimC2);
          total += num / den;
          ++count;
        }
      }
    }
  }
  return total / static_cast<double>(count);
}

namespace {

// Shared int64-accumulating core for the int8 references. Returns the raw
// integer accumulators; throws if any exceeds int32 range.
std::vector<std::int64_t> int8_accumulate(const core::QuantizedTensor& input,
                                          const core::QuantizedTensor& weight) {
  const Shape& is = input.shape;
  const Shape& ws = weight.shape;
  if (is.c() != ws.dim(2)) throw std::invalid_argument("ref_conv2d_int8: channel mismatch");
  const nn::ConvGeometry g = nn::same_geometry(is.h(), is.w(), is.c(), ws.dim(0), ws.dim(1));
  const std::int64_t out_c = ws.dim(3);
  std::vector<std::int64_t> acc(
      static_cast<std::size_t>(is.n() * g.out_h * g.out_w * out_c), 0);
  std::size_t idx = 0;
  for (std::int64_t n = 0; n < is.n(); ++n) {
    for (std::int64_t oy = 0; oy < g.out_h; ++oy) {
      for (std::int64_t ox = 0; ox < g.out_w; ++ox) {
        for (std::int64_t oc = 0; oc < out_c; ++oc, ++idx) {
          std::int64_t sum = 0;
          for (std::int64_t ky = 0; ky < g.kh; ++ky) {
            const std::int64_t iy = oy - g.pad_top + ky;
            if (iy < 0 || iy >= is.h()) continue;
            for (std::int64_t kx = 0; kx < g.kw; ++kx) {
              const std::int64_t ix = ox - g.pad_left + kx;
              if (ix < 0 || ix >= is.w()) continue;
              for (std::int64_t ic = 0; ic < is.c(); ++ic) {
                const std::int64_t xv =
                    input.values[static_cast<std::size_t>(is.offset(n, iy, ix, ic))];
                const std::int64_t wv =
                    weight.values[static_cast<std::size_t>(ws.offset(ky, kx, ic, oc))];
                sum += xv * wv;
              }
            }
          }
          if (sum > std::numeric_limits<std::int32_t>::max() ||
              sum < std::numeric_limits<std::int32_t>::min()) {
            throw std::overflow_error(
                "ref_conv2d_int8: exact accumulation exceeds int32 — the optimized "
                "conv2d_int8 accumulator is too narrow for this shape");
          }
          acc[idx] = sum;
        }
      }
    }
  }
  return acc;
}

}  // namespace

DTensor ref_conv2d_int8(const core::QuantizedTensor& input, const core::QuantizedTensor& weight) {
  const Shape& is = input.shape;
  const Shape& ws = weight.shape;
  const nn::ConvGeometry g = nn::same_geometry(is.h(), is.w(), is.c(), ws.dim(0), ws.dim(1));
  const std::vector<std::int64_t> acc = int8_accumulate(input, weight);
  DTensor out(Shape(is.n(), g.out_h, g.out_w, ws.dim(3)));
  const double out_scale = static_cast<double>(input.scale) * static_cast<double>(weight.scale);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    out.data[i] = static_cast<double>(acc[i]) * out_scale;
  }
  return out;
}

namespace {

// The optimized dequantization, replayed exactly: float(acc32) * float scale
// product. Only the accumulation differs (int64 with a range check).
Tensor int8_conv_exact(const core::QuantizedTensor& input, const core::QuantizedTensor& weight) {
  const Shape& is = input.shape;
  const Shape& ws = weight.shape;
  const nn::ConvGeometry g = nn::same_geometry(is.h(), is.w(), is.c(), ws.dim(0), ws.dim(1));
  const std::vector<std::int64_t> acc = int8_accumulate(input, weight);
  Tensor out(is.n(), g.out_h, g.out_w, ws.dim(3));
  const float out_scale = input.scale * weight.scale;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    out.raw()[i] = static_cast<float>(static_cast<std::int32_t>(acc[i])) * out_scale;
  }
  return out;
}

core::QuantizedTensor quantize_fixed_scale(const Tensor& t, float scale) {
  core::QuantizedTensor q;
  q.shape = t.shape();
  q.scale = scale;
  q.values.resize(static_cast<std::size_t>(t.numel()));
  const float inv = 1.0F / scale;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const float v = std::round(t.raw()[i] * inv);
    q.values[static_cast<std::size_t>(i)] =
        static_cast<std::int8_t>(std::clamp(v, -127.0F, 127.0F));
  }
  return q;
}

Tensor ref_activation(const Tensor& alpha, const Tensor& x) {
  Tensor out(x.shape());
  const float* pi = x.raw();
  float* po = out.raw();
  const std::int64_t n = x.numel();
  if (alpha.empty()) {
    for (std::int64_t i = 0; i < n; ++i) po[i] = pi[i] > 0.0F ? pi[i] : 0.0F;
    return out;
  }
  const std::int64_t c = x.shape().c();
  const float* pa = alpha.raw();
  const std::int64_t pixels = n / c;
  for (std::int64_t i = 0; i < pixels; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float v = pi[i * c + ch];
      po[i * c + ch] = v > 0.0F ? v : pa[ch] * v;
    }
  }
  return out;
}

Tensor ref_shuffle_f32(const Tensor& input, std::int64_t block) {
  const Shape& s = input.shape();
  const std::int64_t out_c = s.c() / (block * block);
  Tensor out(s.n(), s.h() * block, s.w() * block, out_c);
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t y = 0; y < s.h(); ++y) {
      for (std::int64_t x = 0; x < s.w(); ++x) {
        for (std::int64_t dy = 0; dy < block; ++dy) {
          for (std::int64_t dx = 0; dx < block; ++dx) {
            for (std::int64_t c = 0; c < out_c; ++c) {
              out(n, y * block + dy, x * block + dx, c) =
                  input(n, y, x, (dy * block + dx) * out_c + c);
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace

Tensor ref_quantized_upscale(const core::QuantizedSesr& q, const Tensor& input) {
  if (input.shape().c() != 1) {
    throw std::invalid_argument("ref_quantized_upscale expects a single (Y) channel");
  }
  const auto& weights = q.weights();
  const auto& scales = q.activation_scales();
  const auto& alphas = q.prelu_alphas();
  auto qconv = [&](std::size_t layer, const Tensor& x) {
    return int8_conv_exact(quantize_fixed_scale(x, scales[layer]), weights[layer]);
  };
  Tensor feat = ref_activation(alphas.at(0), qconv(0, input));
  Tensor skip = feat;
  for (std::size_t i = 1; i + 1 < weights.size(); ++i) {
    feat = ref_activation(alphas.at(i), qconv(i, feat));
  }
  for (std::int64_t i = 0; i < feat.numel(); ++i) feat.raw()[i] += skip.raw()[i];
  Tensor out = qconv(weights.size() - 1, feat);
  if (q.config().input_residual) {
    const std::int64_t oc = q.config().output_channels();
    float* po = out.raw();
    const float* pi = input.raw();
    const std::int64_t pixels = out.numel() / oc;
    for (std::int64_t p = 0; p < pixels; ++p) {
      for (std::int64_t c = 0; c < oc; ++c) po[p * oc + c] += pi[p];
    }
  }
  Tensor y = ref_shuffle_f32(out, 2);
  if (q.config().scale == 4) y = ref_shuffle_f32(y, 2);
  return y;
}

std::vector<std::int32_t> ref_gemm_s8_i32(std::span<const std::uint8_t> a,
                                          std::span<const std::int8_t> b, std::int64_t m,
                                          std::int64_t k, std::int64_t n) {
  std::vector<std::int32_t> c(static_cast<std::size_t>(m * n));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += (static_cast<std::int64_t>(a[static_cast<std::size_t>(i * k + p)]) - 128) *
               static_cast<std::int64_t>(b[static_cast<std::size_t>(p * n + j)]);
      }
      if (acc > std::numeric_limits<std::int32_t>::max() ||
          acc < std::numeric_limits<std::int32_t>::min()) {
        throw std::overflow_error("ref_gemm_s8_i32: accumulator exceeds int32 range");
      }
      c[static_cast<std::size_t>(i * n + j)] = static_cast<std::int32_t>(acc);
    }
  }
  return c;
}

Tensor ref_conv2d_s8(const Tensor& input, float act_scale, const nn::S8ConvWeights& weight,
                     const Tensor* bias, const nn::Epilogue& epilogue) {
  const Shape& is = input.shape();
  const Shape& ws = weight.shape;
  if (is.c() != ws.dim(2)) throw std::invalid_argument("ref_conv2d_s8: channel mismatch");
  const nn::ConvGeometry g = nn::same_geometry(is.h(), is.w(), is.c(), ws.dim(0), ws.dim(1));
  const std::int64_t out_c = ws.dim(3);
  // Quantize the activations exactly as the serving path's A-pack does.
  const float inv = 1.0F / act_scale;
  std::vector<std::int8_t> q(static_cast<std::size_t>(input.numel()));
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    q[static_cast<std::size_t>(i)] = nn::quantize_value(input.raw()[i], inv);
  }
  Tensor out(is.n(), g.out_h, g.out_w, out_c);
  for (std::int64_t n = 0; n < is.n(); ++n) {
    for (std::int64_t oy = 0; oy < g.out_h; ++oy) {
      for (std::int64_t ox = 0; ox < g.out_w; ++ox) {
        for (std::int64_t oc = 0; oc < out_c; ++oc) {
          std::int64_t acc = 0;
          for (std::int64_t ky = 0; ky < g.kh; ++ky) {
            const std::int64_t iy = oy - g.pad_top + ky;
            if (iy < 0 || iy >= is.h()) continue;
            for (std::int64_t kx = 0; kx < g.kw; ++kx) {
              const std::int64_t ix = ox - g.pad_left + kx;
              if (ix < 0 || ix >= is.w()) continue;
              for (std::int64_t ic = 0; ic < is.c(); ++ic) {
                const std::int64_t xv = q[static_cast<std::size_t>(is.offset(n, iy, ix, ic))];
                const std::int64_t wv =
                    weight.values[static_cast<std::size_t>(ws.offset(ky, kx, ic, oc))];
                acc += xv * wv;
              }
            }
          }
          if (acc > std::numeric_limits<std::int32_t>::max() ||
              acc < std::numeric_limits<std::int32_t>::min()) {
            throw std::overflow_error("ref_conv2d_s8: accumulator exceeds int32 range");
          }
          // The exact fused-store expressions: one single-rounded dequant
          // product per channel, fmaf into the bias, epilogue on f.
          const float dq = act_scale * weight.scale[static_cast<std::size_t>(oc)];
          float f = std::fmaf(static_cast<float>(static_cast<std::int32_t>(acc)), dq,
                              bias != nullptr ? bias->raw()[oc] : 0.0F);
          if (epilogue.act == nn::Epilogue::Act::kRelu) {
            f = f > 0.0F ? f : 0.0F;
          } else if (epilogue.act == nn::Epilogue::Act::kPRelu) {
            f = f > 0.0F ? f : epilogue.prelu_alpha[oc] * f;
          }
          out(n, oy, ox, oc) = f;
        }
      }
    }
  }
  return out;
}

}  // namespace sesr::check
