// Double-precision reference implementations for the numerical audit.
//
// Every function here recomputes an optimized operation in the most
// straightforward way possible — direct loops, double accumulation, no
// blocking, no SIMD, no shared code with the fast path beyond geometry
// helpers. They are deliberately slow: their only job is to be obviously
// correct so the audit (src/check/audits.cpp) can measure how far each
// optimized kernel drifts from exact arithmetic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/quantize.hpp"
#include "nn/conv2d_s8.hpp"
#include "nn/im2col.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace sesr::check {

// Double-precision NHWC tensor, used where references chain (the collapse
// audit convolves through a multi-layer pipeline without rounding between
// layers).
struct DTensor {
  Shape shape{0, 0, 0, 0};
  std::vector<double> data;

  DTensor() = default;
  explicit DTensor(const Shape& s)
      : shape(s), data(static_cast<std::size_t>(s.numel()), 0.0) {}

  double& operator()(std::int64_t n, std::int64_t y, std::int64_t x, std::int64_t c) {
    return data[static_cast<std::size_t>(shape.offset(n, y, x, c))];
  }
  double operator()(std::int64_t n, std::int64_t y, std::int64_t x, std::int64_t c) const {
    return data[static_cast<std::size_t>(shape.offset(n, y, x, c))];
  }
};

DTensor to_dtensor(const Tensor& t);

// c[m x n] = a[m x k] * b[k x n], row-major, double accumulation.
std::vector<double> ref_gemm(std::span<const float> a, std::span<const float> b, std::int64_t m,
                             std::int64_t k, std::int64_t n);

// Direct convolution under an explicit geometry (covers SAME/VALID and any
// stride); weight is HWIO. The batch dimension comes from `input`.
DTensor ref_conv2d(const DTensor& input, const Tensor& weight, const nn::ConvGeometry& g);
DTensor ref_conv2d(const Tensor& input, const Tensor& weight, const nn::ConvGeometry& g);

// TF-semantics pixel shuffle: out[n, y*r+dy, x*r+dx, c] = in[n, y, x, (dy*r+dx)*C + c].
DTensor ref_depth_to_space(const DTensor& input, std::int64_t block);

// MATLAB-convention bicubic (Keys a = -0.5, pixel centers, symmetric mirror
// boundary, antialiasing on downscale) evaluated separably in full double —
// independent of data::resize_bicubic's tap tables.
DTensor ref_resize_bicubic(const Tensor& input, std::int64_t out_h, std::int64_t out_w);

// PSNR with the same convention as metrics::psnr (identical images cap at
// 100 dB) but Kahan-summed MSE.
double ref_psnr(const Tensor& a, const Tensor& b);

// SSIM via the cancellation-free two-pass form: mu first, then
// var = sum w * (x - mu)^2 and cov = sum w * (x - mu_a) * (y - mu_b).
// Matches metrics::ssim's window (11x11 gaussian, sigma 1.5, k1/k2 .01/.03).
double ref_ssim(const Tensor& a, const Tensor& b);

// int8 convolution with exact 64-bit integer accumulation (SAME, stride 1).
// Throws std::overflow_error if any accumulator exceeds int32 range — the
// width the optimized conv2d_int8 uses — so the audit distinguishes "rounding
// drift" from "the fast path's accumulator is too narrow for this shape".
DTensor ref_conv2d_int8(const core::QuantizedTensor& input, const core::QuantizedTensor& weight);

// Bit-accurate replay of QuantizedSesr::upscale built from the quantizer's
// public state (weights(), activation_scales(), prelu_alphas()): identical
// float glue in identical order, but every int8 convolution accumulates in
// int64 with an int32-range check. Expected to match the optimized pipeline
// bit for bit — any difference means the fast path's integer core is wrong.
Tensor ref_quantized_upscale(const core::QuantizedSesr& q, const Tensor& input);

// u8 (offset-binary, zero point 128) x s8 GEMM reference: exact int64
// accumulation of (a - 128) * b, row-major. Throws std::overflow_error when
// any accumulator leaves int32 range — the width the packed gemm_s8 kernels
// report — so the audit distinguishes kernel bugs from too-narrow shapes.
std::vector<std::int32_t> ref_gemm_s8_i32(std::span<const std::uint8_t> a,
                                          std::span<const std::int8_t> b, std::int64_t m,
                                          std::int64_t k, std::int64_t n);

// Serving-path int8 conv reference (SAME, stride 1): quantizes `input` with
// nn::quantize_value at the fixed activation scale, accumulates s8 x s8 in
// int64 (int32-range checked), then applies the dequant -> bias -> activation
// epilogue with the exact expressions the fused GEMM store uses (per-channel
// single-rounded dequant product, fmaf, f > 0 ? f : alpha * f). Expected to
// match nn::conv2d_s8 bit for bit — this pair pins the serving path to the
// int64 reference at the int32-accumulator level.
Tensor ref_conv2d_s8(const Tensor& input, float act_scale, const nn::S8ConvWeights& weight,
                     const Tensor* bias, const nn::Epilogue& epilogue);

}  // namespace sesr::check
