// Error measurement between an optimized result and its high-precision
// reference.
//
// Every audit in src/check reduces to "how far is this float (or double)
// output from the double-precision reference?", answered two ways at once:
// max absolute error, and max error in ULPs of the *output* type at the
// reference's magnitude. The pair matters: ULP distance is scale-free and
// catches relative drift in large values, absolute error covers cancellation
// toward zero where ULP distance explodes meaninglessly. A sweep fails only
// when a trial exceeds BOTH tolerances (see docs/AUDIT.md).
#pragma once

#include <cstdint>
#include <span>

namespace sesr::check {

struct ErrorStats {
  double max_abs = 0.0;
  double max_ulp = 0.0;
  std::int64_t count = 0;
  // Element behind the largest ULP error, kept for replay diagnostics.
  std::int64_t worst_index = -1;
  double worst_got = 0.0;
  double worst_want = 0.0;

  // Fold another stats block in, keeping the worst of each metric.
  void merge(const ErrorStats& other);
};

// |got - want| measured in units of the float spacing at want's magnitude
// (floored at the smallest normal float so zeros don't divide out). Infinite
// or NaN mismatches return +inf.
double ulp_distance_f32(float got, double want);

// Same, in units of double spacing — for auditing the double-precision
// metrics (SSIM / PSNR) against their stable references.
double ulp_distance_f64(double got, double want);

// Elementwise comparison of a float tensor against its double reference.
// Spans must be equal length.
ErrorStats compare_f32(std::span<const float> got, std::span<const double> want);

// Elementwise comparison of two double buffers (metric audits).
ErrorStats compare_f64(std::span<const double> got, std::span<const double> want);

// FNV-1a over the raw bit pattern — used to assert that optimized outputs are
// bit-identical across SESR_NUM_THREADS settings.
std::uint64_t hash_bits(std::span<const float> data);
std::uint64_t hash_bits_f64(std::span<const double> data);

}  // namespace sesr::check
