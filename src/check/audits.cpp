// The builtin optimized-vs-reference pairs of the numerical audit.
//
// Each pair's trial draws a random configuration from its seed (shapes,
// strides, padding, sparsity, data), runs the optimized path and the double
// reference in src/check/reference.cpp, and returns the error statistics
// plus a bit hash of the optimized output (for the cross-thread-count
// determinism check). Tolerances are per pair and documented in
// docs/AUDIT.md; a trial fails only when it exceeds BOTH the absolute and
// the ULP tolerance.
#include <cmath>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/audit.hpp"
#include "check/compare.hpp"
#include "check/reference.hpp"
#include "core/collapse.hpp"
#include "core/quantize.hpp"
#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "core/streaming.hpp"
#include "core/tiled_inference.hpp"
#include "data/resize.hpp"
#include "data/video.hpp"
#include "metrics/psnr.hpp"
#include "metrics/ssim.hpp"
#include <limits>

#include "nn/conv2d.hpp"
#include "nn/conv2d_s8.hpp"
#include "nn/depth_to_space.hpp"
#include "nn/gemm.hpp"
#include "nn/gemm_s8.hpp"
#include "nn/winograd.hpp"
#include "serve/server.hpp"
#include "serve/sharded_server.hpp"
#include "tensor/fp16.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::check {

namespace {

Tensor random_tensor(Rng& rng, std::int64_t n, std::int64_t h, std::int64_t w, std::int64_t c,
                     float lo = -1.0F, float hi = 1.0F) {
  Tensor t(n, h, w, c);
  t.fill_uniform(rng, lo, hi);
  return t;
}

std::string shape_str(const Shape& s) {
  std::ostringstream os;
  os << s.n() << "x" << s.h() << "x" << s.w() << "x" << s.c();
  return os.str();
}

// Restores the GEMM micro-kernel dispatch to auto when a trial that pinned it
// leaves scope (normally or by exception).
class GemmIsaGuard {
 public:
  explicit GemmIsaGuard(nn::GemmIsa isa) { ok_ = nn::set_gemm_isa(isa); }
  ~GemmIsaGuard() { nn::set_gemm_isa(nn::GemmIsa::kAuto); }
  bool ok() const { return ok_; }
  GemmIsaGuard(const GemmIsaGuard&) = delete;
  GemmIsaGuard& operator=(const GemmIsaGuard&) = delete;

 private:
  bool ok_ = false;
};

// Same restore-on-exit pattern for the packed int8 GEMM dispatch.
class S8IsaGuard {
 public:
  explicit S8IsaGuard(nn::GemmS8Isa isa) { ok_ = nn::set_gemm_s8_isa(isa); }
  ~S8IsaGuard() { nn::set_gemm_s8_isa(nn::GemmS8Isa::kAuto); }
  bool ok() const { return ok_; }
  S8IsaGuard(const S8IsaGuard&) = delete;
  S8IsaGuard& operator=(const S8IsaGuard&) = delete;

 private:
  bool ok_ = false;
};

// Same restore-on-exit pattern for the fp16 conversion dispatch.
class F16cIsaGuard {
 public:
  explicit F16cIsaGuard(fp16::F16cIsa isa) { ok_ = fp16::set_f16c_isa(isa); }
  ~F16cIsaGuard() { fp16::set_f16c_isa(fp16::F16cIsa::kAuto); }
  bool ok() const { return ok_; }
  F16cIsaGuard(const F16cIsaGuard&) = delete;
  F16cIsaGuard& operator=(const F16cIsaGuard&) = delete;

 private:
  bool ok_ = false;
};

// ---------------------------------------------------------------- GEMM pairs

TrialResult gemm_trial_with_isa(std::uint64_t seed, nn::GemmIsa isa) {
  TrialResult r;
  GemmIsaGuard guard(isa);
  if (!guard.ok()) {
    r.skipped = true;
    return r;
  }
  Rng rng(seed);
  const std::int64_t m = rng.uniform_int(1, 64);
  const std::int64_t k = rng.uniform_int(1, 96);
  const std::int64_t n = rng.uniform_int(1, 64);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (float& v : a) v = rng.uniform(-1.0F, 1.0F);
  for (float& v : b) v = rng.uniform(-1.0F, 1.0F);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  nn::gemm(a, b, c, m, k, n);
  const std::vector<double> want = ref_gemm(a, b, m, k, n);
  r.stats = compare_f32(c, want);
  r.output_hash = hash_bits(c);
  std::ostringstream os;
  os << "m=" << m << " k=" << k << " n=" << n;
  r.detail = os.str();
  return r;
}

TrialResult gemm_zero_skip_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const std::int64_t m = rng.uniform_int(1, 48);
  const std::int64_t k = rng.uniform_int(1, 96);
  const std::int64_t n = rng.uniform_int(1, 48);
  // A is overwhelmingly zero — the identity-probe regime this kernel exists for.
  std::vector<float> a(static_cast<std::size_t>(m * k), 0.0F);
  for (float& v : a) {
    if (rng.bernoulli(0.06)) v = rng.uniform(-1.0F, 1.0F);
  }
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (float& v : b) v = rng.uniform(-1.0F, 1.0F);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  nn::gemm_zero_skip(a, b, c, m, k, n);
  r.stats = compare_f32(c, ref_gemm(a, b, m, k, n));
  r.output_hash = hash_bits(c);
  std::ostringstream os;
  os << "m=" << m << " k=" << k << " n=" << n << " sparse";
  r.detail = os.str();
  return r;
}

// Packed u8 x s8 GEMM (raw compensated int32 accumulators, no epilogue) vs
// the exact int64 reference. Zero tolerance: the integer core must be exact
// whenever the true dot fits int32, which [-127, 127] operands at these k
// always do. Shapes deliberately straddle the 6x8 tile and 4-wide k-group
// boundaries (remainders, k-tails, single rows/cols).
TrialResult gemm_s8_trial_with_isa(std::uint64_t seed, nn::GemmS8Isa isa) {
  TrialResult r;
  S8IsaGuard guard(isa);
  if (!guard.ok()) {
    r.skipped = true;
    return r;
  }
  Rng rng(seed);
  const std::int64_t m = rng.uniform_int(1, 40);
  const std::int64_t k = rng.uniform_int(1, 160);
  const std::int64_t n = rng.uniform_int(1, 40);
  std::vector<std::uint8_t> a(static_cast<std::size_t>(m * k));
  std::vector<std::int8_t> b(static_cast<std::size_t>(k * n));
  // Offset-binary activations in [1, 255] (zero point 128), full-range weights.
  for (std::uint8_t& v : a) {
    v = static_cast<std::uint8_t>(rng.uniform_int(-127, 127) + 128);
  }
  for (std::int8_t& v : b) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  const std::vector<std::int32_t> colsum = nn::s8_column_sums(b, k, n);
  std::vector<std::int32_t> got(static_cast<std::size_t>(m * n));
  nn::gemm_s8_i32(a, b, colsum, got, m, k, n);
  const std::vector<std::int32_t> want = ref_gemm_s8_i32(a, b, m, k, n);
  std::vector<double> gd(got.begin(), got.end());
  std::vector<double> wd(want.begin(), want.end());
  r.stats = compare_f64(gd, wd);
  r.output_hash = hash_bits_f64(gd);
  std::ostringstream os;
  os << "m=" << m << " k=" << k << " n=" << n;
  r.detail = os.str();
  return r;
}

// ---------------------------------------------------------------- conv pairs

TrialResult conv2d_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const std::int64_t kk = 2 * rng.uniform_int(1, 3) + 1;  // 3, 5, 7
  const bool valid = rng.bernoulli(0.3);
  const std::int64_t stride = (!valid && rng.bernoulli(0.3)) ? 2 : 1;
  const std::int64_t lo = valid ? kk : 4;
  const std::int64_t h = rng.uniform_int(lo, 48);
  const std::int64_t w = rng.uniform_int(lo, 48);
  const std::int64_t in_c = rng.uniform_int(1, 8);
  const std::int64_t out_c = rng.uniform_int(1, 8);
  const Tensor input = random_tensor(rng, rng.uniform_int(1, 2), h, w, in_c);
  const Tensor weight = random_tensor(rng, kk, kk, in_c, out_c);
  const nn::Padding pad = valid ? nn::Padding::kValid : nn::Padding::kSame;
  const Tensor got = nn::conv2d(input, weight, pad, stride);
  const DTensor want = ref_conv2d(input, weight, nn::conv_geometry(input, weight, pad, stride));
  r.stats = compare_f32(got.data(), want.data);
  r.output_hash = hash_bits(got.data());
  std::ostringstream os;
  os << "in=" << shape_str(input.shape()) << " k=" << kk << " stride=" << stride
     << (valid ? " valid" : " same");
  r.detail = os.str();
  return r;
}

TrialResult conv2d_1x1_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const std::int64_t h = rng.uniform_int(1, 40);
  const std::int64_t w = rng.uniform_int(1, 40);
  const std::int64_t in_c = rng.uniform_int(1, 16);
  const std::int64_t out_c = rng.uniform_int(1, 16);
  const Tensor input = random_tensor(rng, rng.uniform_int(1, 2), h, w, in_c);
  const Tensor weight = random_tensor(rng, 1, 1, in_c, out_c);
  const Tensor got = nn::conv2d(input, weight, nn::Padding::kSame);
  const DTensor want =
      ref_conv2d(input, weight, nn::conv_geometry(input, weight, nn::Padding::kSame));
  r.stats = compare_f32(got.data(), want.data);
  r.output_hash = hash_bits(got.data());
  r.detail = "in=" + shape_str(input.shape()) + " 1x1";
  return r;
}

TrialResult conv2d_zero_skip_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const std::int64_t kk = 2 * rng.uniform_int(1, 2) + 1;  // 3, 5
  const std::int64_t h = rng.uniform_int(kk, 32);
  const std::int64_t w = rng.uniform_int(kk, 32);
  const std::int64_t in_c = rng.uniform_int(1, 8);
  const std::int64_t out_c = rng.uniform_int(1, 8);
  Tensor input(1, h, w, in_c);
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    input.raw()[i] = rng.bernoulli(0.05) ? rng.uniform(-1.0F, 1.0F) : 0.0F;
  }
  const Tensor weight = random_tensor(rng, kk, kk, in_c, out_c);
  const bool valid = rng.bernoulli(0.5);
  const nn::Padding pad = valid ? nn::Padding::kValid : nn::Padding::kSame;
  const Tensor got = nn::conv2d_zero_skip(input, weight, pad);
  const DTensor want = ref_conv2d(input, weight, nn::conv_geometry(input, weight, pad));
  r.stats = compare_f32(got.data(), want.data);
  r.output_hash = hash_bits(got.data());
  std::ostringstream os;
  os << "in=" << shape_str(input.shape()) << " k=" << kk << (valid ? " valid" : " same")
     << " sparse";
  r.detail = os.str();
  return r;
}

TrialResult winograd_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  // Odd/tiny sizes on purpose: every partial-tile and sub-tile-size branch of
  // the F(2x2, 3x3) path gets exercised, including H or W in {1, 2}.
  const std::int64_t h = rng.uniform_int(1, 17);
  const std::int64_t w = rng.uniform_int(1, 13);
  const std::int64_t in_c = rng.uniform_int(1, 4);
  const std::int64_t out_c = rng.uniform_int(1, 4);
  const Tensor input = random_tensor(rng, 1, h, w, in_c);
  const Tensor weight = random_tensor(rng, 3, 3, in_c, out_c);
  const bool pretransformed = rng.bernoulli(0.5);
  const Tensor got =
      pretransformed
          ? nn::conv2d_winograd_3x3_pretransformed(input, nn::winograd_weight_transform(weight),
                                                   out_c)
          : nn::conv2d_winograd_3x3(input, weight);
  const DTensor want =
      ref_conv2d(input, weight, nn::conv_geometry(input, weight, nn::Padding::kSame));
  r.stats = compare_f32(got.data(), want.data);
  r.output_hash = hash_bits(got.data());
  std::ostringstream os;
  os << "in=" << shape_str(input.shape()) << (pretransformed ? " pretransformed" : "");
  r.detail = os.str();
  return r;
}

// ------------------------------------------------------------ collapse pair

TrialResult collapse_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const std::int64_t kk = 2 * rng.uniform_int(1, 2) + 1;  // 3, 5
  const std::int64_t in_c = rng.uniform_int(1, 4);
  const std::int64_t layers = rng.uniform_int(2, 3);
  std::vector<std::int64_t> ch(static_cast<std::size_t>(layers) + 1);
  ch[0] = in_c;
  for (std::size_t i = 1; i < ch.size(); ++i) ch[i] = rng.uniform_int(1, 8);
  // SESR linear blocks: only the first conv has spatial extent, the rest are
  // 1x1 — exactly the chains Algorithm 1 collapses during training.
  std::vector<Tensor> weights;
  for (std::int64_t l = 0; l < layers; ++l) {
    const std::int64_t lk = l == 0 ? kk : 1;
    const float scale = 1.0F / std::sqrt(static_cast<float>(lk * lk * ch[static_cast<std::size_t>(l)]));
    weights.push_back(random_tensor(rng, lk, lk, ch[static_cast<std::size_t>(l)],
                                    ch[static_cast<std::size_t>(l) + 1], -scale, scale));
  }
  const std::int64_t h = rng.uniform_int(kk, 24);
  const std::int64_t w = rng.uniform_int(kk, 24);
  const Tensor input = random_tensor(rng, 1, h, w, in_c);

  const Tensor collapsed = core::collapse_conv_sequence(weights);
  const Tensor got = nn::conv2d(input, collapsed, nn::Padding::kSame);

  // Reference: push the input through the *expanded* chain entirely in double.
  DTensor want = to_dtensor(input);
  for (const Tensor& wt : weights) {
    const nn::ConvGeometry g = nn::same_geometry(want.shape.h(), want.shape.w(), want.shape.c(),
                                                 wt.shape().dim(0), wt.shape().dim(1));
    want = ref_conv2d(want, wt, g);
  }
  r.stats = compare_f32(got.data(), want.data);
  r.output_hash = hash_bits(got.data());
  std::ostringstream os;
  os << "in=" << shape_str(input.shape()) << " chain k=" << kk << " L=" << layers;
  r.detail = os.str();
  return r;
}

// ---------------------------------------------------------------- int8 pairs

TrialResult conv2d_int8_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const std::int64_t kk = 2 * rng.uniform_int(1, 2) + 1;  // 3, 5
  const std::int64_t h = rng.uniform_int(4, 24);
  const std::int64_t w = rng.uniform_int(4, 24);
  const std::int64_t in_c = rng.uniform_int(1, 8);
  const std::int64_t out_c = rng.uniform_int(1, 8);
  // Every few trials hit the degenerate-range convention: all-zero or
  // near-zero inputs must quantize with scale kDegenerateQuantScale and
  // dequantize exactly (the unified convention of src/core/quantize.hpp).
  const std::int64_t mode = rng.uniform_int(0, 3);
  Tensor input(1, h, w, in_c);
  const char* regime = "dense";
  if (mode == 0) {
    regime = "zero";
  } else if (mode == 1) {
    input.fill_uniform(rng, -1e-20F, 1e-20F);
    regime = "near-zero";
  } else {
    input.fill_uniform(rng, -1.0F, 1.0F);
  }
  const Tensor weight = random_tensor(rng, kk, kk, in_c, out_c);
  const core::QuantizedTensor qi = core::quantize_symmetric(input);
  const core::QuantizedTensor qw = core::quantize_symmetric(weight);
  const Tensor got = core::conv2d_int8(qi, qw);
  const DTensor want = ref_conv2d_int8(qi, qw);
  r.stats = compare_f32(got.data(), want.data);
  r.output_hash = hash_bits(got.data());
  std::ostringstream os;
  os << "in=" << shape_str(input.shape()) << " k=" << kk << " " << regime;
  r.detail = os.str();
  return r;
}

// ----------------------------------------------------------- network pairs

core::SesrConfig small_config(Rng& rng) {
  core::SesrConfig config;
  config.f = 8;
  config.m = 2;
  config.scale = rng.bernoulli(0.5) ? 2 : 4;
  config.expand = 16;
  config.prelu = rng.bernoulli(0.5);
  config.input_residual = rng.bernoulli(0.5);
  config.with_bias = false;
  return config;
}

TrialResult quantized_sesr_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const core::SesrConfig config = small_config(rng);
  Rng init = rng.fork();
  const core::SesrNetwork network(config, init);
  const core::SesrInference inference(network);
  std::vector<Tensor> calibration;
  const std::int64_t n_cal = rng.uniform_int(1, 2);
  for (std::int64_t i = 0; i < n_cal; ++i) {
    calibration.push_back(random_tensor(rng, 1, 12, 12, 1, 0.0F, 1.0F));
  }
  const core::QuantizedSesr quantized(inference, calibration);
  const std::int64_t h = rng.uniform_int(6, 16);
  const std::int64_t w = rng.uniform_int(6, 16);
  const Tensor input = random_tensor(rng, 1, h, w, 1, 0.0F, 1.0F);
  const Tensor got = quantized.upscale(input);
  const Tensor want = ref_quantized_upscale(quantized, input);
  const DTensor want_d = to_dtensor(want);
  r.stats = compare_f32(got.data(), want_d.data);
  r.output_hash = hash_bits(got.data());
  std::ostringstream os;
  os << "in=" << shape_str(input.shape()) << " " << config.describe();
  r.detail = os.str();
  return r;
}

TrialResult tiled_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const core::SesrConfig config = small_config(rng);
  Rng init = rng.fork();
  const core::SesrNetwork network(config, init);
  const core::SesrInference inference(network);
  const std::int64_t h = rng.uniform_int(12, 32);
  const std::int64_t w = rng.uniform_int(12, 32);
  const Tensor input = random_tensor(rng, 1, h, w, 1, 0.0F, 1.0F);
  core::TilingOptions options;
  options.tile_h = rng.uniform_int(6, 16);
  options.tile_w = rng.uniform_int(6, 16);
  options.halo = -1;  // exact halo: tiling must reproduce the full frame
  const Tensor got = core::upscale_tiled(inference, input, options);
  const DTensor want = to_dtensor(inference.upscale(input));
  r.stats = compare_f32(got.data(), want.data);
  r.output_hash = hash_bits(got.data());
  std::ostringstream os;
  os << "in=" << shape_str(input.shape()) << " tile=" << options.tile_h << "x" << options.tile_w
     << " " << config.describe();
  r.detail = os.str();
  return r;
}

TrialResult streaming_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const core::SesrConfig config = small_config(rng);
  Rng init = rng.fork();
  const core::SesrNetwork network(config, init);
  const core::SesrInference inference(network);
  const std::int64_t h = rng.uniform_int(8, 24);
  const std::int64_t w = rng.uniform_int(8, 24);
  const Tensor input = random_tensor(rng, 1, h, w, 1, 0.0F, 1.0F);
  core::StreamingUpscaler streamer(inference);
  const Tensor got = streamer.upscale(input);
  const DTensor want = to_dtensor(inference.upscale(input));
  r.stats = compare_f32(got.data(), want.data);
  r.output_hash = hash_bits(got.data());
  std::ostringstream os;
  os << "in=" << shape_str(input.shape()) << " " << config.describe();
  r.detail = os.str();
  return r;
}

// Serve-regime tiling: the eval server routes arbitrary request shapes
// through upscale_tiled, so this pair sweeps the geometry corners the
// original tiled_inference pair never draws — frames down to 1x1, tiles
// larger than the image, extra halo beyond the receptive field, and extreme
// aspect ratios. Exactness promise: halo >= radius reproduces the full frame.
TrialResult tiled_vs_fullframe_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const core::SesrConfig config = small_config(rng);
  Rng init = rng.fork();
  const core::SesrNetwork network(config, init);
  const core::SesrInference inference(network);
  const std::int64_t regime = rng.uniform_int(0, 2);
  std::int64_t h = 0;
  std::int64_t w = 0;
  if (regime == 0) {  // tiny frames, smaller than any sane tile
    h = rng.uniform_int(1, 6);
    w = rng.uniform_int(1, 6);
  } else if (regime == 1) {  // extreme aspect (row / column strips)
    h = rng.bernoulli(0.5) ? rng.uniform_int(1, 3) : rng.uniform_int(16, 40);
    w = rng.bernoulli(0.5) ? rng.uniform_int(16, 40) : rng.uniform_int(1, 3);
  } else {  // generic
    h = rng.uniform_int(8, 40);
    w = rng.uniform_int(8, 40);
  }
  const Tensor input = random_tensor(rng, 1, h, w, 1, 0.0F, 1.0F);
  core::TilingOptions options;
  options.tile_h = rng.uniform_int(1, 48);  // may exceed the image
  options.tile_w = rng.uniform_int(1, 48);
  const std::int64_t radius = core::receptive_field_radius(inference);
  // Exact by construction: radius, or radius plus slack (also exact).
  options.halo = rng.bernoulli(0.5) ? radius : radius + rng.uniform_int(1, 4);
  const Tensor got = core::upscale_tiled(inference, input, options);
  const DTensor want = to_dtensor(inference.upscale(input));
  r.stats = compare_f32(got.data(), want.data);
  r.output_hash = hash_bits(got.data());
  std::ostringstream os;
  os << "in=" << shape_str(input.shape()) << " tile=" << options.tile_h << "x" << options.tile_w
     << " halo=" << options.halo << " " << config.describe();
  r.detail = os.str();
  return r;
}

// Serve-regime streaming: same widened shape sweep for the line-buffer path
// (row/column strips stress the pipeline's prune logic). Exactness promise:
// streaming equals the full-frame pass to float tolerance.
TrialResult streaming_vs_fullframe_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const core::SesrConfig config = small_config(rng);
  Rng init = rng.fork();
  const core::SesrNetwork network(config, init);
  const core::SesrInference inference(network);
  const std::int64_t regime = rng.uniform_int(0, 2);
  std::int64_t h = 0;
  std::int64_t w = 0;
  if (regime == 0) {
    h = rng.uniform_int(1, 5);
    w = rng.uniform_int(1, 5);
  } else if (regime == 1) {
    h = rng.bernoulli(0.5) ? rng.uniform_int(1, 2) : rng.uniform_int(12, 32);
    w = rng.bernoulli(0.5) ? rng.uniform_int(12, 32) : rng.uniform_int(1, 2);
  } else {
    h = rng.uniform_int(6, 32);
    w = rng.uniform_int(6, 32);
  }
  const Tensor input = random_tensor(rng, 1, h, w, 1, 0.0F, 1.0F);
  core::StreamingUpscaler streamer(inference);
  const Tensor got = streamer.upscale(input);
  const DTensor want = to_dtensor(inference.upscale(input));
  r.stats = compare_f32(got.data(), want.data);
  r.output_hash = hash_bits(got.data());
  std::ostringstream os;
  os << "in=" << shape_str(input.shape()) << " " << config.describe();
  r.detail = os.str();
  return r;
}

// ------------------------------------------------ serve response-cache pair

// A served response-cache hit must be BIT-IDENTICAL to the cold inference
// that populated it, for every execution mode and both precisions. The trial
// spins up a cached EvalServer, submits the same frame twice (the first run
// is the cold reference, the second must come from the cache — asserted via
// the server's cache_hits counter), and compares bitwise with zero tolerance.
TrialResult cached_vs_cold_serve_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const core::SesrConfig config = small_config(rng);  // with_bias=false: streaming-safe
  Rng init = rng.fork();
  const core::SesrNetwork network(config, init);
  const core::SesrInference inference(network);

  const serve::ExecMode modes[] = {serve::ExecMode::kFullFrame, serve::ExecMode::kTiled,
                                   serve::ExecMode::kStreaming, serve::ExecMode::kAuto};
  serve::ServeOptions options;
  options.mode = modes[rng.uniform_int(0, 3)];
  options.precision = rng.bernoulli(0.5) ? core::InferencePrecision::kFp16
                                         : core::InferencePrecision::kFp32;
  options.workers = 1 + static_cast<int>(rng.uniform_int(0, 2));
  options.max_batch = 1 + rng.uniform_int(0, 3);
  options.max_delay_us = 200;
  options.tiling.tile_h = rng.uniform_int(4, 12);
  options.tiling.tile_w = rng.uniform_int(4, 12);
  options.tiled_threshold_pixels = 10 * 10;  // kAuto: larger trial frames tile
  options.cache_entries = 8;
  serve::EvalServer server(inference, options);

  const std::int64_t h = rng.uniform_int(4, 20);
  const std::int64_t w = rng.uniform_int(4, 20);
  const Tensor frame = random_tensor(rng, 1, h, w, 1, 0.0F, 1.0F);
  const Tensor cold = server.submit(frame).get();  // executes, populates the cache
  const Tensor hit = server.submit(frame).get();   // must be served from the cache
  server.shutdown();
  const std::uint64_t cache_hits = server.stats().cache_hits;

  const DTensor want = to_dtensor(cold);
  r.stats = compare_f32(hit.data(), want.data);
  r.output_hash = hash_bits(hit.data());
  std::ostringstream os;
  os << "in=" << shape_str(frame.shape()) << " mode=" << static_cast<int>(options.mode)
     << " prec=" << (options.precision == core::InferencePrecision::kFp16 ? "fp16" : "fp32")
     << " workers=" << options.workers << " " << config.describe();
  if (cache_hits != 1) {
    // Without a real hit the bit comparison is vacuous; fail the trial loudly.
    r.stats.max_abs = std::numeric_limits<double>::infinity();
    r.stats.max_ulp = std::numeric_limits<double>::infinity();
    os << " CACHE-MISS(hits=" << cache_hits << ")";
  }
  r.detail = os.str();
  return r;
}

// ------------------------------------------------- video delta-reuse pair

// A video session's tile-delta output must be BIT-IDENTICAL to a full
// re-upscale of the same frame, for every execution mode and all four
// precisions. The trial draws a random mode x precision x temporal pattern,
// serves a synthetic sequence through one ShardedServer twice per frame —
// once as a video session (consecutive seqs, so the delta path engages from
// frame 2 on) and once as a plain non-video submit (always the full
// pipeline, cache disabled) — and compares bitwise with zero tolerance.
// A trial where the delta path never engaged is failed loudly: the bit
// comparison would be vacuous.
TrialResult video_delta_vs_full_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const core::SesrConfig config = small_config(rng);  // with_bias=false: streaming-safe
  Rng init = rng.fork();
  const core::SesrNetwork network(config, init);
  core::SesrInference inference(network);
  inference.calibrate_int8({random_tensor(rng, 1, 12, 12, 1, 0.0F, 1.0F)});
  std::vector<core::LayerPrecision> plan(inference.convolutions().size(),
                                         core::LayerPrecision::kFp16);
  for (std::size_t i = 0; i < plan.size(); i += 2) plan[i] = core::LayerPrecision::kInt8;
  inference.set_hybrid_plan(std::move(plan));

  const core::InferencePrecision precisions[] = {
      core::InferencePrecision::kFp32, core::InferencePrecision::kFp16,
      core::InferencePrecision::kInt8, core::InferencePrecision::kHybrid};
  const serve::RouteKey key{"v", config.scale, precisions[rng.uniform_int(0, 3)]};
  serve::NetworkRegistry registry;
  registry.add(key, inference);

  const serve::ExecMode modes[] = {serve::ExecMode::kFullFrame, serve::ExecMode::kTiled,
                                   serve::ExecMode::kStreaming, serve::ExecMode::kAuto};
  serve::ServeOptions options;
  options.mode = modes[rng.uniform_int(0, 3)];
  options.workers = 1 + static_cast<int>(rng.uniform_int(0, 2));
  options.max_batch = 1 + rng.uniform_int(0, 3);
  options.max_delay_us = 200;
  options.tiling.tile_h = rng.uniform_int(4, 12);
  options.tiling.tile_w = rng.uniform_int(4, 12);
  options.tiled_threshold_pixels = 10 * 10;  // kAuto: larger trial frames tile
  options.cache_entries = 0;                 // the reference submits must recompute
  options.video_sessions = 4;
  serve::ShardedServer server(registry, options);

  const data::VideoPattern patterns[] = {data::VideoPattern::kStatic, data::VideoPattern::kPan,
                                         data::VideoPattern::kCut, data::VideoPattern::kSparkle,
                                         data::VideoPattern::kMixed};
  data::VideoSequenceOptions vopts;
  vopts.pattern = patterns[rng.uniform_int(0, 4)];
  vopts.frames = 4;
  vopts.h = rng.uniform_int(16, 24);  // synthesize_image floor is 16x16
  vopts.w = rng.uniform_int(16, 24);
  const std::vector<Tensor> frames = data::synthesize_video(vopts, seed);

  std::vector<float> got;
  std::vector<double> want;
  std::uint64_t delta_frames = 0;
  std::uint64_t reused_tiles = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    serve::VideoOptions video;
    video.session_id = 1;
    video.seq = i + 1;
    serve::AdmitResult admitted = server.submit_video(key, frames[i], video);
    const Tensor delta_hr = admitted.future.get();
    const Tensor full_hr = server.submit(key, frames[i]).get();
    if (admitted.delta) {
      ++delta_frames;
      reused_tiles += admitted.tiles_total - admitted.tiles_recomputed;
    }
    got.insert(got.end(), delta_hr.raw(), delta_hr.raw() + delta_hr.numel());
    const float* f = full_hr.raw();
    for (std::int64_t j = 0; j < full_hr.numel(); ++j) want.push_back(static_cast<double>(f[j]));
  }
  server.shutdown();

  r.stats = compare_f32(got, want);
  r.output_hash = hash_bits(got);
  std::ostringstream os;
  os << "pattern=" << data::to_string(vopts.pattern) << " lr=" << vopts.h << "x" << vopts.w
     << " mode=" << static_cast<int>(options.mode) << " route=" << serve::route_string(key)
     << " workers=" << options.workers << " reused_tiles=" << reused_tiles << " "
     << config.describe();
  if (delta_frames != frames.size() - 1) {
    // Every frame after the first must take the delta path (same session,
    // consecutive seqs, constant shape). Anything else means the session
    // plumbing is broken and the comparison above proves nothing.
    r.stats.max_abs = std::numeric_limits<double>::infinity();
    r.stats.max_ulp = std::numeric_limits<double>::infinity();
    os << " DELTA-NOT-ENGAGED(frames=" << delta_frames << "/" << frames.size() - 1 << ")";
  }
  r.detail = os.str();
  return r;
}

// -------------------------------------------------- planned-executor pair

// The compiled execution plan must be BIT-IDENTICAL to the direct per-layer
// path it replaced: the plan only changes where intermediate bytes live (one
// packed arena instead of per-layer tensors), never the kernel sequence or
// the arithmetic. The trial draws a random config — including m = 0, whose
// fused long residual degenerates to an in-place doubling, and biased
// checkpoints — a random precision, and a random execution regime (single
// frame, micro-batch, exact-halo tiled, plan-cache churn across 9+ shapes),
// and compares against the same network with set_use_plan(false) with zero
// tolerance.
TrialResult planned_vs_direct_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  core::SesrConfig config;
  config.f = 8;
  config.m = rng.uniform_int(0, 3);
  config.scale = rng.bernoulli(0.5) ? 2 : 4;
  config.expand = 16;
  config.prelu = rng.bernoulli(0.5);
  config.input_residual = rng.bernoulli(0.5);
  config.with_bias = rng.bernoulli(0.5);
  Rng init = rng.fork();
  const core::SesrNetwork network(config, init);
  core::SesrInference planned(network);
  planned.calibrate_int8({random_tensor(rng, 1, 12, 12, 1, 0.0F, 1.0F)});
  std::vector<core::LayerPrecision> plan(planned.convolutions().size(),
                                         core::LayerPrecision::kFp16);
  for (std::size_t i = 0; i < plan.size(); i += 2) plan[i] = core::LayerPrecision::kInt8;
  planned.set_hybrid_plan(std::move(plan));
  const core::InferencePrecision precisions[] = {
      core::InferencePrecision::kFp32, core::InferencePrecision::kFp16,
      core::InferencePrecision::kInt8, core::InferencePrecision::kHybrid};
  planned.set_precision(precisions[rng.uniform_int(0, 3)]);
  core::SesrInference direct = planned;
  direct.set_use_plan(false);

  const std::int64_t regime = rng.uniform_int(0, 3);
  const std::int64_t n = regime == 1 ? rng.uniform_int(2, 4) : 1;
  const std::int64_t h = rng.uniform_int(4, 24);
  const std::int64_t w = rng.uniform_int(4, 24);
  const Tensor input = random_tensor(rng, n, h, w, 1, 0.0F, 1.0F);
  Tensor got;
  Tensor want;
  std::ostringstream os;
  if (regime == 2) {  // exact-halo tiling: every tile runs through the plan
    core::TilingOptions topts;
    topts.tile_h = rng.uniform_int(1, 16);
    topts.tile_w = rng.uniform_int(1, 16);
    topts.halo = core::receptive_field_radius(planned);
    got = core::upscale_tiled(planned, input, topts);
    want = core::upscale_tiled(direct, input, topts);
    os << "tiled tile=" << topts.tile_h << "x" << topts.tile_w;
  } else if (regime == 3) {
    // Churn the bounded plan cache past its capacity so the comparison runs
    // on a freshly recompiled (post-eviction) plan, not the warm one.
    for (std::int64_t i = 0; i < 9; ++i) {
      const Tensor filler = random_tensor(rng, 1, 4 + i, 4, 1, 0.0F, 1.0F);
      got = planned.upscale(filler);
    }
    got = planned.upscale(input);
    want = direct.upscale(input);
    os << "cache-churn";
  } else {  // single frame / stacked micro-batch
    got = planned.upscale(input);
    want = direct.upscale(input);
    os << (regime == 1 ? "batch" : "full");
  }
  const DTensor want_d = to_dtensor(want);
  r.stats = compare_f32(got.data(), want_d.data);
  r.output_hash = hash_bits(got.data());
  os << " in=" << shape_str(input.shape()) << " prec=" << static_cast<int>(planned.precision())
     << " " << config.describe();
  r.detail = os.str();
  return r;
}

// --------------------------------------------------------------- fp16 pairs

// Dispatched (possibly F16C) fp32->fp16->fp32 round trip vs the scalar
// bit-manipulation reference. Exact: the two implementations must agree
// bitwise on every finite input, across the magnitude regimes where the
// rounding rules differ (normals, half-subnormals, underflow-to-zero).
// Non-finite inputs are covered exhaustively by tests/test_fp16.cpp.
TrialResult fp16_roundtrip_trial_with_isa(std::uint64_t seed, fp16::F16cIsa isa) {
  TrialResult r;
  F16cIsaGuard guard(isa);
  if (!guard.ok()) {
    r.skipped = true;
    return r;
  }
  Rng rng(seed);
  const std::int64_t n = rng.uniform_int(1, 4096);
  std::vector<float> src(static_cast<std::size_t>(n));
  for (float& v : src) {
    switch (rng.uniform_int(0, 3)) {
      case 0: v = rng.uniform(-1.0F, 1.0F); break;
      case 1: v = rng.uniform(-60000.0F, 60000.0F); break;       // large normals
      case 2: v = rng.uniform(-6e-5F, 6e-5F); break;             // half subnormals
      default: v = rng.uniform(-6e-8F, 6e-8F); break;            // underflow to +-0
    }
  }
  std::vector<fp16::Half> h(static_cast<std::size_t>(n));
  std::vector<float> got(static_cast<std::size_t>(n));
  fp16::convert_to_half(src.data(), h.data(), n);
  fp16::convert_to_float(h.data(), got.data(), n);
  std::vector<double> want(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < src.size(); ++i) {
    want[i] = static_cast<double>(fp16::half_bits_to_float(fp16::float_to_half_bits(src[i])));
  }
  r.stats = compare_f32(got, want);
  r.output_hash = hash_bits(got);
  r.detail = "n=" + std::to_string(n);
  return r;
}

// fp16-storage conv (fp32 accumulate, one output rounding) vs the double
// reference convolution over the SAME binary16-rounded input and weight.
// The residual error is fp32-vs-double accumulation plus the single binary16
// store rounding, bounded by 2^-11 of the accumulator magnitude.
TrialResult conv2d_fp16_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const std::int64_t kk = rng.bernoulli(0.3) ? 1 : 2 * rng.uniform_int(1, 2) + 1;  // 1, 3, 5
  const bool valid = kk > 1 && rng.bernoulli(0.3);
  const std::int64_t lo = valid ? kk : 4;
  const std::int64_t h = rng.uniform_int(lo, 32);
  const std::int64_t w = rng.uniform_int(lo, 32);
  const std::int64_t in_c = rng.uniform_int(1, 8);
  const std::int64_t out_c = rng.uniform_int(1, 8);
  const Tensor input = random_tensor(rng, rng.uniform_int(1, 2), h, w, in_c);
  const Tensor weight = random_tensor(rng, kk, kk, in_c, out_c);
  const nn::Padding pad = valid ? nn::Padding::kValid : nn::Padding::kSame;
  const fp16::HalfTensor hin = fp16::HalfTensor::from_float(input);
  const fp16::HalfTensor hw = fp16::HalfTensor::from_float(weight);
  std::optional<Tensor> bias;
  if (rng.bernoulli(0.5)) bias = random_tensor(rng, 1, 1, 1, out_c);
  const Tensor got =
      nn::conv2d_fp16(hin, hw, bias ? &*bias : nullptr, nn::Epilogue{}, pad).to_float();
  const Tensor rin = hin.to_float();
  const Tensor rw = hw.to_float();
  DTensor want = ref_conv2d(rin, rw, nn::conv_geometry(rin, rw, pad, 1));
  if (bias) {
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(want.data.size()); ++i) {
      want.data[static_cast<std::size_t>(i)] += static_cast<double>(bias->raw()[i % out_c]);
    }
  }
  r.stats = compare_f32(got.data(), want.data);
  r.output_hash = hash_bits(got.data());
  std::ostringstream os;
  os << "in=" << shape_str(input.shape()) << " k=" << kk << (valid ? " valid" : " same")
     << (bias ? " bias" : "");
  r.detail = os.str();
  return r;
}

// End-to-end collapsed network: fp16 upscale vs the fp32 upscale in double.
// This is the deployment question ("how much quality does fp16 cost?") in
// audit form; the tolerance bounds the layer-by-layer rounding drift through
// m+2 convs, the residual adds and the depth-to-space for [0,1] inputs.
TrialResult collapsed_fp16_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const core::SesrConfig config = small_config(rng);
  Rng init = rng.fork();
  const core::SesrNetwork network(config, init);
  core::SesrInference inference(network);
  const std::int64_t h = rng.uniform_int(8, 24);
  const std::int64_t w = rng.uniform_int(8, 24);
  const Tensor input = random_tensor(rng, 1, h, w, 1, 0.0F, 1.0F);
  const DTensor want = to_dtensor(inference.upscale(input));
  inference.set_precision(core::InferencePrecision::kFp16);
  const Tensor got = inference.upscale(input);
  r.stats = compare_f32(got.data(), want.data);
  r.output_hash = hash_bits(got.data());
  std::ostringstream os;
  os << "in=" << shape_str(input.shape()) << " " << config.describe();
  r.detail = os.str();
  return r;
}

// Serving-path int8 conv (packed u8 x s8 GEMM, implicit im2col, fused
// dequant/bias/activation store) vs the int64-accumulated reference applying
// the identical epilogue expressions. Zero tolerance: any difference means
// the quantized conv drifted from the int8 reference semantics.
TrialResult conv2d_s8_vs_ref_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const std::int64_t kk = rng.bernoulli(0.3) ? 1 : 2 * rng.uniform_int(1, 2) + 1;  // 1, 3, 5
  const std::int64_t h = rng.uniform_int(4, 24);
  const std::int64_t w = rng.uniform_int(4, 24);
  const std::int64_t in_c = rng.uniform_int(1, 8);
  const std::int64_t out_c = rng.uniform_int(1, 8);
  const Tensor input = random_tensor(rng, rng.uniform_int(1, 2), h, w, in_c);
  Tensor wt = random_tensor(rng, kk, kk, in_c, out_c);
  if (rng.bernoulli(0.1)) {
    // Degenerate channel: all-zero kernel exercises the scale floor.
    for (std::int64_t i = 0; i < wt.numel(); i += out_c) wt.raw()[i] = 0.0F;
  }
  const nn::S8ConvWeights qw = nn::quantize_conv_weights(wt);
  const float act_scale = max_abs(input) > 0.0F ? max_abs(input) / 127.0F
                                                : nn::kDegenerateQuantScale;
  std::optional<Tensor> bias;
  if (rng.bernoulli(0.5)) bias = random_tensor(rng, 1, 1, 1, out_c);
  nn::Epilogue epi;
  Tensor alpha;
  const std::int64_t act = rng.uniform_int(0, 2);
  if (act == 1) {
    epi.act = nn::Epilogue::Act::kRelu;
  } else if (act == 2) {
    alpha = random_tensor(rng, 1, 1, 1, out_c, 0.01F, 0.5F);
    epi.act = nn::Epilogue::Act::kPRelu;
    epi.prelu_alpha = alpha.raw();
  }
  const Tensor got =
      nn::conv2d_s8(input, act_scale, qw, bias ? &*bias : nullptr, epi, nn::Padding::kSame);
  const Tensor want = ref_conv2d_s8(input, act_scale, qw, bias ? &*bias : nullptr, epi);
  r.stats = compare_f32(got.data(), to_dtensor(want).data);
  r.output_hash = hash_bits(got.data());
  std::ostringstream os;
  os << "in=" << shape_str(input.shape()) << " k=" << kk << " act=" << act
     << (bias ? " bias" : "");
  r.detail = os.str();
  return r;
}

// End-to-end collapsed network in pure int8 vs the fp32 upscale, gated on
// PSNR rather than elementwise error: quantization error is large per element
// but must stay small in aggregate. A trial whose int8-vs-fp32 PSNR falls
// under the floor inflates max_abs past the (loose) elementwise tolerance so
// the sweep fails with the PSNR in its detail string.
TrialResult collapsed_int8_trial(std::uint64_t seed) {
  constexpr double kPsnrFloorDb = 35.0;
  TrialResult r;
  Rng rng(seed);
  const core::SesrConfig config = small_config(rng);
  Rng init = rng.fork();
  const core::SesrNetwork network(config, init);
  core::SesrInference inference(network);
  std::vector<Tensor> calibration;
  const std::int64_t n_cal = rng.uniform_int(1, 2);
  for (std::int64_t i = 0; i < n_cal; ++i) {
    calibration.push_back(random_tensor(rng, 1, 12, 12, 1, 0.0F, 1.0F));
  }
  const std::int64_t h = rng.uniform_int(8, 24);
  const std::int64_t w = rng.uniform_int(8, 24);
  const Tensor input = random_tensor(rng, 1, h, w, 1, 0.0F, 1.0F);
  const Tensor want = inference.upscale(input);
  inference.calibrate_int8(calibration);
  inference.set_precision(core::InferencePrecision::kInt8);
  const Tensor got = inference.upscale(input);
  r.stats = compare_f32(got.data(), to_dtensor(want).data);
  const double psnr = ref_psnr(got, want);
  if (psnr < kPsnrFloorDb) r.stats.max_abs = std::numeric_limits<double>::infinity();
  r.output_hash = hash_bits(got.data());
  std::ostringstream os;
  os << "in=" << shape_str(input.shape()) << " " << config.describe() << " cal=" << n_cal
     << " psnr=" << psnr;
  r.detail = os.str();
  return r;
}

// -------------------------------------------------------- data/metric pairs

TrialResult depth_to_space_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const std::int64_t block = rng.uniform_int(2, 3);
  const std::int64_t oc = rng.uniform_int(1, 4);
  const Tensor input = random_tensor(rng, rng.uniform_int(1, 2), rng.uniform_int(1, 12),
                                     rng.uniform_int(1, 12), block * block * oc);
  const Tensor got = nn::depth_to_space(input, block);
  const DTensor want = ref_depth_to_space(to_dtensor(input), block);
  r.stats = compare_f32(got.data(), want.data);
  r.output_hash = hash_bits(got.data());
  std::ostringstream os;
  os << "in=" << shape_str(input.shape()) << " r=" << block;
  r.detail = os.str();
  return r;
}

TrialResult resize_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const std::int64_t h = rng.uniform_int(4, 24);
  const std::int64_t w = rng.uniform_int(4, 24);
  const std::int64_t c = rng.bernoulli(0.5) ? 1 : 3;
  const std::int64_t out_h = rng.uniform_int(2, 32);
  const std::int64_t out_w = rng.uniform_int(2, 32);
  const Tensor input = random_tensor(rng, 1, h, w, c, 0.0F, 1.0F);
  const Tensor got = data::resize_bicubic(input, out_h, out_w);
  const DTensor want = ref_resize_bicubic(input, out_h, out_w);
  r.stats = compare_f32(got.data(), want.data);
  r.output_hash = hash_bits(got.data());
  std::ostringstream os;
  os << "in=" << shape_str(input.shape()) << " out=" << out_h << "x" << out_w;
  r.detail = os.str();
  return r;
}

TrialResult ssim_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const std::int64_t h = rng.uniform_int(11, 24);
  const std::int64_t w = rng.uniform_int(11, 24);
  // Alternate between generic images and the cancellation regime the SSIM
  // fix targets: flat / near-flat windows where E[x^2] - E[x]^2 collapses.
  const std::int64_t mode = rng.uniform_int(0, 2);
  Tensor a(1, h, w, 1);
  Tensor b(1, h, w, 1);
  const char* regime = "random";
  if (mode == 0) {
    const float base = rng.uniform(0.0F, 1.0F);
    a.fill(base);
    b.fill(base);
    for (std::int64_t i = 0; i < b.numel(); ++i) {
      if (rng.bernoulli(0.1)) b.raw()[i] += rng.uniform(-1e-6F, 1e-6F);
    }
    regime = "near-flat";
  } else {
    a.fill_uniform(rng, 0.0F, 1.0F);
    b = a;
    if (mode == 2) {
      for (std::int64_t i = 0; i < b.numel(); ++i) b.raw()[i] += rng.uniform(-0.05F, 0.05F);
      regime = "perturbed";
    } else {
      regime = "identical";
    }
  }
  const double got = metrics::ssim(a, b);
  const double want = ref_ssim(a, b);
  const std::vector<double> gv{got};
  const std::vector<double> wv{want};
  r.stats = compare_f64(gv, wv);
  r.output_hash = hash_bits_f64(gv);
  std::ostringstream os;
  os << h << "x" << w << " " << regime;
  r.detail = os.str();
  return r;
}

TrialResult psnr_trial(std::uint64_t seed) {
  TrialResult r;
  Rng rng(seed);
  const std::int64_t h = rng.uniform_int(4, 32);
  const std::int64_t w = rng.uniform_int(4, 32);
  Tensor a = random_tensor(rng, 1, h, w, 1, 0.0F, 1.0F);
  Tensor b = a;
  const bool identical = rng.bernoulli(0.25);
  if (!identical) {
    for (std::int64_t i = 0; i < b.numel(); ++i) b.raw()[i] += rng.uniform(-0.1F, 0.1F);
  }
  const double got = metrics::psnr(a, b);
  const double want = ref_psnr(a, b);
  const std::vector<double> gv{got};
  const std::vector<double> wv{want};
  r.stats = compare_f64(gv, wv);
  r.output_hash = hash_bits_f64(gv);
  std::ostringstream os;
  os << h << "x" << w << (identical ? " identical" : " perturbed");
  r.detail = os.str();
  return r;
}

std::vector<AuditPair> make_builtin_pairs() {
  std::vector<AuditPair> pairs;
  pairs.push_back({"gemm_scalar", "register-tiled GEMM, generic micro-kernel, vs double GEMM",
                   1e-4, 256.0,
                   [](std::uint64_t s) { return gemm_trial_with_isa(s, nn::GemmIsa::kGeneric); }});
  pairs.push_back({"gemm_avx2", "register-tiled GEMM, AVX2+FMA micro-kernel, vs double GEMM",
                   1e-4, 256.0,
                   [](std::uint64_t s) { return gemm_trial_with_isa(s, nn::GemmIsa::kAvx2); }});
  pairs.push_back({"gemm_zero_skip", "zero-skipping GEMM on sparse probes vs double GEMM", 1e-4,
                   256.0, gemm_zero_skip_trial});
  pairs.push_back({"conv2d_striped", "striped im2col conv (k in {3,5,7}, strides, SAME/VALID)",
                   1e-4, 256.0, conv2d_trial});
  pairs.push_back(
      {"conv2d_1x1", "pointwise conv fast path (no im2col)", 1e-5, 64.0, conv2d_1x1_trial});
  pairs.push_back({"conv2d_zero_skip", "zero-skipping conv on sparse inputs", 1e-4, 256.0,
                   conv2d_zero_skip_trial});
  pairs.push_back({"conv2d_winograd", "Winograd F(2x2,3x3) incl. partial boundary tiles", 1e-4,
                   512.0, winograd_trial});
  pairs.push_back({"collapse_linear_block",
                   "collapsed kernel vs expanded chain run in double (Algorithm 1)", 5e-4, 512.0,
                   collapse_trial});
  pairs.push_back({"conv2d_int8",
                   "int8 conv, int32 accumulation, vs exact int64 reference (incl. "
                   "zero/near-zero calibration)",
                   1e-6, 4.0, conv2d_int8_trial});
  pairs.push_back({"quantized_sesr",
                   "full quantized pipeline vs bit-accurate int64-accumulated replay", 0.0, 0.0,
                   quantized_sesr_trial});
  pairs.push_back({"gemm_s8_generic",
                   "packed u8 x s8 GEMM, scalar micro-kernel, vs exact int64 reference", 0.0, 0.0,
                   [](std::uint64_t s) {
                     return gemm_s8_trial_with_isa(s, nn::GemmS8Isa::kGeneric);
                   }});
  pairs.push_back({"gemm_s8_avx2",
                   "packed u8 x s8 GEMM, AVX2 madd_epi16 micro-kernel, vs exact int64 reference",
                   0.0, 0.0, [](std::uint64_t s) {
                     return gemm_s8_trial_with_isa(s, nn::GemmS8Isa::kAvx2);
                   }});
  pairs.push_back({"gemm_s8_vnni",
                   "packed u8 x s8 GEMM, AVX-VNNI dpbusd micro-kernel, vs exact int64 reference",
                   0.0, 0.0, [](std::uint64_t s) {
                     return gemm_s8_trial_with_isa(s, nn::GemmS8Isa::kVnni);
                   }});
  pairs.push_back({"conv2d_int8_vs_ref",
                   "serving-path int8 conv (fused dequant/bias/act) vs int64 reference with "
                   "identical epilogue (must be bit-exact)",
                   0.0, 0.0, conv2d_s8_vs_ref_trial});
  pairs.push_back({"collapsed_int8_vs_fp32",
                   "collapsed network pure-int8 upscale vs fp32 upscale, PSNR-gated (>= 35 dB)",
                   1.0, 0.0, collapsed_int8_trial});
  pairs.push_back({"tiled_inference", "exact-halo tiled upscale vs full-frame upscale", 1e-5, 0.0,
                   tiled_trial});
  pairs.push_back({"streaming_inference", "line-buffer streaming upscale vs full-frame upscale",
                   1e-5, 0.0, streaming_trial});
  pairs.push_back({"tiled_vs_fullframe",
                   "serve-regime tiling (tiny/strip frames, tile > image, halo slack) vs full "
                   "frame",
                   1e-5, 0.0, tiled_vs_fullframe_trial});
  pairs.push_back({"streaming_vs_fullframe",
                   "serve-regime streaming (tiny/strip frames) vs full frame", 1e-5, 0.0,
                   streaming_vs_fullframe_trial});
  pairs.push_back({"cached_vs_cold_serve",
                   "response-cache hit vs the cold serve that filled it (all exec modes, both "
                   "precisions; must be bit-exact)",
                   0.0, 0.0, cached_vs_cold_serve_trial});
  pairs.push_back({"video_delta_vs_full",
                   "video-session tile-delta output vs full re-upscale of every frame (all exec "
                   "modes, all four precisions; must be bit-exact)",
                   0.0, 0.0, video_delta_vs_full_trial});
  pairs.push_back({"planned_vs_direct",
                   "compiled execution plan (fused steps, packed arena) vs the direct per-layer "
                   "path (all four precisions; frame/batch/tiled/cache-churn regimes; must be "
                   "bit-exact)",
                   0.0, 0.0, planned_vs_direct_trial});
  pairs.push_back({"fp16_roundtrip_scalar",
                   "fp32->fp16->fp32 round trip, scalar kernels, vs scalar reference (exact)",
                   0.0, 0.0, [](std::uint64_t s) {
                     return fp16_roundtrip_trial_with_isa(s, fp16::F16cIsa::kGeneric);
                   }});
  pairs.push_back({"fp16_roundtrip_f16c",
                   "fp32->fp16->fp32 round trip, F16C kernels, vs scalar reference (exact)", 0.0,
                   0.0, [](std::uint64_t s) {
                     return fp16_roundtrip_trial_with_isa(s, fp16::F16cIsa::kF16c);
                   }});
  pairs.push_back({"conv2d_fp16_vs_fp32",
                   "fp16-storage conv (fp32 accumulate, rounded store) vs double conv on the "
                   "rounded operands",
                   2e-2, 0.0, conv2d_fp16_trial});
  pairs.push_back({"collapsed_fp16_vs_fp32",
                   "collapsed network fp16 upscale vs fp32 upscale (cumulative rounding drift)",
                   1e-2, 0.0, collapsed_fp16_trial});
  pairs.push_back({"depth_to_space", "pixel shuffle vs reference permutation (must be exact)",
                   0.0, 0.0, depth_to_space_trial});
  pairs.push_back({"resize_bicubic",
                   "separable float bicubic vs double MATLAB-convention reference", 1e-5, 64.0,
                   resize_trial});
  pairs.push_back({"ssim", "clamped SSIM vs cancellation-free two-pass reference", 1e-9, 0.0,
                   ssim_trial});
  pairs.push_back({"psnr", "PSNR vs Kahan-summed reference (incl. identical images)", 1e-9, 0.0,
                   psnr_trial});
  return pairs;
}

}  // namespace

const std::vector<AuditPair>& builtin_pairs() {
  static const std::vector<AuditPair> pairs = make_builtin_pairs();
  return pairs;
}

}  // namespace sesr::check
