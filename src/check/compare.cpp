#include "check/compare.hpp"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace sesr::check {

void ErrorStats::merge(const ErrorStats& other) {
  max_abs = std::max(max_abs, other.max_abs);
  if (other.worst_index >= 0 && (worst_index < 0 || other.max_ulp > max_ulp)) {
    worst_index = count + other.worst_index;
    worst_got = other.worst_got;
    worst_want = other.worst_want;
  }
  max_ulp = std::max(max_ulp, other.max_ulp);
  count += other.count;
}

namespace {

// Spacing between adjacent floats at |x|, floored at the smallest normal so
// the distance stays finite (and meaningful) around zero and denormals.
double float_spacing(double x) {
  const float ax = static_cast<float>(std::fabs(x));
  const float next = std::nextafter(ax, std::numeric_limits<float>::infinity());
  const double spacing = static_cast<double>(next) - static_cast<double>(ax);
  return std::max(spacing, static_cast<double>(FLT_MIN));
}

double double_spacing(double x) {
  const double ax = std::fabs(x);
  const double next = std::nextafter(ax, std::numeric_limits<double>::infinity());
  return std::max(next - ax, DBL_MIN);
}

}  // namespace

double ulp_distance_f32(float got, double want) {
  if (std::isnan(got) || std::isnan(want) || std::isinf(got) || std::isinf(want)) {
    // Only an exact match of non-finite values counts as zero distance.
    const double g = static_cast<double>(got);
    if (std::isinf(g) && std::isinf(want) && std::signbit(g) == std::signbit(want)) return 0.0;
    if (std::isnan(g) && std::isnan(want)) return 0.0;
    return std::numeric_limits<double>::infinity();
  }
  return std::fabs(static_cast<double>(got) - want) / float_spacing(want);
}

double ulp_distance_f64(double got, double want) {
  if (std::isnan(got) || std::isnan(want) || std::isinf(got) || std::isinf(want)) {
    if (std::isinf(got) && std::isinf(want) && std::signbit(got) == std::signbit(want)) return 0.0;
    if (std::isnan(got) && std::isnan(want)) return 0.0;
    return std::numeric_limits<double>::infinity();
  }
  return std::fabs(got - want) / double_spacing(want);
}

ErrorStats compare_f32(std::span<const float> got, std::span<const double> want) {
  if (got.size() != want.size()) throw std::invalid_argument("compare_f32: size mismatch");
  ErrorStats stats;
  stats.count = static_cast<std::int64_t>(got.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double abs_err = std::fabs(static_cast<double>(got[i]) - want[i]);
    stats.max_abs = std::max(stats.max_abs, abs_err);
    const double ulp = ulp_distance_f32(got[i], want[i]);
    if (ulp > stats.max_ulp || stats.worst_index < 0) {
      stats.max_ulp = std::max(stats.max_ulp, ulp);
      stats.worst_index = static_cast<std::int64_t>(i);
      stats.worst_got = static_cast<double>(got[i]);
      stats.worst_want = want[i];
    }
  }
  return stats;
}

ErrorStats compare_f64(std::span<const double> got, std::span<const double> want) {
  if (got.size() != want.size()) throw std::invalid_argument("compare_f64: size mismatch");
  ErrorStats stats;
  stats.count = static_cast<std::int64_t>(got.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double abs_err = std::fabs(got[i] - want[i]);
    stats.max_abs = std::max(stats.max_abs, abs_err);
    const double ulp = ulp_distance_f64(got[i], want[i]);
    if (ulp > stats.max_ulp || stats.worst_index < 0) {
      stats.max_ulp = std::max(stats.max_ulp, ulp);
      stats.worst_index = static_cast<std::int64_t>(i);
      stats.worst_got = got[i];
      stats.worst_want = want[i];
    }
  }
  return stats;
}

std::uint64_t hash_bits(std::span<const float> data) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const float v : data) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (bits >> shift) & 0xFFU;
      h *= 1099511628211ULL;  // FNV prime
    }
  }
  return h;
}

std::uint64_t hash_bits_f64(std::span<const double> data) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const double v : data) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (bits >> shift) & 0xFFU;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace sesr::check
