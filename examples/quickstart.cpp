// Quickstart: the 60-second tour of the SESR library.
//
//   1. Build a synthetic training corpus (LR/HR pairs).
//   2. Construct SESR-M5 and train it briefly with the paper's recipe
//      (Adam, constant 5e-4, L1 loss) in the efficient collapsed-forward mode.
//   3. Collapse to the deployable VGG-like network (Algorithms 1 + 2).
//   4. Upscale a validation image and compare against bicubic.
//
// Run:  ./quickstart [steps]     (default 150)
#include <cstdio>
#include <cstdlib>

#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "data/dataset.hpp"
#include "data/resize.hpp"
#include "metrics/psnr.hpp"
#include "train/trainer.hpp"

using namespace sesr;

int main(int argc, char** argv) {
  const std::int64_t steps = argc > 1 ? std::strtol(argv[1], nullptr, 10) : 150;

  // 1. Data: a synthetic stand-in for DIV2K (see DESIGN.md).
  Rng data_rng(2024);
  data::SrDataset corpus = data::SrDataset::synthetic_corpus(/*count=*/8, 64, 64, /*scale=*/2,
                                                             data_rng);
  std::printf("corpus: %zu synthetic images, x%lld SISR\n", corpus.size(),
              static_cast<long long>(corpus.scale()));

  // 2. Model + training. The network trains in collapsed-forward mode: every
  //    step collapses the linear blocks (cheap) and convolves with the narrow
  //    kernels — the paper's Fig. 3 efficient implementation.
  Rng model_rng(1);
  core::SesrNetwork net(core::sesr_m5(2), model_rng);
  std::printf("model: %s, %lld collapsed parameters\n", net.name().c_str(),
              static_cast<long long>(net.collapsed_parameter_count()));

  train::Adam adam(5e-4F);
  train::ConstantLr schedule(5e-4F);
  train::Trainer trainer(net, adam, schedule, train::l1_loss);
  Rng batch_rng(7);
  train::TrainOptions options;
  options.steps = steps;
  options.log_every = steps > 10 ? steps / 10 : 1;
  trainer.run([&](std::int64_t) { return corpus.sample_batch(4, 16, batch_rng); }, options);

  // 3. Collapse for deployment: m+2 narrow convolutions, nothing else.
  core::SesrInference deployed(net);
  std::printf("collapsed: %zu convolutions, %lld parameters\n",
              deployed.convolutions().size(),
              static_cast<long long>(deployed.parameter_count()));

  // 4. Evaluate against bicubic on a held-out image.
  auto [lr_img, hr_img] = corpus.image_pair(0);
  Tensor sr = deployed.upscale(lr_img);
  Tensor bicubic = data::upscale_bicubic(lr_img, 2);
  std::printf("PSNR:  SESR %.2f dB   bicubic %.2f dB\n",
              metrics::psnr_shaved(sr, hr_img, 2), metrics::psnr_shaved(bicubic, hr_img, 2));
  std::printf("(train longer — e.g. ./quickstart 2000 — to push SESR well past bicubic)\n");
  return 0;
}
