// NPU deployment planning: price a model zoo on the simulated Ethos-N78-class
// NPU for a chosen upscaling task, then explore tile sizes — the Section 5.6
// workflow a deployment engineer would run before committing to a model.
//
// Run:  ./npu_deployment [height] [width] [scale]    (default 1080 1920 2)
#include <cstdio>
#include <cstdlib>

#include "core/sesr_network.hpp"
#include "hw/network_ir.hpp"
#include "hw/npu_simulator.hpp"

using namespace sesr;

int main(int argc, char** argv) {
  const std::int64_t h = argc > 1 ? std::strtol(argv[1], nullptr, 10) : 1080;
  const std::int64_t w = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 1920;
  const std::int64_t scale = argc > 3 ? std::strtol(argv[3], nullptr, 10) : 2;
  const hw::NpuConfig npu = hw::ethos_n78_like();

  std::printf("task: %lldx%lld -> %lldx%lld (x%lld) on %.0f TOP/s NPU\n\n",
              static_cast<long long>(w), static_cast<long long>(h),
              static_cast<long long>(w * scale), static_cast<long long>(h * scale),
              static_cast<long long>(scale), npu.tops);

  std::printf("%-28s %9s %10s %10s %8s %9s\n", "model", "GMACs", "DRAM", "runtime", "FPS",
              "cascades");
  std::vector<core::SesrConfig> zoo{core::sesr_m3(scale), core::sesr_m5(scale),
                                    core::sesr_m7(scale), core::sesr_m11(scale),
                                    core::sesr_xl(scale)};
  for (const auto& cfg : zoo) {
    const hw::PerfReport r = hw::simulate(hw::sesr_ir(core::hardware_variant(cfg), h, w), npu);
    std::printf("%-28s %8.1fG %8.1fMB %8.2fms %8.1f %9zu\n", cfg.describe().c_str(),
                static_cast<double>(r.macs) * 1e-9, r.dram_traffic_mb, r.runtime_ms, r.fps,
                r.cascades.size());
  }
  {
    const hw::PerfReport r = hw::simulate(hw::fsrcnn_ir(h, w, scale), npu);
    std::printf("%-28s %8.1fG %8.1fMB %8.2fms %8.1f %9zu\n", "FSRCNN",
                static_cast<double>(r.macs) * 1e-9, r.dram_traffic_mb, r.runtime_ms, r.fps,
                r.cascades.size());
  }

  // Tiling is explored on FSRCNN: its 56-channel maps fracture the cascade at
  // full frame, so tiles genuinely buy DRAM traffic back. (Our fusion model
  // streams 16-channel SESR end-to-end even at 1080p, so SESR only pays halo
  // overhead from tiling — Arm's estimator fuses less aggressively, which is
  // why the paper still gains ~20% by tiling SESR; see EXPERIMENTS.md.)
  std::printf("\ntile-size exploration for FSRCNN (halo 4 px per side):\n");
  std::printf("%12s %14s %12s %12s %10s\n", "tile", "tiles/frame", "ms/tile", "ms/frame", "FPS");
  const hw::NetworkIr full = hw::fsrcnn_ir(h, w, scale);
  struct TileChoice {
    std::int64_t th;
    std::int64_t tw;
  };
  for (const TileChoice t : {TileChoice{135, 240}, TileChoice{270, 480}, TileChoice{300, 400},
                             TileChoice{540, 960}, TileChoice{1080, 1920}}) {
    if (t.th > h || t.tw > w) continue;
    const hw::TiledReport r = hw::simulate_tiled(full, t.th, t.tw, npu, /*halo=*/4);
    std::printf("%6lldx%-5lld %14.2f %12.3f %12.2f %10.1f\n", static_cast<long long>(t.tw),
                static_cast<long long>(t.th), r.tile_count, r.tile.runtime_ms,
                r.total_runtime_ms, r.fps);
  }
  std::printf("\nsmaller tiles keep every tensor in SRAM but pay halo overhead; large tiles\n"
              "spill to DRAM — the sweet spot is the paper's Section 5.6 tiling argument.\n");
  return 0;
}
