// Command-line upscaler: read a PGM/PPM image, super-resolve its Y channel
// with a (trained or freshly-initialized) collapsed SESR network, and write
// the result. Color inputs are handled the standard SISR way: SESR on Y,
// bicubic on Cb/Cr.
//
// Run:  ./upscale_image <input.pgm|ppm> <output.pgm|ppm> [scale] [checkpoint]
// With no checkpoint a briefly-trained SESR-M5 is used (trained on the
// synthetic corpus at startup — a few seconds).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "data/color.hpp"
#include "data/dataset.hpp"
#include "data/image_io.hpp"
#include "data/resize.hpp"
#include "tensor/tensor_ops.hpp"
#include "train/trainer.hpp"

using namespace sesr;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <input.pgm|ppm> <output.pgm|ppm> [scale=2] [checkpoint]\n",
                 argv[0]);
    return 2;
  }
  const std::string in_path = argv[1];
  const std::string out_path = argv[2];
  const std::int64_t scale = argc > 3 ? std::strtol(argv[3], nullptr, 10) : 2;

  try {
    Tensor image = data::read_pnm(in_path);
    std::printf("input: %s %s\n", in_path.c_str(), image.shape().to_string().c_str());

    core::SesrInference net = [&]() {
      if (argc > 4) {
        std::printf("loading collapsed checkpoint %s\n", argv[4]);
        return core::SesrInference(load_tensors(argv[4]));
      }
      std::printf("no checkpoint given — training SESR-M5 briefly on synthetic data...\n");
      Rng data_rng(1);
      data::SrDataset corpus = data::SrDataset::synthetic_corpus(6, 64, 64, scale, data_rng);
      Rng model_rng(2);
      core::SesrNetwork trained(core::sesr_m5(scale), model_rng);
      train::Adam adam(5e-4F);
      train::ConstantLr schedule(5e-4F);
      train::Trainer trainer(trained, adam, schedule, train::l1_loss);
      Rng batch_rng(3);
      train::TrainOptions options;
      options.steps = 150;
      trainer.run([&](std::int64_t) { return corpus.sample_batch(4, 12, batch_rng); }, options);
      return core::SesrInference(trained);
    }();
    if (net.config().scale != scale) {
      std::fprintf(stderr, "checkpoint is x%lld but x%lld requested\n",
                   static_cast<long long>(net.config().scale), static_cast<long long>(scale));
      return 2;
    }

    Tensor out;
    if (image.shape().c() == 1) {
      out = net.upscale(image);
    } else {
      // Y through SESR, chroma through bicubic (footnote 1 of the paper).
      Tensor ycc = data::rgb_to_ycbcr(image);
      const Shape& s = ycc.shape();
      Tensor y(1, s.h(), s.w(), 1);
      for (std::int64_t i = 0; i < y.numel(); ++i) y.raw()[i] = ycc.raw()[i * 3];
      Tensor y_up = net.upscale(y);
      Tensor ycc_up = data::upscale_bicubic(ycc, scale);
      for (std::int64_t i = 0; i < y_up.numel(); ++i) ycc_up.raw()[i * 3] = y_up.raw()[i];
      out = data::ycbcr_to_rgb(ycc_up);
    }
    data::write_pnm(out_path, out);
    std::printf("wrote %s %s\n", out_path.c_str(), out.shape().to_string().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
