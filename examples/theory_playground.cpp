// Interactive Section-4 playground: pick data statistics, learning rate and
// step count on the command line, and watch the four overparameterization
// schemes' collapsed weights evolve on the scalar regression problem — the
// fastest way to internalize why SESR's update is "more adaptive" and why
// RepVGG's is just VGG's.
//
// Run:  ./theory_playground [eta] [steps] [target_beta]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "theory/overparam.hpp"

using namespace sesr;

int main(int argc, char** argv) {
  const double eta = argc > 1 ? std::strtod(argv[1], nullptr) : 0.02;
  const std::int64_t steps = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 120;
  const double target = argc > 3 ? std::strtod(argv[3], nullptr) : 3.0;
  const double sxx = 1.0;
  const double sxy = target * sxx;
  const double beta0 = 0.2;

  std::printf("scalar regression: L(beta) = E[(x*beta - y)^2]/2, optimum beta* = %.2f\n", target);
  std::printf("all schemes start at beta = %.2f, eta = %g\n\n", beta0, eta);

  const auto vgg = theory::train_scalar(theory::Scheme::kVgg, beta0, 0.0, sxx, sxy, eta, steps);
  const auto expand =
      theory::train_scalar(theory::Scheme::kExpandNet, beta0, 1.0, sxx, sxy, eta, steps);
  const auto sesr =
      theory::train_scalar(theory::Scheme::kSesr, beta0 - 1.0, 1.0, sxx, sxy, eta, steps);
  const auto repvgg = theory::train_scalar(theory::Scheme::kRepVgg, (beta0 - 1) / 2,
                                           (beta0 - 1) / 2, sxx, sxy, eta, steps);

  std::printf("%6s %10s %12s %12s %12s\n", "step", "VGG", "ExpandNet", "SESR", "RepVGG");
  const std::int64_t stride = steps >= 12 ? steps / 12 : 1;
  for (std::int64_t t = 0; t <= steps; t += stride) {
    const auto i = static_cast<std::size_t>(t);
    std::printf("%6lld %10.5f %12.5f %12.5f %12.5f\n", static_cast<long long>(t), vgg[i],
                expand[i], sesr[i], repvgg[i]);
  }

  // First-to-tolerance comparison.
  auto first_within = [&](const std::vector<double>& traj, double tol) -> std::int64_t {
    for (std::size_t t = 0; t < traj.size(); ++t) {
      if (std::fabs(traj[t] - target) < tol) return static_cast<std::int64_t>(t);
    }
    return -1;
  };
  constexpr double kTol = 0.05;
  std::printf("\nsteps to |beta - beta*| < %.2f:  VGG %lld, ExpandNet %lld, SESR %lld, "
              "RepVGG %lld (= VGG at 2*eta)\n",
              kTol, static_cast<long long>(first_within(vgg, kTol)),
              static_cast<long long>(first_within(expand, kTol)),
              static_cast<long long>(first_within(sesr, kTol)),
              static_cast<long long>(first_within(repvgg, kTol)));
  std::printf("\ntry:  ./theory_playground 0.005 600   (small steps: adaptivity gap widens)\n");
  return 0;
}
