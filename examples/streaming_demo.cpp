// Streaming inference demo: upscale with the line-buffer pipeline and show
// that peak memory stays flat as the image grows taller — the functional
// counterpart of the NPU cascade fusion behind the paper's Table 3 numbers.
//
// Run:  ./streaming_demo [width]      (default 256)
#include <cstdio>
#include <cstdlib>

#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "core/streaming.hpp"
#include "data/synthetic.hpp"
#include "tensor/tensor_ops.hpp"

using namespace sesr;

int main(int argc, char** argv) {
  const std::int64_t width = argc > 1 ? std::strtol(argv[1], nullptr, 10) : 256;

  Rng rng(1);
  core::SesrNetwork net(core::sesr_m5(2), rng);
  core::SesrInference deployed(net);
  core::StreamingUpscaler streamer(deployed);
  std::printf("model: %s, receptive field radius %lld px\n\n", deployed.name().c_str(),
              static_cast<long long>(9));

  std::printf("%10s %16s %20s %22s\n", "height", "batch buffer*", "streaming peak",
              "exact match");
  Rng irng(2);
  for (const std::int64_t height : {32L, 64L, 128L, 256L}) {
    Tensor image = data::synthesize_image(data::ImageFamily::kNatural, height, width, irng);
    Tensor batch_out = deployed.upscale(image);
    Tensor stream_out = streamer.upscale(image);
    // Batch inference materializes every intermediate: ~(m+2) maps of f chans.
    const double batch_mb =
        static_cast<double>(height * width) * 16.0 * 7.0 * 4.0 / 1e6;
    std::printf("%10lld %13.1f MB %17.1f KB %22s\n", static_cast<long long>(height), batch_mb,
                static_cast<double>(streamer.peak_buffered_bytes()) / 1e3,
                max_abs_diff(batch_out, stream_out) < 1e-5F ? "yes" : "NO");
  }
  std::printf("\n* sum of float32 intermediate feature maps a naive batch pass holds.\n");
  std::printf("Streaming memory depends on width and kernel rows only — height-independent,\n");
  std::printf("just like the NPU's fused cascades (src/hw). This is why collapsing residuals\n");
  std::printf("matters: every long skip is a stream that must stay buffered across the\n");
  std::printf("pipeline delay.\n");
  return 0;
}
