// Full production workflow: train SESR, checkpoint the expanded model, collapse
// it, save the deployment checkpoint, reload it as a standalone inference
// network, and verify bit-exact agreement — the path a real deployment takes
// (train on a workstation, ship the collapsed weights to a device).
//
// Run:  ./train_collapse_deploy [steps] [output_dir]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "data/dataset.hpp"
#include "metrics/psnr.hpp"
#include "tensor/tensor_ops.hpp"
#include "train/trainer.hpp"

using namespace sesr;

int main(int argc, char** argv) {
  const std::int64_t steps = argc > 1 ? std::strtol(argv[1], nullptr, 10) : 200;
  const std::filesystem::path out_dir = argc > 2 ? argv[2] : std::filesystem::temp_directory_path();

  Rng data_rng(11);
  data::SrDataset corpus = data::SrDataset::synthetic_corpus(8, 64, 64, 2, data_rng);

  // --- train ---------------------------------------------------------------
  Rng model_rng(3);
  core::SesrNetwork net(core::sesr_m7(2), model_rng);
  train::Adam adam(5e-4F);
  train::ConstantLr schedule(5e-4F);
  train::Trainer trainer(net, adam, schedule, train::l1_loss);
  Rng batch_rng(5);
  train::TrainOptions options;
  options.steps = steps;
  options.log_every = steps > 5 ? steps / 5 : 1;
  std::printf("== training %s for %lld steps ==\n", net.name().c_str(),
              static_cast<long long>(steps));
  trainer.run([&](std::int64_t) { return corpus.sample_batch(4, 16, batch_rng); }, options);

  // --- checkpoint the expanded (trainable) model -----------------------------
  const std::string expanded_path = (out_dir / "sesr_m7_expanded.ckpt").string();
  save_tensors(expanded_path, nn::parameters_to_map(net.parameters()));
  std::printf("== saved expanded checkpoint: %s ==\n", expanded_path.c_str());

  // --- collapse and save the deployment artifact -----------------------------
  core::SesrInference deployed(net);
  const std::string deploy_path = (out_dir / "sesr_m7_collapsed.ckpt").string();
  save_tensors(deploy_path, deployed.to_tensor_map());
  std::printf("== collapsed to %lld parameters, saved: %s ==\n",
              static_cast<long long>(deployed.parameter_count()), deploy_path.c_str());

  // --- "on device": reload and verify ---------------------------------------
  core::SesrInference device_net(load_tensors(deploy_path));
  auto [lr_img, hr_img] = corpus.image_pair(1);
  Tensor from_training_graph = net.predict(lr_img);
  Tensor from_device = device_net.upscale(lr_img);
  std::printf("== verification ==\n");
  std::printf("max |training graph - deployed| = %.3e (collapse is analytic, not approximate)\n",
              static_cast<double>(max_abs_diff(from_training_graph, from_device)));
  std::printf("PSNR on held-out image: %.2f dB\n",
              metrics::psnr_shaved(from_device, hr_img, 2));

  // Resume training from the expanded checkpoint (e.g. fine-tuning for x4).
  Rng fresh_rng(999);
  core::SesrNetwork resumed(core::sesr_m7(2), fresh_rng);
  nn::load_parameters_from_map(resumed.parameters(), load_tensors(expanded_path));
  std::printf("resumed-from-checkpoint output matches: %s\n",
              max_abs_diff(resumed.predict(lr_img), from_training_graph) == 0.0F ? "yes" : "NO");
  return 0;
}
