// NAS walkthrough: search the SESR block space (even/asymmetric kernels,
// widths, depths) under an NPU latency budget, then train the winning
// architecture properly and compare it to hand-designed SESR-M5.
//
// Run:  ./nas_search [latency_fraction] [proxy_steps]   (default 0.85 40)
#include <cstdio>
#include <cstdlib>

#include "data/dataset.hpp"
#include "metrics/psnr.hpp"
#include "nas/candidate_network.hpp"
#include "nas/evolution.hpp"
#include "train/trainer.hpp"

using namespace sesr;

int main(int argc, char** argv) {
  const double fraction = argc > 1 ? std::strtod(argv[1], nullptr) : 0.85;
  const std::int64_t proxy_steps = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 40;
  const hw::NpuConfig npu = hw::ethos_n78_like();

  Rng data_rng(9);
  data::SrDataset corpus = data::SrDataset::synthetic_corpus(6, 48, 48, 2, data_rng);

  // Budget: a fraction of hand-designed SESR-M5's latency at 200x200 -> 400x400.
  nas::Genome m5;
  m5.f = 16;
  m5.blocks.assign(5, nas::KernelChoice{3, 3});
  const double m5_latency = nas::candidate_latency_ms(m5, npu, 200, 200);

  nas::SearchOptions options;
  options.population = 6;
  options.generations = 3;
  options.keep_top = 2;
  options.latency_h = 200;
  options.latency_w = 200;
  options.latency_limit_ms = m5_latency * fraction;
  options.proxy_steps = proxy_steps;
  options.proxy_expand = 32;
  options.proxy_crop = 12;
  options.min_depth = 3;
  options.max_depth = 9;
  std::printf("searching: budget %.3f ms (%.0f%% of SESR-M5), population %lld, %lld generations\n",
              options.latency_limit_ms, fraction * 100,
              static_cast<long long>(options.population),
              static_cast<long long>(options.generations));

  const nas::SearchResult result = nas::evolutionary_search(corpus, npu, options);
  std::printf("\nfinal population (fitness-sorted):\n");
  for (const auto& e : result.final_population) {
    std::printf("  %-40s lat %.3fms  psnr %.2f  %s\n", e.genome.describe().c_str(), e.latency_ms,
                e.psnr, e.feasible ? "" : "INFEASIBLE");
  }

  // Train the winner with a larger budget and compare against SESR-M5 (as a
  // genome, so both use identical plumbing).
  std::printf("\n== final training of the found architecture ==\n");
  const std::int64_t final_steps = proxy_steps * 4;
  auto train_full = [&](const nas::Genome& genome, const char* label) {
    Rng rng(31);
    nas::CandidateNetwork net(genome, /*expand=*/64, rng);
    train::Adam adam(5e-4F);
    train::ConstantLr schedule(5e-4F);
    train::Trainer trainer(net, adam, schedule, train::l1_loss);
    Rng batch_rng(33);
    train::TrainOptions topt;
    topt.steps = final_steps;
    trainer.run([&](std::int64_t) { return corpus.sample_batch(4, 12, batch_rng); }, topt);
    double psnr = 0.0;
    for (std::size_t i = 0; i < 2; ++i) {
      auto [lr_img, hr_img] = corpus.image_pair(i);
      psnr += metrics::psnr_shaved(net.predict(lr_img), hr_img, 2) / 2.0;
    }
    std::printf("  %-40s latency %.3fms  PSNR %.2f dB\n", label,
                nas::candidate_latency_ms(genome, npu, 200, 200), psnr);
    return psnr;
  };
  train_full(result.best.genome, result.best.genome.describe().c_str());
  train_full(m5, "SESR-M5 (hand-designed)");
  std::printf("\npaper Sec. 5.6: the NAS net cut inference time ~15%% at matched accuracy.\n");
  return 0;
}
