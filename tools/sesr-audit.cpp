// Differential numerical audit of every optimized kernel in the library.
//
// Sweeps each optimized-vs-reference pair (src/check/audits.cpp) over
// randomized shapes/strides/data and over multiple global thread counts,
// reporting max-abs and max-ULP error per pair. Any tolerance violation or
// cross-thread-count nondeterminism prints the trial's seed and exits
// nonzero; `--pair <name> --replay <seed>` reruns exactly that trial.
//
//   sesr-audit                          # full sweep, all pairs
//   sesr-audit --quick                  # CI-sized sweep (fewer trials)
//   sesr-audit --pairs gemm_scalar,ssim # subset
//   sesr-audit --pair conv2d_striped --replay 1234567
//   sesr-audit --list
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/audit.hpp"
#include "cli_args.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<unsigned> parse_threads(const std::string& csv) {
  std::vector<unsigned> out;
  for (const std::string& t : split_csv(csv)) {
    out.push_back(static_cast<unsigned>(std::stoul(t)));
  }
  return out;
}

int list_pairs() {
  for (const auto& pair : sesr::check::builtin_pairs()) {
    std::printf("%-24s tol_abs=%-8g tol_ulp=%-6g %s\n", pair.name.c_str(), pair.tol_abs,
                pair.tol_ulp, pair.description.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using sesr::cli::Args;
  const std::vector<Args::Option> options = {
      {"pairs", "all", "comma-separated pair names to audit (\"all\" = every pair)"},
      {"pair", "none", "single pair name (required with --replay)"},
      {"trials", "32", "random trials per pair per thread count"},
      {"seed", "0", "base seed (0 = the built-in default)"},
      {"threads", "1,4", "comma-separated global thread counts to sweep"},
      {"replay", "-1", "rerun one trial with this exact seed (needs --pair)"},
      {"quick", "", "CI preset: 8 trials per pair"},
      {"list", "", "list the registered audit pairs and exit"},
      {"help", "", "show this help"},
  };
  try {
    const Args args(options, argc, argv);
    if (args.get_flag("help")) {
      args.usage("sesr-audit", "differential numerical audit of the optimized kernels");
      return 0;
    }
    if (args.get_flag("list")) return list_pairs();

    sesr::check::AuditOptions audit;
    audit.thread_counts = parse_threads(args.get("threads"));
    if (args.get_int("seed") != 0) {
      audit.base_seed = static_cast<std::uint64_t>(args.get_int("seed"));
    }
    audit.trials = static_cast<int>(args.get_int("trials"));
    if (args.get_flag("quick")) audit.trials = 8;

    // Replay mode: one pair, one explicit seed.
    if (args.get_int("replay") >= 0) {
      const std::string name = args.get("pair");
      const sesr::check::AuditPair* pair = sesr::check::find_pair(name);
      if (pair == nullptr) {
        std::fprintf(stderr, "sesr-audit: --replay needs --pair <name>; \"%s\" is not a pair "
                             "(see --list)\n", name.c_str());
        return 2;
      }
      const auto seed = static_cast<std::uint64_t>(args.get_int("replay"));
      const sesr::check::PairReport report =
          sesr::check::replay_trial(*pair, seed, audit.thread_counts);
      audit.trials = 1;
      audit.base_seed = seed;
      sesr::check::print_report(std::cout, {report}, audit);
      return report.passed() ? 0 : 1;
    }

    if (args.get("pairs") != "all") audit.pair_filter = split_csv(args.get("pairs"));
    if (args.get("pair") != "none") audit.pair_filter.push_back(args.get("pair"));
    if (!audit.pair_filter.empty()) {
      for (const std::string& name : audit.pair_filter) {
        if (sesr::check::find_pair(name) == nullptr) {
          std::fprintf(stderr, "sesr-audit: unknown pair \"%s\" (see --list)\n", name.c_str());
          return 2;
        }
      }
    }

    const std::vector<sesr::check::PairReport> reports = sesr::check::run_audit(audit);
    if (reports.empty()) {
      std::fprintf(stderr, "sesr-audit: no pairs selected\n");
      return 2;
    }
    sesr::check::print_report(std::cout, reports, audit);
    return sesr::check::all_passed(reports) ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sesr-audit: %s\n", e.what());
    return 2;
  }
}
