// sesr_hwsim — price a network on the simulated mobile NPU with configurable
// hardware parameters; the interactive counterpart of bench_table3_npu.
//
//   sesr_hwsim --model=sesr-m5 --height=1080 --width=1920 --scale=2
//   sesr_hwsim --model=fsrcnn --dram-gbps=16 --tops=8
//   sesr_hwsim --model=sesr-m5 --tile-h=300 --tile-w=400 --halo=9
#include <cstdio>
#include <stdexcept>

#include "cli_args.hpp"
#include "core/sesr_network.hpp"
#include "hw/network_ir.hpp"
#include "hw/npu_simulator.hpp"

using namespace sesr;

namespace {
hw::NetworkIr build_ir(const std::string& model, std::int64_t h, std::int64_t w,
                       std::int64_t scale, bool standard_residuals) {
  auto sesr_cfg = [&](std::int64_t f, std::int64_t m) {
    core::SesrConfig c;
    c.f = f;
    c.m = m;
    c.scale = scale;
    return standard_residuals ? c : core::hardware_variant(c);
  };
  if (model == "sesr-m3") return hw::sesr_ir(sesr_cfg(16, 3), h, w);
  if (model == "sesr-m5") return hw::sesr_ir(sesr_cfg(16, 5), h, w);
  if (model == "sesr-m7") return hw::sesr_ir(sesr_cfg(16, 7), h, w);
  if (model == "sesr-m11") return hw::sesr_ir(sesr_cfg(16, 11), h, w);
  if (model == "sesr-xl") return hw::sesr_ir(sesr_cfg(32, 11), h, w);
  if (model == "fsrcnn") return hw::fsrcnn_ir(h, w, scale);
  if (model == "vdsr") return hw::vdsr_ir(h, w, scale);
  throw std::invalid_argument("unknown --model '" + model +
                              "' (sesr-m3/m5/m7/m11/xl, fsrcnn, vdsr)");
}
}  // namespace

int main(int argc, char** argv) {
  cli::Args args(
      {
          {"model", "sesr-m5", "sesr-m3|sesr-m5|sesr-m7|sesr-m11|sesr-xl|fsrcnn|vdsr"},
          {"height", "1080", "LR input height"},
          {"width", "1920", "LR input width"},
          {"scale", "2", "upscaling factor"},
          {"standard-residuals", "", "keep the long residuals (default: hardware variant)"},
          {"tops", "4", "NPU peak TOP/s"},
          {"utilization", "0.55", "achieved fraction of peak compute"},
          {"dram-gbps", "8", "effective DRAM bandwidth"},
          {"cascade-kib", "1024", "SRAM budget for layer fusion"},
          {"linebuf-kib", "512", "per-layer line buffer"},
          {"tile-h", "0", "tile height (0 = untiled)"},
          {"tile-w", "0", "tile width"},
          {"halo", "0", "tile halo in pixels"},
          {"cascades", "", "print the per-cascade breakdown"},
          {"help", "", "show this help"},
      },
      argc, argv);
  if (args.get_flag("help")) {
    args.usage("sesr_hwsim", "price a network on the simulated mobile NPU");
    return 0;
  }

  try {
    hw::NpuConfig npu;
    npu.tops = args.get_double("tops");
    npu.utilization = args.get_double("utilization");
    npu.dram_gbps = args.get_double("dram-gbps");
    npu.cascade_buffer_bytes = args.get_int("cascade-kib") * 1024;
    npu.line_buffer_bytes = args.get_int("linebuf-kib") * 1024;

    const hw::NetworkIr ir =
        build_ir(args.get("model"), args.get_int("height"), args.get_int("width"),
                 args.get_int("scale"), args.get_flag("standard-residuals"));
    std::printf("%s @ %lldx%lld (x%lld) on %.1f TOP/s, %.1f GB/s DRAM\n", ir.name.c_str(),
                static_cast<long long>(args.get_int("width")),
                static_cast<long long>(args.get_int("height")),
                static_cast<long long>(args.get_int("scale")), npu.tops, npu.dram_gbps);

    if (args.get_int("tile-h") > 0 && args.get_int("tile-w") > 0) {
      const hw::TiledReport r = hw::simulate_tiled(ir, args.get_int("tile-h"),
                                                   args.get_int("tile-w"), npu,
                                                   args.get_int("halo"));
      std::printf("tiled: %.2f tiles of %.2f GMACs, %.3f ms each\n", r.tile_count,
                  static_cast<double>(r.tile.macs) * 1e-9, r.tile.runtime_ms);
      std::printf("frame: %.2f ms = %.1f FPS\n", r.total_runtime_ms, r.fps);
      return 0;
    }

    const hw::PerfReport r = hw::simulate(ir, npu);
    std::printf("MACs      %10.2f G\n", static_cast<double>(r.macs) * 1e-9);
    std::printf("params    %10.2f K\n", static_cast<double>(ir.total_parameters()) * 1e-3);
    std::printf("DRAM      %10.1f MB traffic (%.1f MB footprint)\n", r.dram_traffic_mb,
                r.dram_footprint_mb);
    std::printf("runtime   %10.2f ms\n", r.runtime_ms);
    std::printf("FPS       %10.1f\n", r.fps);
    if (args.get_flag("cascades")) {
      std::printf("\ncascades:\n");
      for (const auto& c : r.cascades) {
        std::printf("  %-34s %7.2fG  %8.1fMB  compute %7.2fms  dram %7.2fms -> %7.2fms\n",
                    c.label.c_str(), static_cast<double>(c.macs) * 1e-9,
                    static_cast<double>(c.dram_bytes) * 1e-6, c.compute_ms, c.dram_ms,
                    c.runtime_ms());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
