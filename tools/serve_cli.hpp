// Option table and validation for the sesr-serve load generator, separated
// from main() so tests/test_cli.cpp can drive the parser in-process. Every
// validation failure throws UsageError; sesr-serve turns that into the usage
// table plus a nonzero exit.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cli_args.hpp"
#include "serve/net/socket.hpp"
#include "serve/registry.hpp"
#include "serve/serve_options.hpp"

namespace sesr::cli {

class UsageError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

struct ServeCliConfig {
  serve::ServeOptions serve;
  std::string net = "m5";                                  // m3|m5|m7|m11|xl
  std::int64_t scale = 2;
  // Sharded serving: every route the server loads (always >= 1 entry; the
  // single-network flags --net/--scale/--precision populate one route when
  // --networks is not given). Traffic cycles through routes round-robin.
  std::vector<serve::RouteKey> routes;
  std::int64_t unique_frames = 1;                          // distinct frames per (route, shape)
  double qps = 0.0;                                        // 0 = closed loop
  std::int64_t frames = 256;                               // total request count
  double duration_s = 0.0;                                 // >0 = run for wall time
  std::vector<std::pair<std::int64_t, std::int64_t>> shapes;  // (H, W) mix
  std::int64_t threads = 1;                                // intra-op pool width
  std::uint64_t seed = 1;

  // TCP modes (mutually exclusive; both off = in-process load generator).
  std::int64_t listen_port = -1;   // >= 0: serve the routes on bind_address:port (0 = ephemeral)
  std::string bind_address = "127.0.0.1";  // server mode: "0.0.0.0" needs --auth-token
  std::string auth_token;          // shared secret (server requires, client sends)
  std::int64_t io_shards = 1;      // server mode: SO_REUSEPORT listener shards
  std::string connect_host;        // non-empty: drive a remote server instead
  std::uint16_t connect_port = 0;
  std::int64_t clients = 4;        // client mode: concurrent connections
  double deadline_ms = 0.0;        // per-request deadline (0 = none)
  double slo_p99_ms = 0.0;         // server mode: SLO budget for admission (0 = off)
  std::string chaos = "none";      // client mode: none|malformed|disconnect

  // Video replay (--video != none): each client (or route, in-process) runs
  // one closed-loop session over a seeded synthetic sequence of the given
  // temporal pattern, submitting consecutive frame seqs so the server's
  // tile-delta path can engage.
  std::string video = "none";      // none|static|pan|cut|sparkle|mixed
};

inline std::vector<Args::Option> serve_cli_options() {
  return {
      {"net", "m5", "SESR config: m3|m5|m7|m11|xl"},
      {"scale", "2", "upscale factor: 2 or 4"},
      {"networks", "auto", "sharded routes name:scale[:precision], e.g. m5:2,m11:2:fp16 "
                           "(auto = one route from --net/--scale/--precision)"},
      {"cache-entries", "0", "bit-exact LRU response cache capacity (0 = off)"},
      {"unique-frames", "1", "distinct frames per route+shape; 1 = maximal repetition"},
      {"fair-tiles", "1", "round-robin tile scheduling across requests (0 = FIFO)"},
      {"workers", "4", "worker sessions (>= 1)"},
      {"max-batch", "8", "micro-batch size cap (>= 1)"},
      {"max-delay-us", "2000", "batcher flush deadline in microseconds"},
      {"queue-capacity", "64", "bounded submission queue depth"},
      {"policy", "block", "overload policy: block|reject"},
      {"mode", "full", "execution: full|tiled|streaming|auto"},
      {"precision", "fp32", "worker arithmetic: fp32|fp16|int8|hybrid"},
      {"tile", "64", "LR tile edge for tiled/auto modes"},
      {"qps", "0", "open-loop Poisson arrival rate; 0 = closed loop"},
      {"frames", "256", "total frames to submit (exclusive with --duration-s)"},
      {"duration-s", "0", "run for this many seconds (exclusive with --frames)"},
      {"shapes", "64x64", "comma list of LR HxW shapes, e.g. 64x64,128x96"},
      {"threads", "1", "intra-op threads per upscale (1 = workers scale freely)"},
      {"seed", "1", "rng seed for weights, frames, and arrivals"},
      {"listen", "-1", "serve over TCP on --bind:PORT (0 = ephemeral; prints the port)"},
      {"bind", "127.0.0.1", "server bind address; 0.0.0.0 accepts from any interface "
                            "and requires --auth-token"},
      {"auth-token", "none", "shared-secret request token (server: require it; "
                             "client: send it; none = no auth)"},
      {"io-shards", "1", "server: SO_REUSEPORT listener shards, one IO thread each"},
      {"connect", "none", "drive a remote server at HOST:PORT (none = in-process)"},
      {"clients", "4", "client mode: concurrent connections (closed loop each)"},
      {"deadline-ms", "0", "per-request deadline in milliseconds (0 = none)"},
      {"slo-p99-ms", "0", "server p99 latency budget for SLO admission (0 = off)"},
      {"slo-headroom", "1.0", "admit while estimate <= headroom * budget; below 1.0 "
                              "sheds early to absorb estimator noise"},
      {"chaos", "none", "client mode fault injection: none|malformed|disconnect"},
      {"video", "none", "video session replay: none|static|pan|cut|sparkle|mixed "
                        "(closed-loop sequences through the tile-delta path)"},
      {"video-sessions", "64", "server: max live video sessions for tile-delta reuse (0 = off)"},
  };
}

inline std::vector<std::pair<std::int64_t, std::int64_t>> parse_shapes(const std::string& list) {
  std::vector<std::pair<std::int64_t, std::int64_t>> shapes;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = std::min(list.find(',', pos), list.size());
    const std::string item = list.substr(pos, comma - pos);
    const std::size_t x = item.find('x');
    if (item.empty() || x == std::string::npos) {
      throw UsageError("bad --shapes entry '" + item + "' (expected HxW, e.g. 64x64)");
    }
    try {
      const std::int64_t h = std::stoll(item.substr(0, x));
      const std::int64_t w = std::stoll(item.substr(x + 1));
      if (h < 1 || w < 1) throw UsageError("--shapes dims must be positive: '" + item + "'");
      shapes.emplace_back(h, w);
    } catch (const UsageError&) {
      throw;
    } catch (const std::exception&) {
      throw UsageError("bad --shapes entry '" + item + "' (expected HxW, e.g. 64x64)");
    }
    pos = comma + 1;
  }
  return shapes;
}

inline bool known_net(const std::string& name) {
  return name == "m3" || name == "m5" || name == "m7" || name == "m11" || name == "xl";
}

// Parses the --networks route list; throws UsageError on malformed specs,
// unknown nets, bad scales, or duplicate routes.
inline std::vector<serve::RouteKey> parse_networks(const std::string& list) {
  std::vector<serve::RouteKey> routes;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = std::min(list.find(',', pos), list.size());
    const std::string item = list.substr(pos, comma - pos);
    serve::RouteKey route;
    try {
      route = serve::parse_route(item);
    } catch (const std::exception& e) {
      throw UsageError("bad --networks entry '" + item + "': " + e.what());
    }
    if (!known_net(route.network)) {
      throw UsageError("unknown net '" + route.network + "' in --networks (expected m3|m5|m7|m11|xl)");
    }
    if (route.scale != 2 && route.scale != 4) {
      throw UsageError("--networks scale must be 2 or 4 in '" + item + "'");
    }
    for (const serve::RouteKey& existing : routes) {
      if (existing == route) throw UsageError("duplicate --networks route '" + item + "'");
    }
    routes.push_back(std::move(route));
    pos = comma + 1;
  }
  return routes;
}

// Parses and validates; throws UsageError on any bad or contradictory value.
inline ServeCliConfig parse_serve_cli(const Args& args) {
  ServeCliConfig config;
  config.net = args.get("net");
  if (config.net != "m3" && config.net != "m5" && config.net != "m7" && config.net != "m11" &&
      config.net != "xl") {
    throw UsageError("unknown --net '" + config.net + "' (expected m3|m5|m7|m11|xl)");
  }
  config.scale = args.get_int("scale");
  if (config.scale != 2 && config.scale != 4) throw UsageError("--scale must be 2 or 4");

  const std::int64_t workers = args.get_int("workers");
  if (workers < 1) throw UsageError("--workers must be >= 1");
  config.serve.workers = static_cast<int>(workers);
  config.serve.max_batch = args.get_int("max-batch");
  if (config.serve.max_batch < 1) throw UsageError("--max-batch must be >= 1");
  config.serve.max_delay_us = args.get_int("max-delay-us");
  if (config.serve.max_delay_us < 0) throw UsageError("--max-delay-us must be >= 0");
  const std::int64_t capacity = args.get_int("queue-capacity");
  if (capacity < 1) throw UsageError("--queue-capacity must be >= 1");
  config.serve.queue_capacity = static_cast<std::size_t>(capacity);

  const std::string policy = args.get("policy");
  if (policy == "block") config.serve.overload = serve::OverloadPolicy::kBlock;
  else if (policy == "reject") config.serve.overload = serve::OverloadPolicy::kReject;
  else throw UsageError("unknown --policy '" + policy + "' (expected block|reject)");

  const std::string mode = args.get("mode");
  if (mode == "full") config.serve.mode = serve::ExecMode::kFullFrame;
  else if (mode == "tiled") config.serve.mode = serve::ExecMode::kTiled;
  else if (mode == "streaming") config.serve.mode = serve::ExecMode::kStreaming;
  else if (mode == "auto") config.serve.mode = serve::ExecMode::kAuto;
  else throw UsageError("unknown --mode '" + mode + "' (expected full|tiled|streaming|auto)");

  const std::string precision = args.get("precision");
  if (precision == "fp32") config.serve.precision = core::InferencePrecision::kFp32;
  else if (precision == "fp16") config.serve.precision = core::InferencePrecision::kFp16;
  else if (precision == "int8") config.serve.precision = core::InferencePrecision::kInt8;
  else if (precision == "hybrid") config.serve.precision = core::InferencePrecision::kHybrid;
  else throw UsageError("unknown --precision '" + precision + "' (expected fp32|fp16|int8|hybrid)");

  const std::int64_t tile = args.get_int("tile");
  if (tile < 1) throw UsageError("--tile must be >= 1");
  config.serve.tiling.tile_h = tile;
  config.serve.tiling.tile_w = tile;

  config.qps = args.get_double("qps");
  if (config.qps < 0.0) throw UsageError("--qps must be >= 0 (0 = closed loop)");

  config.frames = args.get_int("frames");
  config.duration_s = args.get_double("duration-s");
  if (config.duration_s < 0.0) throw UsageError("--duration-s must be >= 0");
  // Mutually exclusive stop conditions: a non-default --frames together with
  // --duration-s is ambiguous, so refuse rather than guess.
  if (config.duration_s > 0.0 && args.get("frames") != "256") {
    throw UsageError("--frames and --duration-s are mutually exclusive; give one");
  }
  if (config.frames < 1 && config.duration_s <= 0.0) {
    throw UsageError("--frames must be >= 1 (or use --duration-s)");
  }

  config.shapes = parse_shapes(args.get("shapes"));
  config.threads = args.get_int("threads");
  if (config.threads < 1) throw UsageError("--threads must be >= 1");
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  const std::string networks = args.get("networks");
  if (networks != "auto" && !networks.empty()) {
    config.routes = parse_networks(networks);
  } else {
    config.routes = {serve::RouteKey{config.net, config.scale, config.serve.precision}};
  }

  const std::int64_t cache_entries = args.get_int("cache-entries");
  if (cache_entries < 0) throw UsageError("--cache-entries must be >= 0");
  config.serve.cache_entries = static_cast<std::size_t>(cache_entries);

  config.unique_frames = args.get_int("unique-frames");
  if (config.unique_frames < 1) throw UsageError("--unique-frames must be >= 1");

  config.serve.fair_tiles = args.get_int("fair-tiles") != 0;

  config.listen_port = args.get_int("listen");
  if (config.listen_port > 65535) throw UsageError("--listen port must be <= 65535");
  config.bind_address = args.get("bind");
  if (config.bind_address.empty()) throw UsageError("--bind must not be empty");
  const std::string auth_token = args.get("auth-token");
  if (auth_token != "none") config.auth_token = auth_token;  // "none" sentinel, as --connect
  if (config.auth_token.size() > 4096) {
    throw UsageError("--auth-token must be at most 4096 bytes");
  }
  config.io_shards = args.get_int("io-shards");
  if (config.io_shards < 1 || config.io_shards > 64) {
    throw UsageError("--io-shards must be between 1 and 64");
  }
  if (config.bind_address != "127.0.0.1" && config.listen_port < 0) {
    throw UsageError("--bind only makes sense with --listen (server mode)");
  }
  if (config.io_shards != 1 && config.listen_port < 0) {
    throw UsageError("--io-shards only makes sense with --listen (server mode)");
  }
  if (!serve::net::is_loopback_address(config.bind_address) && config.auth_token.empty()) {
    throw UsageError("--bind beyond loopback requires --auth-token (refusing an open, "
                     "unauthenticated listener)");
  }
  // "none" sentinel rather than empty: cli_args treats an empty default as a
  // boolean flag and would never consume the HOST:PORT value.
  const std::string connect = args.get("connect");
  if (!connect.empty() && connect != "none") {
    const std::size_t colon = connect.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= connect.size()) {
      throw UsageError("--connect expects HOST:PORT, e.g. 127.0.0.1:7788");
    }
    config.connect_host = connect.substr(0, colon);
    try {
      const int port = std::stoi(connect.substr(colon + 1));
      if (port < 1 || port > 65535) throw std::out_of_range("port");
      config.connect_port = static_cast<std::uint16_t>(port);
    } catch (const std::exception&) {
      throw UsageError("bad --connect port in '" + connect + "'");
    }
  }
  if (config.listen_port >= 0 && !config.connect_host.empty()) {
    throw UsageError("--listen and --connect are mutually exclusive");
  }
  config.clients = args.get_int("clients");
  if (config.clients < 1) throw UsageError("--clients must be >= 1");
  config.deadline_ms = args.get_double("deadline-ms");
  if (config.deadline_ms < 0.0) throw UsageError("--deadline-ms must be >= 0");
  config.slo_p99_ms = args.get_double("slo-p99-ms");
  if (config.slo_p99_ms < 0.0) throw UsageError("--slo-p99-ms must be >= 0");
  config.serve.slo.p99_budget_us = static_cast<std::int64_t>(config.slo_p99_ms * 1000.0);
  config.serve.slo.headroom = args.get_double("slo-headroom");
  if (config.serve.slo.headroom <= 0.0 || config.serve.slo.headroom > 1.0) {
    throw UsageError("--slo-headroom must be in (0, 1]");
  }
  config.chaos = args.get("chaos");
  if (config.chaos != "none" && config.chaos != "malformed" && config.chaos != "disconnect") {
    throw UsageError("unknown --chaos '" + config.chaos + "' (expected none|malformed|disconnect)");
  }
  if (config.chaos != "none" && config.connect_host.empty()) {
    throw UsageError("--chaos requires --connect (it drives a live server)");
  }

  config.video = args.get("video");
  if (config.video != "none" && config.video != "static" && config.video != "pan" &&
      config.video != "cut" && config.video != "sparkle" && config.video != "mixed") {
    throw UsageError("unknown --video '" + config.video +
                     "' (expected none|static|pan|cut|sparkle|mixed)");
  }
  // Delta reuse needs frame N published before frame N+1 is planned; an
  // open-loop replay would pipeline seqs and measure only full-path
  // fallbacks, so refuse the ambiguous combination.
  if (config.video != "none" && config.qps > 0.0) {
    throw UsageError("--video replays sessions closed-loop; it is incompatible with --qps");
  }
  if (config.video != "none" && config.chaos == "malformed") {
    throw UsageError("--chaos malformed ignores --video; use --chaos disconnect for the "
                     "mid-session case");
  }
  const std::int64_t video_sessions = args.get_int("video-sessions");
  if (video_sessions < 0) throw UsageError("--video-sessions must be >= 0");
  config.serve.video_sessions = static_cast<std::size_t>(video_sessions);
  return config;
}

}  // namespace sesr::cli
